package faults

import (
	"errors"
	"testing"
)

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("axi:drop=0.01@seed7+worker:failstop=2@cycle50000+dct:slowdown=4x:shard1")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if len(plan.Clauses) != 3 {
		t.Fatalf("clauses = %d, want 3", len(plan.Clauses))
	}
	drop := plan.Clauses[0]
	if drop.Layer != LayerAXI || drop.Kind != KindDrop || drop.Rate != 0.01 || drop.Seed != 7 {
		t.Errorf("drop clause = %+v", drop)
	}
	stop := plan.Clauses[1]
	if stop.Layer != LayerWorker || stop.Kind != KindFailstop || stop.Worker != 2 || stop.Cycle != 50000 {
		t.Errorf("failstop clause = %+v", stop)
	}
	slow := plan.Clauses[2]
	if slow.Layer != LayerDCT || slow.Kind != KindSlowdown || slow.Factor != 4 || slow.Shard != 1 {
		t.Errorf("slowdown clause = %+v", slow)
	}
}

func TestParsePlanArbGW(t *testing.T) {
	plan, err := ParsePlan("arb:stall=4000@cycle15000+gw:stall=3000@cycle10000")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	arb := plan.Clauses[0]
	if arb.Layer != LayerArb || arb.Kind != KindStall || arb.Delay != 4000 || arb.Cycle != 15000 {
		t.Errorf("arb clause = %+v", arb)
	}
	gw := plan.Clauses[1]
	if gw.Layer != LayerGW || gw.Kind != KindStall || gw.Delay != 3000 || gw.Cycle != 10000 {
		t.Errorf("gw clause = %+v", gw)
	}

	f := plan.PicosSide(Recovery{})
	if f == nil {
		t.Fatal("arb/gw plan produced no picos injector")
	}
	if d := f.ArbStallDelay(14999); d != 0 {
		t.Errorf("arb stall fired before trigger: %d", d)
	}
	if d := f.ArbStallDelay(15000); d != 4000 {
		t.Errorf("arb stall delay = %d, want 4000", d)
	}
	if d := f.ArbStallDelay(15001); d != 0 {
		t.Errorf("one-shot arb stall fired twice: %d", d)
	}
	if d := f.GWStallDelay(20000); d != 3000 {
		t.Errorf("gw stall delay = %d, want 3000", d)
	}
	if d := f.GWStallDelay(20001); d != 0 {
		t.Errorf("one-shot gw stall fired twice: %d", d)
	}
	f.Reset()
	if d := f.ArbStallDelay(15000); d != 4000 {
		t.Errorf("arb stall not re-armed after Reset: %d", d)
	}
	if d := f.GWStallDelay(10000); d != 3000 {
		t.Errorf("gw stall not re-armed after Reset: %d", d)
	}
}

func TestParsePlanEmpty(t *testing.T) {
	plan, err := ParsePlan("")
	if err != nil || !plan.Empty() {
		t.Fatalf("empty plan: %v, %v", plan, err)
	}
}

func TestParsePlanDefaultSeeds(t *testing.T) {
	plan, err := ParsePlan("axi:drop=0.5+axi:dup=0.5")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if plan.Clauses[0].Seed == 0 || plan.Clauses[0].Seed == plan.Clauses[1].Seed {
		t.Errorf("default seeds not distinct: %d vs %d", plan.Clauses[0].Seed, plan.Clauses[1].Seed)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, s := range []string{
		"axi", "axi:", "axi:drop", "axi:drop=", "axi:drop=2", "axi:drop=-1",
		"axi:drop=NaN", "axi:drop=Inf", "axi:drop=0.1@lunch", "axi:drop=0.1:shard0",
		"axi:delay=0.1", "axi:delay=0.1x0", "bus:drop=0.1", "dct:melt=1",
		"worker:failstop=x", "worker:slowdown=4", "worker:slowdown=1x",
		"dct:slowdown=0x", "trs:stall=0", "trs:stall=5@cycle1:disk0",
		"arb:stall=0", "arb:stall=x", "arb:stall=5@cycle1:trs0",
		"gw:stall=0", "gw:stall=5@cycle1:shard0", "gw:stall=5@cycle1:worker0",
		"arb:drop=0.1", "gw:slowdown=4x",
		"axi:drop=0.1++axi:dup=0.1", "+",
	} {
		if _, err := ParsePlan(s); !errors.Is(err, ErrBadPlan) {
			t.Errorf("ParsePlan(%q) = %v, want ErrBadPlan", s, err)
		}
	}
}

func TestParseRecovery(t *testing.T) {
	r, err := ParseRecovery("retry=3:backoff200+regrant+degrade=10000")
	if err != nil {
		t.Fatalf("ParseRecovery: %v", err)
	}
	want := Recovery{Retry: 3, Backoff: 200, Regrant: true, Degrade: 10000}
	if r != want {
		t.Errorf("recovery = %+v, want %+v", r, want)
	}
	r, err = ParseRecovery("retry=2")
	if err != nil || r.Backoff != DefaultBackoff {
		t.Errorf("retry default backoff = %+v (%v)", r, err)
	}
	if r, err := ParseRecovery(""); err != nil || r != (Recovery{}) {
		t.Errorf("empty recovery = %+v (%v)", r, err)
	}
}

func TestParseRecoveryErrors(t *testing.T) {
	for _, s := range []string{
		"retry", "retry=0", "retry=3:slow", "retry=3:backoff0",
		"regrant=1", "degrade", "degrade=0", "panic", "retry=3+?",
	} {
		if _, err := ParseRecovery(s); !errors.Is(err, ErrBadRecovery) {
			t.Errorf("ParseRecovery(%q) = %v, want ErrBadRecovery", s, err)
		}
	}
}

func TestDrawFloatDeterministic(t *testing.T) {
	for n := uint64(0); n < 100; n++ {
		a, b := drawFloat(7, n), drawFloat(7, n)
		if a != b {
			t.Fatalf("drawFloat(7, %d) unstable: %v vs %v", n, a, b)
		}
		if a < 0 || a >= 1 {
			t.Fatalf("drawFloat(7, %d) = %v out of [0,1)", n, a)
		}
	}
}

func TestPicosSide(t *testing.T) {
	plan, err := ParsePlan("dct:vmleak=1@seed3:shard1+trs:stall=100@cycle50")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	f := plan.PicosSide(Recovery{Degrade: 500})
	if f == nil || f.Degrade != 500 {
		t.Fatalf("PicosSide = %+v", f)
	}
	if f.LeakVM(0) {
		t.Error("shard-1 leak clause fired on shard 0")
	}
	if !f.LeakVM(1) {
		t.Error("rate-1.0 leak clause did not fire on shard 1")
	}
	if d := f.StallDelay(0, 49); d != 0 {
		t.Errorf("stall fired before trigger cycle: %d", d)
	}
	if d := f.StallDelay(0, 60); d != 100 {
		t.Errorf("stall delay = %d, want 100", d)
	}
	if d := f.StallDelay(0, 61); d != 0 {
		t.Errorf("one-shot stall fired twice: %d", d)
	}
	if !f.Fired {
		t.Error("Fired not set")
	}
	f.Reset()
	if f.Fired || f.Refused != 0 {
		t.Errorf("Reset left state: %+v", f)
	}
	if d := f.StallDelay(0, 60); d != 100 {
		t.Errorf("stall not re-armed after Reset: %d", d)
	}

	// An AXI-only plan has no accelerator side.
	axiOnly, err := ParsePlan("axi:drop=0.01")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if f := axiOnly.PicosSide(Recovery{}); f != nil {
		t.Errorf("axi-only plan produced a picos injector: %+v", f)
	}
}
