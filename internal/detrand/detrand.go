// Package detrand provides the deterministic pseudo-randomness shared
// by every trace generator: a splitmix64 hash and the ±pct duration
// jitter built on it. Both the real-benchmark generators
// (internal/apps) and the pattern families (internal/patterns) draw
// from here, so their notion of "jittered duration" can never drift
// apart and repeated generation is always byte-identical.
package detrand

// SplitMix64 is the splitmix64 finalizer: a cheap, well-mixed 64-bit
// hash (Steele et al., "Fast splittable pseudorandom number
// generators").
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Jitter deterministically perturbs base by up to ±pct percent using a
// SplitMix64 hash of key. The result is never below 1 (simulators
// reject zero-duration tasks).
func Jitter(base, key uint64, pct int) uint64 {
	if base == 0 {
		return 1
	}
	h := SplitMix64(key)
	span := int64(base) * int64(pct) / 100
	if span == 0 {
		return base
	}
	off := int64(h%uint64(2*span+1)) - span
	v := int64(base) + off
	if v < 1 {
		v = 1
	}
	return uint64(v)
}
