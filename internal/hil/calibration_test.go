package hil

import (
	"math"
	"testing"

	"repro/internal/synth"
)

// TestTableIVCalibration pins the model to the paper's Table IV within
// per-cell tolerances. The tolerances are deliberate: the paper's exact
// per-stage latencies are not published, so the model is calibrated to
// reproduce the table's *structure* — absolute first-task latencies
// within ~1/3, steady-state throughputs within ~1/3 (the serial-chain
// Case4 within ~2/3), and the Full-system rows, which the paper's
// conclusions lean on, within ~12%.
func TestTableIVCalibration(t *testing.T) {
	type row struct {
		mode   Mode
		l1st   [7]float64 // paper values, Cases 1..7
		thr    [7]float64
		l1tol  float64
		thrtol float64
	}
	rows := []row{
		{
			mode:   HWOnly,
			l1st:   [7]float64{45, 73, 312, 72, 96, 287, 233},
			thr:    [7]float64{15, 24, 243, 24, 35, 38, 178},
			l1tol:  0.35,
			thrtol: 0.40,
		},
		{
			mode:   HWComm,
			l1st:   [7]float64{1172, 1174, 1293, 1151, 1158, 1274, 1279},
			thr:    [7]float64{740, 740, 734, 743, 743, 743, 743},
			l1tol:  0.30,
			thrtol: 0.25,
		},
		{
			mode:   FullSystem,
			l1st:   [7]float64{3879, 4240, 4710, 4246, 4217, 4531, 4549},
			thr:    [7]float64{2729, 3125, 3413, 3124, 3168, 3165, 3379},
			l1tol:  0.15,
			thrtol: 0.12,
		},
	}
	// The serial chain (Case4) exercises the full wake round trip whose
	// per-hop breakdown the paper does not give; allow it extra slack.
	case4Extra := 0.45

	for _, r := range rows {
		for c := 1; c <= 7; c++ {
			tr, err := synth.Case(c)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Mode = r.mode
			res, err := Run(tr, cfg)
			if err != nil {
				t.Fatalf("%s case%d: %v", r.mode, c, err)
			}
			checkWithin(t, res.Mode.String(), c, "L1st", float64(res.FirstStart), r.l1st[c-1], r.l1tol+extraFor(c, case4Extra))
			checkWithin(t, res.Mode.String(), c, "thrTask", res.ThrTask, r.thr[c-1], r.thrtol+extraFor(c, case4Extra))
		}
	}
}

func extraFor(caseNo int, extra float64) float64 {
	if caseNo == 4 {
		return extra
	}
	return 0
}

func checkWithin(t *testing.T, mode string, caseNo int, what string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		return
	}
	rel := math.Abs(got-want) / want
	if rel > tol {
		t.Errorf("%s case%d %s = %.0f, paper %.0f (off %.0f%%, tolerance %.0f%%)",
			mode, caseNo, what, got, want, 100*rel, 100*tol)
	}
}
