// Command picos-sim runs one workload through one execution engine and
// reports makespan, speedup and accelerator statistics. Engines and
// workloads are resolved through the sim registry; -json emits the
// machine-readable result.
//
// Usage:
//
//	picos-sim -app cholesky -block 128 -workers 12
//	picos-sim -app heat -block 64 -engine nanos -workers 8
//	picos-sim -case 4 -engine picos-full -dm p8way
//	picos-sim -trace trace.bin -engine perfect -workers 24
//	picos-sim -app sparselu -block 64 -engine picos-full -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"

	_ "repro/internal/engines"
)

func main() {
	var (
		app      = flag.String("app", "", "benchmark: heat, lu, mlu, sparselu, cholesky, h264dec")
		problem  = flag.Int("problem", 0, "problem size (matrix dim; frames for h264dec; 0: paper default)")
		block    = flag.Int("block", 128, "block size")
		caseNo   = flag.Int("case", 0, "synthetic case 1..7 (instead of -app)")
		workload = flag.String("workload", "", "any workload-registry name, incl. pattern:<family>?width=..&steps=.. (instead of -app/-case)")
		traceIn  = flag.String("trace", "", "read a serialized trace instead of generating one")
		engine   = flag.String("engine", "picos-hw", "engine: "+strings.Join(sim.Engines(), ", "))
		mode     = flag.String("mode", "", "legacy picos HIL mode alias: hw, comm, full (use -engine picos-<mode>)")
		dm       = flag.String("dm", "", "DM design: 8way, 16way, p8way (default p8way)")
		policy   = flag.String("ts", "", "task scheduler policy: fifo (default), lifo")
		workers  = flag.Int("workers", sim.DefaultWorkers, "worker count")
		classes  = flag.String("classes", "", "heterogeneous worker classes, e.g. 4xfast+4xslow:2.0+1xaccel:0.25@stencil_2d (instead of -workers)")
		schedPol = flag.String("sched", "", "ready-task grant policy: fifo (default), lifo, priority, locality")
		steal    = flag.Bool("steal", false, "per-class ready queues with deterministic work stealing")
		nTRS     = flag.Int("trs", 0, "TRS instances (default 1)")
		nDCT     = flag.Int("dct", 0, "DCT instances (default 1)")
		shash    = flag.String("shardhash", "", "address-to-shard hash with -dct > 1: xor-fold (default), low-bits")
		shop     = flag.Int("shardhop", 0, "per-shard-crossed fabric latency in cycles (0: default 1, negative: free)")
		admiss   = flag.String("admission", "", "GW admission policy: credits (default), slots, avoid-deadlock, avoid-deadlock-park")
		wake     = flag.String("wake", "", "TS wake order on task finish: last-first (default), first-first")
		conflict = flag.String("conflict", "", "DM conflict handling: sidetrack (default), block")
		newq     = flag.Int("newq", 0, "bound the accelerator's new-task submission buffer (0: unbounded)")
		runAhead = flag.Int("runahead", 0, "Full-system creation run-ahead window (0: default 16, negative: unbounded)")
		window   = flag.Int("window", 0, "stream the workload under this bounded descriptor window (created-but-unretired tasks; 0: materialized whole-trace run)")
		watchdog = flag.Uint64("watchdog", 0, "abort the run after this many simulated cycles (0: engine default)")
		faultsFl = flag.String("faults", "", "deterministic fault plan, e.g. axi:drop=0.01@seed7+worker:failstop=2@cycle50000")
		recovery = flag.String("recovery", "", "recovery policies, e.g. retry=3:backoff200+regrant+degrade=100000")
		ff       = flag.Bool("ff", true, "event-driven fast path (results identical; disable to debug with per-cycle stepping)")
		verify   = flag.Bool("verify", true, "check the schedule against the dependence oracle")
		showStat = flag.Bool("stats", false, "print accelerator statistics")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON on stdout")
		schedule = flag.Bool("schedule", false, "include the per-task schedule in the JSON output")
	)
	flag.Parse()

	// Back-compat: "-engine picos -mode full" style invocations map onto
	// the registry names picos-hw / picos-comm / picos-full. -mode only
	// ever applied to the picos engine; combined with anything else it is
	// a contradiction, not something to silently override.
	eng := *engine
	switch {
	case eng == "picos" || (*mode != "" && eng == "picos-hw"):
		m := *mode
		if m == "" {
			m = "hw"
		}
		eng = "picos-" + m
	case *mode != "":
		fail(fmt.Errorf("-mode %s only applies to the picos engine (use -engine picos-%s)", *mode, *mode))
	}
	spec := sim.Spec{
		Engine:        eng,
		Workload:      workloadName(*traceIn, *app, *caseNo, *workload),
		Problem:       *problem,
		Block:         *block,
		Workers:       *workers,
		WorkerClasses: *classes,
		Sched:         *schedPol,
		Steal:         *steal,
		Design:        *dm,
		Policy:        *policy,
		Admission:     *admiss,
		Wake:          *wake,
		Conflict:      *conflict,
		NumTRS:        *nTRS,
		NumDCT:        *nDCT,
		ShardHash:     *shash,
		ShardHop:      *shop,
		NewQDepth:     *newq,
		RunAhead:      *runAhead,
		Window:        *window,
		Watchdog:      *watchdog,
		Faults:        *faultsFl,
		Recovery:      *recovery,
	}
	if !*ff {
		spec.FastForward = sim.Bool(false)
	}
	if *classes != "" {
		// The class list fixes the worker count; only an explicit
		// -workers flag is a genuine conflict worth the typed error.
		workersSet := false
		flag.Visit(func(f *flag.Flag) { workersSet = workersSet || f.Name == "workers" })
		if !workersSet {
			spec.Workers = 0
		}
	}
	if spec.Workload == "" {
		fail(fmt.Errorf("one of -app, -case, -workload or -trace is required"))
	}

	var (
		tr  *trace.Trace
		res *sim.Result
		err error
	)
	if *window > 0 {
		// Streaming: the workload is built as a lazy Source and never
		// materialized — a pattern grid of millions of tasks replays in
		// O(window) memory. No whole trace exists afterwards, so the
		// workload summary and the dependence-oracle verification (both
		// of which need one) are unavailable on this path.
		src, berr := sim.BuildWorkloadSource(spec)
		if berr != nil {
			fail(berr)
		}
		res, err = sim.RunSource(src, spec)
	} else {
		if tr, err = sim.BuildWorkload(spec); err != nil {
			fail(err)
		}
		res, err = sim.RunTrace(tr, spec)
	}
	if err != nil {
		fail(err)
	}
	// Wedged, timed-out, faulted, refusal-bearing or streamed runs have
	// only a partial (or perturbed, or aggregate-only) schedule, which
	// the complete-run dependence oracle cannot judge.
	partial := res.Wedged || res.TimedOut || res.Faulted || res.RefusedTasks > 0 || tr == nil
	verified := false
	verifySkipped := *verify && partial
	if *verify && !partial {
		if err := sim.Verify(tr, res); err != nil {
			fail(fmt.Errorf("schedule verification FAILED: %w", err))
		}
		verified = true
	}

	if *jsonOut {
		if !*schedule {
			res.StripSchedule()
		}
		out := struct {
			Spec     sim.Spec    `json:"spec"`
			Result   *sim.Result `json:"result"`
			Verified bool        `json:"verified"`
			// VerifySkipped distinguishes "-verify was on but the run
			// wedged before a full schedule existed" from "-verify off".
			VerifySkipped bool `json:"verify_skipped,omitempty"`
		}{spec, res, verified, verifySkipped}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
		exitOutcome(res)
		return
	}

	if tr != nil {
		s := tr.Summarize()
		fmt.Printf("workload %s: %d tasks, %d-%d deps/task, avg size %.3g cycles, baseline %.3g cycles\n",
			tr.Name, s.NumTasks, s.MinDeps, s.MaxDeps, s.AvgTaskSize, float64(tr.Baseline()))
	} else {
		fmt.Printf("workload %s: streamed under a %d-descriptor window, baseline %.3g cycles\n",
			res.Workload, *window, float64(res.Baseline))
	}
	fmt.Printf("engine %s, %d workers\n", res.Engine, res.Workers)
	switch {
	case res.Wedged:
		kind := "proven deadlock"
		if res.Faulted {
			kind = "fault-induced deadlock"
		}
		if tr != nil {
			done := 0
			for _, f := range res.Finish {
				if f > 0 {
					done++
				}
			}
			fmt.Printf("WEDGED at cycle %d: %s, %d/%d tasks completed\n",
				res.WedgedAt, kind, done, tr.Summarize().NumTasks)
		} else {
			fmt.Printf("WEDGED at cycle %d: %s\n", res.WedgedAt, kind)
		}
	case res.TimedOut:
		fmt.Printf("TIMED OUT: no progress for the watchdog window (livelock or starvation), makespan so far %d cycles\n",
			res.Makespan)
	default:
		fmt.Printf("makespan %d cycles, speedup %.2fx, L1st %d, thrTask %.0f cycles\n",
			res.Makespan, res.Speedup, res.FirstStart, res.ThrTask)
	}
	if res.Faulted || res.LostTasks > 0 || res.RecoveredTasks > 0 || res.RefusedTasks > 0 {
		fmt.Printf("faults: fired %v, lost %d, recovered %d, refused %d\n",
			res.Faulted, res.LostTasks, res.RecoveredTasks, res.RefusedTasks)
	}
	if res.LockBusy > 0 {
		fmt.Printf("runtime lock busy %d cycles\n", res.LockBusy)
	}
	if *showStat && res.Stats != nil {
		st := res.Stats
		fmt.Printf("stats: admitted %d, deps %d, DM conflicts %d, conflict stall %d cy, "+
			"VM stalls %d, GW blocked %d cy, wakes %d, max in-flight %d, max VM %d\n",
			st.TasksAdmitted, st.DepsProcessed, st.DMConflicts, st.DMConflictStallCycles,
			st.VMStallEvents, st.GWBlockedCycles, st.WakesRouted, st.MaxInFlightTasks, st.MaxVMLive)
	}
	if verified {
		fmt.Println("schedule verified against the dependence oracle")
	}
	if verifySkipped {
		if tr == nil {
			fmt.Println("verification skipped: a streamed run keeps no schedule to verify")
		} else {
			fmt.Println("verification skipped: partial or fault-perturbed schedule")
		}
	}
	exitOutcome(res)
}

// Structured-outcome exit codes, distinct from 1 (errors) so scripted
// sweeps can tell "this design wedges/starves here" from "the tool
// failed": 3 is a proven model deadlock, 4 a watchdog expiry (livelock
// or no-progress stall). A faulted-but-completed run still exits 0 —
// the outcome fields in the JSON carry the loss accounting.
const (
	exitWedged   = 3
	exitTimedOut = 4
)

// exitOutcome terminates with the structured exit code of a
// non-completing run, or returns for the normal exit 0.
func exitOutcome(res *sim.Result) {
	switch {
	case res.Wedged:
		os.Exit(exitWedged)
	case res.TimedOut:
		os.Exit(exitTimedOut)
	}
}

// workloadName maps the trace-source flags onto one registry name.
func workloadName(tracePath, app string, caseNo int, workload string) string {
	switch {
	case tracePath != "":
		return sim.TracePrefix + tracePath
	case caseNo != 0:
		return fmt.Sprintf("case%d", caseNo)
	case workload != "":
		return workload
	default:
		return app
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "picos-sim: %v\n", err)
	os.Exit(1)
}
