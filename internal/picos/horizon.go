package picos

// The incremental event-horizon scheduler. Every unit (gateway, TRSs,
// DCTs, TS, arbiter) owns a slot in an indexed min-heap keyed by its
// nextEvent() horizon — the earliest cycle it can make progress on its
// own. Units re-enter the heap lazily: any state change that can move a
// horizon (a queue push, a pop, a busy-timer update, a blocked/stalled
// transition) marks the unit dirty, and the next NextEvent/Idle call
// re-polls just the dirty units before reading the heap top. Planning a
// wake is therefore O(dirty · log units) instead of a full rescan of
// every queue head in the machine — the difference between the software
// model and the hardware it models doing O(1) bookkeeping per event.
//
// Idle() rides the same structure: "no unit can ever act again" is
// exactly "the heap top has no horizon", and "some unit is mid-
// operation" is tracked by maxBusy, the high-water mark over every busy
// timer (monotonic, because timers are always set to now+cost and the
// clock never rewinds).

// horizonUnit is the per-unit polling surface of the scheduler.
type horizonUnit interface {
	// nextEvent returns the earliest cycle the unit can make progress
	// without external input; ok is false when it never will (blocked or
	// stalled heads excluded, as documented on each implementation).
	nextEvent() (uint64, bool)
}

// noEvent is the heap key of a unit with no self-driven future event.
const noEvent = ^uint64(0)

// rebuildHorizon (re)derives the heap from the current unit set: all
// queues are empty at build/Reset time, so every key starts at noEvent
// and the identity ordering is a valid heap.
func (p *Picos) rebuildHorizon() {
	p.units = p.units[:0]
	add := func(u horizonUnit) int32 {
		id := int32(len(p.units))
		p.units = append(p.units, u)
		return id
	}
	p.gw.hid = add(p.gw)
	for _, t := range p.trs {
		t.hid = add(t)
	}
	for _, d := range p.dct {
		d.hid = add(d)
	}
	p.ts.hid = add(p.ts)
	p.arb.hid = add(p.arb)

	n := len(p.units)
	if cap(p.hkey) < n {
		p.hkey = make([]uint64, n)
		p.hpos = make([]int32, n)
		p.hheap = make([]int32, n)
		p.hdirty = make([]bool, n)
		p.hdlist = make([]int32, 0, n)
	} else {
		p.hkey = p.hkey[:n]
		p.hpos = p.hpos[:n]
		p.hheap = p.hheap[:n]
		p.hdirty = p.hdirty[:n]
	}
	for i := 0; i < n; i++ {
		p.hkey[i] = noEvent
		p.hpos[i] = int32(i)
		p.hheap[i] = int32(i)
		p.hdirty[i] = false
	}
	p.hdlist = p.hdlist[:0]
}

// markDirty schedules a unit for re-polling at the next horizon read.
//
//picos:hotpath
func (p *Picos) markDirty(id int32) {
	if !p.hdirty[id] {
		p.hdirty[id] = true
		p.hdlist = append(p.hdlist, id)
	}
}

// noteBusy records a busy-timer deadline; Idle() is false until the
// clock passes the latest one.
//
//picos:hotpath
func (p *Picos) noteBusy(until uint64) {
	if until > p.maxBusy {
		p.maxBusy = until
	}
}

// flushHorizon re-polls every dirty unit and restores the heap order.
//
//picos:hotpath
func (p *Picos) flushHorizon() {
	if len(p.hdlist) == 0 {
		return
	}
	for _, id := range p.hdlist {
		p.hdirty[id] = false
		key := noEvent
		if at, ok := p.units[id].nextEvent(); ok {
			key = at
		}
		if key != p.hkey[id] {
			p.hkey[id] = key
			p.hfix(id)
		}
	}
	p.hdlist = p.hdlist[:0]
}

// hfix restores the heap invariant around a unit whose key changed.
//
//picos:hotpath
func (p *Picos) hfix(id int32) {
	if !p.hsiftUp(p.hpos[id]) {
		p.hsiftDown(p.hpos[id])
	}
}

// hsiftUp moves the element at heap position i toward the root; it
// reports whether the element moved.
//
//picos:hotpath
func (p *Picos) hsiftUp(i int32) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if p.hkey[p.hheap[i]] >= p.hkey[p.hheap[parent]] {
			break
		}
		p.hswap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// hsiftDown moves the element at heap position i toward the leaves.
//
//picos:hotpath
func (p *Picos) hsiftDown(i int32) {
	n := int32(len(p.hheap))
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && p.hkey[p.hheap[right]] < p.hkey[p.hheap[left]] {
			least = right
		}
		if p.hkey[p.hheap[i]] <= p.hkey[p.hheap[least]] {
			return
		}
		p.hswap(i, least)
		i = least
	}
}

//picos:hotpath
func (p *Picos) hswap(i, j int32) {
	p.hheap[i], p.hheap[j] = p.hheap[j], p.hheap[i]
	p.hpos[p.hheap[i]] = i
	p.hpos[p.hheap[j]] = j
}
