package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe is one expectation parsed from a // want `regex` comment.
type wantRe struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantLineRe = regexp.MustCompile("// want((?:\\s+`[^`]*`)+)")
var wantChunkRe = regexp.MustCompile("`([^`]*)`")

// parseWants scans every .go file under root for // want expectations.
// Multiple backtick-delimited regexps may follow one // want marker;
// each must match a distinct diagnostic on that line.
func parseWants(t *testing.T, root string) []*wantRe {
	t.Helper()
	var wants []*wantRe
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantLineRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, chunk := range wantChunkRe.FindAllStringSubmatch(m[1], -1) {
				re, rerr := regexp.Compile(chunk[1])
				if rerr != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", rel, line, chunk[1], rerr)
				}
				wants = append(wants, &wantRe{file: rel, line: line, re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// extra is a line-independent expectation for diagnostics whose source
// line cannot carry a // want comment (malformed //lint:ignore
// directives swallow everything to end of line).
type extra struct {
	file string
	re   string
}

// checkModule loads one testdata mini-module, runs the full analyzer
// suite and verifies the findings against the // want comments plus the
// given extras. Every finding must be expected and every expectation
// must fire.
func checkModule(t *testing.T, name string, extras []extra) {
	t.Helper()
	root := filepath.Join("testdata", name)
	suite, err := Load(root)
	if err != nil {
		t.Fatalf("Load(%s): %v", root, err)
	}
	diags := suite.Run(Analyzers())
	wants := parseWants(t, root)

	var unmatched []Diagnostic
outer:
	for _, d := range diags {
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.matched = true
				continue outer
			}
		}
		unmatched = append(unmatched, d)
	}
	for _, ex := range extras {
		re := regexp.MustCompile(ex.re)
		found := -1
		for i, d := range unmatched {
			if d.File == ex.file && re.MatchString(d.Message) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("%s: expected a finding in %s matching %q; none left", name, ex.file, ex.re)
			continue
		}
		unmatched = append(unmatched[:found], unmatched[found+1:]...)
	}
	for _, d := range unmatched {
		t.Errorf("%s: unexpected finding: %s", name, d.String())
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: expected finding matching %q; got none", name, w.file, w.line, w.re)
		}
	}
}

func TestDeterminismTestdata(t *testing.T) {
	checkModule(t, "determinism", []extra{
		{file: filepath.Join("internal", "model", "malformed.go"), re: `needs an analyzer name and a reason`},
		{file: filepath.Join("internal", "model", "malformed.go"), re: `has no reason; unexplained suppressions`},
	})
}

func TestDirtyHorizonTestdata(t *testing.T) { checkModule(t, "dirtyhorizon", nil) }
func TestMaterializeWallTestdata(t *testing.T) {
	checkModule(t, "materializewall", nil)
}
func TestHotAllocTestdata(t *testing.T)      { checkModule(t, "hotalloc", nil) }
func TestSpecKnobTestdata(t *testing.T)      { checkModule(t, "specknob", nil) }
func TestErrDisciplineTestdata(t *testing.T) { checkModule(t, "errdiscipline", nil) }

// TestFilteredRunKeepsForeignIgnores proves the -run semantics: running
// a subset of analyzers must neither call another analyzer's valid
// ignore unknown nor stale. The hotalloc module carries a hotalloc
// ignore; a determinism-only run must not complain about it.
func TestFilteredRunKeepsForeignIgnores(t *testing.T) {
	suite, err := Load(filepath.Join("testdata", "hotalloc"))
	if err != nil {
		t.Fatal(err)
	}
	diags := suite.Run([]*Analyzer{Determinism})
	for _, d := range diags {
		t.Errorf("determinism-only run reported: %s", d.String())
	}
}

// TestRerunIsStable proves Run is idempotent on one loaded suite: the
// driver and the harness both depend on re-running without residue
// (used flags, stale diagnostics).
func TestRerunIsStable(t *testing.T) {
	suite, err := Load(filepath.Join("testdata", "errdiscipline"))
	if err != nil {
		t.Fatal(err)
	}
	first := suite.Run(Analyzers())
	second := suite.Run(Analyzers())
	if len(first) != len(second) {
		t.Fatalf("run 1 found %d diagnostics, run 2 found %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("diagnostic %d differs between runs: %v vs %v", i, first[i], second[i])
		}
	}
}

// TestRealTreeClean runs the whole suite over this repository: the tree
// must stay finding-free (true positives get fixed, the rest carry
// justified suppressions). This is the same gate CI's lint lane
// enforces via cmd/picoslint.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	suite, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range suite.Run(Analyzers()) {
		t.Errorf("repository finding: %s", d.String())
	}
}
