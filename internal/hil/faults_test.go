package hil

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/faults"
)

// parsePlan is a test helper around faults.ParsePlan.
func parsePlan(t *testing.T, plan string) *faults.Plan {
	t.Helper()
	p, err := faults.ParsePlan(plan)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", plan, err)
	}
	return p
}

func parseRecovery(t *testing.T, rec string) faults.Recovery {
	t.Helper()
	r, err := faults.ParseRecovery(rec)
	if err != nil {
		t.Fatalf("ParseRecovery(%q): %v", rec, err)
	}
	return r
}

// TestFaultPlanZeroPerturbation: a configured plan whose clauses never
// trigger (a fail-stop far past the makespan, a zero-rate drop) must
// leave the run byte-identical to the fault-free one — the injection
// machinery is armed but fires nothing, so Faulted stays false and the
// schedule, statistics and probes all match exactly. A recovery policy
// without any plan must be equally invisible.
func TestFaultPlanZeroPerturbation(t *testing.T) {
	res, err := apps.Generate(apps.Heat, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	base := DefaultConfig()
	base.Mode = HWComm
	base.Workers = 8
	clean := mustRun(t, tr, base)

	for _, tc := range []struct {
		name string
		plan string
		rec  string
	}{
		{"never-firing-clauses", "worker:failstop=2@cycle9000000000+axi:drop=0.0@seed7", ""},
		{"recovery-without-plan", "", "retry=3:backoff200+regrant"},
		{"armed-plan-with-recovery", "worker:failstop=2@cycle9000000000", "retry=3+regrant"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			if tc.plan != "" {
				cfg.Faults = parsePlan(t, tc.plan)
			}
			cfg.Recovery = parseRecovery(t, tc.rec)
			got := mustRun(t, tr, cfg)
			if got.Faulted {
				t.Error("no clause fired, yet Faulted is set")
			}
			if !reflect.DeepEqual(clean, got) {
				t.Errorf("armed-but-silent fault plan perturbed the run:\nclean: %+v\narmed: %+v", clean, got)
			}
		})
	}
}

// TestFailstopRegrant: fail-stopping a busy worker mid-run aborts its
// in-flight task. Without the regrant policy the task is lost and its
// dependents wedge — a fault-induced deadlock (Faulted set), not a model
// one. With regrant the aborted task re-enters the scheduling layer and
// the run completes with a legal, fully-accounted schedule.
func TestFailstopRegrant(t *testing.T) {
	res, err := apps.Generate(apps.SparseLu, 1024, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	cfg := DefaultConfig()
	cfg.Workers = 8
	cfg.Faults = parsePlan(t, "worker:failstop=2@cycle1000000")

	r := mustRun(t, tr, cfg)
	if !r.Wedged || !r.Faulted {
		t.Fatalf("lost in-flight task should wedge dependents: wedged=%v faulted=%v", r.Wedged, r.Faulted)
	}
	if r.LostTasks != 1 {
		t.Errorf("LostTasks = %d, want 1", r.LostTasks)
	}

	cfg.Recovery = parseRecovery(t, "regrant")
	r = mustRun(t, tr, cfg)
	if r.Wedged || r.TimedOut {
		t.Fatalf("regrant should complete the run: wedged=%v timedOut=%v", r.Wedged, r.TimedOut)
	}
	if !r.Faulted || r.RecoveredTasks != 1 || r.LostTasks != 0 {
		t.Errorf("faulted=%v recovered=%d lost=%d, want true/1/0", r.Faulted, r.RecoveredTasks, r.LostTasks)
	}
	verifyLegal(t, tr, r)
}

// TestFailstopIdleVictim: killing a worker that is idle at the trigger
// cycle loses nothing — the survivors absorb the work, and the makespan
// equals a fault-free run on one fewer worker (the strongest evidence
// the eviction removed exactly that worker and nothing else).
func TestFailstopIdleVictim(t *testing.T) {
	res, err := apps.Generate(apps.Heat, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	cfg := DefaultConfig()
	cfg.Workers = 3
	shorthanded := mustRun(t, tr, cfg).Makespan

	cfg.Workers = 4
	cfg.Faults = parsePlan(t, "worker:failstop=3@cycle0")
	r := mustRun(t, tr, cfg)
	if r.Wedged || r.LostTasks != 0 {
		t.Fatalf("idle-victim kill must not lose work: wedged=%v lost=%d", r.Wedged, r.LostTasks)
	}
	if !r.Faulted {
		t.Error("the fail-stop fired; Faulted must be set")
	}
	if r.Makespan != shorthanded {
		t.Errorf("4 workers minus a cycle-0 kill ran in %d cycles, want the 3-worker %d", r.Makespan, shorthanded)
	}
	verifyLegal(t, tr, r)
}

// TestDropRetryRecovers: a 1% AXI drop rate with bounded retransmission
// completes the run — every dropped message lands within the retry
// budget, so nothing is lost and the recovered count tallies the
// successful resends.
func TestDropRetryRecovers(t *testing.T) {
	res, err := apps.Generate(apps.Heat, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	cfg := DefaultConfig()
	cfg.Mode = HWComm
	cfg.Workers = 8
	cfg.Faults = parsePlan(t, "axi:drop=0.01@seed7")
	cfg.Recovery = parseRecovery(t, "retry=3:backoff200")

	r := mustRun(t, tr, cfg)
	if r.Wedged || r.TimedOut {
		t.Fatalf("retry should complete the run: wedged=%v timedOut=%v", r.Wedged, r.TimedOut)
	}
	if !r.Faulted || r.RecoveredTasks == 0 || r.LostTasks != 0 {
		t.Errorf("faulted=%v recovered=%d lost=%d, want true/>0/0", r.Faulted, r.RecoveredTasks, r.LostTasks)
	}
	verifyLegal(t, tr, r)
}

// TestDropWithoutRetryLoses: the same drop plan with no retransmission
// policy permanently loses messages; the run either wedges on the lost
// tasks' dependents or finishes short — either way the loss is
// accounted and attributed to the fault.
func TestDropWithoutRetryLoses(t *testing.T) {
	res, err := apps.Generate(apps.Heat, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	cfg := DefaultConfig()
	cfg.Mode = HWComm
	cfg.Workers = 8
	cfg.Faults = parsePlan(t, "axi:drop=0.01@seed7")

	r := mustRun(t, tr, cfg)
	if !r.Faulted || r.LostTasks == 0 {
		t.Errorf("faulted=%v lost=%d, want true/>0", r.Faulted, r.LostTasks)
	}
	if r.RecoveredTasks != 0 {
		t.Errorf("no retry policy, yet %d tasks recovered", r.RecoveredTasks)
	}
}

// TestDelayAndDupPerturbTiming: delay and dup faults cost bandwidth and
// latency but never correctness — the run completes legally, strictly
// later than fault-free, with nothing lost or recovered.
func TestDelayAndDupPerturbTiming(t *testing.T) {
	res, err := apps.Generate(apps.Heat, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	cfg := DefaultConfig()
	cfg.Mode = HWComm
	cfg.Workers = 8
	clean := mustRun(t, tr, cfg).Makespan

	cfg.Faults = parsePlan(t, "axi:delay=1.0x2000@seed2+axi:dup=0.02@seed3")
	r := mustRun(t, tr, cfg)
	if r.Wedged || r.TimedOut || r.LostTasks != 0 || r.RecoveredTasks != 0 {
		t.Fatalf("delay/dup must not need recovery: wedged=%v timedOut=%v lost=%d recovered=%d",
			r.Wedged, r.TimedOut, r.LostTasks, r.RecoveredTasks)
	}
	if !r.Faulted {
		t.Error("faults fired; Faulted must be set")
	}
	if r.Makespan <= clean {
		t.Errorf("delayed+duplicated link ran in %d cycles, not slower than the clean %d", r.Makespan, clean)
	}
	verifyLegal(t, tr, r)
}

// TestCreditLeakDegrade: leaking every DCT credit return starves the
// gateway's flow control once cumulative dependences exceed the pool —
// a fault-induced wedge. The degrade recovery policy instead refuses
// the inadmissible queue head after the window expires, and the run
// completes (gracefully degraded: a refusal count, not a deadlock).
func TestCreditLeakDegrade(t *testing.T) {
	res, err := apps.Generate(apps.Cholesky, 2048, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	cfg := DefaultConfig()
	cfg.Workers = 8
	cfg.Watchdog = 2_000_000_000
	cfg.Faults = parsePlan(t, "dct:creditleak=1.0@seed5")

	r := mustRun(t, tr, cfg)
	if !r.Wedged || !r.Faulted {
		t.Fatalf("leaked credits should starve admission into a faulted wedge: wedged=%v faulted=%v", r.Wedged, r.Faulted)
	}

	cfg.Faults = parsePlan(t, "dct:creditleak=1.0@seed5")
	cfg.Recovery = parseRecovery(t, "degrade=20000")
	r = mustRun(t, tr, cfg)
	if r.Wedged || r.TimedOut {
		t.Fatalf("degrade should keep the run completing: wedged=%v timedOut=%v", r.Wedged, r.TimedOut)
	}
	if !r.Faulted || r.RefusedTasks == 0 {
		t.Errorf("faulted=%v refused=%d, want true/>0", r.Faulted, r.RefusedTasks)
	}
}

// TestFaultStarvationTimesOut: a 100%-rate link delay far longer than
// the watchdog window stalls all progress between deliveries; the
// watchdog classifies it as fault-induced starvation (TimedOut with
// Faulted), not a proven deadlock.
func TestFaultStarvationTimesOut(t *testing.T) {
	res, err := apps.Generate(apps.Heat, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	cfg := DefaultConfig()
	cfg.Mode = HWComm
	cfg.Workers = 8
	cfg.Watchdog = 100_000
	cfg.Faults = parsePlan(t, "axi:delay=1.0x1000000@seed1")

	r := mustRun(t, tr, cfg)
	if !r.TimedOut || r.Wedged {
		t.Fatalf("watchdog should classify the stall as a timeout: timedOut=%v wedged=%v", r.TimedOut, r.Wedged)
	}
	if !r.Faulted {
		t.Error("the delay fault fired; Faulted must be set")
	}
	if r.Speedup != 0 {
		t.Errorf("partial schedule must zero Speedup, got %g", r.Speedup)
	}
}

// TestTRSStallDelays: a one-shot TRS pipeline stall pushes the makespan
// out without losing anything, in both the cycle-stepped and the
// event-driven loop, identically.
func TestTRSStallDelays(t *testing.T) {
	res, err := apps.Generate(apps.Heat, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	cfg := DefaultConfig()
	cfg.Workers = 8
	clean := mustRun(t, tr, cfg).Makespan

	cfg.Faults = parsePlan(t, "trs:stall=50000@cycle20000")
	fast := mustRun(t, tr, cfg)

	cfg.Faults = parsePlan(t, "trs:stall=50000@cycle20000")
	cfg.FastForward = false
	ref := mustRun(t, tr, cfg)

	if fast.Makespan <= clean {
		t.Errorf("stalled TRS ran in %d cycles, not slower than the clean %d", fast.Makespan, clean)
	}
	if fast.Makespan != ref.Makespan || fast.Stats != ref.Stats {
		t.Errorf("loops diverge under the stall: fast %d %+v, ref %d %+v",
			fast.Makespan, fast.Stats, ref.Makespan, ref.Stats)
	}
	if !fast.Faulted {
		t.Error("the stall fired; Faulted must be set")
	}
	verifyLegal(t, tr, fast)
}

// TestArbStallDelays: a one-shot crossbar hiccup on a sharded fabric
// (the arbiter only carries new-dependence traffic when NumDCT > 1)
// pushes the makespan out without losing anything, identically on both
// loops.
func TestArbStallDelays(t *testing.T) {
	res, err := apps.Generate(apps.Heat, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	cfg := DefaultConfig()
	cfg.Workers = 8
	cfg.Picos.NumDCT = 2
	clean := mustRun(t, tr, cfg).Makespan

	cfg.Faults = parsePlan(t, "arb:stall=50000@cycle20000")
	fast := mustRun(t, tr, cfg)

	cfg.Faults = parsePlan(t, "arb:stall=50000@cycle20000")
	cfg.FastForward = false
	ref := mustRun(t, tr, cfg)

	if fast.Makespan <= clean {
		t.Errorf("stalled arbiter ran in %d cycles, not slower than the clean %d", fast.Makespan, clean)
	}
	if fast.Makespan != ref.Makespan || fast.Stats != ref.Stats {
		t.Errorf("loops diverge under the arb stall: fast %d %+v, ref %d %+v",
			fast.Makespan, fast.Stats, ref.Makespan, ref.Stats)
	}
	if !fast.Faulted {
		t.Error("the arb stall fired; Faulted must be set")
	}
	verifyLegal(t, tr, fast)
}

// TestGWStallDelays: a one-shot gateway admission-path stall on a
// sharded fabric backs submissions up in the new-task queue and pushes
// the makespan out without losing anything, identically on both loops.
// The stall is longer than the whole clean run: a short stall this
// coarse-grained workload absorbs in schedule slack, so the push-out
// assertion would be flaky against calibration changes.
func TestGWStallDelays(t *testing.T) {
	res, err := apps.Generate(apps.Heat, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	cfg := DefaultConfig()
	cfg.Workers = 8
	cfg.Picos.NumDCT = 2
	clean := mustRun(t, tr, cfg).Makespan

	cfg.Faults = parsePlan(t, "gw:stall=10000000@cycle100")
	fast := mustRun(t, tr, cfg)

	cfg.Faults = parsePlan(t, "gw:stall=10000000@cycle100")
	cfg.FastForward = false
	ref := mustRun(t, tr, cfg)

	if fast.Makespan <= clean {
		t.Errorf("stalled gateway ran in %d cycles, not slower than the clean %d", fast.Makespan, clean)
	}
	if fast.Makespan != ref.Makespan || fast.Stats != ref.Stats {
		t.Errorf("loops diverge under the gw stall: fast %d %+v, ref %d %+v",
			fast.Makespan, fast.Stats, ref.Makespan, ref.Stats)
	}
	if !fast.Faulted {
		t.Error("the gw stall fired; Faulted must be set")
	}
	verifyLegal(t, tr, fast)
}
