// Future architecture: the paper's Figure 3a projects a Picos with N
// Task Reservation Stations and N Dependence Chain Trackers ("a design
// with four instances is able to manage up to 256 cores"). This example
// scales the instance count on the finest-grained H264dec workload —
// the one the paper says exposes the single-instance bottleneck — and
// prices each configuration with the resource model.
package main

import (
	"fmt"
	"log"

	"repro/internal/picos"
	"repro/internal/resources"
	"repro/internal/sim"

	_ "repro/internal/engines"
)

func main() {
	tr, err := sim.BuildWorkload(sim.Spec{Workload: "h264dec", Block: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("h264dec 10 frames, 1x1 macroblocks: %d tasks, avg %.3g cycles\n\n",
		len(tr.Tasks), tr.Summarize().AvgTaskSize)

	roof, err := sim.Run(sim.Spec{Engine: "perfect", Workload: "h264dec", Block: 1, Workers: 24})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s  %8s  %10s  %8s  %8s\n", "instances", "speedup", "vs perfect", "LUT%", "BRAM%")
	for _, n := range []int{1, 2, 4} {
		res, err := sim.Run(sim.Spec{
			Engine: "picos-hw", Workload: "h264dec", Block: 1,
			Workers: 24, NumTRS: n, NumDCT: n,
		})
		if err != nil {
			log.Fatal(err)
		}
		hw := resources.FullPicos(picos.DMP8Way, n, n)
		fmt.Printf("%9dx  %7.2fx  %9.0f%%  %7.1f%%  %7.1f%%\n",
			n, res.Speedup, 100*res.Speedup/roof.Speedup, hw.LUTPct(), hw.BRAMPct())
	}
	fmt.Printf("\nperfect roofline at 24 workers: %.2fx\n", roof.Speedup)
	fmt.Println("the paper: \"the Picos prototype with more module instances should")
	fmt.Println("be able to obtain higher speedup and fill this gap\" — it does,")
	fmt.Println("at roughly linear BRAM cost (note 4x exceeds the XC7Z020's 140 blocks).")
}
