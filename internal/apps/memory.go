// Package apps generates the task traces of the five real OmpSs
// benchmarks the paper evaluates (Section IV-C, Table I): Gauss-Seidel
// Heat, LU, Sparse LU, Cholesky, and the H264dec video decoder. Each
// generator runs the real blocked algorithm symbolically — the same loop
// nests and block accesses as the BAR/StarBench sources — emitting one
// task per kernel invocation with the kernel's dependence addresses and
// directions. Per-task durations are calibrated so that the number of
// tasks, dependences per task, average task size and sequential execution
// time reproduce Table I.
package apps

import "repro/internal/detrand"

// allocator hands out block base addresses the way a blocked matrix
// allocation does: blocks are stored contiguously, so every block base is
// aligned to the block's (power-of-two) byte size. This alignment is load-
// bearing: it produces the address clustering that makes the direct-hash
// DM designs conflict (Table II) while the Pearson design does not.
type allocator struct {
	next uint64
}

// newAllocator starts handing out addresses at base (the paper's traces
// carry real 64-bit heap addresses; any base works).
func newAllocator(base uint64) *allocator { return &allocator{next: base} }

// alignUp rounds v up to the next multiple of a (a must be a power of 2).
func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// nextPow2 returns the smallest power of two >= v (v > 0).
func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// block reserves one block of the given byte size, aligned to its
// power-of-two rounding, and returns its base address.
func (a *allocator) block(bytes uint64) uint64 {
	sz := nextPow2(bytes)
	a.next = alignUp(a.next, sz)
	addr := a.next
	a.next += sz
	return addr
}

// mallocBlock reserves one block the way glibc malloc would: blocks of
// 128KB and above come from mmap (page-aligned, so their low 6 bits are
// zero and they cluster in one direct-hash DM set); smaller blocks come
// from the heap with a 16-byte chunk header and 16-byte alignment, so
// their low address bits vary. SparseLu allocates its blocks
// individually (BOTS-style), which is why its fine-grained block sizes
// conflict far less than Heat's contiguous layout in Table II.
func (a *allocator) mallocBlock(bytes uint64) uint64 {
	const mmapThreshold = 128 << 10
	if bytes >= mmapThreshold {
		a.next = alignUp(a.next, 4096)
		addr := a.next
		a.next += alignUp(bytes, 4096)
		return addr
	}
	a.next += 16 // chunk header
	a.next = alignUp(a.next, 16)
	addr := a.next
	a.next += bytes
	return addr
}

// grid reserves rows x cols blocks of blockBytes each and returns their
// base addresses as grid[r][c].
func (a *allocator) grid(rows, cols int, blockBytes uint64) [][]uint64 {
	g := make([][]uint64, rows)
	for r := range g {
		g[r] = make([]uint64, cols)
		for c := range g[r] {
			g[r][c] = a.block(blockBytes)
		}
	}
	return g
}

// jitter and splitmix64 are the shared deterministic-randomness
// helpers; aliased so the generators read naturally.
func jitter(base uint64, key uint64, pct int) uint64 { return detrand.Jitter(base, key, pct) }

func splitmix64(x uint64) uint64 { return detrand.SplitMix64(x) }
