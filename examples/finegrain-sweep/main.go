// Fine-grain sweep: the Figure 1 story end to end — as block size
// shrinks, available parallelism grows but per-task overhead grows too.
// The software-only runtime peaks and collapses; the Picos accelerator
// keeps climbing toward the roofline.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hil"
)

func main() {
	const workers = 12
	fmt.Printf("sparselu 2048, %d workers\n", workers)
	fmt.Printf("%9s  %8s  %12s  %14s  %8s\n",
		"blocksize", "#tasks", "nanos++", "picos(full)", "perfect")
	for _, block := range []int{256, 128, 64, 32} {
		tr, err := core.AppTrace(core.SparseLu, 2048, block)
		if err != nil {
			log.Fatal(err)
		}
		sw, err := core.RunNanos(tr, workers)
		if err != nil {
			log.Fatal(err)
		}
		pic, err := core.RunPicos(tr, core.PicosOptions{Workers: workers, Mode: hil.FullSystem})
		if err != nil {
			log.Fatal(err)
		}
		roof, err := core.RunPerfect(tr, workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9d  %8d  %11.2fx  %13.2fx  %7.2fx\n",
			block, len(tr.Tasks), sw.Speedup, pic.Speedup, roof.Speedup)
	}
	fmt.Println()
	fmt.Println("expected shape (paper Fig. 1 + Fig. 11d): nanos++ rises, then the")
	fmt.Println("runtime overhead outweighs the new parallelism and speedup degrades;")
	fmt.Println("the hardware manager keeps scaling as granularity shrinks.")
}
