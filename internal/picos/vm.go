package picos

// vmEntry is one Version Memory entry: one live version of a dependence
// address, i.e. one producer together with the consumers of its value
// (Section III-D). Producer-consumer chains hang off chainTail (woken
// from the last consumer backwards through TRS TMX links); producer-
// producer chains link versions through next.
type vmEntry struct {
	used bool
	dm   dmRef // owning DM entry, for release

	// Producer side.
	hasProducer  bool
	producerDone bool
	producer     TaskHandle

	// Consumer side. numConsumers counts every registered consumer;
	// finished counts those whose finish packet arrived; chainLen counts
	// the consumers registered while the producer was still pending —
	// the ones linked into the TMX wake chain. Under WakeLastFirst the
	// chain is entered at chainTail (Figure 5); under WakeFirstFirst it
	// is entered at chainHead and points forward.
	numConsumers uint32
	finished     uint32
	chainLen     uint32
	chainTail    TaskHandle
	chainHead    TaskHandle

	// Next version of the same address, if any.
	hasNext bool
	next    uint16

	// statusAt is the visibility stamp of the newest status packet
	// emitted for this version. Wakes for the version are clamped to it:
	// the DCT cannot reference a TMX dependence entry before the status
	// that writes it has left, and the visibility-ordered arbiter would
	// otherwise deliver an earlier-stamped wake first (the registration
	// engine updates VM state at operation start but its status leaves at
	// operation end, so a release landing mid-registration can observe a
	// consumer whose status is still in the pipeline).
	statusAt uint64
}

// complete reports whether the version has fully drained: the producer
// (if any) finished and every registered consumer finished.
func (v *vmEntry) complete() bool {
	return v.producerDone && v.finished == v.numConsumers
}

// versionMemory is the VM of one DCT: a fixed pool of entries with a
// free list. 512 entries for the 8-way designs, 1024 for 16-way.
type versionMemory struct {
	entries []vmEntry
	free    []uint16
}

func newVersionMemory(capacity int) *versionMemory {
	m := &versionMemory{entries: make([]vmEntry, capacity), free: make([]uint16, 0, capacity)}
	// Hand out low indices first so tests are deterministic.
	for i := capacity - 1; i >= 0; i-- {
		m.free = append(m.free, uint16(i))
	}
	return m
}

// reset returns the memory to its just-built state in place: live
// entries are scrubbed (released ones are already zero) and the free
// list is rebuilt in the deterministic fresh order.
func (m *versionMemory) reset() {
	for i := range m.entries {
		if m.entries[i].used {
			m.entries[i] = vmEntry{}
		}
	}
	m.free = m.free[:0]
	for i := len(m.entries) - 1; i >= 0; i-- {
		m.free = append(m.free, uint16(i))
	}
}

// alloc claims a free entry, zeroed. ok is false when the VM is full —
// the memory-capacity stall the paper's deadlock discussion is about.
func (m *versionMemory) alloc() (uint16, bool) {
	if len(m.free) == 0 {
		return 0, false
	}
	idx := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.entries[idx] = vmEntry{used: true}
	return idx, true
}

// release returns an entry to the free list.
func (m *versionMemory) release(idx uint16) {
	m.entries[idx] = vmEntry{}
	m.free = append(m.free, idx)
}

// at returns the entry at idx.
func (m *versionMemory) at(idx uint16) *vmEntry { return &m.entries[idx] }

// freeCount returns the number of free entries (used by GW admission
// control).
func (m *versionMemory) freeCount() int { return len(m.free) }

// live returns the number of entries in use.
func (m *versionMemory) live() int { return len(m.entries) - len(m.free) }
