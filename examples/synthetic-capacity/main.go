// Synthetic capacity: the Table IV experiment as a program — measure the
// management pipeline's first-task latency and per-task/per-dependence
// throughput with back-to-back 1-cycle tasks, across the three HIL
// integration levels, and see where each level's bottleneck sits.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

func main() {
	fmt.Println("100 tasks of 1 cycle each, issued as fast as possible, 12 workers")
	for _, eng := range []string{"picos-hw", "picos-comm", "picos-full"} {
		fmt.Printf("\n%-12s %8s  %8s  %8s\n", eng, "L1st", "thrTask", "thrDep")
		for _, c := range []int{1, 2, 3, 4, 7} {
			workload := fmt.Sprintf("case%d", c)
			tr, err := sim.BuildWorkload(sim.Spec{Workload: workload})
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(sim.Spec{Engine: eng, Workload: workload})
			if err != nil {
				log.Fatal(err)
			}
			avg := float64(tr.NumDeps()) / float64(len(tr.Tasks))
			thrDep := "-"
			if avg > 0 {
				thrDep = fmt.Sprintf("%8.0f", res.ThrTask/avg)
			}
			fmt.Printf("case%-8d %8d  %8.0f  %8s\n", c, res.FirstStart, res.ThrTask, thrDep)
		}
	}
	fmt.Println()
	fmt.Println("reading the rows (paper Section V-C): the HW-only pipeline does a")
	fmt.Println("dependence every ~16 cycles; adding the AXI link flattens per-task")
	fmt.Println("cost to ~740 cycles; the full system is bound by ARM-side task")
	fmt.Println("creation (~2.7k cycles), under which extra dependences are nearly")
	fmt.Println("free — the key advantage over the software-only runtime.")
}
