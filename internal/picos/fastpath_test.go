package picos

import (
	"testing"

	"repro/internal/trace"
)

// fastpathTrace is a small mixed workload: producer/consumer chains on a
// few addresses plus independent tasks, enough to exercise every unit.
func fastpathTasks() []trace.Task {
	var tasks []trace.Task
	for i := 0; i < 30; i++ {
		t := trace.Task{ID: uint32(i), Duration: 1}
		switch i % 3 {
		case 0:
			t.Deps = []trace.Dep{{Addr: 0x1000, Dir: trace.InOut}}
		case 1:
			t.Deps = []trace.Dep{{Addr: 0x1000, Dir: trace.In}, {Addr: 0x2000, Dir: trace.Out}}
		case 2:
			t.Deps = []trace.Dep{{Addr: 0x2000, Dir: trace.In}, {Addr: 0x3000 + uint64(i)<<7, Dir: trace.InOut}}
		}
		tasks = append(tasks, t)
	}
	return tasks
}

func submitAll(t *testing.T, p *Picos, tasks []trace.Task) {
	t.Helper()
	for i := range tasks {
		if err := p.Submit(tasks[i].ID, tasks[i].Deps); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunToMatchesStep: advancing with RunTo must leave the model in the
// same externally observable state as stepping every cycle — same
// statistics, clock, in-flight count and ready set — at a range of
// intermediate horizons.
func TestRunToMatchesStep(t *testing.T) {
	tasks := fastpathTasks()
	for _, horizon := range []uint64{1, 7, 64, 300, 1000, 5000} {
		a, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		submitAll(t, a, tasks)
		submitAll(t, b, tasks)
		for a.Now() < horizon {
			a.Step()
		}
		b.RunTo(horizon)
		if a.Now() != b.Now() {
			t.Fatalf("horizon %d: clocks diverge: %d vs %d", horizon, a.Now(), b.Now())
		}
		if *a.Stats() != *b.Stats() {
			t.Fatalf("horizon %d: stats diverge:\nstep:  %+v\nrunto: %+v", horizon, *a.Stats(), *b.Stats())
		}
		if a.InFlight() != b.InFlight() || a.ReadyCount() != b.ReadyCount() {
			t.Fatalf("horizon %d: occupancy diverges: inflight %d/%d ready %d/%d",
				horizon, a.InFlight(), b.InFlight(), a.ReadyCount(), b.ReadyCount())
		}
		ra, aok := a.ReadyAt()
		rb, bok := b.ReadyAt()
		if aok != bok || ra != rb {
			t.Fatalf("horizon %d: ReadyAt diverges: %d,%v vs %d,%v", horizon, ra, aok, rb, bok)
		}
	}
}

// TestRunToNeverRewinds: RunTo and StepTo to a past or current cycle are
// no-ops, and the clock is monotonic across arbitrary interleavings.
func TestRunToNeverRewinds(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, p, fastpathTasks())
	p.RunTo(500)
	if p.Now() != 500 {
		t.Fatalf("RunTo(500) left the clock at %d", p.Now())
	}
	p.RunTo(100)
	if p.Now() != 500 {
		t.Fatalf("RunTo(100) rewound the clock to %d", p.Now())
	}
	p.RunTo(500)
	if p.Now() != 500 {
		t.Fatalf("RunTo(now) moved the clock to %d", p.Now())
	}
	p.RunOut()
	end := p.Now()
	p.RunTo(end - 1)
	if p.Now() != end {
		t.Fatalf("RunTo(end-1) rewound the clock to %d", p.Now())
	}
	if p.Idle() {
		// Drained of events but blocked heads may remain; StepTo must
		// also refuse to rewind.
		p.StepTo(end - 1)
		if p.Now() != end {
			t.Fatalf("StepTo(end-1) rewound the clock to %d", p.Now())
		}
	}
}

// TestNextEventConsistency: NextEvent must never be in the past, and
// stepping straight to it must let some unit make progress — running to
// just before it must not change any statistic other than per-cycle
// stall counters.
func TestNextEventConsistency(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, p, fastpathTasks())
	for i := 0; i < 10000; i++ {
		next, ok := p.NextEvent()
		if !ok {
			break
		}
		if next < p.Now() {
			t.Fatalf("NextEvent %d is before cycle %d", next, p.Now())
		}
		p.RunTo(next)
		p.Step()
	}
	if _, ok := p.NextEvent(); ok {
		t.Fatal("10000 events without draining a 30-task trace")
	}
	// All tasks registered; none finished, so nothing completed yet.
	if got := p.Stats().TasksAdmitted; got == 0 {
		t.Fatal("no task admitted")
	}
}

// TestRunOutDrains: after RunOut the model reports no further events,
// and the ready store holds every dependence-free task.
func TestRunOutDrains(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.Submit(uint32(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	p.RunOut()
	if _, ok := p.NextEvent(); ok {
		t.Fatal("RunOut left events pending")
	}
	if got := p.ReadyCount(); got != 5 {
		t.Fatalf("RunOut readied %d of 5 tasks", got)
	}
}
