package picos

import (
	"fmt"

	"repro/internal/pearson"
)

// DMDesign selects one of the three Dependence Memory designs evaluated
// in Section III-C / V-A of the paper.
type DMDesign uint8

const (
	// DMP8Way keeps 8 ways but indexes with the XOR of Pearson-hashed
	// address bytes, spreading clustered block addresses across sets.
	// It is the paper's "most balanced design" and the zero value, so an
	// unconfigured accelerator gets the shipping configuration.
	DMP8Way DMDesign = iota
	// DM8Way is a 64-set, 8-way cache-like memory indexed by the low 6
	// bits of the dependence address ("direct hash").
	DM8Way
	// DM16Way doubles the associativity (and the VM) of DM8Way.
	DM16Way
)

// String returns the paper's name for the design.
func (d DMDesign) String() string {
	switch d {
	case DM8Way:
		return "DM 8way"
	case DM16Way:
		return "DM 16way"
	case DMP8Way:
		return "DM P+8way"
	default:
		return fmt.Sprintf("DMDesign(%d)", uint8(d))
	}
}

// Designs lists all three DM designs in paper order.
var Designs = []DMDesign{DM8Way, DM16Way, DMP8Way}

// dmSets is the number of sets ("64 entries" accessed by a 6-bit index,
// Figure 4) in every design.
const dmSets = 64

// Ways returns the associativity of the design.
func (d DMDesign) Ways() int {
	if d == DM16Way {
		return 16
	}
	return 8
}

// Capacity returns the total number of DM entries (sets x ways), which
// also sizes the Version Memory: 512 entries for the 8-way designs, 1024
// for the 16-way one ("the corresponding VM is also doubled from 512 to
// 1024 entries to keep it coherent with the DM size").
func (d DMDesign) Capacity() int { return dmSets * d.Ways() }

// dmEntry is one way of the Dependence Memory: the address tag plus the
// head/tail of the address's version chain in the VM and the number of
// live versions (the paper's "counters for dependences that have the
// same address").
type dmEntry struct {
	valid bool
	input bool // all accesses so far are inputs (paper's I bit)
	tag   uint64
	head  uint16 // VM index of the oldest live version
	tail  uint16 // VM index of the newest version
	count uint16 // live versions
}

// dmRef locates a DM entry.
type dmRef struct {
	set, way int
}

// depMemory is the cache-like address-matching store of a DCT. A
// single-DCT build owns all dmSets sets; a sharded fabric hands each
// shard its partition of them (numSets = shardSets(NumDCT)), so the
// fabric's total capacity stays the design's.
type depMemory struct {
	design  DMDesign
	ways    int
	numSets int
	sets    [][]dmEntry
}

func newDepMemory(design DMDesign, numSets int) *depMemory {
	m := &depMemory{design: design, ways: design.Ways(), numSets: numSets}
	m.sets = make([][]dmEntry, numSets)
	for s := range m.sets {
		m.sets[s] = make([]dmEntry, m.ways)
	}
	return m
}

// reset invalidates every entry in place, keeping the way arrays.
func (m *depMemory) reset() {
	for s := range m.sets {
		for w := range m.sets[s] {
			if m.sets[s][w].valid {
				m.sets[s][w] = dmEntry{}
			}
		}
	}
}

// index computes the set for an address: the Pearson fold for P+8way,
// the low 6 bits of the word address for the direct-hash designs
// (Figure 4, Section IV-B). The direct hash selects address bits [7:2],
// not [5:0]: the prototype's Zynq PS side is a 32-bit ARMv7, so the
// addresses the runtime hands the accelerator are word-granular, and
// the byte-offset bits [1:0] of any dependence operand are constant
// zero — indexing with them would leave most sets unreachable.
// (Discovered the hard way: with a byte-address [5:0] index, SparseLu's
// malloc-carved 32KB blocks — stride 0x8010, i.e. 16 mod 64 — land in 4
// of 64 sets and Table II's sparselu/64 row overshoots the paper's
// conflict counts by 2x on 8way and reports 360 where the paper
// measures 0 on 16way; see paperref.KnownGaps.)
// On a sharded fabric the full-design index is folded onto the shard's
// partition of sets; with all 64 sets present the fold is the identity.
func (m *depMemory) index(addr uint64) int {
	var idx int
	if m.design == DMP8Way {
		idx = pearson.Index64(addr)
	} else {
		idx = int((addr >> 2) & (dmSets - 1))
	}
	if m.numSets < dmSets {
		idx %= m.numSets
	}
	return idx
}

// lookup performs the DM compare operation: it returns the entry holding
// addr if present.
func (m *depMemory) lookup(addr uint64) (dmRef, bool) {
	s := m.index(addr)
	for w := 0; w < m.ways; w++ {
		if m.sets[s][w].valid && m.sets[s][w].tag == addr {
			return dmRef{s, w}, true
		}
	}
	return dmRef{}, false
}

// insert claims a free way for addr. It fails when the set is full — a
// DM conflict, the central performance hazard of Section V-A. Way 0 has
// the highest priority, as in Figure 4's pseudo code.
func (m *depMemory) insert(addr uint64, head uint16, input bool) (dmRef, bool) {
	s := m.index(addr)
	for w := 0; w < m.ways; w++ {
		e := &m.sets[s][w]
		if !e.valid {
			*e = dmEntry{valid: true, input: input, tag: addr, head: head, tail: head, count: 1}
			return dmRef{s, w}, true
		}
	}
	return dmRef{}, false
}

// at returns the entry for a ref.
func (m *depMemory) at(r dmRef) *dmEntry { return &m.sets[r.set][r.way] }

// free invalidates the entry.
func (m *depMemory) free(r dmRef) { m.sets[r.set][r.way] = dmEntry{} }

// live returns the number of valid entries (used by drain checks).
func (m *depMemory) live() int {
	n := 0
	for s := range m.sets {
		for w := range m.sets[s] {
			if m.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}
