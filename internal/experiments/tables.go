package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/hil"
	"repro/internal/picos"
	"repro/internal/resources"
	"repro/internal/synth"
	"repro/internal/trace"
)

// appTrace generates and validates one benchmark trace.
func appTrace(app apps.App, block int) (*trace.Trace, error) {
	problem := apps.DefaultProblem
	if app == apps.H264Dec {
		problem = 10
	}
	res, err := apps.Generate(app, problem, block)
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// Table1 regenerates Table I: the real-benchmark characteristics.
func Table1() ([]*Table, error) {
	t := &Table{
		Title:  "Table I: real benchmarks",
		Header: []string{"Name", "P/BlockSize", "#Tasks", "#Dep", "AveTSize", "SeqExec"},
	}
	for _, app := range apps.Apps {
		for _, bs := range apps.BlockSizes(app) {
			tr, err := appTrace(app, bs)
			if err != nil {
				return nil, err
			}
			s := tr.Summarize()
			depRange := fmt.Sprintf("%d", s.MaxDeps)
			if s.MinDeps != s.MaxDeps {
				depRange = fmt.Sprintf("%d-%d", s.MinDeps, s.MaxDeps)
			}
			size := fmt.Sprintf("%d/%d", apps.DefaultProblem, bs)
			if app == apps.H264Dec {
				size = fmt.Sprintf("10f/%d", bs)
			}
			t.Rows = append(t.Rows, []string{
				string(app), size, fmt.Sprintf("%d", s.NumTasks), depRange,
				e2(s.AvgTaskSize), e2(float64(tr.Baseline())),
			})
		}
	}
	return []*Table{t}, nil
}

// table2Workloads are the benchmark/block-size pairs of Table II.
var table2Workloads = []struct {
	app apps.App
	bs  int
}{
	{apps.Heat, 128}, {apps.Heat, 64},
	{apps.SparseLu, 128}, {apps.SparseLu, 64},
	{apps.Lu, 64}, {apps.Lu, 32},
	{apps.Cholesky, 256}, {apps.Cholesky, 128},
}

// Table2 regenerates Table II: DM conflicts per design with 12 workers
// in HW-only mode.
func Table2(opt Options) ([]*Table, error) {
	t := &Table{
		Title:  "Table II: #DM conflicts in three Picos designs (12 workers, HW-only)",
		Header: []string{"Name", "BlockSize", "DM 8way", "DM 16way", "DM P+8way"},
	}
	workloads := table2Workloads
	if opt.Quick {
		workloads = workloads[:4]
	}
	for _, wl := range workloads {
		tr, err := appTrace(wl.app, wl.bs)
		if err != nil {
			return nil, err
		}
		row := []string{string(wl.app), fmt.Sprintf("%d", wl.bs)}
		for _, design := range picos.Designs {
			cfg := hil.DefaultConfig()
			cfg.Picos.Design = design
			// Admit on TRS slots only, like the prototype: the conflict
			// count then includes memory-capacity pressure (the paper's
			// Heat/P+8way rows are capacity-bound).
			cfg.Picos.Admission = picos.AdmitSlotsOnly
			res, err := hil.Run(tr, cfg)
			if err != nil {
				return nil, fmt.Errorf("table2 %s/%d %s: %w", wl.app, wl.bs, design, err)
			}
			row = append(row, d(res.Stats.DMConflicts+res.Stats.VMStallEvents))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "counts are dependences that could not be stored on arrival (set conflict or VM capacity)")
	return []*Table{t}, nil
}

// Table3 regenerates Table III: the hardware resource model.
func Table3() ([]*Table, error) {
	t := &Table{
		Title:  "Table III: hardware resource consumption (XC7Z020: 53200 LUT, 106400 FF, 140 BRAM36)",
		Header: []string{"Design", "LUTs", "FFs", "BRAM(36Kb)"},
	}
	row := func(r resources.Report) {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%.1f%%", r.LUTPct()),
			fmt.Sprintf("%.2f%%", r.FFPct()),
			fmt.Sprintf("%.1f%%", r.BRAMPct()),
		})
	}
	row(resources.TM())
	row(resources.VM(picos.DM8Way))
	row(resources.VM(picos.DM16Way))
	row(resources.DM(picos.DM8Way))
	row(resources.DM(picos.DM16Way))
	row(resources.DM(picos.DMP8Way))
	row(resources.TRS())
	row(resources.DCT(picos.DMP8Way))
	row(resources.Glue())
	row(resources.FullPicos(picos.DMP8Way, 1, 1))
	t.Notes = append(t.Notes, "analytic model calibrated to the paper's synthesis results; see DESIGN.md")
	return []*Table{t}, nil
}

// Table4 regenerates Table IV: latency and throughput of the synthetic
// benchmarks under the three HIL modes, 12 workers.
func Table4(opt Options) ([]*Table, error) {
	modes := []hil.Mode{hil.HWOnly, hil.HWComm, hil.FullSystem}
	header := []string{"Testcase", "Case1", "Case2", "Case3", "Case4", "Case5", "Case6", "Case7"}

	t := &Table{Title: "Table IV: results of the synthetic benchmarks (12 workers)", Header: header}
	// #d1st / avg#d row.
	depRow := []string{"#d1st/avg#d"}
	traces := make([]*trace.Trace, 7)
	for c := 1; c <= 7; c++ {
		tr, err := synth.Case(c)
		if err != nil {
			return nil, err
		}
		traces[c-1] = tr
		avg := float64(tr.NumDeps()) / float64(len(tr.Tasks))
		depRow = append(depRow, fmt.Sprintf("%d/%.0f", len(tr.Tasks[0].Deps), avg))
	}
	t.Rows = append(t.Rows, depRow)

	for _, mode := range modes {
		l1 := []string{mode.String() + " L1st"}
		thrT := []string{mode.String() + " thrTask"}
		thrD := []string{mode.String() + " thrDep"}
		for c := 1; c <= 7; c++ {
			tr := traces[c-1]
			cfg := hil.DefaultConfig()
			cfg.Mode = mode
			res, err := hil.Run(tr, cfg)
			if err != nil {
				return nil, fmt.Errorf("table4 case%d %s: %w", c, mode, err)
			}
			l1 = append(l1, d(res.FirstStart))
			thrT = append(thrT, fmt.Sprintf("%.0f", res.ThrTask))
			avg := float64(tr.NumDeps()) / float64(len(tr.Tasks))
			if avg > 0 {
				thrD = append(thrD, fmt.Sprintf("%.0f", res.ThrTask/avg))
			} else {
				thrD = append(thrD, "-")
			}
		}
		t.Rows = append(t.Rows, l1, thrT, thrD)
	}
	return []*Table{t}, nil
}
