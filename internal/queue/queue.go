// Package queue provides small, allocation-friendly FIFO and LIFO
// containers used throughout the simulator: hardware FIFOs between Picos
// units, ready-task queues in the Task Scheduler, and event queues in the
// software-runtime model.
package queue

// FIFO is a growable ring-buffer queue. The zero value is ready to use.
// If a capacity limit is set, Push reports failure once Len() == limit,
// which is how hardware backpressure is modelled.
type FIFO[T any] struct {
	buf   []T
	head  int
	size  int
	limit int // 0 means unbounded
}

// NewFIFO returns a FIFO with the given capacity limit. limit <= 0 means
// unbounded.
func NewFIFO[T any](limit int) *FIFO[T] {
	if limit < 0 {
		limit = 0
	}
	return &FIFO[T]{limit: limit}
}

// Limit returns the capacity limit (0 = unbounded).
func (q *FIFO[T]) Limit() int { return q.limit }

// Len returns the number of queued elements.
func (q *FIFO[T]) Len() int { return q.size }

// Empty reports whether the queue holds no elements.
func (q *FIFO[T]) Empty() bool { return q.size == 0 }

// Full reports whether the queue is at its capacity limit.
func (q *FIFO[T]) Full() bool { return q.limit > 0 && q.size == q.limit }

// Push appends v and reports whether it was accepted. It fails only when
// the queue is Full.
func (q *FIFO[T]) Push(v T) bool {
	if q.Full() {
		return false
	}
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	return true
}

// Pop removes and returns the oldest element. ok is false when empty.
func (q *FIFO[T]) Pop() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // avoid retaining references
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *FIFO[T]) Peek() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// Tail returns a pointer to the most recently pushed element, for
// in-place coalescing of adjacent entries (the HIL link batches
// same-stamp deliveries this way). The pointer is only valid until the
// next Push, which may grow the ring and move the storage.
func (q *FIFO[T]) Tail() (*T, bool) {
	if q.size == 0 {
		return nil, false
	}
	return &q.buf[(q.head+q.size-1)%len(q.buf)], true
}

// Reset drops all elements but keeps the backing storage.
func (q *FIFO[T]) Reset() {
	var zero T
	for i := range q.buf {
		q.buf[i] = zero
	}
	q.head, q.size = 0, 0
}

func (q *FIFO[T]) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 8
	}
	if q.limit > 0 && n > q.limit {
		n = q.limit
	}
	nb := make([]T, n)
	for i := 0; i < q.size; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// Stack is a LIFO used by the Task Scheduler's alternative policy
// (Figure 9 of the paper). The zero value is ready to use.
type Stack[T any] struct {
	buf   []T
	limit int
}

// NewStack returns a Stack with the given capacity limit (<=0: unbounded).
func NewStack[T any](limit int) *Stack[T] {
	if limit < 0 {
		limit = 0
	}
	return &Stack[T]{limit: limit}
}

// Len returns the number of stacked elements.
func (s *Stack[T]) Len() int { return len(s.buf) }

// Empty reports whether the stack holds no elements.
func (s *Stack[T]) Empty() bool { return len(s.buf) == 0 }

// Full reports whether the stack is at its capacity limit.
func (s *Stack[T]) Full() bool { return s.limit > 0 && len(s.buf) == s.limit }

// Push adds v and reports whether it was accepted.
func (s *Stack[T]) Push(v T) bool {
	if s.Full() {
		return false
	}
	s.buf = append(s.buf, v)
	return true
}

// Pop removes and returns the most recently pushed element.
func (s *Stack[T]) Pop() (v T, ok bool) {
	if len(s.buf) == 0 {
		return v, false
	}
	v = s.buf[len(s.buf)-1]
	var zero T
	s.buf[len(s.buf)-1] = zero
	s.buf = s.buf[:len(s.buf)-1]
	return v, true
}

// Peek returns the most recently pushed element without removing it.
func (s *Stack[T]) Peek() (v T, ok bool) {
	if len(s.buf) == 0 {
		return v, false
	}
	return s.buf[len(s.buf)-1], true
}

// Reset drops all elements but keeps the backing storage.
func (s *Stack[T]) Reset() {
	var zero T
	for i := range s.buf {
		s.buf[i] = zero
	}
	s.buf = s.buf[:0]
}
