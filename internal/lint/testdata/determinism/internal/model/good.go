package model

import (
	"fmt"
	"io"
	"sort"
)

// RenderSorted is the sanctioned shape: collect the keys, sort, then
// emit. The map range appends only the key, which the analyzer must
// leave alone.
func RenderSorted(w io.Writer, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, counts[k])
	}
}

// Total only folds over the map; order-independent reductions are fine.
func Total(counts map[string]int) int {
	sum := 0
	for _, n := range counts {
		sum += n
	}
	return sum
}
