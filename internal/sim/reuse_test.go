package sim_test

import (
	"testing"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

// reuseEngines is every registered engine: the three pooled HIL
// platforms plus the scratch-pooled software models.
var reuseEngines = []string{"picos-hw", "picos-comm", "picos-full", "nanos", "perfect"}

// TestEngineReuseEquivalence (the registry-level half of the engine-
// reuse suite; the strict fresh-vs-pooled comparison lives in
// internal/hil): every engine runs the equivalence workload matrix
// twice through the warm engine pools, with the case7+8way wedge run
// interleaved between passes so the second pass starts from engines
// that just digested a deadlocked run. Both passes must produce
// byte-identical Result JSON — pooled state must never leak between
// runs.
func TestEngineReuseEquivalence(t *testing.T) {
	wedge := sim.Spec{Engine: "picos-hw", Workload: "case7", Design: "8way", Watchdog: 500_000}
	type key struct{ engine, workload string }
	firstPass := map[key]string{}
	for pass := 0; pass < 2; pass++ {
		for _, engine := range reuseEngines {
			// Poison the pools with a wedged run before each engine's
			// block; its partial state must be fully Reset away.
			if wres, err := sim.Run(wedge); err != nil {
				t.Fatalf("wedge run: %v", err)
			} else if !wres.Wedged {
				t.Fatal("wedge spec did not wedge")
			}
			for _, base := range equivalenceWorkloads() {
				spec := base
				spec.Engine = engine
				res, err := sim.Run(spec)
				if err != nil {
					t.Fatalf("pass %d: %s on %s: %v", pass, engine, spec.Workload, err)
				}
				j := resultJSON(t, res)
				k := key{engine, spec.Workload}
				if pass == 0 {
					firstPass[k] = j
					continue
				}
				if firstPass[k] != j {
					t.Errorf("%s on %s: pooled rerun diverges\npass1: %s\npass2: %s",
						engine, spec.Workload, firstPass[k], j)
				}
			}
		}
	}
}
