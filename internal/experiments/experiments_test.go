package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestNamesMatchRegistry: the paper-ordered Names list and the registry
// must agree exactly — a Register without a Names entry (or vice versa)
// is a wiring bug.
func TestNamesMatchRegistry(t *testing.T) {
	if len(Names) != len(registry) {
		t.Fatalf("Names has %d entries, registry %d", len(Names), len(registry))
	}
	for _, name := range Names {
		if _, ok := registry[name]; !ok {
			t.Errorf("%s listed in Names but not registered", name)
		}
	}
}

func TestRegisterGuards(t *testing.T) {
	for _, bad := range []string{"", "table1"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", bad)
				}
			}()
			Register(bad, func(Options) ([]*Table, error) { return nil, nil })
		}()
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still simulates; skipped in -short")
	}
	for _, name := range Names {
		tables, err := Run(name, Options{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", name)
		}
		for _, tab := range tables {
			if len(tab.Rows) == 0 || len(tab.Header) == 0 {
				t.Fatalf("%s: empty table %q", name, tab.Title)
			}
			var buf bytes.Buffer
			if err := tab.Fprint(&buf); err != nil {
				t.Fatalf("%s: print: %v", name, err)
			}
			if !strings.Contains(buf.String(), tab.Header[0]) {
				t.Fatalf("%s: printed output missing header", name)
			}
		}
	}
}

// TestHeteroScalingRoofline: every hetero-scaling lane must respect the
// class-weighted perfect roofline — the oracle runs on the same class
// mix, so an accelerated lane beating it would mean the roofline is not
// a bound (the scheduling-anomaly bug the best-of-candidates oracle
// exists to prevent). Also pins the lane coverage: every mix carries
// all policy x steal combinations and none of the grid wedges.
func TestHeteroScalingRoofline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates; skipped in -short")
	}
	cells, err := HeteroScalingData(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	lanes := map[string]int{}
	for _, c := range cells {
		if c.Wedged {
			t.Errorf("%s/%s/%s steal=%v wedged at %d", c.Family, c.Classes, c.Sched, c.Steal, c.WedgedAt)
			continue
		}
		if c.SpeedupVsPerfect <= 0 || c.SpeedupVsPerfect > 1+1e-9 {
			t.Errorf("%s/%s/%s steal=%v: speedup-vs-perfect %.6f outside (0,1]",
				c.Family, c.Classes, c.Sched, c.Steal, c.SpeedupVsPerfect)
		}
		lanes[c.Classes]++
	}
	wantLanes := len(heteroPolicies) * 2 * 2 // policies x steal x quick families
	for mix, n := range lanes {
		if n != wantLanes {
			t.Errorf("mix %s has %d lanes, want %d", mix, n, wantLanes)
		}
	}
}

func TestChartFromTable(t *testing.T) {
	tab := &Table{
		Title:  "sweep",
		Header: []string{"Workers", "A", "B"},
		Rows: [][]string{
			{"2", "1.5", "1.2"},
			{"12", "9.0", "3.3"},
		},
	}
	c := tab.Chart()
	if c == nil || len(c.Series) != 2 {
		t.Fatalf("chart = %+v", c)
	}
	if c.Series[0].Label != "A" || len(c.Series[0].Points) != 2 {
		t.Fatalf("series = %+v", c.Series[0])
	}
	// Non-numeric tables are not chartable.
	bad := &Table{Header: []string{"Name", "X"}, Rows: [][]string{{"a", "1"}, {"b", "2"}}}
	if bad.Chart() != nil {
		t.Fatal("non-numeric x column should not chart")
	}
	empty := &Table{Header: []string{"Workers", "A"}, Rows: [][]string{{"1", "2"}}}
	if empty.Chart() != nil {
		t.Fatal("single-row table should not chart")
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) of %q not numeric: %v", row, col, tab.Title, err)
	}
	return v
}

// TestTable2Shape asserts the paper's central Table II claims on the
// full-size experiment: P+8way has (far) fewer conflicts than the
// direct-hash designs, and the direct designs are close to each other.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table II in -short")
	}
	tables, err := Run("table2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	for r := range tab.Rows {
		c8 := cell(t, tab, r, 2)
		c16 := cell(t, tab, r, 3)
		cp8 := cell(t, tab, r, 4)
		if cp8 > c8 || cp8 > c16 {
			t.Errorf("row %v: P+8way conflicts %v not minimal (%v, %v)", tab.Rows[r][:2], cp8, c8, c16)
		}
		if c16 > c8 {
			t.Errorf("row %v: 16way conflicts %v exceed 8way %v", tab.Rows[r][:2], c16, c8)
		}
	}
}

// TestTable4Shape asserts the Table IV relationships the paper
// highlights: HW+comm throughput is flat (~740) regardless of deps, and
// Full-system throughput grows only weakly with deps while per-dep
// throughput shrinks proportionally.
func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table IV in -short")
	}
	tables, err := Run("table4", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	// Rows: 0 deps; 1-3 HW-only; 4-6 HW+comm; 7-9 Full-system.
	commThr := tab.Rows[5]
	for c := 1; c < len(commThr); c++ {
		v := cell(t, tab, 5, c)
		if v < 500 || v > 1100 {
			t.Errorf("HW+comm thrTask %s = %v, want ~740 (flat across cases)", tab.Header[c], v)
		}
	}
	fullThr1 := cell(t, tab, 8, 1) // Case1, 0 deps
	fullThr3 := cell(t, tab, 8, 3) // Case3, 15 deps
	if fullThr3 < fullThr1 || fullThr3 > 1.5*fullThr1 {
		t.Errorf("Full-system thrTask grows too much with deps: %v -> %v", fullThr1, fullThr3)
	}
	// HW-only per-dep throughput ~16-24 cycles for the pipelined cases.
	for _, c := range []int{2, 3, 5, 7} {
		v := cell(t, tab, 3, c)
		if v < 10 || v > 45 {
			t.Errorf("HW-only thrDep %s = %v, want 16-24ish", tab.Header[c], v)
		}
	}
}
