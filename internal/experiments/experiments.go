// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): Table I-IV and Figures 1, 8, 9, 10 and 11.
// Each experiment is a registry entry — a named function returning
// Tables, titled grids of formatted cells that print in the same layout
// as the paper, so paper-vs-reproduction comparison is a side-by-side
// read (recorded in EXPERIMENTS.md). All simulation goes through the
// sim engine registry; the worker sweeps run in parallel via sim.Sweep.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Options tunes experiment sizes. The zero value reproduces the paper's
// full configuration; Quick trims worker sweeps and block sizes for CI.
// CycleStepped forces every simulation onto the per-cycle reference loop
// instead of the event-driven fast path — the results are identical (the
// equivalence suite in internal/sim proves it); the knob exists for
// debugging and for benchmarking the fast path itself.
type Options struct {
	Quick        bool
	CycleStepped bool
}

// ExperimentFunc regenerates one experiment.
type ExperimentFunc func(Options) ([]*Table, error)

// Names lists the experiments in paper order. Every name is backed by a
// registry entry (registered from tables.go and figures.go).
var Names = []string{
	"table1", "table2", "table3", "table4",
	"fig1", "fig8", "fig9", "fig10", "fig11",
	"capacity-map", "wedge-frontier", "shard-capacity", "hetero-scaling", "resilience",
}

var registry = map[string]ExperimentFunc{}

// FastPathSensitive reports whether an experiment runs any simulation
// that branches on the fast-path knob (the Picos HIL engines). Table I
// only generates traces, Table III evaluates the analytic resource
// model, and Figures 1 and 10 run the inherently event-driven nanos
// model — for those, a "fast vs cycle-stepped" timing comparison times
// the identical computation twice, and any measured ratio is machine
// noise, not a property of the scheduler (picos-bench -json reports
// exactly 1.0 for them instead of a coin flip).
func FastPathSensitive(name string) bool {
	switch name {
	case "table1", "table3", "fig1", "fig10":
		return false
	}
	return true
}

// Register adds an experiment to the registry; like sim.Register it
// panics on a duplicate name, which is an init-time programming error.
func Register(name string, fn ExperimentFunc) {
	if name == "" {
		panic("experiments: Register called with an empty name")
	}
	if _, dup := registry[name]; dup {
		panic("experiments: duplicate experiment registration: " + name)
	}
	registry[name] = fn
}

// Run executes one experiment by registry name.
func Run(name string, opt Options) ([]*Table, error) {
	fn, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", name, strings.Join(Names, ", "))
	}
	return fn(opt)
}

// sweep expands nothing — it executes prebuilt specs on the sim worker
// pool and returns the results in spec order, failing on the first
// errored grid point. Options that apply uniformly to every grid point
// (the fast-path knob) are stamped here so individual experiments never
// have to thread them.
func sweep(opt Options, specs []sim.Spec) ([]*sim.Result, error) {
	if opt.CycleStepped {
		off := sim.Bool(false)
		for i := range specs {
			specs[i].FastForward = off
		}
	}
	out := make([]*sim.Result, len(specs))
	for _, it := range sim.Sweep(specs, 0) {
		if it.Err != "" {
			return nil, fmt.Errorf("experiments: %s on %s: %s", it.Spec.Engine, it.Spec.Workload, it.Err)
		}
		out[it.Index] = it.Result
	}
	return out, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func e2(v float64) string { return fmt.Sprintf("%.2e", v) }
func d(v uint64) string   { return fmt.Sprintf("%d", v) }
