package perfect

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func TestErrors(t *testing.T) {
	tr := &trace.Trace{}
	if _, err := Run(tr, 0); err == nil {
		t.Fatal("accepted 0 workers")
	}
	if r, err := Run(tr, 4); err != nil || r.Makespan != 0 {
		t.Fatalf("empty trace: %v %+v", err, r)
	}
}

func TestChainIsSerial(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 10; i++ {
		tr.Tasks = append(tr.Tasks, trace.Task{
			ID: uint32(i), Duration: 7,
			Deps: []trace.Dep{{Addr: 0xA, Dir: trace.InOut}},
		})
	}
	r, err := Run(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 70 {
		t.Fatalf("chain makespan = %d, want 70", r.Makespan)
	}
	if r.Speedup != 1 {
		t.Fatalf("chain speedup = %.2f, want 1", r.Speedup)
	}
}

func TestIndependentPerfectlyParallel(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 16; i++ {
		tr.Tasks = append(tr.Tasks, trace.Task{ID: uint32(i), Duration: 100})
	}
	r, err := Run(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 400 {
		t.Fatalf("makespan = %d, want 400 (16 tasks / 4 workers)", r.Makespan)
	}
	if r.Speedup != 4 {
		t.Fatalf("speedup = %.2f, want 4", r.Speedup)
	}
}

func TestLegalityAndBounds(t *testing.T) {
	res, err := apps.Generate(apps.Cholesky, 2048, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	g := taskgraph.Build(tr)
	cp := g.CriticalPath()
	seq := tr.SeqCycles()
	prev := uint64(1 << 62)
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		r, err := Run(tr, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckSchedule(r.Start, r.Finish); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		// Bounds: critical path <= makespan <= sequential; monotone in w.
		if r.Makespan < cp {
			t.Fatalf("workers=%d: makespan %d below critical path %d", w, r.Makespan, cp)
		}
		if r.Makespan > seq {
			t.Fatalf("workers=%d: makespan %d above sequential %d", w, r.Makespan, seq)
		}
		if r.Makespan > prev {
			t.Fatalf("workers=%d: makespan %d worse than with fewer workers (%d)", w, r.Makespan, prev)
		}
		prev = r.Makespan
	}
	// One worker == sequential.
	r1, _ := Run(tr, 1)
	if r1.Makespan != seq {
		t.Fatalf("1 worker makespan %d != sequential %d", r1.Makespan, seq)
	}
}

func TestGreedyBoundProperty(t *testing.T) {
	// Graham bound: greedy list scheduling is within 2x of optimal, so
	// makespan <= seq/w + cp always holds.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		tr := &trace.Trace{}
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			task := trace.Task{ID: uint32(i), Duration: uint64(rng.Intn(500) + 1)}
			for d := rng.Intn(3); d > 0; d-- {
				task.Deps = append(task.Deps, trace.Dep{
					Addr: uint64(rng.Intn(20))*64 + 0x1000,
					Dir:  trace.Direction(rng.Intn(3)),
				})
			}
			// Deduplicate addresses within the task.
			seen := map[uint64]bool{}
			var deps []trace.Dep
			for _, d := range task.Deps {
				if !seen[d.Addr] {
					seen[d.Addr] = true
					deps = append(deps, d)
				}
			}
			task.Deps = deps
			tr.Tasks = append(tr.Tasks, task)
		}
		g := taskgraph.Build(tr)
		w := 1 + rng.Intn(8)
		r, err := Run(tr, w)
		if err != nil {
			t.Fatal(err)
		}
		bound := tr.SeqCycles()/uint64(w) + g.CriticalPath()
		if r.Makespan > bound {
			t.Fatalf("trial %d: makespan %d exceeds Graham bound %d", trial, r.Makespan, bound)
		}
	}
}
