package taskgraph

import (
	"sort"

	"repro/internal/trace"
)

// Incremental performs the same dependence analysis as Build one task at
// a time, for streaming consumers that never hold the whole trace: feed
// tasks in creation order and Preds returns each task's deduplicated
// predecessor list — exactly Build's g.Pred entry for that index (the
// differential test in stream_test.go enforces it).
//
// Memory grows with the number of *distinct dependence addresses*, not
// with the number of tasks: per address the analysis keeps the last
// writer and the readers since that writer, which is the irreducible
// state of OmpSs dependence semantics (any future task may still name
// the address). Grid patterns touch O(width) addresses, so unbounded
// replays stay bounded; fresh-address families inherently grow it.
type Incremental struct {
	states  map[uint64]*addrState
	scratch []int32
}

// addrState is the per-address analysis state, shared in shape with
// Build's local.
type addrState struct {
	lastWriter int32   // -1 if none
	readers    []int32 // readers since lastWriter
}

// NewIncremental returns an empty analysis.
func NewIncremental() *Incremental {
	return &Incremental{states: make(map[uint64]*addrState)}
}

// Reset empties the analysis for reuse, keeping the map's capacity.
func (inc *Incremental) Reset() {
	clear(inc.states)
}

// Preds analyzes the next task (ID id, in creation order) and returns
// its deduplicated, ascending predecessor list. The returned slice is
// scratch owned by the Incremental — copy it if it must survive the
// next call.
func (inc *Incremental) Preds(id int32, deps []trace.Dep) []int32 {
	preds := inc.scratch[:0]
	for _, d := range deps {
		st := inc.states[d.Addr]
		if st == nil {
			st = &addrState{lastWriter: -1}
			inc.states[d.Addr] = st
		}
		if d.Dir.Reads() && st.lastWriter >= 0 {
			preds = append(preds, st.lastWriter) // RAW
		}
		if d.Dir.Writes() {
			if st.lastWriter >= 0 {
				preds = append(preds, st.lastWriter) // WAW
			}
			for _, r := range st.readers { // WAR
				if r != id {
					preds = append(preds, r)
				}
			}
			st.lastWriter = id
			st.readers = st.readers[:0]
		}
		if d.Dir.Reads() && !d.Dir.Writes() {
			st.readers = append(st.readers, id)
		}
	}
	preds = dedupeInc(preds)
	inc.scratch = preds
	return preds
}

// dedupeInc matches Build's dedupe but keeps the backing array for
// scratch reuse (dedupe may alias a subslice; here the caller owns the
// buffer either way).
func dedupeInc(xs []int32) []int32 {
	if len(xs) <= 1 {
		return xs
	}
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
	w := 1
	for _, x := range xs[1:] {
		if x != xs[w-1] {
			xs[w] = x
			w++
		}
	}
	return xs[:w]
}
