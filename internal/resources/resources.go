// Package resources is an analytic hardware-cost model of the Picos
// prototype on the Zynq XC7Z020, reproducing Table III of the paper
// without running synthesis. Memories are costed from their geometry
// (entries x width x banks mapped onto 36Kb BRAMs); logic is costed from
// comparator/mux structure (per-way tag comparators, priority encoders,
// the Pearson hash tables) plus per-module control constants calibrated
// against the paper's synthesis results. The model exists so the design
// trade-off the paper discusses — "we could have decided to increase the
// 16way into a 32way doubling the size ... but this would lead to a
// double increase of the resource usage" — can be explored
// parametrically (see the ablation benchmarks).
package resources

import "repro/internal/picos"

// XC7Z020 device capacity (Zedboard), from the Zynq-7000 TRM.
const (
	ZynqLUTs   = 53200
	ZynqFFs    = 106400
	ZynqBRAM36 = 140
)

// Report is the absolute resource usage of one block.
type Report struct {
	Name string
	LUTs int
	FFs  int
	BRAM int // 36Kb blocks
}

// Add accumulates another block into the report.
func (r Report) Add(o Report) Report {
	return Report{Name: r.Name, LUTs: r.LUTs + o.LUTs, FFs: r.FFs + o.FFs, BRAM: r.BRAM + o.BRAM}
}

// LUTPct returns LUT usage as a percentage of the device.
func (r Report) LUTPct() float64 { return 100 * float64(r.LUTs) / ZynqLUTs }

// FFPct returns FF usage as a percentage of the device.
func (r Report) FFPct() float64 { return 100 * float64(r.FFs) / ZynqFFs }

// BRAMPct returns BRAM usage as a percentage of the device.
func (r Report) BRAMPct() float64 { return 100 * float64(r.BRAM) / ZynqBRAM36 }

const bramBits = 36 * 1024

// bramBlocks maps `banks` independent memories of entries x width bits
// each onto 36Kb BRAMs (each bank needs at least one block).
func bramBlocks(entries, widthBits, banks int) int {
	perBank := (entries*widthBits + bramBits - 1) / bramBits
	if perBank < 1 {
		perBank = 1
	}
	return banks * perBank
}

// TM models the Task Memory: TM0 (256 tasks x ~64b, double-banked for the
// two TRS access FSMs) plus five TMX banks of 256 entries x 3 dependence
// records (~48b each).
func TM() Report {
	return Report{
		Name: "TM",
		LUTs: 210,
		FFs:  11,
		BRAM: bramBlocks(256, 64, 2) + bramBlocks(256, 3*48, 5),
	}
}

// VM models the Version Memory: 512 entries for the 8-way designs, 1024
// for 16-way ("doubled ... to keep it coherent with the DM size"), 80
// bits per version record.
func VM(design picos.DMDesign) Report {
	return Report{
		Name: "VM for " + design.String(),
		LUTs: 210,
		FFs:  11,
		BRAM: bramBlocks(design.Capacity(), 80, 1),
	}
}

// DM models the Dependence Memory: one 64-entry tag bank per way (read in
// parallel for the single-cycle compare), data banks shared two ways per
// bank, and for the Pearson design the four 256x8 hash tables. Logic is
// the per-way 64-bit tag comparators plus a priority encoder that grows
// quadratically with associativity, plus the hash XOR tree.
func DM(design picos.DMDesign) Report {
	ways := design.Ways()
	r := Report{Name: design.String()}
	r.BRAM = bramBlocks(64, 84, ways) + bramBlocks(64, 84, ways/2)
	r.LUTs = ways*64 + ways*ways*2
	r.FFs = 106
	if design == picos.DMP8Way {
		r.BRAM += 2 // four 256x8 Pearson tables packed into two blocks
		r.LUTs += 265
	}
	return r
}

// TRS models one Task Reservation Station module (control plus its TM).
func TRS() Report {
	tm := TM()
	return Report{Name: "TRS", LUTs: tm.LUTs + 640, FFs: tm.FFs + 609, BRAM: tm.BRAM}
}

// DCT models one Dependence Chain Tracker module (control plus DM + VM).
func DCT(design picos.DMDesign) Report {
	dm := DM(design)
	vm := VM(design)
	return Report{
		Name: "DCT (" + design.String() + ")",
		LUTs: dm.LUTs + vm.LUTs + 430,
		FFs:  dm.FFs + vm.FFs + 193,
		BRAM: dm.BRAM + vm.BRAM,
	}
}

// Glue models GW + ARB + TS, which "are designed simply and their costs
// are trivial" — no BRAM.
func Glue() Report {
	return Report{Name: "GW+ARB+TS", LUTs: 690, FFs: 400, BRAM: 0}
}

// FullPicos models the complete accelerator with n TRS and n DCT
// instances (n=1 is the paper's prototype; the Arbiter cost grows with
// the crossbar size).
func FullPicos(design picos.DMDesign, nTRS, nDCT int) Report {
	r := Report{Name: "Full Picos (" + design.String() + ")"}
	for i := 0; i < nTRS; i++ {
		r = r.Add(TRS())
	}
	for i := 0; i < nDCT; i++ {
		r = r.Add(DCT(design))
	}
	glue := Glue()
	// Crossbar growth: each extra port adds routing muxes.
	extraPorts := (nTRS - 1) + (nDCT - 1)
	glue.LUTs += extraPorts * 180
	glue.FFs += extraPorts * 90
	return r.Add(glue)
}
