package picos

// arbiter routes messages between TRSs and DCTs (and TRS-to-TRS chain
// wakes, which the paper notes are "managed by the Arbiter module"). It
// forwards a bounded number of messages per cycle, adding one hop of
// latency, so long wake chains pay per-link routing time exactly like
// the prototype.
//
// Routing is visibility-ordered: the crossbar grants whichever message
// is ready this cycle, not the one whose producing engine happened to
// issue its send first. Messages therefore queue on (visibility stamp,
// issue order) — a status still inside a DCT's 16-cycle registration
// pipeline cannot head-of-line block a release or wake that is already
// on the wire. Per-flow order is preserved: every unit engine emits with
// non-decreasing stamps, and equal stamps fall back to issue order.
// (The pre-fix strict-FIFO arbiter was the main reason the Table IV
// case4 chain round trip over-measured: each link's finish and wake
// packets waited out an unrelated in-flight registration status.)
type arbiter struct {
	p      *Picos
	timing *Timing
	in     arbHeap
	routed uint64
	hid    int32 // horizon-heap slot
}

func newArbiter(p *Picos) *arbiter {
	return &arbiter{p: p, timing: &p.cfg.Timing}
}

// reset scrubs the arbiter back to its just-built state.
func (a *arbiter) reset() {
	a.in.reset()
	a.routed = 0
}

// route accepts a message that becomes routable at cycle `at`.
func (a *arbiter) route(m arbMsg, at uint64) {
	a.in.push(m, at)
	a.p.markDirty(a.hid)
}

func (a *arbiter) step(now uint64) {
	for i := 0; i < a.timing.ArbBandwidth; i++ {
		m, ok := a.in.pop(now)
		if !ok {
			return
		}
		a.p.markDirty(a.hid)
		a.routed++
		at := now + a.timing.ArbHop
		if f := a.p.cfg.Faults; f != nil {
			// arb:stall — a one-shot crossbar hiccup deferring the message
			// being routed (and, through per-flow ordering, what follows
			// it on the same flow).
			at += f.ArbStallDelay(now)
		}
		switch m.kind {
		case arbStat:
			t := a.p.trs[m.stat.task.TRS]
			t.statusQ.push(m.stat, at)
			a.p.markDirty(t.hid)
		case arbWake:
			t := a.p.trs[m.wake.task.TRS]
			t.wakeQ.push(m.wake, at)
			a.p.markDirty(t.hid)
		case arbFin:
			// DCT-bound traffic pays the destination shard's chain
			// distance on top of the arbiter hop (shard 0 is adjacent).
			d := a.p.dct[m.fin.vm.DCT]
			d.finQ.push(m.fin, at+uint64(m.fin.vm.DCT)*a.timing.ShardHop)
			a.p.markDirty(d.hid)
		case arbNewDep:
			shard := a.p.dctOf(m.dep.addr)
			d := a.p.dct[shard]
			d.newDepQ.push(m.dep, at+uint64(shard)*a.timing.ShardHop)
			a.p.markDirty(d.hid)
		}
	}
}

// nextEvent returns the earliest cycle at which the arbiter can route
// its next message (it has no busy timer — only message visibility gates
// it).
func (a *arbiter) nextEvent() (uint64, bool) { return a.in.headAt() }

func (a *arbiter) active(now uint64) bool { return !a.in.empty() }

// arbEntry is one queued message of the visibility-ordered arbiter.
type arbEntry struct {
	at  uint64 // visibility stamp: earliest cycle the message can route
	seq uint64 // issue order, the tie-break for equal stamps
	m   arbMsg
}

// arbHeap is a binary min-heap of messages keyed (at, seq): the head is
// the earliest-visible message, with ties resolved in issue order so
// same-cycle sends route exactly as the pre-heap FIFO did. Storage is
// reused across resets.
type arbHeap struct {
	h   []arbEntry
	seq uint64
}

func (q *arbHeap) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

//picos:hotpath
func (q *arbHeap) push(m arbMsg, at uint64) {
	q.h = append(q.h, arbEntry{at: at, seq: q.seq, m: m})
	q.seq++
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// pop removes and returns the earliest-visible message if its stamp has
// been reached at cycle now.
//
//picos:hotpath
func (q *arbHeap) pop(now uint64) (arbMsg, bool) {
	if len(q.h) == 0 || q.h[0].at > now {
		return arbMsg{}, false
	}
	m := q.h[0].m
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = arbEntry{}
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.h) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q.h) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
	return m, true
}

// headAt returns the earliest visibility stamp over all queued messages.
func (q *arbHeap) headAt() (uint64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

func (q *arbHeap) empty() bool { return len(q.h) == 0 }

// reset drops all messages and restarts issue numbering, keeping the
// backing storage.
func (q *arbHeap) reset() {
	clear(q.h)
	q.h = q.h[:0]
	q.seq = 0
}
