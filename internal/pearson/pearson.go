// Package pearson implements Pearson hashing (Peter K. Pearson, "Fast
// Hashing of Variable-Length Text Strings", CACM 1990), used by the
// DM P+8way design of the Picos prototype (Section III-C of the paper):
// the hash is applied to each byte of the LSB 32 bits of a dependence
// address, the four hashed bytes are XORed, and the low 6 bits of the
// result index the 64 sets of the Dependence Memory.
package pearson

// table is a fixed permutation of 0..255. It is the permutation from
// Pearson's original paper, which is what "Pearson hashing [20]" refers
// to. Any permutation works; a fixed one keeps results reproducible.
var table = [256]uint8{
	98, 6, 85, 150, 36, 23, 112, 164, 135, 207, 169, 5, 26, 64, 165, 219,
	61, 20, 68, 89, 130, 63, 52, 102, 24, 229, 132, 245, 80, 216, 195, 115,
	90, 168, 156, 203, 177, 120, 2, 190, 188, 7, 100, 185, 174, 243, 162, 10,
	237, 18, 253, 225, 8, 208, 172, 244, 255, 126, 101, 79, 145, 235, 228, 121,
	123, 251, 67, 250, 161, 0, 107, 97, 241, 111, 181, 82, 249, 33, 69, 55,
	59, 153, 29, 9, 213, 167, 84, 93, 30, 46, 94, 75, 151, 114, 73, 222,
	197, 96, 210, 45, 16, 227, 248, 202, 51, 152, 252, 125, 81, 206, 215, 186,
	39, 158, 178, 187, 131, 136, 1, 49, 50, 17, 141, 91, 47, 129, 60, 99,
	154, 35, 86, 171, 105, 34, 38, 200, 147, 58, 77, 118, 173, 246, 76, 254,
	133, 232, 196, 144, 198, 124, 53, 4, 108, 74, 223, 234, 134, 230, 157, 139,
	189, 205, 199, 128, 176, 19, 211, 236, 127, 192, 231, 70, 233, 88, 146, 44,
	183, 201, 22, 83, 13, 214, 116, 109, 159, 32, 95, 226, 140, 220, 57, 12,
	221, 31, 209, 182, 143, 92, 149, 184, 148, 62, 113, 65, 37, 27, 106, 166,
	3, 14, 204, 72, 21, 41, 56, 66, 28, 193, 40, 217, 25, 54, 179, 117,
	238, 87, 240, 155, 180, 170, 242, 212, 191, 163, 78, 218, 137, 194, 175, 110,
	43, 119, 224, 71, 122, 142, 42, 160, 104, 48, 247, 103, 15, 11, 138, 239,
}

// Byte hashes a single byte.
func Byte(b uint8) uint8 { return table[b] }

// Hash hashes an arbitrary byte string with the classic Pearson chain
// h = T[h ^ b].
func Hash(data []byte) uint8 {
	var h uint8
	for _, b := range data {
		h = table[h^b]
	}
	return h
}

// Fold32 hashes each of the four bytes of x independently and XORs the
// results, exactly as Figure 4 of the paper describes for the DM P+8way
// compare operation ("the Pearson hashing function is first applied to
// each 8 bits of the LSB 32 bits ... then the LSB 6 bits after the xor of
// these hashing values are used as index").
func Fold32(x uint32) uint8 {
	return table[uint8(x)] ^ table[uint8(x>>8)] ^ table[uint8(x>>16)] ^ table[uint8(x>>24)]
}

// Index64 maps a 64-bit dependence address to a 6-bit DM set index using
// the P+8way scheme: Pearson-fold the LSB 32 bits, keep the low 6 bits.
func Index64(addr uint64) int {
	return int(Fold32(uint32(addr)) & 0x3F)
}
