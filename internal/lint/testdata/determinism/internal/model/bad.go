// Package model exercises the determinism analyzer: nondeterministic
// sources and map-ordered output in internal code are findings.
package model

import (
	"fmt"
	"io"
	"math/rand" // want `import of math/rand`
	"os"
	"time"
)

// Seed leaks wall-clock and environment state into results.
func Seed() int64 {
	s := time.Now().UnixNano()         // want `time\.Now: wall-clock read`
	if os.Getenv("MODEL_SEED") != "" { // want `os\.Getenv: environment read`
		s = 42
	}
	return s + rand.Int63()
}

// Render emits counters in map iteration order.
func Render(w io.Writer, counts map[string]int) {
	for name, n := range counts {
		fmt.Fprintf(w, "%s=%d\n", name, n) // want `emits output while ranging over a map`
	}
}

// SnapshotPairs bakes map order into a slice of rendered rows.
func SnapshotPairs(counts map[string]int) []string {
	var rows []string
	for name, n := range counts {
		rows = append(rows, fmt.Sprintf("%s=%d", name, n)) // want `appends map-ordered values`
	}
	return rows
}
