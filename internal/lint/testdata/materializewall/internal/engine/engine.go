// Package engine is NOT a sanctioned site: an engine must feed from the
// source under its window, never fold the graph back into memory. Both
// the direct call and the function-value form are findings; the
// suppressed call shows the escape hatch.
package engine

import "mwcheck/internal/trace"

// runMaterialized quietly rebuilds the whole graph.
func runMaterialized(src trace.Source) int {
	tr, err := trace.Materialize(src) // want `trace.Materialize folds the whole graph into memory`
	if err != nil {
		return 0
	}
	return len(tr.Tasks)
}

// materializer hides the call behind a function value — the wall
// resolves the object, not the call shape.
var materializer = trace.Materialize // want `trace.Materialize folds the whole graph into memory`

// runStreamed is the sanctioned shape: consume the source task by task.
func runStreamed(src trace.Source) int {
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			return n
		}
		n++
	}
}

// runJustified carries a reviewed suppression.
func runJustified(src trace.Source) (*trace.Trace, error) {
	//lint:ignore materializewall exercised by the harness: a justified whole-graph site
	return trace.Materialize(src)
}

var _ = materializer
var _ = runMaterialized
var _ = runStreamed
var _ = runJustified
