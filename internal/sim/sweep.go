package sim

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/trace"
)

// Grid declares a sweep as the cross product of per-dimension value
// lists over a base spec: every run of Tables II/IV and Figures 8/9/11
// is a Grid. An empty dimension keeps the base spec's value. Expansion
// order is fixed — Engines, then Workloads, Workers, Blocks, Designs,
// Policies, with earlier dimensions varying slowest — so a grid always
// expands to the same spec sequence.
type Grid struct {
	Base      Spec     `json:"base"`
	Engines   []string `json:"engines,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Workers   []int    `json:"workers,omitempty"`
	Blocks    []int    `json:"blocks,omitempty"`
	Designs   []string `json:"designs,omitempty"`
	Policies  []string `json:"policies,omitempty"`
}

// Expand enumerates the grid's specs in deterministic order.
func (g Grid) Expand() []Spec {
	specs := []Spec{g.Base}
	specs = expand(specs, g.Engines, func(s *Spec, v string) { s.Engine = v })
	specs = expand(specs, g.Workloads, func(s *Spec, v string) { s.Workload = v })
	specs = expand(specs, g.Workers, func(s *Spec, v int) { s.Workers = v })
	specs = expand(specs, g.Blocks, func(s *Spec, v int) { s.Block = v })
	specs = expand(specs, g.Designs, func(s *Spec, v string) { s.Design = v })
	specs = expand(specs, g.Policies, func(s *Spec, v string) { s.Policy = v })
	return specs
}

func expand[T any](in []Spec, vals []T, set func(*Spec, T)) []Spec {
	if len(vals) == 0 {
		return in
	}
	out := make([]Spec, 0, len(in)*len(vals))
	for _, s := range in {
		for _, v := range vals {
			c := s
			set(&c, v)
			out = append(out, c)
		}
	}
	return out
}

// SweepItem is the outcome of one grid point. Index is the spec's
// position in the input slice; a failed run carries Err and a nil
// Result rather than aborting the sweep.
type SweepItem struct {
	Index  int     `json:"index"`
	Spec   Spec    `json:"spec"`
	Result *Result `json:"result,omitempty"`
	Err    string  `json:"error,omitempty"`
}

// traceKey identifies a workload build within one sweep: grids usually
// vary engines/workers/designs over few distinct workloads, so the
// built traces are shared instead of regenerated per grid point.
// Sharing is safe — every engine treats its input trace as read-only.
type traceKey struct {
	workload string
	problem  int
	block    int
}

type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

// SweepStream executes the specs across a bounded pool of parallelism
// goroutines (<=0: GOMAXPROCS) and streams items as runs complete —
// completion order, not spec order. The channel closes after the last
// item. Each run is independent and deterministic, so the item produced
// for a given index is identical however the pool is scheduled; only
// the arrival order varies.
func SweepStream(specs []Spec, parallelism int) <-chan SweepItem {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(specs) {
		parallelism = len(specs)
	}
	out := make(chan SweepItem, parallelism+1)
	if len(specs) == 0 {
		close(out)
		return out
	}
	var (
		traceMu sync.Mutex
		traces  = map[traceKey]*traceEntry{}
	)
	buildShared := func(spec Spec) (*trace.Trace, error) {
		k := traceKey{spec.Workload, spec.Problem, spec.Block}
		traceMu.Lock()
		e, ok := traces[k]
		if !ok {
			e = &traceEntry{}
			traces[k] = e
		}
		traceMu.Unlock()
		e.once.Do(func() { e.tr, e.err = BuildWorkload(spec) })
		return e.tr, e.err
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				item := SweepItem{Index: i, Spec: specs[i]}
				spec := specs[i].WithDefaults()
				if tr, err := buildShared(spec); err != nil {
					item.Err = err.Error()
				} else if res, err := RunTrace(tr, spec); err != nil {
					item.Err = err.Error()
				} else {
					item.Result = res
				}
				out <- item
			}
		}()
	}
	go func() {
		for i := range specs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()
	return out
}

// Sweep executes the specs across a bounded worker pool and returns the
// items sorted by spec index: deterministic output ordering independent
// of goroutine scheduling.
func Sweep(specs []Spec, parallelism int) []SweepItem {
	items := make([]SweepItem, 0, len(specs))
	for it := range SweepStream(specs, parallelism) {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Index < items[j].Index })
	return items
}
