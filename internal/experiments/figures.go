package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/hil"
	"repro/internal/nanos"
	"repro/internal/perfect"
	"repro/internal/picos"
)

// Fig1 regenerates Figure 1: speedup vs task granularity for the four
// matrix kernels under the software-only runtime with 12 cores.
func Fig1(opt Options) ([]*Table, error) {
	workers := 12
	t := &Table{
		Title:  "Figure 1: speedup vs task granularity (Nanos++ software-only, 12 workers)",
		Header: []string{"Blocksize", "heat", "lu", "sparselu", "cholesky"},
	}
	blockSizes := []int{256, 128, 64, 32}
	if opt.Quick {
		blockSizes = []int{256, 64}
	}
	for _, bs := range blockSizes {
		row := []string{fmt.Sprintf("%d", bs)}
		for _, app := range []apps.App{apps.Heat, apps.Lu, apps.SparseLu, apps.Cholesky} {
			tr, err := appTrace(app, bs)
			if err != nil {
				return nil, err
			}
			res, err := nanos.Run(tr, nanos.Config{Workers: workers})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(res.Speedup))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "speedup rises with new parallelism, then falls when runtime overhead dominates")
	return []*Table{t}, nil
}

// fig8Workloads are the four benchmarks (two block sizes each) of Fig 8.
var fig8Workloads = []struct {
	app apps.App
	bs  [2]int
}{
	{apps.Heat, [2]int{128, 64}},
	{apps.Cholesky, [2]int{256, 128}},
	{apps.Lu, [2]int{64, 32}},
	{apps.SparseLu, [2]int{128, 64}},
}

// Fig8 regenerates Figure 8: speedup of the three DM designs, HW-only
// mode, 2..12 workers.
func Fig8(opt Options) ([]*Table, error) {
	workerList := []int{2, 4, 6, 8, 10, 12}
	workloads := fig8Workloads
	if opt.Quick {
		workerList = []int{2, 12}
		workloads = workloads[:2]
	}
	var tables []*Table
	for _, wl := range workloads {
		for _, bs := range wl.bs {
			tr, err := appTrace(wl.app, bs)
			if err != nil {
				return nil, err
			}
			t := &Table{
				Title:  fmt.Sprintf("Figure 8: %s (%d/%d), HW-only speedup by DM design", wl.app, apps.DefaultProblem, bs),
				Header: []string{"Workers", "DM 8way", "DM 16way", "DM P+8way"},
			}
			for _, w := range workerList {
				row := []string{fmt.Sprintf("%d", w)}
				for _, design := range picos.Designs {
					cfg := hil.DefaultConfig()
					cfg.Workers = w
					cfg.Picos.Design = design
					res, err := hil.Run(tr, cfg)
					if err != nil {
						return nil, fmt.Errorf("fig8 %s/%d %s w=%d: %w", wl.app, bs, design, w, err)
					}
					row = append(row, f2(res.Speedup))
				}
				t.Rows = append(t.Rows, row)
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// Fig9 regenerates Figure 9: the Lu corner case. Left: MLu (modified
// creation order) by DM design; right: original Lu with FIFO vs LIFO TS.
func Fig9(opt Options) ([]*Table, error) {
	workerList := []int{2, 4, 6, 8, 10, 12}
	blockSizes := []int{64, 32}
	if opt.Quick {
		workerList = []int{2, 12}
		blockSizes = []int{64}
	}
	var tables []*Table
	for _, bs := range blockSizes {
		mlu, err := appTrace(apps.MLu, bs)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:  fmt.Sprintf("Figure 9 (left): MLu (%d/%d), HW-only speedup by DM design", apps.DefaultProblem, bs),
			Header: []string{"Workers", "DM 8way", "DM 16way", "DM P+8way"},
		}
		for _, w := range workerList {
			row := []string{fmt.Sprintf("%d", w)}
			for _, design := range picos.Designs {
				cfg := hil.DefaultConfig()
				cfg.Workers = w
				cfg.Picos.Design = design
				res, err := hil.Run(mlu, cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(res.Speedup))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)

		lu, err := appTrace(apps.Lu, bs)
		if err != nil {
			return nil, err
		}
		t2 := &Table{
			Title:  fmt.Sprintf("Figure 9 (right): Lu (%d/%d), P+8way, FIFO vs LIFO TS", apps.DefaultProblem, bs),
			Header: []string{"Workers", "FIFO", "LIFO"},
		}
		for _, w := range workerList {
			row := []string{fmt.Sprintf("%d", w)}
			for _, policy := range []picos.SchedPolicy{picos.SchedFIFO, picos.SchedLIFO} {
				cfg := hil.DefaultConfig()
				cfg.Workers = w
				cfg.Picos.Policy = policy
				res, err := hil.Run(lu, cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(res.Speedup))
			}
			t2.Rows = append(t2.Rows, row)
		}
		tables = append(tables, t2)
	}
	return tables, nil
}

// Fig10 regenerates Figure 10: Nanos++ per-task creation and submission
// overhead versus thread count.
func Fig10(opt Options) ([]*Table, error) {
	tm := nanos.DefaultTiming()
	t := &Table{
		Title:  "Figure 10: Nanos++ RTS overhead for a single task (cycles)",
		Header: []string{"Threads", "Creation", "1 DEP", "2 DEPs", "4 DEPs", "8 DEPs", "15 DEPs"},
	}
	threads := []int{1, 2, 4, 6, 8, 10, 12}
	if opt.Quick {
		threads = []int{1, 12}
	}
	for _, th := range threads {
		row := []string{fmt.Sprintf("%d", th), d(tm.CreationOverhead(th))}
		for _, nd := range []int{1, 2, 4, 8, 15} {
			row = append(row, d(tm.SubmissionOverhead(nd, th)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Fig11 regenerates Figure 11: scalability of the five real benchmarks
// under Picos Full-system vs the Perfect Simulator vs Nanos++.
func Fig11(opt Options) ([]*Table, error) {
	workerList := []int{2, 4, 8, 12, 16, 20, 24}
	if opt.Quick {
		workerList = []int{2, 8}
	}
	var tables []*Table
	for _, app := range apps.Apps {
		blockSizes := apps.BlockSizes(app)
		if opt.Quick {
			blockSizes = blockSizes[:1]
			if app != apps.Heat && app != apps.Cholesky {
				continue
			}
		}
		for _, bs := range blockSizes {
			tr, err := appTrace(app, bs)
			if err != nil {
				return nil, err
			}
			t := &Table{
				Title:  fmt.Sprintf("Figure 11: %s blocksize %d — speedup", app, bs),
				Header: []string{"Workers", "Picos(Full-system)", "Perfect", "Nanos++"},
			}
			for _, w := range workerList {
				cfg := hil.DefaultConfig()
				cfg.Mode = hil.FullSystem
				cfg.Workers = w
				pres, err := hil.Run(tr, cfg)
				if err != nil {
					return nil, fmt.Errorf("fig11 %s/%d picos w=%d: %w", app, bs, w, err)
				}
				perf, err := perfect.Run(tr, w)
				if err != nil {
					return nil, err
				}
				nres, err := nanos.Run(tr, nanos.Config{Workers: w})
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", w), f2(pres.Speedup), f2(perf.Speedup), f2(nres.Speedup),
				})
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}
