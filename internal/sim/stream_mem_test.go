//go:build !race

// Memory-bound lock for streaming ingestion: a 2^20-task pattern grid
// replayed under a 256-descriptor window must run in O(window) live
// heap. The race detector inflates allocation behaviour, so this only
// builds without it.

package sim_test

import (
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

// TestStreamMemoryBound drives a million-task stencil grid through the
// picos-hw streaming driver and asserts the live heap never approaches
// the materialized footprint. Materializing this workload costs >=56 MB
// for the Tasks array alone (2^20 tasks x ~56 B) before counting the
// dependence slices and the engine's schedule arrays; the streamed run
// holds at most Window descriptors plus O(width) generator state, so a
// 48 MB ceiling on sampled heap growth cleanly separates the two
// regimes while leaving room for GC lag (GOGC is pinned low during the
// run so the sampled heap tracks live data closely).
func TestStreamMemoryBound(t *testing.T) {
	if testing.Short() {
		t.Skip("million-task replay")
	}
	const (
		tasks       = 1 << 20
		heapCeiling = 48 << 20
	)
	spec := sim.Spec{
		Engine:   "picos-hw",
		Workload: "pattern:stencil_1d?width=1024&steps=1024",
		Window:   256,
	}

	old := debug.SetGCPercent(20)
	defer debug.SetGCPercent(old)
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	// Sample the heap while the run is in flight: the bound is about the
	// peak live set during the replay, which no post-run measurement can
	// see.
	var (
		peak atomic.Uint64
		stop = make(chan struct{})
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		var m runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak.Load() {
					peak.Store(m.HeapAlloc)
				}
			}
		}
	}()

	res, err := sim.Run(spec)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.TasksCompleted != tasks {
		t.Fatalf("streamed run completed %+v tasks, want %d", res.Stats, tasks)
	}
	if res.Start != nil || res.Finish != nil || res.Order != nil {
		t.Fatal("streamed result carries O(tasks) schedule arrays")
	}
	if grew := peak.Load() - base.HeapAlloc; peak.Load() > base.HeapAlloc && grew > heapCeiling {
		t.Fatalf("peak live heap grew %d MB during the streamed replay; ceiling %d MB (O(window) bound broken)",
			grew>>20, heapCeiling>>20)
	}
}
