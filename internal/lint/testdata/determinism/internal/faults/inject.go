// Package faults exercises the determinism analyzer on the shape of
// code fault injection must never contain: an injector whose draws come
// from ambient process state instead of the plan's seeded detrand
// stream. Every source here would make a fault plan fire at different
// cycles on the event-driven and cycle-stepped loops — the exact
// byte-identity the equivalence suite proves.
package faults

import (
	"math/rand" // want `import of math/rand`
	"os"
	"time"
)

// Injector is a mock fault injector with an ad-hoc seed.
type Injector struct {
	seed int64
	rate float64
}

// NewInjector seeds from process identity and wall clock — the two
// classic nondeterministic seed sources.
func NewInjector(rate float64) *Injector {
	seed := int64(os.Getpid())    // want `os\.Getpid: process-dependent value`
	seed ^= time.Now().UnixNano() // want `time\.Now: wall-clock read`
	return &Injector{seed: seed, rate: rate}
}

// Drop runs the drop lottery on process-seeded randomness instead of
// the plan's detrand stream.
func (in *Injector) Drop() bool {
	return rand.Float64() < in.rate
}
