package asciiplot

import (
	"math"
	"strings"
	"testing"
)

func renderHeatmap(t *testing.T, h *Heatmap) string {
	t.Helper()
	var b strings.Builder
	if err := h.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		Title:   "map",
		XLabels: []string{"8way", "16way", "p8way"},
		YLabels: []string{"stencil_1d", "all_to_all"},
		Cells: [][]float64{
			{100, 5, 0},
			{math.NaN(), 80, 0},
		},
	}
	out := renderHeatmap(t, h)
	for _, want := range []string{
		"map", "stencil_1d |", "all_to_all |",
		"XX",                          // the NaN (wedged) cell
		"1=8way",                      // column key
		"0..100",                      // scale legend
		string(shades[len(shades)-1]), // the max cell uses the darkest shade
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("heatmap output missing %q:\n%s", want, out)
		}
	}
	// The max cell is darkest, the min cell is the visible lightest
	// shade (not a blank).
	rows := strings.Split(out, "\n")
	if !strings.HasPrefix(rows[1], "stencil_1d | @@") {
		t.Fatalf("max-value cell not darkest: %q", rows[1])
	}
	if !strings.HasSuffix(rows[1], "..") {
		t.Fatalf("min-value cell not the visible lightest shade: %q", rows[1])
	}
}

func TestHeatmapLogScale(t *testing.T) {
	h := &Heatmap{
		Title:   "log",
		XLabels: []string{"a", "b"},
		YLabels: []string{"r"},
		Cells:   [][]float64{{1, 1e6}},
		Log:     true,
	}
	out := renderHeatmap(t, h)
	if !strings.Contains(out, "(log)") {
		t.Fatalf("log legend missing:\n%s", out)
	}
}

func TestHeatmapAllMissing(t *testing.T) {
	h := &Heatmap{
		Title:   "void",
		XLabels: []string{"a"},
		YLabels: []string{"r"},
		Cells:   [][]float64{{math.NaN()}},
	}
	out := renderHeatmap(t, h)
	if !strings.Contains(out, "XX") {
		t.Fatalf("missing marker absent:\n%s", out)
	}
}

func TestHeatmapEmpty(t *testing.T) {
	out := renderHeatmap(t, &Heatmap{Title: "empty"})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty heatmap: %q", out)
	}
}
