// Package badengine drops knobs: it reads only Workers, its
// ignores-knobs directive lists a knob it actually reads (stale) and a
// name that is not a Spec field (typo), and it says nothing about Debug
// and Wake at all.
package badengine

import "skcheck/internal/sim"

type Engine struct{}

func (Engine) Name() string { return "bad" }

//picos:ignores-knobs Depth,Workers,Bogus depth and worker count are fixed by this engine's design // want `names Bogus, which is not a sim\.Spec field` `lists Workers but engine skcheck/internal/badengine reads it`
func (Engine) Run(spec sim.Spec) int {
	return spec.Workers
}

func init() { sim.Register(Engine{}) } // want `engine skcheck/internal/badengine silently drops sim\.Spec knobs Debug, Wake`
