package lint

import (
	"go/ast"
	"go/types"
)

// HotPathDirective marks a function as allocation-free by contract: the
// warm-engine reuse path (picos.Reset + RunTo) is benchmarked at zero
// allocs/op and the equivalence matrix re-runs every spec hundreds of
// times, so a single allocation sneaking into the per-cycle loop is a
// measurable regression. internal/picos/alloc_test.go asserts the
// end-to-end property; this analyzer localizes it to the functions that
// actually carry the contract.
const HotPathDirective = "//picos:hotpath"

// HotAlloc rejects allocating constructs inside functions annotated
// //picos:hotpath:
//
//   - composite literals taken by address (&T{...}) and new(T): direct
//     heap candidates,
//   - slice and map literals ([]T{...}, map[K]V{...}): always allocate
//     backing storage,
//   - make(...): allocates backing storage,
//   - function literals: even non-escaping closures cost a context
//     struct when they capture, and escape analysis is too fragile a
//     thing to lean on silently in a hot loop — a non-escaping closure
//     is allowed only with an explicit //lint:ignore hotalloc,
//   - fmt.* calls: allocate and box via reflection,
//   - interface boxing: passing or assigning a concrete value where an
//     interface is expected.
//
// Plain value struct literals (T{...} assigned into existing storage)
// and append into preallocated slices are allowed: they copy into
// storage the caller owns and do not inherently allocate.
var HotAlloc = &Analyzer{
	Name:    "hotalloc",
	Doc:     "functions marked //picos:hotpath may not contain allocating constructs",
	Applies: func(p *Package) bool { return !p.IsCommand() },
	Run:     runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, HotPathDirective) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op.String() == "&" {
				if _, isLit := ast.Unparen(node.X).(*ast.CompositeLit); isLit {
					pass.Reportf(node.Pos(), "%s is //picos:hotpath but takes the address of a composite literal (heap allocation)", name)
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(node)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				if len(node.Elts) > 0 {
					pass.Reportf(node.Pos(), "%s is //picos:hotpath but builds a slice literal (allocates backing array)", name)
				}
			case *types.Map:
				pass.Reportf(node.Pos(), "%s is //picos:hotpath but builds a map literal (allocates)", name)
			}
		case *ast.FuncLit:
			pass.Reportf(node.Pos(), "%s is //picos:hotpath but declares a func literal; closures cost a context allocation when they capture (//lint:ignore hotalloc with proof it does not escape, or hoist it)", name)
			return false // don't descend: the closure body is not the hot body
		case *ast.CallExpr:
			checkHotCall(pass, info, name, node)
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				if i < len(node.Lhs) {
					checkBoxing(pass, info, name, info.TypeOf(node.Lhs[i]), rhs)
				}
			}
		}
		return true
	})
}

// checkHotCall flags new(T), fmt.* and interface boxing at call
// boundaries inside a hot function.
func checkHotCall(pass *Pass, info *types.Info, name string, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "new" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			pass.Reportf(call.Pos(), "%s is //picos:hotpath but calls new(...) (heap allocation)", name)
			return
		}
	}
	if pkgPath, fname, ok := calleePkgFunc(info, call); ok && pkgPath == "fmt" {
		pass.Reportf(call.Pos(), "%s is //picos:hotpath but calls fmt.%s (allocates and boxes through reflection)", name, fname)
		return
	}
	// Interface boxing in arguments: a concrete value passed where the
	// callee expects an interface.
	sig := signatureOf(info, call.Fun)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no per-element boxing
			}
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		checkBoxing(pass, info, name, pt, arg)
	}
}

// checkBoxing reports a concrete (non-pointer-shaped) value converted to
// an interface type — the conversion heap-allocates the boxed copy.
func checkBoxing(pass *Pass, info *types.Info, name string, target types.Type, val ast.Expr) {
	if target == nil {
		return
	}
	iface, ok := target.Underlying().(*types.Interface)
	if !ok {
		return
	}
	vt := info.TypeOf(val)
	if vt == nil {
		return
	}
	if _, alreadyIface := vt.Underlying().(*types.Interface); alreadyIface {
		return
	}
	if isUntypedNil(vt) {
		return
	}
	// Pointers box without allocating (the pointer word fits the iface
	// data slot); values of any other kind escape into a heap copy.
	if _, isPtr := vt.Underlying().(*types.Pointer); isPtr {
		return
	}
	_ = iface
	pass.Reportf(val.Pos(), "%s is //picos:hotpath but boxes a %s into an interface (heap-allocates the copy)", name, vt.String())
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// signatureOf resolves the *types.Signature of a call target; nil for
// builtins and type conversions.
func signatureOf(info *types.Info, fun ast.Expr) *types.Signature {
	t := info.TypeOf(ast.Unparen(fun))
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}
