package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// FuzzRead throws arbitrary bytes at the binary trace reader. The reader
// must never panic or over-allocate, and anything it accepts must
// round-trip: re-serializing and re-reading yields the same trace.
// Checked-in seeds live in testdata/fuzz/FuzzRead.
func FuzzRead(f *testing.F) {
	seed := func(tr *trace.Trace) {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(&trace.Trace{Name: "empty"})
	seed(&trace.Trace{
		Name:         "mini",
		SerialCycles: 3,
		RefSeqCycles: 1000,
		Tasks: []trace.Task{
			{ID: 0, Duration: 10, Deps: []trace.Dep{{Addr: 0x80, Dir: trace.Out}}},
			{ID: 1, Duration: 20, CreateCost: 5, Deps: []trace.Dep{{Addr: 0x80, Dir: trace.In}, {Addr: 0x100, Dir: trace.InOut}}},
		},
	})
	f.Add([]byte("PTR1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := tr.WriteTo(&out); err != nil {
			t.Fatalf("accepted trace fails to serialize: %v", err)
		}
		tr2, err := trace.Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round-tripped trace fails to read: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip changed the trace:\nfirst:  %+v\nsecond: %+v", tr, tr2)
		}
	})
}
