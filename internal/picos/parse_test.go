package picos

import "testing"

func TestParseDesign(t *testing.T) {
	cases := []struct {
		in   string
		want DMDesign
		ok   bool
	}{
		{"", DMP8Way, true},
		{"p8way", DMP8Way, true},
		{"P+8way", DMP8Way, true},
		{"8way", DM8Way, true},
		{"16WAY", DM16Way, true},
		{"32way", 0, false},
	}
	for _, c := range cases {
		got, err := ParseDesign(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParseDesign(%q) = %v, %v", c.in, got, err)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy(""); err != nil || p != SchedFIFO {
		t.Fatalf("empty policy = %v, %v", p, err)
	}
	if p, err := ParsePolicy("LIFO"); err != nil || p != SchedLIFO {
		t.Fatalf("lifo = %v, %v", p, err)
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestParseAdmission(t *testing.T) {
	if a, err := ParseAdmission(""); err != nil || a != AdmitCredits {
		t.Fatalf("empty admission = %v, %v", a, err)
	}
	if a, err := ParseAdmission("slots"); err != nil || a != AdmitSlotsOnly {
		t.Fatalf("slots = %v, %v", a, err)
	}
	if _, err := ParseAdmission("open-door"); err == nil {
		t.Fatal("bogus admission accepted")
	}
}

func TestParseWake(t *testing.T) {
	if w, err := ParseWake(""); err != nil || w != WakeLastFirst {
		t.Fatalf("empty wake = %v, %v", w, err)
	}
	if w, err := ParseWake("first-first"); err != nil || w != WakeFirstFirst {
		t.Fatalf("first-first = %v, %v", w, err)
	}
	if _, err := ParseWake("middle-out"); err == nil {
		t.Fatal("bogus wake order accepted")
	}
}
