package sim_test

import (
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"

	_ "repro/internal/engines"
)

// TestSweepSharedTraceAcrossEngines is the race-lane regression for the
// sweep's shared-trace cache: SweepStream builds each distinct workload
// once and hands the same *trace.Trace to every concurrent engine run,
// which is only sound if no engine mutates its input. The sweep crosses
// one workload with every registered engine (all five built-ins), both
// fast-path settings and several worker counts, at full parallelism and
// with repetition — under `go test -race` any engine-side write to the
// shared trace is a reported data race, and value-wise the items must
// be byte-equal to isolated runs on private trace copies.
func TestSweepSharedTraceAcrossEngines(t *testing.T) {
	const workload = "pattern:random_nearest?width=16&steps=10&k=4&jitter=15"
	var specs []sim.Spec
	for _, engine := range sim.Engines() {
		for _, ff := range []*bool{nil, sim.Bool(false)} {
			for _, workers := range []int{4, 12} {
				specs = append(specs, sim.Spec{
					Engine: engine, Workload: workload,
					Workers: workers, FastForward: ff,
				})
			}
		}
	}
	// Reference results from isolated runs, each on its own private
	// trace built from scratch.
	want := make([]string, len(specs))
	for i, spec := range specs {
		res, err := sim.Run(spec)
		if err != nil {
			t.Fatalf("isolated run %d (%s): %v", i, spec.Engine, err)
		}
		want[i] = resultJSON(t, res)
	}
	for round := 0; round < 3; round++ {
		items := sim.Sweep(specs, len(specs))
		for _, it := range items {
			if it.Err != "" {
				t.Fatalf("round %d: %s failed: %s", round, it.Spec.Engine, it.Err)
			}
			if got := resultJSON(t, it.Result); got != want[it.Index] {
				t.Errorf("round %d: shared-trace result %d (%s) differs from isolated run\n got %s\nwant %s",
					round, it.Index, it.Spec.Engine, got, want[it.Index])
			}
		}
	}
}

// TestSweepSharedTraceUnchanged complements the race lane with a direct
// content check that works without -race: the bytes of a trace handed
// through a full cross-engine sweep must be identical afterwards.
func TestSweepSharedTraceUnchanged(t *testing.T) {
	spec := sim.Spec{Workload: "pattern:stencil_1d?width=8&steps=6"}
	tr, err := sim.BuildWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := tr.Clone()

	var wg sync.WaitGroup
	for _, engine := range sim.Engines() {
		wg.Add(1)
		go func(engine string) {
			defer wg.Done()
			s := spec
			s.Engine = engine
			if _, err := sim.RunTrace(tr, s); err != nil {
				t.Errorf("%s: %v", engine, err)
			}
		}(engine)
	}
	wg.Wait()

	if tr.Name != snapshot.Name || tr.SerialCycles != snapshot.SerialCycles ||
		tr.RefSeqCycles != snapshot.RefSeqCycles || len(tr.Tasks) != len(snapshot.Tasks) {
		t.Fatal("trace header mutated by an engine run")
	}
	for i := range tr.Tasks {
		a, b := &tr.Tasks[i], &snapshot.Tasks[i]
		if a.ID != b.ID || a.Duration != b.Duration || a.CreateCost != b.CreateCost || len(a.Deps) != len(b.Deps) {
			t.Fatalf("task %d mutated by an engine run", i)
		}
		for d := range a.Deps {
			if a.Deps[d] != (trace.Dep{Addr: b.Deps[d].Addr, Dir: b.Deps[d].Dir}) {
				t.Fatalf("task %d dep %d mutated by an engine run", i, d)
			}
		}
	}
}
