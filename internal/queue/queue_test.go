package queue

import (
	"testing"
	"testing/quick"
)

func TestFIFOBasic(t *testing.T) {
	q := NewFIFO[int](0)
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("new FIFO not empty")
	}
	for i := 0; i < 100; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if q.Len() != 100 {
		t.Fatalf("len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty succeeded")
	}
}

func TestFIFOLimit(t *testing.T) {
	q := NewFIFO[int](3)
	for i := 0; i < 3; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected before limit", i)
		}
	}
	if !q.Full() {
		t.Fatal("queue should be full at limit")
	}
	if q.Push(99) {
		t.Fatal("push accepted past limit")
	}
	if v, _ := q.Pop(); v != 0 {
		t.Fatalf("pop = %d, want 0", v)
	}
	if !q.Push(3) {
		t.Fatal("push rejected after pop freed space")
	}
}

func TestFIFOPeekReset(t *testing.T) {
	q := NewFIFO[string](0)
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	q.Push("a")
	q.Push("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %q,%v", v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("peek consumed an element")
	}
	q.Reset()
	if !q.Empty() {
		t.Fatal("reset did not empty queue")
	}
	if !q.Push("c") {
		t.Fatal("push after reset failed")
	}
	if v, _ := q.Pop(); v != "c" {
		t.Fatal("wrong element after reset")
	}
}

func TestFIFOWrapAround(t *testing.T) {
	q := NewFIFO[int](0)
	// Interleave pushes and pops to force the head to wrap repeatedly.
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 5; i++ {
			v, ok := q.Pop()
			if !ok || v != expect {
				t.Fatalf("round %d: pop = %d,%v want %d", round, v, ok, expect)
			}
			expect++
		}
	}
	for !q.Empty() {
		v, _ := q.Pop()
		if v != expect {
			t.Fatalf("drain: got %d want %d", v, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d items, pushed %d", expect, next)
	}
}

func TestFIFOOrderProperty(t *testing.T) {
	// Property: for any sequence of pushed values, pops return the same
	// sequence (FIFO order is preserved across growth).
	f := func(vals []uint16) bool {
		q := NewFIFO[uint16](0)
		for _, v := range vals {
			q.Push(v)
		}
		for _, want := range vals {
			got, ok := q.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStackBasic(t *testing.T) {
	s := NewStack[int](0)
	for i := 0; i < 10; i++ {
		s.Push(i)
	}
	for i := 9; i >= 0; i-- {
		v, ok := s.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("pop on empty stack succeeded")
	}
}

func TestStackLimitPeek(t *testing.T) {
	s := NewStack[int](2)
	s.Push(1)
	s.Push(2)
	if s.Push(3) {
		t.Fatal("push past limit accepted")
	}
	if v, ok := s.Peek(); !ok || v != 2 {
		t.Fatalf("peek = %d,%v", v, ok)
	}
	s.Reset()
	if !s.Empty() {
		t.Fatal("reset did not empty stack")
	}
}

func TestStackOrderProperty(t *testing.T) {
	f := func(vals []int8) bool {
		s := NewStack[int8](0)
		for _, v := range vals {
			s.Push(v)
		}
		for i := len(vals) - 1; i >= 0; i-- {
			got, ok := s.Pop()
			if !ok || got != vals[i] {
				return false
			}
		}
		return s.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
