// Wedge frontier: sweep the dependence-fan (k) and buffer-multiplicity
// (fields) knobs of the nearest pattern family against the DM designs
// under the worst-case aligned address layout, and chart where each
// design's conflict stalls turn into a proven deadlock. Aligned
// clustering puts every point buffer in a single direct-hash set, so k
// walks straight into the design's associativity; the first WEDGE
// column of each table is that design's frontier. Deadlocking grid
// points surface as wedged cells, not errors.
//
//	go run ./examples/wedge-frontier            # full sweep
//	go run ./examples/wedge-frontier -quick     # reduced grid (CI smoke)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced grid (k in {3,13}, smaller rows)")
	flag.Parse()

	cells, err := experiments.WedgeFrontierData(experiments.Options{Quick: *quick})
	if err != nil {
		log.Fatal(err)
	}

	for _, t := range experiments.WedgeFrontierTables(cells) {
		if err := t.Fprint(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	for _, hm := range experiments.WedgeFrontierHeatmaps(cells) {
		if err := hm.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	wedged := 0
	for _, c := range cells {
		if c.Wedged {
			wedged++
		}
	}
	fmt.Printf("%d grid points, %d wedged (proven deadlocks, reported structurally)\n", len(cells), wedged)
}
