module detcheck

go 1.21
