// Runahead-depth: sweep the creation run-ahead pipeline of the
// Full-system mode — the accelerator's submission-buffer depth
// (Spec.NewQDepth) against the master's created-but-unsubmitted
// descriptor window (Spec.RunAhead) — on the Table II conflict workload
// (SparseLu/64 on the 8-way direct-hash DM, slots-only admission, the
// configuration whose conflict counts the prototype's deeper run-ahead
// shaped). The sweep shows the two backpressure knobs at work: a
// one-entry buffer with a shallow window serializes the master against
// the accelerator, while the defaults recover the preloaded behavior.
//
// Usage:
//
//	go run ./examples/runahead-depth
//	go run ./examples/runahead-depth -quick
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

func main() {
	quick := flag.Bool("quick", false, "smaller problem size")
	flag.Parse()

	problem := 0 // paper default (2048)
	if *quick {
		problem = 1024
	}
	base := sim.Spec{
		Engine:    "picos-full",
		Workload:  "sparselu",
		Problem:   problem,
		Block:     64,
		Design:    "8way",
		Admission: "slots",
	}

	type knob struct {
		label    string
		newQ     int
		runAhead int
	}
	knobs := []knob{
		{"unbounded queue (preload-equivalent)", 0, 0},
		{"newq=16, window=16 (prototype-like)", 16, 16},
		{"newq=4,  window=8", 4, 8},
		{"newq=1,  window=1 (fully serialized)", 1, 1},
	}

	var specs []sim.Spec
	for _, k := range knobs {
		s := base
		s.NewQDepth = k.newQ
		s.RunAhead = k.runAhead
		specs = append(specs, s)
	}
	items := sim.Sweep(specs, 0)

	fmt.Println("SparseLu/64, 8-way DM, slots admission, Full-system, 12 workers")
	fmt.Printf("%-40s %12s %10s %12s %14s\n",
		"run-ahead pipeline", "makespan", "speedup", "#conflicts", "GW blocked cy")
	for i, it := range items {
		if it.Err != "" {
			log.Fatalf("%s: %s", knobs[i].label, it.Err)
		}
		res := it.Result
		st := res.Stats
		fmt.Printf("%-40s %12d %9.2fx %12d %14d\n",
			knobs[i].label, res.Makespan, res.Speedup,
			st.DMConflicts+st.VMStallEvents, st.GWBlockedCycles)
	}
	fmt.Println("\nconflict counts use the DCT's sidetrack accounting (one per")
	fmt.Println("saturated set); rerun with Spec.Conflict = \"block\" to see the")
	fmt.Println("pre-sidetrack head-of-line model self-throttle to ~94.")
}
