package picos

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary strings at every flag/spec parser. None may
// panic, all must be case-insensitive, and whatever they accept must be
// stable: parsing the same spelling twice yields the same value.
// Checked-in seeds live in testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"", "p8way", "P+8way", "8way", "16way",
		"fifo", "lifo", "FIFO",
		"credits", "slots",
		"last-first", "first-first", "LAST-FIRST",
		"junk", "p8way ", "0", "\x00", "ﬁfo",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		upper := strings.ToUpper(s)
		if d1, err1 := ParseDesign(s); err1 == nil {
			if d2, err2 := ParseDesign(upper); err2 != nil || d1 != d2 {
				t.Fatalf("ParseDesign case-sensitive on %q: %v vs %v (%v)", s, d1, d2, err2)
			}
		}
		if p1, err1 := ParsePolicy(s); err1 == nil {
			if p2, err2 := ParsePolicy(upper); err2 != nil || p1 != p2 {
				t.Fatalf("ParsePolicy case-sensitive on %q: %v vs %v (%v)", s, p1, p2, err2)
			}
		}
		if a1, err1 := ParseAdmission(s); err1 == nil {
			if a2, err2 := ParseAdmission(upper); err2 != nil || a1 != a2 {
				t.Fatalf("ParseAdmission case-sensitive on %q: %v vs %v (%v)", s, a1, a2, err2)
			}
		}
		if w1, err1 := ParseWake(s); err1 == nil {
			if w2, err2 := ParseWake(upper); err2 != nil || w1 != w2 {
				t.Fatalf("ParseWake case-sensitive on %q: %v vs %v (%v)", s, w1, w2, err2)
			}
		}
	})
}
