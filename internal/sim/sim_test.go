package sim_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"

	_ "repro/internal/engines"
)

// TestRegistryContents: the built-in engines and workloads are all
// reachable by name.
func TestRegistryContents(t *testing.T) {
	for _, want := range []string{"picos-hw", "picos-comm", "picos-full", "nanos", "perfect"} {
		if _, err := sim.Lookup(want); err != nil {
			t.Errorf("engine %s not registered: %v", want, err)
		}
	}
	workloads := strings.Join(sim.Workloads(), " ")
	for _, want := range []string{"heat", "lu", "mlu", "sparselu", "cholesky", "h264dec",
		"case1", "case2", "case3", "case4", "case5", "case6", "case7"} {
		if !strings.Contains(workloads, want) {
			t.Errorf("workload %s not registered (have %s)", want, workloads)
		}
	}
}

// TestLookupUnknown: a miss names the registered engines so the caller
// can self-correct.
func TestLookupUnknown(t *testing.T) {
	_, err := sim.Lookup("zz-not-an-engine")
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	if !strings.Contains(err.Error(), "picos-hw") {
		t.Fatalf("error %q does not list the registered engines", err)
	}
	if _, err := sim.Run(sim.Spec{Engine: "perfect", Workload: "zz-not-a-workload"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestTraceFileWorkload: "trace:<path>" round-trips a serialized trace
// through the workload resolver.
func TestTraceFileWorkload(t *testing.T) {
	tr, err := sim.BuildWorkload(sim.Spec{Workload: "case5"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "case5.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	direct, err := sim.Run(sim.Spec{Engine: "picos-hw", Workload: "case5"})
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := sim.Run(sim.Spec{Engine: "picos-hw", Workload: sim.TracePrefix + path})
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Makespan != direct.Makespan {
		t.Fatalf("file-workload makespan %d, registry %d", fromFile.Makespan, direct.Makespan)
	}
	if _, err := sim.Run(sim.Spec{Engine: "picos-hw", Workload: "trace:/no/such/file"}); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

// TestWorkloadSizing: Problem/Block reach the generators, and the
// defaults match the paper (2048 matrices; 10 frames for h264dec).
func TestWorkloadSizing(t *testing.T) {
	small, err := sim.BuildWorkload(sim.Spec{Workload: "cholesky", Block: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Tasks) != 120 { // Table I: cholesky 2048/256
		t.Fatalf("cholesky/256 has %d tasks, want 120", len(small.Tasks))
	}
	big, err := sim.BuildWorkload(sim.Spec{Workload: "cholesky", Block: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Tasks) != 816 { // Table I: cholesky 2048/128
		t.Fatalf("cholesky/128 has %d tasks, want 816", len(big.Tasks))
	}
}

// TestRunTraceAndVerify: hand-built traces run through RunTrace, get
// stamped with the engine and trace names, and verify against the
// dependence oracle.
func TestRunTraceAndVerify(t *testing.T) {
	tr := &trace.Trace{Name: "hand-built"}
	a := uint64(0x100)
	tr.Tasks = []trace.Task{
		{ID: 0, Duration: 10, Deps: []trace.Dep{{Addr: a, Dir: trace.Out}}},
		{ID: 1, Duration: 10, Deps: []trace.Dep{{Addr: a, Dir: trace.In}}},
	}
	res, err := sim.RunTrace(tr, sim.Spec{Engine: "perfect", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "perfect" || res.Workload != "hand-built" {
		t.Fatalf("labels not stamped: %q/%q", res.Engine, res.Workload)
	}
	if err := sim.Verify(tr, res); err != nil {
		t.Fatalf("legal schedule rejected: %v", err)
	}
	// A corrupted schedule must be rejected.
	res.Start[1] = 0
	if err := sim.Verify(tr, res); err == nil {
		t.Fatal("dependence-violating schedule verified")
	}
}

// TestResultJSONRoundTrip: the shared Result is JSON-serializable and
// StripSchedule removes only the per-task arrays.
func TestResultJSONRoundTrip(t *testing.T) {
	res, err := sim.Run(sim.Spec{Engine: "picos-full", Workload: "case4"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil {
		t.Fatal("picos result without stats")
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back sim.Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Makespan != res.Makespan || back.Speedup != res.Speedup || len(back.Start) != len(res.Start) {
		t.Fatal("JSON round trip lost fields")
	}
	res.StripSchedule()
	if res.Start != nil || res.Finish != nil || res.Order != nil {
		t.Fatal("StripSchedule left schedule arrays")
	}
	if res.Makespan == 0 || res.Stats == nil {
		t.Fatal("StripSchedule removed aggregates")
	}
}

// TestProbes: the derived latency/throughput probes.
func TestProbes(t *testing.T) {
	first, thr := sim.Probes([]uint64{40, 10, 100})
	if first != 10 || thr != 45 {
		t.Fatalf("Probes = %d/%.1f, want 10/45.0", first, thr)
	}
	if f, th := sim.Probes(nil); f != 0 || th != 0 {
		t.Fatalf("Probes(nil) = %d/%.1f", f, th)
	}
	if f, th := sim.Probes([]uint64{7}); f != 7 || th != 0 {
		t.Fatalf("Probes(single) = %d/%.1f", f, th)
	}
}
