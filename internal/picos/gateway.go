package picos

import "repro/internal/trace"

// submittedTask is a task sitting in the Gateway's new-task queue.
type submittedTask struct {
	id   uint32
	deps []trace.Dep
}

// gateway is the first interface between Picos and the cores: it fetches
// new tasks and finished tasks and dispatches them to TRSs and DCTs
// (flows N1-N4 and F1-F2). Its admission rule is the paper's corrected
// operational workflow: a new task is only taken when a TRS slot is free
// — and, to keep a partially registered task from wedging the version
// store, when every DCT retains VM headroom for a full task's worth of
// dependences.
type gateway struct {
	p      *Picos
	timing *Timing

	newQ regFIFO[submittedTask] // from the cores (N1)
	finQ regFIFO[TaskHandle]    // from the workers (F1)

	// vmCredits is the hardware-style flow control that implements the
	// paper's corrected operational workflow: each DCT grants credits for
	// (capacity - reserve) dependences; the GW debits one credit per
	// dependence at admission and the DCT returns it when the release is
	// processed. Since a live VM entry always has at least one unfinished
	// participant holding a credit, the version store can never be
	// exhausted by admitted work.
	vmCredits []int

	rrTRS        int    // round-robin TRS allocation pointer
	busyUntil    uint64 // new-task engine
	busyUntilFin uint64 // finished-task engine (independent datapath)
	busy         uint64
	blocked      bool   // admission-blocked on the head of newQ
	blockedAt    uint64 // cycle the current blocked stretch began
	need         []int  // admit scratch: per-DCT credit demand
	hid          int32  // horizon-heap slot
}

func newGateway(p *Picos) *gateway {
	return &gateway{p: p, timing: &p.cfg.Timing}
}

// initCredits sizes the credit pools once the DCTs exist; the slices are
// reused across Resets when the DCT count is unchanged.
func (g *gateway) initCredits() {
	n := len(g.p.dct)
	if cap(g.vmCredits) < n {
		g.vmCredits = make([]int, n)
		g.need = make([]int, n)
	} else {
		g.vmCredits = g.vmCredits[:n]
		g.need = g.need[:n]
	}
	// Each shard grants credits against its own partition of the VM:
	// a sharded fabric divides the design's capacity, it does not
	// multiply it, so per-shard room is shardCapacity - reserve.
	perShard := shardCapacity(g.p.cfg.Design, g.p.cfg.NumDCT) - g.p.cfg.VMReserve
	for i := range g.vmCredits {
		g.vmCredits[i] = perShard
		g.need[i] = 0
	}
}

// reset scrubs the gateway back to its just-built state, keeping queue
// storage. Credit pools are resized by the initCredits that follows.
func (g *gateway) reset() {
	g.newQ.reset()
	g.finQ.reset()
	g.rrTRS = 0
	g.busyUntil, g.busyUntilFin, g.busy = 0, 0, 0
	g.blocked = false
	g.blockedAt = 0
}

// returnCredit is called by a DCT when it has processed one release.
func (g *gateway) returnCredit(dct uint8) { g.vmCredits[dct]++ }

func (g *gateway) step(now uint64) {
	p := g.p
	// Finished-task engine: drains completions independently of the
	// new-task path so retiring work never throttles admission.
	for g.busyUntilFin <= now {
		h, ok := g.finQ.pop(now)
		if !ok {
			break
		}
		done := now + g.timing.GWFinTask
		g.busyUntilFin = done
		g.busy += g.timing.GWFinTask
		p.markDirty(g.hid)
		p.noteBusy(done)
		t := p.trs[h.TRS]
		t.finTaskQ.push(finishedTaskPkt{slot: h.Slot}, done+g.timing.GWFinPipe)
		p.markDirty(t.hid)
	}
	for g.busyUntil <= now {
		t, ok := g.newQ.peek(now)
		if !ok {
			g.blocked = false
			return
		}
		if f := p.cfg.Faults; f != nil && f.Degrade > 0 && g.blocked && now >= g.blockedAt+f.Degrade {
			// Graceful degradation: the head has been inadmissible for
			// the whole degrade window (leaked credits or version slots
			// on a sick shard will never come back), so refuse it and
			// let the surviving shards keep serving instead of wedging.
			g.newQ.pop(now)
			g.blocked = false
			f.Refused++
			f.Fired = true
			p.markDirty(g.hid)
			continue
		}
		trsID, slot, admitted := g.admit(t.deps)
		if !admitted {
			if !g.blocked {
				// The head leaves the horizon until an external finish
				// frees resources.
				g.blocked = true
				g.blockedAt = now
				p.markDirty(g.hid)
			}
			p.stats.GWBlockedCycles++
			g.busyUntil = now + 1
			p.noteBusy(g.busyUntil)
			return
		}
		g.blocked = false
		g.newQ.pop(now)
		cost := g.timing.GWNewTask + uint64(len(t.deps))*g.timing.GWPerDep
		if f := p.cfg.Faults; f != nil {
			// gw:stall — a one-shot admission-path stall extending this
			// admission's busy window; later submissions back up in the
			// new-task queue behind it.
			cost += f.GWStallDelay(now)
		}
		g.busyUntil = now + cost
		g.busy += cost
		p.markDirty(g.hid)
		p.noteBusy(g.busyUntil)

		handle := TaskHandle{TRS: trsID, Slot: slot}
		tu := p.trs[trsID]
		tu.newQ.push(newTaskPkt{slot: slot, id: t.id, numDeps: uint8(len(t.deps))},
			now+g.timing.GWNewTask+g.timing.GWPipe)
		p.markDirty(tu.hid)
		sharded := len(p.dct) > 1
		for i, d := range t.deps {
			at := now + g.timing.GWNewTask + uint64(i+1)*g.timing.GWPerDep + g.timing.GWPipe
			pkt := newDepPkt{
				task:   handle,
				depIdx: uint8(i),
				addr:   d.Addr,
				dir:    d.Dir,
			}
			if sharded {
				// On a sharded fabric the GW has no private port per
				// shard: dependence traffic crosses the arbiter and pays
				// the destination shard's chain distance like every
				// other DCT-bound message.
				p.arb.route(arbMsg{kind: arbNewDep, dep: pkt}, at)
				continue
			}
			// A single DCT keeps the prototype's direct GW->DCT wiring.
			du := p.dct[p.dctOf(d.Addr)]
			du.newDepQ.push(pkt, at)
			p.markDirty(du.hid)
		}
		p.stats.TasksAdmitted++
		if inFlight := p.InFlight(); inFlight > p.stats.MaxInFlightTasks {
			p.stats.MaxInFlightTasks = inFlight
		}
	}
}

// admit implements N2 as a two-phase reserve/commit: a multi-address
// task may span several DCT shards, and its dependences must land on
// all of them or none — a partial registration would hold VM entries on
// some shards while the task can never start, wedging the fabric.
//
// Phase 1 (reserve) debits every shard's credit pool for the task's
// per-shard demand, rolling the debits back if any single shard lacks
// room (the room check is per shard against that shard's partition of
// the VM, not against the pooled total: one saturated shard must block
// the task even when the others are empty). Phase 2 (commit) binds the
// reservation to a TRS slot; if no slot is free the reservation is
// rolled back and the task retries, leaving the pools untouched.
func (g *gateway) admit(deps []trace.Dep) (uint8, uint16, bool) {
	// The avoid-deadlock policies keep the credit reservation: the
	// submit-time feasibility check replaces only the wedge, not the
	// version-store flow control.
	credits := g.p.cfg.Admission != AdmitSlotsOnly
	need := g.need
	if credits {
		for i := range need {
			need[i] = 0
		}
		for _, d := range deps {
			need[g.p.dctOf(d.Addr)]++
		}
		// Phase 1: reserve on every shard, rolling back on the first
		// shard without room.
		for i := range g.p.dct {
			if need[i] > g.vmCredits[i] {
				for j := 0; j < i; j++ {
					g.vmCredits[j] += need[j]
				}
				return 0, 0, false
			}
			g.vmCredits[i] -= need[i]
		}
	}
	// Phase 2: commit the reservation to a TRS slot.
	n := len(g.p.trs)
	for i := 0; i < n; i++ {
		u := g.p.trs[(g.rrTRS+i)%n]
		if slot, ok := u.allocSlot(); ok {
			g.rrTRS = (g.rrTRS + i + 1) % n
			return u.id, slot, true
		}
	}
	if credits {
		for j := range g.p.dct {
			g.vmCredits[j] += need[j]
		}
	}
	return 0, 0, false
}

// nextEvent returns the earliest cycle at which the GW can make progress
// on its own: drain a finished task or take the head of the new-task
// queue. A blocked head is excluded — only an external finish (arriving
// through some other unit's event) can unblock it, and the per-cycle
// retries it would burn in between are batch-accounted by Picos.skipTo.
func (g *gateway) nextEvent() (uint64, bool) {
	next, ok := uint64(0), false
	if at, qok := g.finQ.headAt(); qok {
		next, ok = max(at, g.busyUntilFin), true
	}
	if at, qok := g.newQ.headAt(); qok && !g.blocked {
		if c := max(at, g.busyUntil); !ok || c < next {
			next, ok = c, true
		}
	}
	// A blocked head under degrade recovery makes progress on its own:
	// the refusal pop fires at the end of the degrade window, so the
	// deadline is a real event the fast path must step at.
	if f := g.p.cfg.Faults; f != nil && f.Degrade > 0 && g.blocked {
		if c := g.blockedAt + f.Degrade; !ok || c < next {
			next, ok = c, true
		}
	}
	return next, ok
}

// active: the GW has work it can still make progress on by itself.
func (g *gateway) active(now uint64) bool {
	if g.busyUntil > now || g.busyUntilFin > now || !g.finQ.empty() {
		return true
	}
	if g.newQ.empty() {
		return false
	}
	// A blocked head only unblocks via external finish notifications —
	// unless degrade recovery is armed, in which case the refusal pop
	// at the window deadline is progress the GW makes by itself.
	if f := g.p.cfg.Faults; f != nil && f.Degrade > 0 {
		return true
	}
	return !g.blocked
}
