// Cholesky scaling: the Figure 11b experiment as a program — compare the
// Picos Full-system prototype, the software-only Nanos++ runtime and the
// Perfect roofline on blocked Cholesky as workers scale from 2 to 24.
// The whole {engine x block x workers} matrix is one sim.Grid, executed
// in parallel across a bounded goroutine pool.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

func main() {
	engines := []string{"picos-full", "perfect", "nanos"}
	workers := []int{2, 4, 8, 12, 16, 24}
	blocks := []int{128, 64}

	grid := sim.Grid{
		Base:    sim.Spec{Workload: "cholesky"},
		Engines: engines,
		Blocks:  blocks,
		Workers: workers,
	}
	specs := grid.Expand() // engines vary slowest, blocks fastest
	items := sim.Sweep(specs, 0)
	at := func(e, b, w int) *sim.Result {
		it := items[(e*len(workers)+w)*len(blocks)+b]
		if it.Err != "" {
			log.Fatalf("%s cholesky/%d w=%d: %s", engines[e], blocks[b], workers[w], it.Err)
		}
		return it.Result
	}

	for bi, block := range blocks {
		tr, err := sim.BuildWorkload(sim.Spec{Workload: "cholesky", Block: block})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cholesky 2048/%d: %d tasks, avg %.3g cycles each\n",
			block, len(tr.Tasks), tr.Summarize().AvgTaskSize)
		fmt.Printf("%8s  %18s  %8s  %8s\n", "workers", "picos(full-system)", "perfect", "nanos++")
		for wi, w := range workers {
			fmt.Printf("%8d  %18.2f  %8.2f  %8.2f\n", w,
				at(0, bi, wi).Speedup, at(1, bi, wi).Speedup, at(2, bi, wi).Speedup)
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper Fig. 11b): Picos tracks the roofline;")
	fmt.Println("Nanos++ saturates near 8 workers and falls behind at block 64.")
}
