package sim_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

// equivalenceEngines are the three Picos HIL integration modes — the
// engines whose runner actually branches on the FastForward knob.
var equivalenceEngines = []string{"picos-hw", "picos-comm", "picos-full"}

// equivalenceWorkloads is the full workload matrix of the differential
// suite: the six real benchmarks of Table I (at a reduced problem size
// so the cycle-stepped reference side stays CI-friendly; h264dec uses
// its own frame-count sizing) and the seven synthetic capacity cases of
// Table IV.
func equivalenceWorkloads() []sim.Spec {
	specs := []sim.Spec{
		{Workload: "heat", Problem: 768},
		{Workload: "lu", Problem: 768},
		{Workload: "mlu", Problem: 768},
		{Workload: "sparselu", Problem: 768},
		{Workload: "cholesky", Problem: 768},
		{Workload: "h264dec"},
	}
	for c := 1; c <= 7; c++ {
		specs = append(specs, sim.Spec{Workload: fmt.Sprintf("case%d", c)})
	}
	return specs
}

// resultJSON canonicalizes a Result for comparison: the full JSON
// serialization, schedule arrays and stats included.
func resultJSON(t *testing.T, res *sim.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// TestFastPathEquivalence runs the {picos-hw, picos-comm, picos-full} x
// {6 benchmarks, 7 synthetic cases} matrix twice — event-driven fast
// path on vs the cycle-stepped reference loop — and asserts the two
// Results are JSON-identical, including per-task schedules, start order
// and every accelerator counter (conflict/stall/blocked cycles
// included, which the fast path batch-accounts instead of accruing
// per cycle).
func TestFastPathEquivalence(t *testing.T) {
	for _, engine := range equivalenceEngines {
		for _, base := range equivalenceWorkloads() {
			spec := base
			spec.Engine = engine
			t.Run(engine+"/"+spec.Workload, func(t *testing.T) {
				t.Parallel()
				fast := spec
				fast.FastForward = sim.Bool(true)
				ref := spec
				ref.FastForward = sim.Bool(false)

				fres, err := sim.Run(fast)
				if err != nil {
					t.Fatalf("fast path: %v", err)
				}
				rres, err := sim.Run(ref)
				if err != nil {
					t.Fatalf("cycle-stepped reference: %v", err)
				}
				fj, rj := resultJSON(t, fres), resultJSON(t, rres)
				if fj != rj {
					t.Errorf("fast path diverges from cycle-stepped reference\nfast: %s\nref:  %s", fj, rj)
				}
				if fres.Stats == nil || rres.Stats == nil {
					t.Fatal("picos engines must report stats")
				}
				if *fres.Stats != *rres.Stats {
					t.Errorf("stats diverge\nfast: %+v\nref:  %+v", *fres.Stats, *rres.Stats)
				}
			})
		}
	}
}

// TestFastPathEquivalenceKnobs widens the differential net beyond the
// default configuration: the cycle-stepped reference must also match
// under the LIFO scheduler, the slots-only admission policy (which
// exercises DCT head-of-line stall batching), the direct-hash DM design
// (which exercises DM-conflict stall batching), the first-first wake
// ablation and a multi-TRS/DCT future architecture.
func TestFastPathEquivalenceKnobs(t *testing.T) {
	knobs := []struct {
		name      string
		workloads []string
		mut       func(*sim.Spec)
	}{
		{"lifo", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.Policy = "lifo" }},
		{"slots", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.Admission = "slots" }},
		// The direct-hash DM wedges case7 under either admission policy
		// (see TestFastPathWedgeDetection); heat with slots-only
		// admission survives with millions of DM-conflict stall cycles —
		// exactly the batch-accounting the fast path must reproduce.
		{"8way", []string{"case4"}, func(s *sim.Spec) { s.Design = "8way" }},
		{"8way-slots", []string{"case4", "heat"}, func(s *sim.Spec) { s.Design = "8way"; s.Admission = "slots" }},
		{"first-first", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.Wake = "first-first" }},
		{"4trs4dct", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.NumTRS = 4; s.NumDCT = 4 }},
		{"1worker", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.Workers = 1 }},
	}
	for _, engine := range equivalenceEngines {
		for _, k := range knobs {
			for _, workload := range k.workloads {
				spec := sim.Spec{Engine: engine, Workload: workload}
				if workload == "heat" {
					spec.Problem = 512
				}
				k.mut(&spec)
				t.Run(engine+"/"+k.name+"/"+workload, func(t *testing.T) {
					t.Parallel()
					fast := spec
					fast.FastForward = sim.Bool(true)
					ref := spec
					ref.FastForward = sim.Bool(false)
					fres, err := sim.Run(fast)
					if err != nil {
						t.Fatalf("fast path: %v", err)
					}
					rres, err := sim.Run(ref)
					if err != nil {
						t.Fatalf("cycle-stepped reference: %v", err)
					}
					if fj, rj := resultJSON(t, fres), resultJSON(t, rres); fj != rj {
						t.Errorf("fast path diverges from cycle-stepped reference\nfast: %s\nref:  %s", fj, rj)
					}
				})
			}
		}
	}
}

// TestFastPathWedgeDetection: case7 on the direct-hash 8-way DM is a
// genuine model deadlock (admitted tasks whose dependences can never be
// stored — the hazard of the paper's deadlock discussion). Both loops
// must refuse to complete it; the fast path is expected to prove "no
// future event" after a few thousand cycles instead of burning the whole
// watchdog budget one cycle at a time.
func TestFastPathWedgeDetection(t *testing.T) {
	spec := sim.Spec{Engine: "picos-hw", Workload: "case7", Design: "8way", Watchdog: 200_000}
	spec.FastForward = sim.Bool(true)
	if _, err := sim.Run(spec); err == nil {
		t.Error("fast path completed a deadlocked configuration")
	}
	spec.FastForward = sim.Bool(false)
	if _, err := sim.Run(spec); err == nil {
		t.Error("cycle-stepped reference completed a deadlocked configuration")
	}
}
