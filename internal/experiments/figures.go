package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/nanos"
	"repro/internal/sim"
)

func init() {
	Register("fig1", Fig1)
	Register("fig8", Fig8)
	Register("fig9", Fig9)
	Register("fig10", Fig10)
	Register("fig11", Fig11)
}

// Fig1 regenerates Figure 1: speedup vs task granularity for the four
// matrix kernels under the software-only runtime with 12 cores.
func Fig1(opt Options) ([]*Table, error) {
	t := &Table{
		Title:  "Figure 1: speedup vs task granularity (Nanos++ software-only, 12 workers)",
		Header: []string{"Blocksize", "heat", "lu", "sparselu", "cholesky"},
	}
	blockSizes := []int{256, 128, 64, 32}
	if opt.Quick {
		blockSizes = []int{256, 64}
	}
	kernels := []string{"heat", "lu", "sparselu", "cholesky"}
	grid := sim.Grid{
		Base:      sim.Spec{Engine: "nanos"},
		Blocks:    blockSizes,
		Workloads: kernels,
	}
	results, err := sweep(opt, grid.Expand())
	if err != nil {
		return nil, err
	}
	// Grid order: workloads vary slower than blocks.
	for bi, bs := range blockSizes {
		row := []string{fmt.Sprintf("%d", bs)}
		for ki := range kernels {
			row = append(row, f2(results[ki*len(blockSizes)+bi].Speedup))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "speedup rises with new parallelism, then falls when runtime overhead dominates")
	return []*Table{t}, nil
}

// fig8Workloads are the four benchmarks (two block sizes each) of Fig 8.
var fig8Workloads = []struct {
	app apps.App
	bs  [2]int
}{
	{apps.Heat, [2]int{128, 64}},
	{apps.Cholesky, [2]int{256, 128}},
	{apps.Lu, [2]int{64, 32}},
	{apps.SparseLu, [2]int{128, 64}},
}

// designSweepTable runs a {workers x DM design} grid on picos-hw and
// formats it as one speedup table — the shared shape of Figures 8 and
// 9 (left).
func designSweepTable(opt Options, title, workload string, block int, workerList []int) (*Table, error) {
	// Columns come from the shared dmDesigns table (tables.go) so the
	// grid dimension, header labels and index stride cannot drift apart.
	header := []string{"Workers"}
	var designs []string
	for _, d := range dmDesigns {
		header = append(header, d.label)
		designs = append(designs, d.spec)
	}
	t := &Table{Title: title, Header: header}
	grid := sim.Grid{
		Base:    sim.Spec{Engine: "picos-hw", Workload: workload, Block: block},
		Workers: workerList,
		Designs: designs,
	}
	results, err := sweep(opt, grid.Expand())
	if err != nil {
		return nil, err
	}
	for wi, w := range workerList {
		row := []string{fmt.Sprintf("%d", w)}
		for di := range designs {
			row = append(row, f2(results[wi*len(designs)+di].Speedup))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig8 regenerates Figure 8: speedup of the three DM designs, HW-only
// mode, 2..12 workers.
func Fig8(opt Options) ([]*Table, error) {
	workerList := []int{2, 4, 6, 8, 10, 12}
	workloads := fig8Workloads
	if opt.Quick {
		workerList = []int{2, 12}
		workloads = workloads[:2]
	}
	var tables []*Table
	for _, wl := range workloads {
		for _, bs := range wl.bs {
			title := fmt.Sprintf("Figure 8: %s (%d/%d), HW-only speedup by DM design", wl.app, apps.DefaultProblem, bs)
			t, err := designSweepTable(opt, title, string(wl.app), bs, workerList)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s/%d: %w", wl.app, bs, err)
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// Fig9 regenerates Figure 9: the Lu corner case. Left: MLu (modified
// creation order) by DM design; right: original Lu with FIFO vs LIFO TS.
func Fig9(opt Options) ([]*Table, error) {
	workerList := []int{2, 4, 6, 8, 10, 12}
	blockSizes := []int{64, 32}
	if opt.Quick {
		workerList = []int{2, 12}
		blockSizes = []int{64}
	}
	var tables []*Table
	for _, bs := range blockSizes {
		title := fmt.Sprintf("Figure 9 (left): MLu (%d/%d), HW-only speedup by DM design", apps.DefaultProblem, bs)
		t, err := designSweepTable(opt, title, string(apps.MLu), bs, workerList)
		if err != nil {
			return nil, fmt.Errorf("fig9 mlu/%d: %w", bs, err)
		}
		tables = append(tables, t)

		t2 := &Table{
			Title:  fmt.Sprintf("Figure 9 (right): Lu (%d/%d), P+8way, FIFO vs LIFO TS", apps.DefaultProblem, bs),
			Header: []string{"Workers", "FIFO", "LIFO"},
		}
		grid := sim.Grid{
			Base:     sim.Spec{Engine: "picos-hw", Workload: string(apps.Lu), Block: bs},
			Workers:  workerList,
			Policies: []string{"fifo", "lifo"},
		}
		results, err := sweep(opt, grid.Expand())
		if err != nil {
			return nil, fmt.Errorf("fig9 lu/%d: %w", bs, err)
		}
		for wi, w := range workerList {
			t2.Rows = append(t2.Rows, []string{
				fmt.Sprintf("%d", w), f2(results[wi*2].Speedup), f2(results[wi*2+1].Speedup),
			})
		}
		tables = append(tables, t2)
	}
	return tables, nil
}

// Fig10 regenerates Figure 10: Nanos++ per-task creation and submission
// overhead versus thread count. This one interrogates the cost model
// directly — no simulation.
func Fig10(opt Options) ([]*Table, error) {
	tm := nanos.DefaultTiming()
	t := &Table{
		Title:  "Figure 10: Nanos++ RTS overhead for a single task (cycles)",
		Header: []string{"Threads", "Creation", "1 DEP", "2 DEPs", "4 DEPs", "8 DEPs", "15 DEPs"},
	}
	threads := []int{1, 2, 4, 6, 8, 10, 12}
	if opt.Quick {
		threads = []int{1, 12}
	}
	for _, th := range threads {
		row := []string{fmt.Sprintf("%d", th), d(tm.CreationOverhead(th))}
		for _, nd := range []int{1, 2, 4, 8, 15} {
			row = append(row, d(tm.SubmissionOverhead(nd, th)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Fig11 regenerates Figure 11: scalability of the five real benchmarks
// under Picos Full-system vs the Perfect Simulator vs Nanos++.
func Fig11(opt Options) ([]*Table, error) {
	workerList := []int{2, 4, 8, 12, 16, 20, 24}
	if opt.Quick {
		workerList = []int{2, 8}
	}
	engines := []string{"picos-full", "perfect", "nanos"}
	var tables []*Table
	for _, app := range apps.Apps {
		blockSizes := apps.BlockSizes(app)
		if opt.Quick {
			blockSizes = blockSizes[:1]
			if app != apps.Heat && app != apps.Cholesky {
				continue
			}
		}
		for _, bs := range blockSizes {
			grid := sim.Grid{
				Base:    sim.Spec{Workload: string(app), Block: bs},
				Engines: engines,
				Workers: workerList,
			}
			results, err := sweep(opt, grid.Expand())
			if err != nil {
				return nil, fmt.Errorf("fig11 %s/%d: %w", app, bs, err)
			}
			t := &Table{
				Title:  fmt.Sprintf("Figure 11: %s blocksize %d — speedup", app, bs),
				Header: []string{"Workers", "Picos(Full-system)", "Perfect", "Nanos++"},
			}
			// Grid order: engines vary slower than workers.
			for wi, w := range workerList {
				row := []string{fmt.Sprintf("%d", w)}
				for ei := range engines {
					row = append(row, f2(results[ei*len(workerList)+wi].Speedup))
				}
				t.Rows = append(t.Rows, row)
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}
