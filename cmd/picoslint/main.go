// Command picoslint runs the repository's analyzer suite (internal/lint)
// over the module: determinism of internal packages, the dirty-horizon
// discipline of the event scheduler, the //picos:hotpath zero-allocation
// contract, sim.Spec knob threading and errors.Is discipline for
// sentinel errors.
//
// Usage:
//
//	picoslint ./...
//	picoslint -run determinism,hotalloc ./...
//	picoslint -json ./... | jq .
//	picoslint -list
//
// The module containing the argument directory (default ".") is always
// loaded and type-checked whole — the analyzers are cross-package — and
// the package patterns select which packages' findings are reported.
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		listOnly = flag.Bool("list", false, "list the registered analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: picoslint [-run a,b] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "picoslint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "picoslint: %v\n", err)
		os.Exit(2)
	}

	suite, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "picoslint: %v\n", err)
		os.Exit(2)
	}
	diags := suite.Run(analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "picoslint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -run list against the registry.
func selectAnalyzers(runList string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if runList == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	var names []string
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(names, ", "))
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return picked, nil
}

// moduleRoot finds the go.mod directory containing the first package
// pattern. The analyzers are cross-package (specknob accounts over the
// whole module), so the whole module is always loaded regardless of how
// narrow the pattern is.
func moduleRoot(patterns []string) (string, error) {
	dir := strings.TrimSuffix(patterns[0], "...")
	dir = strings.TrimSuffix(dir, "/")
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
