// Package engine exercises the hotalloc analyzer: functions annotated
// //picos:hotpath may not contain allocating constructs.
package engine

import "fmt"

type event struct {
	at uint64
	id int
}

type machine struct {
	queue   []event
	scratch event
	sink    any
}

//picos:hotpath
func (m *machine) badStep(now uint64) {
	e := &event{at: now} // want `takes the address of a composite literal`
	_ = e
	ids := []int{1, 2, 3} // want `builds a slice literal`
	_ = ids
	lookup := map[int]uint64{1: now} // want `builds a map literal`
	_ = lookup
	p := new(event) // want `calls new\(\.\.\.\)`
	_ = p
	fmt.Printf("step %d\n", now)      // want `calls fmt\.Printf`
	f := func() uint64 { return now } // want `declares a func literal`
	_ = f
	m.sink = now // want `boxes a uint64 into an interface`
}

//picos:hotpath
func (m *machine) goodStep(now uint64) {
	// Value literals copy into storage the machine already owns.
	m.scratch = event{at: now, id: 1}
	// Append into a preallocated queue does not inherently allocate.
	m.queue = append(m.queue, m.scratch)
	// Pointers box without copying: the pointer word fits the slot.
	m.sink = &m.scratch
	// Zeroing with an empty literal is a clear, allocation-free reset.
	m.scratch = event{}
}

// coldStep is unannotated: the same constructs are fine off the hot
// path, so none of this may be flagged.
func (m *machine) coldStep(now uint64) {
	e := &event{at: now}
	fmt.Printf("cold %d\n", e.at)
	m.sink = now
}

//picos:hotpath
func (m *machine) suppressedStep(now uint64) {
	//lint:ignore hotalloc wedge diagnostics only; the run is already over when this executes
	fmt.Printf("wedged at %d\n", now)
}
