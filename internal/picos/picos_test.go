package picos

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func simpleTrace(deps [][]trace.Dep, dur uint64) *trace.Trace {
	tr := &trace.Trace{Name: "t"}
	for i := range deps {
		tr.Tasks = append(tr.Tasks, trace.Task{ID: uint32(i), Duration: dur, Deps: deps[i]})
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumTRS: 300}); err == nil {
		t.Fatal("accepted 300 TRS instances")
	}
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Config().NumTRS != 1 || p.Config().NumDCT != 1 {
		t.Fatalf("defaults not applied: %+v", p.Config())
	}
	if p.Config().VMReserve != trace.MaxDeps+1 {
		t.Fatalf("VMReserve default = %d", p.Config().VMReserve)
	}
}

func TestSingleTaskNoDeps(t *testing.T) {
	tr := simpleTrace([][]trace.Dep{nil}, 5)
	r := runTrace(t, tr, DefaultConfig(), 1)
	r.verify(t, tr)
	if r.start[0] == 0 {
		t.Fatal("task started at cycle 0; pipeline latency missing")
	}
	// First-task latency should be tens of cycles (Table IV: 45).
	if r.start[0] > 100 {
		t.Fatalf("first-task latency %d cycles; want < 100", r.start[0])
	}
}

func TestIndependentTasksAllRun(t *testing.T) {
	deps := make([][]trace.Dep, 50)
	tr := simpleTrace(deps, 3)
	r := runTrace(t, tr, DefaultConfig(), 4)
	r.verify(t, tr)
}

// TestFigure5ChainSemantics reproduces the paper's Figure 5 walk-through:
// six tasks with a single dependence A — producer T0; consumers T1,T2,T3;
// producers T4,T5. With one worker and a long-running T0 (so the whole
// graph registers first), execution must be:
//
//	T0, then the consumer chain woken from the LAST consumer (T3,T2,T1),
//	then the producer-producer chain in sequence (T4, T5).
func TestFigure5ChainSemantics(t *testing.T) {
	a := uint64(0x7000)
	tr := simpleTrace([][]trace.Dep{
		{{Addr: a, Dir: trace.Out}},
		{{Addr: a, Dir: trace.In}},
		{{Addr: a, Dir: trace.In}},
		{{Addr: a, Dir: trace.In}},
		{{Addr: a, Dir: trace.InOut}},
		{{Addr: a, Dir: trace.InOut}},
	}, 1)
	tr.Tasks[0].Duration = 10_000 // everyone registers while T0 runs

	r := runTrace(t, tr, DefaultConfig(), 1)
	r.verify(t, tr)
	want := []uint32{0, 3, 2, 1, 4, 5}
	for i, id := range want {
		if r.order[i] != id {
			t.Fatalf("execution order %v, want %v (wake-from-last-consumer)", r.order, want)
		}
	}
}

// TestConsumerAfterProducerDone: a reader arriving after the producer
// finished must be ready immediately, not chained.
func TestConsumerAfterProducerDone(t *testing.T) {
	a := uint64(0x8000)
	tr := simpleTrace([][]trace.Dep{
		{{Addr: a, Dir: trace.Out}},
		{{Addr: a, Dir: trace.In}},
	}, 2)
	r := runTrace(t, tr, DefaultConfig(), 2)
	r.verify(t, tr)
	if r.start[1] < r.finish[0] {
		t.Fatalf("reader started at %d before writer finished at %d", r.start[1], r.finish[0])
	}
}

// TestInputOnlyChainIsParallel: readers with no producer are mutually
// independent (the DM input bit).
func TestInputOnlyChainIsParallel(t *testing.T) {
	a := uint64(0x9000)
	deps := make([][]trace.Dep, 8)
	for i := range deps {
		deps[i] = []trace.Dep{{Addr: a, Dir: trace.In}}
	}
	tr := simpleTrace(deps, 1000)
	r := runTrace(t, tr, DefaultConfig(), 8)
	r.verify(t, tr)
	// With 8 workers and all-independent tasks, every task must overlap
	// with at least one other.
	overlaps := 0
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if r.start[i] < r.finish[j] && r.start[j] < r.finish[i] {
				overlaps++
			}
		}
	}
	if overlaps == 0 {
		t.Fatal("input-only tasks were serialized")
	}
}

// TestWARBlocksWriter: a writer must wait for all earlier readers.
func TestWARBlocksWriter(t *testing.T) {
	a, b := uint64(0xA000), uint64(0xB000)
	tr := simpleTrace([][]trace.Dep{
		{{Addr: a, Dir: trace.Out}},                          // producer
		{{Addr: a, Dir: trace.In}, {Addr: b, Dir: trace.In}}, // reader 1
		{{Addr: a, Dir: trace.In}},                           // reader 2
		{{Addr: a, Dir: trace.Out}},                          // overwriter: WAR on 1,2 WAW on 0
	}, 500)
	r := runTrace(t, tr, DefaultConfig(), 4)
	r.verify(t, tr)
	for i := 0; i < 3; i++ {
		if r.start[3] < r.finish[i] {
			t.Fatalf("overwriter started at %d before task %d finished at %d", r.start[3], i, r.finish[i])
		}
	}
}

// TestDMConflictCounting checks Table II's conflict mechanism: distinct
// addresses that collide in the same direct-hash set conflict once the
// ways are exhausted, while the Pearson design spreads them out.
func TestDMConflictCounting(t *testing.T) {
	const n = 20
	deps := make([][]trace.Dep, n)
	for i := range deps {
		// Stride 256 bytes: identical word-address bits [7:2] => same
		// direct-hash set.
		deps[i] = []trace.Dep{{Addr: 0x100000 + uint64(i)*256, Dir: trace.InOut}}
	}
	tr := simpleTrace(deps, 1000)

	cfg := DefaultConfig()
	cfg.Design = DM8Way
	r := runTrace(t, tr, cfg, 1)
	r.verify(t, tr)
	// One worker serializes completions, so every dependence beyond the 8
	// ways conflicts exactly once.
	if got := r.p.Stats().DMConflicts; got != n-8 {
		t.Fatalf("DM 8way conflicts = %d, want %d", got, n-8)
	}

	cfg.Design = DM16Way
	r = runTrace(t, tr, cfg, 1)
	r.verify(t, tr)
	if got := r.p.Stats().DMConflicts; got != n-16 {
		t.Fatalf("DM 16way conflicts = %d, want %d", got, n-16)
	}

	cfg.Design = DMP8Way
	r = runTrace(t, tr, cfg, 1)
	r.verify(t, tr)
	if got := r.p.Stats().DMConflicts; got > 2 {
		t.Fatalf("DM P+8way conflicts = %d, want ~0 (Pearson spreads the set index)", got)
	}
}

// TestAdmissionControlBoundsInFlight: the GW must never exceed 256
// in-flight tasks (TM0 capacity).
func TestAdmissionControlBoundsInFlight(t *testing.T) {
	const n = 400
	deps := make([][]trace.Dep, n)
	tr := simpleTrace(deps, 1_000_000) // long tasks: nothing finishes
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Tasks {
		p.Submit(tr.Tasks[i].ID, tr.Tasks[i].Deps)
	}
	for c := 0; c < 30_000; c++ {
		p.Step()
		if p.InFlight() > tmSlots {
			t.Fatalf("in-flight %d exceeds TM capacity %d", p.InFlight(), tmSlots)
		}
	}
	if p.InFlight() != tmSlots {
		t.Fatalf("in-flight %d, want %d (queue should fill TM0)", p.InFlight(), tmSlots)
	}
	if p.Stats().GWBlockedCycles == 0 {
		t.Fatal("GW never blocked despite TM exhaustion")
	}
}

// TestVMHeadroomAdmission: tasks with 15 deps must be throttled so the VM
// never exhausts (the deadlock-avoidance workflow).
func TestVMHeadroomAdmission(t *testing.T) {
	const n = 120
	deps := make([][]trace.Dep, n)
	for i := range deps {
		for d := 0; d < trace.MaxDeps; d++ {
			deps[i] = append(deps[i], trace.Dep{Addr: uint64(i*64+d)*4096 + 0x100000, Dir: trace.InOut})
		}
	}
	tr := simpleTrace(deps, 50_000) // long tasks pile up in the VM
	r := runTrace(t, tr, DefaultConfig(), 4)
	r.verify(t, tr)
	st := r.p.Stats()
	if st.MaxVMLive > DMP8Way.Capacity() {
		t.Fatalf("VM live %d exceeded capacity %d", st.MaxVMLive, DMP8Way.Capacity())
	}
	if st.GWBlockedCycles == 0 {
		t.Fatal("expected GW to throttle on VM headroom at least once")
	}
}

// TestMultiInstance exercises the Figure 3a future architecture: 4 TRS +
// 4 DCT instances must still produce legal schedules.
func TestMultiInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := randomDepTrace(rng, 300, 24)
	cfg := DefaultConfig()
	cfg.NumTRS = 4
	cfg.NumDCT = 4
	r := runTrace(t, tr, cfg, 16)
	r.verify(t, tr)
}

// TestLIFOPolicyLegal: the LIFO TS variant must remain legal.
func TestLIFOPolicyLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomDepTrace(rng, 200, 16)
	cfg := DefaultConfig()
	cfg.Policy = SchedLIFO
	r := runTrace(t, tr, cfg, 4)
	r.verify(t, tr)
}

// randomDepTrace builds a trace with dense random dependences over a
// small address pool.
func randomDepTrace(rng *rand.Rand, n, addrs int) *trace.Trace {
	tr := &trace.Trace{Name: "rand"}
	for i := 0; i < n; i++ {
		task := trace.Task{ID: uint32(i), Duration: uint64(rng.Intn(300) + 1)}
		nd := rng.Intn(5)
		used := map[uint64]bool{}
		for d := 0; d < nd; d++ {
			// Mixed alignment: some clustered, some spread.
			var addr uint64
			if rng.Intn(2) == 0 {
				addr = 0x100000 + uint64(rng.Intn(addrs))*131072
			} else {
				addr = 0x900000 + uint64(rng.Intn(addrs))*64
			}
			if used[addr] {
				continue
			}
			used[addr] = true
			task.Deps = append(task.Deps, trace.Dep{Addr: addr, Dir: trace.Direction(rng.Intn(3))})
		}
		tr.Tasks = append(tr.Tasks, task)
	}
	return tr
}

// TestOracleProperty is the central correctness property: across random
// traces, every DM design, both scheduling policies and several worker
// counts, Picos must produce dependence-legal schedules and drain
// completely.
func TestOracleProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		tr := randomDepTrace(rng, 150, 12)
		for _, design := range Designs {
			for _, policy := range []SchedPolicy{SchedFIFO, SchedLIFO} {
				for _, workers := range []int{1, 3, 8} {
					cfg := DefaultConfig()
					cfg.Design = design
					cfg.Policy = policy
					r := runTrace(t, tr, cfg, workers)
					r.verify(t, tr)
				}
			}
		}
	}
}

// TestMoreWorkersNeverSlower (weak monotonicity): doubling workers must
// not increase makespan by more than scheduling noise.
func TestMoreWorkersNeverSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomDepTrace(rng, 200, 10)
	m1 := runTrace(t, tr, DefaultConfig(), 1).makespan()
	m4 := runTrace(t, tr, DefaultConfig(), 4).makespan()
	if float64(m4) > 1.05*float64(m1) {
		t.Fatalf("4 workers (%d) slower than 1 worker (%d)", m4, m1)
	}
}
