package experiments

import (
	"fmt"
	"math"

	"repro/internal/asciiplot"
	"repro/internal/patterns"
	"repro/internal/sim"
)

func init() {
	Register("wedge-frontier", WedgeFrontier)
}

// The wedge-frontier sweep charts where each DM design stops being able
// to hold a task's dependence set at all: the nearest family under the
// worst-case aligned layout clusters every point buffer into a single
// direct-hash set, so the k knob (the read-window width, hence the
// per-task dependence count) walks straight into the design's
// associativity while the fields knob switches between double-buffered
// reads (fields=2, task-bench's default) and the in-place fields=1
// variant whose buffers accumulate one VM version per step — the
// heavier stress on the version chains. Somewhere along each axis a
// design's admitted-but-unregistrable tasks turn from conflict stalls
// into a proven deadlock; that boundary is the design's wedge frontier.
var (
	wedgeKs     = []int{1, 3, 5, 7, 9, 11, 13}
	wedgeFields = []int{1, 2}
)

// wedgeFamily is the swept pattern family: nearest reads the k-wide
// window of previous-step points centered on each point, making k the
// direct dependence-fan knob (deps per task = window + the owner).
const wedgeFamily = "nearest"

// wedgePattern renders the sweep's workload spec for one (fields, k)
// grid point. The row is wide enough that the largest window never
// clamps at the edges for most points, and short enough that a full
// (non-wedged) run stays cheap.
func wedgePattern(fields, k int, layout string, opt Options) string {
	width, steps := 64, 8
	if opt.Quick {
		width, steps = 16, 4
	}
	s := fmt.Sprintf("%s%s?width=%d&steps=%d&k=%d&fields=%d",
		sim.PatternPrefix, wedgeFamily, width, steps, k, fields)
	if layout != patterns.DefaultLayout {
		s += "&layout=" + layout
	}
	return s
}

// WedgeFrontierData executes the wedge-frontier sweep: fields x k x DM
// design on picos-hw under the worst-case aligned layout, normalized
// per (fields, k) against the Perfect roofline (which is layout- and
// design-blind: every layout maps point buffers to addresses
// injectively, so the dependence graph is identical). Deadlocking grid
// points surface as wedged cells, not errors — the frontier IS the
// result. Cells carry Fields and K, distinguishing this lane in
// BENCH_patterns.json from the default-parameter capacity map.
func WedgeFrontierData(opt Options) ([]CapacityCell, error) {
	ks := wedgeKs
	if opt.Quick {
		ks = []int{3, 13}
	}

	type point struct {
		design string
		fields int
		k      int
	}
	var pts []point
	var specs []sim.Spec
	for _, d := range dmDesigns {
		for _, f := range wedgeFields {
			for _, k := range ks {
				pts = append(pts, point{d.spec, f, k})
				specs = append(specs, sim.Spec{
					Engine:   "picos-hw",
					Workload: wedgePattern(f, k, "aligned", opt),
					Design:   d.spec,
				})
			}
		}
	}
	// Perfect roofline, one run per (fields, k) pair (design-blind).
	perfectIdx := make(map[[2]int]int, len(wedgeFields)*len(ks))
	for _, f := range wedgeFields {
		for _, k := range ks {
			perfectIdx[[2]int{f, k}] = len(specs)
			pts = append(pts, point{"", f, k})
			specs = append(specs, sim.Spec{
				Engine:   "perfect",
				Workload: wedgePattern(f, k, patterns.DefaultLayout, opt),
			})
		}
	}

	results, err := sweep(opt, specs)
	if err != nil {
		return nil, err
	}

	cells := make([]CapacityCell, 0, len(pts))
	for i, pt := range pts {
		if pt.design == "" {
			continue // roofline
		}
		res := results[i]
		cell := CapacityCell{
			Family:   wedgeFamily,
			Workload: specs[i].Workload,
			Engine:   "picos-hw",
			Design:   pt.design,
			Layout:   "aligned",
			Fields:   pt.fields,
			K:        pt.k,
			Wedged:   res.Wedged,
			WedgedAt: res.WedgedAt,
			Makespan: res.Makespan,
			Speedup:  res.Speedup,
		}
		if st := res.Stats; st != nil {
			cell.DMConflicts = st.DMConflicts
			cell.VMStallEvents = st.VMStallEvents
			cell.DMConflictStallCycles = st.DMConflictStallCycles
			cell.VMStallCycles = st.VMStallCycles
		}
		if roof := results[perfectIdx[[2]int{pt.fields, pt.k}]]; !res.Wedged && roof.Speedup > 0 {
			cell.SpeedupVsPerfect = res.Speedup / roof.Speedup
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// WedgeFrontierHeatmaps renders one fields x k heatmap per DM design:
// speedup vs perfect, with wedged grid points missing — the XX band is
// the design's wedge frontier at a glance.
func WedgeFrontierHeatmaps(cells []CapacityCell) []*asciiplot.Heatmap {
	designs := distinct(cells, nil, func(c CapacityCell) string { return c.Design })
	ks := distinct(cells, nil, func(c CapacityCell) string { return fmt.Sprintf("%d", c.K) })
	fields := distinct(cells, nil, func(c CapacityCell) string { return fmt.Sprintf("%d", c.Fields) })

	xlabels := make([]string, len(ks))
	for i, k := range ks {
		xlabels[i] = "k" + k
	}
	ylabels := make([]string, len(fields))
	for i, f := range fields {
		ylabels[i] = "fields=" + f
	}

	var maps []*asciiplot.Heatmap
	for _, d := range designs {
		hm := &asciiplot.Heatmap{
			Title:   fmt.Sprintf("wedge frontier: speedup vs perfect (%s, picos-hw, aligned layout)", d),
			XLabels: xlabels,
			YLabels: ylabels,
			Missing: "XX",
		}
		for _, f := range fields {
			row := make([]float64, len(ks))
			for j, k := range ks {
				row[j] = math.NaN()
				for _, c := range cells {
					if c.Design == d && fmt.Sprintf("%d", c.Fields) == f && fmt.Sprintf("%d", c.K) == k && !c.Wedged {
						row[j] = c.SpeedupVsPerfect
					}
				}
			}
			hm.Cells = append(hm.Cells, row)
		}
		maps = append(maps, hm)
	}
	return maps
}

// WedgeFrontier is the registry entry: the sweep as one table per DM
// design, rows = fields, columns = k values, wedged grid points
// printing as WEDGE@<cycle> so each design's frontier reads directly
// off the row.
func WedgeFrontier(opt Options) ([]*Table, error) {
	cells, err := WedgeFrontierData(opt)
	if err != nil {
		return nil, err
	}
	return WedgeFrontierTables(cells), nil
}

// WedgeFrontierTables renders already-computed wedge-frontier cells as
// tables, so callers that also need the cells (the pattern-capacity-map
// example) run the sweep exactly once.
func WedgeFrontierTables(cells []CapacityCell) []*Table {
	ks := distinct(cells, nil, func(c CapacityCell) string { return fmt.Sprintf("%d", c.K) })
	fields := distinct(cells, nil, func(c CapacityCell) string { return fmt.Sprintf("%d", c.Fields) })
	designs := distinct(cells, nil, func(c CapacityCell) string { return c.Design })

	find := func(d, f, k string) *CapacityCell {
		for i := range cells {
			c := &cells[i]
			if c.Design == d && fmt.Sprintf("%d", c.Fields) == f && fmt.Sprintf("%d", c.K) == k {
				return c
			}
		}
		return nil
	}
	header := append([]string{"Fields"}, func() []string {
		out := make([]string, len(ks))
		for i, k := range ks {
			out[i] = "k=" + k
		}
		return out
	}()...)

	var tables []*Table
	for _, d := range designs {
		t := &Table{
			Title:  fmt.Sprintf("Wedge frontier (%s, picos-hw, nearest family, aligned layout): conflicts / stall cycles / speedup-vs-perfect per dependence fan", d),
			Header: header,
		}
		for _, f := range fields {
			row := []string{f}
			for _, k := range ks {
				c := find(d, f, k)
				switch {
				case c == nil:
					row = append(row, "-")
				case c.Wedged:
					row = append(row, fmt.Sprintf("WEDGE@%d", c.WedgedAt))
				default:
					row = append(row, fmt.Sprintf("%d / %.2g / %.2f",
						c.DMConflicts+c.VMStallEvents,
						float64(c.DMConflictStallCycles+c.VMStallCycles),
						c.SpeedupVsPerfect))
				}
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"aligned layout clusters every point buffer into one direct-hash set, so k (the read-window width) walks straight into the design's associativity; the first WEDGE column is the design's frontier")
		tables = append(tables, t)
	}
	return tables
}
