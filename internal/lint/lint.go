// Package lint is a stdlib-only static-analysis framework purpose-built
// for this repository: it loads every package of a module with go/parser
// and go/types (no go/packages, no x/tools), runs a fixed suite of
// analyzers over the type-checked syntax, and enforces the simulator's
// correctness invariants — determinism of everything under internal/,
// the dirty-horizon discipline of the incremental event scheduler, the
// zero-allocation contract of //picos:hotpath functions, full threading
// of every sim.Spec knob, and errors.Is discipline for sentinel errors —
// at build time instead of at test time.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis in
// miniature (Analyzer, Pass, positional diagnostics, a `// want`
// expectation harness) so the analyzers read familiarly, but depends on
// nothing outside the standard library: the module is loaded by walking
// the tree, parsing, topologically sorting by imports and type-checking
// with a source-based importer for the standard library.
//
// Findings are suppressed in place with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory — a bare ignore is itself a finding — and an ignore that
// matches no finding is reported as stale, so the suppression set can
// never silently outlive the code it excuses.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one loaded, type-checked package of a module.
type Package struct {
	// Path is the import path ("repro/internal/picos").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Name is the package name ("picos"); "main" for commands.
	Name string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info hold the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// IsCommand reports whether the package builds a binary.
func (p *Package) IsCommand() bool { return p.Name == "main" }

// Suite is a loaded module plus everything the analyzers accumulate
// while walking it: per-package type information, cross-package facts
// (keyed by analyzer) and the suppression table.
type Suite struct {
	// Fset is the file set every position in the suite resolves against.
	Fset *token.FileSet
	// ModulePath is the module path from go.mod ("repro").
	ModulePath string
	// Root is the absolute module root directory.
	Root string
	// Packages lists every loaded package in dependency (topological)
	// order, ties broken by import path, so an analyzer always sees a
	// package after all packages it imports.
	Packages []*Package

	// facts is scratch shared by one analyzer across packages (specknob
	// collects the Spec shape from internal/sim before it checks the
	// engine adapters).
	facts map[string]any

	suppressions []*suppression
	diags        []Diagnostic
}

// Fact returns the analyzer's cross-package scratch value, creating it
// with mk on first use.
func (s *Suite) Fact(analyzer string, mk func() any) any {
	if s.facts == nil {
		s.facts = map[string]any{}
	}
	v, ok := s.facts[analyzer]
	if !ok {
		v = mk()
		s.facts[analyzer] = v
	}
	return v
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	// File is the path relative to the module root where possible.
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name keys the analyzer in -run lists and //lint:ignore comments.
	Name string
	// Doc is the one-line description shown by the driver.
	Doc string
	// Applies gates which packages Run sees; nil means every package.
	Applies func(p *Package) bool
	// Run checks one package.
	Run func(pass *Pass)
	// Finish, if set, runs once after every package has been analyzed —
	// the hook for whole-module checks like specknob's CLI-coverage
	// accounting.
	Finish func(pass *Pass)
}

// Pass hands one analyzer its per-package (or, for Finish, per-suite)
// context and the reporting function.
type Pass struct {
	Suite    *Suite
	Analyzer *Analyzer
	// Pkg is the package under analysis; nil during Finish.
	Pkg *Package
}

// Reportf records a finding at pos unless a matching //lint:ignore
// suppression covers it.
func (pass *Pass) Reportf(pos token.Pos, format string, args ...any) {
	s := pass.Suite
	position := s.Fset.Position(pos)
	if s.suppressed(pass.Analyzer.Name, position) {
		return
	}
	s.diags = append(s.diags, Diagnostic{
		Analyzer: pass.Analyzer.Name,
		File:     s.relPath(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over every package of the suite, then the
// Finish hooks, then the suppression hygiene checks (bare ignores and
// ignores that matched nothing are findings of their own). It returns
// the findings sorted by file, line and analyzer.
func (s *Suite) Run(analyzers []*Analyzer) []Diagnostic {
	s.diags = nil
	for _, su := range s.suppressions {
		su.used = false
	}
	for _, a := range analyzers {
		for _, pkg := range s.Packages {
			if a.Applies != nil && !a.Applies(pkg) {
				continue
			}
			a.Run(&Pass{Suite: s, Analyzer: a, Pkg: pkg})
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(&Pass{Suite: s, Analyzer: a})
		}
	}
	s.checkSuppressions(analyzers)
	sort.Slice(s.diags, func(i, j int) bool {
		a, b := s.diags[i], s.diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return s.diags
}

// relPath strips the module root prefix for stable, portable output.
func (s *Suite) relPath(filename string) string {
	root := s.Root
	if root != "" && len(filename) > len(root)+1 && filename[:len(root)] == root {
		return filename[len(root)+1:]
	}
	return filename
}
