package hil

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/picos"
	"repro/internal/synth"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func mustRun(t *testing.T, tr *trace.Trace, cfg Config) *Result {
	t.Helper()
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", tr.Name, cfg.Mode, err)
	}
	return res
}

func verifyLegal(t *testing.T, tr *trace.Trace, res *Result) {
	t.Helper()
	g := taskgraph.Build(tr)
	if err := g.CheckSchedule(res.Start, res.Finish); err != nil {
		t.Fatalf("%s/%s: illegal schedule: %v", tr.Name, res.Mode, err)
	}
	if res.Stats.TasksCompleted != uint64(len(tr.Tasks)) {
		t.Fatalf("%s/%s: completed %d of %d", tr.Name, res.Mode, res.Stats.TasksCompleted, len(tr.Tasks))
	}
	if res.Stats.ProtocolErrors != 0 {
		t.Fatalf("%s/%s: %d protocol errors", tr.Name, res.Mode, res.Stats.ProtocolErrors)
	}
}

func TestAllModesLegalOnSynthetics(t *testing.T) {
	for n := 1; n <= 7; n++ {
		tr, err := synth.Case(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{HWOnly, HWComm, FullSystem} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			res := mustRun(t, tr, cfg)
			verifyLegal(t, tr, res)
		}
	}
}

func TestModesOrderedByOverhead(t *testing.T) {
	// For the same workload, makespan must rank HWOnly < HWComm <
	// FullSystem: each mode adds overhead on top of the previous one.
	tr, err := synth.Case(2)
	if err != nil {
		t.Fatal(err)
	}
	var spans [3]uint64
	for i, mode := range []Mode{HWOnly, HWComm, FullSystem} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		spans[i] = mustRun(t, tr, cfg).Makespan
	}
	if !(spans[0] < spans[1] && spans[1] < spans[2]) {
		t.Fatalf("makespans not ordered: HWOnly %d, HWComm %d, FullSystem %d", spans[0], spans[1], spans[2])
	}
}

func TestRealAppLegalAllModes(t *testing.T) {
	res, err := apps.Generate(apps.Cholesky, 2048, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{HWOnly, HWComm, FullSystem} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.Workers = 8
		r := mustRun(t, res.Trace, cfg)
		verifyLegal(t, res.Trace, r)
		if r.Speedup <= 1 {
			t.Fatalf("%s: speedup %.2f <= 1 on 8 workers for coarse blocks", mode, r.Speedup)
		}
	}
}

func TestHeatWavefrontSpeedup(t *testing.T) {
	// Heat at block 64 must scale well on 12 workers in HW-only mode
	// (Figure 8 shows ~5.9x for P+8way).
	res, err := apps.Generate(apps.Heat, 2048, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	r := mustRun(t, res.Trace, cfg)
	verifyLegal(t, res.Trace, r)
	if r.Speedup < 3 {
		t.Fatalf("heat-64 HW-only speedup %.2f, want > 3", r.Speedup)
	}
}

func TestWorkerScalingMonotonic(t *testing.T) {
	res, err := apps.Generate(apps.Cholesky, 2048, 128)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, w := range []int{2, 4, 8} {
		cfg := DefaultConfig()
		cfg.Workers = w
		r := mustRun(t, res.Trace, cfg)
		if r.Speedup < prev*0.95 {
			t.Fatalf("speedup dropped from %.2f to %.2f going to %d workers", prev, r.Speedup, w)
		}
		prev = r.Speedup
	}
}

func TestConfigErrors(t *testing.T) {
	tr, _ := synth.Case(1)
	if _, err := Run(tr, Config{Workers: 0, Picos: picos.DefaultConfig()}); err == nil {
		t.Fatal("accepted 0 workers")
	}
	bad := DefaultConfig()
	bad.Mode = Mode(99)
	if _, err := Run(tr, bad); err == nil {
		t.Fatal("accepted unknown mode")
	}
}

func TestFirstStartAndThroughputProbes(t *testing.T) {
	tr, _ := synth.Case(1)
	cfg := DefaultConfig()
	r := mustRun(t, tr, cfg)
	if r.FirstStart == 0 {
		t.Fatal("FirstStart = 0: latency probe broken")
	}
	if r.ThrTask <= 0 {
		t.Fatal("ThrTask probe broken")
	}
	// HW-only first-task latency for a no-dep task is tens of cycles.
	if r.FirstStart > 120 {
		t.Fatalf("HW-only L1st = %d, want well under 120", r.FirstStart)
	}
	// HW+comm adds roughly a millisecond-scale link cost (Table IV ~1172).
	cfg.Mode = HWComm
	rc := mustRun(t, tr, cfg)
	if rc.FirstStart < r.FirstStart+500 {
		t.Fatalf("HW+comm L1st = %d, want >> HW-only %d", rc.FirstStart, r.FirstStart)
	}
}

func TestLIFOFixesLuCornerCase(t *testing.T) {
	// Figure 9 right: with the original Lu creation order, a LIFO TS must
	// not be slower than FIFO (it schedules the critical-path update
	// first); typically it is measurably faster at fine granularity.
	res, err := apps.Generate(apps.Lu, 2048, 64)
	if err != nil {
		t.Fatal(err)
	}
	fifo := DefaultConfig()
	lifo := DefaultConfig()
	lifo.Picos.Policy = picos.SchedLIFO
	rf := mustRun(t, res.Trace, fifo)
	rl := mustRun(t, res.Trace, lifo)
	verifyLegal(t, res.Trace, rl)
	if rl.Speedup < rf.Speedup*0.98 {
		t.Fatalf("LIFO speedup %.3f worse than FIFO %.3f", rl.Speedup, rf.Speedup)
	}
}
