package hil

import (
	"repro/internal/faults"
	"repro/internal/picos"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Engine adapts the HIL platform to the sim registry; one instance per
// integration mode (picos-hw, picos-comm, picos-full).
type Engine struct {
	Mode Mode
}

// Name returns the registry name of the mode.
func (e Engine) Name() string {
	switch e.Mode {
	case HWComm:
		return "picos-comm"
	case FullSystem:
		return "picos-full"
	default:
		return "picos-hw"
	}
}

// Run executes the trace on the platform under the spec's knobs.
func (e Engine) Run(tr *trace.Trace, spec sim.Spec) (*sim.Result, error) {
	cfg, err := e.config(spec)
	if err != nil {
		return nil, err
	}
	res, err := Run(tr, cfg)
	if err != nil {
		return nil, err
	}
	return toSimResult(res), nil
}

// RunStream executes a streaming task source on the platform under the
// spec's bounded descriptor window (sim.StreamEngine). The mapped
// Result carries aggregate probes only — Start/Finish/Order stay nil.
func (e Engine) RunStream(src trace.Source, spec sim.Spec) (*sim.Result, error) {
	cfg, err := e.config(spec)
	if err != nil {
		return nil, err
	}
	cfg.Window = spec.Window
	res, err := RunStream(src, cfg)
	if err != nil {
		return nil, err
	}
	return toSimResult(res), nil
}

// toSimResult maps a platform Result onto the engine-neutral sim one.
func toSimResult(res *Result) *sim.Result {
	stats := res.Stats
	return &sim.Result{
		Workers:    res.Workers,
		Makespan:   res.Makespan,
		Baseline:   res.Baseline,
		Speedup:    res.Speedup,
		FirstStart: res.FirstStart,
		ThrTask:    res.ThrTask,
		Stats:      &stats,
		Start:      res.Start,
		Finish:     res.Finish,
		Order:      res.Order,
		Wedged:     res.Wedged,
		WedgedAt:   res.WedgedAt,
		TimedOut:   res.TimedOut,

		Faulted:        res.Faulted,
		LostTasks:      res.LostTasks,
		RecoveredTasks: res.RecoveredTasks,
		RefusedTasks:   res.RefusedTasks,
		RefusedIDs:     res.RefusedIDs,
	}
}

// config translates the declarative spec into the platform config.
func (e Engine) config(spec sim.Spec) (Config, error) {
	cfg := DefaultConfig()
	cfg.Mode = e.Mode
	cfg.Workers = spec.Workers
	cfg.Watchdog = spec.Watchdog
	cfg.FastForward = spec.FastPath()
	plan, err := spec.SchedPlan()
	if err != nil {
		return cfg, err
	}
	cfg.Classes = plan.Classes
	cfg.Sched = plan.Policy
	cfg.Steal = plan.Steal
	if len(cfg.Classes) > 0 {
		cfg.Workers = 0 // the class list fixes the worker count
	}
	if cfg.Picos.Design, err = picos.ParseDesign(spec.Design); err != nil {
		return cfg, err
	}
	if cfg.Picos.Policy, err = picos.ParsePolicy(spec.Policy); err != nil {
		return cfg, err
	}
	if cfg.Picos.Admission, err = picos.ParseAdmission(spec.Admission); err != nil {
		return cfg, err
	}
	if cfg.Picos.Wake, err = picos.ParseWake(spec.Wake); err != nil {
		return cfg, err
	}
	if cfg.Picos.Conflict, err = picos.ParseConflict(spec.Conflict); err != nil {
		return cfg, err
	}
	cfg.Picos.NewQDepth = spec.NewQDepth
	if spec.RunAhead != 0 {
		cfg.RunAhead = spec.RunAhead
	}
	if spec.NumTRS > 0 {
		cfg.Picos.NumTRS = spec.NumTRS
	}
	if spec.NumDCT > 0 {
		cfg.Picos.NumDCT = spec.NumDCT
	}
	if cfg.Picos.ShardHash, err = picos.ParseShardHash(spec.ShardHash); err != nil {
		return cfg, err
	}
	if spec.ShardHop > 0 {
		cfg.Picos.Timing.ShardHop = uint64(spec.ShardHop)
	} else if spec.ShardHop < 0 {
		cfg.Picos.Timing.ShardHop = 0
	}
	if cfg.Faults, err = faults.ParsePlan(spec.Faults); err != nil {
		return cfg, err
	}
	if cfg.Recovery, err = faults.ParseRecovery(spec.Recovery); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func init() {
	sim.Register(Engine{Mode: HWOnly})
	sim.Register(Engine{Mode: HWComm})
	sim.Register(Engine{Mode: FullSystem})
}
