package patterns

import (
	"os"
	"path/filepath"
	"testing"
)

const testDOT = `digraph deps {
    // a diamond with a tail
    lu0 [dur=5000];
    fwd; bdiv [dur=40];
    "bmod.0" [dur=70];
    lu0 -> fwd;
    lu0 -> bdiv;
    fwd -> "bmod.0"; bdiv -> "bmod.0" # same-line comment
    "bmod.0" -> lu1
    lu1 [dur=5000]
}`

func TestParseDAGDot(t *testing.T) {
	tr, err := ParseDAG([]byte(testDOT))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 5 {
		t.Fatalf("%d tasks, want 5", len(tr.Tasks))
	}
	if tr.Tasks[0].Duration != 5000 || tr.Tasks[2].Duration != 40 {
		t.Errorf("durations not carried: %d, %d", tr.Tasks[0].Duration, tr.Tasks[2].Duration)
	}
	if tr.Tasks[1].Duration != DefaultLen {
		t.Errorf("default duration %d, want %d", tr.Tasks[1].Duration, DefaultLen)
	}
	// The diamond joint reads both parents: 1 owner + 2 reads.
	if n := len(tr.Tasks[3].Deps); n != 3 {
		t.Errorf("join node has %d deps, want 3", n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseDAGJSON(t *testing.T) {
	src := `[
	  {"name": "a", "dur": 100},
	  {"name": "c", "after": ["a", "b"]},
	  {"name": "b", "after": ["a"], "dur": 10}
	]`
	tr, err := ParseDAG([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 3 {
		t.Fatalf("%d tasks, want 3", len(tr.Tasks))
	}
	// c is declared before b but depends on it: the topological order
	// must emit a, b, c — c's task carries both read dependences.
	last := tr.Tasks[2]
	if len(last.Deps) != 3 {
		t.Errorf("last task has %d deps, want 3 (c with owner + 2 reads)", len(last.Deps))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseDAGRejects(t *testing.T) {
	for name, src := range map[string]string{
		"cycle":         `digraph g { a -> b; b -> a }`,
		"self":          `digraph g { a -> a }`,
		"empty":         `digraph g { }`,
		"no-braces":     `digraph g`,
		"bad-name":      `digraph g { a@! -> b }`,
		"bad-dur":       `digraph g { a [dur=banana] }`,
		"json-dup":      `[{"name":"a"},{"name":"a"}]`,
		"json-unknown":  `[{"name":"a","after":["zzz"]}]`,
		"json-noname":   `[{"dur":5}]`,
		"json-garbage":  `{"tasks": 12}`,
		"plain-garbage": `hello world`,
	} {
		if _, err := ParseDAG([]byte(src)); err == nil {
			t.Errorf("%s: ParseDAG accepted %q", name, src)
		}
	}
	// In-degree beyond the hardware's per-task limit is an error, not a
	// silent truncation.
	wide := `digraph g { `
	for i := 0; i < 15; i++ {
		wide += string(rune('a'+i)) + " -> z; "
	}
	wide += `}`
	if _, err := ParseDAG([]byte(wide)); err == nil {
		t.Error("15-predecessor node accepted; trace.MaxDeps allows only 14 reads")
	}
}

// TestDagfileWorkload: the family plumbs through Parse/Build with a
// path parameter, producing a validated replayable trace.
func TestDagfileWorkload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.dot")
	if err := os.WriteFile(path, []byte(testDOT), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Parse("dagfile?path=" + path)
	if err != nil {
		t.Fatal(err)
	}
	if q, err := Parse(p.Spec()); err != nil || p != q {
		t.Fatalf("dagfile round trip: %+v != %+v (%v)", p, q, err)
	}
	tr, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 5 {
		t.Errorf("%d tasks, want 5", len(tr.Tasks))
	}
	if _, err := Parse("dagfile"); err == nil {
		t.Error("dagfile without a path accepted")
	}
	if _, err := Parse("stencil_1d?path=x"); err == nil {
		t.Error("grid family accepted a path")
	}
	if _, err := Build(Params{Family: "dagfile", Path: filepath.Join(t.TempDir(), "missing.dot")}); err == nil {
		t.Error("missing file accepted")
	}
}

// TestParseDAGParallelEdges: duplicate edges collapse into a single
// dependence (the hardware rejects duplicate addresses per task).
func TestParseDAGParallelEdges(t *testing.T) {
	tr, err := ParseDAG([]byte(`digraph g { a -> b; a -> b; }`))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(tr.Tasks[1].Deps); n != 2 {
		t.Errorf("parallel edges: %d deps, want 2", n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestParseDAGReviewHardenings locks the parser's input hardening: the
// 40-bit duration cap on the JSON path, the rejection of dur on edge
// statements, and dagfile's rejection of inert grid parameters.
func TestParseDAGReviewHardenings(t *testing.T) {
	if _, err := ParseDAG([]byte(`[{"name":"a","dur":18446744073709551615}]`)); err == nil {
		t.Error("JSON dur beyond 2^40 accepted; cycle arithmetic would wrap")
	}
	if _, err := ParseDAG([]byte(`digraph g { a -> b [dur=100]; }`)); err == nil {
		t.Error("dur on an edge statement accepted; it would corrupt the source node's duration")
	}
	if _, err := Parse("dagfile?path=g.dot&len=500"); err == nil {
		t.Error("dagfile accepted an inert grid parameter")
	}
}
