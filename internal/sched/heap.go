package sched

// Small hand-rolled min-heaps for worker bookkeeping, factored out of
// the HIL runner so every engine shares one implementation.
// container/heap would box every element through an interface; these
// keep dispatch and retirement allocation-free on warm runs.

// IdleHeap is a min-heap of worker indices: the idle-worker freelist,
// popping the lowest index first to match the reference loop's linear
// dispatch scan.
type IdleHeap []int

// Push adds a worker index.
func (h *IdleHeap) Push(v int) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// Pop removes and returns the lowest worker index.
func (h *IdleHeap) Pop() int {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && s[right] < s[left] {
			least = right
		}
		if s[i] <= s[least] {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// Remove deletes worker index v from the heap, reporting whether it
// was present. O(n) scan plus sift-down — acceptable because only the
// fault layer's fail-stop path calls it, never normal dispatch.
func (h *IdleHeap) Remove(v int) bool {
	s := *h
	for i, w := range s {
		if w != v {
			continue
		}
		n := len(s) - 1
		s[i] = s[n]
		*h = s[:n]
		s = s[:n]
		if i == n {
			return true
		}
		// Restore the heap property around i (the moved element may
		// need to go either way; a full sift-down from i suffices after
		// bubbling up once if it is smaller than its parent).
		for i > 0 {
			parent := (i - 1) / 2
			if s[parent] <= s[i] {
				break
			}
			s[i], s[parent] = s[parent], s[i]
			i = parent
		}
		for {
			left := 2*i + 1
			if left >= n {
				break
			}
			least := left
			if right := left + 1; right < n && s[right] < s[left] {
				least = right
			}
			if s[i] <= s[least] {
				break
			}
			s[i], s[least] = s[least], s[i]
			i = least
		}
		return true
	}
	return false
}

// Due is one busy worker: the cycle its task completes and its index.
type Due struct {
	Until uint64
	Idx   int
}

func (a Due) less(b Due) bool {
	if a.Until != b.Until {
		return a.Until < b.Until
	}
	return a.Idx < b.Idx
}

// RemoveIdx deletes the entry for worker index idx from the heap,
// returning it. Like IdleHeap.Remove this is an O(n) fault-path-only
// operation: fail-stopping a busy worker must pull its completion
// event so the dead worker never retires.
func (h *DueHeap) RemoveIdx(idx int) (Due, bool) {
	s := *h
	for i := range s {
		if s[i].Idx != idx {
			continue
		}
		out := s[i]
		n := len(s) - 1
		s[i] = s[n]
		*h = s[:n]
		s = s[:n]
		if i == n {
			return out, true
		}
		for i > 0 {
			parent := (i - 1) / 2
			if !s[i].less(s[parent]) {
				break
			}
			s[i], s[parent] = s[parent], s[i]
			i = parent
		}
		for {
			left := 2*i + 1
			if left >= n {
				break
			}
			least := left
			if right := left + 1; right < n && s[right].less(s[left]) {
				least = right
			}
			if !s[least].less(s[i]) {
				break
			}
			s[i], s[least] = s[least], s[i]
			i = least
		}
		return out, true
	}
	return Due{}, false
}

// DueHeap is a min-heap of busy workers ordered by (Until, Idx): the
// completion order per-cycle stepping produces (earlier finish cycles
// first, worker-index order within a cycle). With heterogeneous
// classes, Until already carries the class-scaled duration, so every
// fast-forward horizon derived from the heap head stays exact.
type DueHeap []Due

// Push adds a busy worker.
func (h *DueHeap) Push(v Due) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].less(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// Pop removes and returns the earliest-due worker.
func (h *DueHeap) Pop() Due {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && s[right].less(s[left]) {
			least = right
		}
		if !s[least].less(s[i]) {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}
