package pearson

import (
	"testing"
	"testing/quick"
)

func TestTableIsPermutation(t *testing.T) {
	seen := [256]bool{}
	for b := 0; b < 256; b++ {
		h := Byte(uint8(b))
		if seen[h] {
			t.Fatalf("value %d produced twice", h)
		}
		seen[h] = true
	}
}

func TestHashDeterministic(t *testing.T) {
	a := Hash([]byte("picos"))
	b := Hash([]byte("picos"))
	if a != b {
		t.Fatalf("hash not deterministic: %d != %d", a, b)
	}
	if Hash([]byte("picos")) == Hash([]byte("picoz")) {
		// Not a guarantee of Pearson in general, but true for this pair
		// with this table; acts as a regression canary for the table.
		t.Log("warning: adjacent strings collide")
	}
}

func TestHashEmpty(t *testing.T) {
	if Hash(nil) != 0 {
		t.Fatalf("empty hash = %d, want 0", Hash(nil))
	}
}

func TestIndex64Range(t *testing.T) {
	f := func(addr uint64) bool {
		i := Index64(addr)
		return i >= 0 && i < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestIndex64SpreadsAlignedAddresses verifies the core motivation for the
// P+8way design: block-aligned addresses (low bits all zero) land in a
// single set under the direct addr[5:0] index, but Pearson folding spreads
// them over many sets.
func TestIndex64SpreadsAlignedAddresses(t *testing.T) {
	const blocks = 256
	const stride = 128 * 128 * 8 // a 128x128 block of float64, paper-style
	sets := map[int]int{}
	direct := map[int]int{}
	for i := 0; i < blocks; i++ {
		addr := uint64(0x10000000) + uint64(i)*stride
		sets[Index64(addr)]++
		direct[int(addr&0x3F)]++
	}
	if len(direct) != 1 {
		t.Fatalf("direct index should cluster aligned addresses into 1 set, got %d", len(direct))
	}
	if len(sets) < 32 {
		t.Fatalf("Pearson index spread aligned addresses over only %d/64 sets", len(sets))
	}
	// No set should hold a wildly disproportionate share.
	for s, n := range sets {
		if n > blocks/4 {
			t.Fatalf("set %d holds %d of %d addresses; hash is too skewed", s, n, blocks)
		}
	}
}

func TestFold32MatchesManual(t *testing.T) {
	x := uint32(0xA1B2C3D4)
	want := Byte(0xD4) ^ Byte(0xC3) ^ Byte(0xB2) ^ Byte(0xA1)
	if got := Fold32(x); got != want {
		t.Fatalf("Fold32 = %d, want %d", got, want)
	}
}
