package hil

import (
	"testing"

	"repro/internal/patterns"
	"repro/internal/picos"
	"repro/internal/trace"
)

// runAheadTrace is a small but saturating workload: short tasks whose
// chains keep the accelerator busy while submissions back up behind a
// tiny submission buffer.
func runAheadTrace() *trace.Trace {
	return patterns.MustBuild(patterns.Params{
		Family: "stencil_1d", Width: 8, Steps: 6,
		Len: 50, K: patterns.DefaultK, Seed: 1,
		Layout: "malloc", Fields: 2, Height: 1, Regions: 1,
	})
}

// TestBoundedNewQNeverLosesTasks is the regression test for the
// once-ignored Submit error on the busNew delivery path: with the
// submission buffer bounded to a single entry, every mode must park and
// retry rejected registrations until the accelerator accepts them — all
// tasks complete, none are dropped, and the run does not wedge.
func TestBoundedNewQNeverLosesTasks(t *testing.T) {
	tr := runAheadTrace()
	n := uint64(len(tr.Tasks))
	for _, mode := range []Mode{HWOnly, HWComm, FullSystem} {
		for _, ff := range []bool{true, false} {
			// numDCT 1 is the calibrated machine; 4 adds the sharded
			// fabric, whose per-shard admission credits must not strand a
			// parked-and-retrying submission either.
			for _, numDCT := range []int{1, 4} {
				cfg := DefaultConfig()
				cfg.Mode = mode
				cfg.FastForward = ff
				cfg.RunAhead = 2
				cfg.Picos.NewQDepth = 1
				cfg.Picos.NumDCT = numDCT
				res, err := Run(tr, cfg)
				if err != nil {
					t.Fatalf("%s ff=%v dct=%d: %v", mode, ff, numDCT, err)
				}
				if res.Wedged {
					t.Fatalf("%s ff=%v dct=%d: wedged at %d with a retrying submitter", mode, ff, numDCT, res.WedgedAt)
				}
				if res.Stats.TasksSubmitted != n || res.Stats.TasksCompleted != n {
					t.Fatalf("%s ff=%v dct=%d: %d submitted / %d completed, want %d — a rejected registration was dropped",
						mode, ff, numDCT, res.Stats.TasksSubmitted, res.Stats.TasksCompleted, n)
				}
				if len(res.Order) != int(n) {
					t.Fatalf("%s ff=%v dct=%d: only %d tasks ran", mode, ff, numDCT, len(res.Order))
				}
			}
		}
	}
}

// TestRunAheadWindowBounds: with a bounded submission buffer, the
// Full-system master may never hold more created-but-unsubmitted
// descriptors than its run-ahead window. The trace outgrows the 256 TM
// slots, so admission stalls, the one-slot buffer stays full and
// descriptors pile into the window. The window is observable from the
// outside as submitted-so-far lagging created-so-far; here we assert
// the stronger internal invariant through a manual runner.
func TestRunAheadWindowBounds(t *testing.T) {
	// 640 tasks outgrow the 256 TM slots, and at 100k cycles each the
	// completion (= admission) rate stays far below the master's ~3.1k
	// cycles per creation, so descriptors pile up behind the one-slot
	// buffer until the window binds.
	tr := patterns.MustBuild(patterns.Params{
		Family: "no_comm", Width: 320, Steps: 2,
		Len: 100_000, K: patterns.DefaultK, Seed: 1,
		Layout: "malloc", Fields: 2, Height: 1, Regions: 1,
	})
	var r runner
	cfg := DefaultConfig()
	cfg.Mode = FullSystem
	cfg.FastForward = false
	cfg.RunAhead = 3
	cfg.Picos.NewQDepth = 1
	if err := r.reset(tr, cfg); err != nil {
		t.Fatal(err)
	}
	maxAhead := 0
	for i := 0; i < 5_000_000 && r.done < len(tr.Tasks); i++ {
		now := r.p.Now()
		r.stepWorkers(now)
		r.stepDeliveries(now)
		r.stepSubmits(now)
		r.stepMaster(now)
		r.stepBus(now)
		r.dispatch(now)
		if r.createdAhead > maxAhead {
			maxAhead = r.createdAhead
		}
		if maxAhead > 3 {
			t.Fatalf("created-but-unsubmitted window reached %d at cycle %d, bound is 3", maxAhead, now)
		}
		if maxAhead == 3 && i > 1_500_000 {
			break // bound proven held across a long saturated stretch
		}
		r.p.Step()
	}
	if maxAhead < 3 {
		t.Fatalf("window never filled (max %d): the workload does not exercise run-ahead", maxAhead)
	}
}

// TestUnboundedQueueKeepsLegacyBehavior: with the default unbounded
// submission buffer, the default run-ahead window (16 descriptors) never
// binds — the link drains created descriptors far faster than the
// master creates them — so results are identical to an infinite window,
// the calibrated Table IV behavior. (A window of 1 WOULD bind even
// here: the master then waits out each submission's link occupancy and
// flight before creating again.)
func TestUnboundedQueueKeepsLegacyBehavior(t *testing.T) {
	tr := runAheadTrace()
	base := DefaultConfig()
	base.Mode = FullSystem
	bounded := base
	bounded.RunAhead = DefaultRunAhead
	unbounded := base
	unbounded.RunAhead = -1
	a, err := Run(tr, bounded)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, unbounded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Stats != b.Stats {
		t.Fatalf("run-ahead window changed an unbounded-queue run: makespan %d vs %d", a.Makespan, b.Makespan)
	}
	_ = picos.ErrNewQFull // the knob this suite exists for
}
