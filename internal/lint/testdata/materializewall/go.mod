module mwcheck

go 1.21
