// Package picos is a miniature of the real accelerator package: units
// with horizon ids, registered FIFOs and busy timers, for exercising
// the dirtyhorizon analyzer.
package picos

type fifo struct{ items []int }

func (f *fifo) push(v int) { f.items = append(f.items, v) }
func (f *fifo) pop() int {
	v := f.items[0]
	f.items = f.items[1:]
	return v
}

// unit is a horizon-managed unit: it has an hid slot in the heap.
type unit struct {
	hid       int32
	inQ       fifo
	busyUntil uint64
	p         *core
}

// helper is NOT a unit — no hid field — so its mutations are invisible
// to the horizon and must not be flagged.
type helper struct {
	inQ     fifo
	pending uint64
}

type core struct {
	u     *unit
	h     *helper
	hkeys []uint64
}

func (p *core) markDirty(id int32) { p.hkeys[id] = 0 }

// goodStep mutates the unit and marks it dirty: clean.
func (p *core) goodStep(now uint64) {
	p.u.inQ.push(int(now))
	p.u.busyUntil = now + 3
	p.markDirty(p.u.hid)
}

// badStep mutates the unit without marking it dirty: both the FIFO push
// and the busy-timer write are findings.
func (p *core) badStep(now uint64) {
	p.u.inQ.push(int(now))  // want `badStep calls p\.u\.inQ\.push without marking the unit dirty`
	p.u.busyUntil = now + 3 // want `badStep assigns p\.u\.busyUntil without marking the unit dirty`
}

// helperStep mutates the non-unit helper: clean (no hid, no horizon).
func (p *core) helperStep(now uint64) {
	p.h.inQ.push(int(now))
	p.h.pending = now
}

// consume is the helper idiom: the mutation and the markDirty live
// together in a sibling method.
func (u *unit) consume(now uint64) {
	u.busyUntil = now + 5
	u.p.markDirty(u.hid)
}

// step is clean transitively: it mutates u but calls consume, which
// marks the same receiver dirty.
func (u *unit) step(now uint64) {
	u.inQ.push(int(now))
	u.consume(now)
}

// reset mutates without marking: exempt by name (always followed by
// rebuildHorizon in the real machine).
func (u *unit) reset() {
	u.busyUntil = 0
	u.inQ.items = u.inQ.items[:0]
}

// parkRetry carries a justified suppression.
func (u *unit) parkRetry(now uint64) {
	//lint:ignore dirtyhorizon the caller re-polls this unit unconditionally every evaluated cycle
	u.busyUntil = now + 1
}
