package model

// Malformed holds grammar-violating ignore directives. Their findings
// are asserted programmatically in lint_test.go (a // want comment here
// would be absorbed into the directive text itself, since a line
// comment runs to end of line).
func Malformed() int {
	//lint:ignore
	x := 1
	//lint:ignore determinism
	x++
	return x
}
