package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format (little-endian):
//
//	magic   [4]byte  "PTR1" | "PTR2"
//	nameLen uint16   + name bytes
//	serial  uint64
//	refseq  uint64
//	PTR2 only:
//	  nKinds uint16
//	  per kind: len uint16 + name bytes
//	nTasks  uint32
//	per task:
//	  id       uint32
//	  duration uint64
//	  create   uint64
//	  kind     uint16  (PTR2 only; 1-based index into the kind table)
//	  nDeps    uint8
//	  per dep: addr uint64, dir uint8
//
// The format is deliberately simple: the paper's traces carry exactly the
// same fields (task identification, dependence address and direction,
// task creation latency and execution time in cycles). PTR2 adds the
// kernel-family kind table used by heterogeneous worker classes; traces
// without kinds still serialize as byte-identical PTR1.

var (
	magic   = [4]byte{'P', 'T', 'R', '1'}
	magicV2 = [4]byte{'P', 'T', 'R', '2'}
)

// WriteTo serializes the trace. It returns the number of bytes written.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	v2 := len(t.Kinds) > 0
	m := magic
	if v2 {
		m = magicV2
	}
	if err := write(m); err != nil {
		return n, err
	}
	name := []byte(t.Name)
	if len(name) > 0xFFFF {
		return n, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	if err := write(uint16(len(name))); err != nil {
		return n, err
	}
	if len(name) > 0 {
		if _, err := bw.Write(name); err != nil {
			return n, err
		}
		n += int64(len(name))
	}
	if err := write(t.SerialCycles); err != nil {
		return n, err
	}
	if err := write(t.RefSeqCycles); err != nil {
		return n, err
	}
	if v2 {
		if len(t.Kinds) > 0xFFFF {
			return n, fmt.Errorf("trace: %d kinds (>65535)", len(t.Kinds))
		}
		if err := write(uint16(len(t.Kinds))); err != nil {
			return n, err
		}
		for _, k := range t.Kinds {
			kb := []byte(k)
			if len(kb) > 0xFFFF {
				return n, fmt.Errorf("trace: kind name too long (%d bytes)", len(kb))
			}
			if err := write(uint16(len(kb))); err != nil {
				return n, err
			}
			if _, err := bw.Write(kb); err != nil {
				return n, err
			}
			n += int64(len(kb))
		}
	}
	if err := write(uint32(len(t.Tasks))); err != nil {
		return n, err
	}
	for i := range t.Tasks {
		task := &t.Tasks[i]
		if len(task.Deps) > 255 {
			return n, fmt.Errorf("trace: task %d has %d deps (>255)", i, len(task.Deps))
		}
		if err := write(task.ID); err != nil {
			return n, err
		}
		if err := write(task.Duration); err != nil {
			return n, err
		}
		if err := write(task.CreateCost); err != nil {
			return n, err
		}
		if v2 {
			if err := write(task.Kind); err != nil {
				return n, err
			}
		}
		if err := write(uint8(len(task.Deps))); err != nil {
			return n, err
		}
		for _, d := range task.Deps {
			if err := write(d.Addr); err != nil {
				return n, err
			}
			if err := write(uint8(d.Dir)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Read deserializes a trace previously written with WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic && m != magicV2 {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	v2 := m == magicV2
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	t := &Trace{Name: string(name)}
	if err := binary.Read(br, binary.LittleEndian, &t.SerialCycles); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &t.RefSeqCycles); err != nil {
		return nil, err
	}
	if v2 {
		var nKinds uint16
		if err := binary.Read(br, binary.LittleEndian, &nKinds); err != nil {
			return nil, err
		}
		t.Kinds = make([]string, nKinds)
		for i := range t.Kinds {
			var kl uint16
			if err := binary.Read(br, binary.LittleEndian, &kl); err != nil {
				return nil, err
			}
			kb := make([]byte, kl)
			if _, err := io.ReadFull(br, kb); err != nil {
				return nil, err
			}
			t.Kinds[i] = string(kb)
		}
	}
	var nTasks uint32
	if err := binary.Read(br, binary.LittleEndian, &nTasks); err != nil {
		return nil, err
	}
	const maxTasks = 1 << 28 // sanity bound against corrupt input
	if nTasks > maxTasks {
		return nil, fmt.Errorf("trace: implausible task count %d", nTasks)
	}
	// Grow incrementally instead of trusting the header's count: a
	// corrupt (or adversarial) header can claim 2^28 tasks in a
	// 13-byte input, and preallocating that is a multi-GB allocation
	// before the first read fails. Each task costs at least 21 encoded
	// bytes, so memory stays proportional to the actual input.
	t.Tasks = make([]Task, 0, min(nTasks, 4096))
	for i := 0; i < int(nTasks); i++ {
		t.Tasks = append(t.Tasks, Task{})
		task := &t.Tasks[i]
		if err := binary.Read(br, binary.LittleEndian, &task.ID); err != nil {
			return nil, fmt.Errorf("trace: task %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &task.Duration); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &task.CreateCost); err != nil {
			return nil, err
		}
		if v2 {
			if err := binary.Read(br, binary.LittleEndian, &task.Kind); err != nil {
				return nil, err
			}
			if int(task.Kind) > len(t.Kinds) {
				return nil, fmt.Errorf("trace: task %d: kind %d exceeds kind table (%d entries)",
					i, task.Kind, len(t.Kinds))
			}
		}
		var nDeps uint8
		if err := binary.Read(br, binary.LittleEndian, &nDeps); err != nil {
			return nil, err
		}
		if nDeps > 0 {
			task.Deps = make([]Dep, nDeps)
			for j := range task.Deps {
				if err := binary.Read(br, binary.LittleEndian, &task.Deps[j].Addr); err != nil {
					return nil, err
				}
				var dir uint8
				if err := binary.Read(br, binary.LittleEndian, &dir); err != nil {
					return nil, err
				}
				if dir > uint8(InOut) {
					return nil, fmt.Errorf("trace: task %d dep %d: bad direction %d", i, j, dir)
				}
				task.Deps[j].Dir = Direction(dir)
			}
		}
	}
	return t, nil
}
