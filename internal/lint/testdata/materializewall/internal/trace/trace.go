// Package trace mirrors the simulator's streaming-source contract: a
// Source hands out tasks one at a time, and Materialize folds a whole
// source back into a memory-resident Trace — the defining package is
// itself a sanctioned site.
package trace

// Task is one task descriptor.
type Task struct {
	ID uint32
}

// Trace is a fully materialized task graph.
type Trace struct {
	Tasks []Task
}

// Source streams task descriptors in creation order.
type Source interface {
	Next() (Task, bool)
}

// Materialize drains a source into a whole-graph Trace.
func Materialize(src Source) (*Trace, error) {
	tr := &Trace{}
	for {
		t, ok := src.Next()
		if !ok {
			return tr, nil
		}
		tr.Tasks = append(tr.Tasks, t)
	}
}
