package picos

// Timing holds the per-operation cycle costs of the model. Each unit has
// an occupancy cost (how long the unit is busy with one operation, which
// sets throughput) and, for the task/dependence pipelines, a latency-only
// "pipe" extension (extra stages a packet traverses without blocking the
// next operation). The defaults are calibrated so the synthetic
// benchmarks reproduce Table IV of the paper: first-task latencies of
// 45/73/312 cycles for Case1/2/3 and steady-state throughputs of
// 15/24/~243 cycles per task, with per-dependence throughput of 16-24
// cycles.
type Timing struct {
	// Gateway. The new-task and finished-task paths are independent
	// engines (separate datapaths in the prototype), so draining
	// finished tasks does not steal new-task throughput.
	GWNewTask uint64 // occupancy per new task fetched and dispatched
	GWPerDep  uint64 // occupancy per dependence forwarded to a DCT
	GWFinTask uint64 // occupancy per finished task forwarded to a TRS
	GWPipe    uint64 // extra latency through the GW new-task pipeline
	GWFinPipe uint64 // extra latency through the GW finished-task path

	// Task Reservation Station.
	TRSNewTask   uint64 // occupancy to write a new task into TM0
	TRSStatus    uint64 // occupancy per dependence status (ready/dependent)
	TRSWake      uint64 // occupancy per wake message (chain propagation)
	TRSFinBase   uint64 // occupancy to start a finish walk (TM0 read)
	TRSFinPerDep uint64 // occupancy per finish packet sent during the walk
	TRSPipe      uint64 // extra latency for packets leaving the TRS

	// Dependence Chain Tracker. Registration (DM compare + VM update)
	// and release (VM read, chain advance) run on independent engines:
	// releases are short read-modify-writes that the prototype overlaps
	// with the registration pipeline.
	DCTNewDep uint64 // occupancy per new dependence (DM compare + VM update)
	DCTFinDep uint64 // occupancy per release (VM read/update, chain advance)
	DCTPipe   uint64 // extra latency for packets leaving the DCT

	// Arbiter.
	ArbHop       uint64 // latency added per routed message
	ArbBandwidth int    // messages routed per cycle
	// ShardHop is the extra latency per shard crossed by inter-shard
	// dependence traffic when the DCT is sharded (NumDCT > 1): the
	// shards hang off the arbiter port in a chain, so a message to or
	// from shard k pays k extra register stages each way. Shard 0 — and
	// therefore every single-DCT configuration — pays nothing.
	ShardHop uint64

	// Task Scheduler.
	TSDispatch uint64 // occupancy per ready task queued/dispatched
	TSPipe     uint64 // extra latency until a ready task is visible
}

// DefaultTiming returns the calibrated Table IV timing.
func DefaultTiming() Timing {
	return Timing{
		GWNewTask: 15,
		GWPerDep:  8,
		GWFinTask: 3,
		GWPipe:    8,
		GWFinPipe: 1,

		TRSNewTask:   10,
		TRSStatus:    3,
		TRSWake:      3,
		TRSFinBase:   4,
		TRSFinPerDep: 2,
		TRSPipe:      1,

		DCTNewDep: 16,
		DCTFinDep: 4,
		DCTPipe:   1,

		ArbHop:       1,
		ArbBandwidth: 2,
		ShardHop:     1,

		TSDispatch: 4,
		TSPipe:     1,
	}
}
