// Command picos-bench regenerates the paper's tables and figures.
// Experiments are registry entries in internal/experiments; their
// simulation matrices run through the sim engine registry on a
// parallel worker pool.
//
// Usage:
//
//	picos-bench -exp table4            # one experiment
//	picos-bench -exp all               # everything (long: full Figure 11)
//	picos-bench -exp fig8 -quick       # reduced sweep for smoke runs
//	picos-bench -list                  # list experiment names
//	picos-bench -quick -json           # time every experiment with the
//	                                   # fast path on and off, emit JSON
//	                                   # (the BENCH_fastpath.json format)
//	picos-bench -compare old.json new.json
//	                                   # diff two bench JSON files, exit
//	                                   # non-zero on >10% regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

// benchEntry is one line of the -json output: wall-clock ns for one
// experiment under the event-driven fast path and under the per-cycle
// reference loop, their ratio, and the heap allocations one fast-path
// run performs (warm engine pools drive this toward the workload's
// Result payload alone).
type benchEntry struct {
	Experiment    string  `json:"experiment"`
	Quick         bool    `json:"quick"`
	NsFast        int64   `json:"ns_fast"`
	NsCycleStep   int64   `json:"ns_cyclestep"`
	SpeedupFactor float64 `json:"speedup"`
	AllocsPerRun  uint64  `json:"allocs_per_run"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1..table4, fig1, fig8..fig11, capacity-map, or 'all')")
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	plot := flag.Bool("plot", false, "render sweep results as ASCII charts too")
	list := flag.Bool("list", false, "list experiment names and exit")
	cycleStep := flag.Bool("cyclestep", false, "force the per-cycle reference loop (debug; results are identical)")
	jsonOut := flag.Bool("json", false, "time each experiment fast-path on vs off and emit JSON instead of tables (-cyclestep and -plot do not apply)")
	compare := flag.String("compare", "", "old bench JSON file: compare against the new bench JSON given as the positional argument and exit non-zero on a >10% speedup regression")
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "picos-bench: -compare needs exactly one positional argument: picos-bench -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareBench(*compare, flag.Arg(0)))
	}

	if *list {
		for _, n := range experiments.Names {
			fmt.Println(n)
		}
		return
	}

	names := experiments.Names
	if *exp != "all" {
		names = []string{*exp}
	}
	if *jsonOut {
		benchJSON(names, *quick)
		return
	}
	opt := experiments.Options{Quick: *quick, CycleStepped: *cycleStep}
	for _, name := range names {
		start := time.Now()
		tables, err := experiments.Run(name, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "picos-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "picos-bench: %v\n", err)
				os.Exit(1)
			}
			if *plot {
				if c := t.Chart(); c != nil {
					if err := c.Render(os.Stdout); err != nil {
						fmt.Fprintf(os.Stderr, "picos-bench: %v\n", err)
						os.Exit(1)
					}
					fmt.Println()
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// benchJSON times every named experiment under the fast path and under
// the cycle-stepped reference and emits the measurements as JSON.
func benchJSON(names []string, quick bool) {
	var entries []benchEntry
	for _, name := range names {
		e := measureExperiment(name, quick)
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "[%s: fast %v, cycle-stepped %v, %.2fx, %d allocs/run]\n", name,
			time.Duration(e.NsFast).Round(time.Microsecond),
			time.Duration(e.NsCycleStep).Round(time.Microsecond),
			e.SpeedupFactor, e.AllocsPerRun)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		fmt.Fprintf(os.Stderr, "picos-bench: %v\n", err)
		os.Exit(1)
	}
}

// measureExperiment compares the fast path against the cycle-stepped
// reference with an interleaved best-of-N protocol: one untimed
// warm-up pair first (trace generators, engine pools and the allocator
// reach steady state — the old fast-first, best-of-2 protocol
// systematically favored whichever side ran with a warmer process),
// then alternating fast/reference trials, keeping each side's minimum.
// Trial count adapts to the experiment: at least minTrials pairs,
// continuing until the time budget is spent, so microsecond-scale
// experiments (Table III's resource model, the nanos-only figures) get
// enough samples for a stable ratio instead of reporting scheduler
// noise.
func measureExperiment(name string, quick bool) benchEntry {
	fastOpt := experiments.Options{Quick: quick}
	refOpt := experiments.Options{Quick: quick, CycleStepped: true}
	runOnce := func(opt experiments.Options) int64 {
		start := time.Now()
		if _, err := experiments.Run(name, opt); err != nil {
			fmt.Fprintf(os.Stderr, "picos-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		return time.Since(start).Nanoseconds()
	}
	sensitive := experiments.FastPathSensitive(name)
	runOnce(fastOpt)
	if sensitive {
		runOnce(refOpt)
	}

	// Allocations of one warm fast-path run (sweep goroutines included:
	// Mallocs is process-wide and nothing else is running).
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	runOnce(fastOpt)
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs

	if !sensitive {
		// Nothing in this experiment branches on the fast-path knob:
		// measure its wall clock once and report the tautological 1.0
		// instead of timing the identical computation against itself.
		best := int64(0)
		var spent int64
		for trial := 0; trial < 11; trial++ {
			ns := runOnce(fastOpt)
			if trial == 0 || ns < best {
				best = ns
			}
			spent += ns
			if trial >= 2 && spent >= time.Second.Nanoseconds() {
				break
			}
		}
		return benchEntry{Experiment: name, Quick: quick, NsFast: best, NsCycleStep: best,
			SpeedupFactor: 1.0, AllocsPerRun: allocs}
	}

	// An odd cap keeps the alternation balanced; small experiments run
	// all trials (microseconds each), big ones stop at the time budget.
	const (
		minTrials = 3
		maxTrials = 41
	)
	budget := (2 * time.Second).Nanoseconds()
	var fastBest, refBest, spent int64
	for trial := 0; trial < maxTrials; trial++ {
		// Alternate which side runs first within a pair: allocator and GC
		// state systematically favor whichever side follows the other, and
		// min-of-N does not cancel a bias that always points the same way.
		var f, r int64
		if trial%2 == 0 {
			f = runOnce(fastOpt)
			r = runOnce(refOpt)
		} else {
			r = runOnce(refOpt)
			f = runOnce(fastOpt)
		}
		if trial == 0 || f < fastBest {
			fastBest = f
		}
		if trial == 0 || r < refBest {
			refBest = r
		}
		spent += f + r
		if trial+1 >= minTrials && spent >= budget {
			break
		}
	}
	e := benchEntry{Experiment: name, Quick: quick, NsFast: fastBest, NsCycleStep: refBest, AllocsPerRun: allocs}
	if fastBest > 0 {
		e.SpeedupFactor = float64(refBest) / float64(fastBest)
	}
	return e
}

// minSignificantNs is the reference-loop wall time below which a bench
// row is reported but not gated: the ratio of two microsecond-scale
// measurements is scheduler noise, not a scheduler regression.
const minSignificantNs = 1_000_000

// compareBench diffs two bench JSON files and returns the process exit
// code: 1 when any experiment significant in both files lost more than
// 10% of its fast-vs-cycle-stepped speedup, 0 otherwise.
func compareBench(oldPath, newPath string) int {
	oldEntries, err := readBench(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "picos-bench: %v\n", err)
		return 2
	}
	newEntries, err := readBench(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "picos-bench: %v\n", err)
		return 2
	}
	oldByName := map[string]benchEntry{}
	for _, e := range oldEntries {
		oldByName[e.Experiment] = e
	}
	fmt.Printf("%-14s %10s %10s %8s %14s %6s\n", "experiment", "old", "new", "delta", "allocs/run", "gated")
	regressions := 0
	seen := map[string]bool{}
	for _, ne := range newEntries {
		seen[ne.Experiment] = true
		oe, ok := oldByName[ne.Experiment]
		if !ok {
			fmt.Printf("%-14s %10s %10.2fx %8s %14d %6s\n", ne.Experiment, "-", ne.SpeedupFactor, "new", ne.AllocsPerRun, "no")
			continue
		}
		delta := 0.0
		if oe.SpeedupFactor > 0 {
			delta = ne.SpeedupFactor/oe.SpeedupFactor - 1
		}
		significant := oe.NsCycleStep >= minSignificantNs && ne.NsCycleStep >= minSignificantNs
		gated := "no"
		if significant {
			gated = "yes"
		}
		status := ""
		if significant && ne.SpeedupFactor < oe.SpeedupFactor*0.9 {
			regressions++
			status = "  << REGRESSION"
		}
		fmt.Printf("%-14s %9.2fx %9.2fx %+7.1f%% %6d->%-7d %6s%s\n",
			ne.Experiment, oe.SpeedupFactor, ne.SpeedupFactor, delta*100,
			oe.AllocsPerRun, ne.AllocsPerRun, gated, status)
	}
	missing := 0
	for _, oe := range oldEntries {
		if !seen[oe.Experiment] {
			// Lost coverage fails the gate like a regression would: a
			// baseline experiment that no longer produces a row is a
			// measurement that silently stopped happening.
			missing++
			fmt.Printf("%-14s %9.2fx %10s\n", oe.Experiment, oe.SpeedupFactor, "missing")
		}
	}
	if regressions > 0 || missing > 0 {
		fmt.Fprintf(os.Stderr, "picos-bench: %d experiment(s) regressed by more than 10%%, %d missing from the new results\n", regressions, missing)
		return 1
	}
	fmt.Println("no significant speedup regressions")
	return 0
}

func readBench(path string) ([]benchEntry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []benchEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%s: no bench entries", path)
	}
	return entries, nil
}
