package picos

import (
	"testing"

	"repro/internal/trace"
)

// runTraceOn drives an existing Picos instance through a complete trace,
// exactly like runTrace but without building the machine — the reuse
// suite's way of exercising Reset.
func runTraceOn(t *testing.T, p *Picos, tr *trace.Trace, workers int) *runResult {
	t.Helper()
	for i := range tr.Tasks {
		if err := p.Submit(tr.Tasks[i].ID, tr.Tasks[i].Deps); err != nil {
			t.Fatal(err)
		}
	}
	r := &runResult{
		p:      p,
		start:  make([]uint64, len(tr.Tasks)),
		finish: make([]uint64, len(tr.Tasks)),
	}
	type worker struct {
		until  uint64
		task   ReadyTask
		active bool
	}
	ws := make([]worker, workers)
	done := 0
	lastProgress := uint64(0)
	const watchdog = 50_000_000
	for done < len(tr.Tasks) || !p.Idle() {
		now := p.Now()
		for i := range ws {
			if ws[i].active && ws[i].until <= now {
				p.NotifyFinish(ws[i].task.Handle)
				ws[i].active = false
				done++
				lastProgress = now
			}
		}
		for i := range ws {
			if ws[i].active {
				continue
			}
			rt, ok := p.PopReady()
			if !ok {
				break
			}
			dur := tr.Tasks[rt.ID].Duration
			ws[i] = worker{until: now + dur, task: rt, active: true}
			r.start[rt.ID] = now
			r.finish[rt.ID] = now + dur
			r.order = append(r.order, rt.ID)
			lastProgress = now
		}
		if p.Idle() && p.ReadyCount() == 0 {
			next := uint64(0)
			for i := range ws {
				if ws[i].active && (next == 0 || ws[i].until < next) {
					next = ws[i].until
				}
			}
			if next > now+1 {
				p.StepTo(next)
				continue
			}
		}
		p.Step()
		if p.Now()-lastProgress > watchdog {
			t.Fatalf("watchdog: no progress since cycle %d (now %d, done %d/%d)",
				lastProgress, p.Now(), done, len(tr.Tasks))
		}
	}
	return r
}

// sameRun asserts two runs produced identical schedules and counters.
func sameRun(t *testing.T, label string, fresh, reused *runResult) {
	t.Helper()
	if *fresh.p.Stats() != *reused.p.Stats() {
		t.Errorf("%s: stats diverge\nfresh:  %+v\nreused: %+v", label, *fresh.p.Stats(), *reused.p.Stats())
	}
	if len(fresh.order) != len(reused.order) {
		t.Fatalf("%s: executed %d vs %d tasks", label, len(fresh.order), len(reused.order))
	}
	for i := range fresh.order {
		if fresh.order[i] != reused.order[i] {
			t.Fatalf("%s: start order diverges at %d: task %d vs %d", label, i, fresh.order[i], reused.order[i])
		}
	}
	for i := range fresh.start {
		if fresh.start[i] != reused.start[i] || fresh.finish[i] != reused.finish[i] {
			t.Fatalf("%s: schedule diverges for task %d: [%d,%d] vs [%d,%d]", label, i,
				fresh.start[i], fresh.finish[i], reused.start[i], reused.finish[i])
		}
	}
}

// resetConfigs is the cross-shape matrix Reset must handle: same config,
// policy flip, design change (different VM capacity and DM ways), a
// multi-unit future architecture (different unit and heap shapes), and
// sharded fabrics whose per-shard DM/VM partitions grow and shrink with
// the shard count (8 shards of 8 sets back to one shard of 64, and a
// shard-count change combined with a ways change).
func resetConfigs() []Config {
	return []Config{
		{},
		{Policy: SchedLIFO},
		{Design: DM16Way},
		{Design: DM8Way, Admission: AdmitSlotsOnly},
		{NumTRS: 4, NumDCT: 4},
		{NumDCT: 8, ShardHash: ShardLowBits},
		{NumDCT: 2, Design: DM16Way},
	}
}

// TestResetEquivalentToFresh: a Reset machine must behave exactly like a
// freshly built one, across every config-shape transition in both
// directions — the contract that makes warm engine pools safe.
func TestResetEquivalentToFresh(t *testing.T) {
	tr := &trace.Trace{Name: "reset-mix", Tasks: fastpathTasks()}
	cfgs := resetConfigs()
	reused, err := New(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Walk the configs twice so every transition (including back to the
	// first shape) is exercised on the same reused machine.
	for round := 0; round < 2; round++ {
		for ci, cfg := range cfgs {
			if err := reused.Reset(cfg); err != nil {
				t.Fatalf("round %d cfg %d: Reset: %v", round, ci, err)
			}
			fresh := runTrace(t, tr, cfg, 4)
			got := runTraceOn(t, reused, tr, 4)
			label := cfg.Design.String() + "/" + cfg.Policy.String()
			sameRun(t, label, fresh, got)
			if err := reused.Drained(); err != nil {
				t.Fatalf("%s: reused machine not drained: %v", label, err)
			}
		}
	}
}

// TestResetCleansMidRunState: Reset must scrub a machine abandoned mid-
// run — queues holding packets, TM/VM/DM entries live, busy timers
// running — back to fresh behaviour. This is the wedge-recovery
// guarantee at the accelerator level.
func TestResetCleansMidRunState(t *testing.T) {
	tasks := fastpathTasks()
	tr := &trace.Trace{Name: "reset-abandon", Tasks: tasks}
	cfg := Config{}
	reused, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, abandonAt := range []uint64{1, 37, 400, 4000} {
		// Drive partway: tasks in flight, ready store populated, nothing
		// ever finished.
		for i := range tasks {
			if err := reused.Submit(tasks[i].ID, tasks[i].Deps); err != nil {
				t.Fatal(err)
			}
		}
		reused.RunTo(abandonAt)
		if err := reused.Reset(cfg); err != nil {
			t.Fatalf("abandon@%d: Reset: %v", abandonAt, err)
		}
		if reused.Now() != 0 || reused.InFlight() != 0 || reused.ReadyCount() != 0 {
			t.Fatalf("abandon@%d: Reset left state: now %d, inflight %d, ready %d",
				abandonAt, reused.Now(), reused.InFlight(), reused.ReadyCount())
		}
		fresh := runTrace(t, tr, cfg, 4)
		got := runTraceOn(t, reused, tr, 4)
		sameRun(t, "after-abandon", fresh, got)
		fresh.verify(t, tr)
		got.verify(t, tr)
	}
}
