module dhcheck

go 1.21
