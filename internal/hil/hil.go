// Package hil models the paper's Hardware-In-the-Loop simulation
// platform (Section IV-B, Figure 6): the Picos accelerator in the
// programmable logic, driven either by PL-side workers (HW-only mode) or
// by the ARM processing system over an AXI-Stream link whose messages
// cost 200-300 cycles each (HW+communication and Full-system modes). In
// Full-system mode the ARM additionally pays the Nanos++ task creation
// and submission cost for every task before it reaches the accelerator.
package hil

import (
	"fmt"
	"sync"

	"repro/internal/faults"
	"repro/internal/picos"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Mode selects the platform operating mode.
type Mode uint8

const (
	// HWOnly: all tasks preloaded into the accelerator, workers
	// implemented in the PL; no communication cost (solid line of
	// Figure 6).
	HWOnly Mode = iota
	// HWComm: HW-only plus the AXI communication cost for every new,
	// ready and finished task message, serialized over the single
	// stream interface.
	HWComm
	// FullSystem: the close-loop mode — ARM-side task creation and
	// submission (Nanos++ master path) plus communication plus the
	// accelerator.
	FullSystem
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case HWOnly:
		return "HW-only"
	case HWComm:
		return "HW+comm."
	case FullSystem:
		return "Full-system"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// CommTiming models the AXI-Stream link: per-message occupancy of the
// interface plus in-flight latency, and a one-time lazy setup of the
// stream queues and status registers incurred at the first transfer.
// Calibrated so that HW+comm mode reproduces Table IV (L1st ~1172,
// thrTask ~740).
type CommTiming struct {
	SendNewOcc    uint64 // interface busy cycles per new-task message
	FetchReadyOcc uint64 // per ready-task retrieval
	SendFinOcc    uint64 // per finished-task message
	Flight        uint64 // additional in-flight latency per message
	Setup         uint64 // one-time queue/status-register setup cost
}

// DefaultCommTiming returns the calibrated link cost ("around 200 to 300
// cycles for each message").
func DefaultCommTiming() CommTiming {
	return CommTiming{
		SendNewOcc:    290,
		FetchReadyOcc: 230,
		SendFinOcc:    220,
		Flight:        15,
		Setup:         460,
	}
}

// MasterTiming models the ARM-side Nanos++ master path in Full-system
// mode: constant task creation plus the submission cost. Submission of a
// task with dependences pays a fixed dependence-bookkeeping entry cost
// plus a light per-dependence marshaling cost (the heavy dependence
// analysis is what Picos offloads); a task without dependences takes the
// cheap no-deps path. Calibrated to Table IV Full-system rows
// (thrTask 2729/3125/3413 for 0/1/15 deps).
type MasterTiming struct {
	Create       uint64 // task creation, independent of #deps
	SubmitNoDeps uint64 // submission of a dependence-free task
	SubmitBase   uint64 // submission entry cost when deps > 0
	SubmitPerDep uint64 // marshaling per dependence
}

// DefaultMasterTiming returns the calibrated ARM master cost.
func DefaultMasterTiming() MasterTiming {
	return MasterTiming{Create: 1800, SubmitNoDeps: 620, SubmitBase: 995, SubmitPerDep: 21}
}

// SubmitCost returns the submission cost for a task with nDeps.
func (m MasterTiming) SubmitCost(nDeps int) uint64 {
	if nDeps == 0 {
		return m.SubmitNoDeps
	}
	return m.SubmitBase + uint64(nDeps)*m.SubmitPerDep
}

// DefaultRunAhead is the FullSystem master's creation run-ahead window:
// the number of descriptors the Nanos++ master keeps created but not yet
// accepted by the accelerator's submission buffer before it pauses
// creation. Sized like the prototype's descriptor ring; it only ever
// binds when submissions backpressure (a bounded Picos.NewQDepth behind
// a saturated gateway), since an unbounded queue accepts immediately.
const DefaultRunAhead = 16

// Config configures a platform run.
type Config struct {
	Mode Mode
	// Workers is the homogeneous worker count. Mutually exclusive with
	// Classes: when Classes is non-empty the worker count is the sum of
	// the class counts and Workers must be zero.
	Workers int
	// Classes declares heterogeneous worker classes (per-class
	// service-time multipliers, optional task-kind affinity). Empty
	// means Workers identical baseline cores.
	Classes sched.Classes
	// Sched is the ready-task grant policy (sched.FIFO preserves the
	// historical lowest-index semantics bit for bit).
	Sched sched.Policy
	// Steal enables per-class ready queues with deterministic
	// ascending-class victim order.
	Steal  bool
	Picos  picos.Config
	Comm   CommTiming
	Master MasterTiming
	// Watchdog aborts the run if no task starts or finishes for this
	// many cycles (0: default 100M).
	Watchdog uint64
	// Window bounds streaming ingestion (RunStream only): the maximum
	// number of created-but-unretired task descriptors kept live at
	// once. RunStream requires it positive; Run (materialized) ignores
	// it. See stream.go for the retirement rules and how the window
	// composes with Picos.NewQDepth and RunAhead.
	Window int
	// RunAhead bounds the FullSystem master's created-but-unsubmitted
	// descriptor window: while a submission is backpressured (the
	// accelerator's bounded new-task queue is full), the master keeps
	// creating tasks until this many descriptors are waiting, then
	// parks. 0 means DefaultRunAhead; negative disables the bound
	// (infinite run-ahead).
	RunAhead int
	// Faults is the parsed deterministic fault plan injected into the
	// platform (AXI link, workers) and the accelerator (DCT, TRS); nil
	// runs fault-free. Every injection site is nil-gated, so the
	// fault-free path stays byte-identical and allocation-free — the
	// equivalence and alloc suites enforce both.
	Faults *faults.Plan
	// Recovery is the recovery-policy set (bounded link retransmission,
	// fail-stop worker regrant, gateway degrade) consulted when faults
	// land.
	Recovery faults.Recovery
	// FastForward selects the event-driven fast path: the runner jumps
	// the clock straight to the next worker completion, link delivery or
	// accelerator-internal event instead of stepping every cycle. Results
	// are bit-identical to the cycle-stepped loop (the differential
	// equivalence suite in internal/sim enforces it); turn it off to
	// debug with the per-cycle reference. DefaultConfig enables it; the
	// zero Config keeps the cycle-stepped loop.
	FastForward bool
}

// DefaultConfig returns a 12-worker HW-only platform around the paper's
// baseline accelerator.
func DefaultConfig() Config {
	return Config{
		Mode:        HWOnly,
		Workers:     12,
		Picos:       picos.DefaultConfig(),
		Comm:        DefaultCommTiming(),
		Master:      DefaultMasterTiming(),
		RunAhead:    DefaultRunAhead,
		FastForward: true,
	}
}

// Result is the outcome of one platform run.
type Result struct {
	Mode     Mode
	Workers  int
	Makespan uint64 // cycle the last task finished executing
	Baseline uint64 // sequential reference (trace.Baseline)
	Speedup  float64

	Start  []uint64 // per task, cycle execution started
	Finish []uint64 // per task, cycle execution finished
	Order  []uint32 // task IDs in start order

	Stats picos.Stats
	Busy  picos.BusyCycles

	// Latency/throughput probes for Table IV.
	FirstStart uint64  // L1st
	ThrTask    float64 // cycles per additional task

	// Wedged reports a proven model deadlock: tasks remain but no future
	// event exists anywhere in the platform or the accelerator (e.g. an
	// admitted task whose dependences can never all be stored in a full
	// direct-hash DM set). The schedule arrays cover the tasks that did
	// complete; Speedup is zeroed. WedgedAt is the cycle the deadlock
	// was proven.
	Wedged   bool
	WedgedAt uint64

	// TimedOut reports a watchdog expiry: no task started, finished,
	// landed or was refused for Config.Watchdog cycles while a future
	// event still existed (otherwise the wedge proof would have fired) —
	// a livelock or pathological stall, distinct from the proven
	// deadlock Wedged reports. Speedup is zeroed.
	TimedOut bool

	// Fault-injection outcome, all zero on fault-free runs.
	// Faulted reports that at least one configured fault actually fired;
	// a Wedged result with Faulted set is fault-induced, not a model
	// deadlock.
	Faulted bool
	// LostTasks counts tasks permanently lost to faults: new/ready
	// messages dropped past the retransmission budget and in-flight
	// tasks of fail-stopped workers without the regrant policy.
	LostTasks int
	// RecoveredTasks counts recovery successes: dropped messages whose
	// retransmission landed and fail-stopped tasks re-granted through
	// the scheduling layer.
	RecoveredTasks int
	// RefusedTasks counts tasks refused at admission: structurally
	// unadmittable dependence sets under the avoid-deadlock policies
	// plus blocked heads popped by degrade recovery.
	RefusedTasks int
	// RefusedIDs lists the refused task IDs under avoid-deadlock-park
	// (the parking policy keeps the descriptors for the host to act on;
	// plain avoid-deadlock drops refusals after counting them).
	RefusedIDs []uint32
}

// Platform is a reusable HIL engine: one accelerator model plus the
// runner scratch around it. Run resets everything a previous run left
// behind — in place, reusing the DM/VM/TM memories, queue buffers and
// worker heaps — so a warm Platform executes a run with near-zero
// allocations. A Platform is not safe for concurrent use; run one per
// goroutine (the package-level Run keeps a pool of them).
type Platform struct {
	r runner
}

// NewPlatform returns an empty platform; the first Run sizes it.
func NewPlatform() *Platform { return &Platform{} }

// Run drives the trace through the platform under cfg. Resets between
// runs are proven equivalent to a fresh platform by the reuse
// equivalence suite — including after a run that wedged.
func (pl *Platform) Run(tr *trace.Trace, cfg Config) (*Result, error) {
	if err := pl.r.reset(tr, cfg); err != nil {
		// A failed reset may already have taken the trace reference;
		// scrub so a pooled platform never retains the caller's trace.
		pl.r.scrub()
		return nil, err
	}
	res, err := pl.r.run()
	pl.r.scrub()
	return res, err
}

// platformPool keeps warm engines across Run calls: sweeps over
// thousands of grid points reuse a per-worker Platform instead of
// rebuilding task/version/dependence memories and queues per run.
var platformPool = sync.Pool{New: func() any { return NewPlatform() }}

// Run drives the trace through a pooled platform.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	pl := platformPool.Get().(*Platform)
	res, err := pl.Run(tr, cfg)
	platformPool.Put(pl)
	return res, err
}
