package picos

// trsUnit is one Task Reservation Station: it stores in-flight tasks in
// its Task Memory, tracks dependence readiness, propagates consumer wake
// chains and drives the deletion of finished tasks (Section III-A/B).
type trsUnit struct {
	id     uint8
	p      *Picos
	tm     *taskMemory
	timing *Timing

	// Inputs.
	newQ     regFIFO[newTaskPkt]      // from GW (N3)
	statusQ  regFIFO[depStatusPkt]    // from DCT via ARB (N5)
	wakeQ    regFIFO[wakePkt]         // from DCT/TRS via ARB (F4, chain links)
	finTaskQ regFIFO[finishedTaskPkt] // from GW (F2)

	busyUntil uint64
	busy      uint64 // accumulated busy cycles (stats)
	hid       int32  // horizon-heap slot
}

func newTRS(id uint8, p *Picos) *trsUnit {
	return &trsUnit{id: id, p: p, tm: newTaskMemory(), timing: &p.cfg.Timing}
}

// reset scrubs the unit back to its just-built state, keeping the task
// memory and queue storage.
func (u *trsUnit) reset() {
	u.tm.reset()
	u.newQ.reset()
	u.statusQ.reset()
	u.wakeQ.reset()
	u.finTaskQ.reset()
	u.busyUntil, u.busy = 0, 0
}

// allocSlot services the GW's New Entry Request.
func (u *trsUnit) allocSlot() (uint16, bool) { return u.tm.alloc() }

func (u *trsUnit) step(now uint64) {
	// Dependence-tracking traffic (statuses, wakes, finish walks) is
	// serviced before new-task insertions: the release->wake->ready round
	// trip of an in-flight chain must not queue behind 10-cycle TM0
	// writes for tasks that are not runnable yet, or chained workloads
	// pace at the insertion rate plus the round trip instead of hiding
	// one under the other (the prototype keeps Table IV case4 at the
	// case2 rate precisely because retirement preempts insertion).
	// Statuses stay ahead of wakes: a wake targeting a dependence whose
	// status lands the same cycle must observe the registered entry.
	// Starving insertions is safe — every admitted task already holds
	// its TM0 slot, so delaying the write only delays that task.
	for u.busyUntil <= now {
		if pkt, ok := u.statusQ.pop(now); ok {
			u.handleStatus(pkt, now)
			continue
		}
		if pkt, ok := u.wakeQ.pop(now); ok {
			u.handleWake(pkt, now)
			continue
		}
		if pkt, ok := u.finTaskQ.pop(now); ok {
			u.handleFinishedTask(pkt, now)
			continue
		}
		if pkt, ok := u.newQ.pop(now); ok {
			u.handleNewTask(pkt, now)
			continue
		}
		return
	}
}

func (u *trsUnit) consume(now, cost uint64) uint64 {
	if f := u.p.cfg.Faults; f != nil {
		// A trs:stall clause extends the first packet this unit
		// services at or after its trigger cycle; tying the stall to a
		// real service event keeps both loops identical with no extra
		// horizon bookkeeping.
		cost += f.StallDelay(int(u.id), now)
	}
	u.busyUntil = now + cost
	u.busy += cost
	u.p.markDirty(u.hid)
	u.p.noteBusy(u.busyUntil)
	return u.busyUntil
}

// handleNewTask saves the task in its TM0 slot; a task without
// dependences is ready immediately (N6).
func (u *trsUnit) handleNewTask(pkt newTaskPkt, now uint64) {
	done := u.consume(now, u.timing.TRSNewTask)
	e := u.tm.at(pkt.slot)
	e.id = pkt.id
	e.numDeps = pkt.numDeps
	e.inserted = true
	u.maybeReady(pkt.slot, e, done)
}

// handleStatus records a ready or dependent packet for one dependence,
// or updates the wake pointer of an existing one (setWake).
func (u *trsUnit) handleStatus(pkt depStatusPkt, now uint64) {
	done := u.consume(now, u.timing.TRSStatus)
	e := u.tm.at(pkt.task.Slot)
	if pkt.setWake {
		idx, ok := e.findDepByVM(pkt.vm)
		if !ok || e.deps[idx].ready {
			u.p.stats.ProtocolErrors++
			return
		}
		e.deps[idx].hasWake = true
		e.deps[idx].wakeTask = pkt.wakeTask
		return
	}
	d := &e.deps[pkt.depIdx]
	d.registered = true
	d.vm = pkt.vm
	if pkt.ready {
		d.ready = true
		e.readyDeps++
	} else {
		d.hasWake = pkt.hasWake
		d.wakeTask = pkt.wakeTask
	}
	u.maybeReady(pkt.task.Slot, e, done)
}

// handleWake marks a waiting dependence ready and forwards the chain
// wake to the previous consumer, if any (links 2..n of Figure 5).
func (u *trsUnit) handleWake(pkt wakePkt, now uint64) {
	done := u.consume(now, u.timing.TRSWake)
	e := u.tm.at(pkt.task.Slot)
	idx, ok := e.findDepByVM(pkt.vm)
	if !ok || e.deps[idx].ready {
		// A wake must always target a registered, waiting dependence;
		// anything else is a protocol bug worth surfacing in stats.
		u.p.stats.ProtocolErrors++
		return
	}
	d := &e.deps[idx]
	d.ready = true
	e.readyDeps++
	if d.hasWake {
		u.p.arb.route(arbMsg{kind: arbWake, wake: wakePkt{task: d.wakeTask, vm: pkt.vm}}, done+u.timing.TRSPipe)
	}
	u.maybeReady(pkt.task.Slot, e, done)
}

// maybeReady sends the task to the TS once every dependence is ready.
// Readiness can only be judged after the TM0 write published numDeps:
// statuses serviced ahead of the insertion accumulate in readyDeps and
// are re-evaluated when handleNewTask lands.
func (u *trsUnit) maybeReady(slot uint16, e *tmEntry, at uint64) {
	if !e.inserted || e.sent || e.readyDeps != e.numDeps {
		return
	}
	e.sent = true
	u.p.ts.inQ.push(readyTaskPkt{task: TaskHandle{TRS: u.id, Slot: slot}, id: e.id}, at+u.timing.TRSPipe)
	u.p.markDirty(u.p.ts.hid)
}

// handleFinishedTask performs the finish walk (F3): read TM0, emit one
// finish packet per dependence to the owning DCTs, then recycle the slot.
func (u *trsUnit) handleFinishedTask(pkt finishedTaskPkt, now uint64) {
	e := u.tm.at(pkt.slot)
	n := uint64(e.numDeps)
	u.consume(now, u.timing.TRSFinBase+n*u.timing.TRSFinPerDep)
	h := TaskHandle{TRS: u.id, Slot: pkt.slot}
	for i := 0; i < int(e.numDeps); i++ {
		d := &e.deps[i]
		at := now + u.timing.TRSFinBase + uint64(i+1)*u.timing.TRSFinPerDep + u.timing.TRSPipe
		u.p.arb.route(arbMsg{kind: arbFin, fin: finishDepPkt{task: h, vm: d.vm}}, at)
	}
	// The slot is recycled only after the whole walk (N2 can then reuse
	// it without racing the in-flight finish packets: every VM entry that
	// still references this handle belongs to packets already ordered
	// ahead of any reuse).
	u.tm.release(pkt.slot)
	u.p.stats.TasksCompleted++
}

// nextEvent returns the earliest cycle at which the TRS can process its
// next packet: the earliest queue-head visibility, gated by the unit's
// busy timer.
func (u *trsUnit) nextEvent() (uint64, bool) {
	next, ok := uint64(0), false
	consider := func(at uint64, qok bool) {
		if !qok {
			return
		}
		if c := max(at, u.busyUntil); !ok || c < next {
			next, ok = c, true
		}
	}
	consider(u.newQ.headAt())
	consider(u.statusQ.headAt())
	consider(u.wakeQ.headAt())
	consider(u.finTaskQ.headAt())
	return next, ok
}

// active reports whether the unit has pending input or is mid-operation.
func (u *trsUnit) active(now uint64) bool {
	return u.busyUntil > now ||
		!u.newQ.empty() || !u.statusQ.empty() || !u.wakeQ.empty() || !u.finTaskQ.empty()
}
