package faults

// Platform-side injector: the HIL runner owns the injection sites (the
// AXI link arbiter, the worker pool) and calls these decision
// primitives from them. Every site is nil-gated on the injector, so a
// fault-free run never touches this file.

// AXIFault is the runtime state of one axi clause: the kind, the
// per-opportunity rate, and the clause's private detrand stream. The
// stream advances exactly once per draw, in clause order, at link-send
// events — events both simulation loops evaluate at identical cycles —
// so the fault sequence is identical on the fast and reference paths.
type AXIFault struct {
	Kind  string  // KindDrop, KindDelay or KindDup
	Rate  float64 // probability per send
	Delay uint64  // extra link-occupancy cycles (KindDelay)

	seed uint64
	n    uint64
}

// Hit advances the clause's stream by one draw and reports whether the
// fault fires for this opportunity. Callers must draw every clause per
// opportunity (no short-circuiting), or the streams desynchronize
// between runs that differ only in unrelated clauses.
func (a *AXIFault) Hit() bool {
	a.n++
	return drawFloat(a.seed, a.n) < a.Rate
}

// StopFault is one worker:failstop clause: worker Worker dies at Cycle
// and never returns.
type StopFault struct {
	Worker  int
	Cycle   uint64
	Applied bool
}

// SlowWindow is one worker:slowdown clause: tasks dispatched to a
// matching worker at a cycle in [From, Until) take Factor times as
// long. Until is the open-ended maximum when the clause had no :lenL.
type SlowWindow struct {
	Factor uint64
	Worker int // -1 = every worker
	From   uint64
	Until  uint64
}

// PlatformFaults is the platform-side injector for one run, built from
// the plan's axi/worker clauses plus the recovery policy the runner
// consults when a fault lands.
type PlatformFaults struct {
	AXI   []AXIFault
	Stops []StopFault
	Slows []SlowWindow
	Rec   Recovery

	// Fired reports whether any platform-side fault actually triggered.
	Fired bool
}

// PlatformSide builds the platform-side injector, or nil when the plan
// has no axi/worker clauses (the runner hot paths keep their nil fast
// path; accelerator-side clauses live in PicosSide).
func (p *Plan) PlatformSide(rec Recovery) *PlatformFaults {
	if p.Empty() {
		return nil
	}
	f := &PlatformFaults{Rec: rec}
	for _, c := range p.Clauses {
		switch {
		case c.Layer == LayerAXI:
			f.AXI = append(f.AXI, AXIFault{Kind: c.Kind, Rate: c.Rate, Delay: c.Delay, seed: c.Seed})
		case c.Layer == LayerWorker && c.Kind == KindFailstop:
			f.Stops = append(f.Stops, StopFault{Worker: c.Worker, Cycle: c.Cycle})
		case c.Layer == LayerWorker && c.Kind == KindSlowdown:
			until := ^uint64(0)
			if c.Len > 0 {
				until = c.Cycle + c.Len
			}
			f.Slows = append(f.Slows, SlowWindow{Factor: c.Factor, Worker: c.Worker, From: c.Cycle, Until: until})
		}
	}
	if len(f.AXI) == 0 && len(f.Stops) == 0 && len(f.Slows) == 0 {
		return nil
	}
	return f
}

// Reset rewinds every clause stream and flag for engine reuse.
func (f *PlatformFaults) Reset() {
	for i := range f.AXI {
		f.AXI[i].n = 0
	}
	for i := range f.Stops {
		f.Stops[i].Applied = false
	}
	f.Fired = false
}

// ScaleWorker applies any worker:slowdown window matching worker w at
// dispatch cycle now to a task duration.
func (f *PlatformFaults) ScaleWorker(w int, now, dur uint64) uint64 {
	for i := range f.Slows {
		s := &f.Slows[i]
		if (s.Worker < 0 || s.Worker == w) && now >= s.From && now < s.Until {
			dur *= s.Factor
			f.Fired = true
		}
	}
	return dur
}

// NextStop returns the earliest unapplied failstop cycle. Both
// simulation loops feed it into their wake candidates so the kill is
// evaluated at exactly its trigger cycle.
func (f *PlatformFaults) NextStop() (uint64, bool) {
	next, ok := uint64(0), false
	for i := range f.Stops {
		s := &f.Stops[i]
		if s.Applied {
			continue
		}
		if !ok || s.Cycle < next {
			next, ok = s.Cycle, true
		}
	}
	return next, ok
}
