package picos

import "repro/internal/trace"

// tmSlots is the number of TM0 entries per TRS: "TM0 has 256 entries ...
// these enable it to manage up to 256 in-flight tasks".
const tmSlots = 256

// tmDep is one TMX dependence record of an in-flight task: the VM entry
// backing the dependence, its readiness, and the optional chain-wake
// pointer installed by a dependent packet (wake wakeTask's dependence on
// the same VM entry once this one wakes).
type tmDep struct {
	registered bool
	ready      bool
	vm         VMAddr
	hasWake    bool
	wakeTask   TaskHandle
}

// tmEntry is one TM0 entry plus its TMX rows: Task.ID, #Num.Dep.,
// #Ready Dep. and the consumer sections (Section III-A).
type tmEntry struct {
	used      bool
	inserted  bool // TM0 write done (id/numDeps valid)
	id        uint32
	numDeps   uint8
	readyDeps uint8
	sent      bool // handed to the TS
	deps      [trace.MaxDeps]tmDep
}

// taskMemory is the TM of one TRS: a fixed pool of task slots with a
// free list, supporting the paper's four actions (read/write via at,
// New Entry Request via alloc, Finished Entry Request via release).
type taskMemory struct {
	entries [tmSlots]tmEntry
	free    []uint16
}

func newTaskMemory() *taskMemory {
	m := &taskMemory{free: make([]uint16, 0, tmSlots)}
	for i := tmSlots - 1; i >= 0; i-- {
		m.free = append(m.free, uint16(i))
	}
	return m
}

// reset returns the memory to its just-built state in place: live slots
// are scrubbed (released ones are already zero) and the free list is
// rebuilt in the deterministic fresh order, so allocation sequences
// after a Reset match a fresh machine exactly.
func (m *taskMemory) reset() {
	for i := range m.entries {
		if m.entries[i].used {
			m.entries[i] = tmEntry{}
		}
	}
	m.free = m.free[:0]
	for i := tmSlots - 1; i >= 0; i-- {
		m.free = append(m.free, uint16(i))
	}
}

// alloc claims a free slot.
func (m *taskMemory) alloc() (uint16, bool) {
	if len(m.free) == 0 {
		return 0, false
	}
	s := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.entries[s] = tmEntry{used: true}
	return s, true
}

// release recycles a slot.
func (m *taskMemory) release(s uint16) {
	m.entries[s] = tmEntry{}
	m.free = append(m.free, s)
}

// at returns the slot.
func (m *taskMemory) at(s uint16) *tmEntry { return &m.entries[s] }

// freeCount returns the number of free slots.
func (m *taskMemory) freeCount() int { return len(m.free) }

// live returns the number of slots in use.
func (m *taskMemory) live() int { return tmSlots - len(m.free) }

// findDepByVM returns the index of the task's dependence backed by vm.
// The TMX scan is how the TRS resolves wake packets, which carry only
// (task, VM address). It scans the whole TMX row rather than the first
// numDeps records: TMX writes (statuses) may land before the TM0 write
// that publishes numDeps, since the tracking traffic is serviced ahead
// of new-task insertions.
func (e *tmEntry) findDepByVM(vm VMAddr) (int, bool) {
	for i := range e.deps {
		if e.deps[i].registered && e.deps[i].vm == vm {
			return i, true
		}
	}
	return 0, false
}
