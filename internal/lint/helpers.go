package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// chainString renders an identifier/selector chain ("p.gw.newQ") and
// reports ok=false for anything more exotic (calls, indexing) — the
// analyzers only reason about plain field chains.
func chainString(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := chainString(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.ParenExpr:
		return chainString(x.X)
	}
	return "", false
}

// hasDirective reports whether a doc comment contains the given
// machine-readable directive line (e.g. "//picos:hotpath").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// directiveArgs returns the arguments of a doc-comment directive line,
// e.g. directiveArgs(doc, "//picos:ignores-knobs") on a comment
// "//picos:ignores-knobs A,B reason..." returns ["A,B", "reason..."].
func directiveArgs(doc *ast.CommentGroup, directive string) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if rest, ok := strings.CutPrefix(text, directive); ok {
			if rest == "" {
				return nil, true
			}
			if rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			return strings.Fields(rest), true
		}
	}
	return nil, false
}

// calleePkgFunc resolves a call of the form pkgname.Func(...) to its
// package path and function name; ok is false for anything else (method
// calls, locals, builtins).
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// structOf dereferences pointers and named types down to a struct type;
// nil when t is not (a pointer to) a struct.
func structOf(t types.Type) *types.Struct {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// structHasField reports whether the (possibly pointed-to) struct type
// has a field with the given name.
func structHasField(t types.Type, field string) bool {
	st := structOf(t)
	if st == nil {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return true
		}
	}
	return false
}

// receiverName returns the receiver identifier of a method declaration
// ("" for functions and anonymous receivers).
func receiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}

// receiverTypeName returns the named type of a method's receiver
// ("gateway" for func (g *gateway) ...); "" for plain functions.
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver regFIFO[T]
		t = idx.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}
