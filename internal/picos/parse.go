package picos

import (
	"fmt"
	"strings"
)

// ParseDesign resolves a DM design from its flag/spec spelling. The
// empty string means the default (Pearson 8-way, the paper's shipping
// configuration).
func ParseDesign(s string) (DMDesign, error) {
	switch strings.ToLower(s) {
	case "", "p8way", "p+8way":
		return DMP8Way, nil
	case "8way":
		return DM8Way, nil
	case "16way":
		return DM16Way, nil
	default:
		return 0, fmt.Errorf("picos: unknown DM design %q (want 8way, 16way or p8way)", s)
	}
}

// ParsePolicy resolves a Task Scheduler policy; empty means FIFO.
func ParsePolicy(s string) (SchedPolicy, error) {
	switch strings.ToLower(s) {
	case "", "fifo":
		return SchedFIFO, nil
	case "lifo":
		return SchedLIFO, nil
	default:
		return 0, fmt.Errorf("picos: unknown TS policy %q (want fifo or lifo)", s)
	}
}

// ParseAdmission resolves a Gateway admission policy; empty means the
// credit-reserving default.
func ParseAdmission(s string) (AdmissionPolicy, error) {
	switch strings.ToLower(s) {
	case "", "credits":
		return AdmitCredits, nil
	case "slots":
		return AdmitSlotsOnly, nil
	case "avoid-deadlock":
		return AdmitAvoidDeadlock, nil
	case "avoid-deadlock-park":
		return AdmitAvoidDeadlockPark, nil
	default:
		return 0, fmt.Errorf("picos: unknown admission policy %q (want credits, slots, avoid-deadlock or avoid-deadlock-park)", s)
	}
}

// ParseWake resolves a consumer-chain wake order; empty means the
// prototype's last-first behaviour.
func ParseWake(s string) (WakeOrder, error) {
	switch strings.ToLower(s) {
	case "", "last-first":
		return WakeLastFirst, nil
	case "first-first":
		return WakeFirstFirst, nil
	default:
		return 0, fmt.Errorf("picos: unknown wake order %q (want last-first or first-first)", s)
	}
}

// ParseShardHash resolves an address-to-shard hash; empty means the
// xor-fold default.
func ParseShardHash(s string) (ShardHash, error) {
	switch strings.ToLower(s) {
	case "", "xor-fold":
		return ShardXorFold, nil
	case "low-bits":
		return ShardLowBits, nil
	default:
		return 0, fmt.Errorf("picos: unknown shard hash %q (want xor-fold or low-bits)", s)
	}
}

// ParseConflict resolves a DCT conflict-handling policy; empty means the
// sidetrack default.
func ParseConflict(s string) (ConflictPolicy, error) {
	switch strings.ToLower(s) {
	case "", "sidetrack":
		return ConflictSidetrack, nil
	case "block":
		return ConflictBlock, nil
	default:
		return 0, fmt.Errorf("picos: unknown conflict policy %q (want sidetrack or block)", s)
	}
}
