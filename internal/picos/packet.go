// Package picos is the core contribution of the reproduced paper: a
// cycle-level model of the Picos hardware accelerator for task and
// dependence management (Section III). The accelerator is composed of a
// Gateway (GW), N Task Reservation Stations (TRS) backed by Task Memory
// (TM0 + TMX), N Dependence Chain Trackers (DCT) backed by a Dependence
// Memory (DM, three designs) and a Version Memory (VM), an Arbiter (ARB)
// routing TRS<->DCT traffic, and a Task Scheduler (TS) holding ready
// tasks. Units communicate exclusively through registered FIFOs whose
// contents become visible one cycle after being pushed, exactly like the
// asynchronous FIFO fabric of the prototype.
package picos

import "repro/internal/trace"

// TaskHandle identifies an in-flight task: which TRS holds it and which
// TM0 slot it occupies. Slots are recycled only after the task's finish
// walk completes, so a live handle is unambiguous.
type TaskHandle struct {
	TRS  uint8
	Slot uint16
}

// VMAddr identifies a Version Memory entry: which DCT owns it and the
// entry index. Dependences are partitioned across DCTs by address, so the
// entire version chain of an address lives in a single DCT.
type VMAddr struct {
	DCT uint8
	Idx uint16
}

// newTaskPkt is the GW -> TRS dispatch of a new task (flow step N3).
type newTaskPkt struct {
	slot    uint16
	id      uint32
	numDeps uint8
}

// newDepPkt is the GW -> DCT forwarding of one dependence (N4).
type newDepPkt struct {
	task   TaskHandle
	depIdx uint8
	addr   uint64
	dir    trace.Direction
}

// depStatusPkt is the DCT -> TRS response for a registered dependence
// (N5): either a ready packet (ready=true) or a dependent packet. A
// dependent packet for a consumer chained behind another consumer carries
// the wake pointer — "dependent TRS slot" in the paper — telling the TRS
// that when this dependence wakes it must also wake wakeTask's
// dependence on the same VM entry.
type depStatusPkt struct {
	task     TaskHandle
	depIdx   uint8
	vm       VMAddr
	ready    bool
	hasWake  bool
	wakeTask TaskHandle
	// setWake updates the wake pointer of an already-registered
	// dependence instead of registering a new one (used by the
	// WakeFirstFirst ablation, where chains point forward).
	setWake bool
}

// wakePkt wakes one dependence (identified by its VM entry) of a waiting
// task. DCTs emit it when a producer finishes (waking the last consumer,
// F4) or when a version drains (waking the next producer); TRSs emit it
// through the Arbiter to propagate a consumer chain (links 2..n of
// Figure 5).
type wakePkt struct {
	task TaskHandle
	vm   VMAddr
}

// finishDepPkt is the TRS -> DCT notification that one dependence of a
// finished task can be released (F3).
type finishDepPkt struct {
	task TaskHandle
	vm   VMAddr
}

// finishedTaskPkt is the GW -> TRS notification that a task completed
// execution (F2).
type finishedTaskPkt struct {
	slot uint16
}

// readyTaskPkt is the TRS -> TS hand-off of a task whose dependences are
// all ready (N6).
type readyTaskPkt struct {
	task TaskHandle
	id   uint32
}

// ReadyTask is what the Task Scheduler hands to a worker: the task's
// trace ID plus the handle the worker must return in NotifyFinish.
type ReadyTask struct {
	Handle TaskHandle
	ID     uint32
}

// arbMsg is the Arbiter's routed message union.
type arbMsg struct {
	// kind selects the payload.
	kind arbKind
	wake wakePkt
	fin  finishDepPkt
	stat depStatusPkt
	dep  newDepPkt
}

type arbKind uint8

const (
	arbWake   arbKind = iota // TRS -> TRS or DCT -> TRS wake
	arbFin                   // TRS -> DCT finish release
	arbStat                  // DCT -> TRS dependence status
	arbNewDep                // GW -> DCT dependence fan-out (sharded fabric only)
)
