package picos

import "repro/internal/queue"

// SchedPolicy selects how the Task Scheduler orders ready tasks. The
// prototype uses a FIFO queue by default; Figure 9 evaluates a LIFO as a
// way out of the Lu wake-order corner case.
type SchedPolicy uint8

const (
	// SchedFIFO dispatches ready tasks in arrival order (the default).
	SchedFIFO SchedPolicy = iota
	// SchedLIFO dispatches the most recently readied task first.
	SchedLIFO
)

// String names the policy.
func (s SchedPolicy) String() string {
	if s == SchedLIFO {
		return "LIFO"
	}
	return "FIFO"
}

// tsUnit is the Task Scheduler: the second interface between Picos and
// the cores. It stores ready tasks and hands them to idle workers.
type tsUnit struct {
	p      *Picos
	timing *Timing
	policy SchedPolicy

	inQ regFIFO[readyTaskPkt]

	fifo queue.FIFO[stamped[ReadyTask]]
	lifo queue.Stack[stamped[ReadyTask]]

	busyUntil uint64
	busy      uint64
	hid       int32 // horizon-heap slot
}

func newTS(p *Picos) *tsUnit {
	return &tsUnit{p: p, timing: &p.cfg.Timing, policy: p.cfg.Policy}
}

// reset scrubs the unit back to its just-built state, re-reading the
// scheduling policy from the (possibly new) config.
func (u *tsUnit) reset() {
	u.policy = u.p.cfg.Policy
	u.inQ.reset()
	u.fifo.Reset()
	u.lifo.Reset()
	u.busyUntil, u.busy = 0, 0
}

func (u *tsUnit) step(now uint64) {
	for u.busyUntil <= now {
		pkt, ok := u.inQ.pop(now)
		if !ok {
			return
		}
		done := now + u.timing.TSDispatch
		u.busyUntil = done
		u.busy += u.timing.TSDispatch
		u.p.markDirty(u.hid)
		u.p.noteBusy(done)
		item := stamped[ReadyTask]{at: done + u.timing.TSPipe, v: ReadyTask{Handle: pkt.task, ID: pkt.id}}
		if u.policy == SchedLIFO {
			u.lifo.Push(item)
		} else {
			u.fifo.Push(item)
		}
	}
}

// popReady hands one dispatchable task to a worker, honouring the
// scheduling policy.
func (u *tsUnit) popReady(now uint64) (ReadyTask, bool) {
	if u.policy == SchedLIFO {
		if it, ok := u.lifo.Peek(); ok && it.at <= now {
			u.lifo.Pop()
			return it.v, true
		}
		return ReadyTask{}, false
	}
	if it, ok := u.fifo.Peek(); ok && it.at <= now {
		u.fifo.Pop()
		return it.v, true
	}
	return ReadyTask{}, false
}

// readyLen returns the number of tasks in the ready store.
func (u *tsUnit) readyLen() int { return u.fifo.Len() + u.lifo.Len() }

// nextEvent returns the earliest cycle at which the TS can queue its
// next ready task.
func (u *tsUnit) nextEvent() (uint64, bool) {
	at, ok := u.inQ.headAt()
	if !ok {
		return 0, false
	}
	return max(at, u.busyUntil), true
}

// nextReadyAt returns the cycle the current dispatch candidate becomes
// poppable: the head of the FIFO or the top of the LIFO, exactly the
// element popReady inspects. Items below the LIFO top do not gate
// dispatch even if their stamps are older, mirroring popReady.
func (u *tsUnit) nextReadyAt() (uint64, bool) {
	if u.policy == SchedLIFO {
		if it, ok := u.lifo.Peek(); ok {
			return it.at, true
		}
		return 0, false
	}
	if it, ok := u.fifo.Peek(); ok {
		return it.at, true
	}
	return 0, false
}

func (u *tsUnit) active(now uint64) bool {
	return u.busyUntil > now || !u.inQ.empty()
}
