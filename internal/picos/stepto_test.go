package picos

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestStepToPanicsWhenBusy: fast-forwarding while units have pending
// work would silently skip scheduled cycles; the model must refuse.
func TestStepToPanicsWhenBusy(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(0, []trace.Dep{{Addr: 0x40, Dir: trace.Out}}); err != nil {
		t.Fatal(err)
	}
	// The submission sits in the GW new-task queue: not idle.
	if p.Idle() {
		t.Fatal("accelerator idle right after Submit")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("StepTo on a busy accelerator did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "StepTo") || !strings.Contains(msg, "Idle") {
			t.Fatalf("panic message %v does not explain the misuse", r)
		}
	}()
	p.StepTo(1000)
}

// TestStepToIdleAdvances: on an idle accelerator StepTo is a legal
// fast-forward, and a target in the past is a no-op rather than a
// rewind or a panic.
func TestStepToIdleAdvances(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.StepTo(100)
	if p.Now() != 100 {
		t.Fatalf("now = %d, want 100", p.Now())
	}
	p.StepTo(50) // no-op, even though the accelerator state is untestable at 50
	if p.Now() != 100 {
		t.Fatal("StepTo rewound the clock")
	}
	// Drain the submission through the pipeline, then fast-forward again.
	if err := p.Submit(1, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000 && !p.Idle(); i++ {
		p.Step()
	}
	if !p.Idle() {
		t.Fatal("accelerator never drained")
	}
	before := p.Now()
	p.StepTo(before + 500)
	if p.Now() != before+500 {
		t.Fatalf("now = %d, want %d", p.Now(), before+500)
	}
}
