// Package sim is a miniature of the real registry: a Spec of knobs, an
// engine interface and a Register function, for exercising the
// specknob analyzer.
package sim

// Spec declares one run.
type Spec struct {
	Engine   string
	Workload string
	Workers  int
	Depth    int
	Wake     string // want `sim\.Spec\.Wake is not bound by any CLI flag`
	Debug    *bool
}

// DebugOn resolves the Debug knob; engines calling it are credited with
// reading Debug.
func (s Spec) DebugOn() bool { return s.Debug != nil && *s.Debug }
