package picos

import (
	"testing"

	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// runResult records the schedule a test run produced.
type runResult struct {
	p      *Picos
	start  []uint64
	finish []uint64
	order  []uint32 // task IDs in execution start order
}

// runTrace drives a Picos instance through a complete trace with the
// given number of workers, in HW-only style: all tasks submitted up
// front, finished tasks notified as workers complete. It fails the test
// on watchdog expiry (no forward progress).
func runTrace(t *testing.T, tr *trace.Trace, cfg Config, workers int) *runResult {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Tasks {
		p.Submit(tr.Tasks[i].ID, tr.Tasks[i].Deps)
	}
	r := &runResult{
		p:      p,
		start:  make([]uint64, len(tr.Tasks)),
		finish: make([]uint64, len(tr.Tasks)),
	}
	type worker struct {
		until  uint64
		task   ReadyTask
		active bool
	}
	ws := make([]worker, workers)
	done := 0
	lastProgress := uint64(0)
	const watchdog = 50_000_000
	for done < len(tr.Tasks) || !p.Idle() {
		now := p.Now()
		for i := range ws {
			if ws[i].active && ws[i].until <= now {
				p.NotifyFinish(ws[i].task.Handle)
				ws[i].active = false
				done++
				lastProgress = now
			}
		}
		for i := range ws {
			if ws[i].active {
				continue
			}
			rt, ok := p.PopReady()
			if !ok {
				break
			}
			dur := tr.Tasks[rt.ID].Duration
			ws[i] = worker{until: now + dur, task: rt, active: true}
			r.start[rt.ID] = now
			r.finish[rt.ID] = now + dur
			r.order = append(r.order, rt.ID)
			lastProgress = now
		}
		// Fast-forward across idle stretches: nothing changes until the
		// next worker completes.
		if p.Idle() && p.ReadyCount() == 0 {
			next := uint64(0)
			for i := range ws {
				if ws[i].active && (next == 0 || ws[i].until < next) {
					next = ws[i].until
				}
			}
			if next > now+1 {
				p.StepTo(next)
				continue
			}
		}
		p.Step()
		if p.Now()-lastProgress > watchdog {
			t.Fatalf("watchdog: no progress since cycle %d (now %d, done %d/%d, inflight %d, ready %d)",
				lastProgress, p.Now(), done, len(tr.Tasks), p.InFlight(), p.ReadyCount())
		}
	}
	return r
}

// verify checks the run against the dependence oracle and the drain
// invariants.
func (r *runResult) verify(t *testing.T, tr *trace.Trace) {
	t.Helper()
	g := taskgraph.Build(tr)
	if err := g.CheckSchedule(r.start, r.finish); err != nil {
		t.Fatalf("illegal schedule: %v", err)
	}
	if err := r.p.Drained(); err != nil {
		t.Fatalf("drain check: %v", err)
	}
	if len(r.order) != len(tr.Tasks) {
		t.Fatalf("executed %d tasks, trace has %d", len(r.order), len(tr.Tasks))
	}
}

// makespan returns the finish time of the last task.
func (r *runResult) makespan() uint64 {
	var m uint64
	for _, f := range r.finish {
		if f > m {
			m = f
		}
	}
	return m
}
