package paperref

import (
	"bytes"
	"strings"
	"testing"
)

func TestCompareBands(t *testing.T) {
	cases := []struct {
		got, want, tol, slack float64
		v                     Verdict
	}{
		{100, 100, 0.1, 0, Match},
		{109, 100, 0.1, 0, Match},
		{115, 100, 0.1, 0, Near},
		{125, 100, 0.1, 0, Diverge},
		{3, 0, 0.1, 5, Match},    // absolute slack floor
		{8, 0, 0.1, 5, Near},     // within twice the slack
		{50, 0, 0.1, 5, Diverge}, // way off a zero reference
		{0, 0, 0.1, 0, Match},
	}
	for i, c := range cases {
		if got := Compare(c.got, c.want, c.tol, c.slack); got != c.v {
			t.Errorf("case %d: Compare(%v,%v) = %v, want %v", i, c.got, c.want, got, c.v)
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	if Match.String() != "ok" || Near.String() != "~" || Diverge.String() != "DIVERGES" {
		t.Fatal("verdict strings changed")
	}
}

func TestReferenceTablesComplete(t *testing.T) {
	if len(TableI) != 20 {
		t.Fatalf("Table I has %d rows, want 20", len(TableI))
	}
	if len(TableII) != 8 {
		t.Fatalf("Table II has %d rows, want 8", len(TableII))
	}
	if len(TableIII) != 10 {
		t.Fatalf("Table III has %d rows, want 10", len(TableIII))
	}
	if len(TableIV) != 3 {
		t.Fatalf("Table IV has %d modes, want 3", len(TableIV))
	}
	// Spot checks against the paper text.
	if TableII[1].DM8 != 1022 || TableII[1].DMP8 != 757 {
		t.Fatal("heat/64 Table II row mistranscribed")
	}
	if TableIV[2].ThrTask[0] != 2729 {
		t.Fatal("Full-system Case1 thrTask mistranscribed")
	}
	// Internal consistency: avg size * tasks within 25% of seq cycles.
	for _, r := range TableI {
		prod := r.AvgSize * float64(r.Tasks)
		if prod < 0.7*r.SeqCycles || prod > 1.4*r.SeqCycles {
			t.Errorf("%s/%d: avg*tasks %.3g inconsistent with seq %.3g", r.App, r.Block, prod, r.SeqCycles)
		}
	}
}

func TestReport(t *testing.T) {
	var r Report
	r.Add("Table X", "cell a", 100, 100, 0.1, 0)
	r.Add("Table X", "cell b", 200, 100, 0.1, 0)
	r.Add("Table Y", "cell c", 0, 0, 0.1, 1)
	m, n, d := r.Counts()
	if m != 2 || n != 0 || d != 1 {
		t.Fatalf("counts = %d/%d/%d", m, n, d)
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### Table X", "### Table Y", "DIVERGES", "2 cells match"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDelta(t *testing.T) {
	if got := Delta(110, 100); !strings.Contains(got, "+10%") {
		t.Fatalf("Delta = %q", got)
	}
	if got := Delta(5, 0); !strings.Contains(got, "vs 0") {
		t.Fatalf("Delta = %q", got)
	}
}
