package experiments

import (
	"strconv"

	"repro/internal/asciiplot"
)

// Chart converts a numeric sweep table (first column = x axis, remaining
// columns = one series each) into an ASCII chart, or nil when the table
// is not chartable (non-numeric first column, fewer than two rows).
func (t *Table) Chart() *asciiplot.Chart {
	if len(t.Rows) < 2 || len(t.Header) < 2 {
		return nil
	}
	c := &asciiplot.Chart{Title: t.Title, XLabel: t.Header[0]}
	for col := 1; col < len(t.Header); col++ {
		s := asciiplot.Series{Label: t.Header[col]}
		for _, row := range t.Rows {
			if col >= len(row) {
				continue
			}
			x, errX := strconv.ParseFloat(row[0], 64)
			y, errY := strconv.ParseFloat(row[col], 64)
			if errX != nil || errY != nil {
				continue
			}
			s.Points = append(s.Points, asciiplot.Point{X: x, Y: y})
		}
		if len(s.Points) >= 2 {
			c.Series = append(c.Series, s)
		}
	}
	if len(c.Series) == 0 {
		return nil
	}
	return c
}
