package sim

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/patterns"
	"repro/internal/synth"
	"repro/internal/trace"
)

// WorkloadFunc builds a trace from a spec. The spec carries the sizing
// knobs (Problem, Block); builders that do not take parameters ignore
// it.
type WorkloadFunc func(spec Spec) (*trace.Trace, error)

// TracePrefix marks a workload name as a serialized trace file:
// "trace:heat.bin" reads heat.bin instead of consulting the registry.
const TracePrefix = "trace:"

// PatternPrefix marks a workload name as a parameterized dependence-
// pattern family: "pattern:stencil_1d?width=64&steps=100" builds a
// task-bench-style grid through internal/patterns. The parameters ride
// inside the workload name, so sweeps, grids and the trace-sharing cache
// treat every parameterization as a distinct workload with no extra
// plumbing.
const PatternPrefix = "pattern:"

// RegisterWorkload adds a workload builder to the registry. Like
// Register, it panics on an empty or duplicate name.
func RegisterWorkload(name string, fn WorkloadFunc) {
	if name == "" {
		panic("sim: RegisterWorkload called with an empty name")
	}
	if strings.HasPrefix(name, TracePrefix) {
		panic("sim: workload name must not start with " + TracePrefix)
	}
	if strings.HasPrefix(name, PatternPrefix) {
		panic("sim: workload name must not start with " + PatternPrefix)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := workloads[name]; dup {
		panic("sim: duplicate workload registration: " + name)
	}
	workloads[name] = fn
}

// Workloads lists the registered workload names, sorted.
func Workloads() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuildWorkload resolves and builds the spec's workload: a "trace:<path>"
// file, a "pattern:<family>?k=v" parameterized dependence pattern, or a
// registry entry. The built trace is validated before it is returned.
func BuildWorkload(spec Spec) (*trace.Trace, error) {
	name := spec.Workload
	if path, ok := strings.CutPrefix(name, TracePrefix); ok {
		return readTraceFile(path)
	}
	if rest, ok := strings.CutPrefix(name, PatternPrefix); ok {
		p, err := patterns.Parse(rest)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		return patterns.Build(p)
	}
	regMu.RLock()
	fn, ok := workloads[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sim: unknown workload %q (have %s; %s<path>; or %s<family>?width=..&steps=.. with families %s)",
			name, strings.Join(Workloads(), ", "), TracePrefix, PatternPrefix,
			strings.Join(patterns.Families(), ", "))
	}
	tr, err := fn(spec)
	if err != nil {
		return nil, fmt.Errorf("sim: workload %s: %w", name, err)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("sim: workload %s built an invalid trace: %w", name, err)
	}
	return tr, nil
}

// BuildWorkloadSource resolves the spec's workload as a streaming
// trace.Source. Pattern workloads generate lazily (internal/patterns
// never materializes the grid; the dagfile family streams its JSON node
// array under a Spec.Window retention bound). Trace files and registry
// workloads — which are materialized by nature (a serialized file, a
// generator that builds whole benchmark traces) — are built whole and
// wrapped, keeping the Source contract uniform for callers even where
// the memory bound cannot apply.
func BuildWorkloadSource(spec Spec) (trace.Source, error) {
	name := spec.Workload
	if rest, ok := strings.CutPrefix(name, PatternPrefix); ok {
		p, err := patterns.Parse(rest)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		src, err := patterns.Generate(p, spec.Window)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		return src, nil
	}
	tr, err := BuildWorkload(spec)
	if err != nil {
		return nil, err
	}
	return trace.FromTrace(tr), nil
}

func readTraceFile(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return nil, fmt.Errorf("sim: trace file %s: %w", path, err)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("sim: trace file %s invalid: %w", path, err)
	}
	return tr, nil
}

// The built-in workloads: the six real benchmarks of Table I (mlu is the
// modified-creation-order Lu variant of Figure 9) and the seven
// synthetic capacity cases of Table IV.
func init() {
	for _, app := range []apps.App{apps.Heat, apps.Lu, apps.MLu, apps.SparseLu, apps.Cholesky, apps.H264Dec} {
		RegisterWorkload(string(app), appWorkload(app))
	}
	for c := 1; c <= 7; c++ {
		RegisterWorkload(fmt.Sprintf("case%d", c), caseWorkload(c))
	}
}

func appWorkload(app apps.App) WorkloadFunc {
	return func(spec Spec) (*trace.Trace, error) {
		problem, block := spec.Problem, spec.Block
		if problem == 0 {
			problem = apps.DefaultProblem
			if app == apps.H264Dec {
				problem = 10 // HD frames, the paper's h264dec input
			}
		}
		if block == 0 {
			block = 128
			if app == apps.H264Dec {
				block = 4 // macroblock grouping
			}
		}
		res, err := apps.Generate(app, problem, block)
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	}
}

func caseWorkload(c int) WorkloadFunc {
	return func(Spec) (*trace.Trace, error) { return synth.Case(c) }
}
