package fidelity

import (
	"bytes"
	"testing"
)

// TestFastReportByteStable locks the determinism the repository
// promises end to end: building the fast fidelity report twice — two
// full simulation sweeps plus two renders — must produce byte-identical
// markdown. Any nondeterministic source in the engines or any
// map-iteration-order dependence in the renderer shows up here as a
// byte diff long before it corrupts a golden file. (The static half of
// the same guarantee is enforced at the source level by picoslint's
// determinism analyzer.)
func TestFastReportByteStable(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fidelity comparisons skipped in -short mode")
	}
	render := func() []byte {
		rep, err := Compare(Options{SkipFig11: true})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		a, b := first, second
		for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
			a, b = a[1:], b[1:]
		}
		t.Fatalf("fidelity report differs between two identical runs near %q vs %q",
			trimTo(a, 80), trimTo(b, 80))
	}
}

func trimTo(b []byte, n int) []byte {
	if len(b) > n {
		return b[:n]
	}
	return b
}
