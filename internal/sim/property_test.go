package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"

	_ "repro/internal/engines"
)

// randomTrace builds a seeded random task graph: tasks touch addresses
// drawn from a small pool (so version chains, consumer chains and DM
// sharing all occur), with random directions, up to MaxDeps dependences
// and no duplicate address within one task.
func randomTrace(r *rand.Rand, idx int) *trace.Trace {
	nTasks := 10 + r.Intn(70)
	nAddrs := 4 + r.Intn(24)
	addrs := make([]uint64, nAddrs)
	for i := range addrs {
		// Block-aligned addresses, as real traces have.
		addrs[i] = uint64(r.Intn(1<<20)) << 7
	}
	tr := &trace.Trace{Name: fmt.Sprintf("random-%d", idx)}
	for id := 0; id < nTasks; id++ {
		nDeps := r.Intn(trace.MaxDeps + 1)
		if nDeps > nAddrs {
			nDeps = nAddrs
		}
		perm := r.Perm(nAddrs)[:nDeps]
		task := trace.Task{ID: uint32(id), Duration: 1 + uint64(r.Intn(2000))}
		for _, ai := range perm {
			task.Deps = append(task.Deps, trace.Dep{
				Addr: addrs[ai],
				Dir:  trace.Direction(r.Intn(3)),
			})
		}
		tr.Tasks = append(tr.Tasks, task)
	}
	// Half of the graphs carry task kinds (a small kernel vocabulary with
	// some tasks left unkinded), so kind-affine worker classes and the
	// locality policy have something to bind to.
	if idx%2 == 1 {
		kinds := []string{"ka", "kb", "kc"}
		for id := range tr.Tasks {
			if r.Intn(4) > 0 {
				tr.Tasks[id].Kind = tr.KindID(kinds[r.Intn(len(kinds))])
			}
		}
	}
	return tr
}

// TestRandomGraphProperties drives ~200 seeded random task graphs
// through the Picos engines and checks the invariants that must hold on
// every schedule:
//
//   - no task is lost or duplicated: the start order is a permutation
//     of the task set, and TasksSubmitted == TasksCompleted
//   - the schedule respects the dependence oracle
//   - the accelerated makespan is never better than the zero-overhead
//     perfect scheduler's on the same worker count
//   - every N-th graph is additionally replayed on the cycle-stepped
//     reference loop and must agree byte-for-byte (a randomized
//     extension of the fixed equivalence matrix)
func TestRandomGraphProperties(t *testing.T) {
	const graphs = 200
	r := rand.New(rand.NewSource(0x9105))
	for g := 0; g < graphs; g++ {
		tr := randomTrace(r, g)
		if err := tr.Validate(); err != nil {
			t.Fatalf("graph %d: generator built an invalid trace: %v", g, err)
		}
		workers := 1 + r.Intn(16)
		engine := []string{"picos-hw", "picos-comm", "picos-full"}[g%3]
		spec := sim.Spec{Engine: engine, Workers: workers}
		// Every third graph runs on a sharded fabric (alternating 2 and 4
		// shards, the 4-shard lane under the low-bits hash), so the
		// invariants — and the g%16 byte-identity replays that land on
		// these graphs — cover NumDCT > 1 too.
		if g%3 == 2 {
			spec.NumDCT = []int{2, 4}[(g/3)%2]
			if spec.NumDCT == 4 {
				spec.ShardHash = "low-bits"
			}
		}
		// Every fourth graph runs on a heterogeneous platform: rotating
		// class mixes (multipliers, an affinity class backed by an
		// unrestricted one) x grant policies, with stealing on every other
		// hetero graph. Workers stays zero — the class list fixes the
		// count — and the roofline below is re-run with the same classes.
		if g%4 == 3 {
			spec.Workers = 0
			spec.WorkerClasses = []string{
				"5xfast+3xslow:2",
				"2xturbo:0.5+6xbase",
				"4xa@ka+4xb:1.5",
				"3xfast+3xmid:1.5+2xslow:3",
			}[(g/4)%4]
			spec.Sched = []string{"fifo", "priority", "locality", "lifo"}[(g/4)%4]
			spec.Steal = g%8 == 7
		}

		res, err := sim.RunTrace(tr, spec)
		if err != nil {
			t.Fatalf("graph %d on %s: %v", g, engine, err)
		}
		n := len(tr.Tasks)
		if res.Stats == nil {
			t.Fatalf("graph %d: missing stats", g)
		}
		if res.Stats.TasksSubmitted != uint64(n) || res.Stats.TasksCompleted != uint64(n) {
			t.Fatalf("graph %d on %s: %d tasks, submitted %d, completed %d",
				g, engine, n, res.Stats.TasksSubmitted, res.Stats.TasksCompleted)
		}
		if len(res.Order) != n {
			t.Fatalf("graph %d on %s: %d tasks but %d dispatches", g, engine, n, len(res.Order))
		}
		seen := make([]bool, n)
		for _, id := range res.Order {
			if int(id) >= n || seen[id] {
				t.Fatalf("graph %d on %s: task %d dispatched twice or unknown", g, engine, id)
			}
			seen[id] = true
		}
		if err := sim.Verify(tr, res); err != nil {
			t.Fatalf("graph %d on %s: schedule violates dependences: %v", g, engine, err)
		}

		perfSpec := sim.Spec{Engine: "perfect", Workers: workers}
		if spec.WorkerClasses != "" {
			perfSpec.Workers = 0
			perfSpec.WorkerClasses = spec.WorkerClasses
		}
		perfect, err := sim.RunTrace(tr, perfSpec)
		if err != nil {
			t.Fatalf("graph %d on perfect: %v", g, err)
		}
		if res.Makespan < perfect.Makespan {
			t.Fatalf("graph %d on %s: makespan %d beats the zero-overhead roofline %d",
				g, engine, res.Makespan, perfect.Makespan)
		}

		if g%16 == 0 {
			refSpec := spec
			refSpec.FastForward = sim.Bool(false)
			ref, err := sim.RunTrace(tr, refSpec)
			if err != nil {
				t.Fatalf("graph %d reference on %s: %v", g, engine, err)
			}
			if fj, rj := resultJSON(t, res), resultJSON(t, ref); fj != rj {
				t.Fatalf("graph %d on %s: fast path diverges from reference\nfast: %s\nref:  %s", g, engine, fj, rj)
			}
		}

		// Every eighth graph (offset to land on homogeneous and sharded
		// lanes but never the hetero lane, whose rotating policies
		// include the priority scheduler streaming refuses) replays
		// through a bounded descriptor window: the streamed run must
		// complete every task under the window backpressure, keep no
		// whole-graph schedule arrays, and its fast path must agree
		// byte-for-byte with the streamed cycle-stepped reference.
		if g%8 == 2 {
			win := []int{2, 16, 256}[(g/8)%3]
			wSpec := spec
			wSpec.Window = win
			ws, err := sim.RunTrace(tr, wSpec)
			if err != nil {
				t.Fatalf("graph %d window=%d on %s: %v", g, win, engine, err)
			}
			if ws.Stats == nil || ws.Stats.TasksCompleted != uint64(n) {
				t.Fatalf("graph %d window=%d on %s: %d tasks, stats %+v", g, win, engine, n, ws.Stats)
			}
			if ws.Order != nil || ws.Start != nil || ws.Finish != nil {
				t.Fatalf("graph %d window=%d on %s: streamed run kept whole-graph schedule arrays", g, win, engine)
			}
			wRef := wSpec
			wRef.FastForward = sim.Bool(false)
			wr, err := sim.RunTrace(tr, wRef)
			if err != nil {
				t.Fatalf("graph %d window=%d reference on %s: %v", g, win, engine, err)
			}
			if wj, rj := resultJSON(t, ws), resultJSON(t, wr); wj != rj {
				t.Fatalf("graph %d window=%d on %s: streamed fast path diverges from reference\nfast: %s\nref:  %s", g, win, engine, wj, rj)
			}
		}
	}
}

// TestClockNeverRewinds drives a Picos-like sequence of RunTo/StepTo
// calls through the sim layer indirectly and the picos API directly via
// the hil engines; the direct unit-level checks live in
// internal/picos/fastpath_test.go. Here we assert the schedule arrays
// are monotonic per task: finish >= start for every task, and no start
// precedes the first submission cycle.
func TestClockNeverRewinds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr := randomTrace(r, 0)
	for _, engine := range []string{"picos-hw", "picos-comm", "picos-full"} {
		res, err := sim.RunTrace(tr, sim.Spec{Engine: engine})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		for id := range res.Start {
			if res.Finish[id] < res.Start[id] {
				t.Fatalf("%s: task %d finishes at %d before starting at %d", engine, id, res.Finish[id], res.Start[id])
			}
		}
	}
}
