package picos

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

// sameSetDeps returns n dependences whose addresses all hash to DM set
// 0 under the direct low-bits index (multiples of 256: addr>>2 is a
// multiple of 64).
func sameSetDeps(n int) []trace.Dep {
	deps := make([]trace.Dep, n)
	for i := range deps {
		deps[i] = trace.Dep{Addr: uint64(i+1) * 256, Dir: trace.In}
	}
	return deps
}

// TestSubmitRefusesUnadmittable: under the avoid-deadlock admission
// policies, Submit computes at submit time whether the dependence set
// can fit any DM set — 9 same-set addresses on an 8-way DM cannot — and
// refuses with the typed ErrUnadmittable without queueing anything. The
// default credits policy performs no such check and accepts the same
// task (it would wedge later, which is exactly the hazard the policy
// exists to avoid).
func TestSubmitRefusesUnadmittable(t *testing.T) {
	overfull := sameSetDeps(9)
	fits := sameSetDeps(8)

	for _, adm := range []AdmissionPolicy{AdmitAvoidDeadlock, AdmitAvoidDeadlockPark} {
		cfg := DefaultConfig()
		cfg.Design = DM8Way
		cfg.Admission = adm
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Submit(0, overfull); !errors.Is(err, ErrUnadmittable) {
			t.Errorf("%v: 9 same-set deps on 8 ways: got %v, want ErrUnadmittable", adm, err)
		}
		if p.stats.TasksSubmitted != 0 {
			t.Errorf("%v: refused task was counted as submitted", adm)
		}
		if err := p.Submit(1, fits); err != nil {
			t.Errorf("%v: 8 same-set deps fit 8 ways, got %v", adm, err)
		}
	}

	cfg := DefaultConfig()
	cfg.Design = DM8Way
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(0, overfull); err != nil {
		t.Errorf("credits admission has no feasibility check, got %v", err)
	}
}

// TestUnadmittableRespectsHashAndSharding: the feasibility check must
// use the configured hash (P+8way's Pearson fold spreads the aligned
// addresses that collide under the direct index) and the shard map (on
// a sharded fabric only same-shard collisions contend for ways).
func TestUnadmittableRespectsHashAndSharding(t *testing.T) {
	overfull := sameSetDeps(9)

	cfg := DefaultConfig() // P+8way
	cfg.Admission = AdmitAvoidDeadlock
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(0, overfull); err != nil {
		t.Errorf("P+8way spreads the aligned set, got %v", err)
	}

	cfg = DefaultConfig()
	cfg.Design = DM8Way
	cfg.Admission = AdmitAvoidDeadlock
	cfg.NumDCT = 4
	p, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The xor-fold shard hash distributes the 9 aligned addresses over
	// the 4 shards, so no single shard's set sees more than 8 of them.
	if err := p.Submit(0, overfull); err != nil {
		t.Errorf("4-shard fabric splits the set demand, got %v", err)
	}
}
