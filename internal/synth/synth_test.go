package synth

import (
	"testing"

	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func getCase(t *testing.T, n int) *trace.Trace {
	t.Helper()
	tr, err := Case(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("case%d invalid: %v", n, err)
	}
	return tr
}

// TestTableIVDepRow checks the #d1st/avg#d row of Table IV:
// 0/0, 1/1, 15/15, 1/1, 2/2, 11/2, 11/11.
func TestTableIVDepRow(t *testing.T) {
	want := []struct {
		d1st int
		avg  float64
	}{
		{0, 0}, {1, 1}, {15, 15}, {1, 1}, {2, 2}, {11, 2}, {11, 11},
	}
	for n := 1; n <= 7; n++ {
		tr := getCase(t, n)
		if len(tr.Tasks) != NumTasks {
			t.Errorf("case%d: %d tasks, want %d", n, len(tr.Tasks), NumTasks)
		}
		d1 := len(tr.Tasks[0].Deps)
		avg := float64(tr.NumDeps()) / float64(len(tr.Tasks))
		if d1 != want[n-1].d1st {
			t.Errorf("case%d: first task has %d deps, want %d", n, d1, want[n-1].d1st)
		}
		if avg != want[n-1].avg {
			t.Errorf("case%d: avg deps %.2f, want %.2f", n, avg, want[n-1].avg)
		}
		for i := range tr.Tasks {
			if tr.Tasks[i].Duration != TaskLen {
				t.Fatalf("case%d task %d duration %d, want %d", n, i, tr.Tasks[i].Duration, TaskLen)
			}
		}
	}
}

func TestIndependentCasesHaveNoEdges(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		g := taskgraph.Build(getCase(t, n))
		if g.NumEdges() != 0 {
			t.Errorf("case%d: %d edges, want 0", n, g.NumEdges())
		}
		if g.MaxParallelism() != NumTasks {
			t.Errorf("case%d: parallelism %d, want %d", n, g.MaxParallelism(), NumTasks)
		}
	}
}

func TestCase4IsAChain(t *testing.T) {
	g := taskgraph.Build(getCase(t, 4))
	if g.Depth() != NumTasks {
		t.Fatalf("case4 depth %d, want %d", g.Depth(), NumTasks)
	}
	if g.MaxParallelism() != 1 {
		t.Fatalf("case4 parallelism %d, want 1", g.MaxParallelism())
	}
	if g.NumEdges() != NumTasks-1 {
		t.Fatalf("case4 edges %d, want %d", g.NumEdges(), NumTasks-1)
	}
}

func TestCase5FanOut(t *testing.T) {
	g := taskgraph.Build(getCase(t, 5))
	// Every set: producer (task 10s) feeds 9 consumers.
	for s := 0; s < 10; s++ {
		p := 10 * s
		if len(g.Succ[p]) != 9 {
			t.Fatalf("set %d: producer has %d successors, want 9", s, len(g.Succ[p]))
		}
		for c := p + 1; c < p+10; c++ {
			if len(g.Pred[c]) != 1 || int(g.Pred[c][0]) != p {
				t.Fatalf("consumer %d preds = %v, want [%d]", c, g.Pred[c], p)
			}
		}
	}
}

func TestCase6FanIn(t *testing.T) {
	g := taskgraph.Build(getCase(t, 6))
	// Round 0 consumer is a root; later consumers collect the 9 producers
	// of the previous round.
	if len(g.Pred[0]) != 0 {
		t.Fatalf("round-0 consumer has preds %v", g.Pred[0])
	}
	for s := 1; s < 10; s++ {
		c := 10 * s
		if len(g.Pred[c]) != 9 {
			t.Fatalf("round %d consumer has %d preds, want 9", s, len(g.Pred[c]))
		}
	}
}

func TestCase7MixedChains(t *testing.T) {
	tr := getCase(t, 7)
	g := taskgraph.Build(tr)
	// Within a set, tasks sharing addresses with alternating directions
	// must serialize heavily: depth per set should be close to the set
	// size, and sets are mutually independent (different address spaces).
	if g.Depth() < 8 {
		t.Fatalf("case7 depth %d, want >= 8 within a set", g.Depth())
	}
	// Tasks in different sets share no addresses: no cross-set edge.
	for i := 0; i < g.N; i++ {
		for _, s := range g.Succ[i] {
			if i/10 != int(s)/10 {
				t.Fatalf("cross-set edge %d -> %d", i, s)
			}
		}
	}
}

func TestCaseErrors(t *testing.T) {
	if _, err := Case(0); err == nil {
		t.Fatal("Case(0) accepted")
	}
	if _, err := Case(8); err == nil {
		t.Fatal("Case(8) accepted")
	}
}

func TestCasesReturnsAllSeven(t *testing.T) {
	cs := Cases()
	if len(cs) != 7 {
		t.Fatalf("Cases() returned %d traces", len(cs))
	}
	for i, tr := range cs {
		if tr == nil || len(tr.Tasks) != NumTasks {
			t.Fatalf("case %d malformed", i+1)
		}
	}
}
