package taskgraph

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestIncrementalMatchesBuild locks the streaming analysis to the
// whole-trace oracle: feeding every task of a trace through Incremental
// in creation order must reproduce Build's Pred lists entry for entry —
// same edges, same dedup, same ascending order.
func TestIncrementalMatchesBuild(t *testing.T) {
	var traces []*trace.Trace
	for n := 1; n <= 7; n++ {
		tr, err := synth.Case(n)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	for _, app := range []apps.App{apps.Cholesky, apps.SparseLu} {
		res, err := apps.Generate(app, 1024, 128)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, res.Trace)
	}

	inc := NewIncremental()
	for _, tr := range traces {
		g := Build(tr)
		inc.Reset()
		for i := range tr.Tasks {
			got := inc.Preds(int32(i), tr.Tasks[i].Deps)
			want := g.Pred[i]
			if len(got) != len(want) {
				t.Fatalf("%s task %d: preds %v, want %v", tr.Name, i, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s task %d: preds %v, want %v", tr.Name, i, got, want)
				}
			}
		}
	}
}

// TestIncrementalReset checks that a reused analysis carries no address
// state across Reset: the same trace analyzed twice gives the same
// answer both times.
func TestIncrementalReset(t *testing.T) {
	tr, err := synth.Case(4)
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental()
	var firstRun [][]int32
	for i := range tr.Tasks {
		p := inc.Preds(int32(i), tr.Tasks[i].Deps)
		firstRun = append(firstRun, append([]int32(nil), p...))
	}
	inc.Reset()
	for i := range tr.Tasks {
		got := inc.Preds(int32(i), tr.Tasks[i].Deps)
		want := firstRun[i]
		if len(got) != len(want) {
			t.Fatalf("task %d after Reset: preds %v, want %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("task %d after Reset: preds %v, want %v", i, got, want)
			}
		}
	}
}
