//go:build !race

// Allocation-regression lock for the warm sweep hot path. The race
// detector changes allocation behaviour, so this only builds without it.

package sim_test

import (
	"testing"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

// maxWarmRunTraceAllocs bounds a warm sim.RunTrace iteration on a
// pooled Picos engine. The steady-state cost is only what escapes into
// the Result — the start/finish/order schedule arrays, the Result and
// stats values, and the per-unit busy snapshot — roughly ten
// allocations; everything else (accelerator memories, FIFOs, worker
// heaps, the horizon heap) is pool-reused. Headroom covers pool misses
// when a GC lands mid-measurement.
const maxWarmRunTraceAllocs = 24

// TestWarmRunTraceAllocs locks the steady-state allocation count of a
// warm sweep iteration: build the trace once, then re-run it through
// the pooled engine as Sweep does per grid point.
func TestWarmRunTraceAllocs(t *testing.T) {
	spec := sim.Spec{Engine: "picos-hw", Workload: "case2"}.WithDefaults()
	tr, err := sim.BuildWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := sim.RunTrace(tr, spec); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the engine pool and grow every buffer to steady state
	run()
	if avg := testing.AllocsPerRun(50, run); avg > maxWarmRunTraceAllocs {
		t.Errorf("warm RunTrace allocates %.1f times per run; lock is %d", avg, maxWarmRunTraceAllocs)
	}
}
