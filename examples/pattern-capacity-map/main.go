// Pattern capacity map: sweep the parameterized dependence-pattern
// families (internal/patterns) against the three Dependence Memory
// designs and the three Picos integration modes, render the result as
// ASCII heatmaps of DM conflicts, stall cycles and speedup-vs-perfect,
// and emit the machine-readable BENCH_patterns.json. Deadlocking grid
// points (the wide families under worst-case aligned clustering on the
// 8-way direct hash) surface as wedged cells, not errors.
//
// The JSON also carries the shard-capacity lane (cells with a non-zero
// num_dct — the same families under a sharded DCT fabric, where the
// design's capacity is partitioned across shards) and the
// hetero-scaling lane (cells with a non-empty classes field —
// heterogeneous worker-class mixes x grant policies x stealing against
// the class-weighted perfect roofline) and the resilience lane (cells
// with a non-empty fault_plan or recovery field — deterministic AXI
// drop rates x recovery policies with the software runtime as control
// arm) and the wedge-frontier lane (cells with non-zero fields/k — the
// dependence-fan sweep that charts where each DM design deadlocks under
// worst-case address clustering). This example is the single producer
// of BENCH_patterns.json; the extra lanes render standalone via
// examples/shard-capacity, examples/hetero-scaling, examples/resilience
// and examples/wedge-frontier.
//
//	go run ./examples/pattern-capacity-map            # full map + JSON
//	go run ./examples/pattern-capacity-map -quick     # reduced grid
//	go run ./examples/pattern-capacity-map -out ""    # skip the JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced grid (fewer families, picos-hw only)")
	out := flag.String("out", "BENCH_patterns.json", "write the capacity cells as JSON here (empty: skip)")
	flag.Parse()

	opt := experiments.Options{Quick: *quick}
	cells, err := experiments.CapacityMapData(opt)
	if err != nil {
		log.Fatal(err)
	}

	for _, t := range experiments.CapacityTables(cells) {
		if err := t.Fprint(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	for _, hm := range experiments.CapacityHeatmaps(cells) {
		if err := hm.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// The shard-capacity and hetero-scaling lanes ride along in the same
	// JSON, keeping this example the single producer of
	// BENCH_patterns.json. They render standalone via
	// examples/shard-capacity and examples/hetero-scaling; here they are
	// data only.
	shardCells, err := experiments.ShardCapacityData(opt)
	if err != nil {
		log.Fatal(err)
	}
	cells = append(cells, shardCells...)
	heteroCells, err := experiments.HeteroScalingData(opt)
	if err != nil {
		log.Fatal(err)
	}
	cells = append(cells, heteroCells...)
	resilienceCells, err := experiments.ResilienceData(opt)
	if err != nil {
		log.Fatal(err)
	}
	cells = append(cells, resilienceCells...)
	wedgeCells, err := experiments.WedgeFrontierData(opt)
	if err != nil {
		log.Fatal(err)
	}
	cells = append(cells, wedgeCells...)

	wedged := 0
	for _, c := range cells {
		if c.Wedged {
			wedged++
		}
	}
	fmt.Printf("%d grid points, %d wedged (proven deadlocks, reported structurally)\n", len(cells), wedged)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cells); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
