package sim

// Engine is one registered execution model.
type Engine interface {
	Name() string
	Run(spec Spec) int
}

var engines = map[string]Engine{}

// Register adds an engine to the registry.
func Register(e Engine) { engines[e.Name()] = e }

// Run routes a spec to its engine. Engine and Workload are consumed
// here, by the framework, before any engine sees the spec — so engines
// are not expected to read them.
func Run(spec Spec) int {
	e, ok := engines[spec.Engine]
	if !ok || spec.Workload == "" {
		return -1
	}
	return e.Run(spec)
}
