package picos

import "repro/internal/queue"

// regFIFO is a registered hardware FIFO: an element pushed at cycle c
// with extra latency d becomes poppable at cycle c+d (d >= 1 models the
// output register). Every inter-unit channel in the model is a regFIFO,
// which makes the per-cycle evaluation order of units irrelevant.
type regFIFO[T any] struct {
	q         queue.FIFO[stamped[T]]
	highwater int
}

type stamped[T any] struct {
	at uint64
	v  T
}

// push enqueues v, visible at cycle `at`.
func (f *regFIFO[T]) push(v T, at uint64) {
	f.q.Push(stamped[T]{at: at, v: v})
	if f.q.Len() > f.highwater {
		f.highwater = f.q.Len()
	}
}

// ready reports whether an element is poppable at cycle now.
func (f *regFIFO[T]) ready(now uint64) bool {
	head, ok := f.q.Peek()
	return ok && head.at <= now
}

// pop removes and returns the head if it is visible at cycle now.
func (f *regFIFO[T]) pop(now uint64) (T, bool) {
	head, ok := f.q.Peek()
	if !ok || head.at > now {
		var zero T
		return zero, false
	}
	f.q.Pop()
	return head.v, true
}

// peek returns the head if visible at now, without removing it.
func (f *regFIFO[T]) peek(now uint64) (T, bool) {
	head, ok := f.q.Peek()
	if !ok || head.at > now {
		var zero T
		return zero, false
	}
	return head.v, true
}

// headAt returns the visibility stamp of the head element, whether or
// not it is visible yet. Units pop strictly in order, so the head's
// stamp is exactly the earliest cycle this channel can deliver input —
// the quantity the event-driven fast path folds into nextEvent().
func (f *regFIFO[T]) headAt() (uint64, bool) {
	head, ok := f.q.Peek()
	if !ok {
		return 0, false
	}
	return head.at, true
}

// reset drops all elements and the highwater mark, keeping the backing
// storage — the Reset path's way of recycling channel buffers.
func (f *regFIFO[T]) reset() {
	f.q.Reset()
	f.highwater = 0
}

// len returns the number of queued elements (visible or not).
func (f *regFIFO[T]) len() int { return f.q.Len() }

// empty reports whether the FIFO holds no elements at all.
func (f *regFIFO[T]) empty() bool { return f.q.Empty() }
