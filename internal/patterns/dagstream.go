package patterns

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"unicode"

	"repro/internal/trace"
)

// ErrRetiredNode is the typed error a streaming dagfile replay returns
// when an edge references a node that is no longer inside the retention
// window (or was never declared — a bounded window cannot tell the two
// apart without keeping every name forever, which is exactly the memory
// bound streaming exists to avoid).
var ErrRetiredNode = errors.New("patterns: dag edge references a node outside the retention window")

// streamDAGFile opens the graph file named by p.Path as a lazy source.
//
// JSON node arrays stream genuinely: the array is decoded one node at a
// time with a token decoder, and only the last retain declared node
// names are kept for edge resolution (retain 0: unbounded), so an
// arbitrarily long declaration-ordered graph replays in O(retain)
// state. The declaration order must therefore be topological ("after"
// edges point at earlier nodes) — the materialized ParseDAG's Kahn
// reordering needs the whole graph by definition. For graphs that are
// already declaration-ordered the two emit byte-identical traces: Kahn
// with a min-index frontier pops 0, 1, 2, ... exactly when every edge
// points backward.
//
// DOT's grammar allows forward references and attributes after edges,
// so DOT content is parsed whole (via ParseDAG) and re-streamed; the
// retention-window check still applies, so a DOT graph whose edges span
// more than retain emitted tasks fails with the same ErrRetiredNode a
// streamed JSON one would.
func streamDAGFile(p Params, retain int) (trace.Source, error) {
	head, err := sniffDAGHead(p.Path)
	if err != nil {
		return nil, err
	}
	name := "pattern-" + p.Name()
	if strings.HasPrefix(head, "digraph") || strings.HasPrefix(head, "strict") {
		tr, err := buildDAGFile(p)
		if err != nil {
			return nil, err
		}
		if err := checkDAGRetention(tr, retain); err != nil {
			return nil, err
		}
		tr.Name = name
		return trace.FromTrace(tr), nil
	}
	src := &dagJSONSource{path: p.Path, name: name, retain: retain}
	if err := src.Rewind(); err != nil {
		return nil, err
	}
	return src, nil
}

// sniffDAGHead reads the first non-space bytes of the file, enough to
// pick the format the way ParseDAG does.
func sniffDAGHead(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("patterns: dagfile: %w", err)
	}
	defer f.Close()
	buf := make([]byte, 512)
	n, err := io.ReadFull(f, buf)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return "", fmt.Errorf("patterns: dagfile %s: %w", path, err)
	}
	return strings.TrimLeftFunc(string(buf[:n]), unicode.IsSpace), nil
}

// checkDAGRetention verifies every edge of a materialized dag trace
// spans at most retain tasks, so a whole-file parse enforces the same
// window a true stream would.
func checkDAGRetention(tr *trace.Trace, retain int) error {
	if retain <= 0 {
		return nil
	}
	for i := range tr.Tasks {
		for _, d := range tr.Tasks[i].Deps[1:] { // Deps[0] is the own inout region
			pred := int(d.Addr-dagBase) / 0x8010
			if i-pred > retain {
				return fmt.Errorf("%w: task %d reads task %d, %d tasks back (window %d)",
					ErrRetiredNode, i, pred, i-pred, retain)
			}
		}
	}
	return nil
}

// dagJSONSource streams a JSON node array in declaration order with a
// bounded name-retention window.
type dagJSONSource struct {
	path   string
	name   string
	retain int

	f   *os.File
	dec *json.Decoder
	// index maps retained node names to their task IDs; ring is a
	// circular buffer of the same names in declaration order, so
	// eviction reuses the slot of the name falling out of the window
	// instead of growing a shifted slice forever.
	index map[string]int
	ring  []string
	next  int
	err   error
	done  bool
}

func (s *dagJSONSource) Name() string         { return s.name }
func (s *dagJSONSource) Kinds() []string      { return nil }
func (s *dagJSONSource) SerialCycles() uint64 { return 0 }
func (s *dagJSONSource) RefSeqCycles() uint64 { return 0 }

// Err returns the parse error that terminated the stream, if any —
// drivers check it through trace-level error probing once Next returns
// false.
func (s *dagJSONSource) Err() error { return s.err }

func (s *dagJSONSource) Rewind() error {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("patterns: dagfile: %w", err)
	}
	dec := json.NewDecoder(f)
	tok, err := dec.Token()
	if err != nil {
		f.Close()
		return fmt.Errorf("patterns: dagfile %s: not a digraph and not a JSON node array: %w", s.path, err)
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '[' {
		f.Close()
		return fmt.Errorf("patterns: dagfile %s: not a digraph and not a JSON node array (got %v)", s.path, tok)
	}
	s.f, s.dec = f, dec
	s.index = make(map[string]int)
	if s.retain > 0 && s.ring == nil {
		s.ring = make([]string, s.retain)
	}
	clear(s.ring)
	s.next = 0
	s.err = nil
	s.done = false
	return nil
}

func (s *dagJSONSource) fail(err error) (trace.Task, bool) {
	s.err = err
	s.done = true
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	return trace.Task{}, false
}

func (s *dagJSONSource) Next() (trace.Task, bool) {
	if s.done || s.err != nil {
		return trace.Task{}, false
	}
	if !s.dec.More() {
		s.done = true
		if _, err := s.dec.Token(); err != nil { // the closing ']'
			return s.fail(fmt.Errorf("patterns: dagfile %s: %w", s.path, err))
		}
		s.f.Close()
		s.f = nil
		return trace.Task{}, false
	}
	var n jsonDAGNode
	if err := s.dec.Decode(&n); err != nil {
		return s.fail(fmt.Errorf("patterns: dagfile %s: node %d: %w", s.path, s.next, err))
	}
	id := s.next
	if id >= dagMaxNodes {
		return s.fail(fmt.Errorf("patterns: dagfile %s: more than %d nodes", s.path, dagMaxNodes))
	}
	if n.Name == "" {
		return s.fail(fmt.Errorf("patterns: dagfile %s: node %d has no name", s.path, id))
	}
	if n.Dur >= 1<<40 {
		return s.fail(fmt.Errorf("patterns: dagfile %s: node %q has dur %d beyond the 2^40-cycle cap", s.path, n.Name, n.Dur))
	}
	if _, dup := s.index[n.Name]; dup {
		return s.fail(fmt.Errorf("patterns: dagfile %s: duplicate node %q", s.path, n.Name))
	}

	addr := func(node int) uint64 { return dagBase + uint64(node)*0x8010 }
	deps := make([]trace.Dep, 0, len(n.After)+1)
	deps = append(deps, trace.Dep{Addr: addr(id), Dir: trace.InOut})
	seen := map[int]bool{}
	for _, pred := range n.After {
		pi, ok := s.index[pred]
		if !ok {
			return s.fail(fmt.Errorf("%w: node %q (task %d) reads %q, not among the last %d declared nodes",
				ErrRetiredNode, n.Name, id, pred, len(s.index)))
		}
		if seen[pi] {
			continue // parallel edges collapse, as in the materialized path
		}
		seen[pi] = true
		deps = append(deps, trace.Dep{Addr: addr(pi), Dir: trace.In})
	}
	if len(deps) > trace.MaxDeps {
		return s.fail(fmt.Errorf("patterns: dagfile %s: node %q has %d predecessors; the hardware tracks at most %d dependences per task (1 output + %d inputs)",
			s.path, n.Name, len(deps)-1, trace.MaxDeps, trace.MaxDeps-1))
	}

	if s.retain > 0 {
		slot := id % s.retain
		if old := s.ring[slot]; old != "" {
			delete(s.index, old)
		}
		s.ring[slot] = n.Name
	}
	s.index[n.Name] = id
	s.next++

	dur := n.Dur
	if dur == 0 {
		dur = DefaultLen
	}
	return trace.Task{ID: uint32(id), Deps: deps, Duration: dur}, true
}
