package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file     string // relative path
	line     int    // line the comment sits on
	analyzer string // analyzer name it silences
	reason   string // mandatory justification
	used     bool   // did it match a finding this run
	// malformed carries the grammar violation (missing analyzer or
	// reason); such a directive silences nothing and is reported as a
	// finding on every Run.
	malformed string
}

// ignorePrefix is the suppression directive. The grammar is
//
//	//lint:ignore <analyzer> <reason...>
//
// and the comment silences findings of <analyzer> on its own line or on
// the line immediately below (the usual place: the comment sits directly
// above the offending statement).
const ignorePrefix = "//lint:ignore"

// collectSuppressions indexes every ignore comment of a file at load
// time. Malformed directives (no analyzer, or no reason — an
// unexplained suppression) are recorded as malformed and reported by
// checkSuppressions on every Run: the whole point of the grammar is
// that every silenced finding carries its justification in the source.
func (s *Suite) collectSuppressions(file *ast.File) {
	for _, group := range file.Comments {
		for _, c := range group.List {
			text := c.Text
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ignorethis — not the directive
			}
			position := s.Fset.Position(c.Pos())
			su := &suppression{
				file: s.relPath(position.Filename),
				line: position.Line,
			}
			switch fields := strings.Fields(rest); len(fields) {
			case 0:
				su.malformed = "//lint:ignore needs an analyzer name and a reason"
			case 1:
				su.analyzer = fields[0]
				su.malformed = "//lint:ignore " + fields[0] + " has no reason; unexplained suppressions are not allowed"
			default:
				su.analyzer = fields[0]
				su.reason = strings.Join(fields[1:], " ")
			}
			s.suppressions = append(s.suppressions, su)
		}
	}
}

// suppressed reports whether a finding of analyzer at position is
// covered by an ignore on the same line or the line directly above.
func (s *Suite) suppressed(analyzer string, position token.Position) bool {
	file := s.relPath(position.Filename)
	for _, su := range s.suppressions {
		if su.malformed != "" || su.analyzer != analyzer || su.file != file {
			continue
		}
		if su.line == position.Line || su.line == position.Line-1 {
			su.used = true
			return true
		}
	}
	return false
}

// checkSuppressions reports ignores that silenced nothing this run:
// stale suppressions hide drift exactly the way stale allowlists do, so
// they fail the build until removed. Ignores naming an analyzer outside
// the full registry are reported the same way (usually a typo that
// would otherwise turn the comment into a no-op). Unknown-ness is
// judged against Analyzers() — the complete registry — while staleness
// is only judged for analyzers that actually ran, so a -run-filtered
// invocation neither misreports valid ignores of other analyzers nor
// calls them stale.
func (s *Suite) checkSuppressions(ran []*Analyzer) {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ranSet := map[string]bool{}
	for _, a := range ran {
		ranSet[a.Name] = true
	}
	for _, su := range s.suppressions {
		switch {
		case su.malformed != "":
			s.diags = append(s.diags, Diagnostic{
				Analyzer: "suppression",
				File:     su.file,
				Line:     su.line,
				Message:  su.malformed,
			})
		case !known[su.analyzer]:
			s.diags = append(s.diags, Diagnostic{
				Analyzer: "suppression",
				File:     su.file,
				Line:     su.line,
				Message:  "//lint:ignore names unknown analyzer " + su.analyzer,
			})
		case ranSet[su.analyzer] && !su.used:
			s.diags = append(s.diags, Diagnostic{
				Analyzer: "suppression",
				File:     su.file,
				Line:     su.line,
				Message:  "//lint:ignore " + su.analyzer + " no longer matches any finding; remove the stale suppression",
			})
		}
	}
}
