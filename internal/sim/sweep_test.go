package sim_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

// detGrid is a 15-point {engine x workload x workers} grid, small enough
// for tests but wide enough to keep the whole worker pool busy.
func detGrid() sim.Grid {
	return sim.Grid{
		Engines:   []string{"picos-hw", "nanos", "perfect"},
		Workloads: []string{"case2", "case4", "case5", "case6", "case7"},
	}
}

// TestGridExpand: expansion is the documented cross product with the
// last dimension varying fastest, and leaves unset dimensions alone.
func TestGridExpand(t *testing.T) {
	specs := detGrid().Expand()
	if len(specs) != 15 {
		t.Fatalf("expanded %d specs, want 15", len(specs))
	}
	if specs[0].Engine != "picos-hw" || specs[0].Workload != "case2" {
		t.Fatalf("first spec %+v", specs[0])
	}
	if specs[1].Engine != "picos-hw" || specs[1].Workload != "case4" {
		t.Fatalf("second spec %+v: workloads must vary faster than engines", specs[1])
	}
	if specs[5].Engine != "nanos" || specs[5].Workload != "case2" {
		t.Fatalf("sixth spec %+v", specs[5])
	}
	again := detGrid().Expand()
	if !reflect.DeepEqual(specs, again) {
		t.Fatal("expansion is not deterministic")
	}
}

// TestSweepDeterminism: a parallel sweep must produce output identical
// to a sequential one — result ordering and content independent of
// goroutine scheduling. Compare via JSON so unexported state cannot
// hide differences.
func TestSweepDeterminism(t *testing.T) {
	specs := detGrid().Expand()
	seq := sim.Sweep(specs, 1)
	for _, par := range []int{4, 8} {
		got := sim.Sweep(specs, par)
		if len(got) != len(seq) {
			t.Fatalf("parallelism %d: %d items, want %d", par, len(got), len(seq))
		}
		for i := range seq {
			if got[i].Index != i || seq[i].Index != i {
				t.Fatalf("parallelism %d: item %d has index %d", par, i, got[i].Index)
			}
			a, err := json.Marshal(seq[i])
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(got[i])
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Fatalf("parallelism %d: item %d differs from sequential sweep\nseq: %s\npar: %s", par, i, a, b)
			}
		}
	}
}

// TestSweepStreamDeliversAll: the streaming API yields exactly one item
// per spec, each with a result or an error, and closes the channel.
func TestSweepStreamDeliversAll(t *testing.T) {
	specs := detGrid().Expand()
	seen := make(map[int]bool)
	for it := range sim.SweepStream(specs, 4) {
		if seen[it.Index] {
			t.Fatalf("index %d delivered twice", it.Index)
		}
		seen[it.Index] = true
		if it.Err != "" {
			t.Fatalf("spec %d (%s on %s) failed: %s", it.Index, it.Spec.Engine, it.Spec.Workload, it.Err)
		}
		if it.Result == nil || it.Result.Makespan == 0 {
			t.Fatalf("spec %d: empty result", it.Index)
		}
	}
	if len(seen) != len(specs) {
		t.Fatalf("delivered %d items, want %d", len(seen), len(specs))
	}
}

// TestSweepIsolatesErrors: a failing grid point carries its error in
// the item; the rest of the sweep still runs.
func TestSweepIsolatesErrors(t *testing.T) {
	specs := []sim.Spec{
		{Engine: "perfect", Workload: "case1"},
		{Engine: "no-such-engine", Workload: "case1"},
		{Engine: "perfect", Workload: "no-such-case"},
		{Engine: "perfect", Workload: "case2"},
	}
	items := sim.Sweep(specs, 2)
	if items[0].Err != "" || items[0].Result == nil {
		t.Fatalf("item 0 should succeed: %+v", items[0])
	}
	if items[1].Err == "" || items[1].Result != nil {
		t.Fatal("unknown engine must fail its item")
	}
	if items[2].Err == "" {
		t.Fatal("unknown workload must fail its item")
	}
	if items[3].Err != "" || items[3].Result == nil {
		t.Fatalf("item 3 should succeed: %+v", items[3])
	}
}

// TestSweepEmpty: an empty spec slice yields an empty, closed stream.
func TestSweepEmpty(t *testing.T) {
	if items := sim.Sweep(nil, 4); len(items) != 0 {
		t.Fatalf("empty sweep produced %d items", len(items))
	}
}
