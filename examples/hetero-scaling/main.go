// Hetero scaling: sweep heterogeneous worker-class mixes against the
// pluggable grant policies (fifo, priority, locality) with and without
// cross-class work stealing, over pattern families of increasing
// communication, and render each lane's distance to the class-weighted
// perfect roofline (the zero-overhead oracle running on the same class
// mix, critical path weighted by each task's best eligible class).
//
// A cell at 1.00 means the accelerator's grant policy schedules the mix
// as well as the oracle; the gap widens where the policy grants slow
// workers work the fast ones were about to free up for, and the
// affinity mix shows what specialization costs when the family is not
// one of the accel class's kinds.
//
//	go run ./examples/hetero-scaling            # full sweep
//	go run ./examples/hetero-scaling -quick     # reduced grid (CI smoke)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced grid (2 mixes, 2 families)")
	flag.Parse()

	cells, err := experiments.HeteroScalingData(experiments.Options{Quick: *quick})
	if err != nil {
		log.Fatal(err)
	}

	for _, t := range experiments.HeteroScalingTables(cells) {
		if err := t.Fprint(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	for _, hm := range experiments.HeteroScalingHeatmaps(cells) {
		if err := hm.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	over := 0
	for _, c := range cells {
		if c.SpeedupVsPerfect > 1+1e-9 {
			over++
		}
	}
	fmt.Printf("%d grid points, %d above the weighted roofline\n", len(cells), over)
	if over > 0 {
		os.Exit(1)
	}
}
