package lint

// Analyzers returns the full registry in stable order. The driver runs
// all of them by default; -run selects a subset, but suppression
// validation always resolves analyzer names against this full set so a
// filtered run never misreports a valid ignore as unknown.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism,
		DirtyHorizon,
		ErrDiscipline,
		HotAlloc,
		MaterializeWall,
		SpecKnob,
	}
}
