package picos

// Stats aggregates the observable behaviour of one Picos run: the
// Table II conflict counters, stall and blocking cycles, and traffic
// volumes used by the latency/throughput analysis.
type Stats struct {
	// Task flow.
	TasksSubmitted uint64 // pushed into the GW new-task queue
	TasksAdmitted  uint64 // accepted by the GW (N2 succeeded)
	TasksCompleted uint64 // finish walk done, slot recycled
	DepsProcessed  uint64 // dependences registered by DCTs

	// Dependence Memory behaviour (Table II).
	DMConflicts           uint64 // dependences that found their set full
	DMConflictStallCycles uint64 // cycles spent retrying conflicting deps
	VMStallEvents         uint64 // dependences stalled on VM exhaustion
	VMStallCycles         uint64

	// Gateway admission.
	GWBlockedCycles uint64 // cycles the GW sat on an inadmissible task

	// Wake-up traffic (Section III-D chains).
	WakesRouted uint64

	// Occupancy highwater marks.
	MaxInFlightTasks int
	MaxVMLive        int

	// ProtocolErrors counts impossible transitions (wake for a ready or
	// unknown dependence, release of a free VM entry). Always zero unless
	// the model is broken; tests assert on it.
	ProtocolErrors uint64
}

// BusyCycles reports per-unit busy-cycle counters, for utilization
// analysis and the bottleneck discussion of Section V-C.
type BusyCycles struct {
	GW  uint64
	TRS []uint64
	DCT []uint64
	TS  uint64
	Arb uint64
}

// Busy returns a snapshot of per-unit busy cycles.
func (p *Picos) Busy() BusyCycles {
	b := BusyCycles{GW: p.gw.busy, TS: p.ts.busy, Arb: p.arb.routed}
	for _, t := range p.trs {
		b.TRS = append(b.TRS, t.busy)
	}
	for _, d := range p.dct {
		b.DCT = append(b.DCT, d.busy)
	}
	return b
}
