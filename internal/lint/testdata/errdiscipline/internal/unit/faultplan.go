// The fault-plan and admission sentinels mirror the simulator's new
// typed errors (faults.ErrBadPlan, faults.ErrBadRecovery,
// picos.ErrUnadmittable): parse and submit sites branch on them, and
// the moment a caller wraps the rejection with context every identity
// comparison silently turns false. One finding per sentinel.
package unit

import "errors"

// ErrBadPlan is the typed parse error for a malformed fault plan.
var ErrBadPlan = errors.New("unit: malformed fault plan")

// ErrBadRecovery is the typed parse error for a malformed recovery
// policy.
var ErrBadRecovery = errors.New("unit: malformed recovery policy")

// ErrUnadmittable is the admission refusal for a dependence set that
// cannot fit any DM set.
var ErrUnadmittable = errors.New("unit: task dependence set unadmittable")

func parsePlan(s string) error {
	if s == "bad" {
		return ErrBadPlan
	}
	if s == "worse" {
		return ErrBadRecovery
	}
	return nil
}

func submit(deps int) error {
	if deps > 8 {
		return ErrUnadmittable
	}
	return nil
}

// badFaultHandling compares each sentinel by identity.
func badFaultHandling(plan string, deps int) bool {
	err := parsePlan(plan)
	if err == ErrBadPlan { // want `ErrBadPlan compared with ==`
		return false
	}
	if ErrBadRecovery != err { // want `ErrBadRecovery compared with !=`
		return false
	}
	switch submit(deps) {
	case ErrUnadmittable: // want `switch case compares ErrUnadmittable by identity`
		return false
	}
	return true
}

// goodFaultHandling is the sanctioned form for all three.
func goodFaultHandling(plan string, deps int) bool {
	if err := parsePlan(plan); errors.Is(err, ErrBadPlan) || errors.Is(err, ErrBadRecovery) {
		return false
	}
	return !errors.Is(submit(deps), ErrUnadmittable)
}
