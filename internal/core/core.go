// Package core is the public facade of the Picos reproduction: one entry
// point to build traces (real applications or synthetic cases), run them
// through any of the four execution engines the paper compares — the
// Picos hardware model in its three HIL modes, the software-only Nanos++
// model, and the Perfect (roofline) scheduler — and collect comparable
// results.
//
// Quick start:
//
//	tr, _ := core.AppTrace(core.Cholesky, 2048, 128)
//	res, _ := core.RunPicos(tr, core.PicosOptions{Workers: 12})
//	fmt.Printf("speedup %.1fx\n", res.Speedup)
package core

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/hil"
	"repro/internal/nanos"
	"repro/internal/perfect"
	"repro/internal/picos"
	"repro/internal/synth"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// Re-exported workload names.
const (
	Heat     = apps.Heat
	Lu       = apps.Lu
	MLu      = apps.MLu
	SparseLu = apps.SparseLu
	Cholesky = apps.Cholesky
	H264Dec  = apps.H264Dec
)

// Re-exported DM designs.
const (
	DM8Way  = picos.DM8Way
	DM16Way = picos.DM16Way
	DMP8Way = picos.DMP8Way
)

// AppTrace generates the trace of a real benchmark (Table I workloads).
func AppTrace(app apps.App, problem, block int) (*trace.Trace, error) {
	res, err := apps.Generate(app, problem, block)
	if err != nil {
		return nil, err
	}
	if err := res.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("core: generated trace invalid: %w", err)
	}
	return res.Trace, nil
}

// SyntheticTrace generates one of the paper's seven synthetic cases.
func SyntheticTrace(caseNo int) (*trace.Trace, error) { return synth.Case(caseNo) }

// Graph builds the dependence DAG of a trace (OmpSs semantics).
func Graph(tr *trace.Trace) *taskgraph.Graph { return taskgraph.Build(tr) }

// PicosOptions configures a Picos HIL run.
type PicosOptions struct {
	Workers int            // default 12
	Mode    hil.Mode       // default HWOnly
	Design  picos.DMDesign // default DMP8Way
	LIFO    bool           // use the LIFO Task Scheduler (Figure 9)
	NumTRS  int            // default 1
	NumDCT  int            // default 1
}

// Result is a mode-independent run outcome.
type Result struct {
	Engine   string
	Workers  int
	Makespan uint64
	Speedup  float64
	Start    []uint64
	Finish   []uint64
}

// RunPicos executes the trace on the Picos accelerator model.
func RunPicos(tr *trace.Trace, opt PicosOptions) (*Result, error) {
	cfg := hil.DefaultConfig()
	if opt.Workers > 0 {
		cfg.Workers = opt.Workers
	}
	cfg.Mode = opt.Mode
	cfg.Picos.Design = opt.Design
	if opt.LIFO {
		cfg.Picos.Policy = picos.SchedLIFO
	}
	if opt.NumTRS > 0 {
		cfg.Picos.NumTRS = opt.NumTRS
	}
	if opt.NumDCT > 0 {
		cfg.Picos.NumDCT = opt.NumDCT
	}
	res, err := hil.Run(tr, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Engine:   "picos/" + res.Mode.String(),
		Workers:  res.Workers,
		Makespan: res.Makespan,
		Speedup:  res.Speedup,
		Start:    res.Start,
		Finish:   res.Finish,
	}, nil
}

// RunPicosDetailed exposes the full HIL result (stats, probes).
func RunPicosDetailed(tr *trace.Trace, cfg hil.Config) (*hil.Result, error) {
	return hil.Run(tr, cfg)
}

// RunNanos executes the trace on the software-only runtime model.
func RunNanos(tr *trace.Trace, workers int) (*Result, error) {
	res, err := nanos.Run(tr, nanos.Config{Workers: workers})
	if err != nil {
		return nil, err
	}
	return &Result{
		Engine:   "nanos",
		Workers:  res.Workers,
		Makespan: res.Makespan,
		Speedup:  res.Speedup,
		Start:    res.Start,
		Finish:   res.Finish,
	}, nil
}

// RunPerfect executes the trace on the zero-overhead roofline scheduler.
func RunPerfect(tr *trace.Trace, workers int) (*Result, error) {
	res, err := perfect.Run(tr, workers)
	if err != nil {
		return nil, err
	}
	return &Result{
		Engine:   "perfect",
		Workers:  res.Workers,
		Makespan: res.Makespan,
		Speedup:  res.Speedup,
		Start:    res.Start,
		Finish:   res.Finish,
	}, nil
}

// Verify checks a result against the dependence oracle.
func Verify(tr *trace.Trace, res *Result) error {
	return taskgraph.Build(tr).CheckSchedule(res.Start, res.Finish)
}
