package trace

import "fmt"

// Source is the streaming workload contract: an ordered stream of tasks
// in creation order, pulled one descriptor at a time the way the paper's
// gateway consumes its bounded new-task queue — the prototype never sees
// a whole graph. Engines that drive a Source under a bounded window keep
// O(window) descriptors live, so arbitrarily long replays (and uploaded
// graphs of unknown size) run in constant memory.
//
// The contract:
//
//   - Next returns descriptors with IDs 0, 1, 2, ... in creation order
//     and (Task{}, false) when the stream is exhausted. The returned
//     Task's Deps slice belongs to the caller: the source must not reuse
//     or mutate it after returning (generators build a fresh slice per
//     task; adapters over materialized traces hand out the stored one,
//     which nothing mutates).
//   - Rewind restarts the stream from task 0. Multi-pass consumers — the
//     perfect roofline's critical-path weighting, equivalence harnesses
//     replaying the same stream on two loops — depend on it; sources
//     over non-seekable inputs may return an error.
//   - Kinds is the kernel-family name table (Task.Kind values are
//     1-based indices into it). It must be complete before the first
//     Next call for kinds used anywhere in the stream: schedulers bind
//     class affinities to it up front.
//   - SerialCycles and RefSeqCycles carry the Trace fields of the same
//     names, so a streaming run computes the same Baseline once the
//     stream's duration sum is known.
type Source interface {
	Name() string
	Kinds() []string
	Next() (Task, bool)
	Rewind() error
	SerialCycles() uint64
	RefSeqCycles() uint64
}

// TraceSource adapts a materialized *Trace to the Source interface — the
// back-compat bridge that lets every existing workload flow through the
// streaming drivers unchanged.
type TraceSource struct {
	tr   *Trace
	next int
}

// FromTrace wraps a materialized trace as a rewindable Source.
func FromTrace(tr *Trace) *TraceSource { return &TraceSource{tr: tr} }

// Name returns the underlying trace's name.
func (s *TraceSource) Name() string { return s.tr.Name }

// Kinds returns the underlying trace's kind table.
func (s *TraceSource) Kinds() []string { return s.tr.Kinds }

// Next returns the next task in creation order.
func (s *TraceSource) Next() (Task, bool) {
	if s.next >= len(s.tr.Tasks) {
		return Task{}, false
	}
	t := s.tr.Tasks[s.next]
	s.next++
	return t, true
}

// Rewind restarts the stream from task 0. Always succeeds.
func (s *TraceSource) Rewind() error { s.next = 0; return nil }

// SerialCycles returns the underlying trace's serial-work cycles.
func (s *TraceSource) SerialCycles() uint64 { return s.tr.SerialCycles }

// RefSeqCycles returns the underlying trace's measured sequential time.
func (s *TraceSource) RefSeqCycles() uint64 { return s.tr.RefSeqCycles }

// Trace returns the wrapped trace. Streaming drivers use it to route a
// wrapped materialized workload back onto the legacy whole-trace engine
// path when the window is unbounded, where the two are equivalent by
// construction.
func (s *TraceSource) Trace() *Trace { return s.tr }

// Materialize drains a Source into a validated Trace, rewinding it
// first. It is the escape hatch for inherently multi-pass whole-graph
// consumers (the perfect roofline weights complete critical paths) and
// for tools that serialize or draw graphs — it defeats the O(window)
// memory bound, so engine code must not call it outside the sanctioned
// sites (picoslint's materializewall check enforces this).
func Materialize(src Source) (*Trace, error) {
	if tr := AlreadyMaterialized(src); tr != nil {
		return tr, nil
	}
	if err := src.Rewind(); err != nil {
		return nil, fmt.Errorf("trace: materialize %s: %w", src.Name(), err)
	}
	tr := &Trace{
		Name:         src.Name(),
		SerialCycles: src.SerialCycles(),
		RefSeqCycles: src.RefSeqCycles(),
		Kinds:        append([]string(nil), src.Kinds()...),
	}
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		tr.Tasks = append(tr.Tasks, t)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: materialize %s: %w", src.Name(), err)
	}
	return tr, nil
}

// AlreadyMaterialized returns the backing trace of a FromTrace adapter,
// or nil for a genuinely streaming source. Drivers use it to skip a
// redundant copy-and-revalidate when the workload was materialized all
// along.
func AlreadyMaterialized(src Source) *Trace {
	if ts, ok := src.(*TraceSource); ok {
		return ts.tr
	}
	return nil
}

// SourceErr returns the mid-stream error of a source that implements
// the optional Err() method (a parser hitting malformed input after
// tasks were already handed out can only signal it once Next returns
// false). Sources without the method never fail mid-stream.
func SourceErr(src Source) error {
	if e, ok := src.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// ValidateTask checks the per-task invariants of Validate for one
// streamed descriptor: ID equals its creation position, at most MaxDeps
// dependences, no duplicate address within the dependence list, non-zero
// duration, and a kind within the nKinds-entry table. Streaming drivers
// call it as descriptors arrive — the whole-trace Validate is
// unavailable when the whole trace never exists.
func ValidateTask(task *Task, pos int, nKinds int) error {
	if task.ID != uint32(pos) {
		return fmt.Errorf("%w: task %d has ID %d", ErrBadID, pos, task.ID)
	}
	if len(task.Deps) > MaxDeps {
		return fmt.Errorf("%w: task %d has %d", ErrTooManyDeps, pos, len(task.Deps))
	}
	if task.Duration == 0 {
		return fmt.Errorf("%w: task %d", ErrZeroDuration, pos)
	}
	if int(task.Kind) > nKinds {
		return fmt.Errorf("%w: task %d kind %d exceeds kind table (%d entries)",
			ErrBadKind, pos, task.Kind, nKinds)
	}
	for a := 0; a < len(task.Deps); a++ {
		for b := a + 1; b < len(task.Deps); b++ {
			if task.Deps[a].Addr == task.Deps[b].Addr {
				return fmt.Errorf("%w: task %d addr %#x", ErrDupAddr, pos, task.Deps[a].Addr)
			}
		}
	}
	return nil
}
