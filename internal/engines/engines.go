// Package engines registers every built-in execution engine with the
// sim registry, database/sql-driver style: blank-import it from any
// binary or test that resolves engines by name.
//
//	import _ "repro/internal/engines"
package engines

import (
	// Each engine package registers itself with repro/internal/sim in
	// its init: hil contributes picos-hw, picos-comm and picos-full;
	// nanos and perfect contribute their single engines.
	_ "repro/internal/hil"
	_ "repro/internal/nanos"
	_ "repro/internal/perfect"
)
