// Shard capacity: sweep DCT shard counts against the DM designs over
// pattern families of increasing address spread, and render the cost of
// partitioning the dependence-management fabric as tables and ASCII
// heatmaps. Sharding divides the design's DM sets (and the VM) across
// shards rather than replicating them, and inter-shard traffic pays the
// chained shard-hop latency, so the sweep shows where per-shard
// capacity — not raw shard count — becomes the bottleneck.
//
//	go run ./examples/shard-capacity            # full sweep
//	go run ./examples/shard-capacity -quick     # reduced grid (CI smoke)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced grid (2 families, P+8way, 1 vs 4 shards)")
	flag.Parse()

	cells, err := experiments.ShardCapacityData(experiments.Options{Quick: *quick})
	if err != nil {
		log.Fatal(err)
	}

	for _, t := range experiments.ShardCapacityTables(cells) {
		if err := t.Fprint(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	for _, hm := range experiments.ShardCapacityHeatmaps(cells) {
		if err := hm.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	wedged := 0
	for _, c := range cells {
		if c.Wedged {
			wedged++
		}
	}
	fmt.Printf("%d grid points, %d wedged\n", len(cells), wedged)
}
