// Package sim is a sanctioned site: the Window<=0 compatibility route
// materializes by construction, so no finding fires here.
package sim

import "mwcheck/internal/trace"

// RunSource materializes when no bounded window is set.
func RunSource(src trace.Source, window int) (*trace.Trace, error) {
	if window <= 0 {
		return trace.Materialize(src)
	}
	return &trace.Trace{}, nil
}
