package sched

import (
	"errors"
	"testing"
)

func TestParseGrammar(t *testing.T) {
	cs, err := Parse("4xfast+4xslow:2.0+1xaccel:0.25@stencil_2d,fft")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 || cs.Workers() != 9 {
		t.Fatalf("parsed %+v, want 3 classes / 9 workers", cs)
	}
	if cs[0].Name != "fast" || cs[0].Count != 4 || cs[0].Mult != 1.0 || cs[0].Affinity != nil {
		t.Errorf("class 0 = %+v", cs[0])
	}
	if cs[1].Name != "slow" || cs[1].Mult != 2.0 {
		t.Errorf("class 1 = %+v", cs[1])
	}
	if cs[2].Name != "accel" || cs[2].Mult != 0.25 ||
		len(cs[2].Affinity) != 2 || cs[2].Affinity[0] != "stencil_2d" || cs[2].Affinity[1] != "fft" {
		t.Errorf("class 2 = %+v", cs[2])
	}
	if got := cs.String(); got != "4xfast+4xslow:2+1xaccel:0.25@stencil_2d,fft" {
		t.Errorf("String() = %q", got)
	}
	// String re-parses to the same classes.
	back, err := Parse(cs.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != cs.String() {
		t.Errorf("reparse: %q != %q", back.String(), cs.String())
	}

	if cs, err := Parse(""); err != nil || cs != nil {
		t.Errorf("Parse(\"\") = %v, %v; want nil, nil", cs, err)
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"fast",            // no count
		"0xfast",          // zero count
		"-1xfast",         // negative count
		"4x",              // empty name
		"4xfa st",         // bad name chars
		"4xfast:0",        // zero mult
		"4xfast:-2",       // negative mult
		"4xfast:+Inf",     // infinite mult
		"4xfast:banana",   // unparsable mult
		"4xfast+4xfast",   // duplicate name
		"4xfast+",         // empty segment
		"4xfast@",         // empty affinity list
		"4xfast@a,,b",     // empty kind in list
		"4xfast@a+3xa@,b", // empty kind, later segment
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestUniformSingleScale(t *testing.T) {
	if !Classes(nil).Uniform() {
		t.Error("nil classes not uniform")
	}
	if !Single(8).Uniform() || Single(8).Workers() != 8 {
		t.Error("Single(8) not an 8-worker uniform platform")
	}
	if cs, _ := Parse("4xfast+4xslow:2"); cs.Uniform() {
		t.Error("two classes reported uniform")
	}
	if cs, _ := Parse("4xonly:2"); cs.Uniform() {
		t.Error("non-baseline mult reported uniform")
	}
	if cs, _ := Parse("4xonly@gs"); cs.Uniform() {
		t.Error("affinity class reported uniform")
	}

	cs, _ := Parse("1xbase+1xslow:2+1xthird:0.3")
	if got := cs.Scale(0, 1001); got != 1001 {
		t.Errorf("mult 1.0 not an exact passthrough: %d", got)
	}
	if got := cs.Scale(1, 1001); got != 2002 {
		t.Errorf("Scale(2.0, 1001) = %d", got)
	}
	if got := cs.Scale(2, 10); got != 3 { // ceil(3.0000...4) rounding up
		t.Errorf("Scale(0.3, 10) = %d", got)
	}
	if got := cs.Scale(2, 1); got != 1 {
		t.Errorf("Scale clamped %d, want >= 1", got)
	}
}

func TestEligibilityCoverage(t *testing.T) {
	kinds := []string{"gs", "fft"}
	cs, _ := Parse("2xany+1xfftonly:0.5@fft+1xghost@nosuchkind")
	el := cs.Eligibility(kinds)
	if el[0] != nil {
		t.Error("affinity-free class has a non-nil row")
	}
	if el[1] == nil || el[1][0] || el[1][1] || !el[1][2] {
		t.Errorf("fft-only row = %v, want only kind id 2", el[1])
	}
	if el[2] == nil || el[2][0] || el[2][1] || el[2][2] {
		t.Errorf("ghost affinity row = %v, want all false", el[2])
	}
	if m, ok := cs.BestMult(el, 2); !ok || m != 0.5 {
		t.Errorf("BestMult(fft) = %v, %v; want 0.5", m, ok)
	}
	if m, ok := cs.BestMult(el, 0); !ok || m != 1.0 {
		t.Errorf("BestMult(unkinded) = %v, %v; want 1.0", m, ok)
	}

	present := []bool{true, true, true}
	if err := cs.CheckCoverage(kinds, present); err != nil {
		t.Errorf("coverage with an unrestricted class: %v", err)
	}
	only, _ := Parse("2xfftonly@fft")
	if err := only.CheckCoverage(kinds, present); !errors.Is(err, ErrNoEligibleClass) {
		t.Errorf("uncovered kinds: %v, want ErrNoEligibleClass", err)
	}
	if err := only.CheckCoverage(kinds, []bool{false, false, true}); err != nil {
		t.Errorf("coverage restricted to present kinds: %v", err)
	}
}

func TestPolicyParse(t *testing.T) {
	for s, want := range map[string]Policy{
		"": FIFO, "fifo": FIFO, "lifo": LIFO, "priority": Priority, "locality": Locality,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Errorf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPlanTrivial(t *testing.T) {
	if !(Plan{}).Trivial() {
		t.Error("zero plan not trivial")
	}
	hetero, _ := Parse("4xa+4xb:2")
	for _, p := range []Plan{
		{Classes: hetero},
		{Policy: LIFO},
		{Steal: true},
	} {
		if p.Trivial() {
			t.Errorf("plan %+v reported trivial", p)
		}
	}
}

func TestHeaps(t *testing.T) {
	var ih IdleHeap
	for _, w := range []int{5, 1, 3, 0, 4, 2} {
		ih.Push(w)
	}
	for want := 0; want < 6; want++ {
		if got := ih.Pop(); got != want {
			t.Fatalf("IdleHeap popped %d, want %d", got, want)
		}
	}
	var dh DueHeap
	dh.Push(Due{Until: 10, Idx: 3})
	dh.Push(Due{Until: 5, Idx: 7})
	dh.Push(Due{Until: 10, Idx: 1})
	order := []Due{{5, 7}, {10, 1}, {10, 3}}
	for _, want := range order {
		if got := dh.Pop(); got != want {
			t.Fatalf("DueHeap popped %+v, want %+v", got, want)
		}
	}
}

// pool builds a reset pool over the given spec for the kind table.
func pool(t *testing.T, spec string, policy Policy, steal bool, kinds []string, prio []uint64) *Pool[int] {
	t.Helper()
	cs, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pool[int]{}
	p.Reset(cs, policy, steal, kinds, prio)
	return p
}

func TestPoolFIFOGrantDeterminism(t *testing.T) {
	// Single uniform class, FIFO: oldest task to lowest-index idle
	// worker — the historical contract.
	p := pool(t, "4xw", FIFO, false, nil, nil)
	for w := 3; w >= 0; w-- {
		p.Park(w) // park order must not matter
	}
	for id := uint32(10); id < 16; id++ {
		p.Enqueue(id, 0, 0)
	}
	for i := 0; i < 4; i++ {
		w, it, ok := p.Grant()
		if !ok || w != i || it.ID != uint32(10+i) {
			t.Fatalf("grant %d = worker %d task %d (%v), want worker %d task %d", i, w, it.ID, ok, i, 10+i)
		}
	}
	if _, _, ok := p.Grant(); ok {
		t.Fatal("grant with no idle workers")
	}
	if p.Len() != 2 || p.Idle() != 0 {
		t.Fatalf("Len=%d Idle=%d, want 2/0", p.Len(), p.Idle())
	}
}

func TestPoolLIFOAndPriority(t *testing.T) {
	p := pool(t, "1xw", LIFO, false, nil, nil)
	p.Park(0)
	p.Enqueue(1, 0, 0)
	p.Enqueue(2, 0, 0)
	if _, it, ok := p.Grant(); !ok || it.ID != 2 {
		t.Fatalf("LIFO granted %d, want 2 (youngest)", it.ID)
	}

	prio := []uint64{0: 5, 1: 9, 2: 9, 3: 1}
	q := pool(t, "1xw", Priority, false, nil, prio)
	q.Park(0)
	for id := uint32(0); id < 4; id++ {
		q.Enqueue(id, 0, 0)
	}
	if _, it, ok := q.Grant(); !ok || it.ID != 1 {
		t.Fatalf("Priority granted %d, want 1 (highest bottom level, oldest on tie)", it.ID)
	}
	q.Park(0)
	if _, it, ok := q.Grant(); !ok || it.ID != 2 {
		t.Fatalf("Priority granted %d next, want 2", it.ID)
	}
}

func TestPoolAffinityGrant(t *testing.T) {
	kinds := []string{"gs", "fft"}
	// Worker 0-1: any; worker 2: fft only.
	p := pool(t, "2xany+1xaccel:0.5@fft", FIFO, false, kinds, nil)
	for w := 0; w < 3; w++ {
		p.Park(w)
	}
	p.Enqueue(7, 1, 0) // gs
	w, it, ok := p.Grant()
	if !ok || w != 0 || it.ID != 7 {
		t.Fatalf("granted worker %d task %d (%v), want worker 0 task 7", w, it.ID, ok)
	}
	p.Enqueue(8, 1, 0) // gs again: workers 1 idle, 2 ineligible
	p.Enqueue(9, 2, 0) // fft
	w, it, _ = p.Grant()
	if w != 1 || it.ID != 8 {
		t.Fatalf("granted worker %d task %d, want worker 1 task 8", w, it.ID)
	}
	// Only worker 2 (fft-only) is left; it must skip nothing and take
	// the fft task.
	w, it, _ = p.Grant()
	if w != 2 || it.ID != 9 {
		t.Fatalf("granted worker %d task %d, want worker 2 task 9", w, it.ID)
	}
	if p.Scale(2, 1000) != 500 {
		t.Errorf("accel scale = %d, want 500", p.Scale(2, 1000))
	}
}

func TestPoolStealVictimOrder(t *testing.T) {
	kinds := []string{"a", "b", "c"}
	// Three classes, stealing on: tasks park on their first eligible
	// (home) class queue; a worker drains its own queue first, then
	// victims in ascending class order.
	p := pool(t, "1xc0+1xc1+1xc2", FIFO, true, kinds, nil)
	// Home queue of every kind with no affinity anywhere is class 0, so
	// seed per-class queues directly through affinity-free Enqueue then
	// verify the drain order of worker 2 (class 2).
	p.Enqueue(10, 1, 0) // queue 0
	p.Enqueue(11, 2, 0) // queue 0 (first eligible class is 0 for all)
	if !p.CanTake(2) {
		t.Fatal("worker 2 cannot steal from class 0")
	}
	it, ok := p.TakeFor(2)
	if !ok || it.ID != 10 {
		t.Fatalf("worker 2 stole %d, want 10 (oldest in lowest victim)", it.ID)
	}

	// With per-class affinity the home queues separate; own queue wins
	// over an older task in a victim queue.
	q := pool(t, "1xka@a+1xkb@b,a", FIFO, true, kinds, nil)
	q.Enqueue(20, 1, 0)   // kind a -> home class 0
	q.Enqueue(21, 2, 0)   // kind b -> home class 1
	it, ok = q.TakeFor(1) // class 1 worker: own queue (21) before victim (20)
	if !ok || it.ID != 21 {
		t.Fatalf("worker 1 took %d, want own-queue 21", it.ID)
	}
	it, ok = q.TakeFor(1) // then steals the eligible task from class 0
	if !ok || it.ID != 20 {
		t.Fatalf("worker 1 stole %d, want 20", it.ID)
	}
	if q.Len() != 0 {
		t.Fatalf("pool not drained: %d", q.Len())
	}
}

func TestPoolLocalityTwoPass(t *testing.T) {
	kinds := []string{"a", "b"}
	p := pool(t, "1xc0+1xc1", Locality, false, kinds, nil)
	// Establish history: kind a last ran on class 1.
	p.Park(1)
	p.Enqueue(1, 1, 0)
	if w, it, ok := p.Grant(); !ok || w != 1 || it.ID != 1 {
		t.Fatalf("warmup grant = worker %d task %d (%v)", w, it.ID, ok)
	}

	// Both workers idle, one kind-a task: worker 0 passes (class 1 has
	// an idle worker and owns the history), worker 1 takes it.
	p.Park(0)
	p.Park(1)
	p.Enqueue(2, 1, 0)
	if w, it, ok := p.Grant(); !ok || w != 1 || it.ID != 2 {
		t.Fatalf("locality grant = worker %d task %d (%v), want preferred class 1", w, it.ID, ok)
	}
	// Preferred class busy: pass 2 lets class 0 take it (work
	// conservation beats locality).
	p.Enqueue(3, 1, 0)
	if w, it, ok := p.Grant(); !ok || w != 0 || it.ID != 3 {
		t.Fatalf("fallback grant = worker %d task %d (%v), want worker 0", w, it.ID, ok)
	}
}

func TestPoolWakeEligible(t *testing.T) {
	kinds := []string{"gs", "fft"}
	p := pool(t, "1xany+1xaccel@fft", FIFO, false, kinds, nil)
	p.Park(0)
	p.Park(1)
	// A gs task can only wake worker 0.
	if w, ok := p.WakeEligible(1); !ok || w != 0 {
		t.Fatalf("WakeEligible(gs) = %d, %v; want worker 0", w, ok)
	}
	// Now only the fft-only worker is idle; a gs task wakes nobody.
	if w, ok := p.WakeEligible(1); ok {
		t.Fatalf("WakeEligible(gs) woke %d with only the fft-only worker idle", w)
	}
	if w, ok := p.WakeEligible(2); !ok || w != 1 {
		t.Fatalf("WakeEligible(fft) = %d, %v; want worker 1", w, ok)
	}
	// WakeAny only wakes a worker that can take something queued.
	p.Park(0)
	p.Park(1)
	if w, ok := p.WakeAny(); ok {
		t.Fatalf("WakeAny woke %d with an empty pool", w)
	}
	p.Enqueue(5, 2, 0) // fft: both workers eligible, lowest index wins
	if w, ok := p.WakeAny(); !ok || w != 0 {
		t.Fatalf("WakeAny = %d, %v; want worker 0", w, ok)
	}
}

func TestPoolResetReuse(t *testing.T) {
	p := pool(t, "2xa+2xb:2", FIFO, true, []string{"k"}, nil)
	for w := 0; w < 4; w++ {
		p.Park(w)
	}
	p.Enqueue(1, 1, 0)
	// Reset onto a different shape: all state must clear.
	cs, _ := Parse("3xonly")
	p.Reset(cs, LIFO, false, nil, nil)
	if p.Len() != 0 || p.Idle() != 0 || p.Workers() != 3 {
		t.Fatalf("after Reset: Len=%d Idle=%d Workers=%d", p.Len(), p.Idle(), p.Workers())
	}
	p.Park(0)
	p.Enqueue(2, 0, 0)
	if _, it, ok := p.Grant(); !ok || it.ID != 2 {
		t.Fatalf("grant after reset: %v %v", it, ok)
	}
}

// TestIdleHeapRemove: the fault path pulls arbitrary worker indices out
// of the idle heap; the remaining entries must still pop in ascending
// order whatever position the victim held.
func TestIdleHeapRemove(t *testing.T) {
	for victim := 0; victim < 7; victim++ {
		var h IdleHeap
		for _, w := range []int{5, 1, 6, 3, 0, 4, 2} {
			h.Push(w)
		}
		if !h.Remove(victim) {
			t.Fatalf("Remove(%d) missed a present worker", victim)
		}
		if h.Remove(victim) {
			t.Fatalf("Remove(%d) twice reported present", victim)
		}
		for want := 0; want < 7; want++ {
			if want == victim {
				continue
			}
			if got := h.Pop(); got != want {
				t.Fatalf("after Remove(%d): popped %d, want %d", victim, got, want)
			}
		}
	}
	var empty IdleHeap
	if empty.Remove(0) {
		t.Fatal("Remove on an empty heap reported present")
	}
}

// TestDueHeapRemoveIdx: fail-stopping a busy worker pulls its completion
// entry; the survivors must keep retiring in (until, idx) order.
func TestDueHeapRemoveIdx(t *testing.T) {
	entries := []Due{{30, 0}, {10, 1}, {20, 2}, {10, 3}, {40, 4}}
	for _, victim := range []int{0, 1, 3, 4} {
		var h DueHeap
		for _, e := range entries {
			h.Push(e)
		}
		got, ok := h.RemoveIdx(victim)
		if !ok || got.Idx != victim {
			t.Fatalf("RemoveIdx(%d) = %+v, %v", victim, got, ok)
		}
		if _, ok := h.RemoveIdx(victim); ok {
			t.Fatalf("RemoveIdx(%d) twice reported present", victim)
		}
		var prev Due
		for i := 0; len(h) > 0; i++ {
			e := h.Pop()
			if i > 0 && e.less(prev) {
				t.Fatalf("after RemoveIdx(%d): %+v popped after %+v", victim, e, prev)
			}
			prev = e
		}
	}
}

// TestPoolEvict: an evicted (fail-stopped) worker leaves the idle set
// for good — grants skip it, and evicting a busy (non-parked) worker is
// a no-op that reports absence.
func TestPoolEvict(t *testing.T) {
	p := pool(t, "3xw", FIFO, false, nil, nil)
	for w := 0; w < 3; w++ {
		p.Park(w)
	}
	if !p.Evict(1) {
		t.Fatal("Evict missed an idle worker")
	}
	if p.Evict(1) {
		t.Fatal("Evict twice reported present")
	}
	if p.Idle() != 2 {
		t.Fatalf("Idle = %d after evict, want 2", p.Idle())
	}
	p.Enqueue(1, 0, 0)
	p.Enqueue(2, 0, 0)
	p.Enqueue(3, 0, 0)
	if w, it, ok := p.Grant(); !ok || w != 0 || it.ID != 1 {
		t.Fatalf("grant = worker %d task %d (%v), want worker 0 task 1", w, it.ID, ok)
	}
	if w, it, ok := p.Grant(); !ok || w != 2 || it.ID != 2 {
		t.Fatalf("grant = worker %d task %d (%v), want worker 2 task 2 (1 evicted)", w, it.ID, ok)
	}
	if _, _, ok := p.Grant(); ok {
		t.Fatal("granted to an evicted worker")
	}
}
