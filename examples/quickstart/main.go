// Quickstart: build a tiny task graph by hand, run it through the Picos
// accelerator model via the sim engine registry, and verify the schedule
// against the dependence oracle — the 30-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/taskgraph"
	"repro/internal/trace"

	_ "repro/internal/engines"
)

func main() {
	// A five-task pipeline over two buffers:
	//
	//	produce(A) ; transform(A->B) ; two readers of B ; reduce(B)
	tr := &trace.Trace{Name: "quickstart"}
	a, b := uint64(0x1000), uint64(0x2000)
	add := func(dur uint64, deps ...trace.Dep) {
		tr.Tasks = append(tr.Tasks, trace.Task{
			ID: uint32(len(tr.Tasks)), Duration: dur, Deps: deps,
		})
	}
	add(1000, trace.Dep{Addr: a, Dir: trace.Out})                                    // produce A
	add(2000, trace.Dep{Addr: a, Dir: trace.In}, trace.Dep{Addr: b, Dir: trace.Out}) // A -> B
	add(1500, trace.Dep{Addr: b, Dir: trace.In})                                     // reader 1
	add(1500, trace.Dep{Addr: b, Dir: trace.In})                                     // reader 2
	add(800, trace.Dep{Addr: b, Dir: trace.InOut})                                   // reduce B
	if err := tr.Validate(); err != nil {
		log.Fatal(err)
	}

	// The dependence oracle shows what parallelism exists.
	g := taskgraph.Build(tr)
	fmt.Printf("tasks: %d, dependence edges: %d, critical path: %d cycles, max parallelism: %d\n",
		g.N, g.NumEdges(), g.CriticalPath(), g.MaxParallelism())

	// Run on the accelerator model with 4 workers (HW-only mode). A
	// hand-built trace goes through RunTrace; registered workloads go
	// through sim.Run(Spec{Workload: ...}).
	res, err := sim.RunTrace(tr, sim.Spec{Engine: "picos-hw", Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Verify(tr, res); err != nil {
		log.Fatalf("schedule violates dependences: %v", err)
	}
	fmt.Printf("%s: makespan %d cycles, speedup %.2fx (verified)\n",
		res.Engine, res.Makespan, res.Speedup)

	// Compare with the zero-overhead roofline — same trace, different
	// registry name.
	roof, err := sim.RunTrace(tr, sim.Spec{Engine: "perfect", Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("perfect: makespan %d cycles, speedup %.2fx\n", roof.Makespan, roof.Speedup)
	fmt.Printf("accelerator management overhead: %d cycles (%.1f%%)\n",
		res.Makespan-roof.Makespan,
		100*float64(res.Makespan-roof.Makespan)/float64(roof.Makespan))
}
