package hil

import (
	"encoding/json"
	"testing"

	"repro/internal/apps"
	"repro/internal/picos"
	"repro/internal/synth"
	"repro/internal/trace"
)

// reuseCase is one (trace, config) point of the platform-reuse matrix.
type reuseCase struct {
	name string
	tr   *trace.Trace
	cfg  Config
}

func reuseMatrix(t *testing.T) []reuseCase {
	t.Helper()
	heat, err := apps.Generate(apps.Heat, 768, 64)
	if err != nil {
		t.Fatal(err)
	}
	case2, err := synth.Case(2)
	if err != nil {
		t.Fatal(err)
	}
	case4, err := synth.Case(4)
	if err != nil {
		t.Fatal(err)
	}
	var cases []reuseCase
	for _, mode := range []Mode{HWOnly, HWComm, FullSystem} {
		for _, tc := range []struct {
			name string
			tr   *trace.Trace
		}{{"heat", heat.Trace}, {"case2", case2}, {"case4", case4}} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cases = append(cases, reuseCase{name: tc.name + "/" + mode.String(), tr: tc.tr, cfg: cfg})
		}
	}
	// Shape changes between consecutive runs: LIFO scheduling, the
	// 16-way design (bigger VM/DM), a future architecture, and the
	// cycle-stepped loop.
	lifo := DefaultConfig()
	lifo.Picos.Policy = picos.SchedLIFO
	cases = append(cases, reuseCase{name: "case2/lifo", tr: case2, cfg: lifo})
	w16 := DefaultConfig()
	w16.Picos.Design = picos.DM16Way
	cases = append(cases, reuseCase{name: "case2/16way", tr: case2, cfg: w16})
	multi := DefaultConfig()
	multi.Picos.NumTRS, multi.Picos.NumDCT = 4, 4
	cases = append(cases, reuseCase{name: "case2/4trs4dct", tr: case2, cfg: multi})
	ref := DefaultConfig()
	ref.FastForward = false
	cases = append(cases, reuseCase{name: "case2/cyclestep", tr: case2, cfg: ref})
	return cases
}

// wedgeCase returns the case7-on-direct-hash deadlock: the run that
// leaves the most hostile state behind — stalled queues, a blocked
// gateway, live TM/VM/DM entries — for the next Reset to clean.
func wedgeCase(t *testing.T) reuseCase {
	t.Helper()
	tr, err := synth.Case(7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Picos.Design = picos.DM8Way
	cfg.Watchdog = 500_000
	return reuseCase{name: "case7/8way-wedge", tr: tr, cfg: cfg}
}

func resultJSON(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPlatformReuseEquivalence: one Platform re-Run across the whole
// matrix must produce byte-identical Results to a fresh Platform per
// run — with the case7+8way deadlock interleaved before every point, so
// each Reset starts from a wedged machine and still comes out clean.
func TestPlatformReuseEquivalence(t *testing.T) {
	reused := NewPlatform()
	wedge := wedgeCase(t)
	for _, c := range reuseMatrix(t) {
		wres, err := reused.Run(wedge.tr, wedge.cfg)
		if err != nil {
			t.Fatalf("%s: wedge run errored: %v", wedge.name, err)
		}
		if !wres.Wedged {
			t.Fatalf("%s: expected a wedged result", wedge.name)
		}
		fres, err := NewPlatform().Run(c.tr, c.cfg)
		if err != nil {
			t.Fatalf("%s: fresh run: %v", c.name, err)
		}
		rres, err := reused.Run(c.tr, c.cfg)
		if err != nil {
			t.Fatalf("%s: reused run: %v", c.name, err)
		}
		if fj, rj := resultJSON(t, fres), resultJSON(t, rres); fj != rj {
			t.Errorf("%s: reused platform diverges from fresh\nfresh:  %s\nreused: %s", c.name, fj, rj)
		}
	}
}
