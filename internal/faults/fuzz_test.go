package faults

import (
	"errors"
	"testing"
)

// FuzzParseFaultPlan throws arbitrary strings at the fault-plan and
// recovery parsers. Neither may panic; every rejection must be a typed
// error (ErrBadPlan / ErrBadRecovery), and whatever ParsePlan accepts
// must be stable: re-parsing the same string yields the same plan.
// Checked-in seeds live in testdata/fuzz/FuzzParseFaultPlan.
func FuzzParseFaultPlan(f *testing.F) {
	for _, s := range []string{
		"",
		"axi:drop=0.01@seed7",
		"axi:drop=0.01@seed7+worker:failstop=2@cycle50000+dct:slowdown=4x:shard1",
		"axi:delay=0.02x300@seed9+axi:dup=0.005",
		"dct:vmleak=0.001@seed5:shard0+dct:creditleak=0.002",
		"trs:stall=5000@cycle20000:trs0",
		"arb:stall=4000@cycle15000",
		"gw:stall=3000@cycle10000+arb:stall=1@cycle1",
		"arb:stall=1:trs0", "gw:stall=0",
		"worker:slowdown=4x@cycle10000:len20000:worker1",
		"axi:drop", "axi:drop=2", "x:y=z", "+", ":::", "@", "=",
		"axi:drop=0.1@cycle1@seed2", "\x00", "ﬂaky:drop=0.1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p1, err := ParsePlan(s)
		if err != nil {
			if !errors.Is(err, ErrBadPlan) {
				t.Fatalf("ParsePlan(%q): untyped error %v", s, err)
			}
			if p1 != nil {
				t.Fatalf("ParsePlan(%q): non-nil plan with error", s)
			}
		} else {
			p2, err2 := ParsePlan(s)
			if err2 != nil {
				t.Fatalf("ParsePlan(%q) unstable: accepted then rejected (%v)", s, err2)
			}
			if (p1 == nil) != (p2 == nil) || (p1 != nil && len(p1.Clauses) != len(p2.Clauses)) {
				t.Fatalf("ParsePlan(%q) unstable across parses", s)
			}
			if p1 != nil {
				for i := range p1.Clauses {
					if p1.Clauses[i] != p2.Clauses[i] {
						t.Fatalf("ParsePlan(%q) clause %d unstable: %+v vs %+v", s, i, p1.Clauses[i], p2.Clauses[i])
					}
				}
				// Building the accelerator-side injector must not panic
				// on any accepted plan.
				p1.PicosSide(Recovery{})
			}
		}
		if _, err := ParseRecovery(s); err != nil && !errors.Is(err, ErrBadRecovery) {
			t.Fatalf("ParseRecovery(%q): untyped error %v", s, err)
		}
	})
}
