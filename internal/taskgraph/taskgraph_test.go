package taskgraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// mk builds a trace from a compact spec: each task is a list of deps.
func mk(durations []uint64, deps [][]trace.Dep) *trace.Trace {
	tr := &trace.Trace{Name: "test"}
	for i := range deps {
		d := uint64(1)
		if i < len(durations) {
			d = durations[i]
		}
		tr.Tasks = append(tr.Tasks, trace.Task{ID: uint32(i), Duration: d, Deps: deps[i]})
	}
	return tr
}

func edge(g *Graph, from, to int) bool {
	for _, s := range g.Succ[from] {
		if int(s) == to {
			return true
		}
	}
	return false
}

func TestRAW(t *testing.T) {
	// writer -> reader
	g := Build(mk(nil, [][]trace.Dep{
		{{Addr: 1, Dir: trace.Out}},
		{{Addr: 1, Dir: trace.In}},
	}))
	if !edge(g, 0, 1) {
		t.Fatal("missing RAW edge")
	}
	if len(g.Pred[0]) != 0 {
		t.Fatal("writer should have no predecessors")
	}
}

func TestWAW(t *testing.T) {
	g := Build(mk(nil, [][]trace.Dep{
		{{Addr: 1, Dir: trace.Out}},
		{{Addr: 1, Dir: trace.Out}},
	}))
	if !edge(g, 0, 1) {
		t.Fatal("missing WAW edge")
	}
}

func TestWAR(t *testing.T) {
	g := Build(mk(nil, [][]trace.Dep{
		{{Addr: 1, Dir: trace.Out}},
		{{Addr: 1, Dir: trace.In}},
		{{Addr: 1, Dir: trace.Out}},
	}))
	if !edge(g, 1, 2) {
		t.Fatal("missing WAR edge reader->writer")
	}
	if !edge(g, 0, 2) {
		t.Fatal("missing WAW edge writer->writer")
	}
}

func TestReadersIndependent(t *testing.T) {
	// Multiple readers with no prior writer are all roots and mutually
	// independent (the DM "input" flag situation).
	g := Build(mk(nil, [][]trace.Dep{
		{{Addr: 7, Dir: trace.In}},
		{{Addr: 7, Dir: trace.In}},
		{{Addr: 7, Dir: trace.In}},
	}))
	if g.NumEdges() != 0 {
		t.Fatalf("readers-only graph has %d edges, want 0", g.NumEdges())
	}
	if len(g.Roots()) != 3 {
		t.Fatalf("roots = %v", g.Roots())
	}
}

func TestInOutChain(t *testing.T) {
	// Case4 of the paper: a single chain of inout deps.
	deps := make([][]trace.Dep, 5)
	for i := range deps {
		deps[i] = []trace.Dep{{Addr: 0xA, Dir: trace.InOut}}
	}
	g := Build(mk(nil, deps))
	for i := 0; i < 4; i++ {
		if !edge(g, i, i+1) {
			t.Fatalf("missing chain edge %d->%d", i, i+1)
		}
	}
	if g.NumEdges() != 4 {
		t.Fatalf("chain has %d edges, want 4", g.NumEdges())
	}
	if g.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", g.Depth())
	}
	if g.MaxParallelism() != 1 {
		t.Fatalf("max parallelism = %d, want 1", g.MaxParallelism())
	}
}

func TestProducerConsumerFan(t *testing.T) {
	// Case5-style: one producer, N consumers, then a new producer (WAR).
	deps := [][]trace.Dep{
		{{Addr: 0xA, Dir: trace.Out}},
	}
	for i := 0; i < 4; i++ {
		deps = append(deps, []trace.Dep{{Addr: 0xA, Dir: trace.In}})
	}
	deps = append(deps, []trace.Dep{{Addr: 0xA, Dir: trace.Out}})
	g := Build(mk(nil, deps))
	for c := 1; c <= 4; c++ {
		if !edge(g, 0, c) {
			t.Fatalf("missing RAW edge 0->%d", c)
		}
		if !edge(g, c, 5) {
			t.Fatalf("missing WAR edge %d->5", c)
		}
	}
	if g.MaxParallelism() != 4 {
		t.Fatalf("max parallelism = %d, want 4", g.MaxParallelism())
	}
}

func TestDedupedEdges(t *testing.T) {
	// Two deps on different addrs, both last-written by task 0: only one
	// edge 0->1.
	g := Build(mk(nil, [][]trace.Dep{
		{{Addr: 1, Dir: trace.Out}, {Addr: 2, Dir: trace.Out}},
		{{Addr: 1, Dir: trace.In}, {Addr: 2, Dir: trace.In}},
	}))
	if len(g.Pred[1]) != 1 {
		t.Fatalf("pred[1] = %v, want exactly one edge", g.Pred[1])
	}
}

func TestCriticalPath(t *testing.T) {
	// 0 (10) -> 1 (5) and 0 -> 2 (20); CP = 30.
	g := Build(mk([]uint64{10, 5, 20}, [][]trace.Dep{
		{{Addr: 1, Dir: trace.Out}},
		{{Addr: 1, Dir: trace.In}},
		{{Addr: 1, Dir: trace.In}},
	}))
	if cp := g.CriticalPath(); cp != 30 {
		t.Fatalf("critical path = %d, want 30", cp)
	}
}

func TestCheckSchedule(t *testing.T) {
	g := Build(mk([]uint64{10, 5}, [][]trace.Dep{
		{{Addr: 1, Dir: trace.Out}},
		{{Addr: 1, Dir: trace.In}},
	}))
	// Legal: task 1 starts after task 0 finishes.
	if err := g.CheckSchedule([]uint64{0, 10}, []uint64{10, 15}); err != nil {
		t.Fatalf("legal schedule rejected: %v", err)
	}
	// Illegal: task 1 starts early.
	if err := g.CheckSchedule([]uint64{0, 9}, []uint64{10, 14}); err == nil {
		t.Fatal("illegal schedule accepted")
	}
	// Illegal: finish before start.
	if err := g.CheckSchedule([]uint64{0, 10}, []uint64{10, 9}); err == nil {
		t.Fatal("time-reversed schedule accepted")
	}
	// Wrong length.
	if err := g.CheckSchedule([]uint64{0}, []uint64{10}); err == nil {
		t.Fatal("short schedule accepted")
	}
}

func TestLevelsAndDot(t *testing.T) {
	g := Build(mk(nil, [][]trace.Dep{
		{{Addr: 1, Dir: trace.Out}},
		{{Addr: 1, Dir: trace.InOut}},
		{{Addr: 1, Dir: trace.In}},
	}))
	lv := g.Levels()
	if lv[0] != 0 || lv[1] != 1 || lv[2] != 2 {
		t.Fatalf("levels = %v", lv)
	}
	var dot bytes.Buffer
	if err := g.WriteDOT(&dot, "g"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "t0 -> t1") {
		t.Fatalf("dot output missing edge: %s", dot.String())
	}
	var ascii bytes.Buffer
	if err := g.ASCIILevels(&ascii); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii.String(), "L0") {
		t.Fatal("ascii output missing level header")
	}
	var ranked bytes.Buffer
	if err := g.WriteDOTRanked(&ranked, "g"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rank=same", "t0 -> t1", "t1 -> t2", "// level 2"} {
		if !strings.Contains(ranked.String(), want) {
			t.Fatalf("ranked dot output missing %q: %s", want, ranked.String())
		}
	}
}

// randomTrace builds a random trace over a small address pool so that
// dependences are plentiful.
func randomTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: "rand"}
	for i := 0; i < n; i++ {
		task := trace.Task{ID: uint32(i), Duration: uint64(rng.Intn(50) + 1)}
		nd := rng.Intn(4)
		used := map[uint64]bool{}
		for d := 0; d < nd; d++ {
			addr := uint64(rng.Intn(8))*64 + 0x1000
			if used[addr] {
				continue
			}
			used[addr] = true
			task.Deps = append(task.Deps, trace.Dep{Addr: addr, Dir: trace.Direction(rng.Intn(3))})
		}
		tr.Tasks = append(tr.Tasks, task)
	}
	return tr
}

func TestGraphInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 60)
		g := Build(tr)
		// Edges only point forward (creation order is topological).
		for i := 0; i < g.N; i++ {
			for _, p := range g.Pred[i] {
				if int(p) >= i {
					return false
				}
			}
		}
		// Succ and Pred are mirror images.
		fwd := map[[2]int32]bool{}
		for i := 0; i < g.N; i++ {
			for _, s := range g.Succ[i] {
				fwd[[2]int32{int32(i), s}] = true
			}
		}
		cnt := 0
		for i := 0; i < g.N; i++ {
			for _, p := range g.Pred[i] {
				if !fwd[[2]int32{p, int32(i)}] {
					return false
				}
				cnt++
			}
		}
		if cnt != len(fwd) {
			return false
		}
		// Critical path >= max single duration and <= sum of durations.
		var maxDur, sum uint64
		for _, d := range g.Durations {
			if d > maxDur {
				maxDur = d
			}
			sum += d
		}
		cp := g.CriticalPath()
		return cp >= maxDur && cp <= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
