// Package synth generates the seven synthetic benchmarks of Section IV-C
// used to measure the processing capacity of the Picos prototype
// (Table IV): each test case is a sequence of 100 tasks, issued as fast
// as possible and of length 1 cycle, so the management pipeline — not the
// work — is the bottleneck.
//
//	Case1: independent tasks, 0 dependences
//	Case2: independent tasks, 1 dependence each (all distinct addresses)
//	Case3: independent tasks, 15 dependences each (all distinct)
//	Case4: one chain of 100 inout dependences on a single address
//	Case5: 10 sets of consumers reading the same producer output
//	Case6: 10 rounds of producers feeding one 11-dependence consumer
//	Case7: 10 sets of mixed producer/consumer tasks, 11 deps each
//
// The #d1st/avg#d row of Table IV (0/0, 1/1, 15/15, 1/1, 2/2, 11/2,
// 11/11) is reproduced by construction; see each generator.
package synth

import (
	"fmt"

	"repro/internal/trace"
)

// NumTasks is the length of every synthetic test case.
const NumTasks = 100

// TaskLen is the execution length of every synthetic task in cycles.
const TaskLen = 1

// Case generates synthetic test case n (1..7).
func Case(n int) (*trace.Trace, error) {
	switch n {
	case 1:
		return caseIndependent(1, 0), nil
	case 2:
		return caseIndependent(2, 1), nil
	case 3:
		return caseIndependent(3, 15), nil
	case 4:
		return case4(), nil
	case 5:
		return case5(), nil
	case 6:
		return case6(), nil
	case 7:
		return case7(), nil
	default:
		return nil, fmt.Errorf("synth: no such case %d (want 1..7)", n)
	}
}

// Cases generates all seven cases in order.
func Cases() []*trace.Trace {
	out := make([]*trace.Trace, 7)
	for i := 1; i <= 7; i++ {
		tr, err := Case(i)
		if err != nil {
			panic(err) // unreachable: all 1..7 are valid
		}
		out[i-1] = tr
	}
	return out
}

func newTrace(n int) *trace.Trace {
	return &trace.Trace{Name: fmt.Sprintf("case%d", n)}
}

func addTask(tr *trace.Trace, deps ...trace.Dep) {
	tr.Tasks = append(tr.Tasks, trace.Task{
		ID:       uint32(len(tr.Tasks)),
		Duration: TaskLen,
		Deps:     deps,
	})
}

// addrOf maps a (space, index) pair to a distinct address. The 512-byte
// stride models the contiguous operand buffers the capacity
// microbenchmarks allocate: every synthetic address maps to direct-hash
// set 0 (the word-address bits [8:3] are multiples of 64), so the 8way
// and 16way designs see worst-case clustering — including the genuine
// case7+8way deadlock — while the Pearson fold of P+8way spreads the
// addresses across sets, which is the configuration Table IV measures.
func addrOf(space, idx int) uint64 {
	return 0x60000000 + uint64(space)<<20 + uint64(idx)*512
}

// caseIndependent builds Case1/2/3: every task has nDeps inout deps on
// addresses never used by any other task, so all tasks are independent.
func caseIndependent(caseNo, nDeps int) *trace.Trace {
	tr := newTrace(caseNo)
	for t := 0; t < NumTasks; t++ {
		deps := make([]trace.Dep, nDeps)
		for d := 0; d < nDeps; d++ {
			deps[d] = trace.Dep{Addr: addrOf(t+1, d), Dir: trace.InOut}
		}
		addTask(tr, deps...)
	}
	return tr
}

// case4 builds the single producer-producer chain of Figure 7a: 100
// tasks, each inout on the same address A, so task i depends on task i-1.
func case4() *trace.Trace {
	tr := newTrace(4)
	a := addrOf(0, 0)
	for t := 0; t < NumTasks; t++ {
		addTask(tr, trace.Dep{Addr: a, Dir: trace.InOut})
	}
	return tr
}

// case5 builds Figure 7b: 10 sets; in each set one producer writes A_s
// and 9 consumers read it. Every task also carries a private inout dep so
// that both the first task and the average have 2 dependences (Table IV
// row #d1st/avg#d = 2/2).
func case5() *trace.Trace {
	tr := newTrace(5)
	for s := 0; s < 10; s++ {
		shared := addrOf(100+s, 0)
		addTask(tr,
			trace.Dep{Addr: shared, Dir: trace.Out},
			trace.Dep{Addr: addrOf(100+s, 1), Dir: trace.InOut})
		for c := 0; c < 9; c++ {
			addTask(tr,
				trace.Dep{Addr: shared, Dir: trace.In},
				trace.Dep{Addr: addrOf(100+s, 2+c), Dir: trace.InOut})
		}
	}
	return tr
}

// case6 builds Figure 7c: 10 rounds; each round starts with a consumer
// task carrying 11 dependences — reads of the 9 producer outputs of the
// previous round plus a read of the round input and an inout on its own
// accumulator — followed by 9 single-dependence producers. Round 0's
// consumer reads addresses nobody wrote, so it is ready immediately; the
// first task of the trace therefore has 11 dependences and the average is
// (10*11 + 90*1)/100 = 2, matching Table IV's 11/2.
func case6() *trace.Trace {
	tr := newTrace(6)
	for s := 0; s < 10; s++ {
		deps := make([]trace.Dep, 0, 11)
		for p := 0; p < 9; p++ {
			deps = append(deps, trace.Dep{Addr: addrOf(200+s-1, p), Dir: trace.In})
		}
		deps = append(deps,
			trace.Dep{Addr: addrOf(300+s, 0), Dir: trace.In},
			trace.Dep{Addr: addrOf(300+s, 1), Dir: trace.InOut})
		addTask(tr, deps...)
		for p := 0; p < 9; p++ {
			addTask(tr, trace.Dep{Addr: addrOf(200+s, p), Dir: trace.Out})
		}
	}
	return tr
}

// case7 builds Figure 7d: 10 sets of 10 tasks, every task carrying 11
// dependences over the set's 11 shared addresses with alternating
// directions, creating interleaved producer-consumer and producer-
// producer chains (11/11 in Table IV).
func case7() *trace.Trace {
	tr := newTrace(7)
	for s := 0; s < 10; s++ {
		for t := 0; t < 10; t++ {
			deps := make([]trace.Dep, 0, 11)
			for d := 0; d < 11; d++ {
				dir := trace.In
				if (t+d)%2 == 0 {
					dir = trace.InOut
				}
				deps = append(deps, trace.Dep{Addr: addrOf(400+s, d), Dir: dir})
			}
			addTask(tr, deps...)
		}
	}
	return tr
}
