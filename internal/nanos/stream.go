package nanos

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/sched"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// Streaming ingestion for the software-only runtime: RunSource drives a
// trace.Source through the same discrete-event model as Run, but the
// master creates tasks straight off the stream under a bounded
// descriptor window instead of walking a materialized Tasks array.
//
// The live set holds one node per created-but-unfinished task: the
// master adds a node when its creation event fires and the worker-done
// release deletes it, so at most Config.Window nodes exist at once and
// an arbitrarily long stream replays in O(window) heap (plus the
// per-address dependence state of taskgraph.Incremental — see its doc
// for why that bound is irreducible). When the window is full the
// master parks exactly like the FullSystem HIL master under RunAhead
// backpressure, and the next release re-arms the creation chain.
//
// Dependences resolve incrementally: a new node's predecessor list is
// computed by taskgraph.Incremental, and only predecessors still live
// count toward its remaining counter — a finished predecessor imposes
// no constraint, which is exactly the semantics of Run's pre-counted
// remaining array once submitted tasks are the only ones visible.

// Typed streaming-restriction errors, mirrored on the HIL platform's.
var (
	// ErrStreamWindow rejects RunSource without a positive window: the
	// bounded live set is the entire point of the streaming driver
	// (unbounded callers should materialize and use Run).
	ErrStreamWindow = errors.New("nanos: streaming requires Window > 0")
	// ErrStreamPriority rejects bottom-level priority scheduling under
	// streaming: bottom levels are a whole-graph backward pass, which a
	// bounded window cannot compute.
	ErrStreamPriority = errors.New("nanos: priority scheduling needs the whole graph; not available when streaming")
)

// nodeState is the per-live-task bookkeeping of a streaming run.
type nodeState struct {
	remaining int32   // live predecessors not yet finished
	succ      []int32 // live successors created so far
	ndeps     int     // len(Deps), for the release cost
	dur       uint64
	kind      uint16
}

// RunSource simulates the software-only runtime on a streaming source
// under cfg.Window. Start/Finish schedules are not recorded (they would
// be O(tasks)); the Result carries the aggregate FirstStart/ThrTask
// probes instead.
func RunSource(src trace.Source, cfg Config) (*Result, error) {
	if cfg.Window <= 0 {
		return nil, ErrStreamWindow
	}
	if cfg.Sched == sched.Priority {
		return nil, ErrStreamPriority
	}
	if len(cfg.Classes) > 0 {
		if cfg.Workers != 0 {
			return nil, fmt.Errorf("nanos: both Workers (%d) and Classes (%q) set", cfg.Workers, cfg.Classes.String())
		}
		if err := cfg.Classes.Validate(); err != nil {
			return nil, err
		}
		cfg.Workers = cfg.Classes.Workers()
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("nanos: need at least 1 worker, got %d", cfg.Workers)
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	if cfg.Watchdog == 0 {
		cfg.Watchdog = 1e12
	}
	if err := src.Rewind(); err != nil {
		return nil, fmt.Errorf("nanos: %w", err)
	}
	tm := &cfg.Timing
	threads := cfg.Workers + 1
	kinds := src.Kinds()

	res := &Result{
		Workers:  cfg.Workers,
		Baseline: src.RefSeqCycles(),
	}

	classes := cfg.Classes
	if len(classes) == 0 {
		classes = sched.Single(cfg.Workers)
	}
	// A stream's kind usage is unknown up front: require the class list
	// to cover every declared kind, plus unkinded tasks, conservatively.
	present := make([]bool, len(kinds)+1)
	for i := range present {
		present[i] = true
	}
	if err := classes.CheckCoverage(kinds, present); err != nil {
		return nil, err
	}

	var pool sched.Pool[struct{}]
	pool.Reset(classes, cfg.Sched, cfg.Steal, kinds, nil)

	inc := taskgraph.NewIncremental()
	live := make(map[int32]*nodeState, cfg.Window)

	var (
		events   evHeap
		seq      uint64
		lockFree uint64
		fetched  int // tasks pulled off the stream so far
		finished int
		srcDone  bool

		// One-descriptor lookahead: the next task is pulled when its
		// creation event is scheduled (its CreateCost sets the event
		// time) and enters the live set when that event fires.
		pending   trace.Task
		pendingOK bool
		parked    bool // master paused on a full window

		aggDur    uint64 // Σ durations, for the SerialCycles fallback
		firstSet  bool
		first     uint64
		lastStart uint64
		started   int
	)

	push := func(at uint64, kind evKind, who int, task int32) {
		seq++
		heap.Push(&events, event{at: at, seq: seq, kind: kind, who: who, task: task})
	}
	acquireLock := func(at, hold uint64) uint64 {
		if lockFree > at {
			at = lockFree
		}
		lockFree = at + hold
		res.LockBusy += hold
		return lockFree
	}
	// armCreate pulls the next descriptor and schedules its creation
	// event, provided the stream has one, the window has room and no
	// pull is already in flight. Returns false on stream exhaustion.
	armCreate := func(at uint64) (bool, error) {
		if pendingOK || srcDone || len(live) >= cfg.Window {
			parked = !pendingOK && !srcDone
			return !srcDone, nil
		}
		t, ok := src.Next()
		if !ok {
			srcDone = true
			if err := trace.SourceErr(src); err != nil {
				return false, fmt.Errorf("nanos: %w", err)
			}
			return false, nil
		}
		if err := trace.ValidateTask(&t, fetched, len(kinds)); err != nil {
			return false, fmt.Errorf("nanos: %w", err)
		}
		pending, pendingOK = t, true
		parked = false
		c := t.CreateCost
		if c == 0 {
			c = tm.Create
		}
		push(at+c, evMasterCreate, -1, int32(t.ID))
		return true, nil
	}
	markReady := func(t int32, at uint64) {
		kind := live[t].kind
		pool.Enqueue(uint32(t), kind, struct{}{})
		if w, ok := pool.WakeEligible(kind); ok {
			push(at, evWorkerIdle, w, -1)
		}
	}

	if _, err := armCreate(0); err != nil {
		return nil, err
	}
	for w := 0; w < cfg.Workers; w++ {
		pool.Park(w)
	}

	for {
		horizon, ok := events.nextEvent()
		if !ok {
			break
		}
		if horizon > cfg.Watchdog {
			return nil, fmt.Errorf("nanos: watchdog at cycle %d (%d finished, %d live)", horizon, finished, len(live))
		}
		ev := heap.Pop(&events).(event)
		switch ev.kind {
		case evMasterCreate:
			t := ev.task
			task := pending
			pendingOK = false
			fetched++
			aggDur += task.Duration
			nd := &nodeState{ndeps: len(task.Deps), dur: task.Duration, kind: task.Kind}
			// Only predecessors still live gate this task; finished ones
			// already released their constraint.
			for _, p := range inc.Preds(t, task.Deps) {
				if pn, alive := live[p]; alive {
					pn.succ = append(pn.succ, t)
					nd.remaining++
				}
			}
			live[t] = nd
			hold := tm.inflate(tm.SubmitBase+uint64(nd.ndeps)*tm.SubmitPerDep, threads)
			end := acquireLock(ev.at, hold)
			if nd.remaining == 0 {
				markReady(t, end)
			}
			if _, err := armCreate(end); err != nil {
				return nil, err
			}
		case evWorkerIdle:
			if !pool.CanTake(ev.who) {
				pool.Park(ev.who)
				continue
			}
			hold := tm.inflate(tm.PopHold, threads)
			end := acquireLock(ev.at, hold)
			it, _ := pool.TakeFor(ev.who)
			t := int32(it.ID)
			if !firstSet || end < first {
				first, firstSet = end, true
			}
			if end > lastStart {
				lastStart = end
			}
			started++
			fin := end + pool.Scale(ev.who, live[t].dur)
			push(fin, evWorkerDone, ev.who, t)
			if pool.Len() > 0 {
				if w, ok := pool.WakeAny(); ok {
					push(end, evWorkerIdle, w, -1)
				}
			}
		case evWorkerDone:
			t := ev.task
			nd := live[t]
			hold := tm.inflate(tm.ReleaseBase+uint64(nd.ndeps)*tm.ReleasePerDep, threads)
			end := acquireLock(ev.at, hold)
			finished++
			if ev.at > res.Makespan {
				res.Makespan = ev.at
			}
			for _, s := range nd.succ {
				sn := live[s]
				sn.remaining--
				if sn.remaining == 0 {
					markReady(s, end)
				}
			}
			delete(live, t) // retire: the window slot reopens
			if parked {
				if _, err := armCreate(end); err != nil {
					return nil, err
				}
			}
			push(end, evWorkerIdle, ev.who, -1)
		}
	}

	if len(live) > 0 || pendingOK || !srcDone {
		return nil, fmt.Errorf("nanos: stream stalled with %d live tasks after %d finished (scheduler wedge)", len(live), finished)
	}
	if res.Baseline == 0 {
		res.Baseline = src.SerialCycles() + aggDur
	}
	if res.Makespan > 0 {
		res.Speedup = float64(res.Baseline) / float64(res.Makespan)
	}
	res.FirstStart = first
	if started > 1 {
		res.ThrTask = float64(lastStart-first) / float64(started-1)
	}
	return res, nil
}
