package picos

// dctUnit is one Dependence Chain Tracker: it performs address matching
// in the Dependence Memory, maintains version chains in the Version
// Memory, and emits ready/dependent/wake packets (Sections III-A/C/D).
type dctUnit struct {
	id     uint8
	p      *Picos
	dm     *depMemory
	vm     *versionMemory
	timing *Timing

	// Inputs.
	newDepQ regFIFO[newDepPkt]    // from GW (N4)
	finQ    regFIFO[finishDepPkt] // from TRS via ARB (F3)

	// Head-of-line stall state for newDepQ: a dependence that cannot be
	// stored blocks the queue — and with it, registration of every later
	// dependence routed here — until a release frees space. Under the
	// default ConflictSidetrack policy only VM exhaustion and second-set
	// conflicts stall the head this way; a first DM-set conflict parks in
	// the sidetrack register below instead. stall records which per-cycle
	// counter the retries feed, so a fast-forwarded stretch can
	// batch-account exactly what the cycle-by-cycle retries would have.
	headStalled     bool
	conflictCounted bool
	stall           stallKind

	// Conflict sidetrack register (ConflictSidetrack): one dependence
	// whose DM set was full, parked out of the queue so registration of
	// later dependences keeps flowing. The parked dependence retries
	// every cycle with strict priority over the queue, which preserves
	// program order per address (a later dependence on the same address
	// maps to the same — still full — set and can never overtake) and
	// keeps the set closed to younger insertions, so the head-of-line
	// deadlock-freedom argument carries over unchanged. parkedStall
	// records why the last retry failed (the set may drain into a VM
	// shortage), for the same batch-accounting as the head stall.
	hasParked   bool
	parked      newDepPkt
	parkedSet   int
	parkedStall stallKind
	// parkedRetryAt schedules the one retry that a release arriving while
	// the registration engine was mid-operation could not attempt
	// immediately: the engine frees at busyUntil, and without surfacing
	// that cycle as an event the fast path would sleep through a retry
	// the per-cycle reference loop performs (and that may now succeed).
	// Zero means no retry is owed; failed retries clear it, because a
	// retry can only start succeeding after another release.
	parkedRetryAt uint64

	busyUntil    uint64 // registration engine
	busyUntilFin uint64 // release engine (overlapped in the prototype)
	busy         uint64
	hid          int32 // horizon-heap slot
}

// stallKind labels why a dependence cannot be stored, i.e. which Stats
// counter every retry cycle feeds.
type stallKind uint8

const (
	stallNone   stallKind = iota
	stallVMFull           // version memory exhausted (VMStallCycles)
	stallDMSet            // DM set full (DMConflictStallCycles)
)

func newDCT(id uint8, p *Picos) *dctUnit {
	design := p.cfg.Design
	return &dctUnit{
		id:     id,
		p:      p,
		dm:     newDepMemory(design, shardSets(p.cfg.NumDCT)),
		vm:     newVersionMemory(shardCapacity(design, p.cfg.NumDCT)),
		timing: &p.cfg.Timing,
	}
}

// reset scrubs the unit back to its just-built state: the dependence and
// version memories are cleared in place and only reallocated when the
// design or the shard count changes their shape (associativity and the
// shard's partition of sets size both).
func (u *dctUnit) reset(design DMDesign) {
	sets := shardSets(u.p.cfg.NumDCT)
	if u.dm.ways != design.Ways() || u.dm.numSets != sets {
		u.dm = newDepMemory(design, sets)
	} else {
		u.dm.reset()
		u.dm.design = design
	}
	if capacity := shardCapacity(design, u.p.cfg.NumDCT); len(u.vm.entries) != capacity {
		u.vm = newVersionMemory(capacity)
	} else {
		u.vm.reset()
	}
	u.newDepQ.reset()
	u.finQ.reset()
	u.headStalled, u.conflictCounted, u.stall = false, false, stallNone
	u.hasParked, u.parked, u.parkedSet, u.parkedStall = false, newDepPkt{}, 0, stallNone
	u.parkedRetryAt = 0
	u.busyUntil, u.busyUntilFin, u.busy = 0, 0, 0
}

// sidetracked reports whether the conflict sidetrack is enabled.
func (u *dctUnit) sidetracked() bool { return u.p.cfg.Conflict == ConflictSidetrack }

func (u *dctUnit) step(now uint64) {
	// Release engine: frees DM ways and VM entries — including the very
	// stalls blocking the registration path — without costing
	// registration throughput.
	for u.busyUntilFin <= now {
		pkt, ok := u.finQ.pop(now)
		if !ok {
			break
		}
		u.p.markDirty(u.hid)
		u.handleFinish(pkt, now)
	}
	// Sidetrack retry port: the parked dependence retries once per cycle
	// (when the registration engine is free) with priority over the
	// queue, and charges its stall counter every cycle it stays parked —
	// exactly what a stalled queue head would have charged. skipTo
	// batch-accounts the same charge across fast-forwarded stretches.
	if u.hasParked {
		if u.busyUntil <= now {
			u.parkedRetryAt = 0
			if kind := u.tryNewDep(u.parked, now); kind == stallNone {
				u.hasParked = false
				u.parked = newDepPkt{}
				// The head (possibly stalled behind this very set) is
				// re-attempted once the engine frees; put it back on the
				// horizon so the fast path wakes for that attempt. Its
				// conflictCounted marker survives so a re-stall does not
				// count the same dependence twice.
				u.headStalled = false
				u.stall = stallNone
				u.p.markDirty(u.hid)
			} else {
				u.parkedStall = kind
			}
		}
		if u.hasParked {
			if u.parkedStall == stallVMFull {
				u.p.stats.VMStallCycles++
			} else {
				u.p.stats.DMConflictStallCycles++
			}
		}
	}
	for u.busyUntil <= now {
		pkt, ok := u.newDepQ.peek(now)
		if !ok {
			return
		}
		kind := u.tryNewDep(pkt, now)
		if kind == stallNone {
			u.newDepQ.pop(now)
			u.headStalled = false
			u.conflictCounted = false
			u.stall = stallNone
			continue
		}
		if kind == stallDMSet && u.sidetracked() && !u.hasParked {
			// Park the conflict and keep registering: the dependence
			// found its set full — one DM conflict, counted unless this
			// head was already counted while waiting on a different set —
			// and moves to the sidetrack so later dependences (which the
			// creation pipeline keeps delivering) still flow.
			u.newDepQ.pop(now)
			u.hasParked = true
			u.parked = pkt
			u.parkedSet = u.dm.index(pkt.addr)
			u.parkedStall = stallDMSet
			if !u.conflictCounted {
				u.p.stats.DMConflicts++
			}
			u.p.stats.DMConflictStallCycles++
			u.headStalled = false
			u.conflictCounted = false
			u.stall = stallNone
			u.p.markDirty(u.hid)
			u.busyUntil = now + 1
			u.p.noteBusy(u.busyUntil)
			return
		}
		// Stalled: retry next cycle, and drop the head from the horizon —
		// only a release can make the retry succeed.
		if !u.headStalled {
			u.headStalled = true
			u.p.markDirty(u.hid)
		}
		if kind == stallVMFull {
			if !u.conflictCounted {
				u.p.stats.VMStallEvents++
				u.conflictCounted = true
			}
			u.p.stats.VMStallCycles++
			u.stall = stallVMFull
		} else {
			// A head conflicting while the sidetrack is occupied waits in
			// order. If it waits on a different set than the parked
			// dependence, that is a distinct saturated set — a conflict of
			// its own; the same set is the episode the sidetrack already
			// counted (the head inherits it when the slot frees, without
			// recounting).
			if !u.conflictCounted && (!u.sidetracked() || u.dm.index(pkt.addr) != u.parkedSet) {
				u.p.stats.DMConflicts++
				u.conflictCounted = true
			}
			u.p.stats.DMConflictStallCycles++
			u.stall = stallDMSet
		}
		u.busyUntil = now + 1
		u.p.noteBusy(u.busyUntil)
		return
	}
}

func (u *dctUnit) consume(now, cost uint64) uint64 {
	if f := u.p.cfg.Faults; f != nil {
		cost = f.ScaleDCT(int(u.id), cost)
	}
	u.busyUntil = now + cost
	u.busy += cost
	u.p.markDirty(u.hid)
	u.p.noteBusy(u.busyUntil)
	return u.busyUntil
}

// egress stamps a packet leaving this shard: shard k sits k fabric
// registers away from the arbiter port, so its outbound traffic pays
// k shard hops before it is routable. Shard 0 (every single-DCT build)
// pays nothing.
func (u *dctUnit) egress(at uint64) uint64 {
	return at + uint64(u.id)*u.timing.ShardHop
}

func (u *dctUnit) sendStatus(pkt depStatusPkt, at uint64) {
	u.p.arb.route(arbMsg{kind: arbStat, stat: pkt}, u.egress(at))
}

func (u *dctUnit) sendWake(pkt wakePkt, at uint64) {
	u.p.arb.route(arbMsg{kind: arbWake, wake: pkt}, u.egress(at))
}

// tryNewDep registers one dependence (flow N5). It returns stallNone on
// success, or the reason the dependence cannot be stored yet (DM set
// full or VM capacity); the caller decides whether that stalls the queue
// head or parks in the sidetrack, and does the stall accounting.
func (u *dctUnit) tryNewDep(pkt newDepPkt, now uint64) stallKind {
	st := &u.p.stats
	if ref, hit := u.dm.lookup(pkt.addr); hit {
		e := u.dm.at(ref)
		tailIdx := e.tail
		tail := u.vm.at(tailIdx)
		if pkt.dir.Writes() {
			// New producer: open a new version behind the current one.
			idx, ok := u.vm.alloc()
			if !ok {
				return stallVMFull
			}
			nv := u.vm.at(idx)
			nv.dm = ref
			nv.hasProducer = true
			nv.producer = pkt.task
			tail.hasNext = true
			tail.next = idx
			e.tail = idx
			e.count++
			e.input = false
			done := u.consume(now, u.timing.DCTNewDep)
			nv.statusAt = done + u.timing.DCTPipe
			u.sendStatus(depStatusPkt{
				task: pkt.task, depIdx: pkt.depIdx,
				vm: VMAddr{DCT: u.id, Idx: idx},
			}, done+u.timing.DCTPipe)
		} else {
			// Consumer of the newest version.
			tail.numConsumers++
			done := u.consume(now, u.timing.DCTNewDep)
			tail.statusAt = done + u.timing.DCTPipe
			status := depStatusPkt{
				task: pkt.task, depIdx: pkt.depIdx,
				vm: VMAddr{DCT: u.id, Idx: tailIdx},
			}
			if tail.producerDone {
				// The value already exists (or the chain is input-only).
				status.ready = true
			} else if u.p.cfg.Wake == WakeFirstFirst {
				// Ablation: chains point forward; the previous tail gets
				// a wake pointer to the new consumer.
				if tail.chainLen == 0 {
					tail.chainHead = pkt.task
				} else {
					u.sendStatus(depStatusPkt{
						task: tail.chainTail, vm: VMAddr{DCT: u.id, Idx: tailIdx},
						setWake: true, hasWake: true, wakeTask: pkt.task,
					}, now+u.timing.DCTPipe)
				}
				tail.chainTail = pkt.task
				tail.chainLen++
			} else {
				// Chain behind the previous last consumer: the paper's
				// dependent packet carries the wake pointer, and the new
				// consumer becomes the chain tail kept in the VM.
				if tail.chainLen > 0 {
					status.hasWake = true
					status.wakeTask = tail.chainTail
				}
				tail.chainTail = pkt.task
				tail.chainLen++
			}
			u.sendStatus(status, done+u.timing.DCTPipe)
		}
		st.DepsProcessed++
		return stallNone
	}

	// Miss: first live appearance of the address.
	if u.vm.freeCount() == 0 {
		return stallVMFull
	}
	// Probe for a free way before allocating VM so a conflict does not
	// leak a version entry.
	idx, _ := u.vm.alloc()
	ref, ok := u.dm.insert(pkt.addr, idx, !pkt.dir.Writes())
	if !ok {
		u.vm.release(idx)
		return stallDMSet
	}
	nv := u.vm.at(idx)
	nv.dm = ref
	if pkt.dir.Writes() {
		nv.hasProducer = true
		nv.producer = pkt.task
	} else {
		// Input-only so far: vacuously "produced".
		nv.producerDone = true
		nv.numConsumers = 1
	}
	done := u.consume(now, u.timing.DCTNewDep)
	nv.statusAt = done + u.timing.DCTPipe
	u.sendStatus(depStatusPkt{
		task: pkt.task, depIdx: pkt.depIdx,
		vm:    VMAddr{DCT: u.id, Idx: idx},
		ready: true,
	}, done+u.timing.DCTPipe)
	st.DepsProcessed++
	if live := u.vm.live(); live > st.MaxVMLive {
		st.MaxVMLive = live
	}
	return stallNone
}

// handleFinish releases one dependence of a finished task (F4): mark the
// producer done (waking the last consumer) or count a consumer finish;
// when the version drains, wake the next version's producer and recycle
// the entries.
func (u *dctUnit) handleFinish(pkt finishDepPkt, now uint64) {
	cost := u.timing.DCTFinDep
	leakCredit := false
	if f := u.p.cfg.Faults; f != nil {
		cost = f.ScaleDCT(int(u.id), cost)
		leakCredit = f.LeakCredit(int(u.id))
	}
	done := now + cost
	u.busyUntilFin = done
	u.busy += cost
	u.p.noteBusy(done)
	if !leakCredit {
		u.p.gw.returnCredit(u.id)
	}
	if u.hasParked && u.busyUntil > now {
		// This release may free the parked dependence's set, but the
		// registration engine is mid-operation: owe a retry at the cycle
		// it frees (see parkedRetryAt).
		u.parkedRetryAt = u.busyUntil
		u.p.markDirty(u.hid)
	}
	v := u.vm.at(pkt.vm.Idx)
	if !v.used {
		u.p.stats.ProtocolErrors++
		return
	}
	if v.hasProducer && !v.producerDone && v.producer == pkt.task {
		v.producerDone = true
		if v.chainLen > 0 {
			// Wake the chain: from the last consumer under the paper's
			// design (Figure 5, link 1), from the first under the
			// ablation order. The wake leaves as soon as the VM read
			// resolves the target; the recycle write-back below proceeds
			// on the engine timer (busyUntilFin) concurrently.
			entry := v.chainTail
			if u.p.cfg.Wake == WakeFirstFirst {
				entry = v.chainHead
			}
			u.sendWake(wakePkt{task: entry, vm: pkt.vm}, max(now+u.timing.DCTPipe, v.statusAt))
			u.p.stats.WakesRouted++
		}
	} else {
		v.finished++
	}
	if v.complete() {
		u.completeVersion(pkt.vm.Idx, now)
	}
}

// completeVersion recycles a drained version: advance the DM entry to the
// next version (waking its producer) or free the DM entry when this was
// the last one.
func (u *dctUnit) completeVersion(idx uint16, at uint64) {
	v := u.vm.at(idx)
	e := u.dm.at(v.dm)
	if v.hasNext {
		nv := u.vm.at(v.next)
		u.sendWake(wakePkt{task: nv.producer, vm: VMAddr{DCT: u.id, Idx: v.next}}, max(at+u.timing.DCTPipe, nv.statusAt))
		u.p.stats.WakesRouted++
		e.head = v.next
		e.count--
	} else {
		u.dm.free(v.dm)
	}
	if f := u.p.cfg.Faults; f != nil && f.LeakVM(int(u.id)) {
		// Version-slot leak: the write-back that recycles this VM entry
		// is lost, so the slot stays occupied for the rest of the run —
		// capacity pressure the credit pool never sees.
		return
	}
	u.vm.release(idx)
}

// nextEvent returns the earliest cycle at which the DCT can make
// progress on its own: a release on the finish engine or a registration
// on the new-dependence engine. A stalled head and a parked sidetrack
// dependence are excluded — their retries cannot succeed until a release
// (an event in its own right) frees space, and the stall cycles they
// would burn in between are batch-accounted by Picos.skipTo using the
// recorded stall kinds.
func (u *dctUnit) nextEvent() (uint64, bool) {
	next, ok := uint64(0), false
	if at, qok := u.finQ.headAt(); qok {
		next, ok = max(at, u.busyUntilFin), true
	}
	if at, qok := u.newDepQ.headAt(); qok && !u.headStalled {
		if c := max(at, u.busyUntil); !ok || c < next {
			next, ok = c, true
		}
	}
	if u.hasParked && u.parkedRetryAt > 0 {
		if !ok || u.parkedRetryAt < next {
			next, ok = u.parkedRetryAt, true
		}
	}
	return next, ok
}

// active reports pending work. A stalled head or a parked dependence
// with nothing else going on does not count as active: only an external
// finish can unblock either.
func (u *dctUnit) active(now uint64) bool {
	if u.busyUntil > now || u.busyUntilFin > now || !u.finQ.empty() {
		return true
	}
	if u.newDepQ.empty() {
		return false
	}
	// A blocked head only unblocks via external finish notifications.
	return !u.headStalled
}
