package fidelity

import (
	"testing"

	"repro/internal/paperref"
)

// goldenSummary locks the fast report's summary line: every one of the
// 150 cells reproduces the paper within tolerance and
// paperref.KnownGaps is empty. Any model change that shifts a cell
// across a verdict boundary — an improvement or a regression — must
// update this line (and, for new non-Match cells, add a
// paperref.KnownGaps entry justifying them).
const goldenSummary = "**Summary: 150 cells match, 0 near, 0 diverge (of 150).**"

func TestFastReportGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full fidelity comparison skipped in -short mode")
	}
	rep, err := Compare(Options{SkipFig11: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.SummaryLine(); got != goldenSummary {
		t.Errorf("fidelity summary drifted:\n got  %s\n want %s", got, goldenSummary)
	}
	for _, l := range rep.NonMatching() {
		if l.Verdict == paperref.Diverge {
			t.Errorf("DIVERGING cell %s | %s: %s", l.Experiment, l.Cell, paperref.Delta(l.Got, l.Want))
			continue
		}
		if _, ok := paperref.FindGap(l.Experiment, l.Cell); !ok {
			t.Errorf("near cell %s | %s (%s) has no KnownGaps entry documenting it",
				l.Experiment, l.Cell, paperref.Delta(l.Got, l.Want))
		}
	}
	// The documented gaps must stay real: an entry for a cell that now
	// fully matches is stale documentation.
	for _, g := range paperref.KnownGaps {
		found := false
		for _, l := range rep.NonMatching() {
			if l.Experiment == g.Experiment && l.Cell == g.Cell {
				found = true
			}
		}
		if !found {
			t.Errorf("KnownGaps entry %q | %q no longer corresponds to a non-matching cell; remove or update it",
				g.Experiment, g.Cell)
		}
	}
}
