// Package fidelity runs the full paper-vs-reproduction comparison: every
// measured cell of Tables I-IV and the Figure 8/11 anchors is diffed
// against the numbers embedded in internal/paperref. It is the engine
// behind cmd/picos-report and behind the golden test that locks the
// summary line, so a fidelity regression — a cell drifting out of
// tolerance — fails CI instead of silently shipping.
package fidelity

import (
	"fmt"

	"repro/internal/paperref"
	"repro/internal/picos"
	"repro/internal/resources"
	"repro/internal/sim"

	_ "repro/internal/engines"
)

// Options tunes the comparison scope.
type Options struct {
	// SkipFig11 skips the Figure 11 scalability sweep, the one
	// long-running comparison (picos-report -fast).
	SkipFig11 bool
}

// Compare runs every comparison and returns the accumulated report.
func Compare(opt Options) (*paperref.Report, error) {
	var rep paperref.Report
	if err := compareTable1(&rep); err != nil {
		return nil, err
	}
	if err := compareTable2(&rep); err != nil {
		return nil, err
	}
	compareTable3(&rep)
	if err := compareTable4(&rep); err != nil {
		return nil, err
	}
	if err := compareFig8(&rep); err != nil {
		return nil, err
	}
	if !opt.SkipFig11 {
		if err := compareFig11(&rep); err != nil {
			return nil, err
		}
	}
	return &rep, nil
}

func compareTable1(rep *paperref.Report) error {
	for _, ref := range paperref.TableI {
		tr, err := sim.BuildWorkload(sim.Spec{Workload: ref.App, Block: ref.Block})
		if err != nil {
			return err
		}
		s := tr.Summarize()
		cell := fmt.Sprintf("%s/%d", ref.App, ref.Block)
		rep.Add("Table I #Tasks", cell, float64(s.NumTasks), float64(ref.Tasks), 0.12, 3)
		rep.Add("Table I AvgTSize", cell, s.AvgTaskSize, ref.AvgSize, 0.05, 0)
		rep.Add("Table I SeqExec", cell, float64(tr.Baseline()), ref.SeqCycles, 0.15, 0)
	}
	return nil
}

func compareTable2(rep *paperref.Report) error {
	for _, ref := range paperref.TableII {
		for _, d := range []struct {
			design string
			want   int
		}{
			{"8way", ref.DM8},
			{"16way", ref.DM16},
			{"p8way", ref.DMP8},
		} {
			res, err := sim.Run(sim.Spec{
				Engine:    "picos-hw",
				Workload:  ref.App,
				Block:     ref.Block,
				Design:    d.design,
				Admission: "slots",
			})
			if err != nil {
				return err
			}
			got := float64(res.Stats.DMConflicts + res.Stats.VMStallEvents)
			cell := fmt.Sprintf("%s/%d %s", ref.App, ref.Block, d.design)
			// Conflict counts are sensitive to exact address layout;
			// judge within 40% with a 120-count floor.
			rep.Add("Table II #DM conflicts", cell, got, float64(d.want), 0.40, 120)
		}
	}
	return nil
}

func compareTable3(rep *paperref.Report) {
	model := []resources.Report{
		resources.TM(),
		resources.VM(picos.DM8Way),
		resources.VM(picos.DM16Way),
		resources.DM(picos.DM8Way),
		resources.DM(picos.DM16Way),
		resources.DM(picos.DMP8Way),
		resources.TRS(),
		resources.DCT(picos.DMP8Way),
		resources.Glue(),
		resources.FullPicos(picos.DMP8Way, 1, 1),
	}
	for i, ref := range paperref.TableIII {
		rep.Add("Table III LUT%", ref.Design, model[i].LUTPct(), ref.LUTPct, 0.25, 0.3)
		rep.Add("Table III BRAM%", ref.Design, model[i].BRAMPct(), ref.BRAMPct, 0.25, 1.0)
	}
}

func compareTable4(rep *paperref.Report) error {
	engines := []string{"picos-hw", "picos-comm", "picos-full"}
	for mi, ref := range paperref.TableIV {
		for c := 1; c <= 7; c++ {
			res, err := sim.Run(sim.Spec{
				Engine:   engines[mi],
				Workload: fmt.Sprintf("case%d", c),
			})
			if err != nil {
				return err
			}
			cell := fmt.Sprintf("%s case%d", ref.Mode, c)
			rep.Add("Table IV L1st", cell, float64(res.FirstStart), ref.L1st[c-1], 0.30, 10)
			rep.Add("Table IV thrTask", cell, res.ThrTask, ref.ThrTask[c-1], 0.30, 8)
		}
	}
	return nil
}

func compareFig8(rep *paperref.Report) error {
	for _, a := range paperref.Fig8Anchors {
		for _, wa := range []struct {
			workers int
			want    float64
		}{{2, a.Workers2}, {12, a.Workers12}} {
			res, err := sim.Run(sim.Spec{
				Engine:   "picos-hw",
				Workload: a.App,
				Block:    a.Block,
				Workers:  wa.workers,
			})
			if err != nil {
				return err
			}
			cell := fmt.Sprintf("%s/%d P+8way %dw", a.App, a.Block, wa.workers)
			rep.Add("Figure 8 speedup", cell, res.Speedup, wa.want, 0.15, 0)
		}
	}
	return nil
}

func compareFig11(rep *paperref.Report) error {
	for _, c := range paperref.Fig11Claims {
		// Nanos cap claim.
		var nanosBest float64
		for _, w := range []int{4, 8, 12, 24} {
			nres, err := sim.Run(sim.Spec{Engine: "nanos", Workload: c.App, Block: c.Block, Workers: w})
			if err != nil {
				return err
			}
			if nres.Speedup > nanosBest {
				nanosBest = nres.Speedup
			}
		}
		cell := fmt.Sprintf("%s/%d nanos best<=%.0f", c.App, c.Block, c.NanosMax)
		verdictVal := 0.0
		if nanosBest <= c.NanosMax {
			verdictVal = 1
		}
		rep.Add("Figure 11 shape", cell, verdictVal, 1, 0, 0)

		// Picos keeps scaling claim: speedup at PicosWorkers >= 0.95x the
		// 8-worker speedup.
		p8, err := runFull(c.App, c.Block, 8)
		if err != nil {
			return err
		}
		pw, err := runFull(c.App, c.Block, c.PicosWorkers)
		if err != nil {
			return err
		}
		cell = fmt.Sprintf("%s/%d picos %dw>=8w", c.App, c.Block, c.PicosWorkers)
		verdictVal = 0
		if pw >= 0.95*p8 {
			verdictVal = 1
		}
		rep.Add("Figure 11 shape", cell, verdictVal, 1, 0, 0)

		// Roofline bound: Picos never exceeds Perfect.
		roof, err := sim.Run(sim.Spec{Engine: "perfect", Workload: c.App, Block: c.Block, Workers: c.PicosWorkers})
		if err != nil {
			return err
		}
		verdictVal = 0
		if pw <= roof.Speedup*1.01 {
			verdictVal = 1
		}
		cell = fmt.Sprintf("%s/%d picos<=perfect", c.App, c.Block)
		rep.Add("Figure 11 shape", cell, verdictVal, 1, 0, 0)
	}
	return nil
}

func runFull(app string, block, workers int) (float64, error) {
	res, err := sim.Run(sim.Spec{Engine: "picos-full", Workload: app, Block: block, Workers: workers})
	if err != nil {
		return 0, err
	}
	return res.Speedup, nil
}
