package hil

import (
	"errors"
	"fmt"

	"repro/internal/sched"
	"repro/internal/trace"
)

// Streaming ingestion: the platform fed from a trace.Source under a
// bounded descriptor window instead of a materialized trace. A task is
// "live" from the moment the platform creates its descriptor (submits
// it in HW-only mode, hands it to the link in HW+comm mode, creates it
// on the master in Full-system mode) until it retires — finishes,
// is refused at admission, or is permanently lost to a fault. At most
// Config.Window descriptors are live at once, so an arbitrarily long
// source replays in O(window) heap: no schedule arrays, no whole-trace
// task slice, just the live map and aggregate probes.
//
// The window is modeled backpressure on creation. It composes with the
// existing knobs — picos.NewQDepth (the accelerator's submission
// buffer) and RunAhead (the Full-system master's creation window) — so
// a windowed run can legitimately differ from the unbounded one; what
// must not differ is the fast loop against the cycle-stepped reference
// at the same window, which the equivalence matrix enforces.

// Typed streaming construction errors, so callers can gate sweeps with
// errors.Is instead of string matching.
var (
	// ErrStreamWindow rejects RunStream without a positive window: an
	// unbounded window means the workload may as well be materialized,
	// which is the Run path (sim.RunSource routes it there).
	ErrStreamWindow = errors.New("hil: RunStream needs Config.Window > 0")
	// ErrStreamPriority rejects the priority grant policy under
	// streaming: it ranks tasks by whole-graph bottom levels, which do
	// not exist until the whole graph has been seen.
	ErrStreamPriority = errors.New("hil: priority scheduling ranks tasks by whole-graph bottom levels and cannot stream")
	// ErrStreamDegrade rejects degrade recovery under streaming: the
	// gateway refuses blocked heads inside the accelerator without
	// surfacing which task was popped, so the runner could never retire
	// the descriptor and the window would leak shut.
	ErrStreamDegrade = errors.New("hil: degrade recovery refuses tasks inside the accelerator without surfacing their identity and cannot stream")
)

// RunStream drives a streaming task source through the platform under
// cfg, keeping at most cfg.Window created-but-unretired descriptors
// live. The Result carries aggregate probes only — Start/Finish/Order
// stay nil, because per-task arrays are exactly the O(tasks) state the
// window exists to avoid.
func (pl *Platform) RunStream(src trace.Source, cfg Config) (*Result, error) {
	if err := pl.r.resetStream(src, cfg); err != nil {
		pl.r.scrub()
		return nil, err
	}
	res, err := pl.r.run()
	pl.r.scrub()
	return res, err
}

// RunStream drives a source through a pooled platform.
func RunStream(src trace.Source, cfg Config) (*Result, error) {
	pl := platformPool.Get().(*Platform)
	res, err := pl.RunStream(src, cfg)
	platformPool.Put(pl)
	return res, err
}

// resetStream prepares the runner to feed from src under the bounded
// window, rejecting the configurations that structurally need the whole
// graph.
func (r *runner) resetStream(src trace.Source, cfg Config) error {
	if cfg.Window <= 0 {
		return ErrStreamWindow
	}
	if cfg.Sched == sched.Priority {
		return ErrStreamPriority
	}
	if cfg.Recovery.Degrade > 0 {
		return ErrStreamDegrade
	}
	if err := src.Rewind(); err != nil {
		return fmt.Errorf("hil: %w", err)
	}
	r.tr, r.src, r.window = nil, src, cfg.Window
	return r.resetCommon(cfg)
}

// windowOpen reports whether streaming ingestion may create another
// descriptor: fewer than window tasks are live. Materialized runs have
// no window and are always open.
func (r *runner) windowOpen() bool {
	return r.src == nil || len(r.live) < r.window
}

// retire drops a live streaming descriptor once it can never act again
// (finished, refused, or lost); the freed window slot is what lets the
// feed pull the next task. No-op on materialized runs.
func (r *runner) retire(id uint32) {
	if r.src != nil {
		delete(r.live, id)
	}
}

// taskAt resolves a task index to its descriptor: the trace slice on
// materialized runs, the live map on streaming ones. Every index the
// runner holds (parked, in flight, granted) belongs to a live task, so
// the map lookup cannot miss.
func (r *runner) taskAt(idx uint32) *trace.Task {
	if r.src == nil {
		return &r.tr.Tasks[idx]
	}
	return r.live[idx]
}

// srcHasNext reports whether the source may still produce a task. It is
// conservatively true before the exhausting Next call has happened;
// every consumer peeks (which settles it) before acting on it, so a
// stale true only delays a wedge proof by one evaluated iteration.
func (r *runner) srcHasNext() bool { return r.lookaheadOK || !r.srcDone }

// srcPeek exposes the next task without consuming it: the streaming
// equivalent of &tr.Tasks[next]. Tasks are validated here, as they
// arrive — the whole-trace Validate needs a whole trace. A validation
// or mid-stream source error parks in feedErr and ends the stream; the
// run loops surface it.
func (r *runner) srcPeek() (*trace.Task, bool) {
	if r.lookaheadOK {
		return &r.lookahead, true
	}
	if r.srcDone {
		return nil, false
	}
	t, ok := r.src.Next()
	if !ok {
		r.srcDone = true
		if err := trace.SourceErr(r.src); err != nil && r.feedErr == nil {
			r.feedErr = fmt.Errorf("hil: stream %s: %w", r.src.Name(), err)
		}
		return nil, false
	}
	if err := trace.ValidateTask(&t, r.fetched, len(r.kinds)); err != nil {
		r.srcDone = true
		if r.feedErr == nil {
			r.feedErr = fmt.Errorf("hil: stream %s: %w", r.src.Name(), err)
		}
		return nil, false
	}
	r.lookahead, r.lookaheadOK = t, true
	return &r.lookahead, true
}

// srcCommit consumes the peeked task into the live window and returns
// its index. Callers peek first; committing without a valid lookahead
// is a programming error the live-map miss would surface immediately.
func (r *runner) srcCommit() uint32 {
	t := r.lookahead
	r.lookaheadOK = false
	r.fetched++
	r.aggDur += t.Duration
	r.live[t.ID] = &t
	return t.ID
}

// feedPending reports an unfinished materialized HW-only preload feed
// (tasks [feedNext, len) not yet handed to the accelerator). Streaming
// runs feed from the source instead; see stepSubmits.
func (r *runner) feedPending() bool {
	return r.src == nil && r.feedNext < len(r.tr.Tasks)
}

// masterHasNext reports whether the FullSystem master has another task
// to create.
func (r *runner) masterHasNext() bool {
	if r.src == nil {
		return r.masterNext < len(r.tr.Tasks)
	}
	return r.srcHasNext()
}

// tasksOutstanding reports that tasks which could still produce (or
// become) work remain: the run loops terminate when it turns false and
// the platform has drained. On materialized runs this is the historical
// accounted() < len(tasks); on streaming runs it is live descriptors
// plus an unexhausted source.
func (r *runner) tasksOutstanding() bool {
	if r.src == nil {
		return r.accounted() < len(r.tr.Tasks)
	}
	return len(r.live) > 0 || r.srcHasNext()
}

// stepFeed advances HW+comm streaming ingestion: while the descriptor
// window has room, the next created task is handed to the link at the
// current cycle — the streaming analogue of the materialized preload
// that stamps every task available at cycle 0. HW-only feeds in
// stepSubmits (straight into the accelerator) and Full-system in
// stepMaster (paying the creation cost); both are window-gated the same
// way.
//
//picos:hotpath
func (r *runner) stepFeed(now uint64) {
	if r.src == nil || r.cfg.Mode != HWComm {
		return
	}
	for r.windowOpen() {
		if _, ok := r.srcPeek(); !ok {
			return
		}
		r.pendingNew.Push(stampedTask{at: now, idx: r.srcCommit()})
	}
}

// streamResult assembles the aggregate-probe Result of a streaming run.
// Makespan, FirstStart and ThrTask come from counters updated at worker
// start/finish instead of a post-hoc walk over per-task arrays, and the
// Baseline from the running duration sum plus the source's serial-work
// fields — the same values the materialized result() computes, without
// the O(tasks) state.
func (r *runner) streamResult() *Result {
	res := &Result{
		Mode:       r.cfg.Mode,
		Workers:    r.cfg.Workers,
		Makespan:   r.aggMakespan,
		FirstStart: r.aggFirst,
		Stats:      *r.p.Stats(),
		Busy:       r.p.Busy(),
	}
	res.Baseline = r.src.RefSeqCycles()
	if res.Baseline == 0 {
		res.Baseline = r.src.SerialCycles() + r.aggDur
	}
	if r.aggStarted > 1 {
		res.ThrTask = float64(r.aggLastStart-r.aggFirst) / float64(r.aggStarted-1)
	}
	if res.Makespan > 0 {
		res.Speedup = float64(res.Baseline) / float64(res.Makespan)
	}
	res.LostTasks = r.lost
	res.RecoveredTasks = r.recovered
	res.RefusedTasks = r.refused
	res.RefusedIDs = r.refusedIDs
	if r.flt != nil && r.flt.Fired {
		res.Faulted = true
	}
	if f := r.cfg.Picos.Faults; f != nil {
		if f.Fired {
			res.Faulted = true
		}
		res.RefusedTasks += int(f.Refused)
	}
	return res
}
