package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DirtyHorizon enforces the contract of the incremental event-horizon
// scheduler (internal/picos/horizon.go): the heap's per-unit keys are
// re-polled lazily, only for units marked dirty, so ANY state change
// that can move a unit's nextEvent() horizon must mark that unit dirty.
// A missed markDirty is the nastiest bug class this model has — the
// horizon key goes stale, the fast path sleeps through a real event, and
// the divergence surfaces hundreds of thousands of cycles later as a
// wedged run or a schedule that differs from the cycle-stepped
// reference.
//
// The analyzer applies to packages named picos. A "unit" is any struct
// type with an `hid` field (its slot in the horizon heap). The tracked
// horizon-bearing mutations are:
//
//   - push/pop on a unit's registered FIFOs (lowercase push/pop — the
//     regFIFO surface; the raw queue.FIFO Push/Pop used inside
//     container types is not a unit-level event),
//   - assignments to the busy-timer and blocked/stalled fields that
//     gate nextEvent(): busyUntil, busyUntilFin, blocked, headStalled,
//     hasParked, stall, parkedStall, parkedRetryAt.
//
// A function containing such a mutation on owner O (the selector chain
// holding the FIFO or field, e.g. `p.gw` for p.gw.newQ.push) must also
// contain markDirty(O.hid), or reach one transitively by calling
// another method of the same unit that marks its own receiver dirty
// (the consume() idiom in trs.go/dct.go). Functions named reset,
// rebuildHorizon, nextEvent, active, markDirty and flushHorizon are
// exempt: resets are followed by rebuildHorizon, which re-derives every
// key from scratch, and the scheduler internals are the mechanism
// itself. Anything else must carry a //lint:ignore dirtyhorizon with
// its proof of why the horizon cannot move.
var DirtyHorizon = &Analyzer{
	Name:    "dirtyhorizon",
	Doc:     "horizon-bearing unit mutations must markDirty the mutated unit",
	Applies: func(p *Package) bool { return p.Name == "picos" },
	Run:     runDirtyHorizon,
}

// horizonFields are the unit fields whose value feeds nextEvent() or the
// stepDue()/skipTo() stall accounting.
var horizonFields = map[string]bool{
	"busyUntil":     true,
	"busyUntilFin":  true,
	"blocked":       true,
	"headStalled":   true,
	"hasParked":     true,
	"stall":         true,
	"parkedStall":   true,
	"parkedRetryAt": true,
}

// dirtyExemptFuncs never need to mark units dirty themselves.
var dirtyExemptFuncs = map[string]bool{
	"reset":          true, // always followed by rebuildHorizon
	"rebuildHorizon": true, // re-derives every key
	"nextEvent":      true, // read-only polling surface
	"active":         true, // read-only
	"markDirty":      true, // the mechanism
	"flushHorizon":   true, // the mechanism
}

// unitMutation is one horizon-bearing mutation found in a function body.
type unitMutation struct {
	pos   ast.Node
	owner string // selector chain of the mutated unit, e.g. "u" or "p.gw"
	what  string // human description for the diagnostic
}

func runDirtyHorizon(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: per unit type, which methods mark their own receiver dirty
	// — directly or by calling sibling methods that do (the consume()
	// idiom). selfMarks is keyed "TypeName.method".
	type methodFacts struct {
		marks bool            // body contains markDirty(recv.hid)
		calls map[string]bool // sibling methods invoked on the receiver
	}
	facts := map[string]*methodFacts{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			recv, tname := receiverName(fn), receiverTypeName(fn)
			if recv == "" || tname == "" {
				continue
			}
			mf := &methodFacts{calls: map[string]bool{}}
			facts[tname+"."+fn.Name.Name] = mf
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isMarkDirtyOf(call, recv) {
					mf.marks = true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if base, ok := sel.X.(*ast.Ident); ok && base.Name == recv {
						mf.calls[tname+"."+sel.Sel.Name] = true
					}
				}
				return true
			})
		}
	}
	selfMarks := func(key string) bool {
		seen := map[string]bool{}
		var walk func(k string) bool
		walk = func(k string) bool {
			if seen[k] {
				return false
			}
			seen[k] = true
			mf, ok := facts[k]
			if !ok {
				return false
			}
			if mf.marks {
				return true
			}
			for callee := range mf.calls {
				if walk(callee) {
					return true
				}
			}
			return false
		}
		return walk(key)
	}

	// Pass 2: find mutations and check each owner is marked dirty.
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || dirtyExemptFuncs[fn.Name.Name] {
				continue
			}
			muts := collectMutations(pass, fn)
			if len(muts) == 0 {
				continue
			}
			marked := collectMarkedOwners(fn)
			for _, m := range muts {
				if marked[m.owner] {
					continue
				}
				if ownerSatisfiedTransitively(info, fn, m.owner, selfMarks) {
					continue
				}
				pass.Reportf(m.pos.Pos(),
					"%s %s without marking the unit dirty; call markDirty(%s.hid) (or //lint:ignore dirtyhorizon with proof the horizon cannot move)",
					fn.Name.Name, m.what, m.owner)
			}
		}
	}
}

// isMarkDirtyOf reports whether call is markDirty(<owner>.hid) for the
// given owner chain (any callee chain: p.markDirty, u.p.markDirty...).
func isMarkDirtyOf(call *ast.CallExpr, owner string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "markDirty" || len(call.Args) != 1 {
		return false
	}
	arg, ok := chainString(call.Args[0])
	return ok && arg == owner+".hid"
}

// collectMarkedOwners returns every owner chain O for which the body
// contains a markDirty(O.hid) call, flow-insensitively.
func collectMarkedOwners(fn *ast.FuncDecl) map[string]bool {
	owners := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "markDirty" || len(call.Args) != 1 {
			return true
		}
		if arg, ok := chainString(call.Args[0]); ok && strings.HasSuffix(arg, ".hid") {
			owners[strings.TrimSuffix(arg, ".hid")] = true
		}
		return true
	})
	return owners
}

// collectMutations finds the horizon-bearing mutations of a function:
// regFIFO push/pop calls and horizon-field assignments whose owner is a
// unit (a struct with an hid field).
func collectMutations(pass *Pass, fn *ast.FuncDecl) []unitMutation {
	info := pass.Pkg.Info
	var muts []unitMutation
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "push" && sel.Sel.Name != "pop") {
				return true
			}
			// X is the FIFO chain: owner.fifoField — the unit is X's base.
			fifoSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			owner, ok := chainString(fifoSel.X)
			if !ok || !structHasField(info.TypeOf(fifoSel.X), "hid") {
				return true
			}
			muts = append(muts, unitMutation{
				pos:   node,
				owner: owner,
				what:  "calls " + owner + "." + fifoSel.Sel.Name + "." + sel.Sel.Name,
			})
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !horizonFields[sel.Sel.Name] {
					continue
				}
				owner, ok := chainString(sel.X)
				if !ok || !structHasField(info.TypeOf(sel.X), "hid") {
					continue
				}
				muts = append(muts, unitMutation{
					pos:   node,
					owner: owner,
					what:  "assigns " + owner + "." + sel.Sel.Name,
				})
			}
		case *ast.IncDecStmt:
			sel, ok := ast.Unparen(node.X).(*ast.SelectorExpr)
			if !ok || !horizonFields[sel.Sel.Name] {
				return true
			}
			owner, ok := chainString(sel.X)
			if !ok || !structHasField(info.TypeOf(sel.X), "hid") {
				return true
			}
			muts = append(muts, unitMutation{
				pos:   node,
				owner: owner,
				what:  "updates " + owner + "." + sel.Sel.Name,
			})
		}
		return true
	})
	return muts
}

// ownerSatisfiedTransitively reports whether a mutation on owner is
// covered by a call, somewhere in fn, to a method of that same unit that
// (transitively) marks its own receiver dirty — the consume() idiom,
// where the busy-timer update and the markDirty live in a helper.
func ownerSatisfiedTransitively(info *types.Info, fn *ast.FuncDecl, owner string, selfMarks func(string) bool) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := chainString(sel.X)
		if !ok || base != owner {
			return true
		}
		tname := namedTypeName(info.TypeOf(sel.X))
		if tname != "" && selfMarks(tname+"."+sel.Sel.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// namedTypeName extracts the bare named-type name from a (possibly
// pointer) type's string form: "*repro/internal/picos.trsUnit" ->
// "trsUnit".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	s := t.String()
	s = strings.TrimPrefix(s, "*")
	if i := strings.LastIndex(s, "."); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.Index(s, "["); i >= 0 { // generic instantiation
		s = s[:i]
	}
	return s
}
