package asciiplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Heatmap renders a labelled grid of intensities as text — the
// capacity-map view of pattern-family x DM-design sweeps. Cells hold
// the raw metric values; rendering normalizes them to a shade ramp.
// NaN cells render as the Missing marker (used for wedged runs).
type Heatmap struct {
	Title   string
	XLabels []string    // column labels
	YLabels []string    // row labels
	Cells   [][]float64 // [row][col], len(YLabels) x len(XLabels)
	// Missing is the marker for NaN cells (default "XX").
	Missing string
	// Log compresses the shade scale logarithmically — right for counts
	// spanning orders of magnitude, like conflict cycles.
	Log bool
}

// shades is the intensity ramp, lightest to darkest. It starts at '.'
// rather than a space so a real minimum-value cell stays visibly
// distinct from padding and from the Missing marker.
var shades = []rune(".:-=+*#%@")

// Render writes the heatmap: one two-rune shaded cell per value, row
// and column labels, and a legend mapping the ramp to the value range.
func (h *Heatmap) Render(w io.Writer) error {
	if len(h.Cells) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", h.Title)
		return err
	}
	missing := h.Missing
	if missing == "" {
		missing = "XX"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range h.Cells {
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if lo > hi { // every cell missing
		lo, hi = 0, 1
	}
	scale := func(v float64) float64 {
		if hi == lo {
			return 0
		}
		if h.Log {
			return math.Log1p(v-lo) / math.Log1p(hi-lo)
		}
		return (v - lo) / (hi - lo)
	}
	ywidth := 0
	for _, l := range h.YLabels {
		if len(l) > ywidth {
			ywidth = len(l)
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", h.Title); err != nil {
		return err
	}
	for r, row := range h.Cells {
		label := ""
		if r < len(h.YLabels) {
			label = h.YLabels[r]
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%-*s |", ywidth, label)
		for _, v := range row {
			if math.IsNaN(v) {
				fmt.Fprintf(&b, " %2s", missing[:min(2, len(missing))])
				continue
			}
			s := shades[int(scale(v)*float64(len(shades)-1)+0.5)]
			fmt.Fprintf(&b, " %c%c", s, s)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	// Column key: labels rarely fit in two runes, so list them.
	var cols []string
	for c, l := range h.XLabels {
		cols = append(cols, fmt.Sprintf("%d=%s", c+1, l))
	}
	if _, err := fmt.Fprintf(w, "%-*s  cols: %s\n", ywidth, "", strings.Join(cols, " ")); err != nil {
		return err
	}
	legend := fmt.Sprintf("scale [%c..%c] = %.3g..%.3g", shades[0], shades[len(shades)-1], lo, hi)
	if h.Log {
		legend += " (log)"
	}
	_, err := fmt.Fprintf(w, "%-*s  %s; %s = wedged/no data\n", ywidth, "", legend, missing)
	return err
}
