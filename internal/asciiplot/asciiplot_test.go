package asciiplot

import (
	"bytes"
	"strings"
	"testing"
)

func render(t *testing.T, c *Chart) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestEmptyChart(t *testing.T) {
	out := render(t, &Chart{Title: "empty"})
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestBasicRender(t *testing.T) {
	c := &Chart{
		Title:  "speedup",
		XLabel: "workers",
		Series: []Series{
			{Label: "picos", Points: []Point{{2, 2}, {12, 11}}},
			{Label: "nanos", Points: []Point{{2, 2}, {12, 4}}},
		},
	}
	out := render(t, c)
	for _, want := range []string{"speedup", "workers", "* picos", "o nanos", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The steeper series must appear above the shallower one at the
	// right edge: find rows containing '*' and 'o' in the last columns.
	lines := strings.Split(out, "\n")
	starRow, oRow := -1, -1
	for i, l := range lines {
		if idx := strings.LastIndex(l, "*"); idx > 40 && starRow == -1 {
			starRow = i
		}
		if idx := strings.LastIndex(l, "o"); idx > 40 && oRow == -1 {
			oRow = i
		}
	}
	if starRow == -1 || oRow == -1 || starRow >= oRow {
		t.Fatalf("series ordering wrong (star row %d, o row %d):\n%s", starRow, oRow, out)
	}
}

func TestAxisBounds(t *testing.T) {
	c := &Chart{
		Series: []Series{{Label: "s", Points: []Point{{0, 5}, {10, 20}}}},
	}
	out := render(t, c)
	if !strings.Contains(out, "20.0") {
		t.Fatalf("max Y label missing:\n%s", out)
	}
	if !strings.Contains(out, "0.0") {
		t.Fatalf("zero baseline missing (speedup plots start at 0):\n%s", out)
	}
}

func TestSinglePointSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Label: "p", Points: []Point{{1, 1}}}}}
	out := render(t, c)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestManySeriesMarkers(t *testing.T) {
	c := &Chart{}
	for i := 0; i < 10; i++ {
		c.Series = append(c.Series, Series{
			Label:  strings.Repeat("x", i+1),
			Points: []Point{{0, float64(i)}, {1, float64(i)}},
		})
	}
	out := render(t, c)
	// Markers wrap around after 8 series without panicking.
	if !strings.Contains(out, "legend:") {
		t.Fatal("legend missing")
	}
}

func TestCustomDimensions(t *testing.T) {
	c := &Chart{
		Width: 20, Height: 5,
		Series: []Series{{Label: "s", Points: []Point{{0, 0}, {1, 1}}}},
	}
	out := render(t, c)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 5 plot rows + axis + x labels + legend.
	if len(lines) < 8 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}
