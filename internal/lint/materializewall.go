package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MaterializeWall guards the streaming-ingestion contract: engines feed
// from a trace.Source under a bounded descriptor window, so arbitrarily
// long replays run in O(window) heap — unless some code path quietly
// calls trace.Materialize and folds the whole graph back into memory.
// One stray call turns the heap-bound guarantee into a fiction while
// every test still passes (small graphs materialize without anyone
// noticing).
//
// The wall: trace.Materialize (call or function value) is allowed only
// at the sanctioned whole-graph sites —
//
//   - internal/sim: the Window<=0 compatibility route of RunSource,
//     byte-identical to the legacy materialized path by construction
//   - internal/perfect: the critical-path roofline needs a backward
//     pass over the finished graph, an inherently multi-pass consumer
//   - cmd/picos-trace: serializing a whole trace to disk is the tool's
//     purpose
//
// plus internal/trace itself (the defining package). Test files never
// reach the analyzer (the loader parses non-test files only), so tests
// materialize freely.
var MaterializeWall = &Analyzer{
	Name:    "materializewall",
	Doc:     "restrict trace.Materialize to the sanctioned whole-graph sites",
	Applies: appliesOutsideMaterializeSanctuary,
	Run:     runMaterializeWall,
}

// materializeSanctioned lists the module-relative package paths allowed
// to materialize a Source, with the reason each is exempt.
var materializeSanctioned = []string{
	"internal/trace",   // the defining package
	"internal/sim",     // RunSource's Window<=0 compatibility route
	"internal/perfect", // multi-pass critical-path roofline
	"cmd/picos-trace",  // whole-trace serialization is the tool's purpose
}

func appliesOutsideMaterializeSanctuary(p *Package) bool {
	for _, s := range materializeSanctioned {
		if p.Path == s || strings.HasSuffix(p.Path, "/"+s) {
			return false
		}
	}
	return true
}

func runMaterializeWall(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Resolving the *object* (not the call shape) catches both
			// trace.Materialize(...) and the function-value form that a
			// helper variable would hide.
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Name() != "Materialize" || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "internal/trace" && !strings.HasSuffix(path, "/internal/trace") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"trace.Materialize folds the whole graph into memory, breaking the O(window) streaming contract; feed from the trace.Source instead (sanctioned sites: %s)",
				strings.Join(materializeSanctioned[1:], ", "))
			return true
		})
	}
}
