package sim

import "repro/internal/picos"

// Result is the shared outcome of one run, comparable across engines and
// JSON-serializable for machine consumption (picos-sim -json, sweep
// dumps). Engine-specific fields are pointers or zero-valued when the
// engine does not produce them.
type Result struct {
	Engine   string `json:"engine"`
	Workload string `json:"workload,omitempty"`
	Workers  int    `json:"workers"`

	// Makespan is the cycle the last task finished; Baseline the
	// sequential reference; Speedup their ratio.
	Makespan uint64  `json:"makespan"`
	Baseline uint64  `json:"baseline"`
	Speedup  float64 `json:"speedup"`

	// Latency/throughput probes (Table IV): FirstStart is L1st, the
	// cycle the first task began executing; ThrTask the marginal cycles
	// per additional task.
	FirstStart uint64  `json:"first_start"`
	ThrTask    float64 `json:"thr_task,omitempty"`

	// Wedged reports a proven model deadlock (Picos engines): tasks
	// remain but no future event exists anywhere, so the run can never
	// complete — e.g. case7 or an aligned-layout all_to_all pattern on
	// the direct-hash 8-way DM, whose first task's dependences can never
	// all be stored in one full set. The partial schedule covers the
	// tasks that did complete and WedgedAt is the cycle the deadlock was
	// proven, so sweeps over deadlocking configurations stay
	// machine-readable instead of collapsing into an error string.
	Wedged   bool   `json:"wedged,omitempty"`
	WedgedAt uint64 `json:"wedged_at,omitempty"`

	// TimedOut reports a watchdog expiry (Picos HIL engines): no task
	// started, finished, landed or was refused for Spec.Watchdog cycles
	// while a future event still existed — a livelock or pathological
	// stall, distinct from the proven deadlock Wedged reports. picos-sim
	// exits with its own code (4) for this outcome.
	TimedOut bool `json:"timed_out,omitempty"`

	// Fault-injection outcome (Picos HIL engines; all zero fault-free).
	// Faulted: at least one configured fault fired. LostTasks: tasks
	// permanently lost (dropped messages past the retry budget,
	// fail-stopped in-flight tasks without regrant). RecoveredTasks:
	// recovery successes (retransmissions that landed, re-granted
	// tasks). RefusedTasks: admission refusals (avoid-deadlock policies,
	// degrade recovery); RefusedIDs lists them under
	// admission=avoid-deadlock-park.
	Faulted        bool     `json:"faulted,omitempty"`
	LostTasks      int      `json:"lost_tasks,omitempty"`
	RecoveredTasks int      `json:"recovered_tasks,omitempty"`
	RefusedTasks   int      `json:"refused_tasks,omitempty"`
	RefusedIDs     []uint32 `json:"refused_ids,omitempty"`

	// Stats carries the accelerator counters (Picos engines only).
	Stats *picos.Stats `json:"stats,omitempty"`
	// LockBusy is the total cycles the runtime lock was held (nanos
	// engine only) — the contention diagnostic behind the 8-worker knee.
	LockBusy uint64 `json:"lock_busy,omitempty"`

	// Per-task schedule, indexed by task ID. Order lists task IDs in
	// start order for engines that track it.
	Start  []uint64 `json:"start,omitempty"`
	Finish []uint64 `json:"finish,omitempty"`
	Order  []uint32 `json:"order,omitempty"`
}

// StripSchedule drops the per-task arrays, keeping only the aggregate
// metrics — for JSON output of large workloads (Cholesky/32 has 45760
// tasks) where the schedule would dwarf the payload.
func (r *Result) StripSchedule() {
	r.Start, r.Finish, r.Order = nil, nil, nil
}

// Probes derives the Table IV probes from a start schedule: the earliest
// start (L1st) and the marginal cycles per additional task (thrTask),
// for engines that do not track them natively.
func Probes(start []uint64) (first uint64, thrTask float64) {
	if len(start) == 0 {
		return 0, 0
	}
	first = start[0]
	last := start[0]
	for _, s := range start[1:] {
		if s < first {
			first = s
		}
		if s > last {
			last = s
		}
	}
	if len(start) > 1 {
		thrTask = float64(last-first) / float64(len(start)-1)
	}
	return first, thrTask
}
