package sched

// Pool is the shared ready-queue + idle-worker state machine. Engines
// push ready tasks in (Enqueue), park workers that finished (Park), and
// repeatedly ask for deterministic (worker, task) pairings (Grant).
//
// Determinism contract, locked by regression tests:
//
//   - workers are considered in ascending global index order, so with
//     FIFO and a single class the pairing is exactly the historical
//     "oldest ready task to the lowest-index idle worker";
//   - with Steal on, a worker drains its own class queue first, then
//     visits victim classes in ascending class order, skipping its own;
//   - with Steal off there is a single shared queue;
//   - Locality is work-conserving: a worker passes over a task whose
//     preferred class (the class that last ran the task's kind) has an
//     idle worker, and that worker is guaranteed to be paired later in
//     the same grant round.
//
// The payload type parameter carries whatever the engine needs to start
// the task (the Picos ready-queue handle for hil, nothing for the
// software engines).
type Pool[P any] struct {
	classes Classes
	policy  Policy
	steal   bool
	prio    []uint64 // by task id; set for Priority
	el      [][]bool // per class; nil row = every kind
	classOf []uint8  // worker -> class

	idle      IdleHeap
	idleByCls []int // idle worker count per class

	queues  [][]Item[P] // per class when stealing, queues[0] otherwise
	qlen    int
	seq     uint64
	lastCls []int16 // kind id -> class that last ran it, -1 none

	scratch []int // Grant/wake pop-and-stash buffer
}

// Item is one ready task waiting in the pool.
type Item[P any] struct {
	ID      uint32
	Kind    uint16
	Payload P
	seq     uint64
}

// Reset configures the pool for a run. classes must be non-empty
// (normalize with Single(n) for the homogeneous case); kinds is the
// trace's kind table; prio is the per-task priority (required for the
// Priority policy, ignored otherwise). All internal storage is reused
// across warm Resets.
func (p *Pool[P]) Reset(classes Classes, policy Policy, steal bool, kinds []string, prio []uint64) {
	p.classes = classes
	p.policy = policy
	p.steal = steal
	p.prio = prio
	p.el = classes.Eligibility(kinds)

	nw := classes.Workers()
	if cap(p.classOf) < nw {
		p.classOf = make([]uint8, nw)
	}
	p.classOf = p.classOf[:nw]
	w := 0
	for ci, c := range classes {
		for k := 0; k < c.Count; k++ {
			p.classOf[w] = uint8(ci)
			w++
		}
	}

	p.idle = p.idle[:0]
	if cap(p.idleByCls) < len(classes) {
		p.idleByCls = make([]int, len(classes))
	}
	p.idleByCls = p.idleByCls[:len(classes)]
	for i := range p.idleByCls {
		p.idleByCls[i] = 0
	}

	nq := 1
	if steal {
		nq = len(classes)
	}
	if cap(p.queues) < nq {
		p.queues = make([][]Item[P], nq)
	}
	p.queues = p.queues[:nq]
	for i := range p.queues {
		p.queues[i] = p.queues[i][:0]
	}
	p.qlen = 0
	p.seq = 0

	nk := len(kinds) + 1
	if cap(p.lastCls) < nk {
		p.lastCls = make([]int16, nk)
	}
	p.lastCls = p.lastCls[:nk]
	for i := range p.lastCls {
		p.lastCls[i] = -1
	}
}

// Workers returns the total worker count.
func (p *Pool[P]) Workers() int { return len(p.classOf) }

// ClassOf returns the class index of worker w.
func (p *Pool[P]) ClassOf(w int) int { return int(p.classOf[w]) }

// Scale returns dur scaled by worker w's class multiplier.
func (p *Pool[P]) Scale(w int, dur uint64) uint64 {
	return p.classes.Scale(int(p.classOf[w]), dur)
}

// Len returns the number of ready tasks waiting in the pool.
func (p *Pool[P]) Len() int { return p.qlen }

// Idle returns the number of idle (parked) workers.
func (p *Pool[P]) Idle() int { return len(p.idle) }

// Park marks worker w idle.
func (p *Pool[P]) Park(w int) {
	p.idle.Push(w)
	p.idleByCls[p.classOf[w]]++
}

// eligible reports whether class ci may run kind k.
func (p *Pool[P]) eligible(ci int, k uint16) bool {
	row := p.el[ci]
	return row == nil || row[k]
}

// homeClass picks the queue a new task parks in when stealing is on:
// the class that last ran its kind under Locality (when eligible),
// otherwise the first eligible class in declaration order.
func (p *Pool[P]) homeClass(k uint16) int {
	if p.policy == Locality {
		if lc := p.lastCls[k]; lc >= 0 && p.eligible(int(lc), k) {
			return int(lc)
		}
	}
	for ci := range p.classes {
		if p.eligible(ci, k) {
			return ci
		}
	}
	return 0 // unreachable after CheckCoverage
}

// Enqueue adds a ready task to the pool.
func (p *Pool[P]) Enqueue(id uint32, kind uint16, payload P) {
	q := 0
	if p.steal {
		q = p.homeClass(kind)
	}
	p.seq++
	p.queues[q] = append(p.queues[q], Item[P]{ID: id, Kind: kind, Payload: payload, seq: p.seq})
	p.qlen++
}

// pick returns the index of the task in q that worker class ci should
// take under the active policy, or -1. pass2 relaxes Locality's
// preferred-class test (see takeFor).
func (p *Pool[P]) pick(q []Item[P], ci int, pass2 bool) int {
	switch p.policy {
	case FIFO:
		for i := range q {
			if p.eligible(ci, q[i].Kind) {
				return i
			}
		}
	case LIFO:
		for i := len(q) - 1; i >= 0; i-- {
			if p.eligible(ci, q[i].Kind) {
				return i
			}
		}
	case Priority:
		best, bi := uint64(0), -1
		for i := range q {
			if !p.eligible(ci, q[i].Kind) {
				continue
			}
			pr := p.prio[q[i].ID]
			if bi < 0 || pr > best {
				best, bi = pr, i
			}
		}
		return bi
	case Locality:
		for i := range q {
			if !p.eligible(ci, q[i].Kind) {
				continue
			}
			lc := p.lastCls[q[i].Kind]
			if lc < 0 || int(lc) == ci {
				return i
			}
			// The task prefers another class; in pass 2 take it anyway
			// unless that class has an idle worker which will be paired
			// with it later in this same grant round.
			if pass2 && p.idleByCls[lc] == 0 {
				return i
			}
		}
	}
	return -1
}

// remove deletes index i from queue q, preserving order.
func (p *Pool[P]) remove(q int, i int) Item[P] {
	s := p.queues[q]
	it := s[i]
	copy(s[i:], s[i+1:])
	p.queues[q] = s[:len(s)-1]
	p.qlen--
	return it
}

// takeFor removes and returns the task worker w should run, if any.
func (p *Pool[P]) takeFor(w int) (Item[P], bool) {
	ci := int(p.classOf[w])
	passes := 1
	if p.policy == Locality {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		if !p.steal {
			if i := p.pick(p.queues[0], ci, pass == 1); i >= 0 {
				return p.remove(0, i), true
			}
			continue
		}
		// Own class queue first, then victims in ascending class order.
		if i := p.pick(p.queues[ci], ci, pass == 1); i >= 0 {
			return p.remove(ci, i), true
		}
		for v := range p.queues {
			if v == ci {
				continue
			}
			if i := p.pick(p.queues[v], ci, pass == 1); i >= 0 {
				return p.remove(v, i), true
			}
		}
	}
	var zero Item[P]
	return zero, false
}

// Grant pairs the lowest-index idle worker that can take a ready task
// with that task, removing both from the pool and recording the class
// in the task kind's locality history. Call it in a loop until it
// returns false.
func (p *Pool[P]) Grant() (w int, it Item[P], ok bool) {
	p.scratch = p.scratch[:0]
	for len(p.idle) > 0 {
		cand := p.idle.Pop()
		if item, found := p.takeFor(cand); found {
			w, it, ok = cand, item, true
			p.idleByCls[p.classOf[cand]]--
			p.lastCls[item.Kind] = int16(p.classOf[cand])
			break
		}
		p.scratch = append(p.scratch, cand)
	}
	for _, s := range p.scratch {
		p.idle.Push(s)
	}
	return w, it, ok
}

// Evict removes worker w from the idle freelist, reporting whether it
// was parked. An evicted worker is simply never granted again — the
// fault layer uses this to fail-stop a worker without leaving a dead
// index in the pool's dispatch structures. Eviction does not shrink
// Workers(): class bookkeeping and indices of the survivors are
// untouched.
func (p *Pool[P]) Evict(w int) bool {
	_, ok := p.wakeWhere(func(cand int) bool { return cand == w })
	return ok
}

// TakeFor removes and returns the task worker w (which must not be
// parked) should run under the active policy, recording locality
// history. Event-driven engines use it when a specific worker asks for
// work; Grant is the batch form.
func (p *Pool[P]) TakeFor(w int) (Item[P], bool) {
	it, ok := p.takeFor(w)
	if ok {
		p.lastCls[it.Kind] = int16(p.classOf[w])
	}
	return it, ok
}

// CanTake reports whether worker w (parked or not) could take a ready
// task right now, without removing anything.
func (p *Pool[P]) CanTake(w int) bool {
	ci := int(p.classOf[w])
	passes := 1
	if p.policy == Locality {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		if !p.steal {
			if p.pick(p.queues[0], ci, pass == 1) >= 0 {
				return true
			}
			continue
		}
		for v := range p.queues {
			if p.pick(p.queues[v], ci, pass == 1) >= 0 {
				return true
			}
		}
	}
	return false
}

// WakeEligible removes and returns the lowest-index idle worker
// eligible for kind k, preferring the kind's locality class under the
// Locality policy. Event-driven engines use it to wake a worker when a
// task of kind k becomes ready.
func (p *Pool[P]) WakeEligible(k uint16) (int, bool) {
	if p.policy == Locality {
		if lc := p.lastCls[k]; lc >= 0 && p.idleByCls[lc] > 0 && p.eligible(int(lc), k) {
			return p.wakeWhere(func(w int) bool { return p.classOf[w] == uint8(lc) })
		}
	}
	return p.wakeWhere(func(w int) bool { return p.eligible(int(p.classOf[w]), k) })
}

// WakeAny removes and returns the lowest-index idle worker that can
// take some queued task right now.
func (p *Pool[P]) WakeAny() (int, bool) {
	return p.wakeWhere(p.CanTake)
}

// wakeWhere pops the lowest-index idle worker satisfying keep.
func (p *Pool[P]) wakeWhere(keep func(int) bool) (int, bool) {
	p.scratch = p.scratch[:0]
	w, ok := 0, false
	for len(p.idle) > 0 {
		cand := p.idle.Pop()
		if keep(cand) {
			w, ok = cand, true
			p.idleByCls[p.classOf[cand]]--
			break
		}
		p.scratch = append(p.scratch, cand)
	}
	for _, s := range p.scratch {
		p.idle.Push(s)
	}
	return w, ok
}
