package hil

import "repro/internal/faults"

// Fault-path methods of the runner: worker fail-stop, faulty link
// sends, retransmission. Nothing here runs on a fault-free run — every
// call site in runner.go is gated on r.flt != nil.

// applyStops fires due worker:failstop clauses. It runs at the top of
// both loops, before stepWorkers, so a worker killed at its own
// completion cycle never retires — deterministically on both paths,
// which always evaluate at the trigger cycle because NextStop is a
// wake candidate.
func (r *runner) applyStops(now uint64) {
	for i := range r.flt.Stops {
		s := &r.flt.Stops[i]
		if s.Applied || now < s.Cycle {
			continue
		}
		s.Applied = true
		r.flt.Fired = true
		r.killWorker(s.Worker, now)
	}
}

// killWorker fail-stops worker w. An idle victim is pulled from the
// dispatch structures and never granted again; a busy victim
// additionally aborts its in-flight task, which the regrant recovery
// policy re-enqueues through the scheduling layer and which is
// otherwise lost — the accelerator still holds its slot, so dependents
// of a lost task wedge (a faulted wedge, not a model deadlock).
func (r *runner) killWorker(w int, now uint64) {
	if w < 0 || w >= len(r.workers) {
		return // a victim index beyond the platform injects nothing
	}
	if r.trivial {
		if r.idleH.Remove(w) {
			r.dead++
			return
		}
	} else if r.pool.Evict(w) {
		r.dead++
		return
	}
	if _, ok := r.busyH.RemoveIdx(w); !ok {
		return // already dead (two clauses naming the same worker)
	}
	r.dead++
	rt := r.workers[w]
	r.unschedule(rt.ID)
	if r.flt.Rec.Regrant {
		// The task stays live (streaming): it will re-run and retire at
		// its eventual completion.
		r.readyBacklog.Push(rt)
		r.recovered++
		r.lastProgress = now
	} else {
		r.lost++
		r.retire(rt.ID)
	}
}

// unschedule erases the schedule entries of a task aborted mid-flight.
// A streaming run has no schedule arrays; the aborted start is undone
// in the aggregate start count instead (first/last-start stamps stay —
// they are not recomputable in O(window), and both loops agree on them).
func (r *runner) unschedule(id uint32) {
	if r.src != nil {
		r.aggStarted--
		return
	}
	r.start[id], r.finish[id] = 0, 0
	for i := len(r.order) - 1; i >= 0; i-- {
		if r.order[i] == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// sendFaulty draws every AXI clause for this send, in clause order, and
// applies the combined outcome; it reports false when nothing fired
// (the caller then performs the clean send). A delay extends the link
// occupancy — the in-order stream stutters head-of-line, keeping
// delivery stamps monotone — a dup re-occupies the link for a marked
// second copy the receiver discards, and a drop consumes the occupancy
// but lands nothing, handing the message to the retransmission policy.
func (r *runner) sendFaulty(now, occ uint64, msg busMsg) bool {
	f := r.flt
	drop, dup := false, false
	var extra uint64
	for i := range f.AXI {
		a := &f.AXI[i]
		// Every clause draws on every send — no short-circuiting — so
		// the per-clause streams stay aligned across plans.
		if !a.Hit() {
			continue
		}
		f.Fired = true
		switch a.Kind {
		case faults.KindDrop:
			drop = true
		case faults.KindDelay:
			extra += a.Delay
		case faults.KindDup:
			dup = true
		}
	}
	if !drop && !dup && extra == 0 {
		return false
	}
	flight := r.cfg.Comm.Flight
	occ += extra
	r.busFree = now + occ
	if drop {
		r.loseOrRetry(msg, 1)
		return true
	}
	r.pushDelivery(r.busFree+flight, msg)
	if dup {
		// The duplicate re-occupies the link and lands later: the cost
		// of an axi:dup fault is pure bandwidth.
		r.busFree += occ
		m := msg
		m.dup = true
		r.pushDelivery(r.busFree+flight, m)
	}
	return true
}

// loseOrRetry hands a dropped message to the retransmission policy:
// attempt counts the sends so far, so while attempt <= Retry a resend
// is scheduled with deterministic linear backoff, and anything past
// the budget is permanently lost.
func (r *runner) loseOrRetry(msg busMsg, attempt int) {
	rec := r.flt.Rec
	if attempt <= rec.Retry {
		if msg.kind == busNew {
			r.retryNew++ // stall fresh submissions behind this retry
		}
		r.retryQ.Push(retryEntry{at: r.busFree + rec.Backoff*uint64(attempt), attempt: uint8(attempt), msg: msg})
		return
	}
	r.loseMsg(msg)
}

// loseMsg accounts a permanently lost link message.
func (r *runner) loseMsg(msg busMsg) {
	switch msg.kind {
	case busNew:
		r.lost++
		r.retire(msg.task)
		if r.cfg.Mode == FullSystem {
			r.createdAhead--
		}
	case busReady:
		// The accelerator handed the task out and will never hear from
		// it again: the fetch window reopens, the task is lost, and its
		// dependents wedge downstream (a faulted wedge).
		r.readyInFlight--
		r.lost++
		r.retire(msg.rt.ID)
	case busFin:
		// The worker-side completion already counted; only the
		// accelerator's cleanup is lost. Dependents of the unreclaimed
		// slot may wedge, which the classification attributes to the
		// fault via Faulted.
	}
}

// resend replays a queued retransmission: the link is occupied again
// for the message's occupancy and the drop clauses draw again — a
// retransmission can be lost too — while delay/dup clauses apply only
// to first sends.
func (r *runner) resend(now uint64, e retryEntry) {
	c := &r.cfg.Comm
	var occ uint64
	switch e.msg.kind {
	case busNew:
		occ = c.SendNewOcc
	case busReady:
		occ = c.FetchReadyOcc
	case busFin:
		occ = c.SendFinOcc
	}
	drop := false
	for i := range r.flt.AXI {
		a := &r.flt.AXI[i]
		if a.Kind != faults.KindDrop {
			continue
		}
		if a.Hit() {
			drop = true
			r.flt.Fired = true
		}
	}
	r.busFree = now + occ
	if drop {
		r.loseOrRetry(e.msg, int(e.attempt)+1)
		return
	}
	r.recovered++
	r.lastProgress = now
	r.pushDelivery(r.busFree+c.Flight, e.msg)
}
