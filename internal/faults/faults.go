// Package faults is the deterministic fault-injection and recovery
// subsystem threaded through picos, hil, and sim. A fault plan is a
// parsed grammar carried in sim.Spec.Faults (for example
// "axi:drop=0.01@seed7+worker:failstop=2@cycle50000+dct:slowdown=4x:shard1");
// every probabilistic decision draws from a per-clause detrand
// (splitmix64) stream, so a plan plus a workload is fully reproducible
// on both the event-driven fast path and the cycle-stepped reference
// loop. The package owns only plan state and decision primitives — the
// engines own the injection sites, and every site is nil-gated so the
// fault-free path stays byte-identical and allocation-free.
package faults

import (
	"errors"

	"repro/internal/detrand"
)

// Typed sentinels for plan and recovery parsing. Malformed inputs are
// always wrapped errors (errors.Is-matchable), never panics — the
// FuzzParseFaultPlan target enforces it.
var (
	// ErrBadPlan reports a malformed fault-plan string.
	ErrBadPlan = errors.New("faults: malformed fault plan")
	// ErrBadRecovery reports a malformed recovery-policy string.
	ErrBadRecovery = errors.New("faults: malformed recovery policy")
)

// Fault layers — the subsystems that own injection sites today.
const (
	LayerAXI    = "axi"    // HIL AXI link / arbiter messages
	LayerWorker = "worker" // HIL worker pool
	LayerDCT    = "dct"    // dependence-memory shards
	LayerTRS    = "trs"    // task reservation stations
	LayerArb    = "arb"    // TRS/DCT crossbar arbiter
	LayerGW     = "gw"     // gateway admission engine
)

// Fault kinds per layer.
const (
	KindDrop       = "drop"       // axi: message lost at send time
	KindDelay      = "delay"      // axi: message stalls the in-order link
	KindDup        = "dup"        // axi: message sent twice (bandwidth waste)
	KindFailstop   = "failstop"   // worker: dies at a cycle, never returns
	KindSlowdown   = "slowdown"   // worker/dct: service-time multiplier
	KindVMLeak     = "vmleak"     // dct: version slot never released
	KindCreditLeak = "creditleak" // dct: shard admission credit never returned
	KindStall      = "stall"      // trs/arb/gw: queue-head service stalls once
)

// Clause is one parsed fault directive: layer:kind=value plus optional
// @seedN/@cycleN trigger and :shardK/:workerK/:trsK/:lenL selectors.
type Clause struct {
	Layer string
	Kind  string

	Rate   float64 // probability per opportunity (drop, delay, dup, leaks)
	Factor uint64  // service-time multiplier (slowdown), >= 1
	Delay  uint64  // extra cycles (axi delay, trs stall)

	Seed  uint64 // @seedN: per-clause detrand stream seed
	Cycle uint64 // @cycleN: trigger cycle (failstop, slowdown window, stall)

	Shard  int    // :shardK selector, -1 = every shard
	Worker int    // failstop victim / :workerK selector, -1 = every worker
	TRS    int    // :trsK selector, -1 = every TRS
	Len    uint64 // :lenL window length for worker slowdown, 0 = open-ended
}

// Plan is a parsed fault plan: the clause list plus the source string
// it was parsed from (kept for reporting).
type Plan struct {
	Clauses []Clause
	Source  string
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Clauses) == 0 }

// Recovery is the parsed sim.Spec.Recovery policy set.
type Recovery struct {
	// Retry bounds link-level retransmission of dropped AXI messages:
	// up to Retry resends per message, each scheduled Backoff*attempt
	// cycles after the loss (deterministic linear backoff). 0 disables
	// retransmission — a dropped message is immediately lost.
	Retry   int
	Backoff uint64
	// Regrant re-enqueues the in-flight task of a fail-stopped worker
	// through the scheduling layer instead of losing it.
	Regrant bool
	// Degrade pops the gateway's blocked head after this many blocked
	// cycles and refuses the task, so a fabric with leaked credits or
	// version slots degrades to its surviving shards instead of
	// wedging. 0 disables.
	Degrade uint64
}

// DefaultBackoff is the retransmission backoff used when "retry=N" is
// given without an explicit ":backoffB".
const DefaultBackoff = 500

// drawFloat returns the n-th value of the clause's detrand stream in
// [0, 1).
func drawFloat(seed, n uint64) float64 {
	return float64(detrand.SplitMix64(seed^n*0x9E3779B97F4A7C15)>>11) / (1 << 53)
}

// leakState is the runtime state of one probabilistic picos-side
// clause (vmleak / creditleak).
type leakState struct {
	rate  float64
	seed  uint64
	shard int
	n     uint64
}

func (s *leakState) hit(shard int) bool {
	if s.shard >= 0 && s.shard != shard {
		return false
	}
	s.n++
	return drawFloat(s.seed, s.n) < s.rate
}

// slowState is one dct:slowdown clause.
type slowState struct {
	factor uint64
	shard  int
}

// stallState is one trs:stall clause: a one-shot service delay armed
// at Cycle.
type stallState struct {
	delay   uint64
	cycle   uint64
	trs     int
	applied bool
}

// PicosFaults is the accelerator-side injector: the picos units call
// its decision primitives at their (nil-gated) injection sites. One
// instance is built per run from the plan's dct/trs clauses plus the
// degrade recovery knob and handed to picos.Config.Faults.
type PicosFaults struct {
	vmLeak     []leakState
	creditLeak []leakState
	slow       []slowState
	stalls     []stallState
	arbStalls  []stallState // arb:stall clauses (trs selector unused)
	gwStalls   []stallState // gw:stall clauses (trs selector unused)

	// Degrade is the recovery threshold: blocked-gateway cycles before
	// the head task is refused (0 = off).
	Degrade uint64

	// Refused counts tasks the gateway popped under degrade recovery.
	Refused uint64
	// Fired reports whether any accelerator-side fault actually
	// triggered during the run.
	Fired bool
}

// PicosSide builds the accelerator-side injector for one run, or nil
// when the plan has no dct/trs clauses and recovery has no degrade
// threshold (so the picos hot paths keep their nil fast path).
func (p *Plan) PicosSide(rec Recovery) *PicosFaults {
	if p.Empty() && rec.Degrade == 0 {
		// No allocation on the fault-free path: engines call this
		// unconditionally per reset.
		return nil
	}
	f := &PicosFaults{Degrade: rec.Degrade}
	if p != nil {
		for _, c := range p.Clauses {
			switch {
			case c.Layer == LayerDCT && c.Kind == KindVMLeak:
				f.vmLeak = append(f.vmLeak, leakState{rate: c.Rate, seed: c.Seed, shard: c.Shard})
			case c.Layer == LayerDCT && c.Kind == KindCreditLeak:
				f.creditLeak = append(f.creditLeak, leakState{rate: c.Rate, seed: c.Seed, shard: c.Shard})
			case c.Layer == LayerDCT && c.Kind == KindSlowdown:
				f.slow = append(f.slow, slowState{factor: c.Factor, shard: c.Shard})
			case c.Layer == LayerTRS && c.Kind == KindStall:
				f.stalls = append(f.stalls, stallState{delay: c.Delay, cycle: c.Cycle, trs: c.TRS})
			case c.Layer == LayerArb && c.Kind == KindStall:
				f.arbStalls = append(f.arbStalls, stallState{delay: c.Delay, cycle: c.Cycle, trs: -1})
			case c.Layer == LayerGW && c.Kind == KindStall:
				f.gwStalls = append(f.gwStalls, stallState{delay: c.Delay, cycle: c.Cycle, trs: -1})
			}
		}
	}
	if len(f.vmLeak) == 0 && len(f.creditLeak) == 0 && len(f.slow) == 0 &&
		len(f.stalls) == 0 && len(f.arbStalls) == 0 && len(f.gwStalls) == 0 && f.Degrade == 0 {
		return nil
	}
	return f
}

// Reset rewinds every clause stream and counter for engine reuse.
func (f *PicosFaults) Reset() {
	for i := range f.vmLeak {
		f.vmLeak[i].n = 0
	}
	for i := range f.creditLeak {
		f.creditLeak[i].n = 0
	}
	for i := range f.stalls {
		f.stalls[i].applied = false
	}
	for i := range f.arbStalls {
		f.arbStalls[i].applied = false
	}
	for i := range f.gwStalls {
		f.gwStalls[i].applied = false
	}
	f.Refused = 0
	f.Fired = false
}

// LeakVM decides whether this version-slot release on the given shard
// is leaked.
func (f *PicosFaults) LeakVM(shard int) bool {
	for i := range f.vmLeak {
		if f.vmLeak[i].hit(shard) {
			f.Fired = true
			return true
		}
	}
	return false
}

// LeakCredit decides whether this shard-credit return is leaked.
func (f *PicosFaults) LeakCredit(shard int) bool {
	for i := range f.creditLeak {
		if f.creditLeak[i].hit(shard) {
			f.Fired = true
			return true
		}
	}
	return false
}

// ScaleDCT applies any dct:slowdown multiplier matching the shard to a
// service cost.
func (f *PicosFaults) ScaleDCT(shard int, cost uint64) uint64 {
	for i := range f.slow {
		s := &f.slow[i]
		if s.shard < 0 || s.shard == shard {
			cost *= s.factor
			f.Fired = true
		}
	}
	return cost
}

// StallDelay returns the extra service cycles injected into the TRS
// unit's current packet: each trs:stall clause fires once, on the
// first packet the matching unit services at or after the clause's
// trigger cycle. Attaching the stall to a real service event keeps the
// fast and reference loops identical without any extra horizon event.
func (f *PicosFaults) StallDelay(trs int, now uint64) uint64 {
	var extra uint64
	for i := range f.stalls {
		s := &f.stalls[i]
		if s.applied || now < s.cycle || (s.trs >= 0 && s.trs != trs) {
			continue
		}
		s.applied = true
		f.Fired = true
		extra += s.delay
	}
	return extra
}

// oneShotDelay fires every not-yet-applied clause whose trigger cycle
// has been reached and sums the extra delay — the shared core of the
// arbiter and gateway stalls, which have a single unit each and hence
// no selector.
func (f *PicosFaults) oneShotDelay(clauses []stallState, now uint64) uint64 {
	var extra uint64
	for i := range clauses {
		s := &clauses[i]
		if s.applied || now < s.cycle {
			continue
		}
		s.applied = true
		f.Fired = true
		extra += s.delay
	}
	return extra
}

// ArbStallDelay returns the extra routing latency injected into the
// arbiter's current message: each arb:stall clause fires once, on the
// first message the crossbar routes at or after the clause's trigger
// cycle — a transient fabric hiccup that defers everything behind the
// head message. Attaching the stall to a real routing event keeps the
// fast and reference loops identical without any extra horizon event.
func (f *PicosFaults) ArbStallDelay(now uint64) uint64 {
	return f.oneShotDelay(f.arbStalls, now)
}

// GWStallDelay returns the extra admission cycles injected into the
// gateway's current new-task admission: each gw:stall clause fires
// once, on the first task admitted at or after the clause's trigger
// cycle, extending the new-task engine's busy window (submissions
// behind it back up in the bounded new-task queue exactly as a real
// admission-path stall would cause).
func (f *PicosFaults) GWStallDelay(now uint64) uint64 {
	return f.oneShotDelay(f.gwStalls, now)
}
