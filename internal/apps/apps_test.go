package apps

import (
	"math"
	"testing"

	"repro/internal/taskgraph"
)

func gen(t *testing.T, app App, problem, block int) *TraceResult {
	t.Helper()
	res, err := Generate(app, problem, block)
	if err != nil {
		t.Fatalf("Generate(%s,%d,%d): %v", app, problem, block, err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("%s trace invalid: %v", app, err)
	}
	return res
}

// TestTableITaskCounts verifies the #Tasks column of Table I. Heat, Lu
// and Cholesky counts are exact closed forms; SparseLu is density-tuned
// to within a few percent; H264dec depends on the (unavailable) video's
// slice layout and must land within 12%.
func TestTableITaskCounts(t *testing.T) {
	exact := map[App]map[int]int{
		Heat:     {256: 64, 128: 256, 64: 1024, 32: 4096},
		Lu:       {256: 36, 128: 136, 64: 528, 32: 2080},
		Cholesky: {256: 120, 128: 816, 64: 5984, 32: 45760},
	}
	for app, rows := range exact {
		for bs, want := range rows {
			res := gen(t, app, DefaultProblem, bs)
			if got := len(res.Trace.Tasks); got != want {
				t.Errorf("%s/%d: %d tasks, want %d", app, bs, got, want)
			}
		}
	}
	approx := map[App]map[int]int{
		SparseLu: {256: 34, 128: 212, 64: 1512, 32: 11472},
	}
	for app, rows := range approx {
		for bs, want := range rows {
			res := gen(t, app, DefaultProblem, bs)
			got := len(res.Trace.Tasks)
			if math.Abs(float64(got-want)) > 0.08*float64(want)+3 {
				t.Errorf("%s/%d: %d tasks, want ~%d", app, bs, got, want)
			}
		}
	}
	for bs, want := range map[int]int{8: 2659, 4: 9306, 2: 35894, 1: 139934} {
		res := gen(t, H264Dec, 10, bs)
		got := len(res.Trace.Tasks)
		if math.Abs(float64(got-want)) > 0.12*float64(want) {
			t.Errorf("h264dec/%d: %d tasks, want ~%d", bs, got, want)
		}
	}
}

// TestTableIDepRanges verifies the #Dep column: Heat 5, Lu 2,
// SparseLu 1-3, Cholesky 1-3, H264dec 2-6.
func TestTableIDepRanges(t *testing.T) {
	cases := []struct {
		app      App
		problem  int
		block    int
		min, max int
	}{
		{Heat, 2048, 128, 5, 5},
		{Lu, 2048, 128, 2, 2},
		{SparseLu, 2048, 128, 1, 3},
		{Cholesky, 2048, 128, 1, 3},
		{H264Dec, 10, 4, 2, 6},
	}
	for _, c := range cases {
		res := gen(t, c.app, c.problem, c.block)
		s := res.Trace.Summarize()
		if s.MinDeps != c.min || s.MaxDeps != c.max {
			t.Errorf("%s: dep range %d-%d, want %d-%d", c.app, s.MinDeps, s.MaxDeps, c.min, c.max)
		}
	}
}

// TestTableISizes verifies AvgTSize and SeqExec are honoured by the
// duration calibration.
func TestTableISizes(t *testing.T) {
	for app, rows := range tableI {
		for bs, e := range rows {
			problem := DefaultProblem
			if app == H264Dec {
				problem = 10
			}
			res := gen(t, app, problem, bs)
			s := res.Trace.Summarize()
			if rel := math.Abs(s.AvgTaskSize-e.avgSize) / e.avgSize; rel > 0.01 {
				t.Errorf("%s/%d: avg task size %.3g, want %.3g", app, bs, s.AvgTaskSize, e.avgSize)
			}
			base := float64(res.Trace.Baseline())
			// Baseline is scaled by actual/tabulated task count; allow the
			// same tolerance as counts.
			if rel := math.Abs(base-e.seqExec) / e.seqExec; rel > 0.13 {
				t.Errorf("%s/%d: baseline %.3g, want ~%.3g", app, bs, base, e.seqExec)
			}
		}
	}
}

// TestGraphShapes sanity-checks the dependence structures.
func TestGraphShapes(t *testing.T) {
	// Heat: wavefront -> depth = 2B-1, parallelism <= B.
	res := gen(t, Heat, 2048, 256)
	g := taskgraph.Build(res.Trace)
	if g.Depth() != 15 {
		t.Errorf("heat B=8: depth %d, want 15 (wavefront)", g.Depth())
	}
	if mp := g.MaxParallelism(); mp < 4 || mp > 8 {
		t.Errorf("heat B=8: parallelism %d, want 4..8", mp)
	}

	// Lu: diag(k) gates step k; exactly one root.
	res = gen(t, Lu, 2048, 256)
	g = taskgraph.Build(res.Trace)
	if roots := g.Roots(); len(roots) != 1 || roots[0] != 0 {
		t.Errorf("lu roots = %v, want [0]", roots)
	}
	// Step 0's updates all depend only on diag(0).
	for i := 1; i < 8; i++ {
		if len(g.Pred[i]) != 1 || g.Pred[i][0] != 0 {
			t.Errorf("lu upd task %d preds = %v, want [0]", i, g.Pred[i])
		}
	}

	// Cholesky: single root (potrf 0).
	res = gen(t, Cholesky, 2048, 256)
	g = taskgraph.Build(res.Trace)
	if roots := g.Roots(); len(roots) != 1 {
		t.Errorf("cholesky roots = %v, want exactly 1", roots)
	}

	// H264: frame pipeline means depth >> single frame wavefront.
	res = gen(t, H264Dec, 3, 8)
	g = taskgraph.Build(res.Trace)
	if g.Depth() < 30 {
		t.Errorf("h264 depth %d, want >= 30 (wavefront+pipeline)", g.Depth())
	}
}

// TestMLuSameGraphDifferentOrder: MLu must contain the same tasks as Lu
// (same multiset of kernels, same totals) with a different creation order
// of the update tasks.
func TestMLuSameGraphDifferentOrder(t *testing.T) {
	lu := gen(t, Lu, 2048, 256)
	mlu := gen(t, MLu, 2048, 256)
	if len(lu.Trace.Tasks) != len(mlu.Trace.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(lu.Trace.Tasks), len(mlu.Trace.Tasks))
	}
	for k, v := range lu.KernelCounts {
		if mlu.KernelCounts[k] != v {
			t.Fatalf("kernel %s: %d vs %d", k, v, mlu.KernelCounts[k])
		}
	}
	same := true
	for i := range lu.Trace.Tasks {
		a, b := lu.Trace.Tasks[i].Deps, mlu.Trace.Tasks[i].Deps
		if len(a) != len(b) {
			same = false
			break
		}
		for j := range a {
			if a[j] != b[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("MLu has identical creation order to Lu")
	}
	// Same critical path (the DAG is the same, only creation order differs).
	gl := taskgraph.Build(lu.Trace)
	gm := taskgraph.Build(mlu.Trace)
	if gl.NumEdges() != gm.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", gl.NumEdges(), gm.NumEdges())
	}
}

func TestSparseLuFillIn(t *testing.T) {
	// bmod must create blocks: total distinct inout addresses of bmod
	// tasks exceeds the initial non-null count check indirectly by
	// verifying bmod exists and has 3 deps.
	res := gen(t, SparseLu, 2048, 128)
	if res.KernelCounts["bmod"] == 0 {
		t.Fatal("sparselu generated no bmod tasks")
	}
	found := false
	for _, task := range res.Trace.Tasks {
		if len(task.Deps) == 3 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no 3-dep task found")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(App("nope"), 2048, 128); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Generate(Heat, 2048, 100); err == nil {
		t.Fatal("non-dividing block accepted")
	}
	if _, err := Generate(Heat, 0, 0); err == nil {
		t.Fatal("zero sizes accepted")
	}
	if _, err := Generate(Heat, 128, 128); err == nil {
		t.Fatal("single-block problem accepted")
	}
	if _, err := Generate(H264Dec, 0, 8); err == nil {
		t.Fatal("zero frames accepted")
	}
	if _, err := Generate(H264Dec, 10, 3); err == nil {
		t.Fatal("bad grouping accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := gen(t, Cholesky, 2048, 128).Trace
	b := gen(t, Cholesky, 2048, 128).Trace
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("nondeterministic task count")
	}
	for i := range a.Tasks {
		if a.Tasks[i].Duration != b.Tasks[i].Duration {
			t.Fatalf("task %d durations differ", i)
		}
		for j := range a.Tasks[i].Deps {
			if a.Tasks[i].Deps[j] != b.Tasks[i].Deps[j] {
				t.Fatalf("task %d dep %d differ", i, j)
			}
		}
	}
}

func TestBlockAddressesAreAligned(t *testing.T) {
	// The DM-conflict pathology requires block-aligned addresses: check
	// that all dependence addresses of the matrix kernels are multiples
	// of the block byte size.
	res := gen(t, Cholesky, 2048, 128)
	blockBytes := uint64(128*128) * 8
	for _, task := range res.Trace.Tasks {
		for _, d := range task.Deps {
			if d.Addr%blockBytes != 0 {
				t.Fatalf("address %#x not aligned to %#x", d.Addr, blockBytes)
			}
		}
	}
}

func TestBlockSizesList(t *testing.T) {
	if got := BlockSizes(Heat); len(got) != 4 || got[0] != 256 {
		t.Fatalf("BlockSizes(Heat) = %v", got)
	}
	if got := BlockSizes(H264Dec); len(got) != 4 || got[0] != 8 {
		t.Fatalf("BlockSizes(H264Dec) = %v", got)
	}
}
