package picos

import (
	"testing"

	"repro/internal/trace"
)

// TestSubmitRejectsUnrepresentableTasks: more than 15 deps or duplicate
// addresses cannot be stored in the TMX and must be rejected up front.
func TestSubmitRejectsUnrepresentableTasks(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	deps := make([]trace.Dep, trace.MaxDeps+1)
	for i := range deps {
		deps[i] = trace.Dep{Addr: uint64(i+1) * 64, Dir: trace.In}
	}
	if err := p.Submit(0, deps); err == nil {
		t.Fatal("16-dep task accepted")
	}
	if err := p.Submit(0, []trace.Dep{{Addr: 0x40, Dir: trace.In}, {Addr: 0x40, Dir: trace.Out}}); err == nil {
		t.Fatal("duplicate-address task accepted")
	}
	if err := p.Submit(0, deps[:trace.MaxDeps]); err != nil {
		t.Fatalf("15-dep task rejected: %v", err)
	}
}

// TestDrainedDetectsLeak: Drained must flag an unfinished run.
func TestDrainedDetectsLeak(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.Submit(0, []trace.Dep{{Addr: 0x40, Dir: trace.InOut}})
	for i := 0; i < 200; i++ {
		p.Step()
	}
	// The task is in flight (never executed/finished): Drained must fail.
	if err := p.Drained(); err == nil {
		t.Fatal("Drained accepted a run with an in-flight task")
	}
}

// TestProtocolErrorOnBogusWake: injecting a wake for a nonexistent
// dependence must be counted, not crash.
func TestProtocolErrorOnBogusWake(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Register one real no-dep task so slot 0 exists and is in use.
	p.Submit(0, nil)
	for i := 0; i < 100; i++ {
		p.Step()
	}
	// Inject a wake targeting a VM entry nobody allocated.
	p.arb.route(arbMsg{kind: arbWake, wake: wakePkt{task: TaskHandle{TRS: 0, Slot: 0}, vm: VMAddr{DCT: 0, Idx: 99}}}, p.now+1)
	for i := 0; i < 100; i++ {
		p.Step()
	}
	if p.stats.ProtocolErrors == 0 {
		t.Fatal("bogus wake not detected")
	}
}

// TestProtocolErrorOnBogusRelease: releasing a free VM entry must be
// counted as a protocol error.
func TestProtocolErrorOnBogusRelease(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.arb.route(arbMsg{kind: arbFin, fin: finishDepPkt{task: TaskHandle{}, vm: VMAddr{DCT: 0, Idx: 3}}}, p.now+1)
	for i := 0; i < 100; i++ {
		p.Step()
	}
	if p.stats.ProtocolErrors == 0 {
		t.Fatal("bogus release not detected")
	}
}

// TestNoProgressWithoutWorkers: with nobody executing, the accelerator
// must reach a stable idle state (ready tasks parked in the TS) rather
// than spin or wedge internally.
func TestNoProgressWithoutWorkers(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.Submit(uint32(i), nil)
	}
	for i := 0; i < 5000; i++ {
		p.Step()
	}
	if !p.Idle() {
		t.Fatal("accelerator not idle after processing all submissions")
	}
	if p.ReadyCount() != 10 {
		t.Fatalf("ready count = %d, want 10", p.ReadyCount())
	}
	if p.InFlight() != 10 {
		t.Fatalf("in-flight = %d, want 10", p.InFlight())
	}
}

// TestStepToNeverRewinds: fast-forward must be monotonic.
func TestStepToNeverRewinds(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.StepTo(100)
	if p.Now() != 100 {
		t.Fatalf("now = %d", p.Now())
	}
	p.StepTo(50)
	if p.Now() != 100 {
		t.Fatal("StepTo rewound the clock")
	}
}

// TestBusySnapshot: Busy() must report per-unit counters after a run.
func TestBusySnapshot(t *testing.T) {
	tr := simpleTrace([][]trace.Dep{
		{{Addr: 0x40, Dir: trace.Out}},
		{{Addr: 0x40, Dir: trace.In}},
	}, 10)
	r := runTrace(t, tr, DefaultConfig(), 1)
	r.verify(t, tr)
	b := r.p.Busy()
	if b.GW == 0 || len(b.TRS) != 1 || b.TRS[0] == 0 || len(b.DCT) != 1 || b.DCT[0] == 0 || b.TS == 0 {
		t.Fatalf("busy counters not populated: %+v", b)
	}
}
