// Package paperref embeds the numbers published in the paper's
// evaluation section, so reproduction runs can be diffed against the
// original measurements mechanically. Every value is transcribed from
// the paper (Tables I-IV and the headline speedups quoted in the text
// for Figures 8 and 11); the comparison helpers classify each cell as
// matching in value, matching in shape, or diverging.
package paperref

import (
	"fmt"
	"math"
)

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	App       string
	Block     int
	Tasks     int
	DepLo     int
	DepHi     int
	AvgSize   float64
	SeqCycles float64
}

// TableI is the paper's Table I.
var TableI = []TableIRow{
	{"heat", 256, 64, 5, 5, 3.51e6, 2.25e8},
	{"heat", 128, 256, 5, 5, 8.20e5, 2.07e8},
	{"heat", 64, 1024, 5, 5, 2.17e5, 2.11e8},
	{"heat", 32, 4096, 5, 5, 7.19e4, 2.41e8},
	{"lu", 256, 36, 2, 2, 5.67e7, 2.04e9},
	{"lu", 128, 136, 2, 2, 1.49e7, 2.04e9},
	{"lu", 64, 528, 2, 2, 4.13e6, 2.17e9},
	{"lu", 32, 2080, 2, 2, 1.53e6, 3.18e9},
	{"sparselu", 256, 34, 1, 3, 2.74e7, 9.30e8},
	{"sparselu", 128, 212, 1, 3, 4.36e6, 9.24e8},
	{"sparselu", 64, 1512, 1, 3, 6.47e5, 9.78e8},
	{"sparselu", 32, 11472, 1, 3, 8.28e4, 9.50e8},
	{"cholesky", 256, 120, 1, 3, 6.63e6, 7.61e8},
	{"cholesky", 128, 816, 1, 3, 9.71e5, 7.89e8},
	{"cholesky", 64, 5984, 1, 3, 1.47e5, 8.77e8},
	{"cholesky", 32, 45760, 1, 3, 2.94e4, 1.34e9},
	{"h264dec", 8, 2659, 2, 6, 2.06e6, 5.48e9},
	{"h264dec", 4, 9306, 2, 6, 5.91e5, 5.50e9},
	{"h264dec", 2, 35894, 2, 6, 1.53e5, 5.48e9},
	{"h264dec", 1, 139934, 2, 6, 3.94e4, 5.51e9},
}

// TableIIRow is one row of the paper's Table II (#DM conflicts with 12
// workers).
type TableIIRow struct {
	App   string
	Block int
	DM8   int
	DM16  int
	DMP8  int
}

// TableII is the paper's Table II.
var TableII = []TableIIRow{
	{"heat", 128, 254, 252, 65},
	{"heat", 64, 1022, 1020, 757},
	{"sparselu", 128, 189, 166, 0},
	{"sparselu", 64, 239, 0, 0},
	{"lu", 64, 491, 392, 0},
	{"lu", 32, 2039, 1937, 0},
	{"cholesky", 256, 108, 79, 0},
	{"cholesky", 128, 807, 792, 0},
}

// TableIIIRow is one row of the paper's Table III, as percentages of the
// XC7Z020.
type TableIIIRow struct {
	Design  string
	LUTPct  float64
	FFPct   float64
	BRAMPct float64
}

// TableIII is the paper's Table III.
var TableIII = []TableIIIRow{
	{"TM", 0.4, 0.01, 6},
	{"VM for 8way/P+8way", 0.4, 0.01, 1},
	{"VM for 16way", 0.4, 0.01, 2},
	{"DM 8way", 1.1, 0.1, 9},
	{"DM 16way", 3.1, 0.1, 17},
	{"DM P+8way", 1.7, 0.1, 10},
	{"TRS", 1.6, 0.6, 6},
	{"DCT (DM P+8way)", 2.9, 0.3, 11},
	{"GW+ARB+TS", 1.3, 0.4, 0},
	{"Full Picos (DM P+8way)", 5.8, 1.2, 17},
}

// TableIVMode holds the paper's Table IV rows for one HIL mode, indexed
// by case 1..7 (position 0 = Case1).
type TableIVMode struct {
	Mode    string
	L1st    [7]float64
	ThrTask [7]float64
	ThrDep  [7]float64 // 0 where the paper prints "-"
}

// TableIV is the paper's Table IV.
var TableIV = []TableIVMode{
	{
		Mode:    "HW-only",
		L1st:    [7]float64{45, 73, 312, 72, 96, 287, 233},
		ThrTask: [7]float64{15, 24, 243, 24, 35, 38, 178},
		ThrDep:  [7]float64{0, 24, 16, 24, 18, 19, 16},
	},
	{
		Mode:    "HW+comm.",
		L1st:    [7]float64{1172, 1174, 1293, 1151, 1158, 1274, 1279},
		ThrTask: [7]float64{740, 740, 734, 743, 743, 743, 743},
		ThrDep:  [7]float64{0, 740, 49, 743, 371, 372, 68},
	},
	{
		Mode:    "Full-system",
		L1st:    [7]float64{3879, 4240, 4710, 4246, 4217, 4531, 4549},
		ThrTask: [7]float64{2729, 3125, 3413, 3124, 3168, 3165, 3379},
		ThrDep:  [7]float64{0, 3125, 228, 3124, 1584, 1583, 307},
	},
}

// Fig8Anchor is a headline speedup quoted in Section V-A for the P+8way
// design in HW-only mode.
type Fig8Anchor struct {
	App       string
	Block     int
	Workers2  float64 // speedup at 2 workers
	Workers12 float64 // speedup at 12 workers
}

// Fig8Anchors are the two explicit numbers the text gives for Figure 8.
var Fig8Anchors = []Fig8Anchor{
	{"heat", 64, 2.0, 5.9},
	{"cholesky", 128, 2.0, 11.5},
}

// Fig11Claim captures the qualitative claims of Section V-D used by the
// shape checks: at the given block size, Nanos saturates by 8 workers
// while Picos keeps scaling (or stays stable) to the given worker count.
type Fig11Claim struct {
	App          string
	Block        int
	PicosWorkers int     // Picos still improves (or holds) up to here
	NanosMax     float64 // Nanos speedup never exceeds this at any count
}

// Fig11Claims transcribes the explicit numbers in Section V-D:
// SparseLu/32 reaches 16x-24x on 16-24 workers; Cholesky/64 reaches
// 15x-21x; Heat/32 Nanos drops to 1.6x at 8 workers while Picos holds
// ~6.3x.
var Fig11Claims = []Fig11Claim{
	{"sparselu", 32, 24, 10},
	{"cholesky", 64, 24, 12},
	{"heat", 32, 12, 5},
}

// Verdict classifies a reproduced value against the paper's.
type Verdict int

const (
	// Match: within the tolerance.
	Match Verdict = iota
	// Near: within twice the tolerance.
	Near
	// Diverge: outside twice the tolerance.
	Diverge
)

// String renders the verdict marker used in reports.
func (v Verdict) String() string {
	switch v {
	case Match:
		return "ok"
	case Near:
		return "~"
	default:
		return "DIVERGES"
	}
}

// Compare classifies got against want with relative tolerance tol. An
// absolute slack floor keeps tiny counts (e.g. conflict counts near 0)
// from being classified on meaningless relative error.
func Compare(got, want, tol, absSlack float64) Verdict {
	diff := math.Abs(got - want)
	if diff <= absSlack {
		return Match
	}
	if want == 0 {
		if diff <= 2*absSlack {
			return Near
		}
		return Diverge
	}
	rel := diff / math.Abs(want)
	switch {
	case rel <= tol:
		return Match
	case rel <= 2*tol:
		return Near
	default:
		return Diverge
	}
}

// Delta formats got-vs-want with a percentage.
func Delta(got, want float64) string {
	if want == 0 {
		return fmt.Sprintf("%.3g vs 0", got)
	}
	return fmt.Sprintf("%.3g vs %.3g (%+.0f%%)", got, want, 100*(got-want)/want)
}

// KnownGap documents one cell where the model is known not to fully
// match the paper, with the justification for why the residual is a
// model limitation rather than an undiagnosed bug. Every non-Match cell
// of the fast report must be covered by an entry here — the golden test
// in internal/fidelity enforces it.
type KnownGap struct {
	// Experiment and Cell name the report line, exactly as emitted.
	Experiment string
	Cell       string
	// Why explains the residual.
	Why string
}

// KnownGaps lists the accepted model gaps of the current reproduction.
// It is empty: every cell of the fast report matches the paper within
// tolerance.
//
// (Closed in earlier revisions, kept for the record:
//
// Table II sparselu/64 8way under-measured conflicts ~94 vs 239 while
// the model stalled ALL registration head-of-line on the first full
// set — one global stall episode absorbed every colliding arrival
// behind it. The DCT's conflict sidetrack register now keeps
// registration flowing past a saturated set, the way the decoupled
// creation/registration pipeline keeps arrivals coming, and conflicts
// are accounted per saturated set; the cell measures ~132 and is
// within the Table II tolerance. Before the word-address hash fix the
// same row diverged outright: 496 vs 239 and 360 vs 0.
//
// Table IV HW-only case4 thrTask over-measured ~37 vs 24: case4 is one
// producer-producer chain on a single address, so its throughput is
// the full finish->release->wake->ready round trip, and the model
// serialized work the prototype overlaps. Three coordinated timing
// corrections closed it: the DCT release engine now issues the chain
// wake as soon as the VM read resolves it, charging the version
// recycle to the overlapped release timer; the TRS services
// dependence-tracking traffic ahead of 10-cycle new-task TM0 writes;
// and the arbiter routes by visibility stamp instead of issue order,
// so in-flight registration statuses no longer head-of-line block
// wakes already on the wire. The cell measures ~31 and the remaining
// distance to the prototype's 24 is admission-phase contention shared
// with every other matching cell.)
var KnownGaps = []KnownGap{}

// FindGap returns the KnownGaps entry covering a report line, if any.
func FindGap(experiment, cell string) (KnownGap, bool) {
	for _, g := range KnownGaps {
		if g.Experiment == experiment && g.Cell == cell {
			return g, true
		}
	}
	return KnownGap{}, false
}
