package apps

import "fmt"

// App names a benchmark.
type App string

// The five real benchmarks of Section IV-C.
const (
	Heat     App = "heat"
	Lu       App = "lu"
	MLu      App = "mlu" // Lu with modified task-creation order (Figure 9)
	SparseLu App = "sparselu"
	Cholesky App = "cholesky"
	H264Dec  App = "h264dec"
)

// Apps lists the canonical benchmarks (MLu is a variant of Lu and not a
// separate Table I row).
var Apps = []App{Heat, Lu, SparseLu, Cholesky, H264Dec}

// tableIEntry is one row of the paper's Table I.
type tableIEntry struct {
	numTasks int     // #Tasks
	avgSize  float64 // AveTSize, cycles
	seqExec  float64 // SeqExec, cycles
}

// tableI holds the paper's Table I, keyed by app and block size. For the
// matrix kernels the problem size is fixed at 2048; for H264dec the
// "problem" is 10 HD frames and the block size is the macroblock grouping.
var tableI = map[App]map[int]tableIEntry{
	Heat: {
		256: {64, 3.51e6, 2.25e8},
		128: {256, 8.20e5, 2.07e8},
		64:  {1024, 2.17e5, 2.11e8},
		32:  {4096, 7.19e4, 2.41e8},
	},
	Lu: {
		256: {36, 5.67e7, 2.04e9},
		128: {136, 1.49e7, 2.04e9},
		64:  {528, 4.13e6, 2.17e9},
		32:  {2080, 1.53e6, 3.18e9},
	},
	SparseLu: {
		256: {34, 2.74e7, 9.30e8},
		128: {212, 4.36e6, 9.24e8},
		64:  {1512, 6.47e5, 9.78e8},
		32:  {11472, 8.28e4, 9.50e8},
	},
	Cholesky: {
		256: {120, 6.63e6, 7.61e8},
		128: {816, 9.71e5, 7.89e8},
		64:  {5984, 1.47e5, 8.77e8},
		32:  {45760, 2.94e4, 1.34e9},
	},
	H264Dec: {
		8: {2659, 2.06e6, 5.48e9},
		4: {9306, 5.91e5, 5.50e9},
		2: {35894, 1.53e5, 5.48e9},
		1: {139934, 3.94e4, 5.51e9},
	},
}

// DefaultProblem is the matrix dimension used throughout the paper.
const DefaultProblem = 2048

// BlockSizes returns the four block sizes Table I uses for the app,
// largest first (coarse to fine granularity).
func BlockSizes(app App) []int {
	if app == H264Dec {
		return []int{8, 4, 2, 1}
	}
	return []int{256, 128, 64, 32}
}

// calibrate returns the target average task size for (app, bs). For block
// sizes not in Table I it extrapolates with the kernel's O(bs^3) (matrix
// kernels) or O(bs^2) (Heat stencil, H264 macroblock area) cost model,
// anchored at the closest tabulated size.
func calibrate(app App, bs int) tableIEntry {
	if app == MLu {
		app = Lu
	}
	rows := tableI[app]
	if e, ok := rows[bs]; ok {
		return e
	}
	// Anchor at block size 128 (8 for h264) and scale.
	anchorBS := 128
	exp := 3.0
	switch app {
	case Heat:
		exp = 2.0
	case H264Dec:
		anchorBS, exp = 8, 2.0
	}
	anchor := rows[anchorBS]
	ratio := pow(float64(bs)/float64(anchorBS), exp)
	return tableIEntry{numTasks: 0, avgSize: anchor.avgSize * ratio, seqExec: anchor.seqExec}
}

func pow(x, e float64) float64 {
	// Tiny positive-base power via exp/log-free repeated squaring on the
	// common cases (e is 2 or 3 here); fall back to iterated multiply.
	switch e {
	case 2:
		return x * x
	case 3:
		return x * x * x
	default:
		r := 1.0
		for i := 0; i < int(e); i++ {
			r *= x
		}
		return r
	}
}

// scaleDurations rescales raw task weights so the mean equals the Table I
// average task size, and returns the Table I sequential time scaled by
// the ratio of actual to tabulated task count (1.0 when counts match, as
// they do for Heat/Lu/Cholesky).
func scaleDurations(app App, bs int, weights []float64) (durations []uint64, refSeq uint64) {
	e := calibrate(app, bs)
	n := len(weights)
	if n == 0 {
		return nil, 0
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	target := e.avgSize * float64(n) // total task cycles
	scale := target / wsum
	durations = make([]uint64, n)
	for i, w := range weights {
		d := uint64(w * scale)
		if d == 0 {
			d = 1
		}
		durations[i] = d
	}
	seq := e.seqExec
	if e.numTasks > 0 {
		seq *= float64(n) / float64(e.numTasks)
	}
	return durations, uint64(seq)
}

// Generate produces the trace for app with the given problem and block
// size. For matrix kernels, problem is the matrix dimension (the paper
// uses 2048) and block the block dimension; for H264dec, problem is the
// number of frames (the paper uses 10) and block the macroblock grouping
// (8, 4, 2 or 1).
func Generate(app App, problem, block int) (*TraceResult, error) {
	switch app {
	case Heat:
		return genHeat(problem, block)
	case Lu:
		return genLu(problem, block, false)
	case MLu:
		return genLu(problem, block, true)
	case SparseLu:
		return genSparseLu(problem, block)
	case Cholesky:
		return genCholesky(problem, block)
	case H264Dec:
		return genH264(problem, block)
	default:
		return nil, fmt.Errorf("apps: unknown app %q", app)
	}
}
