package nanos

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/synth"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func TestErrors(t *testing.T) {
	tr := &trace.Trace{}
	if _, err := Run(tr, Config{Workers: 0}); err == nil {
		t.Fatal("accepted 0 workers")
	}
	if r, err := Run(tr, Config{Workers: 2}); err != nil || r.Makespan != 0 {
		t.Fatalf("empty trace: %v %+v", err, r)
	}
}

func TestLegalSchedules(t *testing.T) {
	for n := 1; n <= 7; n++ {
		tr, err := synth.Case(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 4, 12} {
			r, err := Run(tr, Config{Workers: w})
			if err != nil {
				t.Fatalf("case%d w=%d: %v", n, w, err)
			}
			g := taskgraph.Build(tr)
			if err := g.CheckSchedule(r.Start, r.Finish); err != nil {
				t.Fatalf("case%d w=%d: %v", n, w, err)
			}
		}
	}
}

func TestOverheadModelShape(t *testing.T) {
	tm := DefaultTiming()
	// Creation constant in #deps and threads (Figure 10 "Creation").
	if tm.CreationOverhead(1) != tm.CreationOverhead(12) {
		t.Fatal("creation overhead should not depend on thread count")
	}
	// Submission grows with deps and with threads.
	if tm.SubmissionOverhead(4, 1) <= tm.SubmissionOverhead(1, 1) {
		t.Fatal("submission overhead must grow with deps")
	}
	if tm.SubmissionOverhead(1, 12) <= tm.SubmissionOverhead(1, 1) {
		t.Fatal("submission overhead must grow with threads")
	}
}

// TestCoarseGrainScales: for coarse tasks the runtime overhead is
// negligible and Nanos must achieve good speedup.
func TestCoarseGrainScales(t *testing.T) {
	res, err := apps.Generate(apps.Cholesky, 2048, 256)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(res.Trace, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup < 3 {
		t.Fatalf("coarse cholesky speedup %.2f, want > 3", r.Speedup)
	}
}

// TestFineGrainCollapses: the Figure 1 signature — at fine granularity
// the software runtime stops scaling; 12 workers must be far below
// linear and not meaningfully better than 4.
func TestFineGrainCollapses(t *testing.T) {
	res, err := apps.Generate(apps.Cholesky, 2048, 32)
	if err != nil {
		t.Fatal(err)
	}
	r12, err := Run(res.Trace, Config{Workers: 12})
	if err != nil {
		t.Fatal(err)
	}
	if r12.Speedup > 8 {
		t.Fatalf("fine-grain cholesky speedup %.2f with 12 workers; overhead model too weak", r12.Speedup)
	}
	if r12.LockBusy == 0 {
		t.Fatal("lock busy time not recorded")
	}
}

// TestKneeAroundEightWorkers: adding workers beyond the knee must yield
// clearly sublinear returns (paper: "Nanos++ RTS scales up to 8 workers
// maximum").
func TestKneeAroundEightWorkers(t *testing.T) {
	res, err := apps.Generate(apps.SparseLu, 2048, 32)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(res.Trace, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	r24, err := Run(res.Trace, Config{Workers: 24})
	if err != nil {
		t.Fatal(err)
	}
	if r24.Speedup > r8.Speedup*1.5 {
		t.Fatalf("speedup kept scaling: 8w %.2f -> 24w %.2f", r8.Speedup, r24.Speedup)
	}
}

func TestDeterminism(t *testing.T) {
	tr, _ := synth.Case(7)
	a, err := Run(tr, Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.LockBusy != b.LockBusy {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Makespan, a.LockBusy, b.Makespan, b.LockBusy)
	}
}
