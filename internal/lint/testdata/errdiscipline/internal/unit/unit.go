// Package unit exercises the errdiscipline analyzer: sentinel errors
// must be compared with errors.Is, never by identity.
package unit

import "errors"

// ErrQueueFull is the sentinel a bounded queue returns on overflow.
var ErrQueueFull = errors.New("unit: queue full")

// ErrDrained signals a queue with nothing left.
var ErrDrained = errors.New("unit: drained")

type queue struct {
	items []int
	cap   int
}

func (q *queue) push(v int) error {
	if len(q.items) >= q.cap {
		return ErrQueueFull
	}
	q.items = append(q.items, v)
	return nil
}

// badRetry compares sentinels by identity: both directions and the
// switch form are findings.
func badRetry(q *queue, v int) bool {
	err := q.push(v)
	if err == ErrQueueFull { // want `ErrQueueFull compared with ==`
		return true
	}
	if ErrQueueFull != err { // want `ErrQueueFull compared with !=`
		return false
	}
	switch err {
	case ErrDrained: // want `switch case compares ErrDrained by identity`
		return false
	}
	return false
}

// goodRetry is the sanctioned form: errors.Is survives wrapping.
func goodRetry(q *queue, v int) bool {
	err := q.push(v)
	if errors.Is(err, ErrQueueFull) {
		return true
	}
	// Nil checks are not sentinel comparisons and must not be flagged.
	if err != nil {
		return false
	}
	// Identity comparison of non-sentinel locals is fine too.
	other := errors.New("local")
	return err == other
}
