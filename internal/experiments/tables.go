package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/picos"
	"repro/internal/resources"
	"repro/internal/sim"
	"repro/internal/trace"
)

func init() {
	Register("table1", func(Options) ([]*Table, error) { return Table1() })
	Register("table2", Table2)
	Register("table3", func(Options) ([]*Table, error) { return Table3() })
	Register("table4", Table4)
}

// dmDesigns pairs each DM design's spec spelling with its paper name,
// in Table II column order.
var dmDesigns = []struct {
	spec, label string
}{
	{"8way", "DM 8way"},
	{"16way", "DM 16way"},
	{"p8way", "DM P+8way"},
}

// appTrace builds one real-benchmark trace through the workload
// registry.
func appTrace(app apps.App, block int) (*trace.Trace, error) {
	return sim.BuildWorkload(sim.Spec{Workload: string(app), Block: block})
}

// Table1 regenerates Table I: the real-benchmark characteristics.
func Table1() ([]*Table, error) {
	t := &Table{
		Title:  "Table I: real benchmarks",
		Header: []string{"Name", "P/BlockSize", "#Tasks", "#Dep", "AveTSize", "SeqExec"},
	}
	for _, app := range apps.Apps {
		for _, bs := range apps.BlockSizes(app) {
			tr, err := appTrace(app, bs)
			if err != nil {
				return nil, err
			}
			s := tr.Summarize()
			depRange := fmt.Sprintf("%d", s.MaxDeps)
			if s.MinDeps != s.MaxDeps {
				depRange = fmt.Sprintf("%d-%d", s.MinDeps, s.MaxDeps)
			}
			size := fmt.Sprintf("%d/%d", apps.DefaultProblem, bs)
			if app == apps.H264Dec {
				size = fmt.Sprintf("10f/%d", bs)
			}
			t.Rows = append(t.Rows, []string{
				string(app), size, fmt.Sprintf("%d", s.NumTasks), depRange,
				e2(s.AvgTaskSize), e2(float64(tr.Baseline())),
			})
		}
	}
	return []*Table{t}, nil
}

// table2Workloads are the benchmark/block-size pairs of Table II.
var table2Workloads = []struct {
	app apps.App
	bs  int
}{
	{apps.Heat, 128}, {apps.Heat, 64},
	{apps.SparseLu, 128}, {apps.SparseLu, 64},
	{apps.Lu, 64}, {apps.Lu, 32},
	{apps.Cholesky, 256}, {apps.Cholesky, 128},
}

// Table2 regenerates Table II: DM conflicts per design with 12 workers
// in HW-only mode.
func Table2(opt Options) ([]*Table, error) {
	header := []string{"Name", "BlockSize"}
	for _, d := range dmDesigns {
		header = append(header, d.label)
	}
	t := &Table{
		Title:  "Table II: #DM conflicts in three Picos designs (12 workers, HW-only)",
		Header: header,
	}
	workloads := table2Workloads
	if opt.Quick {
		workloads = workloads[:4]
	}
	var specs []sim.Spec
	for _, wl := range workloads {
		for _, design := range dmDesigns {
			specs = append(specs, sim.Spec{
				Engine:   "picos-hw",
				Workload: string(wl.app),
				Block:    wl.bs,
				Design:   design.spec,
				// Admit on TRS slots only, like the prototype: the conflict
				// count then includes memory-capacity pressure (the paper's
				// Heat/P+8way rows are capacity-bound).
				Admission: "slots",
			})
		}
	}
	results, err := sweep(opt, specs)
	if err != nil {
		return nil, err
	}
	for i, wl := range workloads {
		row := []string{string(wl.app), fmt.Sprintf("%d", wl.bs)}
		for j := range dmDesigns {
			st := results[i*len(dmDesigns)+j].Stats
			row = append(row, d(st.DMConflicts+st.VMStallEvents))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "counts are dependences that could not be stored on arrival (set conflict or VM capacity)")
	return []*Table{t}, nil
}

// Table3 regenerates Table III: the hardware resource model.
func Table3() ([]*Table, error) {
	t := &Table{
		Title:  "Table III: hardware resource consumption (XC7Z020: 53200 LUT, 106400 FF, 140 BRAM36)",
		Header: []string{"Design", "LUTs", "FFs", "BRAM(36Kb)"},
	}
	row := func(r resources.Report) {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%.1f%%", r.LUTPct()),
			fmt.Sprintf("%.2f%%", r.FFPct()),
			fmt.Sprintf("%.1f%%", r.BRAMPct()),
		})
	}
	row(resources.TM())
	row(resources.VM(picos.DM8Way))
	row(resources.VM(picos.DM16Way))
	row(resources.DM(picos.DM8Way))
	row(resources.DM(picos.DM16Way))
	row(resources.DM(picos.DMP8Way))
	row(resources.TRS())
	row(resources.DCT(picos.DMP8Way))
	row(resources.Glue())
	row(resources.FullPicos(picos.DMP8Way, 1, 1))
	t.Notes = append(t.Notes, "analytic model calibrated to the paper's synthesis results; see DESIGN.md")
	return []*Table{t}, nil
}

// hilEngines pairs the three Picos engines with the paper's mode names,
// in Table IV row order.
var hilEngines = []struct {
	engine, label string
}{
	{"picos-hw", "HW-only"},
	{"picos-comm", "HW+comm."},
	{"picos-full", "Full-system"},
}

// Table4 regenerates Table IV: latency and throughput of the synthetic
// benchmarks under the three HIL modes, 12 workers.
func Table4(opt Options) ([]*Table, error) {
	header := []string{"Testcase", "Case1", "Case2", "Case3", "Case4", "Case5", "Case6", "Case7"}

	t := &Table{Title: "Table IV: results of the synthetic benchmarks (12 workers)", Header: header}
	// #d1st / avg#d row.
	depRow := []string{"#d1st/avg#d"}
	avgDeps := make([]float64, 7)
	for c := 1; c <= 7; c++ {
		tr, err := sim.BuildWorkload(sim.Spec{Workload: fmt.Sprintf("case%d", c)})
		if err != nil {
			return nil, err
		}
		avgDeps[c-1] = float64(tr.NumDeps()) / float64(len(tr.Tasks))
		depRow = append(depRow, fmt.Sprintf("%d/%.0f", len(tr.Tasks[0].Deps), avgDeps[c-1]))
	}
	t.Rows = append(t.Rows, depRow)

	grid := sim.Grid{
		Engines:   []string{"picos-hw", "picos-comm", "picos-full"},
		Workloads: []string{"case1", "case2", "case3", "case4", "case5", "case6", "case7"},
	}
	results, err := sweep(opt, grid.Expand())
	if err != nil {
		return nil, err
	}
	for mi, eng := range hilEngines {
		l1 := []string{eng.label + " L1st"}
		thrT := []string{eng.label + " thrTask"}
		thrD := []string{eng.label + " thrDep"}
		for c := 1; c <= 7; c++ {
			res := results[mi*7+c-1]
			l1 = append(l1, d(res.FirstStart))
			thrT = append(thrT, fmt.Sprintf("%.0f", res.ThrTask))
			if avg := avgDeps[c-1]; avg > 0 {
				thrD = append(thrD, fmt.Sprintf("%.0f", res.ThrTask/avg))
			} else {
				thrD = append(thrD, "-")
			}
		}
		t.Rows = append(t.Rows, l1, thrT, thrD)
	}
	return []*Table{t}, nil
}
