// Resilience: sweep deterministic AXI drop rates against the recovery
// policies (none vs bounded retransmission with deterministic backoff)
// on the Full-system engine, with the software-only nanos runtime as
// the fault-free control arm, and render each lane's completion
// fraction and loss accounting.
//
// The headline row: at drop rates up to 1% with retry=3, every dropped
// message retransmits within budget and the completion fraction stays
// 1.0 — the system degrades in makespan, not in work lost. Without a
// retry policy the same rates permanently lose messages, and the runs
// either wedge on the lost tasks' dependents (reported structurally as
// fault-induced wedges) or drain around the losses.
//
//	go run ./examples/resilience            # full sweep
//	go run ./examples/resilience -quick     # reduced grid (CI smoke)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced grid (1 family, 2 rates)")
	flag.Parse()

	cells, err := experiments.ResilienceData(experiments.Options{Quick: *quick})
	if err != nil {
		log.Fatal(err)
	}

	for _, t := range experiments.ResilienceTables(cells) {
		if err := t.Fprint(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	// The acceptance line this example exists to demonstrate: with the
	// retry policy, no drop rate in the sweep loses a single task.
	bad := 0
	for _, c := range cells {
		if c.Recovery != "" && c.CompletionFraction != 1.0 {
			fmt.Printf("FAIL: %s %s %s +%s completed %.3f\n",
				c.Engine, c.Family, c.FaultPlan, c.Recovery, c.CompletionFraction)
			bad++
		}
	}
	fmt.Printf("%d grid points; retry lanes all complete: %v\n", len(cells), bad == 0)
	if bad > 0 {
		os.Exit(1)
	}
}
