// Package trace defines the task-trace format that feeds every simulator
// in this repository, mirroring the traces the paper captured on its
// 12-core Xeon and replayed on the Zedboard HIL platform (Section IV-A):
// per task, an identifier, the list of dependence addresses with their
// directions (input / output / inout), the execution time in cycles, and
// the task-creation latency in cycles.
package trace

import (
	"errors"
	"fmt"
)

// Direction is the access direction of a dependence, matching the OmpSs
// clauses input(...), output(...), inout(...).
type Direction uint8

const (
	// In marks a read-only dependence (OmpSs "input").
	In Direction = iota
	// Out marks a write-only dependence (OmpSs "output").
	Out
	// InOut marks a read-write dependence (OmpSs "inout").
	InOut
)

// String returns the OmpSs clause name for the direction.
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// Reads reports whether the direction implies a read of the address.
func (d Direction) Reads() bool { return d == In || d == InOut }

// Writes reports whether the direction implies a write of the address.
func (d Direction) Writes() bool { return d == Out || d == InOut }

// Dep is one dependence of a task: a memory address plus its direction.
type Dep struct {
	Addr uint64
	Dir  Direction
}

// MaxDeps is the number of dependences a single task may carry. The
// prototype's TMX memories hold 5 entries of 3 dependences each, i.e. 15
// dependences per task, "enough for real applications currently
// programmed with OmpSs" (Section III-A).
const MaxDeps = 15

// Task is one entry of a trace.
type Task struct {
	// ID is the task identifier (the paper's Task.ID). IDs are unique
	// within a trace and equal the task's position in creation order.
	ID uint32
	// Deps lists the task's dependences in declaration order.
	Deps []Dep
	// Duration is the task's execution time in cycles, as instrumented
	// from the sequential run.
	Duration uint64
	// CreateCost is the task-creation latency in cycles on the master
	// (used by the Full-system mode and the software-only runtime).
	// Zero means "use the runtime model's default".
	CreateCost uint64
	// Kind is a 1-based index into the trace's Kinds table naming the
	// task's kernel family (e.g. "gemm", "gs", "stencil_2d"). Zero means
	// the task is unkinded. Worker-class affinity and locality-aware
	// scheduling key on this label.
	Kind uint16
}

// Trace is an ordered stream of tasks in creation order.
type Trace struct {
	// Name identifies the workload, e.g. "cholesky-2048-128" or "case4".
	Name string
	// Tasks in creation (sequential program) order.
	Tasks []Task
	// SerialCycles is extra sequential (non-task) work in the original
	// program, added to the sum of task durations when computing the
	// sequential execution time. Usually zero for the paper's kernels.
	SerialCycles uint64
	// RefSeqCycles, when non-zero, is the measured sequential execution
	// time of the original (untasked) program, the paper's Table I
	// "SeqExec" column. It can differ from the sum of task durations
	// because tasking adds per-block overhead. Speedups are computed
	// against Baseline().
	RefSeqCycles uint64
	// Kinds is the kernel-family name table referenced by Task.Kind
	// (1-based: Task.Kind == k names Kinds[k-1]). Generators that know
	// their kernels (the Table I apps, the pattern families) label
	// tasks; synthetic capacity cases leave tasks unkinded.
	Kinds []string
}

// KindID interns a kind name and returns its 1-based Task.Kind value.
// The empty name is the unkinded sentinel 0.
func (t *Trace) KindID(name string) uint16 {
	if name == "" {
		return 0
	}
	for i, k := range t.Kinds {
		if k == name {
			return uint16(i + 1)
		}
	}
	t.Kinds = append(t.Kinds, name)
	return uint16(len(t.Kinds))
}

// KindOf returns the kind name of task i, or "" when unkinded.
func (t *Trace) KindOf(i int) string {
	k := t.Tasks[i].Kind
	if k == 0 || int(k) > len(t.Kinds) {
		return ""
	}
	return t.Kinds[k-1]
}

// Baseline returns the sequential-execution reference used for speedups:
// RefSeqCycles when set, otherwise SeqCycles().
func (t *Trace) Baseline() uint64 {
	if t.RefSeqCycles != 0 {
		return t.RefSeqCycles
	}
	return t.SeqCycles()
}

// SeqCycles returns the sequential execution time in cycles: the sum of
// all task durations plus any serial work. Speedups in this repository
// are computed against this value, as in the paper ("Speedup shown in
// this paper is computed against the sequential execution time").
func (t *Trace) SeqCycles() uint64 {
	total := t.SerialCycles
	for i := range t.Tasks {
		total += t.Tasks[i].Duration
	}
	return total
}

// NumDeps returns the total number of dependences across all tasks.
func (t *Trace) NumDeps() int {
	n := 0
	for i := range t.Tasks {
		n += len(t.Tasks[i].Deps)
	}
	return n
}

// Summary holds the Table I columns for a trace.
type Summary struct {
	Name        string
	NumTasks    int
	MinDeps     int
	MaxDeps     int
	AvgTaskSize float64
	SeqCycles   uint64
}

// Summarize computes the Table I characteristics of the trace.
func (t *Trace) Summarize() Summary {
	s := Summary{Name: t.Name, NumTasks: len(t.Tasks), SeqCycles: t.SeqCycles()}
	if len(t.Tasks) == 0 {
		return s
	}
	s.MinDeps = len(t.Tasks[0].Deps)
	var durSum uint64
	for i := range t.Tasks {
		nd := len(t.Tasks[i].Deps)
		if nd < s.MinDeps {
			s.MinDeps = nd
		}
		if nd > s.MaxDeps {
			s.MaxDeps = nd
		}
		durSum += t.Tasks[i].Duration
	}
	s.AvgTaskSize = float64(durSum) / float64(len(t.Tasks))
	return s
}

// Validation errors.
var (
	ErrTooManyDeps  = errors.New("trace: task exceeds 15 dependences")
	ErrDupAddr      = errors.New("trace: duplicate dependence address within one task")
	ErrBadID        = errors.New("trace: task ID does not match creation order")
	ErrZeroDuration = errors.New("trace: task has zero duration")
	ErrBadKind      = errors.New("trace: bad task kind")
)

// Validate checks the structural invariants every simulator relies on:
// IDs equal creation order, at most MaxDeps dependences per task, no
// duplicate address within a single task's dependence list (the hardware
// assumes distinct addresses; OmpSs expresses read+write of the same
// datum as a single inout), and non-zero durations.
func (t *Trace) Validate() error {
	for i, k := range t.Kinds {
		if k == "" {
			return fmt.Errorf("%w: empty name in kind table entry %d", ErrBadKind, i)
		}
		for j := 0; j < i; j++ {
			if t.Kinds[j] == k {
				return fmt.Errorf("%w: duplicate kind table entry %q", ErrBadKind, k)
			}
		}
	}
	for i := range t.Tasks {
		if err := ValidateTask(&t.Tasks[i], i, len(t.Kinds)); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{Name: t.Name, SerialCycles: t.SerialCycles, RefSeqCycles: t.RefSeqCycles,
		Kinds: append([]string(nil), t.Kinds...), Tasks: make([]Task, len(t.Tasks))}
	for i := range t.Tasks {
		c.Tasks[i] = t.Tasks[i]
		c.Tasks[i].Deps = append([]Dep(nil), t.Tasks[i].Deps...)
	}
	return c
}
