// DM design space: the Figure 8 / Table II experiment as a program —
// run Heat with the three Dependence Memory designs and watch conflicts
// turn into lost speedup, then check the hardware price of each design
// (Table III).
package main

import (
	"fmt"
	"log"

	"repro/internal/picos"
	"repro/internal/resources"
	"repro/internal/sim"

	_ "repro/internal/engines"
)

func main() {
	tr, err := sim.BuildWorkload(sim.Spec{Workload: "heat", Block: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat 2048/64: %d tasks, 5 deps each, block-aligned addresses\n\n", len(tr.Tasks))

	fmt.Printf("%-10s  %10s  %12s  %10s  %10s\n", "design", "speedup", "#conflicts", "LUT%", "BRAM%")
	for _, name := range []string{"8way", "16way", "p8way"} {
		res, err := sim.Run(sim.Spec{Engine: "picos-hw", Workload: "heat", Block: 64, Design: name})
		if err != nil {
			log.Fatal(err)
		}
		design, err := picos.ParseDesign(name)
		if err != nil {
			log.Fatal(err)
		}
		hw := resources.DM(design)
		fmt.Printf("%-10s  %9.2fx  %12d  %9.1f%%  %9.1f%%\n",
			design, res.Speedup, res.Stats.DMConflicts, hw.LUTPct(), hw.BRAMPct())
	}

	fmt.Println()
	fmt.Println("block-aligned addresses share their low 6 bits, so the direct-hash")
	fmt.Println("designs pile every block into one set; Pearson folding spreads them.")
	fmt.Println("P+8way buys 16way-beating conflict behaviour at ~8way hardware cost —")
	fmt.Println("the paper's \"most balanced design\".")
}
