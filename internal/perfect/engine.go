package perfect

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Engine adapts the zero-overhead roofline scheduler to the sim
// registry.
type Engine struct{}

// Name returns the registry name.
func (Engine) Name() string { return "perfect" }

// Run executes the trace on the roofline scheduler.
//
// Only Workers and WorkerClasses reach the roofline: it schedules
// greedily in one pass — always granting the best eligible class, so
// the Sched policy and Steal queues have nothing to improve — and
// there is no hardware to configure, no cycle loop for FastForward to
// select and no runaway simulation for Watchdog to bound.
//
//picos:ignores-knobs Admission,Conflict,FastForward,Faults,NewQDepth,NumDCT,NumTRS,Recovery,RunAhead,Sched,ShardHash,ShardHop,Steal,Wake,Watchdog zero-overhead roofline; the greedy best-class grant subsumes every grant policy and steal order, there is no accelerator hardware or cycle loop to fast-forward or bound, and no fault layer — the roofline is the fault-free ideal by definition
func (Engine) Run(tr *trace.Trace, spec sim.Spec) (*sim.Result, error) {
	classes, err := spec.ClassPlan()
	if err != nil {
		return nil, err
	}
	var res *Result
	if len(classes) > 0 {
		res, err = RunClasses(tr, classes)
	} else {
		res, err = Run(tr, spec.Workers)
	}
	if err != nil {
		return nil, err
	}
	first, thr := sim.Probes(res.Start)
	return &sim.Result{
		Workers:    res.Workers,
		Makespan:   res.Makespan,
		Baseline:   res.Baseline,
		Speedup:    res.Speedup,
		FirstStart: first,
		ThrTask:    thr,
		Start:      res.Start,
		Finish:     res.Finish,
	}, nil
}

// RunStream satisfies sim.StreamEngine by materializing the source: the
// roofline's critical-path weighting is a whole-graph backward pass, so
// a bounded window cannot help it — this is one of the sanctioned
// trace.Materialize sites (see picoslint's materializewall check). The
// window knob therefore changes nothing here beyond routing; results
// are identical to Run on the materialized trace by construction.
func (e Engine) RunStream(src trace.Source, spec sim.Spec) (*sim.Result, error) {
	tr, err := trace.Materialize(src)
	if err != nil {
		return nil, err
	}
	return e.Run(tr, spec)
}

func init() { sim.Register(Engine{}) }
