package picos

import (
	"testing"

	"repro/internal/pearson"
)

func TestRegFIFOVisibility(t *testing.T) {
	var q regFIFO[int]
	q.push(7, 5)
	if _, ok := q.pop(4); ok {
		t.Fatal("element visible before its cycle")
	}
	if v, ok := q.pop(5); !ok || v != 7 {
		t.Fatalf("pop(5) = %d,%v", v, ok)
	}
	// Order preserved even with equal stamps.
	q.push(1, 10)
	q.push(2, 10)
	if v, _ := q.pop(10); v != 1 {
		t.Fatal("FIFO order violated")
	}
	if v, ok := q.peek(10); !ok || v != 2 {
		t.Fatalf("peek = %d,%v", v, ok)
	}
	if q.len() != 1 || q.empty() {
		t.Fatal("len/empty wrong")
	}
	if q.highwater < 2 {
		t.Fatalf("highwater = %d", q.highwater)
	}
}

func TestDMDesignGeometry(t *testing.T) {
	if DM8Way.Ways() != 8 || DM16Way.Ways() != 16 || DMP8Way.Ways() != 8 {
		t.Fatal("way counts wrong")
	}
	if DM8Way.Capacity() != 512 || DM16Way.Capacity() != 1024 || DMP8Way.Capacity() != 512 {
		t.Fatal("capacities wrong (paper: VM 512 for 8-way designs, 1024 for 16-way)")
	}
}

func TestDepMemoryIndexing(t *testing.T) {
	direct := newDepMemory(DM8Way, dmSets)
	p8 := newDepMemory(DMP8Way, dmSets)
	addr := uint64(0xABCD40)
	if direct.index(addr) != int((addr>>2)&63) {
		t.Fatal("direct index must be addr[7:2] (the 32-bit-word address low 6 bits)")
	}
	if p8.index(addr) != pearson.Index64(addr) {
		t.Fatal("P+8way index must be the Pearson fold")
	}
}

func TestDepMemoryInsertLookupFree(t *testing.T) {
	m := newDepMemory(DM8Way, dmSets)
	// Fill one set with 8 aligned addresses: stride 256 keeps the
	// word-address index bits [7:2] identical.
	refs := make([]dmRef, 8)
	for i := 0; i < 8; i++ {
		addr := uint64(0x1000 + i*256)
		ref, ok := m.insert(addr, uint16(i), false)
		if !ok {
			t.Fatalf("insert %d rejected before set full", i)
		}
		refs[i] = ref
	}
	if _, ok := m.insert(0x1000+8*256, 8, false); ok {
		t.Fatal("9th insert into a full 8-way set succeeded")
	}
	// Lookup finds entries; priorities: way 0 first.
	if ref, ok := m.lookup(0x1000); !ok || ref.way != 0 {
		t.Fatalf("lookup = %+v, %v", ref, ok)
	}
	if m.live() != 8 {
		t.Fatalf("live = %d", m.live())
	}
	// Free way 3 and reinsert: must land in way 3 (first free way).
	m.free(refs[3])
	ref, ok := m.insert(0x9000, 99, true)
	if !ok || ref.way != 3 {
		t.Fatalf("reinsert = %+v, %v; want way 3", ref, ok)
	}
	e := m.at(ref)
	if !e.input || e.tag != 0x9000 || e.head != 99 || e.tail != 99 || e.count != 1 {
		t.Fatalf("entry state %+v", e)
	}
}

func TestVersionMemoryLifecycle(t *testing.T) {
	m := newVersionMemory(4)
	if m.freeCount() != 4 || m.live() != 0 {
		t.Fatal("fresh VM state wrong")
	}
	idxs := make([]uint16, 4)
	for i := range idxs {
		idx, ok := m.alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		idxs[i] = idx
		if !m.at(idx).used {
			t.Fatal("allocated entry not marked used")
		}
	}
	if _, ok := m.alloc(); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
	m.release(idxs[1])
	if m.freeCount() != 1 || m.live() != 3 {
		t.Fatalf("free=%d live=%d after release", m.freeCount(), m.live())
	}
	idx, ok := m.alloc()
	if !ok || idx != idxs[1] {
		t.Fatalf("realloc = %d,%v; want recycled %d", idx, ok, idxs[1])
	}
}

func TestVMEntryComplete(t *testing.T) {
	v := vmEntry{used: true, hasProducer: true}
	if v.complete() {
		t.Fatal("incomplete producer reported complete")
	}
	v.producerDone = true
	if !v.complete() {
		t.Fatal("producer-only version with no consumers should be complete")
	}
	v.numConsumers = 2
	if v.complete() {
		t.Fatal("unfinished consumers reported complete")
	}
	v.finished = 2
	if !v.complete() {
		t.Fatal("drained version not complete")
	}
}

func TestTaskMemoryLifecycle(t *testing.T) {
	m := newTaskMemory()
	if m.freeCount() != tmSlots {
		t.Fatalf("fresh TM free = %d", m.freeCount())
	}
	slots := map[uint16]bool{}
	for i := 0; i < tmSlots; i++ {
		s, ok := m.alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if slots[s] {
			t.Fatalf("slot %d handed out twice", s)
		}
		slots[s] = true
	}
	if _, ok := m.alloc(); ok {
		t.Fatal("alloc beyond 256 slots succeeded")
	}
	m.release(7)
	if m.live() != tmSlots-1 {
		t.Fatalf("live = %d", m.live())
	}
}

func TestFindDepByVM(t *testing.T) {
	e := tmEntry{used: true, numDeps: 3}
	e.deps[0] = tmDep{registered: true, vm: VMAddr{DCT: 0, Idx: 5}}
	e.deps[1] = tmDep{registered: true, vm: VMAddr{DCT: 1, Idx: 5}}
	e.deps[2] = tmDep{registered: false, vm: VMAddr{DCT: 0, Idx: 9}}
	if i, ok := e.findDepByVM(VMAddr{DCT: 1, Idx: 5}); !ok || i != 1 {
		t.Fatalf("findDepByVM = %d,%v", i, ok)
	}
	// Unregistered entries must not match.
	if _, ok := e.findDepByVM(VMAddr{DCT: 0, Idx: 9}); ok {
		t.Fatal("matched an unregistered dependence")
	}
	if _, ok := e.findDepByVM(VMAddr{DCT: 3, Idx: 1}); ok {
		t.Fatal("matched a nonexistent dependence")
	}
}

func TestDCTPartitioningStable(t *testing.T) {
	p, err := New(Config{NumDCT: 4})
	if err != nil {
		t.Fatal(err)
	}
	for addr := uint64(0); addr < 4096; addr += 37 {
		a := p.dctOf(addr)
		b := p.dctOf(addr)
		if a != b {
			t.Fatal("dctOf not deterministic")
		}
		if a < 0 || a >= 4 {
			t.Fatalf("dctOf out of range: %d", a)
		}
	}
	// Reasonable spread across instances.
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		counts[p.dctOf(uint64(i)*131072+0x10000000)]++
	}
	for i, c := range counts {
		if c < 100 {
			t.Fatalf("DCT %d got only %d of 1000 addresses", i, c)
		}
	}
}
