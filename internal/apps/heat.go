package apps

import (
	"fmt"

	"repro/internal/trace"
)

// TraceResult bundles a generated trace with generator metadata.
type TraceResult struct {
	Trace *trace.Trace
	// KernelCounts maps kernel name -> number of tasks, e.g.
	// {"potrf": 8, "trsm": 28, ...}.
	KernelCounts map[string]int
}

// genHeat generates one sweep of the blocked Gauss-Seidel heat solver
// (BAR "heat" with the gs kernel): the matrix is decomposed into B x B
// blocks; the task updating block (i,j) reads its four neighbours and
// updates itself in place:
//
//	#pragma omp task inout(A[i][j]) in(A[i-1][j]) in(A[i+1][j]) \
//	                 in(A[i][j-1]) in(A[i][j+1])
//
// Boundary blocks reference the halo ring, so every task carries exactly
// 5 dependences as in Table I. The in-place update creates the diagonal
// wavefront: (i,j) RAW-depends on (i-1,j) and (i,j-1) from the current
// sweep and WAR-feeds (i+1,j) and (i,j+1).
func genHeat(problem, block int) (*TraceResult, error) {
	if err := checkBlocking(problem, block); err != nil {
		return nil, err
	}
	b := problem / block
	blockBytes := uint64(block) * uint64(block) * 8
	al := newAllocator(0x10000000)
	// (B+2)^2 grid: ring of halo blocks around the B x B interior.
	g := al.grid(b+2, b+2, blockBytes)

	tr := &trace.Trace{Name: fmt.Sprintf("heat-%d-%d", problem, block)}
	var weights []float64
	for i := 1; i <= b; i++ {
		for j := 1; j <= b; j++ {
			id := uint32(len(tr.Tasks))
			tr.Tasks = append(tr.Tasks, trace.Task{
				ID:   id,
				Kind: tr.KindID("gs"),
				Deps: []trace.Dep{
					{Addr: g[i][j], Dir: trace.InOut},
					{Addr: g[i-1][j], Dir: trace.In},
					{Addr: g[i+1][j], Dir: trace.In},
					{Addr: g[i][j-1], Dir: trace.In},
					{Addr: g[i][j+1], Dir: trace.In},
				},
			})
			// The stencil does identical work per block; the small jitter
			// models cache effects seen in real instrumented traces.
			weights = append(weights, float64(jitter(1000, uint64(id)+0xBEEF, 10)))
		}
	}
	durs, refSeq := scaleDurations(Heat, block, weights)
	for i := range tr.Tasks {
		tr.Tasks[i].Duration = durs[i]
	}
	tr.RefSeqCycles = refSeq
	return &TraceResult{Trace: tr, KernelCounts: map[string]int{"gs": len(tr.Tasks)}}, nil
}

func checkBlocking(problem, block int) error {
	if problem <= 0 || block <= 0 {
		return fmt.Errorf("apps: non-positive sizes %d/%d", problem, block)
	}
	if problem%block != 0 {
		return fmt.Errorf("apps: block size %d does not divide problem size %d", block, problem)
	}
	if problem/block < 2 {
		return fmt.Errorf("apps: need at least 2 blocks, got %d", problem/block)
	}
	return nil
}
