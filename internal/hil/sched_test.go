package hil

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/sched"
	"repro/internal/synth"
	"repro/internal/trace"
)

// schedTestTraces returns the workloads the grant-determinism suite
// runs: a kinded real app (heat's gs kernel, so affinity and locality
// have a kind to bind to) and a synthetic capacity case (unkinded, deep
// ready queues).
func schedTestTraces(t *testing.T) []*trace.Trace {
	t.Helper()
	heat, err := apps.Generate(apps.Heat, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := synth.Case(2)
	if err != nil {
		t.Fatal(err)
	}
	return []*trace.Trace{heat.Trace, c2}
}

func mustClasses(t *testing.T, spec string) sched.Classes {
	t.Helper()
	c, err := sched.Parse(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	return c
}

// sameSchedule asserts two results are byte-for-byte the same schedule:
// identical start/finish arrays and identical grant (start) order.
func sameSchedule(t *testing.T, what string, a, b *Result) {
	t.Helper()
	if a.Makespan != b.Makespan {
		t.Errorf("%s: makespan %d vs %d", what, a.Makespan, b.Makespan)
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] || a.Finish[i] != b.Finish[i] {
			t.Fatalf("%s: task %d scheduled [%d,%d] vs [%d,%d]",
				what, i, a.Start[i], a.Finish[i], b.Start[i], b.Finish[i])
		}
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("%s: grant %d went to task %d vs task %d", what, i, a.Order[i], b.Order[i])
		}
	}
}

// TestPoolPathMatchesLegacyFIFO: a single uniform class with stealing
// on is semantically identical to the homogeneous FIFO baseline (one
// class means one queue and no victims), but it routes every grant
// through the sched.Pool path instead of the legacy lowest-index scan.
// The two paths must agree byte-for-byte, on both loops — the
// regression net for the pluggable scheduling refactor.
func TestPoolPathMatchesLegacyFIFO(t *testing.T) {
	for _, tr := range schedTestTraces(t) {
		for _, fast := range []bool{true, false} {
			legacy := DefaultConfig()
			legacy.FastForward = fast
			pool := legacy
			pool.Workers = 0
			pool.Classes = mustClasses(t, "12xcore")
			pool.Steal = true // non-trivial plan: forces the pool path

			rl := mustRun(t, tr, legacy)
			rp := mustRun(t, tr, pool)
			verifyLegal(t, tr, rp)
			sameSchedule(t, tr.Name, rl, rp)
		}
	}
}

// TestGrantDeterminismBothLoops runs every grant policy x steal
// combination on a heterogeneous platform and asserts (a) the schedule
// is legal, (b) the event-driven fast path and the cycle-stepped
// reference loop produce byte-identical schedules, and (c) repeating a
// run reproduces it exactly — grants depend only on the trace and the
// config, never on map order or allocation state.
func TestGrantDeterminismBothLoops(t *testing.T) {
	policies := []sched.Policy{sched.FIFO, sched.LIFO, sched.Priority, sched.Locality}
	for _, tr := range schedTestTraces(t) {
		for _, pol := range policies {
			for _, steal := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.Workers = 0
				cfg.Classes = mustClasses(t, "6xfast+4xslow:2.0+2xmid:1.5")
				cfg.Sched = pol
				cfg.Steal = steal

				cfg.FastForward = true
				fast := mustRun(t, tr, cfg)
				verifyLegal(t, tr, fast)
				again := mustRun(t, tr, cfg)
				cfg.FastForward = false
				ref := mustRun(t, tr, cfg)

				what := tr.Name + "/" + pol.String()
				if steal {
					what += "+steal"
				}
				sameSchedule(t, what+" (rerun)", fast, again)
				sameSchedule(t, what+" (fast vs ref)", fast, ref)
			}
		}
	}
}

// TestHeteroConfigValidation pins the typed configuration errors of the
// scheduling layer at the hil level: Workers and Classes are mutually
// exclusive, and a class list whose affinities cover none of a trace's
// kinds is rejected instead of wedging.
func TestHeteroConfigValidation(t *testing.T) {
	tr, _ := synth.Case(1)

	both := DefaultConfig() // Workers stays 12
	both.Classes = mustClasses(t, "4xfast+4xslow:2.0")
	if _, err := Run(tr, both); err == nil || !strings.Contains(err.Error(), "both Workers") {
		t.Fatalf("Workers+Classes accepted: %v", err)
	}

	// case1 tasks are unkinded; an affinity-only platform can run none
	// of them.
	uncovered := DefaultConfig()
	uncovered.Workers = 0
	uncovered.Classes = mustClasses(t, "4xa@ghost_kind")
	if _, err := Run(tr, uncovered); err == nil {
		t.Fatal("affinity classes with no eligible tasks accepted")
	}
}

// TestHeteroSlowClassStretch: making every worker slower must stretch
// the makespan, and a platform with some fast workers must beat the
// all-slow one — the basic sanity of per-class service-time scaling.
func TestHeteroSlowClassStretch(t *testing.T) {
	res, err := apps.Generate(apps.Heat, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	run := func(spec string) uint64 {
		cfg := DefaultConfig()
		cfg.Workers = 0
		cfg.Classes = mustClasses(t, spec)
		return mustRun(t, res.Trace, cfg).Makespan
	}
	base := run("12xcore")
	mixed := run("6xfast+6xslow:2.0")
	slow := run("12xslow:2.0")
	if !(base < mixed && mixed < slow) {
		t.Fatalf("makespans not ordered: uniform %d, mixed %d, all-slow %d", base, mixed, slow)
	}
}
