package experiments

import (
	"fmt"
	"math"

	"repro/internal/asciiplot"
	"repro/internal/patterns"
	"repro/internal/sim"
)

func init() {
	Register("hetero-scaling", HeteroScaling)
}

// heteroMixes are the worker-class declarations the hetero-scaling
// sweep evaluates, all with 12 workers so the lanes are comparable to
// the paper's homogeneous platform: the baseline itself, two fast/slow
// splits of increasing imbalance, and a mix with a 4x-fast accelerator
// class that only runs the kinds it has an affinity for (pattern tasks
// are kinded by family, so the accel class sits idle unless the family
// matches — the cost of specialization the locality policy and stealing
// then have to work around).
var heteroMixes = []string{
	"12xbase",
	"8xfast+4xslow:2.0",
	"4xfast+8xslow:3.0",
	"7xbase+4xslow:2.0+1xaccel:0.25@stencil_2d,fft",
}

// heteroPolicies are the grant-policy lanes of the sweep.
var heteroPolicies = []string{"fifo", "priority", "locality"}

// heteroFamilies are the pattern families of the sweep: a local 1-D
// stencil (long chains, little slack), the 2-D stencil and fft (the
// kinds the accel mix is affine to) and the reduction tree (shrinking
// parallelism, where granting the wrong class hurts most).
var heteroFamilies = []string{"stencil_1d", "stencil_2d", "fft", "tree"}

// HeteroScalingData executes the hetero-scaling sweep: every class mix
// x grant policy x steal lane over the pattern families on picos-hw,
// each cell normalized against the class-weighted perfect roofline for
// the same mix (critical paths weighted by the best eligible class, so
// the bound is achievable on that platform — every lane must come out
// at SpeedupVsPerfect <= 1).
func HeteroScalingData(opt Options) ([]CapacityCell, error) {
	mixes := heteroMixes
	fams := heteroFamilies
	policies := heteroPolicies
	steals := []bool{false, true}
	if opt.Quick {
		mixes = []string{mixes[1], mixes[3]}
		// The quick pattern sizes are not powers of two, so fft is out;
		// stencil_2d keeps the accel mix's affinity lane meaningful.
		fams = []string{"stencil_1d", "stencil_2d"}
	}

	type point struct {
		family, mix, policy string
		steal               bool
		roofline            bool
	}
	var pts []point
	var specs []sim.Spec
	for _, f := range fams {
		for _, m := range mixes {
			for _, pol := range policies {
				for _, st := range steals {
					pts = append(pts, point{f, m, pol, st, false})
					specs = append(specs, sim.Spec{
						Engine:        "picos-hw",
						Workload:      capacityPattern(f, patterns.DefaultLayout, opt),
						WorkerClasses: m,
						Sched:         pol,
						Steal:         st,
					})
				}
			}
		}
	}
	// Class-weighted perfect roofline: one run per family x mix (policy-
	// and steal-blind — the oracle already grants each task its best
	// eligible class).
	roofIdx := make(map[[2]string]int, len(fams)*len(mixes))
	for _, f := range fams {
		for _, m := range mixes {
			roofIdx[[2]string{f, m}] = len(specs)
			pts = append(pts, point{family: f, mix: m, roofline: true})
			specs = append(specs, sim.Spec{
				Engine:        "perfect",
				Workload:      capacityPattern(f, patterns.DefaultLayout, opt),
				WorkerClasses: m,
			})
		}
	}

	results, err := sweep(opt, specs)
	if err != nil {
		return nil, err
	}

	cells := make([]CapacityCell, 0, len(pts))
	for i, pt := range pts {
		if pt.roofline {
			continue
		}
		res := results[i]
		cell := CapacityCell{
			Family:   pt.family,
			Workload: specs[i].Workload,
			Engine:   "picos-hw",
			Design:   "p8way",
			Layout:   patterns.DefaultLayout,
			Classes:  pt.mix,
			Sched:    pt.policy,
			Steal:    pt.steal,
			Wedged:   res.Wedged,
			WedgedAt: res.WedgedAt,
			Makespan: res.Makespan,
			Speedup:  res.Speedup,
		}
		if st := res.Stats; st != nil {
			cell.DMConflicts = st.DMConflicts
			cell.VMStallEvents = st.VMStallEvents
			cell.DMConflictStallCycles = st.DMConflictStallCycles
			cell.VMStallCycles = st.VMStallCycles
		}
		if roof := results[roofIdx[[2]string{pt.family, pt.mix}]]; !res.Wedged && roof.Speedup > 0 {
			cell.SpeedupVsPerfect = res.Speedup / roof.Speedup
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// heteroLane renders one policy x steal combination as a column label.
func heteroLane(policy string, steal bool) string {
	if steal {
		return policy + "+steal"
	}
	return policy
}

// HeteroScalingTables renders already-computed hetero cells as one
// table per class mix: rows = families, columns = policy x steal lanes,
// cell = speedup-vs-weighted-perfect.
func HeteroScalingTables(cells []CapacityCell) []*Table {
	mixes := distinct(cells, nil, func(c CapacityCell) string { return c.Classes })
	fams := distinct(cells, nil, func(c CapacityCell) string { return c.Family })

	var lanes [][2]interface{}
	header := []string{"Family"}
	for _, pol := range heteroPolicies {
		for _, st := range []bool{false, true} {
			lanes = append(lanes, [2]interface{}{pol, st})
			header = append(header, heteroLane(pol, st))
		}
	}
	find := func(f, m, pol string, st bool) *CapacityCell {
		for i := range cells {
			c := &cells[i]
			if c.Family == f && c.Classes == m && c.Sched == pol && c.Steal == st {
				return c
			}
		}
		return nil
	}

	var tables []*Table
	for _, m := range mixes {
		t := &Table{
			Title:  fmt.Sprintf("Hetero scaling (%s, picos-hw, malloc layout): speedup vs class-weighted perfect roofline per grant policy", m),
			Header: header,
		}
		for _, f := range fams {
			row := []string{f}
			for _, lane := range lanes {
				c := find(f, m, lane[0].(string), lane[1].(bool))
				switch {
				case c == nil:
					row = append(row, "-")
				case c.Wedged:
					row = append(row, fmt.Sprintf("WEDGE@%d", c.WedgedAt))
				default:
					row = append(row, fmt.Sprintf("%.2f", c.SpeedupVsPerfect))
				}
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"roofline: zero-overhead list scheduler on the same class mix, critical path weighted by each task's best eligible class; 1.00 means the accelerator schedules as well as the oracle")
		tables = append(tables, t)
	}
	return tables
}

// HeteroScalingHeatmaps renders one family x lane heatmap per class
// mix, speedup vs the class-weighted perfect roofline.
func HeteroScalingHeatmaps(cells []CapacityCell) []*asciiplot.Heatmap {
	mixes := distinct(cells, nil, func(c CapacityCell) string { return c.Classes })
	fams := distinct(cells, nil, func(c CapacityCell) string { return c.Family })

	var xlabels []string
	for _, pol := range heteroPolicies {
		for _, st := range []bool{false, true} {
			xlabels = append(xlabels, heteroLane(pol, st))
		}
	}
	var maps []*asciiplot.Heatmap
	for _, m := range mixes {
		hm := &asciiplot.Heatmap{
			Title:   fmt.Sprintf("hetero scaling: speedup vs weighted perfect (%s, picos-hw)", m),
			XLabels: xlabels,
			YLabels: fams,
			Missing: "XX",
		}
		for _, f := range fams {
			var row []float64
			for _, pol := range heteroPolicies {
				for _, st := range []bool{false, true} {
					v := math.NaN()
					for _, c := range cells {
						if c.Family == f && c.Classes == m && c.Sched == pol && c.Steal == st && !c.Wedged {
							v = c.SpeedupVsPerfect
						}
					}
					row = append(row, v)
				}
			}
			hm.Cells = append(hm.Cells, row)
		}
		maps = append(maps, hm)
	}
	return maps
}

// HeteroScaling is the registry entry: the sweep as one table per class
// mix.
func HeteroScaling(opt Options) ([]*Table, error) {
	cells, err := HeteroScalingData(opt)
	if err != nil {
		return nil, err
	}
	return HeteroScalingTables(cells), nil
}
