package apps

import (
	"fmt"

	"repro/internal/trace"
)

// genH264 generates the task structure of the StarBench H264dec decoder
// on a 10-frame HD stream (the paper's pedestrian_area.h264 input). The
// decoder is modelled as its two task-parallel stages over a grid of
// macroblock groups (the paper's "block size" 8/4/2/1 is the grouping
// factor):
//
//	decode(f,x,y):  out(dec[f][x][y])
//	                in(dec[f][x-1][y])        left neighbour (intra pred)
//	                in(dec[f][x][y-1])        up
//	                in(dec[f][x+1][y-1])      up-right (wavefront)
//	                in(dbl[f-1][x][y])        motion compensation ref
//	                in(dbl[f-1][x+1][y])      motion range spill
//	deblock(f,x,y): out(dbl[f][x][y])
//	                in(dec[f][x][y])
//	                in(dbl[f][x-1][y]) in(dbl[f][x][y-1])
//
// which yields 2-6 dependences per task as in Table I, the classic 2D
// wavefront inside a frame, and a pipeline across frames through the
// deblocked reference. The HD frame is a 120x58 grid of macroblocks
// (126960 bytes of MB descriptors per frame in the StarBench trace);
// grouping by 8/4/2/1 gives task counts within ~10% of Table I
// (2659/9306/35894/139934) — the exact counts depend on the H.264 slice
// layout of the input video, which we do not have (see DESIGN.md).
func genH264(frames, group int) (*TraceResult, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("apps: h264dec needs at least 1 frame, got %d", frames)
	}
	switch group {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("apps: h264dec macroblock grouping must be 1, 2, 4 or 8, got %d", group)
	}
	const mbW, mbH = 120, 58 // HD frame in macroblocks
	w := (mbW + group - 1) / group
	h := (mbH + group - 1) / group

	// One descriptor per macroblock group per stage. 64 bytes per MB, so
	// a group descriptor covers group^2 MBs.
	groupBytes := uint64(group) * uint64(group) * 64
	al := newAllocator(0x50000000)
	dec := make([][][]uint64, frames)
	dbl := make([][][]uint64, frames)
	hdr := make([]uint64, frames) // per-frame parameter set (read-only)
	for f := 0; f < frames; f++ {
		hdr[f] = al.block(256)
		decf := al.grid(h, w, groupBytes)
		dblf := al.grid(h, w, groupBytes)
		dec[f], dbl[f] = decf, dblf
	}

	tr := &trace.Trace{Name: fmt.Sprintf("h264dec-%df-%d", frames, group)}
	var weights []float64
	counts := map[string]int{}
	add := func(kernel string, w float64, deps []trace.Dep) {
		id := uint32(len(tr.Tasks))
		tr.Tasks = append(tr.Tasks, trace.Task{ID: id, Deps: deps, Kind: tr.KindID(kernel)})
		weights = append(weights, float64(jitter(uint64(w*1000), uint64(id)+0x8264, 25)))
		counts[kernel]++
	}

	for f := 0; f < frames; f++ {
		// Decode wavefront.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				deps := []trace.Dep{{Addr: dec[f][y][x], Dir: trace.Out}}
				if x == 0 && y == 0 {
					// The first macroblock of a frame parses the slice
					// header, so it reads the frame parameter set; this
					// keeps the minimum at 2 deps as Table I reports.
					deps = append(deps, trace.Dep{Addr: hdr[f], Dir: trace.In})
				}
				if x > 0 {
					deps = append(deps, trace.Dep{Addr: dec[f][y][x-1], Dir: trace.In})
				}
				if y > 0 {
					deps = append(deps, trace.Dep{Addr: dec[f][y-1][x], Dir: trace.In})
					if x+1 < w {
						deps = append(deps, trace.Dep{Addr: dec[f][y-1][x+1], Dir: trace.In})
					}
				}
				if f > 0 {
					deps = append(deps, trace.Dep{Addr: dbl[f-1][y][x], Dir: trace.In})
					if x+1 < w {
						deps = append(deps, trace.Dep{Addr: dbl[f-1][y][x+1], Dir: trace.In})
					}
				}
				add("decode", 1.4, deps)
			}
		}
		// Deblock filter, raster order behind the decode wavefront.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				deps := []trace.Dep{
					{Addr: dbl[f][y][x], Dir: trace.Out},
					{Addr: dec[f][y][x], Dir: trace.In},
				}
				if x > 0 {
					deps = append(deps, trace.Dep{Addr: dbl[f][y][x-1], Dir: trace.In})
				}
				if y > 0 {
					deps = append(deps, trace.Dep{Addr: dbl[f][y-1][x], Dir: trace.In})
				}
				add("deblock", 0.6, deps)
			}
		}
	}

	durs, refSeq := scaleDurations(H264Dec, group, weights)
	for i := range tr.Tasks {
		tr.Tasks[i].Duration = durs[i]
	}
	tr.RefSeqCycles = refSeq
	return &TraceResult{Trace: tr, KernelCounts: counts}, nil
}
