package apps

import (
	"fmt"

	"repro/internal/trace"
)

// genLu generates the blocked LU factorization of the BAR "lu" benchmark.
// The matrix is partitioned into B column panels; step k factors panel k
// and updates every panel to its right:
//
//	diag(k):   #pragma omp task inout(P[k]) in(P[k-1])   (in(desc) for k=0)
//	upd(k,j):  #pragma omp task in(P[k]) inout(P[j])     (j = k+1..B-1)
//
// Every task carries exactly 2 dependences, matching Table I, and the
// task count is B(B+1)/2 (36/136/528/2080 for 2048 over 256/128/64/32).
//
// The update tasks of step k are all consumers of panel k. The Picos
// prototype wakes a consumer chain starting from the LAST consumer
// (Section III-D), so with the natural creation order (j ascending) the
// critical-path task upd(k,k+1) — the producer of panel k+1 that diag(k+1)
// waits for — is woken last. That is the corner case of Section V-A.
// With modified=true (the paper's "MLu"), updates are created in
// descending j order, so upd(k,k+1) is the last consumer and is woken
// first, restoring near-roofline behaviour (Figure 9, left).
func genLu(problem, block int, modified bool) (*TraceResult, error) {
	if err := checkBlocking(problem, block); err != nil {
		return nil, err
	}
	b := problem / block
	panelBytes := uint64(problem) * uint64(block) * 8 // one column panel
	al := newAllocator(0x20000000)
	desc := al.block(64) // matrix descriptor, read by the first diag
	panels := make([]uint64, b)
	for i := range panels {
		panels[i] = al.block(panelBytes)
	}

	name := "lu"
	app := Lu
	if modified {
		name = "mlu"
		app = MLu
	}
	tr := &trace.Trace{Name: fmt.Sprintf("%s-%d-%d", name, problem, block)}
	var weights []float64
	counts := map[string]int{}

	add := func(kernel string, w float64, deps ...trace.Dep) {
		id := uint32(len(tr.Tasks))
		tr.Tasks = append(tr.Tasks, trace.Task{ID: id, Deps: deps, Kind: tr.KindID(kernel)})
		weights = append(weights, float64(jitter(uint64(w*1000), uint64(id)+0xFACE, 10)))
		counts[kernel]++
	}

	for k := 0; k < b; k++ {
		prev := desc
		if k > 0 {
			prev = panels[k-1]
		}
		// diag: factor panel k (lu0 on the diagonal block + panel ops);
		// ~1/3 the flops of a full panel update.
		add("diag", 1.0/3,
			trace.Dep{Addr: panels[k], Dir: trace.InOut},
			trace.Dep{Addr: prev, Dir: trace.In},
		)
		if modified {
			for j := b - 1; j > k; j-- {
				add("upd", 1.0,
					trace.Dep{Addr: panels[k], Dir: trace.In},
					trace.Dep{Addr: panels[j], Dir: trace.InOut},
				)
			}
		} else {
			for j := k + 1; j < b; j++ {
				add("upd", 1.0,
					trace.Dep{Addr: panels[k], Dir: trace.In},
					trace.Dep{Addr: panels[j], Dir: trace.InOut},
				)
			}
		}
	}

	durs, refSeq := scaleDurations(app, block, weights)
	for i := range tr.Tasks {
		tr.Tasks[i].Duration = durs[i]
	}
	tr.RefSeqCycles = refSeq
	return &TraceResult{Trace: tr, KernelCounts: counts}, nil
}
