package sched

// Small hand-rolled min-heaps for worker bookkeeping, factored out of
// the HIL runner so every engine shares one implementation.
// container/heap would box every element through an interface; these
// keep dispatch and retirement allocation-free on warm runs.

// IdleHeap is a min-heap of worker indices: the idle-worker freelist,
// popping the lowest index first to match the reference loop's linear
// dispatch scan.
type IdleHeap []int

// Push adds a worker index.
func (h *IdleHeap) Push(v int) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// Pop removes and returns the lowest worker index.
func (h *IdleHeap) Pop() int {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && s[right] < s[left] {
			least = right
		}
		if s[i] <= s[least] {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// Due is one busy worker: the cycle its task completes and its index.
type Due struct {
	Until uint64
	Idx   int
}

func (a Due) less(b Due) bool {
	if a.Until != b.Until {
		return a.Until < b.Until
	}
	return a.Idx < b.Idx
}

// DueHeap is a min-heap of busy workers ordered by (Until, Idx): the
// completion order per-cycle stepping produces (earlier finish cycles
// first, worker-index order within a cycle). With heterogeneous
// classes, Until already carries the class-scaled duration, so every
// fast-forward horizon derived from the heap head stays exact.
type DueHeap []Due

// Push adds a busy worker.
func (h *DueHeap) Push(v Due) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].less(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// Pop removes and returns the earliest-due worker.
func (h *DueHeap) Pop() Due {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && s[right].less(s[left]) {
			least = right
		}
		if !s[least].less(s[i]) {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}
