package patterns

import "testing"

// FuzzParsePattern drives arbitrary strings through the workload
// grammar: whatever Parse accepts must round-trip through Spec() and
// (size permitting) build a trace that passes validation — the contract
// BuildWorkload relies on.
func FuzzParsePattern(f *testing.F) {
	f.Add("stencil_1d?width=64&steps=100&len=1000")
	f.Add("random_nearest?k=5&seed=9&jitter=25")
	f.Add("all_to_all?layout=aligned&fields=1")
	f.Add("fft?width=8&steps=4")
	f.Add("tree")
	f.Add("dom?width=1&steps=1")
	f.Add("nosuch?width=2")
	f.Add("stencil_1d?width=1&width=2")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		q, err := Parse(p.Spec())
		if err != nil {
			t.Fatalf("Spec() of accepted params %+v does not re-parse: %v", p, err)
		}
		if p != q {
			t.Fatalf("round trip drifted: %+v != %+v", p, q)
		}
		if p.Width*p.Steps > 4096 {
			return // keep the fuzz iteration cheap
		}
		tr, err := Build(p)
		if err != nil {
			t.Fatalf("accepted params %+v failed to build: %v", p, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("built trace invalid for %+v: %v", p, err)
		}
	})
}
