package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the repository's byte-identical-results
// guarantee on everything under internal/: the differential equivalence
// suite, the golden fidelity report and the committed benchmark
// baselines are all byte-compared, so a single nondeterministic source
// anywhere in the model or its renderers silently invalidates them.
//
// Two rules:
//
//  1. No nondeterministic source in non-test internal code: wall-clock
//     reads (time.Now/Since/Until), process-seeded randomness (math/rand,
//     math/rand/v2, crypto/rand), environment reads (os.Getenv and
//     friends) and process identity (os.Getpid — the classic ad-hoc
//     seed) are forbidden. internal/detrand — the shared splitmix64
//     hash — is the only sanctioned randomness. This is what keeps
//     internal/faults honest: every fault draw (drop lotteries, delay
//     jitter) must come from the plan's seeded detrand stream, so a
//     fault plan replays the same perturbation cycle-for-cycle on both
//     simulation loops.
//
//  2. No output in map order: a `for ... range m` over a map whose body
//     emits (writes to an io.Writer, a strings.Builder, appends rendered
//     values) produces a different byte stream every run. The sanctioned
//     idiom is collect-keys-then-sort: a map-range body that only
//     appends the key variable to a slice is recognized as the first
//     half of that idiom and left alone.
var Determinism = &Analyzer{
	Name:    "determinism",
	Doc:     "forbid wall-clock, ambient randomness, env reads and map-ordered output in internal packages",
	Applies: appliesInternalNonDetrand,
	Run:     runDeterminism,
}

// appliesInternalNonDetrand scopes the analyzer to internal packages,
// excluding internal/detrand (the sanctioned randomness implementation
// itself).
func appliesInternalNonDetrand(p *Package) bool {
	if !strings.Contains(p.Path+"/", "/internal/") {
		return false
	}
	return !strings.HasSuffix(p.Path, "/detrand")
}

// forbiddenImports maps import paths to the reason they are banned.
var forbiddenImports = map[string]string{
	"math/rand":    "process-seeded randomness; use internal/detrand (splitmix64) so runs stay byte-identical",
	"math/rand/v2": "process-seeded randomness; use internal/detrand (splitmix64) so runs stay byte-identical",
	"crypto/rand":  "nondeterministic randomness; use internal/detrand (splitmix64) so runs stay byte-identical",
}

// forbiddenCalls maps package path -> function names whose call sites
// leak nondeterminism into results.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
		"Hostname":  "host-dependent value",
		"Getpid":    "process-dependent value",
		"Getppid":   "process-dependent value",
	},
}

// emittingMethods are method names whose call inside a map-range body
// means "this loop renders output in map order".
var emittingMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, im := range file.Imports {
			path := strings.Trim(im.Path.Value, `"`)
			if why, bad := forbiddenImports[path]; bad {
				pass.Reportf(im.Pos(), "import of %s: %s", path, why)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if pkgPath, name, ok := calleePkgFunc(info, node); ok {
					if names, found := forbiddenCalls[pkgPath]; found {
						if why, bad := names[name]; bad {
							pass.Reportf(node.Pos(), "%s.%s: %s leaks into results; internal code must be deterministic", pkgPath, name, why)
						}
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, node)
			}
			return true
		})
	}
}

// checkMapRange flags map-range loops that emit output in iteration
// order. The collect-keys idiom — a body that only appends the key
// variable to a slice, to be sorted afterwards — is allowed.
func checkMapRange(pass *Pass, loop *ast.RangeStmt) {
	info := pass.Pkg.Info
	t := info.TypeOf(loop.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	keyName := ""
	if id, ok := loop.Key.(*ast.Ident); ok {
		keyName = id.Name
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && emittingMethods[sel.Sel.Name] {
			pass.Reportf(call.Pos(), "emits output while ranging over a map: iteration order changes every run; collect keys, sort, then emit")
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) >= 2 {
			// append(keys, k) — the first half of the sorted-keys idiom —
			// is fine; appending anything else snapshots map order into a
			// slice that downstream code will treat as stable.
			if len(call.Args) == 2 && call.Ellipsis == token.NoPos {
				if arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok && keyName != "" && arg.Name == keyName {
					return true
				}
			}
			pass.Reportf(call.Pos(), "appends map-ordered values while ranging over a map; append only the key and sort, or sort a key slice first")
		}
		return true
	})
}
