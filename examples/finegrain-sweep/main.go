// Fine-grain sweep: the Figure 1 story end to end — as block size
// shrinks, available parallelism grows but per-task overhead grows too.
// The software-only runtime peaks and collapses; the Picos accelerator
// keeps climbing toward the roofline. One sim.Grid covers the whole
// {engine x blocksize} matrix, run in parallel.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

func main() {
	const workers = 12
	engines := []string{"nanos", "picos-full", "perfect"}
	blocks := []int{256, 128, 64, 32}

	grid := sim.Grid{
		Base:    sim.Spec{Workload: "sparselu", Workers: workers},
		Engines: engines,
		Blocks:  blocks,
	}
	items := sim.Sweep(grid.Expand(), 0)
	at := func(e, b int) *sim.Result {
		it := items[e*len(blocks)+b]
		if it.Err != "" {
			log.Fatalf("%s sparselu/%d: %s", engines[e], blocks[b], it.Err)
		}
		return it.Result
	}

	fmt.Printf("sparselu 2048, %d workers\n", workers)
	fmt.Printf("%9s  %8s  %12s  %14s  %8s\n",
		"blocksize", "#tasks", "nanos++", "picos(full)", "perfect")
	for bi, block := range blocks {
		tr, err := sim.BuildWorkload(sim.Spec{Workload: "sparselu", Block: block})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9d  %8d  %11.2fx  %13.2fx  %7.2fx\n",
			block, len(tr.Tasks), at(0, bi).Speedup, at(1, bi).Speedup, at(2, bi).Speedup)
	}
	fmt.Println()
	fmt.Println("expected shape (paper Fig. 1 + Fig. 11d): nanos++ rises, then the")
	fmt.Println("runtime overhead outweighs the new parallelism and speedup degrades;")
	fmt.Println("the hardware manager keeps scaling as granularity shrinks.")
}
