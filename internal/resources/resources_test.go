package resources

import (
	"math"
	"testing"

	"repro/internal/picos"
)

// TestTableIIIPercentages checks the model against the paper's Table III
// within tight tolerances (the model was calibrated against it; this is
// a regression net).
func TestTableIIIPercentages(t *testing.T) {
	check := func(name string, got, want, tolPts float64) {
		t.Helper()
		if math.Abs(got-want) > tolPts {
			t.Errorf("%s: %.2f%%, paper %.2f%% (tolerance %.1f points)", name, got, want, tolPts)
		}
	}
	check("TM BRAM", TM().BRAMPct(), 6, 1.5)
	check("VM8 BRAM", VM(picos.DM8Way).BRAMPct(), 1, 1.0)
	check("VM16 BRAM", VM(picos.DM16Way).BRAMPct(), 2, 1.0)
	check("DM8 BRAM", DM(picos.DM8Way).BRAMPct(), 9, 1.5)
	check("DM16 BRAM", DM(picos.DM16Way).BRAMPct(), 17, 1.5)
	check("DMP8 BRAM", DM(picos.DMP8Way).BRAMPct(), 10, 1.5)
	check("TRS BRAM", TRS().BRAMPct(), 6, 1.5)
	check("DCT BRAM", DCT(picos.DMP8Way).BRAMPct(), 11, 1.5)
	check("Full BRAM", FullPicos(picos.DMP8Way, 1, 1).BRAMPct(), 17, 2.0)

	check("DM8 LUT", DM(picos.DM8Way).LUTPct(), 1.1, 0.3)
	check("DM16 LUT", DM(picos.DM16Way).LUTPct(), 3.1, 0.5)
	check("DMP8 LUT", DM(picos.DMP8Way).LUTPct(), 1.7, 0.3)
	check("TRS LUT", TRS().LUTPct(), 1.6, 0.3)
	check("DCT LUT", DCT(picos.DMP8Way).LUTPct(), 2.9, 0.4)
	check("Glue LUT", Glue().LUTPct(), 1.3, 0.3)
	check("Full LUT", FullPicos(picos.DMP8Way, 1, 1).LUTPct(), 5.8, 0.6)

	check("TRS FF", TRS().FFPct(), 0.6, 0.2)
	check("DCT FF", DCT(picos.DMP8Way).FFPct(), 0.3, 0.2)
	check("Full FF", FullPicos(picos.DMP8Way, 1, 1).FFPct(), 1.2, 0.3)
}

// TestDesignRelationships checks the structural claims of Section V-B.
func TestDesignRelationships(t *testing.T) {
	dm8, dm16, dmp8 := DM(picos.DM8Way), DM(picos.DM16Way), DM(picos.DMP8Way)
	// "The size from DM 8way to 16way is doubled."
	if dm16.BRAM != 2*dm8.BRAM {
		t.Errorf("16way BRAM %d != 2x 8way %d", dm16.BRAM, dm8.BRAM)
	}
	// "Resource consumption of DM 8way and P+8way are very close."
	if dmp8.BRAM-dm8.BRAM > 3 {
		t.Errorf("P+8way BRAM %d much larger than 8way %d", dmp8.BRAM, dm8.BRAM)
	}
	// P+8way costs more LUTs than 8way (hash tables) but less than 16way.
	if !(dm8.LUTs < dmp8.LUTs && dmp8.LUTs < dm16.LUTs) {
		t.Errorf("LUT ordering broken: %d, %d, %d", dm8.LUTs, dmp8.LUTs, dm16.LUTs)
	}
}

// TestFullIsSumOfParts: the full accelerator must be the sum of its
// modules.
func TestFullIsSumOfParts(t *testing.T) {
	full := FullPicos(picos.DMP8Way, 1, 1)
	sum := TRS().Add(DCT(picos.DMP8Way)).Add(Glue())
	if full.LUTs != sum.LUTs || full.FFs != sum.FFs || full.BRAM != sum.BRAM {
		t.Errorf("full %+v != sum %+v", full, sum)
	}
}

// TestScalingToFutureArchitecture: the 4-instance design of Figure 3a
// must fit the XC7Z020's BRAM budget tightly or exceed it — the paper's
// motivation for starting with one instance on the Zedboard.
func TestScalingToFutureArchitecture(t *testing.T) {
	four := FullPicos(picos.DMP8Way, 4, 4)
	one := FullPicos(picos.DMP8Way, 1, 1)
	if four.BRAM <= 3*one.BRAM {
		t.Errorf("4-instance BRAM %d should be ~4x single %d", four.BRAM, one.BRAM)
	}
	if four.LUTs <= one.LUTs {
		t.Error("4-instance LUTs must exceed single instance")
	}
}

// Test32WayAblation: the trade-off quoted in Section V-B — a 32-way DM
// would double resources again.
func Test32WayAblation(t *testing.T) {
	// The model only has the three named designs; the 16->8 doubling and
	// the quoted 32-way projection follow from the bramBlocks geometry:
	// each doubling of ways doubles the tag/data banks.
	if got := bramBlocks(64, 84, 32) + bramBlocks(64, 84, 16); got != 2*(bramBlocks(64, 84, 16)+bramBlocks(64, 84, 8)) {
		t.Errorf("32-way projection %d is not double the 16-way geometry", got)
	}
}
