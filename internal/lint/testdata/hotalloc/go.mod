module hacheck

go 1.21
