// Package taskgraph performs software dependence analysis over a trace,
// producing the task dependence DAG under OmpSs semantics:
//
//   - a reader depends on the last writer of the address (RAW);
//   - a writer depends on the last writer (WAW) and on every reader since
//     that writer (WAR);
//   - inout is both a reader and a writer.
//
// This is exactly the analysis the Nanos++ runtime performs in software
// and the Picos DCT performs in hardware; here it serves three roles:
// the *oracle* against which both simulators are verified, the input to
// the Perfect Simulator (roofline), and the dependence engine of the
// software-only runtime model.
package taskgraph

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Graph is the task dependence DAG of a trace. Nodes are task indices in
// creation order.
type Graph struct {
	// N is the number of tasks.
	N int
	// Succ[i] lists the tasks that depend on task i (deduplicated,
	// ascending).
	Succ [][]int32
	// Pred[i] lists the tasks task i depends on (deduplicated, ascending).
	Pred [][]int32
	// Durations[i] is task i's execution time in cycles.
	Durations []uint64
}

// Build runs the dependence analysis over the trace.
func Build(tr *trace.Trace) *Graph {
	n := len(tr.Tasks)
	g := &Graph{
		N:         n,
		Succ:      make([][]int32, n),
		Pred:      make([][]int32, n),
		Durations: make([]uint64, n),
	}

	type addrState struct {
		lastWriter int32   // -1 if none
		readers    []int32 // readers since lastWriter
	}
	states := make(map[uint64]*addrState)

	// Collect raw edges; dedupe at the end.
	preds := make([][]int32, n)

	for i := range tr.Tasks {
		task := &tr.Tasks[i]
		g.Durations[i] = task.Duration
		ti := int32(i)
		for _, d := range task.Deps {
			st := states[d.Addr]
			if st == nil {
				st = &addrState{lastWriter: -1}
				states[d.Addr] = st
			}
			if d.Dir.Reads() && st.lastWriter >= 0 {
				preds[i] = append(preds[i], st.lastWriter) // RAW
			}
			if d.Dir.Writes() {
				if st.lastWriter >= 0 {
					preds[i] = append(preds[i], st.lastWriter) // WAW
				}
				for _, r := range st.readers { // WAR
					if r != ti {
						preds[i] = append(preds[i], r)
					}
				}
				st.lastWriter = ti
				st.readers = st.readers[:0]
			}
			if d.Dir.Reads() && !d.Dir.Writes() {
				st.readers = append(st.readers, ti)
			}
		}
	}

	for i := range preds {
		p := dedupe(preds[i])
		g.Pred[i] = p
		for _, from := range p {
			g.Succ[from] = append(g.Succ[from], int32(i))
		}
	}
	return g
}

func dedupe(xs []int32) []int32 {
	if len(xs) <= 1 {
		return xs
	}
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// NumEdges returns the number of (deduplicated) dependence edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, p := range g.Pred {
		n += len(p)
	}
	return n
}

// Roots returns the tasks with no predecessors (ready at time zero).
func (g *Graph) Roots() []int32 {
	var roots []int32
	for i := 0; i < g.N; i++ {
		if len(g.Pred[i]) == 0 {
			roots = append(roots, int32(i))
		}
	}
	return roots
}

// CriticalPath returns the length in cycles of the longest
// duration-weighted path through the DAG — the execution time with
// unlimited workers and zero overhead.
func (g *Graph) CriticalPath() uint64 {
	finish := make([]uint64, g.N)
	var cp uint64
	// Creation order is a topological order: every predecessor of task i
	// has index < i by construction.
	for i := 0; i < g.N; i++ {
		var start uint64
		for _, p := range g.Pred[i] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[i] = start + g.Durations[i]
		if finish[i] > cp {
			cp = finish[i]
		}
	}
	return cp
}

// BottomLevels returns, for each task, the duration-weighted length of
// the longest path from the task to any sink, the task's own duration
// included — the classic critical-path priority for list scheduling.
// Tasks deeper on the critical path get larger values.
func (g *Graph) BottomLevels() []uint64 {
	bl := make([]uint64, g.N)
	// Creation order is a topological order, so walking tasks backwards
	// visits every successor before its predecessors.
	for i := g.N - 1; i >= 0; i-- {
		var best uint64
		for _, s := range g.Succ[i] {
			if bl[s] > best {
				best = bl[s]
			}
		}
		bl[i] = best + g.Durations[i]
	}
	return bl
}

// MaxParallelism returns the maximum number of tasks simultaneously
// runnable under an ASAP (infinite workers) schedule, a measure of the
// "available parallelism" the paper's Figure 1 discusses.
func (g *Graph) MaxParallelism() int {
	type ev struct {
		t     uint64
		delta int
	}
	finish := make([]uint64, g.N)
	events := make([]ev, 0, 2*g.N)
	for i := 0; i < g.N; i++ {
		var start uint64
		for _, p := range g.Pred[i] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[i] = start + g.Durations[i]
		events = append(events, ev{start, 1}, ev{finish[i], -1})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return events[a].delta < events[b].delta // process ends before starts
	})
	cur, maxp := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > maxp {
			maxp = cur
		}
	}
	return maxp
}

// CheckSchedule verifies that a simulated schedule is legal: every task
// ran (finish > start >= 0) and no task started before all its DAG
// predecessors finished. start/finish are in cycles, indexed by task.
func (g *Graph) CheckSchedule(start, finish []uint64) error {
	if len(start) != g.N || len(finish) != g.N {
		return fmt.Errorf("taskgraph: schedule length %d/%d, want %d", len(start), len(finish), g.N)
	}
	for i := 0; i < g.N; i++ {
		if finish[i] < start[i] {
			return fmt.Errorf("taskgraph: task %d finishes (%d) before it starts (%d)", i, finish[i], start[i])
		}
		if finish[i] == start[i] && g.Durations[i] > 0 {
			return fmt.Errorf("taskgraph: task %d has zero scheduled time but duration %d", i, g.Durations[i])
		}
		for _, p := range g.Pred[i] {
			if start[i] < finish[p] {
				return fmt.Errorf("taskgraph: task %d started at %d before predecessor %d finished at %d",
					i, start[i], p, finish[p])
			}
		}
	}
	return nil
}

// Levels returns, for each task, the length of the longest predecessor
// chain (root = 0). Useful for rendering the dependence graphs of
// Figure 7.
func (g *Graph) Levels() []int {
	lv := make([]int, g.N)
	for i := 0; i < g.N; i++ {
		for _, p := range g.Pred[i] {
			if lv[p]+1 > lv[i] {
				lv[i] = lv[p] + 1
			}
		}
	}
	return lv
}

// Depth returns the number of levels in the DAG (longest chain, in tasks).
func (g *Graph) Depth() int {
	max := 0
	for _, l := range g.Levels() {
		if l+1 > max {
			max = l + 1
		}
	}
	return max
}
