package core

import (
	"testing"

	"repro/internal/hil"
)

func TestAppTraceAndGraph(t *testing.T) {
	tr, err := AppTrace(Cholesky, 2048, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 120 {
		t.Fatalf("cholesky-256 tasks = %d", len(tr.Tasks))
	}
	g := Graph(tr)
	if g.N != 120 || g.NumEdges() == 0 {
		t.Fatalf("graph N=%d edges=%d", g.N, g.NumEdges())
	}
	if _, err := AppTrace("bogus", 2048, 256); err == nil {
		t.Fatal("bogus app accepted")
	}
}

func TestSyntheticTrace(t *testing.T) {
	tr, err := SyntheticTrace(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 100 {
		t.Fatalf("case4 tasks = %d", len(tr.Tasks))
	}
	if _, err := SyntheticTrace(0); err == nil {
		t.Fatal("case 0 accepted")
	}
}

func TestThreeEnginesAgreeOnLegality(t *testing.T) {
	tr, err := AppTrace(Heat, 2048, 256)
	if err != nil {
		t.Fatal(err)
	}
	engines := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"picos-hw", func() (*Result, error) { return RunPicos(tr, PicosOptions{Workers: 6}) }},
		{"picos-full", func() (*Result, error) {
			return RunPicos(tr, PicosOptions{Workers: 6, Mode: hil.FullSystem, LIFO: true, NumTRS: 2, NumDCT: 2})
		}},
		{"nanos", func() (*Result, error) { return RunNanos(tr, 6) }},
		{"perfect", func() (*Result, error) { return RunPerfect(tr, 6) }},
	}
	var roofline float64
	for _, e := range engines {
		res, err := e.run()
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if err := Verify(tr, res); err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if res.Speedup <= 0 || res.Makespan == 0 {
			t.Fatalf("%s: degenerate result %+v", e.name, res)
		}
		if e.name == "perfect" {
			roofline = res.Speedup
		}
	}
	// Roofline bounds every engine.
	for _, e := range engines[:3] {
		res, _ := e.run()
		if res.Speedup > roofline*1.01 {
			t.Fatalf("%s speedup %.2f exceeds roofline %.2f", e.name, res.Speedup, roofline)
		}
	}
}

func TestRunPicosErrors(t *testing.T) {
	tr, _ := SyntheticTrace(1)
	if _, err := RunPicos(tr, PicosOptions{Workers: -1}); err == nil {
		// Workers <= 0 defaults to 12, so -1 is... rejected by hil.
		t.Log("negative workers defaulted")
	}
	if _, err := RunNanos(tr, 0); err == nil {
		t.Fatal("RunNanos with 0 workers accepted")
	}
	if _, err := RunPerfect(tr, 0); err == nil {
		t.Fatal("RunPerfect with 0 workers accepted")
	}
}
