package hil

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/picos"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// busMsgKind labels messages crossing the AXI link.
type busMsgKind uint8

const (
	busNew busMsgKind = iota
	busReady
	busFin
)

type busMsg struct {
	kind busMsgKind
	dup  bool             // axi:dup copy; the receiver discards it
	task uint32           // trace index (busNew)
	rt   picos.ReadyTask  // busReady
	h    picos.TaskHandle // busFin
}

// retryEntry is one dropped link message waiting for retransmission:
// it becomes eligible at cycle at; attempt counts the sends so far.
// The retransmission queue is FIFO — a due entry behind a later-due
// head waits its turn, like any other head-of-line stream.
type retryEntry struct {
	at      uint64
	attempt uint8
	msg     busMsg
}

// deliveryBatch is how many link messages one delivery node can carry.
// The link serializes sends, so same-stamp landings are rare (they need
// zero-occupancy custom timings); a small inline array keeps the common
// single-message node compact while still coalescing bursts.
const deliveryBatch = 4

// delivery is a batch of messages that have left the link and land at
// cycle at. Messages land in msgs order — push order, which is link
// grant order — so batching same-stamp landings into one node changes
// how the FIFO stores them, never the order they are processed.
type delivery struct {
	at   uint64
	n    uint8
	msgs [deliveryBatch]busMsg
}

// stampedTask is a created task available to the link from cycle at.
type stampedTask struct {
	at  uint64
	idx uint32
}

type runner struct {
	tr  *trace.Trace
	cfg Config
	p   *picos.Picos

	// Streaming ingestion state (see stream.go); src is nil on
	// materialized runs and every field below it is then dormant. When
	// src is set the runner fetches descriptors on demand, keeps at most
	// window of them live in the map, and records aggregate probes in
	// place of the per-task schedule arrays.
	src    trace.Source
	window int
	kinds  []string // kind table: tr.Kinds or src.Kinds()
	live   map[uint32]*trace.Task
	// fetched counts committed descriptors (the next task's required
	// ID); lookahead holds a peeked-but-uncommitted task; feedErr parks
	// a mid-stream validation or source error for the run loops.
	fetched     int
	srcDone     bool
	lookahead   trace.Task
	lookaheadOK bool
	feedErr     error
	// Aggregate probes for the streaming Result: running duration sum
	// (Baseline), max finish (Makespan), first/last start and start
	// count (FirstStart, ThrTask).
	aggDur       uint64
	aggMakespan  uint64
	aggFirst     uint64
	aggFirstSet  bool
	aggLastStart uint64
	aggStarted   int

	// workers holds the task each busy worker is executing, indexed by
	// worker; occupancy itself lives only in the heaps below, so there is
	// no second copy of busy-state to drift out of sync.
	workers []picos.ReadyTask
	// idleH is a min-heap of idle worker indices (lowest index
	// dispatches first, like the old linear scan); busyH is a min-heap
	// of busy workers keyed (until, idx). Together they replace the
	// all-worker scans in stepWorkers/dispatch/idleWorkers with O(log W)
	// updates at dispatch and finish. With heterogeneous classes the
	// until stamps already carry the class-scaled durations, so every
	// fast-forward horizon derived from the heap head stays exact.
	idleH sched.IdleHeap
	busyH sched.DueHeap

	// trivial marks the historical execution model (uniform workers,
	// FIFO grants, no stealing), which keeps the legacy bit-exact
	// dispatch path: ready tasks are pulled only when an idle worker
	// exists and granted lowest-index-first. Non-trivial plans instead
	// buffer every visible ready task in the pool (so policies see the
	// full candidate set) and pair workers and tasks through it; idleH
	// is unused and the pool tracks idle workers per class.
	trivial bool
	pool    sched.Pool[picos.TaskHandle]

	// ARM master state (FullSystem): next task to create and when the
	// master core is free again. In Full-system mode the master also
	// drives the AXI write for its own submissions, so the send occupies
	// both the master and the link (that coupling is what makes the
	// Full-system thrTask ~ create+submit+send, as in Table IV).
	masterNext int
	masterFree uint64
	// createdAhead counts FullSystem descriptors created but not yet
	// accepted by the accelerator's new-task queue (waiting for the
	// link, in flight, or parked after an ErrNewQFull rejection). The
	// master keeps creating while createdAhead < cfg.RunAhead — the
	// creation run-ahead window — and pauses, with the descriptor
	// pipeline full, once the window is exhausted.
	createdAhead int

	// feedNext is the HW-only/HW+comm preload cursor under a bounded
	// new-task queue: tasks [feedNext, len) have not been handed to the
	// accelerator yet and are submitted (HWOnly) as the queue drains.
	feedNext int
	// parkedNew holds tasks whose Submit was rejected with ErrNewQFull
	// at link delivery: the descriptor is parked, in arrival order, and
	// retried every evaluated cycle until the queue accepts it — a
	// rejected registration is never dropped.
	parkedNew queue.FIFO[uint32]

	pendingNew queue.FIFO[stampedTask]      // created tasks awaiting the link
	pendingFin queue.FIFO[picos.TaskHandle] // worker completions awaiting the link
	// deliveries holds messages in flight. Landing stamps are assigned
	// as busFree+Flight with busFree strictly increasing, so the FIFO is
	// ordered by `at` and its head is both the next delivery horizon and
	// the next message to land.
	deliveries queue.FIFO[delivery]

	// Ready tasks fetched over the link but not yet running: the fetch
	// reserves a worker (readyInFlight) so the link never over-fetches,
	// and landed tasks wait in readyBacklog until a worker is free.
	readyInFlight int
	readyBacklog  queue.FIFO[picos.ReadyTask]

	busFree  uint64
	busSetup bool // lazy one-time queue setup performed

	start  []uint64
	finish []uint64
	order  []uint32

	done         int
	lastProgress uint64

	// Fault-injection state, all dormant on fault-free runs. flt is the
	// platform-side injector (nil without axi/worker clauses); every use
	// below is nil-gated so the fault-free hot path is untouched.
	flt *faults.PlatformFaults
	// retryQ holds dropped link messages awaiting retransmission under
	// the retry recovery policy. retryNew counts the queued busNew
	// entries: task submission order is the program order the
	// dependence analysis relies on, so fresh new-task sends stall
	// behind an outstanding submission retransmission (head-of-line),
	// while ready grants and finish notifications — commutative across
	// tasks — may overtake it.
	retryQ   queue.FIFO[retryEntry]
	retryNew int
	// dead counts fail-stopped workers; lost/recovered/refused account
	// tasks that can no longer produce a completion (see accounted).
	dead       int
	lost       int
	recovered  int
	refused    int
	refusedIDs []uint32 // refused task IDs under avoid-deadlock-park
}

// reset prepares the runner for a materialized run, reusing every
// allocation a previous run left behind: the accelerator (picos.Reset),
// the worker heaps, the link queues and the in-flight buffers. Only the
// per-task schedule arrays are freshly allocated — they escape into the
// Result.
func (r *runner) reset(tr *trace.Trace, cfg Config) error {
	r.tr, r.src, r.window = tr, nil, 0
	return r.resetCommon(cfg)
}

// resetCommon is the mode-independent part of reset, shared by the
// materialized (reset) and streaming (resetStream) entry points; the
// caller has already set r.tr/r.src/r.window.
func (r *runner) resetCommon(cfg Config) error {
	if len(cfg.Classes) > 0 {
		if cfg.Workers != 0 {
			return fmt.Errorf("hil: both Workers (%d) and Classes (%q) set", cfg.Workers, cfg.Classes.String())
		}
		if err := cfg.Classes.Validate(); err != nil {
			return err
		}
		cfg.Workers = cfg.Classes.Workers()
	}
	if cfg.Workers <= 0 {
		return fmt.Errorf("hil: need at least 1 worker, got %d", cfg.Workers)
	}
	if cfg.Watchdog == 0 {
		cfg.Watchdog = 100_000_000
	}
	if cfg.Comm == (CommTiming{}) {
		cfg.Comm = DefaultCommTiming()
	}
	if cfg.Master == (MasterTiming{}) {
		cfg.Master = DefaultMasterTiming()
	}
	if cfg.RunAhead == 0 {
		cfg.RunAhead = DefaultRunAhead
	}
	if r.src == nil {
		if err := r.tr.Validate(); err != nil {
			return fmt.Errorf("hil: %w", err)
		}
		r.kinds = r.tr.Kinds
	} else {
		// Streaming tasks are validated one at a time as they arrive
		// (srcPeek); only the kind table exists up front.
		r.kinds = r.src.Kinds()
	}
	// Split the fault plan into its two injectors before the accelerator
	// is configured: the dct/trs clauses (plus the degrade knob) ride
	// inside picos.Config, the axi/worker clauses stay platform-side.
	// Both are nil on a fault-free run, which keeps every injection site
	// on its nil fast path and the reset allocation-free.
	if cfg.Picos.Faults == nil {
		cfg.Picos.Faults = cfg.Faults.PicosSide(cfg.Recovery)
	}
	r.flt = cfg.Faults.PlatformSide(cfg.Recovery)
	if r.p == nil {
		p, err := picos.New(cfg.Picos)
		if err != nil {
			return err
		}
		r.p = p
	} else if err := r.p.Reset(cfg.Picos); err != nil {
		return err
	}
	r.cfg = cfg

	if cap(r.workers) >= cfg.Workers {
		r.workers = r.workers[:cfg.Workers]
	} else {
		r.workers = make([]picos.ReadyTask, cfg.Workers)
	}
	for i := range r.workers {
		r.workers[i] = picos.ReadyTask{}
	}
	r.trivial = cfg.Classes.Uniform() && cfg.Sched == sched.FIFO && !cfg.Steal
	if r.trivial {
		if cap(r.idleH) >= cfg.Workers {
			r.idleH = r.idleH[:cfg.Workers]
		} else {
			r.idleH = make(sched.IdleHeap, cfg.Workers)
		}
		for i := range r.idleH {
			// Ascending indices are already a valid min-heap.
			r.idleH[i] = i
		}
	} else {
		r.idleH = r.idleH[:0]
		classes := cfg.Classes
		if len(classes) == 0 {
			classes = sched.Single(cfg.Workers)
		}
		present := make([]bool, len(r.kinds)+1)
		if r.src == nil {
			for i := range r.tr.Tasks {
				present[r.tr.Tasks[i].Kind] = true
			}
		} else {
			// A stream's kind usage is unknown up front: require the
			// class list to cover every declared kind, plus unkinded
			// tasks, conservatively.
			for i := range present {
				present[i] = true
			}
		}
		if err := classes.CheckCoverage(r.kinds, present); err != nil {
			return err
		}
		var prio []uint64
		if cfg.Sched == sched.Priority {
			// Streaming rejects the priority policy in resetStream, so
			// the whole graph is available here.
			prio = taskgraph.Build(r.tr).BottomLevels()
		}
		r.pool.Reset(classes, cfg.Sched, cfg.Steal, r.kinds, prio)
		for i := 0; i < cfg.Workers; i++ {
			r.pool.Park(i)
		}
	}
	r.busyH = r.busyH[:0]

	r.masterNext, r.masterFree = 0, 0
	r.createdAhead = 0
	r.feedNext = 0
	if r.src == nil {
		r.feedNext = len(r.tr.Tasks)
	}
	r.parkedNew.Reset()
	r.pendingNew.Reset()
	r.pendingFin.Reset()
	r.deliveries.Reset()
	r.readyInFlight = 0
	r.readyBacklog.Reset()
	r.busFree, r.busSetup = 0, false
	r.retryQ.Reset()
	r.retryNew = 0
	r.dead, r.lost, r.recovered, r.refused = 0, 0, 0, 0
	r.refusedIDs = nil

	if r.src != nil {
		if r.live == nil {
			r.live = make(map[uint32]*trace.Task, r.window)
		} else {
			clear(r.live)
		}
		r.fetched, r.srcDone, r.lookaheadOK, r.feedErr = 0, false, false, nil
		r.aggDur, r.aggMakespan, r.aggFirst, r.aggLastStart = 0, 0, 0, 0
		r.aggFirstSet, r.aggStarted = false, 0
		// No per-task schedule arrays: they are exactly the O(tasks)
		// state the window exists to avoid; the Result carries the
		// aggregate probes instead.
		r.start, r.finish, r.order = nil, nil, nil
	} else {
		n := len(r.tr.Tasks)
		r.start = make([]uint64, n)
		r.finish = make([]uint64, n)
		r.order = make([]uint32, 0, n)
	}
	r.done, r.lastProgress = 0, 0

	switch cfg.Mode {
	case HWOnly:
		if r.src != nil {
			// Streaming submits straight from the source in stepSubmits,
			// window-gated, starting at cycle 0.
			break
		}
		// Preload the trace. With a bounded new-task queue the submission
		// buffer fills; the rest feeds in from feedNext as it drains.
		r.feedNext = 0
		for i := range r.tr.Tasks {
			err := r.p.Submit(r.tr.Tasks[i].ID, r.tr.Tasks[i].Deps)
			if errors.Is(err, picos.ErrNewQFull) {
				break
			}
			if errors.Is(err, picos.ErrUnadmittable) {
				// Deadlock-avoidance admission refused the dependence
				// set at submit; account it and keep feeding.
				r.refuse(uint32(i))
				r.feedNext = i + 1
				continue
			}
			if err != nil {
				return err
			}
			r.feedNext = i + 1
		}
	case HWComm:
		if r.src != nil {
			// stepFeed hands tasks to the link as the window opens.
			break
		}
		for i := range r.tr.Tasks {
			r.pendingNew.Push(stampedTask{at: 0, idx: uint32(i)})
		}
	case FullSystem:
		// Tasks are created one by one by the master in stepMaster.
	default:
		return fmt.Errorf("hil: unknown mode %d", cfg.Mode)
	}
	return nil
}

// scrub drops the references a finished run handed out (the trace, the
// schedule arrays now owned by the Result) so a pooled runner does not
// retain them; the reusable scratch stays.
func (r *runner) scrub() {
	r.tr = nil
	r.src = nil
	r.kinds = nil
	r.feedErr = nil
	if r.live != nil {
		clear(r.live) // keep the map's capacity, drop its descriptors
	}
	r.start, r.finish, r.order = nil, nil, nil
}

// liveWork reports queued work that always makes progress by itself:
// link messages, fetched tasks and pending retransmissions.
// Backpressured submissions (see backpressured) are NOT included — they
// progress only while the accelerator's new-task queue has room.
func (r *runner) liveWork() bool {
	return r.pendingNew.Len() > 0 || r.pendingFin.Len() > 0 || r.deliveries.Len() > 0 ||
		r.readyBacklog.Len() > 0 || r.retryQ.Len() > 0
}

// accounted is the number of trace tasks that can no longer produce a
// completion event: finished, refused at admission (structurally or by
// degrade recovery inside the accelerator), or permanently lost to a
// fault. The run loops terminate on accounted, not done, so a faulted
// run with losses still drains instead of spinning forever.
func (r *runner) accounted() int {
	n := r.done + r.refused + r.lost
	if f := r.cfg.Picos.Faults; f != nil {
		n += int(f.Refused)
	}
	return n
}

// refuse accounts one admission refusal; under the parking policy the
// task ID is kept for the Result so the host can see exactly which
// descriptors to re-plan.
func (r *runner) refuse(idx uint32) {
	r.refused++
	if r.cfg.Picos.Admission == picos.AdmitAvoidDeadlockPark {
		// Task IDs equal trace indices (validated), so idx is the ID —
		// on both the materialized and the streaming path.
		r.refusedIDs = append(r.refusedIDs, idx)
	}
	r.retire(idx)
}

func (r *runner) pendingWork() bool {
	return r.liveWork() || r.backpressured()
}

// backpressured reports that tasks are waiting on new-task queue space:
// parked rejections, an unfinished materialized preload feed, or a
// window-open streaming HW-only feed. Their retry can only succeed
// after the GW pops the queue — an accelerator-internal event — so
// while this holds the fast path adds the accelerator's event horizon
// to its wake candidates. A streaming feed blocked on the *window* is
// deliberately not included: it resumes at a retirement, and every
// retirement cycle (worker finish, refusal, loss) is already a wake
// candidate.
func (r *runner) backpressured() bool {
	if r.parkedNew.Len() > 0 || r.feedPending() {
		return true
	}
	return r.src != nil && r.cfg.Mode == HWOnly && r.windowOpen() && r.srcHasNext()
}

// masterWindowOpen reports whether the FullSystem master may create the
// next task: the run-ahead window has room (cfg.RunAhead < 0 disables
// the bound).
func (r *runner) masterWindowOpen() bool {
	return r.cfg.RunAhead < 0 || r.createdAhead < r.cfg.RunAhead
}

// stepSubmits retries parked submissions and advances the preload feed
// while the accelerator's new-task queue has room. Every task submitted
// here was validated before the run, so only ErrNewQFull can come back.
//
//picos:hotpath
func (r *runner) stepSubmits(now uint64) {
	for r.p.NewQRoom() {
		idx, ok := r.parkedNew.Peek()
		if !ok {
			break
		}
		task := r.taskAt(idx)
		err := r.p.Submit(task.ID, task.Deps)
		if errors.Is(err, picos.ErrUnadmittable) {
			r.parkedNew.Pop()
			if r.cfg.Mode == FullSystem {
				r.createdAhead--
			}
			r.refuse(idx)
			r.lastProgress = now
			continue
		}
		if err != nil {
			return // queue refilled mid-loop; keep the descriptor parked
		}
		r.parkedNew.Pop()
		if r.cfg.Mode == FullSystem {
			r.createdAhead--
		}
		r.lastProgress = now
	}
	for r.parkedNew.Len() == 0 && r.feedPending() && r.p.NewQRoom() {
		task := &r.tr.Tasks[r.feedNext]
		err := r.p.Submit(task.ID, task.Deps)
		if errors.Is(err, picos.ErrUnadmittable) {
			r.refuse(uint32(r.feedNext))
			r.feedNext++
			r.lastProgress = now
			continue
		}
		if err != nil {
			return
		}
		r.feedNext++
		r.lastProgress = now
	}
	// Streaming HW-only feed: submit straight from the source while the
	// descriptor window and the new-task queue both have room. A task
	// becomes live at the successful (or refused) submit — an ErrNewQFull
	// rejection leaves it uncommitted in the lookahead, not parked.
	if r.src != nil && r.cfg.Mode == HWOnly {
		for r.parkedNew.Len() == 0 && r.windowOpen() && r.p.NewQRoom() {
			task, ok := r.srcPeek()
			if !ok {
				return
			}
			err := r.p.Submit(task.ID, task.Deps)
			if errors.Is(err, picos.ErrUnadmittable) {
				r.refuse(r.srcCommit())
				r.lastProgress = now
				continue
			}
			if err != nil {
				return
			}
			r.srcCommit()
			r.lastProgress = now
		}
	}
}

func (r *runner) run() (*Result, error) {
	if r.cfg.FastForward {
		return r.runFast()
	}
	return r.runRef()
}

// runRef is the cycle-stepped reference loop: the platform-side steps
// run every cycle and the accelerator is stepped one cycle at a time,
// except across stretches where everything is provably idle. It is the
// ground truth the event-driven fast path is differentially tested
// against.
func (r *runner) runRef() (*Result, error) {
	for r.tasksOutstanding() || !r.p.Idle() || r.pendingWork() {
		now := r.p.Now()
		if r.flt != nil {
			r.applyStops(now)
		}
		r.stepWorkers(now)
		r.stepDeliveries(now)
		r.stepFeed(now)
		r.stepSubmits(now)
		r.stepMaster(now)
		r.stepBus(now)
		r.dispatch(now)
		if r.feedErr != nil {
			return nil, r.feedErr
		}
		if r.tasksOutstanding() && r.wedged(now) {
			return r.wedgedResult(now), nil
		}
		if next, ok := r.quiescentUntil(now); ok && next > now+1 {
			r.p.StepTo(next)
		} else {
			r.p.Step()
		}
		if r.watchdogExpired() {
			return r.timedOutResult(), nil
		}
	}
	if r.feedErr != nil {
		return nil, r.feedErr
	}
	return r.result(), nil
}

// wedged proves a deadlock at the current cycle: no worker is running,
// no message is pending or in flight, the master has nothing left to
// create, no ready task is waiting, and the accelerator itself has no
// future event — stepping any number of cycles cannot change anything,
// yet tasks remain. (A conflict- or admission-stalled queue head does
// not count as a future event: only an external finish could release
// it, and there is none left.)
func (r *runner) wedged(now uint64) bool {
	if !r.p.Idle() {
		return false
	}
	// Link messages, pending retransmissions and in-flight deliveries
	// always make progress by themselves.
	if r.pendingNew.Len() > 0 || r.pendingFin.Len() > 0 || r.deliveries.Len() > 0 ||
		r.retryQ.Len() > 0 {
		return false
	}
	// Fetched or re-granted ready tasks are waiting work only while a
	// worker survives to take them: a fault plan that fail-stops every
	// worker leaves them provably stranded.
	alive := r.dead < r.cfg.Workers
	if alive && r.readyBacklog.Len() > 0 {
		return false
	}
	// Parked or unfed tasks can still progress only while the new-task
	// queue has room (stepSubmits ran this cycle, so room here means the
	// queue refused them for another reason — impossible — or they will
	// submit next cycle); with the queue full they are as dead as the
	// accelerator behind it.
	if r.backpressured() && r.p.NewQRoom() {
		return false
	}
	// A streaming HW+comm feed with window room and tasks left will hand
	// more work to the link next cycle. (A refusal retiring a parked
	// head this cycle can open the window after stepFeed already ran.)
	if r.src != nil && r.cfg.Mode == HWComm && r.windowOpen() && r.srcHasNext() {
		return false
	}
	if len(r.busyH) > 0 {
		return false
	}
	// Ready tasks buffered platform-side are waiting work: with every
	// kind's class coverage validated at reset, a grantable pairing (or
	// a busy worker that will free one) always exists among survivors.
	if alive && r.poolReady() > 0 {
		return false
	}
	// A master with tasks left to create is alive only while its
	// run-ahead window (and, streaming, the descriptor window) has room,
	// or it is still paying for the previous creation; a window pinned
	// full by a dead accelerator is not. With the descriptor window shut
	// the live tasks holding it are judged by the clauses above/below.
	if r.cfg.Mode == FullSystem && r.masterHasNext() &&
		((r.masterWindowOpen() && r.windowOpen()) || r.masterFree > now) {
		return false
	}
	if alive && r.p.ReadyCount() > 0 {
		return false
	}
	if _, ok := r.p.NextEvent(); ok {
		return false
	}
	return true
}

// wedgedResult reports a proven deadlock as a structured partial result:
// Wedged set, WedgedAt the cycle of proof, the schedule arrays covering
// the tasks that did complete. The exact WedgedAt cycle (and the stall
// counters that keep accruing while the stalled heads retry) may differ
// slightly between the fast and cycle-stepped loops — the two detect the
// same dead state, but prove it at different points of their iteration.
func (r *runner) wedgedResult(now uint64) *Result {
	res := r.result()
	res.Wedged = true
	res.WedgedAt = now
	res.Speedup = 0 // meaningless for a partial schedule
	return res
}

// runFast is the event-driven fast path: every iteration runs the
// platform-side steps at the current cycle exactly like the reference
// loop, then advances the accelerator straight to the next cycle
// anything — a unit, a worker, the link or the master — can act, instead
// of stepping through the dead cycles in between. Picos.RunTo replays
// the accelerator's internal events (and batch-accounts its stall
// counters) on the way, so the observable schedule and statistics are
// bit-identical to runRef.
//
//picos:hotpath
func (r *runner) runFast() (*Result, error) {
	for r.tasksOutstanding() || !r.p.Idle() || r.pendingWork() {
		now := r.p.Now()
		if r.flt != nil {
			r.applyStops(now)
		}
		r.stepWorkers(now)
		r.stepDeliveries(now)
		r.stepFeed(now)
		r.stepSubmits(now)
		r.stepMaster(now)
		r.stepBus(now)
		r.dispatch(now)
		if r.feedErr != nil {
			return nil, r.feedErr
		}
		interested := r.readyInterest()
		next, ok := r.nextWake(now, interested)
		if interested {
			// The platform would act on a task becoming ready, so the
			// accelerator may only run ahead until one appears: RunToReady
			// surfaces one cycle after the step that grows the ready
			// store, where the loop re-plans (and the new candidate's
			// visibility stamp becomes a wake-up candidate).
			target := ^uint64(0)
			if ok {
				target = next
			}
			r.p.RunToReady(target)
			if r.p.Now() > now {
				if r.watchdogExpired() {
					return r.timedOutResult(), nil
				}
				continue
			}
			// No internal event advanced the clock: fall through to the
			// platform-side candidates.
		}
		if !ok {
			if !r.tasksOutstanding() && !r.pendingWork() {
				// All external traffic is finished: let the accelerator
				// drain its remaining finish walks and releases, exactly
				// what the reference loop steps through before its Idle()
				// exit condition turns true.
				r.p.RunOut()
				break
			}
			// Genuine deadlock: tasks remain but no future event exists
			// anywhere — reported structurally so sweeps over deadlocking
			// configurations stay machine-readable.
			return r.wedgedResult(now), nil
		}
		r.p.RunTo(next)
		if r.watchdogExpired() {
			return r.timedOutResult(), nil
		}
	}
	if r.feedErr != nil {
		return nil, r.feedErr
	}
	return r.result(), nil
}

// watchdogExpired reports that no task has started, finished, landed
// or been refused for more than the configured number of cycles.
func (r *runner) watchdogExpired() bool {
	return r.p.Now()-r.lastProgress > r.cfg.Watchdog
}

// timedOutResult reports a watchdog expiry as a structured partial
// result: the run made no progress for Watchdog cycles while a future
// event still existed (otherwise the wedge proof would have fired), so
// this is a livelock or pathological stall, not a proven deadlock —
// and, when a fault fired, possibly fault-induced starvation.
func (r *runner) timedOutResult() *Result {
	res := r.result()
	res.TimedOut = true
	res.Speedup = 0 // meaningless for a partial schedule
	return res
}

// readyInterest reports whether the platform would act on a task
// becoming ready: an idle worker to dispatch to in HW-only mode, spare
// fetch capacity on the link in the comm modes. Non-trivial scheduling
// plans buffer eagerly in HW-only mode (the policy wants every visible
// candidate), and count the platform-side buffer against the link's
// fetch window in the comm modes so the link still never fetches more
// tasks than there are workers to absorb them.
func (r *runner) readyInterest() bool {
	if r.cfg.Mode == HWOnly {
		if !r.trivial {
			return true
		}
		return r.idleWorkers() > 0
	}
	return r.idleWorkers() > r.readyInFlight+r.readyBacklog.Len()+r.poolReady()
}

// nextWake returns the next cycle the platform loop must be evaluated
// at: the earliest of every platform-side event — worker completions,
// link deliveries, master-core availability, stamped submissions, the
// link freeing up with work queued — plus, only while the platform
// would act on a task becoming ready, the accelerator's own event
// horizon and the dispatch candidate's visibility stamp. Every
// candidate at or before now is clamped to now+1: the current cycle's
// actions already ran, so anything still due fires on the next
// evaluated cycle, exactly like the reference loop. Waking too early is
// harmless (the loop re-evaluates and finds nothing to do); the
// candidates are chosen so it can never wake too late. interested is
// the caller's readyInterest() value for this cycle.
//
//picos:hotpath
func (r *runner) nextWake(now uint64, interested bool) (uint64, bool) {
	next, ok := uint64(0), false
	//lint:ignore hotalloc consider never leaves this frame, so escape analysis stack-allocates it; TestWarmRunTraceAllocs holds the zero-alloc line
	consider := func(t uint64) {
		if t <= now {
			t = now + 1
		}
		if !ok || t < next {
			next, ok = t, true
		}
	}
	// Accelerator-internal events never need to wake the loop: while the
	// platform would act on a task becoming ready, runFast drives the
	// accelerator with RunToReady (which surfaces by itself when one
	// appears), and otherwise no platform step reads anything from the
	// accelerator, so RunTo chews through whole bursts of internal
	// events without surfacing. The only accelerator-derived candidate
	// is the current dispatch candidate's visibility stamp.
	if interested {
		if ra, rok := r.p.ReadyAt(); rok {
			if r.cfg.Mode == HWOnly {
				consider(ra)
			} else {
				consider(max(ra, r.busFree))
			}
		}
	}
	if len(r.busyH) > 0 {
		consider(r.busyH[0].Until)
	}
	if d, ok := r.deliveries.Peek(); ok {
		consider(d.at)
	}
	if r.cfg.Mode == FullSystem && r.masterHasNext() && r.masterWindowOpen() && r.windowOpen() {
		// A window-blocked master resumes only when a submission is
		// accepted (run-ahead) or a descriptor retires (streaming), and
		// every such cycle — a delivery, a parked retry, a worker finish
		// — is already covered by the candidates here.
		consider(r.masterFree)
	}
	if r.src != nil && r.cfg.Mode == HWComm && r.windowOpen() && r.srcHasNext() {
		// A refusal this cycle reopened the window after stepFeed ran:
		// the feed acts on the next evaluated cycle.
		consider(now + 1)
	}
	if st, sok := r.pendingNew.Peek(); sok && st.at > now {
		consider(st.at)
	}
	if r.cfg.Mode != HWOnly && r.busFree > now &&
		(r.pendingFin.Len() > 0 || r.pendingNew.Len() > 0 || r.retryQ.Len() > 0 ||
			(interested && r.p.ReadyCount() > 0)) {
		consider(r.busFree)
	}
	if r.flt != nil {
		// A pending failstop and a due retransmission are real events
		// both loops must evaluate at. A failstop is only an event while
		// unaccounted tasks remain: once every task is done, refused or
		// lost there is no in-flight work a kill could touch, and jumping
		// to a trigger cycle beyond the schedule would only starve the
		// watchdog.
		if c, sok := r.flt.NextStop(); sok && r.tasksOutstanding() {
			consider(c)
		}
		if e, eok := r.retryQ.Peek(); eok {
			consider(e.at)
		}
	}
	if r.backpressured() {
		// Parked or unfed tasks wait for new-task queue space, which
		// opens at a GW admission — an accelerator-internal event — so
		// every accelerator event becomes a (conservative) wake
		// candidate while the backpressure lasts.
		if ne, ok2 := r.p.NextEvent(); ok2 {
			consider(ne)
		}
	}
	return next, ok
}

// stepWorkers retires finished executions: busy workers pop off the
// completion heap in (until, idx) order — exactly the order the
// per-cycle reference retires them — until the head is still running.
//
//picos:hotpath
func (r *runner) stepWorkers(now uint64) {
	for len(r.busyH) > 0 && r.busyH[0].Until <= now {
		until := r.busyH[0].Until
		idx := r.busyH.Pop().Idx
		if r.trivial {
			r.idleH.Push(idx)
		} else {
			r.pool.Park(idx)
		}
		r.done++
		r.lastProgress = now
		if r.cfg.Mode == HWOnly {
			r.p.NotifyFinish(r.workers[idx].Handle)
		} else {
			r.pendingFin.Push(r.workers[idx].Handle)
		}
		if r.src != nil {
			// The completion retires the descriptor (the accelerator's
			// cleanup needs only the handle already captured above) and
			// feeds the aggregate makespan.
			if until > r.aggMakespan {
				r.aggMakespan = until
			}
			r.retire(r.workers[idx].ID)
		}
	}
}

// pushDelivery queues a landed-at-`at` link message, coalescing it into
// the tail delivery node when the stamps match and the batch has room.
// Stamps are non-decreasing (busFree never moves backwards), so a
// non-matching tail stamp means a strictly later landing and a fresh
// node keeps the FIFO ordered by at.
//
//picos:hotpath
func (r *runner) pushDelivery(at uint64, msg busMsg) {
	if tail, ok := r.deliveries.Tail(); ok && tail.at == at && int(tail.n) < len(tail.msgs) {
		tail.msgs[tail.n] = msg
		tail.n++
		return
	}
	d := delivery{at: at, n: 1}
	d.msgs[0] = msg
	r.deliveries.Push(d)
}

// stepDeliveries lands in-flight link messages. The FIFO is ordered by
// landing stamp (see the field comment), so landing is popping the
// due prefix; each node lands its whole batch in push order.
//
//picos:hotpath
func (r *runner) stepDeliveries(now uint64) {
	for {
		d, ok := r.deliveries.Peek()
		if !ok || d.at > now {
			return
		}
		r.deliveries.Pop()
		for i := 0; i < int(d.n); i++ {
			r.landMsg(d.msgs[i])
		}
		r.lastProgress = now
	}
}

// landMsg applies one landed link message.
//
//picos:hotpath
func (r *runner) landMsg(msg busMsg) {
	if msg.dup {
		// The duplicate of an axi:dup fault: it paid its bandwidth on
		// the link; the receiver's dedup discards the payload.
		return
	}
	switch msg.kind {
	case busNew:
		if r.parkedNew.Len() > 0 {
			// Keep submission order: earlier rejections go first.
			r.parkedNew.Push(msg.task)
			return
		}
		task := r.taskAt(msg.task)
		err := r.p.Submit(task.ID, task.Deps)
		switch {
		case errors.Is(err, picos.ErrNewQFull):
			// The submission buffer is full: park the descriptor and
			// retry until the queue accepts it. A rejected
			// registration is never dropped — losing it would wedge
			// the run and fail the drain check.
			r.parkedNew.Push(msg.task)
		case errors.Is(err, picos.ErrUnadmittable):
			r.refuse(msg.task)
			if r.cfg.Mode == FullSystem {
				r.createdAhead--
			}
		case err != nil:
			// Traces are validated before the run, so a non-capacity
			// rejection is impossible; if the model ever produces
			// one, surface it through the drain check (submitted
			// counter stays short) rather than dropping silently.
			_ = err
		default:
			if r.cfg.Mode == FullSystem {
				r.createdAhead--
			}
		}
	case busReady:
		r.readyInFlight--
		r.readyBacklog.Push(msg.rt)
	case busFin:
		r.p.NotifyFinish(msg.h)
	}
}

// stepMaster runs the ARM-side Nanos++ creation/submission path: one
// task per grant; the created descriptor becomes available to the link
// at masterFree.
//
//picos:hotpath
func (r *runner) stepMaster(now uint64) {
	if r.cfg.Mode != FullSystem {
		return
	}
	if !r.masterHasNext() || r.masterFree > now {
		return
	}
	if !r.masterWindowOpen() {
		// Run-ahead window exhausted: the master parks with the next
		// descriptor ready and resumes the moment a submission is
		// accepted downstream.
		return
	}
	var task *trace.Task
	if r.src == nil {
		task = &r.tr.Tasks[r.masterNext]
	} else {
		if !r.windowOpen() {
			// Streaming descriptor window exhausted: creation resumes
			// when a live task retires.
			return
		}
		t, ok := r.srcPeek()
		if !ok {
			return
		}
		task = t
	}
	cost := task.CreateCost
	if cost == 0 {
		cost = r.cfg.Master.Create
	}
	cost += r.cfg.Master.SubmitCost(len(task.Deps))
	// The master also performs the AXI stream write for its submission.
	cost += r.cfg.Comm.SendNewOcc
	r.masterFree = now + cost
	idx := uint32(r.masterNext)
	if r.src != nil {
		idx = r.srcCommit()
	}
	r.pendingNew.Push(stampedTask{at: r.masterFree, idx: idx})
	r.masterNext++
	r.createdAhead++
}

// stepBus arbitrates the AXI link: ready retrievals first (keep workers
// fed), then finished notifications (free accelerator resources), then
// new submissions.
//
//picos:hotpath
func (r *runner) stepBus(now uint64) {
	if r.cfg.Mode == HWOnly || r.busFree > now {
		return
	}
	c := &r.cfg.Comm
	if !r.busSetup {
		if !r.busHasWork(now) {
			return
		}
		// Lazy first-use setup of the stream queues and status registers
		// (the extra ~600 cycles between Table IV's thrTask and L1st).
		r.busSetup = true
		r.busFree = now + c.Setup
		return
	}
	if r.flt != nil {
		// Retransmissions of dropped messages go out ahead of fresh
		// traffic: they are the oldest granted transfers on the link.
		if e, ok := r.retryQ.Peek(); ok && e.at <= now {
			r.retryQ.Pop()
			if e.msg.kind == busNew {
				r.retryNew-- // re-dropped resends re-count in loseOrRetry
			}
			r.resend(now, e)
			return
		}
	}
	if r.readyInterest() {
		if rt, ok := r.p.PopReady(); ok {
			r.readyInFlight++
			r.send(now, c.FetchReadyOcc, busMsg{kind: busReady, rt: rt})
			return
		}
	}
	if h, ok := r.pendingFin.Pop(); ok {
		r.send(now, c.SendFinOcc, busMsg{kind: busFin, h: h})
		return
	}
	if r.flt != nil && r.retryNew > 0 {
		// An earlier submission is still in the retransmission queue:
		// sending a fresh one now would deliver tasks out of program
		// order and corrupt the dependence registration downstream.
		return
	}
	if st, ok := r.pendingNew.Peek(); ok && st.at <= now {
		r.pendingNew.Pop()
		// In Full-system mode the send occupancy was already paid on the
		// master core (coupled resources); the link itself is still held
		// for the transfer duration in both modes.
		r.send(now, c.SendNewOcc, busMsg{kind: busNew, task: st.idx})
	}
}

// send occupies the link for occ cycles and schedules the delivery,
// first giving the fault layer (when armed) its chance to drop, delay
// or duplicate the transfer.
//
//picos:hotpath
func (r *runner) send(now, occ uint64, msg busMsg) {
	if r.flt != nil && r.sendFaulty(now, occ, msg) {
		return
	}
	r.busFree = now + occ
	r.pushDelivery(r.busFree+r.cfg.Comm.Flight, msg)
}

// dispatch hands ready tasks to idle workers: directly from the TS in
// HW-only mode, from the fetched backlog in the comm modes. On the
// trivial (historical) plan the idle heap hands out the lowest index
// first, like the old linear scan, pulling ready tasks only on demand.
// Non-trivial plans first buffer every visible ready task into the
// pool — policies need the full candidate set — then pair workers and
// tasks under the configured policy.
//
//picos:hotpath
func (r *runner) dispatch(now uint64) {
	if r.trivial {
		for len(r.idleH) > 0 {
			rt, ok := r.popDispatchable()
			if !ok {
				return
			}
			r.startWorkerAt(r.idleH.Pop(), rt, now)
		}
		return
	}
	for {
		rt, ok := r.popDispatchable()
		if !ok {
			break
		}
		r.pool.Enqueue(rt.ID, r.taskAt(rt.ID).Kind, rt.Handle)
	}
	for {
		w, it, ok := r.pool.Grant()
		if !ok {
			return
		}
		r.startWorkerAt(w, picos.ReadyTask{Handle: it.Payload, ID: it.ID}, now)
	}
}

// popDispatchable yields the next ready task the workers may take: the
// TS directly in HW-only mode, the fetched backlog in the comm modes.
// A fault-armed HW-only run drains the backlog first — it holds tasks
// re-granted from fail-stopped workers, which never exists fault-free.
//
//picos:hotpath
func (r *runner) popDispatchable() (picos.ReadyTask, bool) {
	if r.cfg.Mode == HWOnly {
		if r.flt != nil {
			if rt, ok := r.readyBacklog.Pop(); ok {
				return rt, true
			}
		}
		return r.p.PopReady()
	}
	return r.readyBacklog.Pop()
}

//picos:hotpath
func (r *runner) startWorkerAt(i int, rt picos.ReadyTask, now uint64) {
	dur := r.taskAt(rt.ID).Duration
	if !r.trivial {
		dur = r.pool.Scale(i, dur)
	}
	if r.flt != nil {
		dur = r.flt.ScaleWorker(i, now, dur)
	}
	r.workers[i] = rt
	r.busyH.Push(sched.Due{Until: now + dur, Idx: i})
	if r.src == nil {
		r.start[rt.ID] = now
		r.finish[rt.ID] = now + dur
		r.order = append(r.order, rt.ID)
	} else {
		// Aggregate probes in place of the per-task schedule arrays.
		if !r.aggFirstSet || now < r.aggFirst {
			r.aggFirst, r.aggFirstSet = now, true
		}
		if now > r.aggLastStart {
			r.aggLastStart = now
		}
		r.aggStarted++
	}
	r.lastProgress = now
}

func (r *runner) idleWorkers() int {
	if r.trivial {
		return len(r.idleH)
	}
	return r.pool.Idle()
}

// poolReady is the number of ready tasks buffered platform-side by a
// non-trivial plan (zero on the trivial path, which never buffers).
func (r *runner) poolReady() int {
	if r.trivial {
		return 0
	}
	return r.pool.Len()
}

// busHasWork reports whether any message is waiting for the link.
func (r *runner) busHasWork(now uint64) bool {
	if r.flt != nil {
		if e, ok := r.retryQ.Peek(); ok && e.at <= now {
			return true
		}
	}
	if r.readyInterest() && r.p.ReadyCount() > 0 {
		return true
	}
	if r.pendingFin.Len() > 0 {
		return true
	}
	if st, ok := r.pendingNew.Peek(); ok && st.at <= now &&
		(r.flt == nil || r.retryNew == 0) {
		return true
	}
	return false
}

// busCanActNow reports whether the link could do useful work this cycle.
func (r *runner) busCanActNow(now uint64) bool {
	if r.cfg.Mode == HWOnly || r.busFree > now {
		return false
	}
	return r.busHasWork(now)
}

// quiescentUntil reports the next cycle anything can happen, when the
// platform is provably idle until then.
//
//picos:hotpath
func (r *runner) quiescentUntil(now uint64) (uint64, bool) {
	if !r.p.Idle() {
		return 0, false
	}
	// A non-trivial plan acts on any visible ready task (eager HW-only
	// pop, backlog drain into the pool) regardless of idle workers; the
	// trivial path only acts when a worker is free to take it.
	if r.idleWorkers() > 0 || !r.trivial {
		if r.cfg.Mode == HWOnly && r.p.ReadyCount() > 0 {
			return 0, false
		}
		if r.readyBacklog.Len() > 0 {
			return 0, false
		}
	}
	if r.busCanActNow(now) {
		return 0, false
	}
	if r.backpressured() && r.p.NewQRoom() {
		return 0, false
	}
	if r.src != nil && r.cfg.Mode == HWComm && r.windowOpen() && r.srcHasNext() {
		// stepFeed will hand the link more work on the next cycle (a
		// refusal can reopen the window after the feed already ran).
		return 0, false
	}
	next := uint64(0)
	//lint:ignore hotalloc consider never leaves this frame, so escape analysis stack-allocates it; TestWarmRunTraceAllocs holds the zero-alloc line
	consider := func(t uint64) {
		if t > now && (next == 0 || t < next) {
			next = t
		}
	}
	if len(r.busyH) > 0 {
		consider(r.busyH[0].Until)
	}
	if d, ok := r.deliveries.Peek(); ok {
		consider(d.at)
	}
	if r.cfg.Mode == FullSystem && r.masterHasNext() && r.masterWindowOpen() && r.windowOpen() {
		consider(r.masterFree)
	}
	if st, ok := r.pendingNew.Peek(); ok {
		consider(st.at)
	}
	if r.busFree > now && (r.pendingFin.Len() > 0 || r.pendingNew.Len() > 0 ||
		r.retryQ.Len() > 0 || (r.p.ReadyCount() > 0 && r.readyInterest())) {
		consider(r.busFree)
	}
	if r.flt != nil {
		// Same candidates as nextWake, same completion gate on the stop.
		if c, sok := r.flt.NextStop(); sok && r.tasksOutstanding() {
			consider(c)
		}
		if e, ok := r.retryQ.Peek(); ok {
			consider(e.at)
		}
	}
	if next == 0 {
		return 0, false
	}
	return next, true
}

func (r *runner) result() *Result {
	if r.src != nil {
		return r.streamResult()
	}
	res := &Result{
		Mode:     r.cfg.Mode,
		Workers:  r.cfg.Workers,
		Baseline: r.tr.Baseline(),
		Start:    r.start,
		Finish:   r.finish,
		Order:    r.order,
		Stats:    *r.p.Stats(),
		Busy:     r.p.Busy(),
	}
	var first, lastStart uint64
	firstSet := false
	for _, id := range r.order {
		s := r.start[id]
		if !firstSet || s < first {
			first, firstSet = s, true
		}
		if s > lastStart {
			lastStart = s
		}
	}
	for _, f := range r.finish {
		if f > res.Makespan {
			res.Makespan = f
		}
	}
	res.FirstStart = first
	if len(r.order) > 1 {
		res.ThrTask = float64(lastStart-first) / float64(len(r.order)-1)
	}
	if res.Makespan > 0 {
		res.Speedup = float64(res.Baseline) / float64(res.Makespan)
	}
	// Fault and refusal accounting; all stay zero on a fault-free run
	// under the default admission policy, so the Result is byte-identical
	// to the pre-fault-layer one.
	res.LostTasks = r.lost
	res.RecoveredTasks = r.recovered
	res.RefusedTasks = r.refused
	res.RefusedIDs = r.refusedIDs
	if r.flt != nil && r.flt.Fired {
		res.Faulted = true
	}
	if f := r.cfg.Picos.Faults; f != nil {
		if f.Fired {
			res.Faulted = true
		}
		res.RefusedTasks += int(f.Refused)
	}
	return res
}
