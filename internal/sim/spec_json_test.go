package sim_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

// fullSpec returns a Spec with every field set to a non-zero value, so
// the round-trip test exercises the complete JSON surface. The reflect
// check in TestSpecJSONRoundTrip fails the build-out if a new Spec
// field is added without extending this fixture.
func fullSpec() sim.Spec {
	return sim.Spec{
		Engine:        "picos-hw",
		Workload:      "heat",
		Problem:       1024,
		Block:         128,
		Workers:       8,
		WorkerClasses: "4xfast+4xslow:2.0+1xaccel:0.25@stencil_2d,fft",
		Sched:         "priority",
		Steal:         true,
		Design:        "8way",
		Policy:        "lifo",
		Admission:     "slots",
		Wake:          "first-first",
		Conflict:      "block",
		NumTRS:        2,
		NumDCT:        4,
		ShardHash:     "low-bits",
		ShardHop:      3,
		NewQDepth:     16,
		RunAhead:      -1,
		Window:        256,
		Watchdog:      1 << 30,
		Faults:        "axi:drop=0.01@seed7+worker:failstop=2@cycle50000",
		Recovery:      "retry=3:backoff200+regrant",
		FastForward:   sim.Bool(false),
	}
}

// TestSpecJSONRoundTrip marshals a fully-populated Spec and checks the
// decode reproduces it exactly — Specs are the sweep serialization
// format, so every knob (including the scheduling-layer WorkerClasses,
// Sched and Steal) must survive the trip.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := fullSpec()

	// Guard the fixture itself: every exported field must be non-zero,
	// otherwise a freshly added knob silently escapes the round trip.
	v := reflect.ValueOf(spec)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Errorf("fullSpec leaves field %s zero; add it to the fixture", v.Type().Field(i).Name)
		}
	}

	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back sim.Spec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v\n  json: %s", spec, back, blob)
	}
}

// TestSpecJSONOmitEmpty pins the minimal encoding: a default spec
// serializes to just engine+workload, so sweep files stay diffable and
// old JSON (written before the scheduling knobs existed) decodes
// unchanged.
func TestSpecJSONOmitEmpty(t *testing.T) {
	blob, err := json.Marshal(sim.Spec{Engine: "nanos", Workload: "heat"})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want := `{"engine":"nanos","workload":"heat"}`
	if string(blob) != want {
		t.Fatalf("zero-value spec encodes as %s, want %s", blob, want)
	}
}

// TestWorkersAndClassesConflict checks the typed construction error:
// setting both Workers and WorkerClasses is rejected by SchedPlan and
// ClassPlan with ErrWorkersAndClasses, and surfaces through sim.Run for
// every engine that reads the scheduling knobs.
func TestWorkersAndClassesConflict(t *testing.T) {
	spec := sim.Spec{Workers: 8, WorkerClasses: "4xfast+4xslow:2.0"}

	if _, err := spec.SchedPlan(); !errors.Is(err, sim.ErrWorkersAndClasses) {
		t.Errorf("SchedPlan: got %v, want ErrWorkersAndClasses", err)
	}
	if _, err := spec.ClassPlan(); !errors.Is(err, sim.ErrWorkersAndClasses) {
		t.Errorf("ClassPlan: got %v, want ErrWorkersAndClasses", err)
	}

	for _, engine := range []string{"picos-hw", "picos-comm", "picos-full", "nanos", "perfect"} {
		run := spec
		run.Engine = engine
		run.Workload = "case1"
		if _, err := sim.Run(run); !errors.Is(err, sim.ErrWorkersAndClasses) {
			t.Errorf("%s: Run got %v, want ErrWorkersAndClasses", engine, err)
		}
	}

	// Either knob alone is fine.
	if _, err := (sim.Spec{Workers: 8}).SchedPlan(); err != nil {
		t.Errorf("Workers alone: %v", err)
	}
	if _, err := (sim.Spec{WorkerClasses: "4xfast"}).SchedPlan(); err != nil {
		t.Errorf("WorkerClasses alone: %v", err)
	}
}

// TestWithDefaultsClasses checks the defaulting rule that keeps a
// class-bearing spec valid: WithDefaults fills Workers only when no
// class list is declared.
func TestWithDefaultsClasses(t *testing.T) {
	if got := (sim.Spec{}).WithDefaults().Workers; got != sim.DefaultWorkers {
		t.Errorf("plain spec: Workers = %d, want %d", got, sim.DefaultWorkers)
	}
	withClasses := sim.Spec{WorkerClasses: "2xa+2xb:2.0"}.WithDefaults()
	if withClasses.Workers != 0 {
		t.Errorf("class spec: Workers = %d, want 0 (count comes from the class list)", withClasses.Workers)
	}
	if _, err := withClasses.SchedPlan(); err != nil {
		t.Errorf("defaulted class spec must stay valid: %v", err)
	}
}
