package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrDiscipline enforces errors.Is comparison for sentinel errors. The
// simulator's sentinels (picos.ErrNewQFull is the load-bearing one: the
// Full-system master's submit loop keys its back-off on it) are today
// returned bare, which makes `err == ErrNewQFull` work — until someone
// wraps the rejection with fmt.Errorf("%w", ...) context and every
// pointer comparison in the tree silently turns false. errors.Is costs
// nothing and survives wrapping, so the analyzer flags any == / != /
// switch-case comparison whose operand is an exported package-level
// error sentinel (an error-typed variable named Err...).
var ErrDiscipline = &Analyzer{
	Name: "errdiscipline",
	Doc:  "sentinel errors must be compared with errors.Is, not == / != / switch",
	Run:  runErrDiscipline,
}

func runErrDiscipline(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				if node.Op != token.EQL && node.Op != token.NEQ {
					return true
				}
				if name, ok := sentinelError(info, node.X); ok {
					reportSentinelCompare(pass, node.Pos(), node.Op, name)
				} else if name, ok := sentinelError(info, node.Y); ok {
					reportSentinelCompare(pass, node.Pos(), node.Op, name)
				}
			case *ast.SwitchStmt:
				// switch err { case ErrX: } compares with ==.
				if node.Tag == nil {
					return true
				}
				if !isErrorType(info.TypeOf(node.Tag)) {
					return true
				}
				for _, stmt := range node.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := sentinelError(info, e); ok {
							pass.Reportf(e.Pos(),
								"switch case compares %s by identity; use if errors.Is(err, %s) so the check survives wrapping", name, name)
						}
					}
				}
			}
			return true
		})
	}
}

func reportSentinelCompare(pass *Pass, pos token.Pos, op token.Token, name string) {
	verb := "=="
	if op == token.NEQ {
		verb = "!="
	}
	pass.Reportf(pos, "%s compared with %s; use errors.Is so the check survives error wrapping", name, verb)
}

// sentinelError reports whether expr denotes a package-level error
// variable named Err... (the sentinel convention), returning its name.
func sentinelError(info *types.Info, expr ast.Expr) (string, bool) {
	var obj types.Object
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	default:
		return "", false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	// Package-level only: the parent scope of a package var is the
	// package scope.
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") || !isErrorType(v.Type()) {
		return "", false
	}
	return v.Name(), true
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == types.Universe.Lookup("error").(*types.TypeName)
}
