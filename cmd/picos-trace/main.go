// Command picos-trace generates, inspects and converts task traces.
// Workloads are resolved through the sim registry, so every name that
// picos-sim accepts works here too.
//
// Usage:
//
//	picos-trace -app cholesky -block 128 -out chol.bin   # generate
//	picos-trace -in chol.bin                              # summarize
//	picos-trace -case 5 -dot                              # Figure 7 graph
//	picos-trace -app heat -block 256 -levels              # ASCII DAG levels
//	picos-trace -workload case3                           # registry name directly
//	picos-trace -workload "pattern:fft?width=8&steps=4" -dot-ranked
//	                                     # layered DOT of a pattern grid
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/patterns"
	"repro/internal/sim"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func main() {
	var (
		app      = flag.String("app", "", "benchmark: heat, lu, mlu, sparselu, cholesky, h264dec")
		problem  = flag.Int("problem", 0, "problem size (0: paper default)")
		block    = flag.Int("block", 128, "block size")
		caseNo   = flag.Int("case", 0, "synthetic case 1..7")
		workload = flag.String("workload", "", "workload registry name (alternative to -app/-case; see -list)")
		in       = flag.String("in", "", "read a serialized trace")
		out      = flag.String("out", "", "write the trace to this file")
		dot      = flag.Bool("dot", false, "dump the dependence DAG as Graphviz DOT")
		ranked   = flag.Bool("dot-ranked", false, "like -dot, with each dependence level on one rank (pattern grids draw as grids)")
		levels   = flag.Bool("levels", false, "dump the DAG as ASCII levels")
		list     = flag.Bool("list", false, "list registered workload names (and pattern families) and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(sim.Workloads(), "\n"))
		for _, fam := range patterns.Families() {
			fmt.Printf("%s%s  (%s)\n", sim.PatternPrefix, fam, patterns.Describe(fam))
		}
		return
	}

	var tr *trace.Trace
	name := *workload
	switch {
	case name != "":
	case *in != "":
		name = sim.TracePrefix + *in
	case *caseNo != 0:
		name = fmt.Sprintf("case%d", *caseNo)
	case *app != "":
		// Real benchmarks bypass the registry so the generator's
		// per-kernel counts stay visible — this tool's job is inspecting
		// how a trace was built.
		p := *problem
		if p == 0 {
			p = apps.DefaultProblem
			if apps.App(*app) == apps.H264Dec {
				p = 10
			}
		}
		res, err := apps.Generate(apps.App(*app), p, *block)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "kernels: %v\n", res.KernelCounts)
		tr = res.Trace
		if err := tr.Validate(); err != nil {
			fail(fmt.Errorf("trace invalid: %w", err))
		}
	default:
		fail(fmt.Errorf("one of -app, -case, -workload or -in is required"))
	}
	if tr == nil {
		// BuildWorkload validates the trace before returning it.
		var err error
		tr, err = sim.BuildWorkload(sim.Spec{Workload: name, Problem: *problem, Block: *block})
		if err != nil {
			fail(err)
		}
	}

	s := tr.Summarize()
	g := taskgraph.Build(tr)
	fmt.Printf("%s: %d tasks, %d deps total (%d-%d per task), avg task %.3g cycles\n",
		tr.Name, s.NumTasks, tr.NumDeps(), s.MinDeps, s.MaxDeps, s.AvgTaskSize)
	fmt.Printf("baseline %.4g cycles, critical path %.4g cycles, max parallelism %d, depth %d, edges %d\n",
		float64(tr.Baseline()), float64(g.CriticalPath()), g.MaxParallelism(), g.Depth(), g.NumEdges())

	if *dot {
		if err := g.WriteDOT(os.Stdout, tr.Name); err != nil {
			fail(err)
		}
	}
	if *ranked {
		if err := g.WriteDOTRanked(os.Stdout, tr.Name); err != nil {
			fail(err)
		}
	}
	if *levels {
		if err := g.ASCIILevels(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if _, err := tr.WriteTo(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "picos-trace: %v\n", err)
	os.Exit(1)
}
