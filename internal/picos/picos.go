package picos

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/trace"
)

// Config selects a Picos build: the DM design, the number of TRS/DCT
// instances (1 each in the paper's prototype; 4 in the "future
// architecture" of Figure 3a), the scheduling policy of the TS and the
// calibrated operation timing.
type Config struct {
	Design DMDesign
	NumTRS int
	NumDCT int
	Policy SchedPolicy
	Timing Timing
	// VMReserve is the per-DCT VM headroom the GW requires before
	// admitting a task under AdmitCredits. Defaults to MaxDeps+1.
	VMReserve int
	// Admission selects the GW admission policy.
	Admission AdmissionPolicy
	// Wake selects the consumer-chain wake order (ablation for the Lu
	// corner case of Section V-A).
	Wake WakeOrder
	// Conflict selects how the DCT handles a DM set conflict: the
	// default ConflictSidetrack parks the conflicting dependence in a
	// one-entry retry register so registration keeps flowing (matching
	// the prototype's Table II conflict counts); ConflictBlock is the
	// earlier strict head-of-line stall, kept as an ablation.
	Conflict ConflictPolicy
	// NewQDepth bounds the GW new-task queue, modeling the finite
	// memory-mapped submission buffer: Submit returns ErrNewQFull when
	// the queue holds this many tasks, and the submitter must retry —
	// the backpressure that makes creation run-ahead observable. 0 (the
	// default) keeps the queue unbounded, which is how the paper's HIL
	// platform preloads whole traces.
	NewQDepth int
	// ShardHash selects how addresses are partitioned across DCT shards
	// when NumDCT > 1 (single-DCT builds never consult it).
	ShardHash ShardHash
	// Faults is the accelerator-side fault injector built from the
	// run's fault plan (faults.Plan.PicosSide), or nil for the normal
	// fault-free build. Every injection site is nil-gated, so a nil
	// injector leaves the hot paths byte-identical to a build without
	// the faults package.
	Faults *faults.PicosFaults
}

// ShardHash selects the address-to-shard partition function of a
// sharded (NumDCT > 1) dependence-management fabric. The same address
// must always map to the same shard so its whole version chain lives
// together; what the hash controls is how evenly unrelated addresses
// spread — and therefore how evenly the partitioned DM/VM capacity and
// the per-shard registration engines are loaded.
type ShardHash uint8

const (
	// ShardXorFold (default) is a 64-bit xor-fold multiply mix: block
	// addresses from any allocator layout spread near-uniformly, so
	// per-shard capacity is used evenly.
	ShardXorFold ShardHash = iota
	// ShardLowBits takes the low word-address bits — the cheapest
	// possible hardware, kept as an ablation. Strided allocations
	// cluster onto few shards, concentrating load and capacity pressure
	// the way the low-bit DM index of Section V-A clusters sets.
	ShardLowBits
)

// String names the shard hash.
func (s ShardHash) String() string {
	if s == ShardLowBits {
		return "low-bits"
	}
	return "xor-fold"
}

// ConflictPolicy selects how the DCT handles a full DM set.
type ConflictPolicy uint8

const (
	// ConflictSidetrack (default) parks the conflicting dependence in a
	// single retry register with priority over the queue, so later
	// dependences keep registering while the saturated set drains. Each
	// dependence still registers only after every older dependence on
	// its address (same address means same set, and the parked entry has
	// strict priority on freed ways), so schedules stay race-free; what
	// changes is that arrivals keep flowing — and keep colliding — while
	// a set is saturated, which is what the prototype's Table II
	// conflict counters measure.
	ConflictSidetrack ConflictPolicy = iota
	// ConflictBlock stalls the whole registration path head-of-line on
	// the first unstorable dependence, the pre-sidetrack model: strictly
	// in-order, but it self-throttles arrivals during saturation and
	// under-counts conflicts relative to the prototype.
	ConflictBlock
)

// String names the conflict policy.
func (c ConflictPolicy) String() string {
	if c == ConflictBlock {
		return "block"
	}
	return "sidetrack"
}

// WakeOrder selects how a producer-consumer chain is woken when the
// producer finishes.
type WakeOrder uint8

const (
	// WakeLastFirst is the prototype's behaviour (Figure 5): the DCT
	// keeps only the newest consumer; older consumers chain through TMX
	// wake pointers and wake last-to-first. Cheap in VM state, but it
	// can postpone critical-path consumers (the Lu corner case).
	WakeLastFirst WakeOrder = iota
	// WakeFirstFirst wakes consumers in registration order: the DCT
	// keeps the chain head in the VM and each consumer's TMX entry
	// points forward to the next. Same hardware cost, opposite bias.
	WakeFirstFirst
)

// String names the wake order.
func (w WakeOrder) String() string {
	if w == WakeFirstFirst {
		return "first-first"
	}
	return "last-first"
}

// AdmissionPolicy selects how the Gateway throttles new tasks.
type AdmissionPolicy uint8

const (
	// AdmitCredits (default) reserves VM credits per dependence at
	// admission, so the version store can never be exhausted — the
	// strictest reading of the corrected operational workflow.
	AdmitCredits AdmissionPolicy = iota
	// AdmitSlotsOnly admits whenever a TRS slot is free, like the
	// prototype: dependences that cannot be stored stall in order at the
	// DCT (safe — stalls only ever delay younger tasks — but the memory-
	// capacity pressure becomes visible as conflicts, as in Table II's
	// Heat rows).
	AdmitSlotsOnly
	// AdmitAvoidDeadlock is the paper discussion's deadlock-avoidance
	// policy: on top of the credit reservation, Submit computes whether
	// the task's dependence set can fit any DM set under the design's
	// hash — a task with more same-(shard,set) addresses than the DM
	// has ways can never finish registering — and refuses it with
	// ErrUnadmittable instead of letting it wedge the fabric. Refused
	// descriptors are dropped by the platform.
	AdmitAvoidDeadlock
	// AdmitAvoidDeadlockPark is AdmitAvoidDeadlock with the other
	// refusal policy: the platform parks refused descriptors and
	// reports their IDs in the result instead of dropping them, so a
	// front-end can re-route them to a differently-provisioned fabric.
	AdmitAvoidDeadlockPark
)

// AvoidsDeadlock reports whether the policy performs the submit-time
// DM-set feasibility check.
func (a AdmissionPolicy) AvoidsDeadlock() bool {
	return a == AdmitAvoidDeadlock || a == AdmitAvoidDeadlockPark
}

// DefaultConfig returns the paper's baseline prototype: one TRS, one DCT
// with the Pearson 8-way DM, FIFO scheduling, calibrated timing.
func DefaultConfig() Config {
	return Config{
		Design:    DMP8Way,
		NumTRS:    1,
		NumDCT:    1,
		Policy:    SchedFIFO,
		Timing:    DefaultTiming(),
		VMReserve: trace.MaxDeps + 1,
	}
}

// Picos is the accelerator model. Drive it by pushing tasks with Submit,
// advancing time with Step, pulling ready tasks with PopReady and
// returning finished tasks with NotifyFinish — exactly the four
// interactions the HIL platform has with the prototype.
type Picos struct {
	cfg Config
	now uint64

	gw  *gateway
	trs []*trsUnit
	dct []*dctUnit
	arb *arbiter
	ts  *tsUnit

	// Incremental event-horizon scheduler state (see horizon.go): the
	// per-unit horizon keys, the indexed min-heap over them, the
	// dirty-unit set awaiting a re-poll, and the busy-timer high-water
	// mark that makes Idle() O(1).
	units   []horizonUnit
	hkey    []uint64
	hpos    []int32
	hheap   []int32
	hdirty  []bool
	hdlist  []int32
	maxBusy uint64

	stats Stats
}

// normalizeConfig applies defaults and validates; shared by New and
// Reset so a Reset accelerator is configured exactly like a fresh one.
func normalizeConfig(cfg Config) (Config, error) {
	if cfg.NumTRS == 0 {
		cfg.NumTRS = 1
	}
	if cfg.NumDCT == 0 {
		cfg.NumDCT = 1
	}
	if cfg.NumTRS < 1 || cfg.NumTRS > 255 || cfg.NumDCT < 1 || cfg.NumDCT > 255 {
		return cfg, fmt.Errorf("picos: instance counts must be 1..255, got %d TRS / %d DCT", cfg.NumTRS, cfg.NumDCT)
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	if cfg.VMReserve == 0 {
		cfg.VMReserve = trace.MaxDeps + 1
	}
	if cfg.NewQDepth < 0 {
		return cfg, fmt.Errorf("picos: NewQDepth must be >= 0 (0 = unbounded), got %d", cfg.NewQDepth)
	}
	// Sharding partitions the design's DM/VM capacity instead of
	// multiplying it; a slice too thin to hold one full task's worth of
	// dependences could never admit under credits and would stall
	// unrecoverably without them.
	if shardCapacity(cfg.Design, cfg.NumDCT) <= cfg.VMReserve {
		return cfg, fmt.Errorf("picos: %d DCT shards leave %d VM entries per shard, not above the %d-entry admission reserve; use fewer shards or a larger design",
			cfg.NumDCT, shardCapacity(cfg.Design, cfg.NumDCT), cfg.VMReserve)
	}
	return cfg, nil
}

// shardSets returns the DM sets owned by each of numDCT shards: the
// design's total set count partitioned across the shards (at least one
// set each), so adding shards divides capacity instead of growing it.
func shardSets(numDCT int) int {
	if numDCT <= 1 {
		return dmSets
	}
	return max(1, dmSets/numDCT)
}

// shardCapacity returns the DM/VM entries of one shard: its share of
// sets times the design's associativity ("the corresponding VM is ...
// coherent with the DM size" holds per shard).
func shardCapacity(design DMDesign, numDCT int) int {
	return shardSets(numDCT) * design.Ways()
}

// New builds an accelerator from cfg. Zero-valued fields get defaults.
func New(cfg Config) (*Picos, error) {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	p := &Picos{cfg: cfg}
	p.gw = newGateway(p)
	p.arb = newArbiter(p)
	p.ts = newTS(p)
	for i := 0; i < cfg.NumTRS; i++ {
		p.trs = append(p.trs, newTRS(uint8(i), p))
	}
	for i := 0; i < cfg.NumDCT; i++ {
		p.dct = append(p.dct, newDCT(uint8(i), p))
	}
	p.gw.initCredits()
	p.rebuildHorizon()
	return p, nil
}

// Reset returns the accelerator to the state a fresh New(cfg) would
// produce while keeping every allocation it can: task/version/dependence
// memories, queue buffers and the horizon heap are scrubbed in place and
// only reallocated when cfg changes their shape (instance counts, DM
// associativity). A Reset accelerator is indistinguishable from a fresh
// one — including after a wedged run that left queues and memories
// occupied — which is what lets harnesses keep a warm engine pool
// instead of rebuilding the machine per run.
//
//picos:hotpath
func (p *Picos) Reset(cfg Config) error {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return err
	}
	p.cfg = cfg
	p.now = 0
	p.maxBusy = 0
	p.stats = Stats{}
	if cfg.Faults != nil {
		cfg.Faults.Reset()
	}

	for i := cfg.NumTRS; i < len(p.trs); i++ {
		p.trs[i] = nil
	}
	if len(p.trs) > cfg.NumTRS {
		p.trs = p.trs[:cfg.NumTRS]
	}
	for _, t := range p.trs {
		t.reset()
	}
	for len(p.trs) < cfg.NumTRS {
		p.trs = append(p.trs, newTRS(uint8(len(p.trs)), p))
	}

	for i := cfg.NumDCT; i < len(p.dct); i++ {
		p.dct[i] = nil
	}
	if len(p.dct) > cfg.NumDCT {
		p.dct = p.dct[:cfg.NumDCT]
	}
	for _, d := range p.dct {
		d.reset(cfg.Design)
	}
	for len(p.dct) < cfg.NumDCT {
		p.dct = append(p.dct, newDCT(uint8(len(p.dct)), p))
	}

	p.gw.reset()
	p.ts.reset()
	p.arb.reset()
	p.gw.initCredits()
	p.rebuildHorizon()
	return nil
}

// Config returns the configuration the accelerator was built with.
func (p *Picos) Config() Config { return p.cfg }

// Now returns the current cycle.
func (p *Picos) Now() uint64 { return p.now }

// Step advances the model by one cycle, evaluating every unit — the
// plainest possible reference semantics, kept deliberately free of
// scheduling cleverness so the cycle-stepped loop stays the ground
// truth the event-driven fast path is differentially tested against.
// Unit evaluation order is irrelevant because every channel is a
// registered FIFO. (The fast path advances with stepDue instead, which
// skips units the horizon heap proves cannot act; the two are
// equivalent by construction and by the equivalence suite.)
//
//picos:hotpath
func (p *Picos) Step() {
	now := p.now
	for _, d := range p.dct {
		d.step(now)
	}
	for _, t := range p.trs {
		t.step(now)
	}
	p.ts.step(now)
	p.arb.step(now)
	p.gw.step(now)
	p.now++
}

// stepDue advances the model by one cycle like Step, but only evaluates
// units that can possibly act: the horizon key says the unit is due, it
// is dirty (its key may be stale, so stepping is the conservative
// choice; an early-stamped queue can never make a unit act before the
// head's visibility cycle, so a skipped unit's step is provably a
// no-op), or it is an admission-blocked GW / stalled DCT head whose
// per-cycle retry must run for exact stall accounting — and can succeed
// within this very cycle when another unit's release frees resources.
//
//picos:hotpath
func (p *Picos) stepDue() {
	now := p.now
	for _, d := range p.dct {
		if d.headStalled || d.hasParked || p.hkey[d.hid] <= now || p.hdirty[d.hid] {
			d.step(now)
		}
	}
	for _, t := range p.trs {
		if p.hkey[t.hid] <= now || p.hdirty[t.hid] {
			t.step(now)
		}
	}
	if p.hkey[p.ts.hid] <= now || p.hdirty[p.ts.hid] {
		p.ts.step(now)
	}
	if p.hkey[p.arb.hid] <= now || p.hdirty[p.arb.hid] {
		p.arb.step(now)
	}
	if p.gw.blocked || p.hkey[p.gw.hid] <= now || p.hdirty[p.gw.hid] {
		p.gw.step(now)
	}
	p.now++
}

// NextEvent returns the earliest cycle, clamped to the current one, at
// which any unit can make progress without external input: every unit
// exposes the visibility stamp of its next consumable queue head gated
// by its busy timer. ok is false when no unit will ever act again on its
// own — the accelerator is either drained or waiting on an external
// Submit/NotifyFinish (admission-blocked and conflict-stalled heads do
// not count: their per-cycle retries provably re-fail until an external
// finish frees resources, and skipping them is what the fast path is
// for). The answer comes from the incremental horizon heap: only units
// whose state changed since the last call are re-polled, so planning a
// wake is O(dirty · log units), not a rescan of every queue head.
//
//picos:hotpath
func (p *Picos) NextEvent() (uint64, bool) {
	p.flushHorizon()
	at := p.hkey[p.hheap[0]]
	if at == noEvent {
		return 0, false
	}
	if at < p.now {
		at = p.now
	}
	return at, true
}

// ReadyAt returns the cycle the Task Scheduler's current dispatch
// candidate becomes poppable with PopReady, for harnesses that want to
// fast-forward to it. ok is false when the ready store is empty.
func (p *Picos) ReadyAt() (uint64, bool) { return p.ts.nextReadyAt() }

// RunTo advances the model to cycle, with exactly the state and
// statistics that calling Step (cycle - Now()) times would produce: it
// steps the units only at cycles where NextEvent says one can make
// progress and leaps over the dead stretches in between, batch-adding
// the per-cycle stall counters (GW admission blocking, DCT memory
// stalls) the skipped retries would have accrued. A target at or before
// the current cycle is a no-op; the clock never rewinds.
//
//picos:hotpath
func (p *Picos) RunTo(cycle uint64) {
	for p.now < cycle {
		next, ok := p.NextEvent()
		if !ok || next >= cycle {
			p.skipTo(cycle)
			return
		}
		if next > p.now {
			p.skipTo(next)
		}
		p.stepDue()
	}
}

// RunToReady advances like RunTo but returns as soon as a step grows
// the Task Scheduler's ready store, leaving the clock one cycle past
// that step — the first cycle an external observer could notice the new
// ready task, exactly when per-cycle stepping would surface it. Unlike
// RunTo it also returns, without jumping, when the accelerator runs out
// of internal events before cycle: the caller re-plans from the cycle
// reached. Harnesses that would act on a ready task (an idle worker, a
// free link slot) drive bursts with this instead of bouncing after
// every internal event.
//
//picos:hotpath
func (p *Picos) RunToReady(cycle uint64) {
	for p.now < cycle {
		next, ok := p.NextEvent()
		if !ok {
			return
		}
		if next >= cycle {
			p.skipTo(cycle)
			return
		}
		if next > p.now {
			p.skipTo(next)
		}
		ready := p.ts.readyLen()
		p.stepDue()
		if p.ts.readyLen() > ready {
			return
		}
	}
}

// RunOut processes every event the accelerator can still produce
// without external input, leaving the clock at the last one. Harnesses
// call it once all external traffic is finished, to let the final
// finish walks and releases drain.
//
//picos:hotpath
func (p *Picos) RunOut() {
	for {
		next, ok := p.NextEvent()
		if !ok {
			return
		}
		if next > p.now {
			p.skipTo(next)
		}
		p.stepDue()
	}
}

// skipTo advances the clock across a stretch where no unit can make
// progress, charging the stall counters that cycle-by-cycle stepping
// would have charged: a blocked GW retries (and re-fails) admission
// every cycle, and a stalled DCT head retries (and re-fails) its store
// every cycle. Both retries are state-idempotent, so only the counters
// need accounting.
//
//picos:hotpath
func (p *Picos) skipTo(cycle uint64) {
	if cycle <= p.now {
		return
	}
	delta := cycle - p.now
	if p.gw.blocked {
		p.stats.GWBlockedCycles += delta
	}
	for _, d := range p.dct {
		if d.hasParked {
			// The parked retry provably re-fails every skipped cycle (a
			// release would be an event, ending the skip), charging the
			// same per-cycle stall its in-queue wait would have.
			if d.parkedStall == stallVMFull {
				p.stats.VMStallCycles += delta
			} else {
				p.stats.DMConflictStallCycles += delta
			}
		}
		if !d.headStalled {
			continue
		}
		switch d.stall {
		case stallVMFull:
			p.stats.VMStallCycles += delta
		case stallDMSet:
			p.stats.DMConflictStallCycles += delta
		}
	}
	p.now = cycle
}

// StepTo advances the clock without evaluating units; callers use it to
// fast-forward across provably idle stretches. It panics when the
// accelerator is not Idle(): skipping cycles with units active or
// queues pending would silently drop scheduled work, a harness bug that
// otherwise surfaces only as a wedged or subtly wrong schedule far from
// its cause. Admission-blocked and conflict-stalled heads pass Idle()
// (only an external finish can release them), so the skipped stretch
// charges their per-cycle stall counters exactly as stepping through it
// would — the same batching skipTo does for the event-driven fast path.
// A target at or before the current cycle is a no-op (the clock never
// rewinds).
func (p *Picos) StepTo(cycle uint64) {
	if cycle <= p.now {
		return
	}
	if !p.Idle() {
		panic(fmt.Sprintf("picos: StepTo(%d) at cycle %d while the accelerator is busy; fast-forward requires Idle()", cycle, p.now))
	}
	p.skipTo(cycle)
}

// ErrNewQFull is returned by Submit when Config.NewQDepth bounds the
// new-task queue and it is full. The task was NOT queued: the submitter
// owns the descriptor and must retry — dropping it would lose the task,
// which the platform's drain check (submitted vs completed counts)
// surfaces as a harness bug.
var ErrNewQFull = errors.New("picos: new-task queue full")

// ErrUnadmittable is returned by Submit under the avoid-deadlock
// admission policies when the task's dependence set provably cannot fit
// the dependence memory: more of its addresses hash to one (shard, DM
// set) pair than the design has ways, so registration could never
// complete and the task would wedge the fabric. The task was NOT
// queued; the caller decides whether to drop or park the descriptor
// (match with errors.Is).
var ErrUnadmittable = errors.New("picos: task dependence set cannot fit any DM set under this design")

// unadmittable is the avoid-deadlock feasibility check: it reports
// whether any (shard, DM set) pair is demanded by more dependences than
// the design has ways. The check is stateless — it depends only on the
// addresses and the configured hash — so both submit-side loops agree
// and a refused task is refused on every engine identically.
func (p *Picos) unadmittable(deps []trace.Dep) bool {
	ways := p.cfg.Design.Ways()
	if len(deps) <= ways {
		return false
	}
	for i := range deps {
		shard := p.dctOf(deps[i].Addr)
		set := p.dct[shard].dm.index(deps[i].Addr)
		n := 1
		for j := 0; j < i; j++ {
			if p.dctOf(deps[j].Addr) == shard && p.dct[shard].dm.index(deps[j].Addr) == set {
				n++
			}
		}
		if n > ways {
			return true
		}
	}
	return false
}

// Submit pushes a new task into the GW's new-task queue (N1), which
// models the memory-mapped submission buffer. With the default unbounded
// queue it fails only for tasks the hardware cannot represent: more than
// MaxDeps dependences (the TMX holds 15) or duplicate addresses within
// one task. With Config.NewQDepth set it additionally returns ErrNewQFull
// when the buffer is full, and the caller must park the descriptor and
// retry — the backpressure edge of the creation run-ahead pipeline.
//
//picos:hotpath
func (p *Picos) Submit(id uint32, deps []trace.Dep) error {
	if len(deps) > trace.MaxDeps {
		//lint:ignore hotalloc cold rejection path: a malformed task aborts the run, so this never executes in a hot loop
		return fmt.Errorf("picos: task %d has %d dependences; the TMX holds %d", id, len(deps), trace.MaxDeps)
	}
	for i := 0; i < len(deps); i++ {
		for j := i + 1; j < len(deps); j++ {
			if deps[i].Addr == deps[j].Addr {
				//lint:ignore hotalloc cold rejection path: a malformed task aborts the run, so this never executes in a hot loop
				return fmt.Errorf("picos: task %d repeats dependence address %#x", id, deps[i].Addr)
			}
		}
	}
	if p.cfg.Admission.AvoidsDeadlock() && p.unadmittable(deps) {
		return ErrUnadmittable
	}
	if !p.NewQRoom() {
		return ErrNewQFull
	}
	p.gw.newQ.push(submittedTask{id: id, deps: deps}, p.now+1)
	p.markDirty(p.gw.hid)
	p.stats.TasksSubmitted++
	return nil
}

// NewQRoom reports whether the GW new-task queue can accept a Submit
// right now: always true with the default unbounded queue, and true
// while the queue holds fewer than Config.NewQDepth tasks otherwise.
// Platform harnesses use it to decide between submitting and parking.
func (p *Picos) NewQRoom() bool {
	return p.cfg.NewQDepth <= 0 || p.gw.newQ.len() < p.cfg.NewQDepth
}

// NotifyFinish returns a finished task to the GW (F1).
func (p *Picos) NotifyFinish(h TaskHandle) {
	p.gw.finQ.push(h, p.now+1)
	p.markDirty(p.gw.hid)
}

// PopReady hands one ready task to a worker, if any is dispatchable.
func (p *Picos) PopReady() (ReadyTask, bool) {
	return p.ts.popReady(p.now)
}

// ReadyCount returns the number of tasks currently held by the TS.
func (p *Picos) ReadyCount() int { return p.ts.readyLen() }

// InFlight returns the number of tasks resident in TM0 slots.
func (p *Picos) InFlight() int {
	n := 0
	for _, t := range p.trs {
		n += t.tm.live()
	}
	return n
}

// Idle reports that stepping without external input cannot change state:
// every unit is quiescent and every queue is empty, except for
// admission-blocked or conflict-stalled heads that only an external
// finish can release. The check is O(1) on the horizon heap: a unit is
// active exactly when it has a future event or a running busy timer, so
// "no horizon anywhere and the clock has passed every busy deadline" is
// the whole condition.
//
//picos:hotpath
func (p *Picos) Idle() bool {
	p.flushHorizon()
	return p.hkey[p.hheap[0]] == noEvent && p.maxBusy <= p.now
}

// Stats returns the run counters.
func (p *Picos) Stats() *Stats { return &p.stats }

// Drained verifies the leak-freedom invariant at the end of a run: all
// submitted tasks completed, every TM slot is free, every VM entry
// recycled, every DM entry invalid, and no protocol errors occurred.
func (p *Picos) Drained() error {
	if p.stats.ProtocolErrors != 0 {
		return fmt.Errorf("picos: %d protocol errors", p.stats.ProtocolErrors)
	}
	if p.stats.TasksCompleted != p.stats.TasksSubmitted {
		return fmt.Errorf("picos: %d tasks submitted but %d completed",
			p.stats.TasksSubmitted, p.stats.TasksCompleted)
	}
	for i, t := range p.trs {
		if live := t.tm.live(); live != 0 {
			return fmt.Errorf("picos: TRS%d leaks %d TM slots", i, live)
		}
	}
	for i, d := range p.dct {
		if live := d.vm.live(); live != 0 {
			return fmt.Errorf("picos: DCT%d leaks %d VM entries", i, live)
		}
		if live := d.dm.live(); live != 0 {
			return fmt.Errorf("picos: DCT%d leaks %d DM entries", i, live)
		}
		if d.hasParked {
			return fmt.Errorf("picos: DCT%d still parks a conflicting dependence of task %v", i, d.parked.task)
		}
	}
	if p.ts.readyLen() != 0 {
		return fmt.Errorf("picos: TS still holds %d ready tasks", p.ts.readyLen())
	}
	return nil
}

// dctOf partitions addresses across DCT shards with the configured
// ShardHash. The same address must always map to the same shard so its
// whole version chain lives together.
//
//picos:hotpath
func (p *Picos) dctOf(addr uint64) int {
	if len(p.dct) == 1 {
		return 0
	}
	return Shard(p.cfg.ShardHash, addr, len(p.dct))
}

// Shard is the address-to-shard partition function of the dependence
// fabric, exported so workload generators can co-locate or scatter
// dependence addresses across shards on purpose (the patterns package's
// layout=shard does the former).
//
//picos:hotpath
func Shard(hash ShardHash, addr uint64, numDCT int) int {
	if numDCT <= 1 {
		return 0
	}
	if hash == ShardLowBits {
		// Word-address low bits (operand bits [1:0] are constant zero,
		// as for the direct DM index).
		return int((addr >> 2) % uint64(numDCT))
	}
	h := addr
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h % uint64(numDCT))
}
