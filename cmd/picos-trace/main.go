// Command picos-trace generates, inspects and converts task traces.
//
// Usage:
//
//	picos-trace -app cholesky -block 128 -out chol.bin   # generate
//	picos-trace -in chol.bin                              # summarize
//	picos-trace -case 5 -dot                              # Figure 7 graph
//	picos-trace -app heat -block 256 -levels              # ASCII DAG levels
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/synth"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func main() {
	var (
		app     = flag.String("app", "", "benchmark: heat, lu, mlu, sparselu, cholesky, h264dec")
		problem = flag.Int("problem", apps.DefaultProblem, "problem size")
		block   = flag.Int("block", 128, "block size")
		caseNo  = flag.Int("case", 0, "synthetic case 1..7")
		in      = flag.String("in", "", "read a serialized trace")
		out     = flag.String("out", "", "write the trace to this file")
		dot     = flag.Bool("dot", false, "dump the dependence DAG as Graphviz DOT")
		levels  = flag.Bool("levels", false, "dump the DAG as ASCII levels")
	)
	flag.Parse()

	var tr *trace.Trace
	var err error
	switch {
	case *in != "":
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			tr, err = trace.Read(f)
			f.Close()
		}
	case *caseNo != 0:
		tr, err = synth.Case(*caseNo)
	case *app != "":
		var res *apps.TraceResult
		if res, err = apps.Generate(apps.App(*app), *problem, *block); err == nil {
			tr = res.Trace
			fmt.Fprintf(os.Stderr, "kernels: %v\n", res.KernelCounts)
		}
	default:
		err = fmt.Errorf("one of -app, -case or -in is required")
	}
	if err != nil {
		fail(err)
	}
	if err := tr.Validate(); err != nil {
		fail(fmt.Errorf("trace invalid: %w", err))
	}

	s := tr.Summarize()
	g := taskgraph.Build(tr)
	fmt.Printf("%s: %d tasks, %d deps total (%d-%d per task), avg task %.3g cycles\n",
		tr.Name, s.NumTasks, tr.NumDeps(), s.MinDeps, s.MaxDeps, s.AvgTaskSize)
	fmt.Printf("baseline %.4g cycles, critical path %.4g cycles, max parallelism %d, depth %d, edges %d\n",
		float64(tr.Baseline()), float64(g.CriticalPath()), g.MaxParallelism(), g.Depth(), g.NumEdges())

	if *dot {
		if err := g.WriteDOT(os.Stdout, tr.Name); err != nil {
			fail(err)
		}
	}
	if *levels {
		if err := g.ASCIILevels(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if _, err := tr.WriteTo(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "picos-trace: %v\n", err)
	os.Exit(1)
}
