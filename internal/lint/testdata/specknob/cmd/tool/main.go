// Command tool binds every Spec knob except Wake, which is the CLI
// coverage gap the analyzer reports at the field's declaration.
package main

import (
	"flag"

	"skcheck/internal/sim"

	_ "skcheck/internal/badengine"
	_ "skcheck/internal/goodengine"
)

func main() {
	var (
		engine   = flag.String("engine", "good", "engine name")
		workload = flag.String("workload", "", "workload name")
		workers  = flag.Int("workers", 1, "worker count")
		depth    = flag.Int("depth", 0, "queue depth")
		debug    = flag.Bool("debug", false, "debug mode")
	)
	flag.Parse()
	spec := sim.Spec{
		Engine:   *engine,
		Workload: *workload,
		Workers:  *workers,
		Depth:    *depth,
	}
	if *debug {
		spec.Debug = debugPtr(true)
	}
	sim.Run(spec)
}

func debugPtr(v bool) *bool { return &v }
