package patterns

import (
	"strings"
	"testing"

	"repro/internal/picos"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func TestFamiliesListed(t *testing.T) {
	want := []string{
		"all_to_all", "dagfile", "dom", "fft", "nearest", "no_comm",
		"random_nearest", "spread", "stencil_1d", "stencil_1d_periodic",
		"stencil_2d", "tree", "trivial", "wavefront",
	}
	got := Families()
	if len(got) != len(want) {
		t.Fatalf("Families() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Families()[%d] = %s, want %s", i, got[i], want[i])
		}
		if Describe(want[i]) == "" {
			t.Errorf("family %s has no description", want[i])
		}
	}
}

func TestParseDefaultsAndOverrides(t *testing.T) {
	p, err := Parse("stencil_1d")
	if err != nil {
		t.Fatal(err)
	}
	if p.Width != DefaultWidth || p.Steps != DefaultSteps || p.Len != DefaultLen ||
		p.K != DefaultK || p.Seed != DefaultSeed || p.Layout != DefaultLayout ||
		p.Fields != DefaultFields || p.Jitter != 0 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	p, err = Parse("random_nearest?width=32&steps=50&len=2500&k=5&seed=7&jitter=10&fields=1&layout=spread")
	if err != nil {
		t.Fatal(err)
	}
	if p.Width != 32 || p.Steps != 50 || p.Len != 2500 || p.K != 5 || p.Seed != 7 ||
		p.Jitter != 10 || p.Fields != 1 || p.Layout != "spread" {
		t.Fatalf("overrides not applied: %+v", p)
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"nosuchfamily",
		"stencil_1d?width=0",
		"stencil_1d?bogus=1",
		"stencil_1d?width=banana",
		"stencil_1d?layout=heap",
		"fft?width=12",                       // not a power of two
		"stencil_1d?width=4096&steps=４09600", // non-ASCII digit
		"all_to_all?width=10000&steps=10000", // over the task cap
		"stencil_1d?width=1&width=2",         // duplicate key
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"stencil_1d?width=64&steps=100",
		"random_nearest?k=5&seed=9&width=8&steps=4",
		"all_to_all?layout=aligned&width=8&steps=4&len=17",
	} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		q, err := Parse(p.Spec())
		if err != nil {
			t.Fatalf("Parse(Spec(%q)) = Parse(%q): %v", s, p.Spec(), err)
		}
		if p != q {
			t.Errorf("round trip of %q: %+v != %+v", s, p, q)
		}
	}
}

// build is a test helper: parse + build, failing the test on error.
func build(t *testing.T, spec string) *trace.Trace {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildShapesAndValidity(t *testing.T) {
	for _, fam := range Families() {
		if fam == "dagfile" {
			continue // replays a file; covered by the dagfile tests
		}
		spec := fam + "?width=8&steps=5"
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		tr := build(t, spec)
		if want := p.Width * p.Height * 5; len(tr.Tasks) != want {
			t.Errorf("%s: %d tasks, want width*height*steps = %d", fam, len(tr.Tasks), want)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: invalid trace: %v", fam, err)
		}
		if !strings.HasPrefix(tr.Name, "pattern-"+fam) {
			t.Errorf("%s: trace name %q", fam, tr.Name)
		}
		// Step 0 carries no inputs: exactly the owner dependence.
		for i := 0; i < p.Width*p.Height; i++ {
			if n := len(tr.Tasks[i].Deps); n != 1 {
				t.Errorf("%s: step-0 task %d has %d deps, want 1", fam, i, n)
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := build(t, "random_nearest?width=16&steps=8&seed=3&jitter=20")
	b := build(t, "random_nearest?width=16&steps=8&seed=3&jitter=20")
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("lengths differ")
	}
	for i := range a.Tasks {
		if a.Tasks[i].Duration != b.Tasks[i].Duration || len(a.Tasks[i].Deps) != len(b.Tasks[i].Deps) {
			t.Fatalf("task %d differs between identical builds", i)
		}
	}
	c := build(t, "random_nearest?width=16&steps=8&seed=4&jitter=20")
	same := true
	for i := range a.Tasks {
		if len(a.Tasks[i].Deps) != len(c.Tasks[i].Deps) {
			same = false
			break
		}
	}
	if same {
		t.Error("seed change did not change the dependence structure")
	}
}

// TestStencilEdges: with double-buffered fields, interior points read
// self + both neighbors (4 deps with the owner), boundary points lose
// one; the periodic variant wraps so every point has 4. With fields=1
// the self-read aliases the owner inout and dedups away.
func TestStencilEdges(t *testing.T) {
	tr := build(t, "stencil_1d?width=8&steps=2")
	for i := 0; i < 8; i++ {
		task := tr.Tasks[8+i]
		want := 4
		if i == 0 || i == 7 {
			want = 3
		}
		if len(task.Deps) != want {
			t.Errorf("stencil task %d: %d deps, want %d", i, len(task.Deps), want)
		}
	}
	tr = build(t, "stencil_1d_periodic?width=8&steps=2")
	for i := 0; i < 8; i++ {
		if len(tr.Tasks[8+i].Deps) != 4 {
			t.Errorf("periodic stencil task %d: %d deps, want 4", i, len(tr.Tasks[8+i].Deps))
		}
	}
	tr = build(t, "stencil_1d?width=8&steps=2&fields=1")
	if n := len(tr.Tasks[8+3].Deps); n != 3 {
		t.Errorf("in-place stencil task 3: %d deps, want 3 (self-read aliases the inout)", n)
	}
}

// TestDepCapRespected: dom and all_to_all at widths beyond the hardware
// limit truncate to 14 reads + 1 owner = trace.MaxDeps.
func TestDepCapRespected(t *testing.T) {
	for _, fam := range []string{"dom", "all_to_all"} {
		tr := build(t, fam+"?width=64&steps=2")
		maxSeen := 0
		for i := range tr.Tasks {
			if n := len(tr.Tasks[i].Deps); n > maxSeen {
				maxSeen = n
			}
		}
		if maxSeen != trace.MaxDeps {
			t.Errorf("%s/64: max deps %d, want exactly %d (truncated)", fam, maxSeen, trace.MaxDeps)
		}
	}
}

// TestGraphSemantics checks the dependence structure the buffer encoding
// induces, via the oracle graph: all_to_all makes every step a barrier
// (each task depends on all of the previous step), trivial has no edges
// at all, no_comm exactly width independent chains.
func TestGraphSemantics(t *testing.T) {
	g := taskgraph.Build(build(t, "all_to_all?width=4&steps=3"))
	lv := g.Levels()
	for i, l := range lv {
		if want := i / 4; l != want {
			t.Fatalf("all_to_all task %d at level %d, want %d", i, l, want)
		}
	}

	g = taskgraph.Build(build(t, "trivial?width=4&steps=3"))
	for i := 0; i < g.N; i++ {
		if len(g.Succ[i]) != 0 {
			t.Fatalf("trivial task %d has successors %v", i, g.Succ[i])
		}
	}

	g = taskgraph.Build(build(t, "no_comm?width=4&steps=3"))
	for i := 0; i < g.N; i++ {
		switch {
		case i < 4: // step 0: RAW successor (1,i), WAW successor (2,i)
			if len(g.Succ[i]) != 2 || int(g.Succ[i][0]) != i+4 || int(g.Succ[i][1]) != i+8 {
				t.Fatalf("no_comm task %d: succ %v, want [%d %d]", i, g.Succ[i], i+4, i+8)
			}
		case i < 8:
			if len(g.Succ[i]) != 1 || int(g.Succ[i][0]) != i+4 {
				t.Fatalf("no_comm task %d: succ %v, want [%d]", i, g.Succ[i], i+4)
			}
		default:
			if len(g.Succ[i]) != 0 {
				t.Fatalf("no_comm last-step task %d has successors", i)
			}
		}
	}
	// The chains stay independent: point i's chain never crosses point j's.
	lv = g.Levels()
	for i, l := range lv {
		if l != i/4 {
			t.Fatalf("no_comm task %d at level %d, want %d", i, l, i/4)
		}
	}
}

// TestTreeFanOut: the tree frontier doubles per step; once the frontier
// covers the row, each point just chains with itself.
func TestTreeFanOut(t *testing.T) {
	tr := build(t, "tree?width=8&steps=5")
	g := taskgraph.Build(tr)
	preds := func(id int) map[int]bool {
		m := map[int]bool{}
		for i := 0; i < g.N; i++ {
			for _, s := range g.Succ[i] {
				if int(s) == id {
					m[i] = true
				}
			}
		}
		return m
	}
	// Task (t=1, i=1) reads its parent's (point 0) step-0 buffer: its
	// only predecessor is the root, task 0.
	if p := preds(8 + 1); !p[0] || len(p) != 1 {
		t.Fatalf("tree task (1,1) preds %v, want {0}", p)
	}
	// Point 5 becomes active at step 3 (frontier 8): at step 2 (frontier
	// 4) it has no parent read, only the WAW on its own step-0 buffer.
	if p := preds(2*8 + 5); !p[5] || len(p) != 1 {
		t.Fatalf("tree task (2,5) preds %v, want {5}", p)
	}
}

// TestLayoutStrides: the three layouts stride buffers as documented.
func TestLayoutStrides(t *testing.T) {
	for layout, stride := range map[string]uint64{"malloc": 0x8010, "aligned": 0x8000, "spread": 260} {
		tr := build(t, "no_comm?width=4&steps=1&fields=1&layout="+layout)
		a0 := tr.Tasks[0].Deps[0].Addr
		a1 := tr.Tasks[1].Deps[0].Addr
		if a1-a0 != stride {
			t.Errorf("layout %s: stride %d, want %d", layout, a1-a0, stride)
		}
	}
}

func TestJitterBoundsDurations(t *testing.T) {
	tr := build(t, "no_comm?width=32&steps=4&len=1000&jitter=25")
	varied := false
	for i := range tr.Tasks {
		d := tr.Tasks[i].Duration
		if d < 750 || d > 1250 {
			t.Fatalf("task %d duration %d outside ±25%% of 1000", i, d)
		}
		if d != 1000 {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter=25 produced constant durations")
	}
}

// TestStencil2DShape: the 5-point stencil on a width x height grid. With
// double-buffered fields an interior point reads itself and four edge
// neighbors of the previous step (6 deps with the owner); corners lose
// two neighbors.
func TestStencil2DShape(t *testing.T) {
	tr := build(t, "stencil_2d?width=6&height=4&steps=2")
	if len(tr.Tasks) != 6*4*2 {
		t.Fatalf("%d tasks, want 48", len(tr.Tasks))
	}
	step1 := func(x, y int) int { return 24 + y*6 + x }
	if n := len(tr.Tasks[step1(2, 1)].Deps); n != 6 {
		t.Errorf("interior point: %d deps, want 6", n)
	}
	if n := len(tr.Tasks[step1(0, 0)].Deps); n != 4 {
		t.Errorf("corner point: %d deps, want 4 (owner + self + 2 neighbors)", n)
	}
}

// TestWavefrontShape: the dom_2d sweep reads west and north of the
// previous step; the origin reads only itself.
func TestWavefrontShape(t *testing.T) {
	tr := build(t, "wavefront?width=5&height=3&steps=2")
	step1 := func(x, y int) int { return 15 + y*5 + x }
	if n := len(tr.Tasks[step1(2, 1)].Deps); n != 4 {
		t.Errorf("interior point: %d deps, want 4 (owner + self + west + north)", n)
	}
	if n := len(tr.Tasks[step1(0, 0)].Deps); n != 2 {
		t.Errorf("origin: %d deps, want 2", n)
	}
	// Height defaults for the 2-D families, and 1-D families reject it.
	p, err := Parse("wavefront")
	if err != nil || p.Height != DefaultHeight {
		t.Errorf("wavefront default height = %d (err %v), want %d", p.Height, err, DefaultHeight)
	}
	if _, err := Parse("stencil_1d?height=4"); err == nil {
		t.Error("stencil_1d accepted a height")
	}
}

// TestGapsThinTheGrid: every gaps-th point is inactive — no tasks, and
// reads that would name it are skipped.
func TestGapsThinTheGrid(t *testing.T) {
	tr := build(t, "no_comm?width=8&steps=3&gaps=4")
	// Points 3 and 7 are holes: 6 tasks per step.
	if len(tr.Tasks) != 18 {
		t.Fatalf("%d tasks, want 18", len(tr.Tasks))
	}
	tr = build(t, "stencil_1d?width=8&steps=2&gaps=4")
	// Step-1 point 2 reads {1, 2} of the previous step; neighbor 3 is a
	// hole and drops out: owner + 2 reads.
	var task2 = tr.Tasks[6+2] // 6 active points per step, point 2 is the third
	if len(task2.Deps) != 3 {
		t.Errorf("point beside a hole: %d deps, want 3", len(task2.Deps))
	}
	if _, err := Parse("no_comm?gaps=1"); err == nil {
		t.Error("gaps=1 (everything a hole) should be rejected")
	}
	// An all-holes grid cannot happen (gaps >= 2 keeps point 0 active).
	tr = build(t, "trivial?width=2&steps=1&gaps=2")
	if len(tr.Tasks) != 1 {
		t.Errorf("width-2 gaps=2: %d tasks, want 1", len(tr.Tasks))
	}
}

// TestRegionsMultiAddress: regions=k gives every task k inout regions of
// its own point and k read regions per input, the h264dec-deblock shape.
func TestRegionsMultiAddress(t *testing.T) {
	tr := build(t, "no_comm?width=4&steps=2&regions=3")
	t0 := tr.Tasks[0]
	if len(t0.Deps) != 3 {
		t.Fatalf("step-0 task: %d deps, want 3 owner regions", len(t0.Deps))
	}
	for r := 1; r < 3; r++ {
		if d := t0.Deps[r].Addr - t0.Deps[r-1].Addr; d != uint64(1<<40)|0x44 {
			t.Errorf("region stride %#x, want %#x", d, uint64(1<<40)|0x44)
		}
		if !t0.Deps[r].Dir.Writes() {
			t.Errorf("owner region %d is not inout", r)
		}
	}
	t1 := tr.Tasks[4]
	// Owner 3 regions + 3 read regions of the same point's previous
	// step (double-buffered, so distinct addresses).
	if len(t1.Deps) != 6 {
		t.Errorf("step-1 task: %d deps, want 6", len(t1.Deps))
	}
	// The per-task cap still holds when regions multiply wide families.
	tr = build(t, "all_to_all?width=8&steps=2&regions=4")
	for i := range tr.Tasks {
		if len(tr.Tasks[i].Deps) > trace.MaxDeps {
			t.Fatalf("task %d exceeds MaxDeps with %d deps", i, len(tr.Tasks[i].Deps))
		}
	}
}

// TestShardLayoutAlignsDeps: under layout=shard every buffer of point i
// hashes to shard i*shards/points, so a chain family's dependences stay
// on one shard and a local family only crosses at block boundaries.
func TestShardLayoutAlignsDeps(t *testing.T) {
	const shards = 4
	shardOf := func(a uint64) int { return picos.Shard(picos.ShardXorFold, a, shards) }

	// no_comm chains never leave their point, so every task is strictly
	// single-shard, and the per-point shard is the contiguous-block map.
	tr := build(t, "no_comm?width=32&steps=6&layout=shard&shards=4")
	for i := range tr.Tasks {
		want := shardOf(tr.Tasks[i].Deps[0].Addr)
		for _, d := range tr.Tasks[i].Deps {
			if got := shardOf(d.Addr); got != want {
				t.Fatalf("task %d: dep %#x on shard %d, want %d", i, d.Addr, got, want)
			}
		}
	}
	for i := 0; i < 32; i++ {
		if got, want := shardOf(tr.Tasks[i].Deps[0].Addr), i*shards/32; got != want {
			t.Fatalf("point %d owner buffer on shard %d, want %d", i, got, want)
		}
	}

	// stencil_1d: only tasks whose window touches a block boundary may
	// cross; with width 32 over 4 shards that is 2 points per internal
	// boundary, and the malloc layout scatters far more for contrast.
	crossing := func(tr *trace.Trace) int {
		n := 0
		for i := range tr.Tasks {
			first := shardOf(tr.Tasks[i].Deps[0].Addr)
			for _, d := range tr.Tasks[i].Deps[1:] {
				if shardOf(d.Addr) != first {
					n++
					break
				}
			}
		}
		return n
	}
	st := build(t, "stencil_1d?width=32&steps=6&layout=shard&shards=4")
	if got, limit := crossing(st), 2*(shards-1)*6; got > limit {
		t.Errorf("shard layout: %d tasks cross shards, want <= %d boundary tasks", got, limit)
	}
	ml := build(t, "stencil_1d?width=32&steps=6")
	if cs, cm := crossing(st), crossing(ml); cs >= cm {
		t.Errorf("shard layout crosses %d, malloc %d — alignment gained nothing", cs, cm)
	}
}

// TestShardParamValidation: shards requires layout=shard, which in turn
// rejects multi-region tasks (their replicas hash to arbitrary shards).
func TestShardParamValidation(t *testing.T) {
	if _, err := Parse("no_comm?shards=4"); err == nil {
		t.Error("shards without layout=shard accepted")
	}
	if _, err := Parse("no_comm?layout=shard&regions=2"); err == nil {
		t.Error("layout=shard with regions=2 accepted")
	}
	p, err := Parse("no_comm?layout=shard")
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != DefaultShards {
		t.Errorf("default shards = %d, want %d", p.Shards, DefaultShards)
	}
	for _, s := range []string{"no_comm?layout=shard&shards=8&width=8&steps=2"} {
		p, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Parse(p.Spec())
		if err != nil || p != q {
			t.Errorf("round trip of %q: %+v != %+v (%v)", s, p, q, err)
		}
	}
}

// TestFamilyKind: every pattern task is labeled with its family as the
// task kind, so worker-class affinities can target families.
func TestFamilyKind(t *testing.T) {
	tr := build(t, "fft?width=8&steps=4")
	if len(tr.Kinds) != 1 || tr.Kinds[0] != "fft" {
		t.Fatalf("Kinds = %v, want [fft]", tr.Kinds)
	}
	for i := range tr.Tasks {
		if tr.Tasks[i].Kind != 1 {
			t.Fatalf("task %d kind %d, want 1", i, tr.Tasks[i].Kind)
		}
	}
	if got := tr.KindOf(0); got != "fft" {
		t.Errorf("KindOf(0) = %q, want fft", got)
	}
}
