// Package asciiplot renders small line charts as text, so the
// reproduction harness can show Figure 8/9/11-style speedup-vs-workers
// plots directly in a terminal next to the numeric tables.
package asciiplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labelled line.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Chart is a renderable plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 56)
	Height int // plot area rows (default 16)
	Series []Series
}

// markers assigns one rune per series, in order.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render writes the chart. Series are drawn in order; later series
// overwrite earlier ones where they collide.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 56
	}
	if height <= 0 {
		height = 16
	}
	minX, maxX, minY, maxY, any := c.bounds()
	if !any {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	// Y axis always starts at 0 for speedup plots unless data dips below.
	if minY > 0 {
		minY = 0
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, m rune) {
		col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		row := int(math.Round((y - minY) / (maxY - minY) * float64(height-1)))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		grid[height-1-row][col] = m
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		// Linear interpolation between consecutive points.
		for i := 0; i+1 < len(s.Points); i++ {
			a, b := s.Points[i], s.Points[i+1]
			steps := width / max(1, len(s.Points)-1)
			for t := 0; t <= steps; t++ {
				f := float64(t) / float64(max(1, steps))
				plot(a.X+(b.X-a.X)*f, a.Y+(b.Y-a.Y)*f, m)
			}
		}
		for _, p := range s.Points {
			plot(p.X, p.Y, m)
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.1f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", minY)
		case (height - 1) / 2:
			label = fmt.Sprintf("%7.1f ", minY+(maxY-minY)/2)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "        %-8.3g%s%8.3g\n",
		minX, strings.Repeat(" ", max(0, width-16)), maxX); err != nil {
		return err
	}
	if c.XLabel != "" {
		pad := (width - len(c.XLabel)) / 2
		if pad < 0 {
			pad = 0
		}
		if _, err := fmt.Fprintf(w, "        %s%s\n", strings.Repeat(" ", pad), c.XLabel); err != nil {
			return err
		}
	}
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Label))
	}
	_, err := fmt.Fprintf(w, "        legend: %s\n", strings.Join(legend, "   "))
	return err
}

func (c *Chart) bounds() (minX, maxX, minY, maxY float64, any bool) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			any = true
		}
	}
	return
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
