package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParsePlan parses a fault-plan string: clauses joined by "+", each
//
//	layer:kind=value[@seedN|@cycleN][:shardK][:workerK][:trsK][:lenL]
//
// Examples:
//
//	axi:drop=0.01@seed7
//	axi:delay=0.02x300@seed9
//	axi:dup=0.005@seed3
//	worker:failstop=2@cycle50000
//	worker:slowdown=4x@cycle10000:len20000:worker1
//	dct:vmleak=0.001@seed5:shard0
//	dct:creditleak=0.002@seed6
//	dct:slowdown=4x:shard1
//	trs:stall=5000@cycle20000:trs0
//	arb:stall=4000@cycle15000
//	gw:stall=3000@cycle10000
//
// The empty string parses to nil (no faults). Probabilistic clauses
// without an explicit @seedN get a deterministic per-position default
// seed, so the same plan string always means the same run. Malformed
// plans return errors wrapping ErrBadPlan, never panic.
func ParsePlan(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &Plan{Source: s}
	for i, part := range strings.Split(s, "+") {
		c, err := parseClause(strings.TrimSpace(part), i)
		if err != nil {
			return nil, err
		}
		p.Clauses = append(p.Clauses, c)
	}
	return p, nil
}

// clauseErr wraps ErrBadPlan with the offending clause text.
func clauseErr(cl, format string, args ...interface{}) error {
	return fmt.Errorf("%w: clause %q: %s", ErrBadPlan, cl, fmt.Sprintf(format, args...))
}

func parseClause(cl string, pos int) (Clause, error) {
	c := Clause{Shard: -1, Worker: -1, TRS: -1}
	if cl == "" {
		return c, clauseErr(cl, "empty clause")
	}
	head, rest, ok := strings.Cut(cl, ":")
	if !ok {
		return c, clauseErr(cl, "missing ':' after layer")
	}
	c.Layer = head

	// Split the remainder at the first '=': kind=value, then trailing
	// @trigger and :selector parts attached to the value token.
	kind, val, ok := strings.Cut(rest, "=")
	if !ok || kind == "" {
		return c, clauseErr(cl, "missing kind=value")
	}
	if i := strings.IndexAny(kind, ":@"); i >= 0 {
		return c, clauseErr(cl, "kind %q may not contain ':' or '@'", kind)
	}
	c.Kind = kind

	// Peel :selectors off the tail (value or trigger may carry them).
	fields := strings.Split(val, ":")
	val = fields[0]
	selectors := fields[1:]

	// Peel the @trigger off the value.
	var trigger string
	val, trigger, _ = strings.Cut(val, "@")
	if val == "" {
		return c, clauseErr(cl, "missing value")
	}

	if err := parseValue(&c, cl, val); err != nil {
		return c, err
	}
	if trigger != "" {
		if err := parseTrigger(&c, cl, trigger); err != nil {
			return c, err
		}
	}
	for _, sel := range selectors {
		if err := parseSelector(&c, cl, sel); err != nil {
			return c, err
		}
	}
	if err := validateClause(&c, cl, pos); err != nil {
		return c, err
	}
	return c, nil
}

// parseValue interprets the value token for the clause's layer:kind.
func parseValue(c *Clause, cl, val string) error {
	switch {
	case c.Layer == LayerAXI && (c.Kind == KindDrop || c.Kind == KindDup):
		return parseRate(c, cl, val)
	case c.Layer == LayerAXI && c.Kind == KindDelay:
		// RxD: probability x extra cycles.
		r, d, ok := strings.Cut(val, "x")
		if !ok {
			return clauseErr(cl, "axi:delay wants rate x cycles (e.g. 0.01x300)")
		}
		if err := parseRate(c, cl, r); err != nil {
			return err
		}
		n, err := strconv.ParseUint(d, 10, 32)
		if err != nil || n == 0 {
			return clauseErr(cl, "bad delay cycles %q", d)
		}
		c.Delay = n
		return nil
	case c.Layer == LayerWorker && c.Kind == KindFailstop:
		n, err := strconv.ParseUint(val, 10, 16)
		if err != nil {
			return clauseErr(cl, "bad worker index %q", val)
		}
		c.Worker = int(n)
		return nil
	case (c.Layer == LayerWorker || c.Layer == LayerDCT) && c.Kind == KindSlowdown:
		f, ok := strings.CutSuffix(val, "x")
		if !ok {
			return clauseErr(cl, "slowdown wants a multiplier like 4x")
		}
		n, err := strconv.ParseUint(f, 10, 16)
		if err != nil || n < 1 {
			return clauseErr(cl, "bad slowdown factor %q", val)
		}
		c.Factor = n
		return nil
	case c.Layer == LayerDCT && (c.Kind == KindVMLeak || c.Kind == KindCreditLeak):
		return parseRate(c, cl, val)
	case (c.Layer == LayerTRS || c.Layer == LayerArb || c.Layer == LayerGW) && c.Kind == KindStall:
		n, err := strconv.ParseUint(val, 10, 32)
		if err != nil || n == 0 {
			return clauseErr(cl, "bad stall cycles %q", val)
		}
		c.Delay = n
		return nil
	}
	return clauseErr(cl, "unknown fault %s:%s", c.Layer, c.Kind)
}

func parseRate(c *Clause, cl, val string) error {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(r) || math.IsInf(r, 0) || r < 0 || r > 1 {
		return clauseErr(cl, "bad rate %q (want 0..1)", val)
	}
	c.Rate = r
	return nil
}

func parseTrigger(c *Clause, cl, trig string) error {
	switch {
	case strings.HasPrefix(trig, "seed"):
		n, err := strconv.ParseUint(trig[len("seed"):], 10, 64)
		if err != nil {
			return clauseErr(cl, "bad trigger %q", trig)
		}
		c.Seed = n
	case strings.HasPrefix(trig, "cycle"):
		n, err := strconv.ParseUint(trig[len("cycle"):], 10, 64)
		if err != nil {
			return clauseErr(cl, "bad trigger %q", trig)
		}
		c.Cycle = n
	default:
		return clauseErr(cl, "unknown trigger %q (want seedN or cycleN)", trig)
	}
	return nil
}

func parseSelector(c *Clause, cl, sel string) error {
	for _, s := range []struct {
		prefix string
		bits   int
		set    func(uint64)
	}{
		{"shard", 8, func(v uint64) { c.Shard = int(v) }},
		{"worker", 16, func(v uint64) { c.Worker = int(v) }},
		{"trs", 8, func(v uint64) { c.TRS = int(v) }},
		{"len", 64, func(v uint64) { c.Len = v }},
	} {
		if !strings.HasPrefix(sel, s.prefix) {
			continue
		}
		n, err := strconv.ParseUint(sel[len(s.prefix):], 10, s.bits)
		if err != nil {
			return clauseErr(cl, "bad selector %q", sel)
		}
		s.set(n)
		return nil
	}
	return clauseErr(cl, "unknown selector %q (want shardK, workerK, trsK or lenL)", sel)
}

// validateClause enforces per-kind invariants and stamps default seeds
// so probabilistic clauses are deterministic even without @seedN.
func validateClause(c *Clause, cl string, pos int) error {
	probabilistic := c.Kind == KindDrop || c.Kind == KindDelay || c.Kind == KindDup ||
		c.Kind == KindVMLeak || c.Kind == KindCreditLeak
	if probabilistic && c.Seed == 0 {
		c.Seed = uint64(pos) + 1
	}
	if c.Layer == LayerAXI && (c.Shard >= 0 || c.Worker >= 0 || c.TRS >= 0) {
		return clauseErr(cl, "axi faults take no shard/worker/trs selector")
	}
	if (c.Layer == LayerArb || c.Layer == LayerGW) && (c.Shard >= 0 || c.Worker >= 0 || c.TRS >= 0) {
		// One arbiter, one gateway: there is no unit to select.
		return clauseErr(cl, "%s faults take no shard/worker/trs selector", c.Layer)
	}
	if c.Layer == LayerWorker && c.Kind == KindSlowdown && c.Factor == 1 {
		return clauseErr(cl, "slowdown factor 1x injects nothing")
	}
	return nil
}

// ParseRecovery parses a recovery-policy string: policies joined by
// "+", each one of
//
//	retry=N[:backoffB]   bounded link retransmission, linear backoff
//	regrant              re-enqueue tasks of fail-stopped workers
//	degrade=C            refuse the gateway's blocked head after C cycles
//
// The empty string parses to the zero Recovery (no recovery).
// Malformed strings return errors wrapping ErrBadRecovery.
func ParseRecovery(s string) (Recovery, error) {
	var r Recovery
	s = strings.TrimSpace(s)
	if s == "" {
		return r, nil
	}
	for _, part := range strings.Split(s, "+") {
		part = strings.TrimSpace(part)
		key, val, hasVal := strings.Cut(part, "=")
		switch key {
		case "retry":
			if !hasVal {
				return r, fmt.Errorf("%w: retry wants a count (retry=N[:backoffB])", ErrBadRecovery)
			}
			cnt, backoff, hasBackoff := strings.Cut(val, ":")
			n, err := strconv.ParseUint(cnt, 10, 8)
			if err != nil || n == 0 {
				return r, fmt.Errorf("%w: bad retry count %q", ErrBadRecovery, cnt)
			}
			r.Retry = int(n)
			r.Backoff = DefaultBackoff
			if hasBackoff {
				b, ok := strings.CutPrefix(backoff, "backoff")
				v, err := strconv.ParseUint(b, 10, 32)
				if !ok || err != nil || v == 0 {
					return r, fmt.Errorf("%w: bad backoff %q", ErrBadRecovery, backoff)
				}
				r.Backoff = v
			}
		case "regrant":
			if hasVal {
				return r, fmt.Errorf("%w: regrant takes no value", ErrBadRecovery)
			}
			r.Regrant = true
		case "degrade":
			if !hasVal {
				return r, fmt.Errorf("%w: degrade wants a cycle threshold (degrade=C)", ErrBadRecovery)
			}
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil || v == 0 {
				return r, fmt.Errorf("%w: bad degrade threshold %q", ErrBadRecovery, val)
			}
			r.Degrade = v
		default:
			return r, fmt.Errorf("%w: unknown policy %q (want retry, regrant or degrade)", ErrBadRecovery, part)
		}
	}
	return r, nil
}
