package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// IgnoresKnobsDirective lets an engine package declare which sim.Spec
// knobs it deliberately does not honor:
//
//	//picos:ignores-knobs Design,Policy,Wake <reason...>
//
// The analyzer validates the list both ways: a listed knob the engine
// actually reads is a stale entry, and a listed name that is not a Spec
// field is a typo. Both are findings.
const IgnoresKnobsDirective = "//picos:ignores-knobs"

// SpecKnob enforces that every sim.Spec field is actually threaded
// through the system: read (or explicitly disclaimed) by every
// registered engine, and bound by at least one CLI flag in a command
// package. The Spec exists so a sweep is "a slice of plain data" — a
// knob an engine silently drops, or a knob no binary can set, breaks
// that contract invisibly: the run accepts the spec and simulates
// something else.
//
// Mechanics: the analyzer finds the package that defines Spec (package
// name "sim"), records its field set, which fields the sim framework
// itself consumes (reads outside spec.go — Engine and Workload routing,
// workload building), and what each Spec method reads (so an engine
// calling FastPath() is credited with FastForward). Engine packages are
// those that call sim.Register; each must read every non-framework
// field or list it in a //picos:ignores-knobs directive. Command
// packages are scanned for field bindings (keyed Spec literals, field
// assignments, &spec.Field passed to flag.*Var); a field bound by no
// command is reported at its declaration.
var SpecKnob = &Analyzer{
	Name:   "specknob",
	Doc:    "every sim.Spec field must reach each engine's config and at least one CLI flag",
	Run:    runSpecKnob,
	Finish: finishSpecKnob,
}

// specEngineUse records one engine package's relationship to Spec.
type specEngineUse struct {
	pkgPath     string
	registerPos token.Pos
	reads       map[string]bool
	methodCalls map[string]bool
	ignores     map[string]token.Pos // knob -> directive position
	ignorePos   token.Pos
}

// specFacts is the cross-package scratch of the analyzer.
type specFacts struct {
	simPath     string
	specType    *types.TypeName
	fields      []string
	fieldPos    map[string]token.Pos
	simConsumed map[string]bool     // read by the sim framework outside spec.go
	methodReads map[string][]string // Spec method -> receiver fields it reads
	cliBound    map[string]bool     // bound in some command package
	engines     []*specEngineUse
}

func specKnobFacts(pass *Pass) *specFacts {
	return pass.Suite.Fact("specknob", func() any {
		return &specFacts{
			fieldPos:    map[string]token.Pos{},
			simConsumed: map[string]bool{},
			methodReads: map[string][]string{},
			cliBound:    map[string]bool{},
		}
	}).(*specFacts)
}

func runSpecKnob(pass *Pass) {
	facts := specKnobFacts(pass)
	pkg := pass.Pkg

	if pkg.Name == "sim" && pkg.Types.Scope().Lookup("Spec") != nil {
		collectSpecShape(pass, facts)
		return
	}
	if facts.specType == nil {
		return // no Spec in this module; nothing to enforce
	}
	if pkg.IsCommand() {
		collectCLIBindings(pass, facts)
		return
	}
	if pos, ok := registersEngine(pkg, facts.simPath); ok {
		collectEngineUse(pass, facts, pos)
	}
}

// collectSpecShape records the Spec field set, the fields the sim
// framework consumes itself, and the per-method field reads.
func collectSpecShape(pass *Pass, facts *specFacts) {
	pkg := pass.Pkg
	obj, ok := pkg.Types.Scope().Lookup("Spec").(*types.TypeName)
	if !ok {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	facts.simPath = pkg.Path
	facts.specType = obj
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		facts.fields = append(facts.fields, f.Name())
		facts.fieldPos[f.Name()] = f.Pos()
	}

	specFile := pass.Suite.Fset.Position(obj.Pos()).Filename
	for _, file := range pkg.Files {
		filename := pass.Suite.Fset.Position(file.Pos()).Filename
		if filename == specFile {
			// spec.go: record what each Spec method reads of its receiver,
			// so callers of the method are credited with those fields.
			for _, decl := range file.Decls {
				fn, isFn := decl.(*ast.FuncDecl)
				if !isFn || fn.Recv == nil || fn.Body == nil || receiverTypeName(fn) != "Spec" {
					continue
				}
				recv := receiverName(fn)
				seen := map[string]bool{}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					sel, isSel := n.(*ast.SelectorExpr)
					if !isSel {
						return true
					}
					if base, isId := sel.X.(*ast.Ident); isId && base.Name == recv {
						if _, isField := facts.fieldPos[sel.Sel.Name]; isField && !seen[sel.Sel.Name] {
							seen[sel.Sel.Name] = true
							facts.methodReads[fn.Name.Name] = append(facts.methodReads[fn.Name.Name], sel.Sel.Name)
						}
					}
					return true
				})
			}
			continue
		}
		// Any other sim file: field reads here are framework consumption
		// (Engine/Workload routing, workload construction).
		ast.Inspect(file, func(n ast.Node) bool {
			sel, isSel := n.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			if isSpecBase(pkg.Info, facts, sel.X) {
				if _, isField := facts.fieldPos[sel.Sel.Name]; isField {
					facts.simConsumed[sel.Sel.Name] = true
				}
			}
			return true
		})
	}
}

// isSpecBase reports whether expr has (a pointer to) the sim.Spec type.
func isSpecBase(info *types.Info, facts *specFacts, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil || facts.specType == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == facts.specType
}

// registersEngine reports whether the package calls sim.Register and
// returns the call position (the anchor for missing-knob findings).
func registersEngine(pkg *Package, simPath string) (token.Pos, bool) {
	for _, file := range pkg.Files {
		var pos token.Pos
		found := false
		ast.Inspect(file, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p, name, ok := calleePkgFunc(pkg.Info, call); ok && p == simPath && name == "Register" {
				pos, found = call.Pos(), true
				return false
			}
			return true
		})
		if found {
			return pos, true
		}
	}
	return token.NoPos, false
}

// collectEngineUse records which Spec fields an engine package reads,
// which Spec methods it calls, and its ignores-knobs declaration.
func collectEngineUse(pass *Pass, facts *specFacts, registerPos token.Pos) {
	pkg := pass.Pkg
	use := &specEngineUse{
		pkgPath:     pkg.Path,
		registerPos: registerPos,
		reads:       map[string]bool{},
		methodCalls: map[string]bool{},
		ignores:     map[string]token.Pos{},
	}
	for _, file := range pkg.Files {
		collectIgnoresKnobs(pass, facts, use, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isSpecBase(pkg.Info, facts, sel.X) {
				return true
			}
			if _, isField := facts.fieldPos[sel.Sel.Name]; isField {
				use.reads[sel.Sel.Name] = true
			} else {
				use.methodCalls[sel.Sel.Name] = true
			}
			return true
		})
	}
	facts.engines = append(facts.engines, use)
}

// collectIgnoresKnobs parses //picos:ignores-knobs directives from the
// file's comments (package doc or any declaration doc).
func collectIgnoresKnobs(pass *Pass, facts *specFacts, use *specEngineUse, file *ast.File) {
	for _, group := range file.Comments {
		for _, c := range group.List {
			text := strings.TrimSpace(c.Text)
			rest, ok := strings.CutPrefix(text, IgnoresKnobsDirective)
			if !ok {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				pass.Reportf(c.Pos(), "%s needs a knob list and a reason", IgnoresKnobsDirective)
				continue
			}
			use.ignorePos = c.Pos()
			for _, knob := range strings.Split(fields[0], ",") {
				knob = strings.TrimSpace(knob)
				if knob == "" {
					continue
				}
				if _, isField := facts.fieldPos[knob]; !isField {
					pass.Reportf(c.Pos(), "%s names %s, which is not a sim.Spec field", IgnoresKnobsDirective, knob)
					continue
				}
				use.ignores[knob] = c.Pos()
			}
		}
	}
}

// collectCLIBindings records Spec fields a command package binds: keyed
// Spec composite literals, assignments to spec fields, and &spec.Field
// (the flag.*Var idiom).
func collectCLIBindings(pass *Pass, facts *specFacts) {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CompositeLit:
				if !isSpecLitType(pkg.Info, facts, node) {
					return true
				}
				for _, elt := range node.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							facts.cliBound[key.Name] = true
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && isSpecBase(pkg.Info, facts, sel.X) {
						facts.cliBound[sel.Sel.Name] = true
					}
				}
			case *ast.UnaryExpr:
				if node.Op == token.AND {
					if sel, ok := ast.Unparen(node.X).(*ast.SelectorExpr); ok && isSpecBase(pkg.Info, facts, sel.X) {
						facts.cliBound[sel.Sel.Name] = true
					}
				}
			}
			return true
		})
	}
}

// isSpecLitType reports whether a composite literal builds a sim.Spec.
func isSpecLitType(info *types.Info, facts *specFacts, lit *ast.CompositeLit) bool {
	t := info.TypeOf(lit)
	if t == nil || facts.specType == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == facts.specType
}

// finishSpecKnob runs the whole-module accounting once every package has
// been scanned.
func finishSpecKnob(pass *Pass) {
	facts := specKnobFacts(pass)
	if facts.specType == nil {
		return
	}

	for _, use := range facts.engines {
		// Credit method-mediated reads: an engine calling FastPath() reads
		// FastForward.
		reads := map[string]bool{}
		for f := range use.reads {
			reads[f] = true
		}
		for m := range use.methodCalls {
			for _, f := range facts.methodReads[m] {
				reads[f] = true
			}
		}
		var missing []string
		for _, f := range facts.fields {
			switch {
			case facts.simConsumed[f]:
				// The framework routes/consumes it before the engine runs.
			case reads[f]:
				// Honored.
			case use.ignores[f] != token.NoPos:
				// Explicitly disclaimed.
			default:
				missing = append(missing, f)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			pass.Reportf(use.registerPos,
				"engine %s silently drops sim.Spec knobs %s; thread them through its config or declare them with %s",
				use.pkgPath, strings.Join(missing, ", "), IgnoresKnobsDirective)
		}
		// Stale disclaimers: the engine now reads a knob it claims to ignore.
		var stale []string
		for f := range use.ignores {
			if reads[f] {
				stale = append(stale, f)
			}
		}
		sort.Strings(stale)
		for _, f := range stale {
			pass.Reportf(use.ignores[f],
				"%s lists %s but engine %s reads it; remove the stale entry",
				IgnoresKnobsDirective, f, use.pkgPath)
		}
	}

	for _, f := range facts.fields {
		if !facts.cliBound[f] {
			pass.Reportf(facts.fieldPos[f],
				"sim.Spec.%s is not bound by any CLI flag; a knob no binary can set only exists in tests", f)
		}
	}
}
