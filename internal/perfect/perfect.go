// Package perfect implements the paper's Perfect Simulator: a
// zero-overhead list scheduler that executes the trace's dependence DAG
// on P workers, showing "the available parallelism peak" — the roofline
// every real runtime is measured against in Figure 11.
package perfect

import (
	"container/heap"
	"fmt"
	"sync"

	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// Result is the outcome of a roofline run.
type Result struct {
	Workers  int
	Makespan uint64
	Baseline uint64
	Speedup  float64
	Start    []uint64
	Finish   []uint64
}

// runHeap orders running tasks by finish time.
type runHeap []runItem

type runItem struct {
	finish uint64
	task   int32
}

func (h runHeap) Len() int           { return len(h) }
func (h runHeap) Less(i, j int) bool { return h[i].finish < h[j].finish }
func (h runHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)        { *h = append(*h, x.(runItem)) }
func (h *runHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// nextEvent reports the cycle of the earliest in-flight completion —
// the run's event horizon, the perfect-scheduler counterpart of
// picos.NextEvent. The roofline scheduler is inherently event-driven,
// so sim.Spec's FastForward knob has nothing to switch here.
func (h runHeap) nextEvent() (uint64, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].finish, true
}

// runScratch is the per-run working state of the list scheduler, pooled
// across runs so steady-state sweeps re-simulate without reallocating
// the run heap and per-task bookkeeping; only the Start/Finish arrays
// that escape into the Result are fresh.
type runScratch struct {
	remaining []int32
	ready     []int32
	running   runHeap
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// grab sizes the scratch for n tasks, reusing capacity where possible.
func (s *runScratch) grab(n int) {
	if cap(s.remaining) < n {
		s.remaining = make([]int32, n)
	} else {
		s.remaining = s.remaining[:n]
	}
	s.ready = s.ready[:0]
	s.running = s.running[:0]
}

// Run schedules the trace on `workers` zero-overhead workers: a task
// starts the moment a worker is free and all its predecessors have
// finished; ties dispatch in creation order.
func Run(tr *trace.Trace, workers int) (*Result, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("perfect: need at least 1 worker, got %d", workers)
	}
	g := taskgraph.Build(tr)
	n := g.N
	res := &Result{
		Workers:  workers,
		Baseline: tr.Baseline(),
		Start:    make([]uint64, n),
		Finish:   make([]uint64, n),
	}
	if n == 0 {
		return res, nil
	}

	s := scratchPool.Get().(*runScratch)
	s.grab(n)
	remaining := s.remaining
	ready := s.ready // FIFO in becoming-ready order
	for i := 0; i < n; i++ {
		remaining[i] = int32(len(g.Pred[i]))
		if remaining[i] == 0 {
			ready = append(ready, int32(i))
		}
	}

	running := &s.running
	defer func() {
		// Hand the (possibly grown) buffers back to the pool, emptied —
		// error paths included.
		s.ready = ready[:0]
		*running = (*running)[:0]
		scratchPool.Put(s)
	}()
	now := uint64(0)
	free := workers
	scheduled := 0
	readyHead := 0

	for scheduled < n || running.Len() > 0 {
		// Start everything we can at the current time.
		for free > 0 && readyHead < len(ready) {
			t := ready[readyHead]
			readyHead++
			res.Start[t] = now
			res.Finish[t] = now + g.Durations[t]
			heap.Push(running, runItem{finish: res.Finish[t], task: t})
			free--
			scheduled++
		}
		next, ok := running.nextEvent()
		if !ok {
			if readyHead >= len(ready) && scheduled < n {
				return nil, fmt.Errorf("perfect: dependence cycle detected at %d/%d tasks", scheduled, n)
			}
			continue
		}
		// Advance to the next completion horizon (batch all at the same
		// cycle).
		now = next
		it := heap.Pop(running).(runItem)
		complete := func(t int32) {
			for _, s := range g.Succ[t] {
				remaining[s]--
				if remaining[s] == 0 {
					ready = append(ready, s)
				}
			}
			free++
		}
		complete(it.task)
		for running.Len() > 0 && (*running)[0].finish == now {
			complete(heap.Pop(running).(runItem).task)
		}
	}

	for _, f := range res.Finish {
		if f > res.Makespan {
			res.Makespan = f
		}
	}
	if res.Makespan > 0 {
		res.Speedup = float64(res.Baseline) / float64(res.Makespan)
	}
	return res, nil
}
