package apps

import (
	"fmt"

	"repro/internal/trace"
)

// genCholesky generates the blocked left-looking Cholesky factorization
// of Figure 2 of the paper (BAR "cholesky"), over the lower triangle of a
// B x B block grid:
//
//	for k:
//	  potrf(A[k][k])                 inout(Akk)                    1 dep
//	  for i>k:  trsm(A[k][k],A[i][k])  in(Akk)  inout(Aik)         2 deps
//	  for i>k:
//	    for j in k+1..i-1: gemm       in(Aik) in(Ajk) inout(Aij)   3 deps
//	    syrk(A[i][k],A[i][i])          in(Aik) inout(Aii)          2 deps
//
// Task count is B(B+1)(B+2)/6 — 120/816/5984/45760 for 2048 over
// 256/128/64/32 — and dependences per task are 1-3, matching Table I.
func genCholesky(problem, block int) (*TraceResult, error) {
	if err := checkBlocking(problem, block); err != nil {
		return nil, err
	}
	b := problem / block
	blockBytes := uint64(block) * uint64(block) * 8
	al := newAllocator(0x40000000)

	// Lower-triangular block storage, allocated row-major like a packed
	// blocked layout.
	addr := make([][]uint64, b)
	for i := 0; i < b; i++ {
		addr[i] = make([]uint64, i+1)
		for j := 0; j <= i; j++ {
			addr[i][j] = al.block(blockBytes)
		}
	}

	tr := &trace.Trace{Name: fmt.Sprintf("cholesky-%d-%d", problem, block)}
	var weights []float64
	counts := map[string]int{}
	add := func(kernel string, w float64, deps ...trace.Dep) {
		id := uint32(len(tr.Tasks))
		tr.Tasks = append(tr.Tasks, trace.Task{ID: id, Deps: deps, Kind: tr.KindID(kernel)})
		weights = append(weights, float64(jitter(uint64(w*1000), uint64(id)+0xC401, 10)))
		counts[kernel]++
	}

	for k := 0; k < b; k++ {
		// potrf: ~bs^3/3 flops.
		add("potrf", 1.0/3, trace.Dep{Addr: addr[k][k], Dir: trace.InOut})
		for i := k + 1; i < b; i++ {
			// trsm: ~bs^3 flops.
			add("trsm", 1.0,
				trace.Dep{Addr: addr[k][k], Dir: trace.In},
				trace.Dep{Addr: addr[i][k], Dir: trace.InOut})
		}
		for i := k + 1; i < b; i++ {
			for j := k + 1; j < i; j++ {
				// gemm: ~2 bs^3 flops.
				add("gemm", 2.0,
					trace.Dep{Addr: addr[i][k], Dir: trace.In},
					trace.Dep{Addr: addr[j][k], Dir: trace.In},
					trace.Dep{Addr: addr[i][j], Dir: trace.InOut})
			}
			// syrk: ~bs^3 flops.
			add("syrk", 1.0,
				trace.Dep{Addr: addr[i][k], Dir: trace.In},
				trace.Dep{Addr: addr[i][i], Dir: trace.InOut})
		}
	}

	durs, refSeq := scaleDurations(Cholesky, block, weights)
	for i := range tr.Tasks {
		tr.Tasks[i].Duration = durs[i]
	}
	tr.RefSeqCycles = refSeq
	return &TraceResult{Trace: tr, KernelCounts: counts}, nil
}
