// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): Table I-IV and Figures 1, 8, 9, 10 and 11.
// Each experiment returns a Table — a titled grid of formatted cells —
// that prints in the same layout as the paper, so paper-vs-reproduction
// comparison is a side-by-side read (recorded in EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Experiment names, in paper order.
var Names = []string{
	"table1", "table2", "table3", "table4",
	"fig1", "fig8", "fig9", "fig10", "fig11",
}

// Options tunes experiment sizes. The zero value reproduces the paper's
// full configuration; Quick trims worker sweeps and block sizes for CI.
type Options struct {
	Quick bool
}

// Run executes one experiment by name.
func Run(name string, opt Options) ([]*Table, error) {
	switch name {
	case "table1":
		return Table1()
	case "table2":
		return Table2(opt)
	case "table3":
		return Table3()
	case "table4":
		return Table4(opt)
	case "fig1":
		return Fig1(opt)
	case "fig8":
		return Fig8(opt)
	case "fig9":
		return Fig9(opt)
	case "fig10":
		return Fig10(opt)
	case "fig11":
		return Fig11(opt)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", name, strings.Join(Names, ", "))
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func e2(v float64) string { return fmt.Sprintf("%.2e", v) }
func d(v uint64) string   { return fmt.Sprintf("%d", v) }
