// Package sim is the one public surface for running simulations: every
// execution engine the paper compares (the Picos accelerator in its
// three HIL integration modes, the software-only Nanos++ runtime and the
// Perfect roofline scheduler) registers itself here under a string name,
// every workload (the six real benchmarks, the seven synthetic capacity
// cases and serialized trace files) is resolved through a registry, and
// one declarative Spec captures every knob a run can turn. On top of the
// single-run API sits Sweep, which expands a Grid of specs and executes
// it across a bounded pool of goroutines with deterministic output
// ordering — the {engine x workload x mode x worker-count} matrices of
// Tables I-IV and Figures 6-11 become one call.
//
// Engines live with the models they wrap and register in their package
// init; import repro/internal/engines (blank import) to get all of the
// built-ins:
//
//	import _ "repro/internal/engines"
//
//	res, err := sim.Run(sim.Spec{Engine: "picos-full", Workload: "cholesky", Block: 128})
//	fmt.Printf("speedup %.2fx\n", res.Speedup)
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// Engine is one execution model: it schedules a trace's task graph under
// a Spec and reports a shared Result. Implementations register
// themselves with Register (typically from package init) and must be
// safe for concurrent Run calls — Sweep invokes them from many
// goroutines.
type Engine interface {
	// Name is the registry key, e.g. "picos-hw" or "nanos".
	Name() string
	// Run executes the trace. The returned Result may leave the
	// Engine/Workload labels empty; sim.Run stamps them.
	Run(tr *trace.Trace, spec Spec) (*Result, error)
}

// StreamEngine is implemented by engines that can feed from a
// trace.Source under a bounded descriptor window (Spec.Window > 0)
// instead of indexing a materialized trace. RunStream must keep at most
// Spec.Window created-but-unretired descriptors live, so arbitrarily
// long sources replay in O(window) heap.
type StreamEngine interface {
	Engine
	RunStream(src trace.Source, spec Spec) (*Result, error)
}

var (
	regMu     sync.RWMutex
	engines   = map[string]Engine{}
	workloads = map[string]WorkloadFunc{}
)

// Register adds an engine to the registry. It panics on an empty or
// duplicate name — registration is an init-time programming contract,
// not a runtime condition.
func Register(e Engine) {
	name := e.Name()
	if name == "" {
		panic("sim: Register called with an empty engine name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := engines[name]; dup {
		panic("sim: duplicate engine registration: " + name)
	}
	engines[name] = e
}

// Lookup resolves an engine by registry name.
func Lookup(name string) (Engine, error) {
	regMu.RLock()
	e, ok := engines[name]
	var have []string
	if !ok {
		for n := range engines {
			have = append(have, n)
		}
	}
	regMu.RUnlock()
	if !ok {
		sort.Strings(have)
		return nil, fmt.Errorf("sim: unknown engine %q (registered: %s; blank-import repro/internal/engines for the built-ins)",
			name, strings.Join(have, ", "))
	}
	return e, nil
}

// Engines lists the registered engine names, sorted.
func Engines() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run builds the spec's workload and executes it on the spec's engine.
// With a bounded window (Spec.Window > 0) the workload is built as a
// lazy Source and streamed, never materialized.
func Run(spec Spec) (*Result, error) {
	spec = spec.WithDefaults()
	if spec.Window > 0 {
		src, err := BuildWorkloadSource(spec)
		if err != nil {
			return nil, err
		}
		return RunSource(src, spec)
	}
	tr, err := BuildWorkload(spec)
	if err != nil {
		return nil, err
	}
	return RunTrace(tr, spec)
}

// RunTrace executes an already-built trace on the spec's engine. Use it
// for hand-built or procedurally generated traces that are not in the
// workload registry. A bounded window routes the trace through the
// streaming driver (wrapped as a Source), so every RunTrace caller —
// sweeps, the equivalence matrix, property suites — honors Spec.Window.
func RunTrace(tr *trace.Trace, spec Spec) (*Result, error) {
	spec = spec.WithDefaults()
	if spec.Window > 0 {
		return RunSource(trace.FromTrace(tr), spec)
	}
	e, err := Lookup(spec.Engine)
	if err != nil {
		return nil, err
	}
	res, err := e.Run(tr, spec)
	if err != nil {
		return nil, fmt.Errorf("sim: %s on %s: %w", e.Name(), tr.Name, err)
	}
	res.Engine = e.Name()
	if res.Workload == "" {
		res.Workload = tr.Name
	}
	return res, nil
}

// RunSource executes a streaming task source on the spec's engine.
// With Window == 0 (unbounded) the source is materialized and runs the
// legacy whole-trace path — byte-identical to RunTrace by construction.
// A positive window requires the engine to implement StreamEngine.
func RunSource(src trace.Source, spec Spec) (*Result, error) {
	spec = spec.WithDefaults()
	e, err := Lookup(spec.Engine)
	if err != nil {
		return nil, err
	}
	if spec.Window <= 0 {
		tr, err := trace.Materialize(src)
		if err != nil {
			return nil, fmt.Errorf("sim: %s on %s: %w", e.Name(), src.Name(), err)
		}
		res, err := e.Run(tr, spec)
		if err != nil {
			return nil, fmt.Errorf("sim: %s on %s: %w", e.Name(), tr.Name, err)
		}
		res.Engine = e.Name()
		if res.Workload == "" {
			res.Workload = tr.Name
		}
		return res, nil
	}
	se, ok := e.(StreamEngine)
	if !ok {
		return nil, fmt.Errorf("sim: engine %s cannot stream (window %d set, but it does not implement StreamEngine)",
			e.Name(), spec.Window)
	}
	res, err := se.RunStream(src, spec)
	if err != nil {
		return nil, fmt.Errorf("sim: %s on %s: %w", e.Name(), src.Name(), err)
	}
	res.Engine = e.Name()
	if res.Workload == "" {
		res.Workload = src.Name()
	}
	return res, nil
}

// Verify checks a result's schedule against the dependence oracle: no
// task may start before every predecessor has finished.
func Verify(tr *trace.Trace, res *Result) error {
	return taskgraph.Build(tr).CheckSchedule(res.Start, res.Finish)
}
