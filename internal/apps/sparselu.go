package apps

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// genSparseLu generates the BAR/BOTS sparseLU factorization: an LU over a
// B x B grid of block pointers where only some blocks are allocated. The
// symbolic algorithm is the real one, including fill-in (bmod allocates
// absent blocks):
//
//	for k:  lu0(A[k][k])                      inout(Akk)           1 dep
//	  for j>k, Akj != null:  fwd(Akk, Akj)    in(Akk)  inout(Akj)  2 deps
//	  for i>k, Aik != null:  bdiv(Akk, Aik)   in(Akk)  inout(Aik)  2 deps
//	  for i>k, j>k, Aik && Akj:
//	           bmod(Aik, Akj, Aij)            in(Aik) in(Akj) inout(Aij)
//
// so tasks carry 1-3 dependences exactly as Table I reports. The initial
// sparsity pattern is deterministic; its density is auto-tuned per block
// count so the generated task totals land near Table I's 34/212/1512/11472
// (the BAR input matrix is not distributed with the paper, so density is
// the one free parameter — see DESIGN.md, substitutions).
func genSparseLu(problem, block int) (*TraceResult, error) {
	if err := checkBlocking(problem, block); err != nil {
		return nil, err
	}
	b := problem / block

	target := 0
	if e, ok := tableI[SparseLu][block]; ok && problem == DefaultProblem {
		target = e.numTasks
	}
	density := tuneDensity(b, target)
	return sparseLuWithDensity(problem, block, density)
}

// sparsePattern reports whether block (i,j) of a B x B grid is initially
// allocated at the given density threshold in [0,1]. The diagonal is
// always allocated (lu0 requires it); off-diagonal blocks are chosen by a
// deterministic hash so patterns are reproducible and "clumpy" like real
// sparse matrices rather than banded.
func sparsePattern(b int, density float64, i, j int) bool {
	if i == j {
		return true
	}
	h := splitmix64(uint64(i)*0x1F123BB5<<16 + uint64(j)*0x5BD1E995 + uint64(b))
	return float64(h%(1<<20))/float64(1<<20) < density
}

// simulateCount runs the symbolic factorization and returns the task count.
func simulateCount(b int, density float64) int {
	alive := make([]bool, b*b)
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			alive[i*b+j] = sparsePattern(b, density, i, j)
		}
	}
	n := 0
	for k := 0; k < b; k++ {
		n++ // lu0
		for j := k + 1; j < b; j++ {
			if alive[k*b+j] {
				n++ // fwd
			}
		}
		for i := k + 1; i < b; i++ {
			if alive[i*b+k] {
				n++ // bdiv
			}
		}
		for i := k + 1; i < b; i++ {
			if !alive[i*b+k] {
				continue
			}
			for j := k + 1; j < b; j++ {
				if alive[k*b+j] {
					n++ // bmod
					alive[i*b+j] = true
				}
			}
		}
	}
	return n
}

// tuneDensity bisects the initial density so the symbolic task count is
// as close as possible to target. With target 0 it returns the default
// density that reproduces Table I at 2048/128.
func tuneDensity(b, target int) float64 {
	if target == 0 {
		return 0.30
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if simulateCount(b, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Pick whichever bound lands closer.
	cl, ch := simulateCount(b, lo), simulateCount(b, hi)
	if abs(cl-target) <= abs(ch-target) {
		return lo
	}
	return hi
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sparseLuWithDensity(problem, block int, density float64) (*TraceResult, error) {
	b := problem / block
	blockBytes := uint64(block) * uint64(block) * 8
	al := newAllocator(0x30000000)

	// Allocate initial blocks in row-major order like the real genmat,
	// then fill-in blocks in discovery order (heap order at run time).
	addr := make([]uint64, b*b)
	alive := make([]bool, b*b)
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			if sparsePattern(b, density, i, j) {
				alive[i*b+j] = true
				addr[i*b+j] = al.mallocBlock(blockBytes)
			}
		}
	}
	ensure := func(i, j int) uint64 {
		if !alive[i*b+j] {
			alive[i*b+j] = true
			addr[i*b+j] = al.mallocBlock(blockBytes)
		}
		return addr[i*b+j]
	}

	tr := &trace.Trace{Name: fmt.Sprintf("sparselu-%d-%d", problem, block)}
	var weights []float64
	counts := map[string]int{}
	add := func(kernel string, w float64, deps ...trace.Dep) {
		id := uint32(len(tr.Tasks))
		tr.Tasks = append(tr.Tasks, trace.Task{ID: id, Deps: deps, Kind: tr.KindID(kernel)})
		weights = append(weights, float64(jitter(uint64(w*1000), uint64(id)+0x51AB, 10)))
		counts[kernel]++
	}

	for k := 0; k < b; k++ {
		kk := addr[k*b+k]
		add("lu0", 1.0/3, trace.Dep{Addr: kk, Dir: trace.InOut})
		for j := k + 1; j < b; j++ {
			if alive[k*b+j] {
				add("fwd", 0.5,
					trace.Dep{Addr: kk, Dir: trace.In},
					trace.Dep{Addr: addr[k*b+j], Dir: trace.InOut})
			}
		}
		for i := k + 1; i < b; i++ {
			if alive[i*b+k] {
				add("bdiv", 0.5,
					trace.Dep{Addr: kk, Dir: trace.In},
					trace.Dep{Addr: addr[i*b+k], Dir: trace.InOut})
			}
		}
		for i := k + 1; i < b; i++ {
			if !alive[i*b+k] {
				continue
			}
			for j := k + 1; j < b; j++ {
				if !alive[k*b+j] {
					continue
				}
				aij := ensure(i, j)
				add("bmod", 1.0,
					trace.Dep{Addr: addr[i*b+k], Dir: trace.In},
					trace.Dep{Addr: addr[k*b+j], Dir: trace.In},
					trace.Dep{Addr: aij, Dir: trace.InOut})
			}
		}
	}

	durs, refSeq := scaleDurations(SparseLu, block, weights)
	for i := range tr.Tasks {
		tr.Tasks[i].Duration = durs[i]
	}
	tr.RefSeqCycles = refSeq
	return &TraceResult{Trace: tr, KernelCounts: counts}, nil
}

// SparseLuDensitySweep reports (density, tasks) pairs for documentation
// and tests.
func SparseLuDensitySweep(b int, densities []float64) [][2]float64 {
	out := make([][2]float64, 0, len(densities))
	ds := append([]float64(nil), densities...)
	sort.Float64s(ds)
	for _, d := range ds {
		out = append(out, [2]float64{d, float64(simulateCount(b, d))})
	}
	return out
}
