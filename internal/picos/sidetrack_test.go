package picos

import (
	"testing"

	"repro/internal/trace"
)

// sameSetAddr returns the i-th distinct word address mapping to
// direct-hash set 0: multiples of 256 bytes keep bits [7:2] zero.
func sameSetAddr(i int) uint64 { return 0x1000 + uint64(i)*0x100 }

// TestConflictSidetrackKeepsRegistering: with the default sidetrack
// policy, a DM-set conflict parks one dependence while later tasks on
// other sets keep registering and becoming ready; the pre-sidetrack
// block policy stalls everything behind the conflict head-of-line.
func TestConflictSidetrackKeepsRegistering(t *testing.T) {
	for _, tc := range []struct {
		name        string
		policy      ConflictPolicy
		wantReady   int // tasks dispatchable while the conflict persists
		wantParkeds int
	}{
		{"sidetrack", ConflictSidetrack, 9, 1},
		{"block", ConflictBlock, 8, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Design = DM8Way // direct hash: 8 ways per set
			cfg.Conflict = tc.policy
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Tasks 0..8 each write a distinct address of set 0: the
			// ninth (task 8) conflicts and can never be ready while the
			// set is full. Task 9 writes set 1 and becomes ready only
			// under the sidetrack policy (8 + 1 ready vs 8 blocked).
			for i := 0; i < 9; i++ {
				if err := p.Submit(uint32(i), []trace.Dep{{Addr: sameSetAddr(i), Dir: trace.InOut}}); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Submit(9, []trace.Dep{{Addr: 0x2004, Dir: trace.InOut}}); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2000; i++ {
				p.Step()
			}
			ready := p.ReadyCount()
			if ready != tc.wantReady {
				t.Errorf("%d tasks ready, want %d", ready, tc.wantReady)
			}
			if st := p.Stats(); st.DMConflicts != 1 {
				t.Errorf("DMConflicts = %d, want 1 (the same dependence, counted once)", st.DMConflicts)
			}
			parked := 0
			for _, d := range p.dct {
				if d.hasParked {
					parked++
				}
			}
			if parked != tc.wantParkeds {
				t.Errorf("%d parked dependences, want %d", parked, tc.wantParkeds)
			}
			// Draining set 0 releases the conflict: finish every ready
			// task until all ten ran.
			seen := map[uint32]bool{}
			for i := 0; i < 200000 && len(seen) < 10; i++ {
				if rt, ok := p.PopReady(); ok {
					seen[rt.ID] = true
					p.NotifyFinish(rt.Handle)
				}
				p.Step()
			}
			if len(seen) != 10 {
				t.Fatalf("only %d/10 tasks became ready after draining", len(seen))
			}
			p.RunOut()
			if err := p.Drained(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSidetrackSecondSetCountsDistinctConflict: while one dependence is
// parked on set 0, a head conflicting on a DIFFERENT saturated set is a
// distinct conflict episode and counts; a head waiting on the SAME set
// is part of the parked episode and does not.
func TestSidetrackSecondSetCountsDistinctConflict(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Design = DM8Way
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := uint32(0)
	fill := func(set uint64, n int) {
		for i := 0; i < n; i++ {
			addr := 0x1000 + set*0x4 + uint64(i)*0x100
			if err := p.Submit(id, []trace.Dep{{Addr: addr, Dir: trace.InOut}}); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	fill(0, 9) // set 0: eight fit, the ninth parks (1 conflict)
	fill(1, 9) // set 1: eight fit, the ninth stalls the head (2nd conflict)
	for i := 0; i < 5000; i++ {
		p.Step()
	}
	if st := p.Stats(); st.DMConflicts != 2 {
		t.Errorf("DMConflicts = %d, want 2 (one per saturated set)", st.DMConflicts)
	}
}

// TestSidetrackResetScrubs: Reset must clear a parked dependence so a
// pooled engine cannot leak it into the next run.
func TestSidetrackResetScrubs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Design = DM8Way
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := p.Submit(uint32(i), []trace.Dep{{Addr: sameSetAddr(i), Dir: trace.InOut}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		p.Step()
	}
	if !p.dct[0].hasParked {
		t.Fatal("expected a parked dependence before Reset")
	}
	if err := p.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if p.dct[0].hasParked || p.dct[0].parkedRetryAt != 0 {
		t.Error("Reset leaked sidetrack state")
	}
	if p.ReadyCount() != 0 || p.InFlight() != 0 {
		t.Error("Reset left live tasks")
	}
}
