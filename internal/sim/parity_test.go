package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/hil"
	"repro/internal/nanos"
	"repro/internal/perfect"
	"repro/internal/picos"
	"repro/internal/sim"
	"repro/internal/synth"

	_ "repro/internal/engines"
)

// TestPicosEngineParity: the registry-driven sim.Run must produce
// byte-identical schedules to a direct hil.Run with the equivalent
// config, on every synthetic case and every integration mode.
func TestPicosEngineParity(t *testing.T) {
	modes := []struct {
		engine string
		mode   hil.Mode
	}{
		{"picos-hw", hil.HWOnly},
		{"picos-comm", hil.HWComm},
		{"picos-full", hil.FullSystem},
	}
	for _, m := range modes {
		for c := 1; c <= 7; c++ {
			workload := fmt.Sprintf("case%d", c)
			t.Run(m.engine+"/"+workload, func(t *testing.T) {
				tr, err := synth.Case(c)
				if err != nil {
					t.Fatal(err)
				}
				cfg := hil.DefaultConfig()
				cfg.Mode = m.mode
				want, err := hil.Run(tr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sim.Run(sim.Spec{Engine: m.engine, Workload: workload})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Start, want.Start) || !reflect.DeepEqual(got.Finish, want.Finish) {
					t.Fatal("schedule differs from direct hil.Run")
				}
				if !reflect.DeepEqual(got.Order, want.Order) {
					t.Fatal("start order differs from direct hil.Run")
				}
				if got.Makespan != want.Makespan || got.Speedup != want.Speedup ||
					got.FirstStart != want.FirstStart || got.ThrTask != want.ThrTask {
					t.Fatalf("aggregates differ: got makespan %d L1st %d, want %d / %d",
						got.Makespan, got.FirstStart, want.Makespan, want.FirstStart)
				}
				if got.Stats == nil || *got.Stats != want.Stats {
					t.Fatal("stats differ from direct hil.Run")
				}
			})
		}
	}
}

// TestNanosEngineParity: sim's nanos entry vs a direct nanos.Run.
func TestNanosEngineParity(t *testing.T) {
	for c := 1; c <= 7; c++ {
		workload := fmt.Sprintf("case%d", c)
		t.Run(workload, func(t *testing.T) {
			tr, err := synth.Case(c)
			if err != nil {
				t.Fatal(err)
			}
			want, err := nanos.Run(tr, nanos.Config{Workers: sim.DefaultWorkers})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Run(sim.Spec{Engine: "nanos", Workload: workload})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Start, want.Start) || !reflect.DeepEqual(got.Finish, want.Finish) {
				t.Fatal("schedule differs from direct nanos.Run")
			}
			if got.Makespan != want.Makespan || got.LockBusy != want.LockBusy {
				t.Fatalf("aggregates differ: got %d/%d, want %d/%d",
					got.Makespan, got.LockBusy, want.Makespan, want.LockBusy)
			}
		})
	}
}

// TestPerfectEngineParity: sim's perfect entry vs a direct perfect.Run.
func TestPerfectEngineParity(t *testing.T) {
	for c := 1; c <= 7; c++ {
		workload := fmt.Sprintf("case%d", c)
		t.Run(workload, func(t *testing.T) {
			tr, err := synth.Case(c)
			if err != nil {
				t.Fatal(err)
			}
			want, err := perfect.Run(tr, sim.DefaultWorkers)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Run(sim.Spec{Engine: "perfect", Workload: workload})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Start, want.Start) || !reflect.DeepEqual(got.Finish, want.Finish) {
				t.Fatal("schedule differs from direct perfect.Run")
			}
			if got.Makespan != want.Makespan || got.Speedup != want.Speedup {
				t.Fatalf("makespan %d vs %d", got.Makespan, want.Makespan)
			}
		})
	}
}

// TestSpecKnobParity: the spec's string knobs must reach the accelerator
// config — a LIFO 16-way run through the registry matches the same
// direct hil.Run, and differs from the default configuration.
func TestSpecKnobParity(t *testing.T) {
	tr, err := synth.Case(7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hil.DefaultConfig()
	cfg.Workers = 4
	cfg.Picos.Design = picos.DM16Way
	cfg.Picos.Policy = picos.SchedLIFO
	cfg.Picos.NumTRS = 2
	cfg.Picos.NumDCT = 2
	want, err := hil.Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.Run(sim.Spec{
		Engine: "picos-hw", Workload: "case7", Workers: 4,
		Design: "16way", Policy: "lifo", NumTRS: 2, NumDCT: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Start, want.Start) {
		t.Fatal("knobbed schedule differs from direct hil.Run")
	}
	def, err := sim.Run(sim.Spec{Engine: "picos-hw", Workload: "case7", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(def.Start, got.Start) {
		t.Fatal("knobs had no effect: LIFO/16way run matches the default schedule")
	}
}
