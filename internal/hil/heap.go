package hil

// Small hand-rolled min-heaps for the runner's worker bookkeeping.
// container/heap would box every element through an interface; these
// keep dispatch and retirement allocation-free.

// intHeap is a min-heap of worker indices: the idle-worker freelist,
// popping the lowest index first to match the reference loop's linear
// dispatch scan.
type intHeap []int

func (h *intHeap) push(v int) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *intHeap) pop() int {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && s[right] < s[left] {
			least = right
		}
		if s[i] <= s[least] {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// dueHeap is a min-heap of busy workers ordered by (until, idx): the
// completion order per-cycle stepping produces (earlier finish cycles
// first, worker-index order within a cycle).
type dueHeap []workerDue

func (a workerDue) less(b workerDue) bool {
	if a.until != b.until {
		return a.until < b.until
	}
	return a.idx < b.idx
}

func (h *dueHeap) push(v workerDue) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].less(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *dueHeap) pop() workerDue {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && s[right].less(s[left]) {
			least = right
		}
		if !s[least].less(s[i]) {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}
