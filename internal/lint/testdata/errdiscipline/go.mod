module edcheck

go 1.21
