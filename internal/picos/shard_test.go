package picos

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// shardDeps builds n distinct dependences whose addresses all hash to
// the given shard under the machine's configured shard hash.
func shardDeps(t *testing.T, p *Picos, shard, n int) []trace.Dep {
	t.Helper()
	deps := make([]trace.Dep, 0, n)
	for addr := uint64(0x1000); len(deps) < n; addr += 4 {
		if p.dctOf(addr) == shard {
			deps = append(deps, trace.Dep{Addr: addr, Dir: trace.Out})
		}
		if addr > 0x100000 {
			t.Fatalf("no %d addresses found for shard %d", n, shard)
		}
	}
	return deps
}

// TestShardCapacityIsPartitioned: sharding divides the design's DM/VM
// capacity, it does not multiply it — the per-shard memories and the
// gateway's per-shard credit pools must all be sized from the shard's
// partition of sets.
func TestShardCapacityIsPartitioned(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		p, err := New(Config{NumDCT: n})
		if err != nil {
			t.Fatal(err)
		}
		wantSets := dmSets / n
		wantCap := wantSets * p.Config().Design.Ways()
		total := 0
		for _, u := range p.dct {
			if u.dm.numSets != wantSets {
				t.Errorf("%d shards: DM has %d sets, want %d", n, u.dm.numSets, wantSets)
			}
			if len(u.vm.entries) != wantCap {
				t.Errorf("%d shards: VM has %d entries, want %d", n, len(u.vm.entries), wantCap)
			}
			total += len(u.vm.entries)
		}
		if total != p.Config().Design.Capacity() {
			t.Errorf("%d shards: fabric VM totals %d entries, want the design's %d", n, total, p.Config().Design.Capacity())
		}
		for i, c := range p.gw.vmCredits {
			if want := wantCap - p.Config().VMReserve; c != want {
				t.Errorf("%d shards: shard %d granted %d credits, want %d", n, i, c, want)
			}
		}
	}
}

// TestShardConfigValidation: a shard count that leaves no admission
// headroom per shard must be rejected at construction, not discovered
// as a wedge at runtime.
func TestShardConfigValidation(t *testing.T) {
	if _, err := New(Config{NumDCT: 64}); err == nil {
		t.Fatal("64 shards of an 8-way design (8 VM entries per shard) must be rejected")
	} else if !strings.Contains(err.Error(), "admission reserve") {
		t.Fatalf("unexpected rejection: %v", err)
	}
	// 16 shards x 4 sets x 8 ways = 32 entries per shard still clears the
	// 16-entry reserve.
	if _, err := New(Config{NumDCT: 16}); err != nil {
		t.Fatalf("16 shards must be accepted: %v", err)
	}
}

// TestAdmitPerShardRoom is the regression test for the per-shard room
// check: admission is a two-phase reserve/commit, and one saturated
// shard must block a task even when every other shard is empty — the
// room check is against the shard's own partition of the VM, never the
// pooled total. A failed reserve or a failed TRS-slot commit must roll
// the reservation back completely.
func TestAdmitPerShardRoom(t *testing.T) {
	p, err := New(Config{NumDCT: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := p.gw

	// Saturate shard 0's credit pool; shard 1 stays untouched (empty).
	g.vmCredits[0] = 3
	before1 := g.vmCredits[1]

	deps := append(shardDeps(t, p, 0, 4), shardDeps(t, p, 1, 2)...)
	if _, _, ok := g.admit(deps); ok {
		t.Fatal("task with 4 deps admitted against 3 credits on shard 0 (pooled-total over-admission)")
	}
	if g.vmCredits[0] != 3 || g.vmCredits[1] != before1 {
		t.Fatalf("failed reserve not rolled back: credits (%d, %d), want (3, %d)",
			g.vmCredits[0], g.vmCredits[1], before1)
	}

	// The empty shard still admits on its own.
	if _, _, ok := g.admit(shardDeps(t, p, 1, 4)); !ok {
		t.Fatal("empty shard blocked by its saturated sibling")
	}
	if g.vmCredits[1] != before1-4 {
		t.Fatalf("committed admission debited %d credits, want 4", before1-g.vmCredits[1])
	}

	// Commit failure (no TRS slot) must also roll back the reservation.
	for {
		if _, ok := p.trs[0].allocSlot(); !ok {
			break
		}
	}
	before0, before1 := g.vmCredits[0], g.vmCredits[1]
	if _, _, ok := g.admit(shardDeps(t, p, 1, 2)); ok {
		t.Fatal("admitted with every TM0 slot taken")
	}
	if g.vmCredits[0] != before0 || g.vmCredits[1] != before1 {
		t.Fatalf("failed commit not rolled back: credits (%d, %d), want (%d, %d)",
			g.vmCredits[0], g.vmCredits[1], before0, before1)
	}
}

// TestShardedRunStaysWithinPartition runs a shard-skewed workload (every
// address on one shard of four) end to end: the schedule must stay
// legal, no shard's VM may ever hold more live versions than its
// partition, and admission control — not VM exhaustion — must be what
// throttles the skew.
func TestShardedRunStaysWithinPartition(t *testing.T) {
	cfg := Config{NumDCT: 4}
	probe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 60 distinct shard-0 addresses, two writers each, interleaved so
	// many versions are live at once.
	addrs := shardDeps(t, probe, 0, 60)
	var tasks []trace.Task
	for round := 0; round < 2; round++ {
		for i, d := range addrs {
			tasks = append(tasks, trace.Task{
				ID:       uint32(round*len(addrs) + i),
				Duration: 40,
				Deps:     []trace.Dep{d},
			})
		}
	}
	tr := &trace.Trace{Name: "shard-skew", Tasks: tasks}
	res := runTrace(t, tr, cfg, 8)
	res.verify(t, tr)

	perShard := shardCapacity(cfg.Design, 4)
	if res.p.Stats().MaxVMLive > perShard-res.p.Config().VMReserve {
		t.Fatalf("a shard held %d live versions, beyond its %d-credit partition",
			res.p.Stats().MaxVMLive, perShard-res.p.Config().VMReserve)
	}
	if got := res.p.Stats().TasksCompleted; got != uint64(len(tasks)) {
		t.Fatalf("completed %d of %d tasks", got, len(tasks))
	}
}
