package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The whole loader shares one file set and one source-based importer for
// the standard library: srcimporter caches every stdlib package it
// type-checks, so repeated Loads (the driver, then each testdata
// mini-module in the tests) pay the stdlib cost once per process. The
// importer is not documented as concurrency-safe, so Load serializes.
var (
	loadMu      sync.Mutex
	sharedFset  = token.NewFileSet()
	stdImporter = importer.ForCompiler(sharedFset, "source", nil)
)

// moduleImporter resolves module-internal imports from the packages
// type-checked so far (Load checks in topological order, so a dependency
// is always ready first) and everything else through the stdlib source
// importer.
type moduleImporter struct {
	modulePath string
	local      map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.modulePath || strings.HasPrefix(path, m.modulePath+"/") {
		if pkg, ok := m.local[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("lint: module package %s not loaded (import cycle or load order bug)", path)
	}
	return stdImporter.Import(path)
}

// parsedPkg is a package between parsing and type-checking.
type parsedPkg struct {
	path    string
	dir     string
	name    string
	files   []*ast.File
	imports []string // module-internal imports only
}

// Load walks the module rooted at dir (the directory holding go.mod),
// parses every non-test package outside testdata trees, and type-checks
// them in dependency order. Test files are deliberately excluded: the
// invariants the suite enforces (determinism, hot-path allocation
// discipline) apply to shipped code, and tests legitimately use
// math/rand, fmt and friends.
func Load(dir string) (*Suite, error) {
	loadMu.Lock()
	defer loadMu.Unlock()

	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	suite := &Suite{Fset: sharedFset, ModulePath: modulePath, Root: root}

	var parsed []*parsedPkg
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		// A nested go.mod starts a different module; stay out of it.
		if path != root {
			if _, statErr := os.Stat(filepath.Join(path, "go.mod")); statErr == nil {
				return filepath.SkipDir
			}
		}
		pkg, perr := parseDir(suite, root, modulePath, path)
		if perr != nil {
			return perr
		}
		if pkg != nil {
			parsed = append(parsed, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	ordered, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{modulePath: modulePath, local: map[string]*types.Package{}}
	for _, p := range ordered {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, terr := conf.Check(p.path, sharedFset, p.files, info)
		if terr != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", p.path, terr)
		}
		imp.local[p.path] = tpkg
		pkg := &Package{
			Path:  p.path,
			Dir:   p.dir,
			Name:  p.name,
			Files: p.files,
			Types: tpkg,
			Info:  info,
		}
		suite.Packages = append(suite.Packages, pkg)
		for _, f := range p.files {
			suite.collectSuppressions(f)
		}
	}
	return suite, nil
}

// parseDir parses the non-test Go files of one directory into a
// parsedPkg; nil when the directory holds no Go files.
func parseDir(suite *Suite, root, modulePath, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modulePath
	if rel != "." {
		importPath = modulePath + "/" + filepath.ToSlash(rel)
	}

	p := &parsedPkg{path: importPath, dir: dir}
	seenImports := map[string]bool{}
	for _, n := range names {
		file, perr := parser.ParseFile(suite.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if perr != nil {
			return nil, fmt.Errorf("lint: %w", perr)
		}
		if p.name == "" {
			p.name = file.Name.Name
		} else if p.name != file.Name.Name {
			return nil, fmt.Errorf("lint: %s: mixed package names %s and %s", dir, p.name, file.Name.Name)
		}
		p.files = append(p.files, file)
		for _, im := range file.Imports {
			path := strings.Trim(im.Path.Value, `"`)
			if (path == modulePath || strings.HasPrefix(path, modulePath+"/")) && !seenImports[path] {
				seenImports[path] = true
				p.imports = append(p.imports, path)
			}
		}
	}
	return p, nil
}

// topoSort orders packages so every package follows its module-internal
// imports, ties broken by import path for deterministic analysis order.
func topoSort(pkgs []*parsedPkg) ([]*parsedPkg, error) {
	byPath := map[string]*parsedPkg{}
	for _, p := range pkgs {
		byPath[p.path] = p
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].path < pkgs[j].path })

	var ordered []*parsedPkg
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *parsedPkg) error
	visit = func(p *parsedPkg) error {
		switch state[p.path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p.path)
		case 2:
			return nil
		}
		state[p.path] = 1
		for _, dep := range p.imports {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p.path] = 2
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", filepath.Dir(gomod), err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module path in %s", gomod)
}
