package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		Tasks: []Task{
			{ID: 0, Duration: 100, Deps: []Dep{{Addr: 0x1000, Dir: InOut}}},
			{ID: 1, Duration: 200, CreateCost: 50, Deps: []Dep{{Addr: 0x1000, Dir: In}, {Addr: 0x2000, Dir: Out}}},
			{ID: 2, Duration: 300},
		},
		SerialCycles: 42,
	}
}

func TestDirectionSemantics(t *testing.T) {
	cases := []struct {
		d      Direction
		reads  bool
		writes bool
		str    string
	}{
		{In, true, false, "in"},
		{Out, false, true, "out"},
		{InOut, true, true, "inout"},
	}
	for _, c := range cases {
		if c.d.Reads() != c.reads || c.d.Writes() != c.writes || c.d.String() != c.str {
			t.Fatalf("direction %v: reads=%v writes=%v str=%q", c.d, c.d.Reads(), c.d.Writes(), c.d.String())
		}
	}
}

func TestSeqCyclesAndSummary(t *testing.T) {
	tr := sampleTrace()
	if got := tr.SeqCycles(); got != 100+200+300+42 {
		t.Fatalf("SeqCycles = %d", got)
	}
	s := tr.Summarize()
	if s.NumTasks != 3 || s.MinDeps != 0 || s.MaxDeps != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.AvgTaskSize != 200 {
		t.Fatalf("avg task size = %v, want 200", s.AvgTaskSize)
	}
	if tr.NumDeps() != 3 {
		t.Fatalf("NumDeps = %d, want 3", tr.NumDeps())
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	tr := sampleTrace()
	tr.Tasks[1].ID = 7
	if err := tr.Validate(); !errors.Is(err, ErrBadID) {
		t.Fatalf("want ErrBadID, got %v", err)
	}

	tr = sampleTrace()
	tr.Tasks[0].Duration = 0
	if err := tr.Validate(); !errors.Is(err, ErrZeroDuration) {
		t.Fatalf("want ErrZeroDuration, got %v", err)
	}

	tr = sampleTrace()
	tr.Tasks[1].Deps = []Dep{{Addr: 5, Dir: In}, {Addr: 5, Dir: Out}}
	if err := tr.Validate(); !errors.Is(err, ErrDupAddr) {
		t.Fatalf("want ErrDupAddr, got %v", err)
	}

	tr = sampleTrace()
	deps := make([]Dep, MaxDeps+1)
	for i := range deps {
		deps[i] = Dep{Addr: uint64(i), Dir: In}
	}
	tr.Tasks[0].Deps = deps
	if err := tr.Validate(); !errors.Is(err, ErrTooManyDeps) {
		t.Fatalf("want ErrTooManyDeps, got %v", err)
	}
}

func TestClone(t *testing.T) {
	tr := sampleTrace()
	c := tr.Clone()
	c.Tasks[0].Deps[0].Addr = 0xDEAD
	c.Tasks[2].Duration = 1
	if tr.Tasks[0].Deps[0].Addr == 0xDEAD || tr.Tasks[2].Duration == 1 {
		t.Fatal("clone shares state with original")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.SerialCycles != tr.SerialCycles || len(got.Tasks) != len(tr.Tasks) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range tr.Tasks {
		a, b := tr.Tasks[i], got.Tasks[i]
		if a.ID != b.ID || a.Duration != b.Duration || a.CreateCost != b.CreateCost || len(a.Deps) != len(b.Deps) {
			t.Fatalf("task %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Deps {
			if a.Deps[j] != b.Deps[j] {
				t.Fatalf("task %d dep %d mismatch", i, j)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: serialize/deserialize is the identity on random traces.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "prop"}
		for i := 0; i < int(n); i++ {
			task := Task{
				ID:         uint32(i),
				Duration:   uint64(rng.Intn(1000) + 1),
				CreateCost: uint64(rng.Intn(100)),
			}
			for d := rng.Intn(5); d > 0; d-- {
				task.Deps = append(task.Deps, Dep{
					Addr: rng.Uint64(),
					Dir:  Direction(rng.Intn(3)),
				})
			}
			tr.Tasks = append(tr.Tasks, task)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Tasks) != len(tr.Tasks) {
			return false
		}
		for i := range tr.Tasks {
			if got.Tasks[i].Duration != tr.Tasks[i].Duration ||
				len(got.Tasks[i].Deps) != len(tr.Tasks[i].Deps) {
				return false
			}
			for j := range tr.Tasks[i].Deps {
				if got.Tasks[i].Deps[j] != tr.Tasks[i].Deps[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("Read accepted garbage")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("Read accepted empty input")
	}
	// Truncated valid prefix.
	var buf bytes.Buffer
	if _, err := sampleTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-4])); err == nil {
		t.Fatal("Read accepted truncated input")
	}
	// Bad direction byte.
	b2 := append([]byte(nil), b...)
	b2[len(b2)-1] = 99 // last byte is a direction in sampleTrace layout? ensure error or ok
	if _, err := Read(bytes.NewReader(b2)); err == nil {
		// The last byte of sampleTrace is task 2's dep count (0), so
		// flipping it makes the stream truncated instead; either way the
		// reader must not succeed.
		t.Fatal("Read accepted corrupted input")
	}
}
