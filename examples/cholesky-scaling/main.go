// Cholesky scaling: the Figure 11b experiment as a program — compare the
// Picos Full-system prototype, the software-only Nanos++ runtime and the
// Perfect roofline on blocked Cholesky as workers scale from 2 to 24.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hil"
)

func main() {
	for _, block := range []int{128, 64} {
		tr, err := core.AppTrace(core.Cholesky, 2048, block)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cholesky 2048/%d: %d tasks, avg %.3g cycles each\n",
			block, len(tr.Tasks), tr.Summarize().AvgTaskSize)
		fmt.Printf("%8s  %18s  %8s  %8s\n", "workers", "picos(full-system)", "perfect", "nanos++")
		for _, w := range []int{2, 4, 8, 12, 16, 24} {
			pic, err := core.RunPicos(tr, core.PicosOptions{Workers: w, Mode: hil.FullSystem})
			if err != nil {
				log.Fatal(err)
			}
			roof, err := core.RunPerfect(tr, w)
			if err != nil {
				log.Fatal(err)
			}
			sw, err := core.RunNanos(tr, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d  %18.2f  %8.2f  %8.2f\n", w, pic.Speedup, roof.Speedup, sw.Speedup)
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper Fig. 11b): Picos tracks the roofline;")
	fmt.Println("Nanos++ saturates near 8 workers and falls behind at block 64.")
}
