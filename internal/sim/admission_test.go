package sim_test

import (
	"testing"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

// TestAvoidDeadlockCompletesCase7: case7 on the direct-hash 8-way DM is
// the canonical wedge (TestFastPathWedgeDetection) — its 15-same-set
// bursts can never finish registering. The avoid-deadlock admission
// policy must instead refuse exactly those bursts at submit time, as a
// structural count, and complete every admittable task; the park
// variant additionally reports the refused IDs so a front-end can
// re-route the descriptors.
func TestAvoidDeadlockCompletesCase7(t *testing.T) {
	for _, engine := range equivalenceEngines {
		t.Run(engine, func(t *testing.T) {
			t.Parallel()
			spec := sim.Spec{Engine: engine, Workload: "case7", Design: "8way",
				Admission: "avoid-deadlock", Watchdog: 5_000_000}
			res, err := sim.Run(spec)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Wedged || res.TimedOut {
				t.Fatalf("avoid-deadlock still wedged: wedged=%v timedOut=%v", res.Wedged, res.TimedOut)
			}
			if res.RefusedTasks == 0 {
				t.Fatal("case7's unadmittable bursts were not refused")
			}
			if len(res.RefusedIDs) != 0 {
				t.Errorf("plain avoid-deadlock drops refusals, yet %d IDs reported", len(res.RefusedIDs))
			}
			done := 0
			for _, f := range res.Finish {
				if f > 0 {
					done++
				}
			}
			if done+res.RefusedTasks != len(res.Finish) {
				t.Errorf("accounting hole: %d done + %d refused != %d tasks",
					done, res.RefusedTasks, len(res.Finish))
			}

			park := spec
			park.Admission = "avoid-deadlock-park"
			pres, err := sim.Run(park)
			if err != nil {
				t.Fatalf("park Run: %v", err)
			}
			if pres.Wedged || pres.TimedOut {
				t.Fatalf("park variant wedged: wedged=%v timedOut=%v", pres.Wedged, pres.TimedOut)
			}
			if pres.RefusedTasks != res.RefusedTasks {
				t.Errorf("park refused %d, plain refused %d — the feasibility check must not depend on the refusal policy",
					pres.RefusedTasks, res.RefusedTasks)
			}
			if len(pres.RefusedIDs) != pres.RefusedTasks {
				t.Fatalf("park reported %d IDs for %d refusals", len(pres.RefusedIDs), pres.RefusedTasks)
			}
			for _, id := range pres.RefusedIDs {
				if pres.Finish[id] > 0 {
					t.Errorf("task %d both refused and finished", id)
				}
			}
		})
	}
}
