package patterns

import (
	"fmt"
	"strings"

	"repro/internal/detrand"
	"repro/internal/picos"
	"repro/internal/trace"
)

// Generate returns a lazy trace.Source over the pattern: tasks are
// produced one at a time in the same step-major creation order Build
// materializes, so Materialize(Generate(p)) is byte-identical to
// Build(p) (the equivalence test in generate_test.go locks it), but the
// grid is never held in memory — a width*steps grid of millions of
// tasks streams in O(width) state. task-bench generates its grids the
// same way: the dependence functions are closed-form in (t, i), so
// nothing about a timestep needs the materialized previous one.
//
// retain bounds the dagfile family's node-retention window (0:
// unbounded); the grid families ignore it — their per-task state is
// already bounded by the row width.
func Generate(p Params, retain int) (trace.Source, error) {
	fam, ok := families[p.Family]
	if !ok {
		return nil, fmt.Errorf("patterns: unknown family %q (have %s)", p.Family, strings.Join(Families(), ", "))
	}
	if p.Family == "dagfile" {
		return streamDAGFile(p, retain)
	}
	stride := layoutStrides[p.Layout]
	if stride == 0 {
		return nil, fmt.Errorf("patterns: unknown layout %q (have malloc, aligned, spread)", p.Layout)
	}
	if p.Fields < 1 {
		p.Fields = DefaultFields
	}
	if p.Height < 1 {
		p.Height = 1
	}
	if p.Regions < 1 {
		p.Regions = 1
	}
	src := &gridSource{
		p:      p,
		fam:    fam,
		stride: stride,
		points: p.points(),
		name:   "pattern-" + p.Name(),
		kinds:  []string{p.Family},
		seen:   make(map[uint64]bool, trace.MaxDeps),
	}
	if p.Layout == "shard" && !fam.freshAddr {
		// The slot table of the chaining families is O(points*fields) —
		// bounded by the row width, not the task count — so it is the one
		// piece of shard-layout state worth precomputing.
		nbuf := src.points * p.Fields
		addrs := make([]uint64, nbuf)
		next := uint64(patternBase)
		for s := 0; s < nbuf; s++ {
			target := (s / p.Fields) * p.Shards / src.points
			for picos.Shard(picos.ShardXorFold, next, p.Shards) != target {
				next += stride
			}
			addrs[s] = next
			next += stride
		}
		src.addrs = addrs
	}
	src.reset()
	return src, nil
}

// gridSource streams one pattern grid in step-major order with O(width)
// retained state. The only cursor beyond (t, i) is the shard layout's
// sequential probe position for fresh-address families, whose slot
// sequence t*points+i is exactly the emission order.
type gridSource struct {
	p      Params
	fam    family
	stride uint64
	points int
	name   string
	kinds  []string
	addrs  []uint64 // shard layout, chaining families: full slot table

	t, i int
	id   uint32
	// Shard-layout probe cursor for fresh-address families.
	slot     int
	nextAddr uint64
	seen     map[uint64]bool
}

func (s *gridSource) Name() string         { return s.name }
func (s *gridSource) Kinds() []string      { return s.kinds }
func (s *gridSource) SerialCycles() uint64 { return 0 }
func (s *gridSource) RefSeqCycles() uint64 { return 0 }

func (s *gridSource) Rewind() error { s.reset(); return nil }

func (s *gridSource) reset() {
	s.t, s.i, s.id = 0, 0, 0
	s.slot, s.nextAddr = 0, patternBase
	clear(s.seen)
}

// buf returns the step-t field buffer of point i, matching Build's
// layout arithmetic slot for slot.
func (s *gridSource) buf(i, t int) uint64 {
	if s.addrs != nil {
		return s.addrs[i*s.p.Fields+t%s.p.Fields]
	}
	return patternBase + uint64(i*s.p.Fields+t%s.p.Fields)*s.stride
}

// freshShardAddr advances the sequential probe cursor to the given slot
// and returns its address. Fresh-address tasks consume slots in strictly
// increasing order (slot = t*points+i in emission order), so the cursor
// only ever moves forward — skipped hole slots are probed and discarded
// exactly as Build's precomputed table does.
func (s *gridSource) freshShardAddr(slot int) uint64 {
	var addr uint64
	for ; s.slot <= slot; s.slot++ {
		target := (s.slot % s.points) * s.p.Shards / s.points
		for picos.Shard(picos.ShardXorFold, s.nextAddr, s.p.Shards) != target {
			s.nextAddr += s.stride
		}
		addr = s.nextAddr
		s.nextAddr += s.stride
	}
	return addr
}

func (s *gridSource) Next() (trace.Task, bool) {
	p := s.p
	for {
		if s.i >= s.points {
			s.i = 0
			s.t++
		}
		if s.t >= p.Steps {
			return trace.Task{}, false
		}
		t, i := s.t, s.i
		s.i++
		if p.hole(i) {
			continue
		}
		id := s.id
		s.id++

		own := s.buf(i, t)
		if s.fam.freshAddr {
			if p.Layout == "shard" {
				own = s.freshShardAddr(t*s.points + i)
			} else {
				own = patternBase + uint64(t*s.points+i)*s.stride
			}
		}
		deps := make([]trace.Dep, 0, trace.MaxDeps)
		deps = s.addRegions(deps, own, trace.InOut)
		if t > 0 {
			for _, j := range s.fam.inputs(p, t, i) {
				if j < 0 || j >= s.points || p.hole(j) {
					continue
				}
				deps = s.addRegions(deps, s.buf(j, t-1), trace.In)
			}
		}
		for _, d := range deps {
			delete(s.seen, d.Addr)
		}
		dur := p.Len
		if p.Jitter > 0 {
			dur = detrand.Jitter(p.Len, p.Seed^uint64(id)<<1, p.Jitter)
		}
		return trace.Task{ID: id, Deps: deps, Duration: dur, Kind: 1}, true
	}
}

// addRegions mirrors Build's addRegions: one dependence per address
// region, deduplicated, capped at the hardware's per-task limit.
func (s *gridSource) addRegions(deps []trace.Dep, base uint64, dir trace.Direction) []trace.Dep {
	for r := 0; r < s.p.Regions; r++ {
		a := base + uint64(r)*regionStride
		if s.seen[a] || len(deps) == trace.MaxDeps {
			continue
		}
		s.seen[a] = true
		deps = append(deps, trace.Dep{Addr: a, Dir: dir})
	}
	return deps
}
