package nanos

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Engine adapts the software-only runtime model to the sim registry.
type Engine struct{}

// Name returns the registry name.
func (Engine) Name() string { return "nanos" }

// Run executes the trace on the software-only runtime.
//
// The accelerator knobs do not exist here: Nanos++ is the paper's
// software baseline, with no gateway, DM or TS hardware to configure,
// and its event-driven model has no per-cycle loop for FastForward to
// select.
//
//picos:ignores-knobs Admission,Conflict,FastForward,Faults,NewQDepth,NumDCT,NumTRS,Recovery,RunAhead,ShardHash,ShardHop,Wake accelerator-only knobs; the software runtime has no GW/DM/TS hardware, is inherently event-driven, and serves as the fault-free control arm of the resilience sweeps
func (Engine) Run(tr *trace.Trace, spec sim.Spec) (*sim.Result, error) {
	plan, err := spec.SchedPlan()
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Workers:  spec.Workers,
		Classes:  plan.Classes,
		Sched:    plan.Policy,
		Steal:    plan.Steal,
		Watchdog: spec.Watchdog,
	}
	if len(cfg.Classes) > 0 {
		cfg.Workers = 0 // the class list fixes the worker count
	}
	res, err := Run(tr, cfg)
	if err != nil {
		return nil, err
	}
	first, thr := sim.Probes(res.Start)
	return &sim.Result{
		Workers:    res.Workers,
		Makespan:   res.Makespan,
		Baseline:   res.Baseline,
		Speedup:    res.Speedup,
		FirstStart: first,
		ThrTask:    thr,
		LockBusy:   res.LockBusy,
		Start:      res.Start,
		Finish:     res.Finish,
	}, nil
}

// RunStream executes a streaming task source on the software-only
// runtime under the spec's bounded descriptor window (sim.StreamEngine).
// The mapped Result carries aggregate probes only — Start/Finish stay
// nil.
func (Engine) RunStream(src trace.Source, spec sim.Spec) (*sim.Result, error) {
	plan, err := spec.SchedPlan()
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Workers:  spec.Workers,
		Classes:  plan.Classes,
		Sched:    plan.Policy,
		Steal:    plan.Steal,
		Watchdog: spec.Watchdog,
		Window:   spec.Window,
	}
	if len(cfg.Classes) > 0 {
		cfg.Workers = 0 // the class list fixes the worker count
	}
	res, err := RunSource(src, cfg)
	if err != nil {
		return nil, err
	}
	return &sim.Result{
		Workers:    res.Workers,
		Makespan:   res.Makespan,
		Baseline:   res.Baseline,
		Speedup:    res.Speedup,
		FirstStart: res.FirstStart,
		ThrTask:    res.ThrTask,
		LockBusy:   res.LockBusy,
	}, nil
}

func init() { sim.Register(Engine{}) }
