// Package repro reproduces "Performance Analysis of a Hardware
// Accelerator of Dependence Management for Task-based Dataflow
// Programming Models" (Tan et al., ISPASS 2016) as a pure-Go system: a
// cycle-level model of the Picos task/dependence-management accelerator,
// the trace-driven HIL evaluation platform, the software-only Nanos++
// baseline, the Perfect roofline scheduler and the workload generators,
// plus a harness that regenerates every table and figure of the paper's
// evaluation.
//
// See README.md for a tour, DESIGN.md for the architecture and
// EXPERIMENTS.md for paper-vs-reproduction results. The benchmarks in
// bench_test.go regenerate each experiment: go test -bench=. -benchmem.
package repro
