package nanos

import (
	"errors"
	"testing"

	"repro/internal/apps"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestStreamWideWindowMatchesRun locks the streaming driver to the
// materialized one: a window wider than the whole trace never parks the
// master, so every event fires at the same cycle and the aggregate
// probes must equal the materialized run's arrays summarized by
// sim.Probes — byte-identical makespan, lock time and throughput.
func TestStreamWideWindowMatchesRun(t *testing.T) {
	for n := 1; n <= 7; n++ {
		tr, err := synth.Case(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 4, 12} {
			want, err := Run(tr, Config{Workers: w})
			if err != nil {
				t.Fatalf("case%d w=%d: %v", n, w, err)
			}
			got, err := RunSource(trace.FromTrace(tr), Config{Workers: w, Window: len(tr.Tasks) + 1})
			if err != nil {
				t.Fatalf("case%d w=%d stream: %v", n, w, err)
			}
			first, thr := sim.Probes(want.Start)
			if got.Makespan != want.Makespan || got.Baseline != want.Baseline ||
				got.Speedup != want.Speedup || got.LockBusy != want.LockBusy {
				t.Fatalf("case%d w=%d: stream %+v, want %+v", n, w, got, want)
			}
			if got.FirstStart != first || got.ThrTask != thr {
				t.Fatalf("case%d w=%d: probes %d/%.3f, want %d/%.3f",
					n, w, got.FirstStart, got.ThrTask, first, thr)
			}
		}
	}
}

// TestStreamBoundedWindow checks the backpressured regime: a narrow
// window completes, is deterministic, and can only delay work — the
// makespan is monotonically no better than the unbounded run's.
func TestStreamBoundedWindow(t *testing.T) {
	res, err := apps.Generate(apps.Cholesky, 1024, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	base, err := Run(tr, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	prev := uint64(0)
	for _, win := range []int{1, 2, 8, 64} {
		a, err := RunSource(trace.FromTrace(tr), Config{Workers: 4, Window: win})
		if err != nil {
			t.Fatalf("window %d: %v", win, err)
		}
		b, err := RunSource(trace.FromTrace(tr), Config{Workers: 4, Window: win})
		if err != nil {
			t.Fatalf("window %d rerun: %v", win, err)
		}
		if a.Makespan != b.Makespan || a.LockBusy != b.LockBusy {
			t.Fatalf("window %d nondeterministic: %d/%d vs %d/%d",
				win, a.Makespan, a.LockBusy, b.Makespan, b.LockBusy)
		}
		if a.Makespan < base.Makespan {
			t.Fatalf("window %d beat the unbounded run: %d < %d", win, a.Makespan, base.Makespan)
		}
		if prev != 0 && a.Makespan > prev {
			t.Fatalf("widening the window to %d slowed the run: %d > %d", win, a.Makespan, prev)
		}
		prev = a.Makespan
	}
}

// TestStreamRestrictions pins the typed rejections: streaming requires a
// positive window, and bottom-level priority scheduling needs the whole
// graph.
func TestStreamRestrictions(t *testing.T) {
	tr, err := synth.Case(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSource(trace.FromTrace(tr), Config{Workers: 2}); !errors.Is(err, ErrStreamWindow) {
		t.Fatalf("window 0: got %v, want ErrStreamWindow", err)
	}
	if _, err := RunSource(trace.FromTrace(tr), Config{Workers: 2, Window: 8, Sched: sched.Priority}); !errors.Is(err, ErrStreamPriority) {
		t.Fatalf("priority: got %v, want ErrStreamPriority", err)
	}
}

// TestStreamEmptySource mirrors TestErrors' empty-trace case on the
// streaming path.
func TestStreamEmptySource(t *testing.T) {
	r, err := RunSource(trace.FromTrace(&trace.Trace{}), Config{Workers: 2, Window: 4})
	if err != nil || r.Makespan != 0 {
		t.Fatalf("empty stream: %v %+v", err, r)
	}
}
