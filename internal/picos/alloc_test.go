//go:build !race

// Allocation-regression locks for the hot path. The race detector
// changes allocation behaviour, so these only build without it (the CI
// race lane runs the same logic through the functional suites).

package picos

import (
	"testing"

	"repro/internal/trace"
)

// driveWorkers is the allocation-free mini-harness the locks below run:
// Reset, submit everything, then execute with a fixed worker set until
// drained, advancing either cycle-by-cycle (Step) or event-by-event
// (NextEvent/RunTo). Every buffer it needs lives in the harness struct,
// so a warm iteration performs zero heap allocations end to end.
type allocHarness struct {
	p     *Picos
	cfg   Config
	tasks []trace.Task
	ws    [4]struct {
		until  uint64
		task   ReadyTask
		active bool
	}
	failed bool
}

func (h *allocHarness) drive(useRunTo bool) {
	if err := h.p.Reset(h.cfg); err != nil {
		h.failed = true
		return
	}
	for i := range h.tasks {
		if h.p.Submit(h.tasks[i].ID, h.tasks[i].Deps) != nil {
			h.failed = true
			return
		}
	}
	for i := range h.ws {
		h.ws[i].active = false
	}
	done := 0
	for done < len(h.tasks) || !h.p.Idle() {
		now := h.p.Now()
		for i := range h.ws {
			if h.ws[i].active && h.ws[i].until <= now {
				h.p.NotifyFinish(h.ws[i].task.Handle)
				h.ws[i].active = false
				done++
			}
		}
		for i := range h.ws {
			if h.ws[i].active {
				continue
			}
			rt, ok := h.p.PopReady()
			if !ok {
				break
			}
			h.ws[i].until = now + h.tasks[rt.ID].Duration
			h.ws[i].task = rt
			h.ws[i].active = true
		}
		if now > 10_000_000 {
			h.failed = true // runaway; surfaced by the caller
			return
		}
		if !useRunTo {
			h.p.Step()
			continue
		}
		// Event-driven advance: the earlier of the accelerator's horizon
		// and the next worker completion.
		target, have := uint64(0), false
		if next, ok := h.p.NextEvent(); ok {
			target, have = next, true
		}
		for i := range h.ws {
			if h.ws[i].active && (!have || h.ws[i].until < target) {
				target, have = h.ws[i].until, true
			}
		}
		if !have {
			h.p.Step() // wedge guard; loop exit condition will fire
			continue
		}
		if target <= now {
			h.p.Step()
		} else {
			h.p.RunTo(target)
		}
	}
}

func newAllocHarness(t *testing.T) *allocHarness {
	t.Helper()
	cfg := DefaultConfig()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &allocHarness{p: p, cfg: cfg, tasks: fastpathTasks()}
}

// TestStepSteadyStateAllocFree locks Picos.Step (plus the surrounding
// Reset/Submit/PopReady/NotifyFinish cycle) at zero steady-state heap
// allocations: after one warm run that grows the FIFOs, a full
// cycle-stepped re-run on a Reset machine must not allocate at all.
func TestStepSteadyStateAllocFree(t *testing.T) {
	h := newAllocHarness(t)
	h.drive(false) // warm: grows queue buffers to their high-water marks
	if avg := testing.AllocsPerRun(20, func() { h.drive(false) }); avg != 0 {
		t.Errorf("cycle-stepped warm run allocates %.1f times; want 0", avg)
	}
	if h.failed {
		t.Fatal("harness failed mid-drive (reset, submit or watchdog)")
	}
	if err := h.p.Drained(); err != nil {
		t.Fatal(err)
	}
}

// TestRunToSteadyStateAllocFree locks the event-driven path — NextEvent
// on the incremental horizon heap plus RunTo's skip/step batching — at
// zero steady-state heap allocations.
func TestRunToSteadyStateAllocFree(t *testing.T) {
	h := newAllocHarness(t)
	h.drive(true)
	if avg := testing.AllocsPerRun(20, func() { h.drive(true) }); avg != 0 {
		t.Errorf("event-driven warm run allocates %.1f times; want 0", avg)
	}
	if h.failed {
		t.Fatal("harness failed mid-drive (reset, submit or watchdog)")
	}
	if err := h.p.Drained(); err != nil {
		t.Fatal(err)
	}
}
