package repro

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark regenerates the corresponding experiment end to end
// (trace generation, simulation sweep, aggregation), so `go test
// -bench=.` is the reproduction harness. The heavyweight sweeps
// (Figures 8 and 11) run their reduced Quick configuration here; the
// full paper-size sweeps are `picos-bench -exp fig8` / `-exp fig11`.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"

	_ "repro/internal/engines"
)

func benchExperiment(b *testing.B, name string, quick bool) {
	b.Helper()
	benchExperimentOpt(b, name, experiments.Options{Quick: quick})
}

func benchExperimentOpt(b *testing.B, name string, opt experiments.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(name, opt)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s: empty result", name)
		}
	}
}

// BenchmarkTable1 regenerates Table I (benchmark characteristics).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", false) }

// BenchmarkTable2 regenerates Table II (DM conflicts per design).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", false) }

// BenchmarkTable3 regenerates Table III (hardware resources).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3", false) }

// BenchmarkTable4 regenerates Table IV (latency/throughput, 3 modes).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4", false) }

// BenchmarkFig1 regenerates Figure 1 (Nanos++ speedup vs granularity).
func BenchmarkFig1(b *testing.B) { benchExperiment(b, "fig1", false) }

// BenchmarkFig8 regenerates Figure 8 (DM design speedups, reduced sweep).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8", true) }

// BenchmarkFig9 regenerates Figure 9 (MLu + FIFO/LIFO, reduced sweep).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9", true) }

// BenchmarkFig10 regenerates Figure 10 (Nanos++ overhead surface).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10", false) }

// BenchmarkFig11 regenerates Figure 11 (scalability, reduced sweep).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11", true) }

// BenchmarkFig8CycleStepped / BenchmarkFig11CycleStepped run the same
// reduced sweeps on the per-cycle reference loop instead of the
// event-driven fast path: the ratio to BenchmarkFig8/BenchmarkFig11 is
// the fast path's wall-clock win (recorded in BENCH_fastpath.json by
// picos-bench -json).
func BenchmarkFig8CycleStepped(b *testing.B) {
	benchExperimentOpt(b, "fig8", experiments.Options{Quick: true, CycleStepped: true})
}

func BenchmarkFig11CycleStepped(b *testing.B) {
	benchExperimentOpt(b, "fig11", experiments.Options{Quick: true, CycleStepped: true})
}

// sweepGrid is the BenchmarkSweep workload: a 21-point
// {engine x synthetic case} matrix, all-management traces so the
// benchmark measures the sweep executor rather than task execution.
func sweepGrid() []sim.Spec {
	return sim.Grid{
		Engines:   []string{"picos-hw", "picos-comm", "nanos"},
		Workloads: []string{"case1", "case2", "case3", "case4", "case5", "case6", "case7"},
	}.Expand()
}

func benchSweep(b *testing.B, parallelism int) {
	b.Helper()
	specs := sweepGrid()
	for i := 0; i < b.N; i++ {
		items := sim.Sweep(specs, parallelism)
		for _, it := range items {
			if it.Err != "" {
				b.Fatalf("spec %d: %s", it.Index, it.Err)
			}
		}
	}
}

// BenchmarkSweepSequential runs the grid one spec at a time — the
// pre-refactor baseline of hand-rolled experiment loops.
func BenchmarkSweepSequential(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the same grid across the bounded worker
// pool (GOMAXPROCS goroutines); the ratio to Sequential is the sweep
// executor's throughput gain.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }
