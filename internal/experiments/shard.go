package experiments

import (
	"fmt"
	"math"

	"repro/internal/asciiplot"
	"repro/internal/patterns"
	"repro/internal/sim"
)

func init() {
	Register("shard-capacity", ShardCapacity)
}

// shardCounts are the DCT shard counts the shard-capacity sweep
// evaluates. Sharding partitions the design's DM sets (and with them the
// VM) across shards, so the interesting axis is how much per-shard
// associative capacity a pattern family needs before the partition
// starts costing conflicts — 8 shards leave an 8-way design only 8 sets
// per shard.
var shardCounts = []int{1, 2, 4, 8}

// shardFamilies are the pattern families of the shard sweep, picked to
// span address locality: a 1-D stencil reuses few addresses, wavefront
// and spread widen the live set, all_to_all touches everything every
// step and maximizes inter-shard spread.
var shardFamilies = []string{"stencil_1d", "wavefront", "spread", "all_to_all"}

// ShardCapacityData executes the shard-capacity sweep: every shard
// count x DM design (sets x ways shape) x pattern family on picos-hw
// under the default malloc layout, normalized per family against the
// Perfect roofline. Cells carry NumDCT, distinguishing this lane from
// the single-DCT capacity map in BENCH_patterns.json.
func ShardCapacityData(opt Options) ([]CapacityCell, error) {
	fams := shardFamilies
	shards := shardCounts
	designs := dmDesigns
	if opt.Quick {
		fams = fams[:2]
		shards = []int{1, 4}
		designs = designs[2:] // shipping P+8way only
	}

	type point struct {
		family, design string
		numDCT         int
	}
	var pts []point
	var specs []sim.Spec
	for _, f := range fams {
		for _, d := range designs {
			for _, n := range shards {
				pts = append(pts, point{f, d.spec, n})
				specs = append(specs, sim.Spec{
					Engine:   "picos-hw",
					Workload: capacityPattern(f, patterns.DefaultLayout, opt),
					Design:   d.spec,
					NumDCT:   n,
				})
			}
		}
	}
	// Perfect roofline, one run per family (design- and shard-blind).
	perfectIdx := make(map[string]int, len(fams))
	for _, f := range fams {
		perfectIdx[f] = len(specs)
		pts = append(pts, point{f, "", 0})
		specs = append(specs, sim.Spec{Engine: "perfect", Workload: capacityPattern(f, patterns.DefaultLayout, opt)})
	}

	results, err := sweep(opt, specs)
	if err != nil {
		return nil, err
	}

	cells := make([]CapacityCell, 0, len(pts))
	for i, pt := range pts {
		if pt.numDCT == 0 {
			continue // roofline
		}
		res := results[i]
		cell := CapacityCell{
			Family:   pt.family,
			Workload: specs[i].Workload,
			Engine:   "picos-hw",
			Design:   pt.design,
			Layout:   patterns.DefaultLayout,
			NumDCT:   pt.numDCT,
			Wedged:   res.Wedged,
			WedgedAt: res.WedgedAt,
			Makespan: res.Makespan,
			Speedup:  res.Speedup,
		}
		if st := res.Stats; st != nil {
			cell.DMConflicts = st.DMConflicts
			cell.VMStallEvents = st.VMStallEvents
			cell.DMConflictStallCycles = st.DMConflictStallCycles
			cell.VMStallCycles = st.VMStallCycles
		}
		if roof := results[perfectIdx[pt.family]]; !res.Wedged && roof.Speedup > 0 {
			cell.SpeedupVsPerfect = res.Speedup / roof.Speedup
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// ShardCapacityHeatmaps renders family x shard-count heatmaps: speedup
// vs perfect for every DM design present, plus the stall-cycle cost at
// the shipping P+8way design.
func ShardCapacityHeatmaps(cells []CapacityCell) []*asciiplot.Heatmap {
	shards := distinct(cells, nil, func(c CapacityCell) string { return fmt.Sprintf("%d", c.NumDCT) })
	fams := distinct(cells, nil, func(c CapacityCell) string { return c.Family })
	designs := distinct(cells, nil, func(c CapacityCell) string { return c.Design })

	xlabels := make([]string, len(shards))
	for i, s := range shards {
		xlabels[i] = s + "sh"
	}
	value := func(f, d, shard string, get func(CapacityCell) float64) float64 {
		for _, c := range cells {
			if c.Family == f && c.Design == d && fmt.Sprintf("%d", c.NumDCT) == shard && !c.Wedged {
				return get(c)
			}
		}
		return math.NaN()
	}
	build := func(title string, design string, log bool, get func(CapacityCell) float64) *asciiplot.Heatmap {
		hm := &asciiplot.Heatmap{
			Title:   title,
			XLabels: xlabels,
			YLabels: fams,
			Log:     log,
			Missing: "XX",
		}
		for _, f := range fams {
			row := make([]float64, len(shards))
			for j, s := range shards {
				row[j] = value(f, design, s, get)
			}
			hm.Cells = append(hm.Cells, row)
		}
		return hm
	}

	var maps []*asciiplot.Heatmap
	for _, d := range designs {
		maps = append(maps, build(
			fmt.Sprintf("shard capacity: speedup vs perfect (%s, picos-hw)", d), d, false,
			func(c CapacityCell) float64 { return c.SpeedupVsPerfect }))
	}
	for _, d := range designs {
		if d != "p8way" {
			continue
		}
		maps = append(maps, build(
			"shard capacity: DM+VM stall cycles (p8way, picos-hw)", d, true,
			func(c CapacityCell) float64 {
				return float64(c.DMConflictStallCycles + c.VMStallCycles)
			}))
	}
	return maps
}

// ShardCapacity is the registry entry: the sweep as one table per DM
// design, rows = families, columns = shard counts.
func ShardCapacity(opt Options) ([]*Table, error) {
	cells, err := ShardCapacityData(opt)
	if err != nil {
		return nil, err
	}
	return ShardCapacityTables(cells), nil
}

// ShardCapacityTables renders already-computed shard cells as tables, so
// callers that also need the cells run the sweep exactly once.
func ShardCapacityTables(cells []CapacityCell) []*Table {
	shards := distinct(cells, nil, func(c CapacityCell) string { return fmt.Sprintf("%d", c.NumDCT) })
	fams := distinct(cells, nil, func(c CapacityCell) string { return c.Family })
	designs := distinct(cells, nil, func(c CapacityCell) string { return c.Design })

	find := func(f, d, shard string) *CapacityCell {
		for i := range cells {
			c := &cells[i]
			if c.Family == f && c.Design == d && fmt.Sprintf("%d", c.NumDCT) == shard {
				return c
			}
		}
		return nil
	}
	header := append([]string{"Family"}, func() []string {
		out := make([]string, len(shards))
		for i, s := range shards {
			out[i] = s + " shards"
		}
		return out
	}()...)

	var tables []*Table
	for _, d := range designs {
		t := &Table{
			Title:  fmt.Sprintf("Shard capacity (%s, picos-hw, malloc layout): conflicts / stall cycles / speedup-vs-perfect per shard count", d),
			Header: header,
		}
		for _, f := range fams {
			row := []string{f}
			for _, s := range shards {
				c := find(f, d, s)
				switch {
				case c == nil:
					row = append(row, "-")
				case c.Wedged:
					row = append(row, fmt.Sprintf("WEDGE@%d", c.WedgedAt))
				default:
					row = append(row, fmt.Sprintf("%d / %.2g / %.2f",
						c.DMConflicts+c.VMStallEvents,
						float64(c.DMConflictStallCycles+c.VMStallCycles),
						c.SpeedupVsPerfect))
				}
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"sharding partitions the design's DM sets and VM across shards (capacity is divided, not multiplied); inter-shard traffic pays the chained shard-hop latency")
		tables = append(tables, t)
	}
	return tables
}
