module skcheck

go 1.21
