// Package goodengine honors every knob: reads Workers, Depth and Wake
// directly and Debug through the DebugOn method.
package goodengine

import "skcheck/internal/sim"

type Engine struct{}

func (Engine) Name() string { return "good" }

func (Engine) Run(spec sim.Spec) int {
	n := spec.Workers * spec.Depth
	if spec.Wake == "first-first" {
		n++
	}
	if spec.DebugOn() {
		n += 100
	}
	return n
}

func init() { sim.Register(Engine{}) }
