package hil

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/patterns"
	"repro/internal/sched"
	"repro/internal/synth"
	"repro/internal/trace"
)

// streamModes are the three integration modes the streaming driver
// supports; the window retires at different points in each (worker
// finish, permanent link loss, refusal), so every equivalence below
// runs all three.
var streamModes = []Mode{HWOnly, HWComm, FullSystem}

func gridSource(t *testing.T, query string) trace.Source {
	t.Helper()
	p, err := patterns.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	src, err := patterns.Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// aggEqual compares the aggregate surface two streaming runs share.
func aggEqual(a, b *Result) bool {
	return a.Makespan == b.Makespan && a.Baseline == b.Baseline &&
		a.FirstStart == b.FirstStart && a.ThrTask == b.ThrTask &&
		a.Stats == b.Stats && a.Wedged == b.Wedged && a.TimedOut == b.TimedOut
}

// TestStreamWideWindowMatchesRun: a window at least as wide as the whole
// stream never exerts backpressure, so the streamed aggregates must be
// byte-identical to the materialized run's on every mode — the streaming
// driver is the same machine with a different feed.
func TestStreamWideWindowMatchesRun(t *testing.T) {
	const query = "stencil_1d?width=16&steps=12"
	p, err := patterns.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := patterns.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range streamModes {
		cfg := DefaultConfig()
		cfg.Mode = mode
		want := mustRun(t, tr, cfg)

		cfg.Window = len(tr.Tasks) + 1
		got, err := RunStream(gridSource(t, query), cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !aggEqual(got, want) {
			t.Fatalf("%s: stream %+v, want %+v", mode, got, want)
		}
		if got.Start != nil || got.Finish != nil || got.Order != nil {
			t.Fatalf("%s: streamed result carries schedule arrays", mode)
		}
	}
}

// TestStreamFastEqualsRef: the event-driven fast path and the per-cycle
// reference loop must agree on every streamed aggregate, window by
// window — including narrow windows where the feed itself backpressures.
func TestStreamFastEqualsRef(t *testing.T) {
	const query = "stencil_1d?width=16&steps=12"
	for _, mode := range streamModes {
		for _, win := range []int{2, 4, 64, 1024} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.Window = win
			fast, err := RunStream(gridSource(t, query), cfg)
			if err != nil {
				t.Fatalf("%s w=%d fast: %v", mode, win, err)
			}
			cfg.FastForward = false
			ref, err := RunStream(gridSource(t, query), cfg)
			if err != nil {
				t.Fatalf("%s w=%d ref: %v", mode, win, err)
			}
			if !aggEqual(fast, ref) {
				t.Fatalf("%s w=%d: fast %+v, ref %+v", mode, win, fast, ref)
			}
		}
	}
}

// TestStreamNarrowWindowBackpressures: a window narrower than the
// machine's natural concurrency must slow the run down (the feed stalls
// behind unretired descriptors), and can never speed it up.
func TestStreamNarrowWindowBackpressures(t *testing.T) {
	const query = "stencil_1d?width=16&steps=12"
	cfg := DefaultConfig()
	cfg.Window = 1 << 20
	wide, err := RunStream(gridSource(t, query), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Window = 4
	narrow, err := RunStream(gridSource(t, query), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Makespan <= wide.Makespan {
		t.Fatalf("window 4 makespan %d not worse than wide %d", narrow.Makespan, wide.Makespan)
	}
}

// TestStreamRestrictions pins the typed rejections of the streaming
// driver: a positive window is required, bottom-level priorities need
// the whole graph, and degrade recovery pops picos-internal refusals the
// window accounting cannot see.
func TestStreamRestrictions(t *testing.T) {
	tr, err := synth.Case(1)
	if err != nil {
		t.Fatal(err)
	}
	src := trace.FromTrace(tr)

	cfg := DefaultConfig()
	if _, err := RunStream(src, cfg); !errors.Is(err, ErrStreamWindow) {
		t.Fatalf("window 0: got %v, want ErrStreamWindow", err)
	}
	cfg.Window = 8
	cfg.Sched = sched.Priority
	if _, err := RunStream(src, cfg); !errors.Is(err, ErrStreamPriority) {
		t.Fatalf("priority: got %v, want ErrStreamPriority", err)
	}
	cfg = DefaultConfig()
	cfg.Window = 8
	cfg.Recovery = faults.Recovery{Degrade: 1000}
	if _, err := RunStream(src, cfg); !errors.Is(err, ErrStreamDegrade) {
		t.Fatalf("degrade: got %v, want ErrStreamDegrade", err)
	}
}

// TestStreamWrappedTraceEquivalence: streaming a wrapped materialized
// trace (the back-compat bridge every existing workload uses) matches
// the direct Run on all modes under a wide window, synthetic cases
// included — the adapters add nothing.
func TestStreamWrappedTraceEquivalence(t *testing.T) {
	for n := 1; n <= 7; n++ {
		tr, err := synth.Case(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range streamModes {
			cfg := DefaultConfig()
			cfg.Mode = mode
			want := mustRun(t, tr, cfg)
			cfg.Window = len(tr.Tasks) + 1
			got, err := RunStream(trace.FromTrace(tr), cfg)
			if err != nil {
				t.Fatalf("case%d %s: %v", n, mode, err)
			}
			if !aggEqual(got, want) {
				t.Fatalf("case%d %s: stream %+v, want %+v", n, mode, got, want)
			}
		}
	}
}
