// Command picos-bench regenerates the paper's tables and figures.
// Experiments are registry entries in internal/experiments; their
// simulation matrices run through the sim engine registry on a
// parallel worker pool.
//
// Usage:
//
//	picos-bench -exp table4            # one experiment
//	picos-bench -exp all               # everything (long: full Figure 11)
//	picos-bench -exp fig8 -quick       # reduced sweep for smoke runs
//	picos-bench -list                  # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1..table4, fig1, fig8..fig11, or 'all')")
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	plot := flag.Bool("plot", false, "render sweep results as ASCII charts too")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names {
			fmt.Println(n)
		}
		return
	}

	names := experiments.Names
	if *exp != "all" {
		names = []string{*exp}
	}
	opt := experiments.Options{Quick: *quick}
	for _, name := range names {
		start := time.Now()
		tables, err := experiments.Run(name, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "picos-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "picos-bench: %v\n", err)
				os.Exit(1)
			}
			if *plot {
				if c := t.Chart(); c != nil {
					if err := c.Render(os.Stdout); err != nil {
						fmt.Fprintf(os.Stderr, "picos-bench: %v\n", err)
						os.Exit(1)
					}
					fmt.Println()
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}
