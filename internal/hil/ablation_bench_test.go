package hil

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// reports the achieved speedup as a custom metric, so `go test -bench
// Ablation` doubles as the design-space exploration harness of
// Section V-A beyond the three shipping DM designs.

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/picos"
)

func benchSpeedup(b *testing.B, app apps.App, block int, mutate func(*Config)) {
	b.Helper()
	res, err := apps.Generate(app, apps.DefaultProblem, block)
	if err != nil {
		b.Fatal(err)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		mutate(&cfg)
		r, err := Run(res.Trace, cfg)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkAblationDMDesign sweeps the three DM designs on the
// conflict-heavy Heat workload (Figure 8 / Table II mechanism).
func BenchmarkAblationDMDesign(b *testing.B) {
	for _, design := range picos.Designs {
		b.Run(design.String(), func(b *testing.B) {
			benchSpeedup(b, apps.Heat, 64, func(c *Config) { c.Picos.Design = design })
		})
	}
}

// BenchmarkAblationWakeOrder compares last-first (paper) vs first-first
// consumer wake order on Lu, the workload whose corner case the order
// causes (Figure 9).
func BenchmarkAblationWakeOrder(b *testing.B) {
	for _, wake := range []picos.WakeOrder{picos.WakeLastFirst, picos.WakeFirstFirst} {
		b.Run(wake.String(), func(b *testing.B) {
			benchSpeedup(b, apps.Lu, 32, func(c *Config) { c.Picos.Wake = wake })
		})
	}
}

// BenchmarkAblationSchedPolicy compares FIFO vs LIFO TS on Lu
// (Figure 9, right).
func BenchmarkAblationSchedPolicy(b *testing.B) {
	for _, pol := range []picos.SchedPolicy{picos.SchedFIFO, picos.SchedLIFO} {
		b.Run(pol.String(), func(b *testing.B) {
			benchSpeedup(b, apps.Lu, 32, func(c *Config) { c.Picos.Policy = pol })
		})
	}
}

// BenchmarkAblationInstances scales the future architecture of
// Figure 3a: 1x1 vs 2x2 vs 4x4 TRS/DCT on the finest-grained H264
// workload, with 24 workers.
func BenchmarkAblationInstances(b *testing.B) {
	res, err := apps.Generate(apps.H264Dec, 10, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		b.Run(string(rune('0'+n))+"x", func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Workers = 24
				cfg.Picos.NumTRS = n
				cfg.Picos.NumDCT = n
				r, err := Run(res.Trace, cfg)
				if err != nil {
					b.Fatal(err)
				}
				speedup = r.Speedup
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkAblationAdmission compares the credit-based deadlock-free
// admission against the prototype's slots-only policy on a VM-pressure
// workload (Cholesky at fine grain has 1-3 deps across many blocks).
func BenchmarkAblationAdmission(b *testing.B) {
	for _, adm := range []picos.AdmissionPolicy{picos.AdmitCredits, picos.AdmitSlotsOnly} {
		name := "credits"
		if adm == picos.AdmitSlotsOnly {
			name = "slots-only"
		}
		b.Run(name, func(b *testing.B) {
			benchSpeedup(b, apps.Cholesky, 64, func(c *Config) { c.Picos.Admission = adm })
		})
	}
}
