// Package sched is the pluggable execution layer shared by every
// engine that models workers pulling ready tasks: the Picos HIL runner
// (internal/hil), the software-only runtime (internal/nanos) and the
// zero-overhead roofline (internal/perfect).
//
// It factors the previously per-engine worker model — a flat worker
// array plus an idle-index min-heap granting ready tasks FIFO to the
// lowest-index idle core — into three orthogonal, spec-driven pieces:
//
//   - worker classes: heterogeneous platforms declared with the grammar
//     "4xfast+4xslow:2.0+1xaccel:0.25@stencil_2d,fft" — count x name,
//     an optional per-class service-time multiplier (task duration is
//     scaled by it, so 2.0 is a half-speed core and 0.25 a 4x
//     accelerator), and an optional task-kind affinity list after '@'
//     (a class with affinity runs ONLY tasks of those kinds);
//   - grant policies (Policy): fifo preserves the historical
//     lowest-index/oldest-ready semantics bit for bit, lifo grants the
//     youngest ready task, priority grants by critical-path bottom
//     level from taskgraph, locality prefers pairing a task with the
//     class that last ran its kind;
//   - work stealing (per-class ready queues with a deterministic
//     ascending-class victim order), off by default.
//
// The design space follows HTS (arXiv:1907.00271): classes, affinity,
// policy queues and stealing are independent knobs so sweeps can cross
// them freely.
package sched

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Class is one worker class of a heterogeneous platform.
type Class struct {
	// Name identifies the class (e.g. "fast", "slow", "accel").
	Name string
	// Count is the number of workers of this class (>= 1).
	Count int
	// Mult is the service-time multiplier applied to task durations on
	// this class: 1.0 is the baseline core, 2.0 takes twice as long,
	// 0.25 is a 4x accelerator. Must be > 0.
	Mult float64
	// Affinity, when non-empty, restricts the class to tasks of these
	// kinds (trace kind names). A class without affinity runs any task.
	Affinity []string
}

// Classes is an ordered list of worker classes. Worker indices are
// assigned contiguously in declaration order: class 0 holds workers
// [0, Count0), class 1 holds [Count0, Count0+Count1), and so on — so
// with the historical lowest-index-first grant, earlier classes are
// preferred. Declare the fastest class first.
type Classes []Class

// ErrNoEligibleClass is returned when a trace contains a task kind that
// no declared worker class may run.
var ErrNoEligibleClass = errors.New("sched: task kind has no eligible worker class")

// Parse parses the worker-class grammar:
//
//	spec     := class ("+" class)*
//	class    := count "x" name [":" mult] ["@" kind ("," kind)*]
//	count    := positive integer
//	mult     := positive float (default 1.0)
//
// Example: "4xfast+4xslow:2.0+1xaccel:0.25@stencil_2d,fft".
// An empty string parses to nil (the homogeneous default).
func Parse(spec string) (Classes, error) {
	if spec == "" {
		return nil, nil
	}
	var cs Classes
	for _, seg := range strings.Split(spec, "+") {
		c, err := parseClass(seg)
		if err != nil {
			return nil, fmt.Errorf("sched: class %q: %w", seg, err)
		}
		for _, prev := range cs {
			if prev.Name == c.Name {
				return nil, fmt.Errorf("sched: duplicate class name %q", c.Name)
			}
		}
		cs = append(cs, c)
	}
	return cs, nil
}

func parseClass(seg string) (Class, error) {
	c := Class{Mult: 1.0}
	xi := strings.Index(seg, "x")
	if xi <= 0 {
		return c, errors.New(`want "<count>x<name>[:<mult>][@kind,...]"`)
	}
	n, err := strconv.Atoi(seg[:xi])
	if err != nil || n < 1 {
		return c, fmt.Errorf("bad worker count %q", seg[:xi])
	}
	c.Count = n
	rest := seg[xi+1:]
	if at := strings.Index(rest, "@"); at >= 0 {
		for _, fam := range strings.Split(rest[at+1:], ",") {
			if fam == "" {
				return c, errors.New("empty kind in affinity list")
			}
			c.Affinity = append(c.Affinity, fam)
		}
		rest = rest[:at]
	}
	if ci := strings.Index(rest, ":"); ci >= 0 {
		m, err := strconv.ParseFloat(rest[ci+1:], 64)
		if err != nil || !(m > 0) || math.IsInf(m, 0) {
			return c, fmt.Errorf("bad service-time multiplier %q", rest[ci+1:])
		}
		c.Mult = m
		rest = rest[:ci]
	}
	if rest == "" {
		return c, errors.New("empty class name")
	}
	for _, r := range rest {
		if !(r == '_' || r == '-' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return c, fmt.Errorf("bad class name %q", rest)
		}
	}
	c.Name = rest
	return c, nil
}

// String re-serializes the classes in the Parse grammar.
func (cs Classes) String() string {
	var b strings.Builder
	for i, c := range cs {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%dx%s", c.Count, c.Name)
		if c.Mult != 1.0 {
			fmt.Fprintf(&b, ":%g", c.Mult)
		}
		if len(c.Affinity) > 0 {
			b.WriteByte('@')
			b.WriteString(strings.Join(c.Affinity, ","))
		}
	}
	return b.String()
}

// Workers returns the total worker count across all classes.
func (cs Classes) Workers() int {
	n := 0
	for _, c := range cs {
		n += c.Count
	}
	return n
}

// Uniform reports whether the classes describe the historical
// homogeneous platform: at most one class at baseline speed with no
// affinity (nil Classes count as uniform).
func (cs Classes) Uniform() bool {
	switch len(cs) {
	case 0:
		return true
	case 1:
		return cs[0].Mult == 1.0 && len(cs[0].Affinity) == 0
	default:
		return false
	}
}

// Single returns the degenerate homogeneous platform of n baseline
// workers, for engines that normalize a class-less Spec onto the pool.
func Single(n int) Classes {
	return Classes{{Name: "worker", Count: n, Mult: 1.0}}
}

// Scale returns dur scaled by class ci's service-time multiplier,
// rounded up and clamped to at least one cycle.
func (cs Classes) Scale(ci int, dur uint64) uint64 {
	m := cs[ci].Mult
	if m == 1.0 {
		return dur
	}
	d := uint64(math.Ceil(float64(dur) * m))
	if d == 0 {
		d = 1
	}
	return d
}

// Eligibility resolves each class's affinity list against a trace's
// kind table (kind id k > 0 names kinds[k-1]; kind 0 is "unkinded").
// A nil row means the class runs every kind; otherwise row[k] reports
// whether kind id k may run on the class. Affinity names absent from
// the table simply match nothing (the class sits idle for this trace).
func (cs Classes) Eligibility(kinds []string) [][]bool {
	el := make([][]bool, len(cs))
	for ci, c := range cs {
		if len(c.Affinity) == 0 {
			continue
		}
		row := make([]bool, len(kinds)+1)
		for _, fam := range c.Affinity {
			for ki, k := range kinds {
				if k == fam {
					row[ki+1] = true
				}
			}
		}
		el[ci] = row
	}
	return el
}

// BestMult returns the smallest service-time multiplier among classes
// eligible for kind id k — the speed of the best possible placement,
// used to weight the perfect roofline's critical path. el must come
// from Eligibility. The boolean is false when no class is eligible.
func (cs Classes) BestMult(el [][]bool, k uint16) (float64, bool) {
	best, ok := 0.0, false
	for ci, c := range cs {
		if el[ci] != nil && !el[ci][k] {
			continue
		}
		if !ok || c.Mult < best {
			best, ok = c.Mult, true
		}
	}
	return best, ok
}

// CheckCoverage verifies that every kind id marked in present (indexed
// 0..len(kinds), with 0 the unkinded sentinel) has at least one
// eligible class, returning ErrNoEligibleClass otherwise. Engines call
// this at Reset so affinity misconfigurations are typed construction
// errors instead of silent deadlocks.
func (cs Classes) CheckCoverage(kinds []string, present []bool) error {
	el := cs.Eligibility(kinds)
	for k, p := range present {
		if !p {
			continue
		}
		if _, ok := cs.BestMult(el, uint16(k)); !ok {
			name := "(unkinded)"
			if k > 0 {
				name = kinds[k-1]
			}
			return fmt.Errorf("%w: kind %s under classes %q", ErrNoEligibleClass, name, cs.String())
		}
	}
	return nil
}

// Validate checks structural invariants beyond what Parse enforces,
// for Classes built programmatically.
func (cs Classes) Validate() error {
	for i, c := range cs {
		if c.Count < 1 {
			return fmt.Errorf("sched: class %q has count %d", c.Name, c.Count)
		}
		if !(c.Mult > 0) || math.IsInf(c.Mult, 0) {
			return fmt.Errorf("sched: class %q has multiplier %v", c.Name, c.Mult)
		}
		if c.Name == "" {
			return fmt.Errorf("sched: class %d has no name", i)
		}
		for j := 0; j < i; j++ {
			if cs[j].Name == c.Name {
				return fmt.Errorf("sched: duplicate class name %q", c.Name)
			}
		}
	}
	return nil
}

// Policy selects how a ready task is chosen for an idle worker.
type Policy uint8

const (
	// FIFO grants the oldest ready task to the lowest-index idle
	// worker — the historical semantics, preserved bit for bit.
	FIFO Policy = iota
	// LIFO grants the youngest ready task.
	LIFO
	// Priority grants the ready task with the largest duration-weighted
	// critical-path bottom level (taskgraph.BottomLevels), oldest first
	// on ties.
	Priority
	// Locality prefers pairing a task with the worker class that last
	// ran the task's kind, falling back to FIFO order when the
	// preferred class has no idle worker.
	Locality
)

// ParsePolicy maps a Spec string to a Policy; "" means FIFO.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fifo":
		return FIFO, nil
	case "lifo":
		return LIFO, nil
	case "priority":
		return Priority, nil
	case "locality":
		return Locality, nil
	default:
		return FIFO, fmt.Errorf("sched: unknown policy %q (want fifo, lifo, priority or locality)", s)
	}
}

// String returns the Spec spelling of the policy.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	case Priority:
		return "priority"
	case Locality:
		return "locality"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Plan is a fully parsed scheduling configuration, produced once by
// sim.Spec.SchedPlan and threaded to every engine.
type Plan struct {
	// Classes is nil for the homogeneous default.
	Classes Classes
	// Policy is the grant policy (FIFO by default).
	Policy Policy
	// Steal enables per-class ready queues with deterministic
	// ascending-class victim order.
	Steal bool
}

// Trivial reports whether the plan is the historical execution model —
// uniform workers, FIFO grants, no stealing — for which engines keep
// their legacy bit-exact paths.
func (p Plan) Trivial() bool {
	return p.Classes.Uniform() && p.Policy == FIFO && !p.Steal
}
