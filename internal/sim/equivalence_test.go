package sim_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/sim"

	_ "repro/internal/engines"
)

// equivalenceEngines are the three Picos HIL integration modes — the
// engines whose runner actually branches on the FastForward knob.
var equivalenceEngines = []string{"picos-hw", "picos-comm", "picos-full"}

// equivalenceWorkloads is the full workload matrix of the differential
// suite: the six real benchmarks of Table I (at a reduced problem size
// so the cycle-stepped reference side stays CI-friendly; h264dec uses
// its own frame-count sizing), the seven synthetic capacity cases of
// Table IV, and five parameterized dependence-pattern families —
// including the duration-jittered random family and the in-place
// (fields=1) variant, whose per-step version chains stress the DCT
// batching hardest.
func equivalenceWorkloads() []sim.Spec {
	specs := []sim.Spec{
		{Workload: "heat", Problem: 768},
		{Workload: "lu", Problem: 768},
		{Workload: "mlu", Problem: 768},
		{Workload: "sparselu", Problem: 768},
		{Workload: "cholesky", Problem: 768},
		{Workload: "h264dec"},
	}
	for c := 1; c <= 7; c++ {
		specs = append(specs, sim.Spec{Workload: fmt.Sprintf("case%d", c)})
	}
	for _, pattern := range []string{
		"pattern:stencil_1d?width=16&steps=12",
		"pattern:fft?width=16&steps=10",
		"pattern:all_to_all?width=8&steps=8",
		"pattern:random_nearest?width=12&steps=10&k=4&jitter=10",
		"pattern:tree?width=16&steps=8&fields=1",
		"pattern:stencil_2d?width=6&height=4&steps=8",
		"pattern:wavefront?width=5&height=4&steps=8",
		"pattern:stencil_1d?width=16&steps=10&gaps=5",
		"pattern:nearest?width=8&steps=8&k=3&regions=3",
	} {
		specs = append(specs, sim.Spec{Workload: pattern})
	}
	return specs
}

// resultJSON canonicalizes a Result for comparison: the full JSON
// serialization, schedule arrays and stats included.
func resultJSON(t *testing.T, res *sim.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// TestFastPathEquivalence runs the {picos-hw, picos-comm, picos-full} x
// {6 benchmarks, 7 synthetic cases} matrix twice — event-driven fast
// path on vs the cycle-stepped reference loop — and asserts the two
// Results are JSON-identical, including per-task schedules, start order
// and every accelerator counter (conflict/stall/blocked cycles
// included, which the fast path batch-accounts instead of accruing
// per cycle).
func TestFastPathEquivalence(t *testing.T) {
	for _, engine := range equivalenceEngines {
		for _, base := range equivalenceWorkloads() {
			spec := base
			spec.Engine = engine
			t.Run(engine+"/"+spec.Workload, func(t *testing.T) {
				t.Parallel()
				fast := spec
				fast.FastForward = sim.Bool(true)
				ref := spec
				ref.FastForward = sim.Bool(false)

				fres, err := sim.Run(fast)
				if err != nil {
					t.Fatalf("fast path: %v", err)
				}
				rres, err := sim.Run(ref)
				if err != nil {
					t.Fatalf("cycle-stepped reference: %v", err)
				}
				fj, rj := resultJSON(t, fres), resultJSON(t, rres)
				if fj != rj {
					t.Errorf("fast path diverges from cycle-stepped reference\nfast: %s\nref:  %s", fj, rj)
				}
				if fres.Stats == nil || rres.Stats == nil {
					t.Fatal("picos engines must report stats")
				}
				if *fres.Stats != *rres.Stats {
					t.Errorf("stats diverge\nfast: %+v\nref:  %+v", *fres.Stats, *rres.Stats)
				}
			})
		}
	}
}

// TestFastPathEquivalenceKnobs widens the differential net beyond the
// default configuration: the cycle-stepped reference must also match
// under the LIFO scheduler, the slots-only admission policy (which
// exercises DCT head-of-line stall batching), the direct-hash DM design
// (which exercises DM-conflict stall batching), the first-first wake
// ablation and a multi-TRS/DCT future architecture.
func TestFastPathEquivalenceKnobs(t *testing.T) {
	knobs := []struct {
		name      string
		workloads []string
		mut       func(*sim.Spec)
	}{
		{"lifo", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.Policy = "lifo" }},
		{"slots", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.Admission = "slots" }},
		// The direct-hash DM wedges case7 under either admission policy
		// (see TestFastPathWedgeDetection); heat with slots-only
		// admission survives with millions of DM-conflict stall cycles —
		// exactly the batch-accounting the fast path must reproduce.
		{"8way", []string{"case4"}, func(s *sim.Spec) { s.Design = "8way" }},
		{"8way-slots", []string{"case4", "heat"}, func(s *sim.Spec) { s.Design = "8way"; s.Admission = "slots" }},
		{"first-first", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.Wake = "first-first" }},
		{"4trs4dct", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.NumTRS = 4; s.NumDCT = 4 }},
		// Sharded dependence fabric: partitioned DM/VM, arbiter-routed
		// GW fan-out and shard-hop distances must all batch identically
		// on the fast path, under both shard hashes and with the hop
		// latency ablated to zero.
		{"2dct", []string{"case4", "heat"}, func(s *sim.Spec) { s.NumDCT = 2 }},
		{"4dct-lowbits", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.NumDCT = 4; s.ShardHash = "low-bits" }},
		{"4dct-freehop", []string{"case4", "heat"}, func(s *sim.Spec) { s.NumDCT = 4; s.ShardHop = -1 }},
		{"2dct-hop4", []string{"case4", "heat"}, func(s *sim.Spec) { s.NumDCT = 2; s.ShardHop = 4 }},
		{"1worker", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.Workers = 1 }},
		// Creation run-ahead pipeline: a bounded submission buffer makes
		// Submit reject and the platform park/retry (the descriptor feed
		// in HW-only, the link-delivery parking in the comm modes, plus
		// the master's run-ahead window in Full-system). The fast path
		// must reproduce the per-cycle loop's retry timing exactly.
		{"newq1", []string{"case2", "heat"}, func(s *sim.Spec) { s.NewQDepth = 1 }},
		{"newq-runahead", []string{"case2", "sparselu", "heat"}, func(s *sim.Spec) { s.NewQDepth = 4; s.RunAhead = 2 }},
		{"newq-8way-slots", []string{"sparselu", "heat"}, func(s *sim.Spec) {
			s.NewQDepth = 8
			s.RunAhead = 6
			s.Design = "8way"
			s.Admission = "slots"
		}},
		// The pre-sidetrack head-of-line conflict policy stays exact too.
		{"conflict-block", []string{"case4", "heat"}, func(s *sim.Spec) {
			s.Conflict = "block"
			s.Design = "8way"
			s.Admission = "slots"
		}},
		{"runahead-unbounded", []string{"case2"}, func(s *sim.Spec) { s.NewQDepth = 2; s.RunAhead = -1 }},
		// Heterogeneous scheduling layer: worker classes, non-FIFO grant
		// policies and cross-class stealing all route grants through the
		// sched.Pool path instead of the legacy lowest-index scan, and the
		// fast path must still reproduce the per-cycle loop exactly.
		{"hetero", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.WorkerClasses = "8xfast+4xslow:2.0" }},
		{"hetero-affinity-priority", []string{"heat"}, func(s *sim.Spec) {
			s.WorkerClasses = "6xfast@gs+6xslow:2.0"
			s.Sched = "priority"
		}},
		{"steal-locality", []string{"case4", "heat"}, func(s *sim.Spec) {
			s.WorkerClasses = "6xa+6xb:1.5"
			s.Sched = "locality"
			s.Steal = true
		}},
		// Deadlock-avoidance admission: case7's 15-same-set bursts are
		// refused (structurally, in both loops identically) while the
		// admittable remainder completes.
		{"avoid-deadlock", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.Admission = "avoid-deadlock" }},
		{"avoid-deadlock-park-8way", []string{"case7"}, func(s *sim.Spec) {
			s.Design = "8way"
			s.Admission = "avoid-deadlock-park"
		}},
		// Streaming ingestion: Spec.Window > 0 feeds the runner from a
		// lazy bounded-window source instead of a materialized task
		// array, and the streamed fast path must reproduce the streamed
		// per-cycle loop exactly — alone and composed with the
		// NewQDepth/RunAhead backpressure. The window0 row pins the
		// routing contract: an explicit zero window takes the
		// materialized path by construction, so its rows are the same
		// bytes as the matrix's default rows.
		{"window0", []string{"case4", "heat"}, func(s *sim.Spec) { s.Window = 0 }},
		{"window16", []string{"case4", "case7", "heat"}, func(s *sim.Spec) { s.Window = 16 }},
		{"window256", []string{"case2", "sparselu", "heat"}, func(s *sim.Spec) { s.Window = 256 }},
		{"window16-newq-runahead", []string{"case2", "heat"}, func(s *sim.Spec) {
			s.Window = 16
			s.NewQDepth = 4
			s.RunAhead = 2
		}},
		// Fault plans: every injection — probabilistic link faults drawn
		// at send events, cycle-triggered kills and stalls — must fire at
		// identical cycles on both loops, and recovery (retransmission,
		// regrant) must replay identically too. The armed-but-silent row
		// pins the nil-gating: clauses that never trigger leave the run
		// byte-identical to the matrix's fault-free baseline by
		// construction (same Result JSON the other rows compare).
		{"faults-silent", []string{"case4", "heat"}, func(s *sim.Spec) {
			s.Faults = "worker:failstop=2@cycle9000000000+axi:drop=0.0@seed7"
			s.Recovery = "retry=3:backoff200+regrant"
		}},
		{"faults-drop-retry", []string{"case4", "heat"}, func(s *sim.Spec) {
			s.Faults = "axi:drop=0.01@seed7"
			s.Recovery = "retry=3:backoff200"
		}},
		{"faults-link-noise", []string{"case4", "heat"}, func(s *sim.Spec) {
			s.Faults = "axi:delay=0.05x300@seed2+axi:dup=0.02@seed3+trs:stall=5000@cycle20000"
		}},
		{"faults-failstop-regrant", []string{"sparselu", "heat"}, func(s *sim.Spec) {
			s.Faults = "worker:failstop=2@cycle50000"
			s.Recovery = "regrant"
		}},
	}
	for _, engine := range equivalenceEngines {
		for _, k := range knobs {
			for _, workload := range k.workloads {
				spec := sim.Spec{Engine: engine, Workload: workload}
				if workload == "heat" {
					spec.Problem = 512
				}
				if workload == "sparselu" {
					spec.Problem = 768
				}
				k.mut(&spec)
				t.Run(engine+"/"+k.name+"/"+workload, func(t *testing.T) {
					t.Parallel()
					fast := spec
					fast.FastForward = sim.Bool(true)
					ref := spec
					ref.FastForward = sim.Bool(false)
					fres, err := sim.Run(fast)
					if err != nil {
						t.Fatalf("fast path: %v", err)
					}
					rres, err := sim.Run(ref)
					if err != nil {
						t.Fatalf("cycle-stepped reference: %v", err)
					}
					if fj, rj := resultJSON(t, fres), resultJSON(t, rres); fj != rj {
						t.Errorf("fast path diverges from cycle-stepped reference\nfast: %s\nref:  %s", fj, rj)
					}
				})
			}
		}
	}
}

// TestFastPathWedgeDetection: case7 on the direct-hash 8-way DM is a
// genuine model deadlock (admitted tasks whose dependences can never be
// stored — the hazard of the paper's deadlock discussion). Both loops
// must prove it and report it structurally: a Result with Wedged set and
// the same partial completion set, not an opaque error. The exact
// WedgedAt cycle may differ between the two loops (they prove the same
// dead state at different points of their iteration), but the set of
// completed tasks is part of the deterministic schedule and must match.
func TestFastPathWedgeDetection(t *testing.T) {
	spec := sim.Spec{Engine: "picos-hw", Workload: "case7", Design: "8way", Watchdog: 200_000}
	spec.FastForward = sim.Bool(true)
	fres, err := sim.Run(spec)
	if err != nil {
		t.Fatalf("fast path errored instead of reporting a wedge: %v", err)
	}
	if !fres.Wedged || fres.WedgedAt == 0 {
		t.Errorf("fast path did not report the deadlock: wedged=%v at %d", fres.Wedged, fres.WedgedAt)
	}
	spec.FastForward = sim.Bool(false)
	rres, err := sim.Run(spec)
	if err != nil {
		t.Fatalf("cycle-stepped reference errored instead of reporting a wedge: %v", err)
	}
	if !rres.Wedged || rres.WedgedAt == 0 {
		t.Errorf("cycle-stepped reference did not report the deadlock: wedged=%v at %d", rres.Wedged, rres.WedgedAt)
	}
	if len(fres.Finish) != len(rres.Finish) {
		t.Fatal("schedule array lengths differ")
	}
	for i := range fres.Finish {
		if (fres.Finish[i] > 0) != (rres.Finish[i] > 0) {
			t.Errorf("task %d completion differs between loops (fast %d, ref %d)", i, fres.Finish[i], rres.Finish[i])
		}
	}
}

// TestWedgeMachineReadableInSweep: a sweep containing deadlocking grid
// points must deliver them as Results with Wedged set, not as dropped
// error items — the aligned-layout all_to_all pattern needs 15
// same-set DM ways on 8way, so it wedges, while p8way completes it.
func TestWedgeMachineReadableInSweep(t *testing.T) {
	grid := sim.Grid{
		Base:    sim.Spec{Engine: "picos-hw", Workload: "pattern:all_to_all?width=32&steps=8&layout=aligned", Watchdog: 500_000},
		Designs: []string{"8way", "p8way"},
	}
	items := sim.Sweep(grid.Expand(), 0)
	if len(items) != 2 {
		t.Fatalf("expected 2 items, got %d", len(items))
	}
	for _, it := range items {
		if it.Err != "" {
			t.Fatalf("%s: sweep dropped the run with error %q", it.Spec.Design, it.Err)
		}
	}
	if !items[0].Result.Wedged {
		t.Error("8way aligned all_to_all should wedge")
	}
	if items[1].Result.Wedged {
		t.Error("p8way spread the aligned buffers and should complete")
	}
}
