// Package perfect implements the paper's Perfect Simulator: a
// zero-overhead list scheduler that executes the trace's dependence DAG
// on P workers, showing "the available parallelism peak" — the roofline
// every real runtime is measured against in Figure 11.
package perfect

import (
	"container/heap"
	"fmt"
	"sync"

	"repro/internal/sched"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// Result is the outcome of a roofline run.
type Result struct {
	Workers  int
	Makespan uint64
	Baseline uint64
	Speedup  float64
	Start    []uint64
	Finish   []uint64
}

// runHeap orders running tasks by finish time.
type runHeap []runItem

type runItem struct {
	finish uint64
	task   int32
	worker int32 // heterogeneous path only; 0 on the homogeneous path
}

func (h runHeap) Len() int           { return len(h) }
func (h runHeap) Less(i, j int) bool { return h[i].finish < h[j].finish }
func (h runHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)        { *h = append(*h, x.(runItem)) }
func (h *runHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// nextEvent reports the cycle of the earliest in-flight completion —
// the run's event horizon, the perfect-scheduler counterpart of
// picos.NextEvent. The roofline scheduler is inherently event-driven,
// so sim.Spec's FastForward knob has nothing to switch here.
func (h runHeap) nextEvent() (uint64, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].finish, true
}

// runScratch is the per-run working state of the list scheduler, pooled
// across runs so steady-state sweeps re-simulate without reallocating
// the run heap and per-task bookkeeping; only the Start/Finish arrays
// that escape into the Result are fresh.
type runScratch struct {
	remaining []int32
	ready     []int32
	running   runHeap
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// grab sizes the scratch for n tasks, reusing capacity where possible.
func (s *runScratch) grab(n int) {
	if cap(s.remaining) < n {
		s.remaining = make([]int32, n)
	} else {
		s.remaining = s.remaining[:n]
	}
	s.ready = s.ready[:0]
	s.running = s.running[:0]
}

// Run schedules the trace on `workers` zero-overhead workers: a task
// starts the moment a worker is free and all its predecessors have
// finished; ties dispatch in creation order.
func Run(tr *trace.Trace, workers int) (*Result, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("perfect: need at least 1 worker, got %d", workers)
	}
	g := taskgraph.Build(tr)
	n := g.N
	res := &Result{
		Workers:  workers,
		Baseline: tr.Baseline(),
		Start:    make([]uint64, n),
		Finish:   make([]uint64, n),
	}
	if n == 0 {
		return res, nil
	}

	s := scratchPool.Get().(*runScratch)
	s.grab(n)
	remaining := s.remaining
	ready := s.ready // FIFO in becoming-ready order
	for i := 0; i < n; i++ {
		remaining[i] = int32(len(g.Pred[i]))
		if remaining[i] == 0 {
			ready = append(ready, int32(i))
		}
	}

	running := &s.running
	defer func() {
		// Hand the (possibly grown) buffers back to the pool, emptied —
		// error paths included.
		s.ready = ready[:0]
		*running = (*running)[:0]
		scratchPool.Put(s)
	}()
	now := uint64(0)
	free := workers
	scheduled := 0
	readyHead := 0

	for scheduled < n || running.Len() > 0 {
		// Start everything we can at the current time.
		for free > 0 && readyHead < len(ready) {
			t := ready[readyHead]
			readyHead++
			res.Start[t] = now
			res.Finish[t] = now + g.Durations[t]
			heap.Push(running, runItem{finish: res.Finish[t], task: t})
			free--
			scheduled++
		}
		next, ok := running.nextEvent()
		if !ok {
			if readyHead >= len(ready) && scheduled < n {
				return nil, fmt.Errorf("perfect: dependence cycle detected at %d/%d tasks", scheduled, n)
			}
			continue
		}
		// Advance to the next completion horizon (batch all at the same
		// cycle).
		now = next
		it := heap.Pop(running).(runItem)
		complete := func(t int32) {
			for _, s := range g.Succ[t] {
				remaining[s]--
				if remaining[s] == 0 {
					ready = append(ready, s)
				}
			}
			free++
		}
		complete(it.task)
		for running.Len() > 0 && (*running)[0].finish == now {
			complete(heap.Pop(running).(runItem).task)
		}
	}

	for _, f := range res.Finish {
		if f > res.Makespan {
			res.Makespan = f
		}
	}
	if res.Makespan > 0 {
		res.Speedup = float64(res.Baseline) / float64(res.Makespan)
	}
	return res, nil
}

// RunClasses schedules the trace on a heterogeneous zero-overhead
// platform. Greedy work-conserving scheduling is not anomaly-free under
// heterogeneity — eagerly starting a task on a slow idle worker can lose
// to waiting for a fast one — so a single list pass is too weak to serve
// as a roofline. RunClasses therefore runs four achievable schedules and
// returns the best: {becoming-ready FIFO, critical-path priority
// weighted by each task's best eligible class} x {any eligible class,
// best eligible class only}. Every candidate is a real schedule (it
// passes the dependence oracle), so the minimum is achievable and the
// property-suite "engine >= perfect" invariant stays meaningful under
// worker classes. Uniform single-class platforms take the homogeneous
// Run path, which this generalizes.
func RunClasses(tr *trace.Trace, classes sched.Classes) (*Result, error) {
	if classes.Uniform() {
		workers := classes.Workers()
		if len(classes) == 0 {
			workers = 0
		}
		return Run(tr, workers)
	}
	if err := classes.Validate(); err != nil {
		return nil, err
	}
	g := taskgraph.Build(tr)
	n := g.N
	if n == 0 {
		return &Result{
			Workers:  classes.Workers(),
			Baseline: tr.Baseline(),
			Start:    []uint64{},
			Finish:   []uint64{},
		}, nil
	}
	el := classes.Eligibility(tr.Kinds)
	present := make([]bool, len(tr.Kinds)+1)
	for i := range tr.Tasks {
		present[tr.Tasks[i].Kind] = true
	}
	if err := classes.CheckCoverage(tr.Kinds, present); err != nil {
		return nil, err
	}

	// Critical-path bottom levels with every task weighted by its best
	// eligible class — the heterogeneity-aware priority key.
	wbl := make([]uint64, n)
	for i := n - 1; i >= 0; i-- {
		var down uint64
		for _, s := range g.Succ[i] {
			if wbl[s] > down {
				down = wbl[s]
			}
		}
		m, _ := classes.BestMult(el, tr.Tasks[i].Kind)
		wbl[i] = down + scaleMult(m, g.Durations[i])
	}

	var best *Result
	for _, cand := range [...]struct {
		prio     []uint64
		bestOnly bool
	}{
		{nil, false}, // FIFO, any eligible class
		{wbl, false}, // weighted critical path, any eligible class
		{nil, true},  // FIFO, best class only
		{wbl, true},  // weighted critical path, best class only
	} {
		res, err := runClassList(tr, classes, g, el, cand.prio, cand.bestOnly)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Makespan < best.Makespan {
			best = res
		}
	}
	return best, nil
}

// scaleMult is Classes.Scale for a raw multiplier.
func scaleMult(m float64, dur uint64) uint64 {
	if m == 1.0 {
		return dur
	}
	d := uint64(float64(dur) * m)
	if d == 0 {
		d = 1
	}
	return d
}

// runClassList is one heterogeneous list-scheduling pass: ready tasks
// are granted in prio order (descending, becoming-ready order on ties
// and when prio is nil) to the idle eligible worker with the smallest
// multiplier (lowest worker index on ties); with bestOnly a task only
// accepts classes matching its best eligible multiplier.
func runClassList(tr *trace.Trace, classes sched.Classes, g *taskgraph.Graph, el [][]bool, prio []uint64, bestOnly bool) (*Result, error) {
	n := g.N
	workers := classes.Workers()
	res := &Result{
		Workers:  workers,
		Baseline: tr.Baseline(),
		Start:    make([]uint64, n),
		Finish:   make([]uint64, n),
	}

	// Workers are expanded contiguously in class declaration order, one
	// lowest-index-first idle heap per class.
	classOf := make([]uint8, workers)
	idle := make([]sched.IdleHeap, len(classes))
	w := 0
	for ci, c := range classes {
		for k := 0; k < c.Count; k++ {
			classOf[w] = uint8(ci)
			idle[ci].Push(w)
			w++
		}
	}
	eligible := func(ci int, kind uint16) bool {
		if el[ci] != nil && !el[ci][kind] {
			return false
		}
		if !bestOnly {
			return true
		}
		m, _ := classes.BestMult(el, kind)
		return classes[ci].Mult == m
	}
	// bestIdle picks the idle eligible worker with the smallest
	// multiplier; among equal multipliers, the lowest worker index.
	bestIdle := func(kind uint16) (int, bool) {
		bi := -1
		for ci := range classes {
			if len(idle[ci]) == 0 || !eligible(ci, kind) {
				continue
			}
			if bi < 0 || classes[ci].Mult < classes[bi].Mult ||
				(classes[ci].Mult == classes[bi].Mult && idle[ci][0] < idle[bi][0]) {
				bi = ci
			}
		}
		if bi < 0 {
			return 0, false
		}
		return idle[bi].Pop(), true
	}

	remaining := make([]int32, n)
	var ready []int32 // kept sorted: prio descending, becoming-ready on ties
	insert := func(t int32) {
		if prio == nil {
			ready = append(ready, t)
			return
		}
		i := len(ready)
		for i > 0 && prio[ready[i-1]] < prio[t] {
			i--
		}
		ready = append(ready, 0)
		copy(ready[i+1:], ready[i:])
		ready[i] = t
	}
	for i := 0; i < n; i++ {
		remaining[i] = int32(len(g.Pred[i]))
		if remaining[i] == 0 {
			insert(int32(i))
		}
	}
	var running runHeap
	now := uint64(0)
	scheduled := 0

	for scheduled < n || running.Len() > 0 {
		// Grant pass: place every ready task (in list order) that has an
		// idle eligible worker; the rest stay ready. Placements only
		// consume workers, so one pass is complete.
		kept := ready[:0]
		for _, t := range ready {
			wi, ok := bestIdle(tr.Tasks[t].Kind)
			if !ok {
				kept = append(kept, t)
				continue
			}
			dur := classes.Scale(int(classOf[wi]), g.Durations[t])
			res.Start[t] = now
			res.Finish[t] = now + dur
			heap.Push(&running, runItem{finish: res.Finish[t], task: t, worker: int32(wi)})
			scheduled++
		}
		ready = kept
		next, ok := running.nextEvent()
		if !ok {
			if scheduled < n {
				return nil, fmt.Errorf("perfect: dependence cycle detected at %d/%d tasks", scheduled, n)
			}
			continue
		}
		now = next
		complete := func(it runItem) {
			for _, s := range g.Succ[it.task] {
				remaining[s]--
				if remaining[s] == 0 {
					insert(s)
				}
			}
			idle[classOf[it.worker]].Push(int(it.worker))
		}
		complete(heap.Pop(&running).(runItem))
		for running.Len() > 0 && running[0].finish == now {
			complete(heap.Pop(&running).(runItem))
		}
	}

	for _, f := range res.Finish {
		if f > res.Makespan {
			res.Makespan = f
		}
	}
	if res.Makespan > 0 {
		res.Speedup = float64(res.Baseline) / float64(res.Makespan)
	}
	return res, nil
}
