package sim

import (
	"errors"
	"fmt"

	"repro/internal/sched"
)

// DefaultWorkers is the worker count of the paper's HIL platform (12
// PL-side hardware workers / 12 Xeon cores), used when a Spec leaves
// Workers zero.
const DefaultWorkers = 12

// Spec declares one simulation run: which engine, which workload, and
// every knob that was previously spread across hil.Config, picos.Config
// and per-binary flag parsing. The zero value of every field means "the
// paper's default". Specs are plain data — JSON-serializable and safe to
// copy — so a sweep is just a slice of them.
type Spec struct {
	// Engine is the registry name: picos-hw, picos-comm, picos-full,
	// nanos, perfect (see Engines()).
	Engine string `json:"engine"`
	// Workload is the workload-registry name: one of the six real
	// benchmarks (heat, lu, mlu, sparselu, cholesky, h264dec), one of the
	// seven synthetic capacity cases (case1..case7), or "trace:<path>"
	// for a serialized trace file.
	Workload string `json:"workload"`
	// Problem is the problem size for real benchmarks: the matrix
	// dimension (default 2048), or the frame count for h264dec (default
	// 10). Ignored by synthetic and file workloads.
	Problem int `json:"problem,omitempty"`
	// Block is the block size for real benchmarks (default 128; 4 for
	// h264dec, whose "block" is the macroblock grouping).
	Block int `json:"block,omitempty"`
	// Workers is the worker count (default DefaultWorkers). Mutually
	// exclusive with WorkerClasses, which derives the worker count from
	// the class list; setting both is a typed construction error
	// (ErrWorkersAndClasses).
	Workers int `json:"workers,omitempty"`

	// Heterogeneous-platform scheduling knobs (the HTS design space).
	// WorkerClasses declares worker classes with the sched grammar, e.g.
	// "4xfast+4xslow:2.0+1xaccel:0.25@stencil_2d,fft": count x name, an
	// optional per-class service-time multiplier and an optional
	// task-kind affinity list. Empty means Workers homogeneous baseline
	// cores. Sched selects the grant policy: fifo (default, the
	// historical lowest-index semantics), lifo, priority (critical-path
	// bottom level), locality (prefer the class that last ran the
	// task's kind). Steal enables per-class ready queues with
	// deterministic ascending-class victim order.
	WorkerClasses string `json:"worker_classes,omitempty"`
	Sched         string `json:"sched,omitempty"`
	Steal         bool   `json:"steal,omitempty"`

	// Picos accelerator knobs; ignored by nanos and perfect.
	Design    string `json:"design,omitempty"`    // DM design: 8way, 16way, p8way (default)
	Policy    string `json:"policy,omitempty"`    // TS policy: fifo (default), lifo
	Admission string `json:"admission,omitempty"` // GW admission: credits (default), slots, avoid-deadlock, avoid-deadlock-park
	Wake      string `json:"wake,omitempty"`      // wake order: last-first (default), first-first
	Conflict  string `json:"conflict,omitempty"`  // DM conflict handling: sidetrack (default), block
	NumTRS    int    `json:"num_trs,omitempty"`   // TRS instances (default 1)
	NumDCT    int    `json:"num_dct,omitempty"`   // DCT instances (default 1)

	// Sharded dependence-fabric knobs (meaningful when NumDCT > 1).
	// ShardHash selects the address-to-shard hash: xor-fold (default) or
	// low-bits. ShardHop is the per-shard-crossed chain latency in
	// cycles: 0 means the calibrated default (1 cycle), a negative value
	// models a free (0-cycle) fabric.
	ShardHash string `json:"shard_hash,omitempty"`
	ShardHop  int    `json:"shard_hop,omitempty"`

	// Creation run-ahead pipeline knobs (the Picos HIL engines).
	// NewQDepth bounds the accelerator's memory-mapped submission buffer
	// (0 = unbounded, the preloading default); RunAhead bounds the
	// Full-system master's created-but-unsubmitted descriptor window
	// (0 = hil.DefaultRunAhead, negative = unbounded).
	NewQDepth int `json:"newq_depth,omitempty"`
	RunAhead  int `json:"run_ahead,omitempty"`

	// Window bounds streaming workload ingestion: the maximum number of
	// created-but-unretired task descriptors the engine keeps live at
	// once (the paper's prototype consumes a bounded descriptor stream,
	// never a whole graph). 0 means unbounded — the workload is
	// materialized and runs the legacy whole-trace path, byte-identical
	// to a run before the streaming layer existed. A positive window
	// streams the workload through trace.Source in O(window) heap;
	// results can legitimately differ from the unbounded run because the
	// window is modeled backpressure on creation, composing with
	// NewQDepth (the accelerator's submission buffer) and RunAhead (the
	// Full-system master's creation window). At the same window value the
	// fast and reference loops remain byte-identical.
	Window int `json:"window,omitempty"`

	// Watchdog bounds the simulated cycle count (0: engine default).
	Watchdog uint64 `json:"watchdog,omitempty"`

	// Deterministic fault injection and recovery (the Picos HIL engines;
	// nanos and perfect always run fault-free). Faults is a fault plan
	// in the faults grammar — clauses joined by "+", e.g.
	// "axi:drop=0.01@seed7+worker:failstop=2@cycle50000+dct:slowdown=4x:shard1"
	// — and Recovery the recovery-policy set, e.g.
	// "retry=3:backoff200+regrant+degrade=100000". Empty means
	// fault-free, which is byte-identical to a run without the fault
	// layer linked (the equivalence suite enforces it).
	Faults   string `json:"faults,omitempty"`
	Recovery string `json:"recovery,omitempty"`

	// FastForward selects the event-driven fast path of the Picos HIL
	// engines (nil or true: on, the default; false: force the per-cycle
	// reference loop — for debugging and for the differential
	// equivalence suite, which proves the two produce byte-identical
	// Results). Engines that are inherently event-driven (nanos,
	// perfect) ignore it. This is the only pointer field of Spec; copies
	// share it, which is safe because specs are read-only once built.
	FastForward *bool `json:"fast_forward,omitempty"`
}

// FastPath resolves the FastForward knob: nil means on.
func (s Spec) FastPath() bool { return s.FastForward == nil || *s.FastForward }

// ErrWorkersAndClasses is returned when a Spec sets both Workers and
// WorkerClasses: the class list already fixes the worker count, so a
// conflicting explicit count is a construction error, not a silent
// precedence rule.
var ErrWorkersAndClasses = errors.New("sim: Spec sets both Workers and WorkerClasses")

// SchedPlan parses the scheduling knobs (WorkerClasses, Sched, Steal)
// into a sched.Plan — the single place the class grammar and policy
// names are parsed, so every engine consumes the same validated
// configuration. It returns ErrWorkersAndClasses when both Workers and
// WorkerClasses are set (WithDefaults leaves Workers untouched when
// classes are declared, so a defaulted spec stays valid).
func (s Spec) SchedPlan() (sched.Plan, error) {
	var plan sched.Plan
	if s.WorkerClasses != "" && s.Workers != 0 {
		return plan, fmt.Errorf("%w: workers=%d, classes=%q", ErrWorkersAndClasses, s.Workers, s.WorkerClasses)
	}
	classes, err := sched.Parse(s.WorkerClasses)
	if err != nil {
		return plan, err
	}
	plan.Classes = classes
	plan.Policy, err = sched.ParsePolicy(s.Sched)
	if err != nil {
		return plan, err
	}
	plan.Steal = s.Steal
	return plan, nil
}

// ClassPlan parses only the WorkerClasses knob (with the same
// Workers-conflict check), for engines that honor heterogeneous
// classes but not the grant-policy knobs — the perfect roofline always
// grants greedily.
func (s Spec) ClassPlan() (sched.Classes, error) {
	if s.WorkerClasses != "" && s.Workers != 0 {
		return nil, fmt.Errorf("%w: workers=%d, classes=%q", ErrWorkersAndClasses, s.Workers, s.WorkerClasses)
	}
	return sched.Parse(s.WorkerClasses)
}

// Bool returns a pointer to v, for setting Spec.FastForward inline:
// spec.FastForward = sim.Bool(false).
func Bool(v bool) *bool { return &v }

// WithDefaults returns the spec with zero-valued shared fields replaced
// by their defaults. Engine-specific zero values are resolved by the
// engines themselves. When WorkerClasses is set, Workers stays zero —
// the class list fixes the worker count.
func (s Spec) WithDefaults() Spec {
	if s.Workers == 0 && s.WorkerClasses == "" {
		s.Workers = DefaultWorkers
	}
	return s
}
