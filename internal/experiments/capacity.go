package experiments

import (
	"fmt"
	"math"

	"repro/internal/asciiplot"
	"repro/internal/patterns"
	"repro/internal/sim"
)

func init() {
	Register("capacity-map", CapacityMap)
}

// capacityFamilies are the dependence-pattern families the capacity map
// sweeps, ordered from local to global communication.
var capacityFamilies = []string{
	"no_comm", "stencil_1d", "stencil_1d_periodic", "stencil_2d", "wavefront",
	"nearest", "spread", "random_nearest", "fft", "tree", "dom", "all_to_all",
}

// capacityEngines are the engine columns of the per-engine view.
var capacityEngines = []string{"picos-hw", "picos-comm", "picos-full"}

// CapacityCell is one grid point of the capacity map, the
// BENCH_patterns.json record.
type CapacityCell struct {
	Family   string `json:"family"`
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	Design   string `json:"design"`
	Layout   string `json:"layout"`
	// NumDCT is the DCT shard count of the shard-capacity lane; zero
	// (omitted in JSON) marks the single-DCT capacity-map lanes.
	NumDCT int `json:"num_dct,omitempty"`
	// Wedge-frontier lane (wedge-frontier): the buffer-multiplicity and
	// dependence-fan knobs of the run. Zero (omitted in JSON) marks the
	// lanes that run the pattern families at their default fields/k.
	Fields int `json:"fields,omitempty"`
	K      int `json:"k,omitempty"`
	// Heterogeneous-scheduling lane (hetero-scaling): the worker-class
	// declaration, grant policy and steal flag of the run. Empty Classes
	// marks the homogeneous capacity/shard lanes.
	Classes string `json:"classes,omitempty"`
	Sched   string `json:"sched,omitempty"`
	Steal   bool   `json:"steal,omitempty"`
	// Resilience lane: the deterministic fault plan and recovery-policy
	// strings of the run (empty on fault-free lanes), with the outcome
	// accounting — the fraction of tasks that completed and the
	// lost/recovered/refused tallies behind it.
	FaultPlan          string  `json:"fault_plan,omitempty"`
	Recovery           string  `json:"recovery,omitempty"`
	Faulted            bool    `json:"faulted,omitempty"`
	TimedOut           bool    `json:"timed_out,omitempty"`
	CompletionFraction float64 `json:"completion_fraction,omitempty"`
	LostTasks          int     `json:"lost_tasks,omitempty"`
	RecoveredTasks     int     `json:"recovered_tasks,omitempty"`
	RefusedTasks       int     `json:"refused_tasks,omitempty"`

	Wedged           bool    `json:"wedged,omitempty"`
	WedgedAt         uint64  `json:"wedged_at,omitempty"`
	Makespan         uint64  `json:"makespan"`
	Speedup          float64 `json:"speedup"`
	SpeedupVsPerfect float64 `json:"speedup_vs_perfect"`

	DMConflicts           uint64 `json:"dm_conflicts"`
	VMStallEvents         uint64 `json:"vm_stall_events"`
	DMConflictStallCycles uint64 `json:"dm_conflict_stall_cycles"`
	VMStallCycles         uint64 `json:"vm_stall_cycles"`
}

// capacityPattern renders the sweep's workload spec for one family. The
// full-size 1-D grid is 128 points x 16 steps: 256 live buffers, enough
// to overflow the 8-way direct hash under the malloc layout (16
// reachable sets x 8 ways = 128) while the 16-way and Pearson designs
// still hold it — the same capacity cliff Table II shows for SparseLu.
// The 2-D families get a 16x8 grid, the same 128 points per step.
func capacityPattern(family, layout string, opt Options) string {
	width, steps, height := 128, 16, 0
	if family == "stencil_2d" || family == "wavefront" {
		width, height = 16, 8
	}
	if opt.Quick {
		width, steps = 12, 8
		if height > 0 {
			width, height = 4, 3
		}
	}
	s := fmt.Sprintf("%s%s?width=%d&steps=%d", sim.PatternPrefix, family, width, steps)
	if height > 0 {
		s += fmt.Sprintf("&height=%d", height)
	}
	if layout != patterns.DefaultLayout {
		s += "&layout=" + layout
	}
	return s
}

// CapacityMapData executes the capacity-map sweep: every pattern family
// x DM design x Picos engine under the default malloc address layout,
// plus a worst-case aligned-layout lane on picos-hw (where the wide
// families genuinely deadlock the 8-way direct hash — reported as
// wedged cells, not errors), normalized per family against the Perfect
// roofline.
func CapacityMapData(opt Options) ([]CapacityCell, error) {
	fams := capacityFamilies
	engines := capacityEngines
	if opt.Quick {
		fams = fams[:4]
		engines = engines[:1]
	}

	type point struct {
		family, engine, design, layout string
	}
	var pts []point
	var specs []sim.Spec
	add := func(pt point) {
		pts = append(pts, pt)
		specs = append(specs, sim.Spec{
			Engine:   pt.engine,
			Workload: capacityPattern(pt.family, pt.layout, opt),
			Design:   pt.design,
		})
	}
	for _, f := range fams {
		for _, e := range engines {
			for _, d := range dmDesigns {
				add(point{f, e, d.spec, patterns.DefaultLayout})
			}
		}
	}
	if !opt.Quick {
		for _, f := range fams {
			for _, d := range dmDesigns {
				add(point{f, "picos-hw", d.spec, "aligned"})
			}
		}
	}
	// Perfect roofline, one run per family (design-independent).
	perfectIdx := make(map[string]int, len(fams))
	for _, f := range fams {
		perfectIdx[f] = len(specs)
		pts = append(pts, point{f, "perfect", "", patterns.DefaultLayout})
		specs = append(specs, sim.Spec{Engine: "perfect", Workload: capacityPattern(f, patterns.DefaultLayout, opt)})
	}

	// Through the option-aware helper, so the fast-path knob
	// (Options.CycleStepped) reaches these grid points like every other
	// experiment's.
	results, err := sweep(opt, specs)
	if err != nil {
		return nil, err
	}

	cells := make([]CapacityCell, 0, len(pts))
	for i, pt := range pts {
		if pt.engine == "perfect" {
			continue
		}
		res := results[i]
		cell := CapacityCell{
			Family:   pt.family,
			Workload: specs[i].Workload,
			Engine:   pt.engine,
			Design:   pt.design,
			Layout:   pt.layout,
			Wedged:   res.Wedged,
			WedgedAt: res.WedgedAt,
			Makespan: res.Makespan,
			Speedup:  res.Speedup,
		}
		if st := res.Stats; st != nil {
			cell.DMConflicts = st.DMConflicts
			cell.VMStallEvents = st.VMStallEvents
			cell.DMConflictStallCycles = st.DMConflictStallCycles
			cell.VMStallCycles = st.VMStallCycles
		}
		if roof := results[perfectIdx[pt.family]]; !res.Wedged && roof.Speedup > 0 {
			cell.SpeedupVsPerfect = res.Speedup / roof.Speedup
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// capacityMetric extracts one heatmap metric from a cell; wedged cells
// are NaN.
type capacityMetric struct {
	name string
	log  bool
	get  func(CapacityCell) float64
}

var capacityMetrics = []capacityMetric{
	{"#DM conflicts (+VM stall events)", true, func(c CapacityCell) float64 {
		return float64(c.DMConflicts + c.VMStallEvents)
	}},
	{"DM+VM stall cycles", true, func(c CapacityCell) float64 {
		return float64(c.DMConflictStallCycles + c.VMStallCycles)
	}},
	{"speedup vs perfect", false, func(c CapacityCell) float64 { return c.SpeedupVsPerfect }},
}

// distinct collects the distinct key values of the cells that pass the
// filter, in first-seen order.
func distinct(cells []CapacityCell, filter func(CapacityCell) bool, key func(CapacityCell) string) []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range cells {
		if filter != nil && !filter(c) {
			continue
		}
		if k := key(c); !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func hwLane(c CapacityCell) bool { return c.Engine == "picos-hw" }

// CapacityHeatmaps renders family x design heatmaps of the picos-hw
// lane for each metric, one per layout present in the cells.
func CapacityHeatmaps(cells []CapacityCell) []*asciiplot.Heatmap {
	layouts := distinct(cells, hwLane, func(c CapacityCell) string { return c.Layout })
	var maps []*asciiplot.Heatmap
	for _, layout := range layouts {
		fams := distinct(cells,
			func(c CapacityCell) bool { return hwLane(c) && c.Layout == layout },
			func(c CapacityCell) string { return c.Family })
		for _, m := range capacityMetrics {
			hm := &asciiplot.Heatmap{
				Title:   fmt.Sprintf("capacity map: %s (picos-hw, %s layout)", m.name, layout),
				XLabels: designLabels(),
				YLabels: fams,
				Log:     m.log,
				Missing: "XX",
			}
			for _, f := range fams {
				row := make([]float64, len(dmDesigns))
				for j, d := range dmDesigns {
					row[j] = math.NaN()
					for _, c := range cells {
						if c.Engine == "picos-hw" && c.Layout == layout && c.Family == f && c.Design == d.spec && !c.Wedged {
							row[j] = m.get(c)
						}
					}
				}
				hm.Cells = append(hm.Cells, row)
			}
			maps = append(maps, hm)
		}
	}
	return maps
}

func designLabels() []string {
	out := make([]string, len(dmDesigns))
	for i, d := range dmDesigns {
		out[i] = d.label
	}
	return out
}

// CapacityMap is the registry entry: the sweep rendered as tables, one
// per metric and layout, rows = families, columns = DM designs, with a
// per-engine speedup view at the shipping P+8way design. Wedged grid
// points print as WEDGE@<cycle> — machine-consumers get the same
// information from CapacityMapData.
func CapacityMap(opt Options) ([]*Table, error) {
	cells, err := CapacityMapData(opt)
	if err != nil {
		return nil, err
	}
	return CapacityTables(cells), nil
}

// CapacityTables renders already-computed capacity cells as tables, so
// callers that also need the cells (the pattern-capacity-map example)
// run the sweep exactly once.
func CapacityTables(cells []CapacityCell) []*Table {
	find := func(f, e, d, layout string) *CapacityCell {
		for i := range cells {
			c := &cells[i]
			if c.Family == f && c.Engine == e && c.Design == d && c.Layout == layout {
				return c
			}
		}
		return nil
	}
	fams := distinct(cells, nil, func(c CapacityCell) string { return c.Family })
	layouts := distinct(cells, nil, func(c CapacityCell) string { return c.Layout })
	engines := distinct(cells, nil, func(c CapacityCell) string { return c.Engine })

	var tables []*Table
	for _, layout := range layouts {
		t := &Table{
			Title:  fmt.Sprintf("Capacity map (%s layout, picos-hw): conflicts / stall cycles / speedup-vs-perfect per DM design", layout),
			Header: append([]string{"Family"}, designLabels()...),
		}
		for _, f := range fams {
			row := []string{f}
			any := false
			for _, d := range dmDesigns {
				c := find(f, "picos-hw", d.spec, layout)
				if c == nil {
					row = append(row, "-")
					continue
				}
				any = true
				if c.Wedged {
					row = append(row, fmt.Sprintf("WEDGE@%d", c.WedgedAt))
					continue
				}
				row = append(row, fmt.Sprintf("%d / %.2g / %.2f",
					c.DMConflicts+c.VMStallEvents,
					float64(c.DMConflictStallCycles+c.VMStallCycles),
					c.SpeedupVsPerfect))
			}
			if any {
				t.Rows = append(t.Rows, row)
			}
		}
		t.Notes = append(t.Notes,
			"each cell: #conflicts (insertions that found their DM set full, +VM exhaustions) / cycles the registration path stalled / speedup normalized to the Perfect roofline")
		tables = append(tables, t)
	}

	if len(engines) > 1 {
		t := &Table{
			Title:  "Capacity map: speedup by engine (P+8way, malloc layout)",
			Header: append([]string{"Family"}, engines...),
		}
		for _, f := range fams {
			row := []string{f}
			for _, e := range engines {
				c := find(f, e, "p8way", patterns.DefaultLayout)
				switch {
				case c == nil:
					row = append(row, "-")
				case c.Wedged:
					row = append(row, fmt.Sprintf("WEDGE@%d", c.WedgedAt))
				default:
					row = append(row, fmt.Sprintf("%.2f", c.Speedup))
				}
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}
