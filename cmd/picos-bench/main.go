// Command picos-bench regenerates the paper's tables and figures.
// Experiments are registry entries in internal/experiments; their
// simulation matrices run through the sim engine registry on a
// parallel worker pool.
//
// Usage:
//
//	picos-bench -exp table4            # one experiment
//	picos-bench -exp all               # everything (long: full Figure 11)
//	picos-bench -exp fig8 -quick       # reduced sweep for smoke runs
//	picos-bench -list                  # list experiment names
//	picos-bench -quick -json           # time every experiment with the
//	                                   # fast path on and off, emit JSON
//	                                   # (the BENCH_fastpath.json format)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// benchEntry is one line of the -json output: wall-clock ns for one
// experiment under the event-driven fast path and under the per-cycle
// reference loop, plus their ratio.
type benchEntry struct {
	Experiment    string  `json:"experiment"`
	Quick         bool    `json:"quick"`
	NsFast        int64   `json:"ns_fast"`
	NsCycleStep   int64   `json:"ns_cyclestep"`
	SpeedupFactor float64 `json:"speedup"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1..table4, fig1, fig8..fig11, capacity-map, or 'all')")
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	plot := flag.Bool("plot", false, "render sweep results as ASCII charts too")
	list := flag.Bool("list", false, "list experiment names and exit")
	cycleStep := flag.Bool("cyclestep", false, "force the per-cycle reference loop (debug; results are identical)")
	jsonOut := flag.Bool("json", false, "time each experiment fast-path on vs off and emit JSON instead of tables (-cyclestep and -plot do not apply)")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names {
			fmt.Println(n)
		}
		return
	}

	names := experiments.Names
	if *exp != "all" {
		names = []string{*exp}
	}
	if *jsonOut {
		benchJSON(names, *quick)
		return
	}
	opt := experiments.Options{Quick: *quick, CycleStepped: *cycleStep}
	for _, name := range names {
		start := time.Now()
		tables, err := experiments.Run(name, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "picos-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "picos-bench: %v\n", err)
				os.Exit(1)
			}
			if *plot {
				if c := t.Chart(); c != nil {
					if err := c.Render(os.Stdout); err != nil {
						fmt.Fprintf(os.Stderr, "picos-bench: %v\n", err)
						os.Exit(1)
					}
					fmt.Println()
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// benchJSON times every named experiment under the fast path and under
// the cycle-stepped reference and emits the measurements as JSON. Each
// configuration runs twice and reports the best of the two, so trace
// generation and allocator warm-up do not skew the comparison.
func benchJSON(names []string, quick bool) {
	timeRun := func(name string, opt experiments.Options) int64 {
		best := int64(0)
		for i := 0; i < 2; i++ {
			start := time.Now()
			if _, err := experiments.Run(name, opt); err != nil {
				fmt.Fprintf(os.Stderr, "picos-bench: %s: %v\n", name, err)
				os.Exit(1)
			}
			ns := time.Since(start).Nanoseconds()
			if i == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	var entries []benchEntry
	for _, name := range names {
		fast := timeRun(name, experiments.Options{Quick: quick})
		ref := timeRun(name, experiments.Options{Quick: quick, CycleStepped: true})
		e := benchEntry{Experiment: name, Quick: quick, NsFast: fast, NsCycleStep: ref}
		if fast > 0 {
			e.SpeedupFactor = float64(ref) / float64(fast)
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "[%s: fast %v, cycle-stepped %v, %.2fx]\n", name,
			time.Duration(fast).Round(time.Microsecond), time.Duration(ref).Round(time.Microsecond), e.SpeedupFactor)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		fmt.Fprintf(os.Stderr, "picos-bench: %v\n", err)
		os.Exit(1)
	}
}
