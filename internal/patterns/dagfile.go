package patterns

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/trace"
)

// intMinHeap is the Kahn frontier: a plain min-heap of node indices.
type intMinHeap []int

func (h intMinHeap) Len() int           { return len(h) }
func (h intMinHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intMinHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intMinHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intMinHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// The dagfile family replays an arbitrary task graph from a file, so
// measured applications (or graphs exported by other runtimes) can be
// pushed through every engine with the same grammar as the generated
// families:
//
//	pattern:dagfile?path=graph.dot
//	pattern:dagfile?path=graph.json
//
// Two formats are accepted, sniffed from the content:
//
// DOT — a restricted digraph subset: node statements carry an optional
// dur attribute (cycles), edge statements declare dependences and may
// chain. Node names are bare identifiers or double-quoted strings.
//
//	digraph g {
//	    a [dur=1200];
//	    b; "c.0" [dur=50];
//	    a -> b -> "c.0";
//	}
//
// JSON — an array of node objects in creation order:
//
//	[
//	    {"name": "a", "dur": 1200},
//	    {"name": "b", "after": ["a"]}
//	]
//
// Every node owns one address region written inout by its task; an edge
// u -> v (or v "after" u) makes v's task read u's region. Tasks are
// emitted in a deterministic topological order seeded by declaration
// order, so any acyclic graph replays even when edges point at
// later-declared nodes. Durations default to DefaultLen cycles.

// dagNode is one parsed graph node.
type dagNode struct {
	name  string
	dur   uint64
	preds []int // indices into the node list
}

// dagMaxNodes bounds parsed graphs at the same 4M-task cap as the
// generated grids.
const dagMaxNodes = 1 << 22

// buildDAGFile reads and replays the graph file named by p.Path.
func buildDAGFile(p Params) (*trace.Trace, error) {
	data, err := os.ReadFile(p.Path)
	if err != nil {
		return nil, fmt.Errorf("patterns: dagfile: %w", err)
	}
	tr, err := ParseDAG(data)
	if err != nil {
		return nil, fmt.Errorf("patterns: dagfile %s: %w", p.Path, err)
	}
	tr.Name = "pattern-" + p.Name()
	return tr, nil
}

// ParseDAG parses a task graph in either supported format (DOT if the
// content starts with a digraph header, JSON otherwise) and converts it
// into a runnable trace: one task per node in topological order, an
// inout dependence on the node's own address region and an in dependence
// per predecessor. It fails on cycles, on nodes whose in-degree exceeds
// the hardware's trace.MaxDeps-1 (the replay must be faithful, so
// truncation is an error here, unlike the generated families), and on
// malformed input.
func ParseDAG(data []byte) (*trace.Trace, error) {
	head := strings.TrimLeftFunc(string(data), unicode.IsSpace)
	var nodes []dagNode
	var err error
	if strings.HasPrefix(head, "digraph") || strings.HasPrefix(head, "strict") {
		nodes, err = parseDOT(head)
	} else {
		nodes, err = parseJSONDAG(data)
	}
	if err != nil {
		return nil, err
	}
	return dagTrace(nodes)
}

// jsonDAGNode is the JSON wire form of one node.
type jsonDAGNode struct {
	Name  string   `json:"name"`
	Dur   uint64   `json:"dur"`
	After []string `json:"after"`
}

func parseJSONDAG(data []byte) ([]dagNode, error) {
	var raw []jsonDAGNode
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("dag: not a digraph and not a JSON node array: %w", err)
	}
	if len(raw) > dagMaxNodes {
		return nil, fmt.Errorf("dag: %d nodes exceeds the %d-task cap", len(raw), dagMaxNodes)
	}
	nodes := make([]dagNode, 0, len(raw))
	index := make(map[string]int, len(raw))
	for _, n := range raw {
		if n.Name == "" {
			return nil, fmt.Errorf("dag: node %d has no name", len(nodes))
		}
		if n.Dur >= 1<<40 {
			// Same 40-bit bound as the DOT path: durations beyond it
			// overflow cycle arithmetic (baselines sum every task).
			return nil, fmt.Errorf("dag: node %q has dur %d beyond the 2^40-cycle cap", n.Name, n.Dur)
		}
		if _, dup := index[n.Name]; dup {
			return nil, fmt.Errorf("dag: duplicate node %q", n.Name)
		}
		index[n.Name] = len(nodes)
		nodes = append(nodes, dagNode{name: n.Name, dur: n.Dur})
	}
	for i, n := range raw {
		for _, pred := range n.After {
			pi, ok := index[pred]
			if !ok {
				return nil, fmt.Errorf("dag: node %q depends on unknown node %q", n.Name, pred)
			}
			if pi == i {
				return nil, fmt.Errorf("dag: node %q depends on itself", n.Name)
			}
			nodes[i].preds = append(nodes[i].preds, pi)
		}
	}
	return nodes, nil
}

// parseDOT parses the restricted DOT subset documented above. It is a
// hand-rolled statement scanner, not a full DOT grammar: statements are
// separated by semicolons or newlines, attribute lists only recognize
// dur, and subgraphs/ports/undirected edges are rejected.
func parseDOT(src string) ([]dagNode, error) {
	open := strings.IndexByte(src, '{')
	closeIdx := strings.LastIndexByte(src, '}')
	if open < 0 || closeIdx < open {
		return nil, fmt.Errorf("dag: digraph body braces not found")
	}
	body := src[open+1 : closeIdx]

	var nodes []dagNode
	index := make(map[string]int)
	intern := func(name string) (int, error) {
		if i, ok := index[name]; ok {
			return i, nil
		}
		if len(nodes) >= dagMaxNodes {
			return 0, fmt.Errorf("dag: more than %d nodes", dagMaxNodes)
		}
		index[name] = len(nodes)
		nodes = append(nodes, dagNode{name: name})
		return len(nodes) - 1, nil
	}

	for _, stmt := range splitDOTStatements(body) {
		names, attrs, err := parseDOTStatement(stmt)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue
		}
		ids := make([]int, len(names))
		for i, name := range names {
			if ids[i], err = intern(name); err != nil {
				return nil, err
			}
		}
		// A chain a -> b -> c adds each hop as a dependence edge.
		for i := 1; i < len(ids); i++ {
			if ids[i] == ids[i-1] {
				return nil, fmt.Errorf("dag: node %q depends on itself", names[i])
			}
			nodes[ids[i]].preds = append(nodes[ids[i]].preds, ids[i-1])
		}
		if durStr, ok := attrs["dur"]; ok {
			// dur is a node attribute; on an edge statement the
			// attribute list describes the edge, and guessing a node to
			// attach it to would silently corrupt durations.
			if len(names) != 1 {
				return nil, fmt.Errorf("dag: dur attribute on edge statement %q (put it on a node statement)", strings.Join(names, " -> "))
			}
			dur, err := strconv.ParseUint(durStr, 10, 40)
			if err != nil || dur == 0 {
				return nil, fmt.Errorf("dag: node %q has bad dur %q", names[0], durStr)
			}
			nodes[ids[0]].dur = dur
		}
	}
	return nodes, nil
}

// splitDOTStatements cuts the digraph body at semicolons and newlines,
// respecting double quotes and dropping // and # comment suffixes.
func splitDOTStatements(body string) []string {
	var stmts []string
	var b strings.Builder
	inQuote := false
	flush := func() {
		if s := strings.TrimSpace(b.String()); s != "" {
			stmts = append(stmts, s)
		}
		b.Reset()
	}
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case !inQuote && (c == ';' || c == '\n'):
			flush()
		case !inQuote && c == '#':
			for i < len(body) && body[i] != '\n' {
				i++
			}
			flush()
		case !inQuote && c == '/' && i+1 < len(body) && body[i+1] == '/':
			for i < len(body) && body[i] != '\n' {
				i++
			}
			flush()
		default:
			b.WriteByte(c)
		}
	}
	flush()
	return stmts
}

// parseDOTStatement parses one statement into its node-name chain and
// attribute map.
func parseDOTStatement(stmt string) (names []string, attrs map[string]string, err error) {
	// Split off one trailing [key=value, ...] attribute list.
	if open := strings.IndexByte(stmt, '['); open >= 0 {
		closeIdx := strings.LastIndexByte(stmt, ']')
		if closeIdx < open {
			return nil, nil, fmt.Errorf("dag: unterminated attribute list in %q", stmt)
		}
		attrs = map[string]string{}
		for _, kv := range strings.FieldsFunc(stmt[open+1:closeIdx], func(r rune) bool { return r == ',' || r == ' ' }) {
			k, v, found := strings.Cut(kv, "=")
			if !found {
				continue
			}
			attrs[strings.TrimSpace(k)] = strings.Trim(strings.TrimSpace(v), `"`)
		}
		stmt = strings.TrimSpace(stmt[:open])
	}
	if stmt == "" {
		return nil, attrs, nil
	}
	for _, part := range strings.Split(stmt, "->") {
		name, err := parseDOTName(strings.TrimSpace(part))
		if err != nil {
			return nil, nil, err
		}
		if name == "" {
			return nil, nil, fmt.Errorf("dag: empty node name in %q", stmt)
		}
		names = append(names, name)
	}
	return names, attrs, nil
}

// parseDOTName validates a bare identifier or unwraps one quoted string.
func parseDOTName(s string) (string, error) {
	if strings.HasPrefix(s, `"`) {
		if len(s) < 2 || !strings.HasSuffix(s, `"`) {
			return "", fmt.Errorf("dag: unterminated quoted name %q", s)
		}
		return s[1 : len(s)-1], nil
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '.' && r != '-' {
			return "", fmt.Errorf("dag: bad node name %q (quote names with special characters)", s)
		}
	}
	return s, nil
}

// dagBase places replayed-graph addresses in their own arena, with the
// malloc-style stride the generated families use.
const dagBase = 0x7800_0000

// dagTrace converts parsed nodes into a validated trace: deterministic
// topological order (Kahn's algorithm, declaration order as the
// tie-break), one address region per node.
func dagTrace(nodes []dagNode) (*trace.Trace, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("dag: no tasks")
	}
	// Deduplicate predecessor lists (parallel edges collapse into one
	// dependence; the hardware rejects duplicate addresses per task).
	for i := range nodes {
		seen := map[int]bool{}
		kept := nodes[i].preds[:0]
		for _, p := range nodes[i].preds {
			if !seen[p] {
				seen[p] = true
				kept = append(kept, p)
			}
		}
		nodes[i].preds = kept
		if len(kept) > trace.MaxDeps-1 {
			return nil, fmt.Errorf("dag: node %q has %d predecessors; the hardware tracks at most %d dependences per task (1 output + %d inputs)",
				nodes[i].name, len(kept), trace.MaxDeps, trace.MaxDeps-1)
		}
	}
	// Kahn's algorithm over declaration order.
	indeg := make([]int, len(nodes))
	succs := make([][]int, len(nodes))
	for i, n := range nodes {
		indeg[i] = len(n.preds)
		for _, p := range n.preds {
			succs[p] = append(succs[p], i)
		}
	}
	// A min-heap frontier keyed on declaration index keeps the emission
	// order deterministic and as close to declaration order as the
	// edges allow, in O(n log n) even for graphs that are one wide
	// frontier (the node cap permits millions of nodes).
	frontier := &intMinHeap{}
	for i := range nodes {
		if indeg[i] == 0 {
			heap.Push(frontier, i)
		}
	}
	order := make([]int, 0, len(nodes))
	for frontier.Len() > 0 {
		n := heap.Pop(frontier).(int)
		order = append(order, n)
		for _, s := range succs[n] {
			if indeg[s]--; indeg[s] == 0 {
				heap.Push(frontier, s)
			}
		}
	}
	if len(order) != len(nodes) {
		return nil, fmt.Errorf("dag: the graph has a cycle (%d of %d nodes reachable in topological order)", len(order), len(nodes))
	}

	addr := func(node int) uint64 { return dagBase + uint64(node)*0x8010 }
	tr := &trace.Trace{Name: "pattern-dagfile"}
	tr.Tasks = make([]trace.Task, 0, len(nodes))
	for id, n := range order {
		node := &nodes[n]
		deps := make([]trace.Dep, 0, len(node.preds)+1)
		deps = append(deps, trace.Dep{Addr: addr(n), Dir: trace.InOut})
		for _, p := range node.preds {
			deps = append(deps, trace.Dep{Addr: addr(p), Dir: trace.In})
		}
		dur := node.dur
		if dur == 0 {
			dur = DefaultLen
		}
		tr.Tasks = append(tr.Tasks, trace.Task{ID: uint32(id), Deps: deps, Duration: dur})
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("dag: built an invalid trace: %w", err)
	}
	return tr, nil
}
