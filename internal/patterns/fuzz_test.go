package patterns

import "testing"

// FuzzParsePattern drives arbitrary strings through the workload
// grammar: whatever Parse accepts must round-trip through Spec() and
// (size permitting) build a trace that passes validation — the contract
// BuildWorkload relies on.
func FuzzParsePattern(f *testing.F) {
	f.Add("stencil_1d?width=64&steps=100&len=1000")
	f.Add("random_nearest?k=5&seed=9&jitter=25")
	f.Add("all_to_all?layout=aligned&fields=1")
	f.Add("fft?width=8&steps=4")
	f.Add("tree")
	f.Add("dom?width=1&steps=1")
	f.Add("nosuch?width=2")
	f.Add("stencil_1d?width=1&width=2")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		q, err := Parse(p.Spec())
		if err != nil {
			t.Fatalf("Spec() of accepted params %+v does not re-parse: %v", p, err)
		}
		if p != q {
			t.Fatalf("round trip drifted: %+v != %+v", p, q)
		}
		if p.Width*p.Steps > 4096 {
			return // keep the fuzz iteration cheap
		}
		tr, err := Build(p)
		if err != nil {
			t.Fatalf("accepted params %+v failed to build: %v", p, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("built trace invalid for %+v: %v", p, err)
		}
	})
}

// FuzzParseDAG drives arbitrary bytes through the dagfile parser: it
// must never panic, and whatever it accepts must be a validated,
// replayable trace (every task's dependence list within the hardware
// limits, IDs dense, durations non-zero).
func FuzzParseDAG(f *testing.F) {
	f.Add([]byte(`digraph g { a [dur=10]; a -> b; b -> "c.1" [x=1]; }`))
	f.Add([]byte(`digraph g { a -> b -> c -> d; }`))
	f.Add([]byte(`[{"name":"a","dur":5},{"name":"b","after":["a"]}]`))
	f.Add([]byte(`digraph g { a -> b; b -> a; }`))
	f.Add([]byte(`strict digraph { x; }`))
	f.Add([]byte(`digraph g { a // comment
	b # other comment
	a -> b }`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"not":"an array"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseDAG(data)
		if err != nil {
			return
		}
		if len(tr.Tasks) == 0 {
			t.Fatal("accepted graph built an empty trace")
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted graph built an invalid trace: %v", err)
		}
	})
}
