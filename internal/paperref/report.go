package paperref

import (
	"fmt"
	"io"
	"sort"
)

// Line is one paper-vs-measured comparison in a report.
type Line struct {
	Experiment string
	Cell       string
	Got        float64
	Want       float64
	Verdict    Verdict
}

// Report accumulates comparisons and renders the EXPERIMENTS.md body.
type Report struct {
	Lines []Line
}

// Add records one comparison.
func (r *Report) Add(experiment, cell string, got, want, tol, absSlack float64) {
	r.Lines = append(r.Lines, Line{
		Experiment: experiment,
		Cell:       cell,
		Got:        got,
		Want:       want,
		Verdict:    Compare(got, want, tol, absSlack),
	})
}

// Counts returns how many lines matched, were near, and diverged.
func (r *Report) Counts() (match, near, diverge int) {
	for _, l := range r.Lines {
		switch l.Verdict {
		case Match:
			match++
		case Near:
			near++
		default:
			diverge++
		}
	}
	return
}

// SummaryLine renders the one-line verdict tally. The fast-report form
// of this line is locked by a golden test (internal/fidelity): a
// fidelity regression changes it and fails CI.
func (r *Report) SummaryLine() string {
	m, n, d := r.Counts()
	return fmt.Sprintf("**Summary: %d cells match, %d near, %d diverge (of %d).**", m, n, d, len(r.Lines))
}

// NonMatching returns the cells that did not fully match, in report
// order — the set that must be covered by KnownGaps for a reproduction
// to be considered explained.
func (r *Report) NonMatching() []Line {
	var out []Line
	for _, l := range r.Lines {
		if l.Verdict != Match {
			out = append(out, l)
		}
	}
	return out
}

// Fprint renders the report grouped by experiment, in Markdown.
func (r *Report) Fprint(w io.Writer) error {
	groups := map[string][]Line{}
	var order []string
	for _, l := range r.Lines {
		if _, ok := groups[l.Experiment]; !ok {
			order = append(order, l.Experiment)
		}
		groups[l.Experiment] = append(groups[l.Experiment], l)
	}
	sort.Stable(sort.StringSlice(order))
	for _, exp := range order {
		if _, err := fmt.Fprintf(w, "\n### %s\n\n", exp); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "| cell | measured | paper | delta | verdict |\n|---|---|---|---|---|\n"); err != nil {
			return err
		}
		for _, l := range groups[exp] {
			delta := "-"
			if l.Want != 0 {
				delta = fmt.Sprintf("%+.0f%%", 100*(l.Got-l.Want)/l.Want)
			}
			if _, err := fmt.Fprintf(w, "| %s | %.4g | %.4g | %s | %s |\n",
				l.Cell, l.Got, l.Want, delta, l.Verdict); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "\n%s\n", r.SummaryLine())
	return err
}
