package picos

// arbiter routes messages between TRSs and DCTs (and TRS-to-TRS chain
// wakes, which the paper notes are "managed by the Arbiter module"). It
// forwards a bounded number of messages per cycle, adding one hop of
// latency, so long wake chains pay per-link routing time exactly like
// the prototype.
type arbiter struct {
	p      *Picos
	timing *Timing
	in     regFIFO[arbMsg]
	routed uint64
	hid    int32 // horizon-heap slot
}

func newArbiter(p *Picos) *arbiter {
	return &arbiter{p: p, timing: &p.cfg.Timing}
}

// reset scrubs the arbiter back to its just-built state.
func (a *arbiter) reset() {
	a.in.reset()
	a.routed = 0
}

// route accepts a message that becomes routable at cycle `at`.
func (a *arbiter) route(m arbMsg, at uint64) {
	a.in.push(m, at)
	a.p.markDirty(a.hid)
}

func (a *arbiter) step(now uint64) {
	for i := 0; i < a.timing.ArbBandwidth; i++ {
		m, ok := a.in.pop(now)
		if !ok {
			return
		}
		a.p.markDirty(a.hid)
		a.routed++
		at := now + a.timing.ArbHop
		switch m.kind {
		case arbStat:
			t := a.p.trs[m.stat.task.TRS]
			t.statusQ.push(m.stat, at)
			a.p.markDirty(t.hid)
		case arbWake:
			t := a.p.trs[m.wake.task.TRS]
			t.wakeQ.push(m.wake, at)
			a.p.markDirty(t.hid)
		case arbFin:
			d := a.p.dct[m.fin.vm.DCT]
			d.finQ.push(m.fin, at)
			a.p.markDirty(d.hid)
		}
	}
}

// nextEvent returns the earliest cycle at which the arbiter can route
// its next message (it has no busy timer — only head visibility gates
// it).
func (a *arbiter) nextEvent() (uint64, bool) { return a.in.headAt() }

func (a *arbiter) active(now uint64) bool { return !a.in.empty() }
