// Package nanos models the software-only Nanos++ runtime the paper
// compares against: a master thread that creates and submits every task
// (paying per-task and per-dependence analysis costs inside a contended
// global runtime lock) and worker threads that pop ready tasks and
// release dependences under the same lock. The lock-hold times grow with
// the number of active threads (cache-line contention), which produces
// the two signature behaviours of Figures 1 and 11: scaling saturates
// around 8 workers, and fine-grained tasks collapse once per-task
// overhead rivals task duration.
package nanos

import (
	"container/heap"
	"fmt"
	"sync"

	"repro/internal/sched"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// Timing is the software runtime cost model, in cycles. Values are
// calibrated against Figure 10 of the paper (task creation roughly
// constant; submission growing with dependence count and thread count).
type Timing struct {
	Create        uint64  // task creation, outside the lock
	SubmitBase    uint64  // submission + insertion, inside the lock
	SubmitPerDep  uint64  // dependence analysis per dependence, in-lock
	PopHold       uint64  // ready-queue pop, in-lock
	ReleaseBase   uint64  // finish bookkeeping, in-lock
	ReleasePerDep uint64  // dependence release per dependence, in-lock
	Contention    float64 // per-extra-thread inflation of in-lock time
}

// DefaultTiming returns the calibrated model.
func DefaultTiming() Timing {
	return Timing{
		Create:        1800,
		SubmitBase:    700,
		SubmitPerDep:  400,
		PopHold:       300,
		ReleaseBase:   500,
		ReleasePerDep: 350,
		Contention:    0.18,
	}
}

// inflate applies the contention factor for a given thread count (master
// + workers all hammer the same runtime structures).
func (t *Timing) inflate(hold uint64, threads int) uint64 {
	if threads <= 1 {
		return hold
	}
	return uint64(float64(hold) * (1 + t.Contention*float64(threads-1)))
}

// CreationOverhead returns the Figure 10 "Creation" series: per-task
// creation cost at a given thread count.
func (t *Timing) CreationOverhead(threads int) uint64 { return t.Create }

// SubmissionOverhead returns the Figure 10 "x DEPs" series: per-task
// submission cost for a task with nDeps dependences at a thread count.
func (t *Timing) SubmissionOverhead(nDeps, threads int) uint64 {
	return t.inflate(t.SubmitBase+uint64(nDeps)*t.SubmitPerDep, threads)
}

// Config configures a software-only run.
type Config struct {
	// Workers is the homogeneous worker count. Mutually exclusive with
	// Classes: when Classes is non-empty the worker count is the sum of
	// the class counts and Workers must be zero.
	Workers int
	// Classes declares heterogeneous worker classes (per-class
	// service-time multipliers, optional task-kind affinity). Empty
	// means Workers identical baseline cores. Lock-hold costs are not
	// scaled — the runtime lock is contended by every thread equally;
	// only task execution time is class-scaled.
	Classes sched.Classes
	// Sched is the ready-task grant policy (sched.FIFO preserves the
	// historical pop-in-ready-order semantics).
	Sched sched.Policy
	// Steal enables per-class ready queues with deterministic
	// ascending-class victim order.
	Steal    bool
	Timing   Timing
	Watchdog uint64 // safety bound on simulated cycles (0: 1e12)
	// Window bounds streaming ingestion (RunSource only): the maximum
	// number of created-but-unfinished tasks kept live at once. RunSource
	// requires it positive; Run (materialized) ignores it. See stream.go.
	Window int
}

// Result is the outcome of a software-only run.
type Result struct {
	Workers  int
	Makespan uint64
	Baseline uint64
	Speedup  float64
	Start    []uint64
	Finish   []uint64
	// LockBusy is the total cycles the runtime lock was held — the
	// contention diagnostic behind the 8-worker knee.
	LockBusy uint64
	// FirstStart/ThrTask are the aggregate latency/throughput probes
	// stamped by the streaming RunSource, which records no Start array
	// to derive them from; the materialized Run leaves them zero and the
	// engine derives them with sim.Probes.
	FirstStart uint64
	ThrTask    float64
}

// event kinds for the discrete-event simulation.
type evKind uint8

const (
	evMasterCreate evKind = iota // master finished creating, wants the lock
	evWorkerIdle                 // worker wants to pop a ready task
	evWorkerDone                 // worker finished executing a task
)

type event struct {
	at   uint64
	seq  uint64 // FIFO tie-break
	kind evKind
	who  int   // worker index
	task int32 // evWorkerDone
}

type evHeap []event

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *evHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// nextEvent reports the timestamp of the earliest queued event — the
// run's horizon, the software-runtime counterpart of picos.NextEvent.
// The runtime model is inherently event-driven, so sim.Spec's
// FastForward knob has nothing to switch here.
func (h evHeap) nextEvent() (uint64, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// runScratch is the per-run working state of the discrete-event loop,
// pooled across runs so steady-state sweeps re-simulate without
// reallocating the event heap and per-task bookkeeping (the run's event
// horizon gets warm storage; only the Start/Finish arrays that escape
// into the Result are fresh).
type runScratch struct {
	remaining []int32 // unfinished predecessors
	submitted []bool
	events    evHeap
	pool      sched.Pool[struct{}] // ready tasks + parked workers
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// grab sizes the scratch for n tasks, reusing capacity where possible.
func (s *runScratch) grab(n int) {
	if cap(s.remaining) < n {
		s.remaining = make([]int32, n)
		s.submitted = make([]bool, n)
	} else {
		s.remaining = s.remaining[:n]
		s.submitted = s.submitted[:n]
		for i := range s.submitted {
			s.submitted[i] = false
		}
	}
	s.events = s.events[:0]
}

// Run simulates the software-only runtime on the trace.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	if len(cfg.Classes) > 0 {
		if cfg.Workers != 0 {
			return nil, fmt.Errorf("nanos: both Workers (%d) and Classes (%q) set", cfg.Workers, cfg.Classes.String())
		}
		if err := cfg.Classes.Validate(); err != nil {
			return nil, err
		}
		cfg.Workers = cfg.Classes.Workers()
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("nanos: need at least 1 worker, got %d", cfg.Workers)
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	if cfg.Watchdog == 0 {
		cfg.Watchdog = 1e12
	}
	tm := &cfg.Timing
	g := taskgraph.Build(tr)
	n := g.N
	threads := cfg.Workers + 1 // master + workers

	res := &Result{
		Workers:  cfg.Workers,
		Baseline: tr.Baseline(),
		Start:    make([]uint64, n),
		Finish:   make([]uint64, n),
	}
	if n == 0 {
		return res, nil
	}

	classes := cfg.Classes
	if len(classes) == 0 {
		classes = sched.Single(cfg.Workers)
	}
	present := make([]bool, len(tr.Kinds)+1)
	for i := range tr.Tasks {
		present[tr.Tasks[i].Kind] = true
	}
	if err := classes.CheckCoverage(tr.Kinds, present); err != nil {
		return nil, err
	}
	var prio []uint64
	if cfg.Sched == sched.Priority {
		prio = g.BottomLevels()
	}

	s := scratchPool.Get().(*runScratch)
	s.grab(n)
	remaining := s.remaining
	submitted := s.submitted
	for i := 0; i < n; i++ {
		remaining[i] = int32(len(g.Pred[i]))
	}
	pool := &s.pool
	pool.Reset(classes, cfg.Sched, cfg.Steal, tr.Kinds, prio)

	var (
		seq      uint64
		lockFree uint64
		created  int // tasks created by the master so far
		finished int
	)
	events := s.events
	defer func() {
		// Hand the (possibly grown) buffers back to the pool, emptied —
		// error paths included.
		s.events = events[:0]
		scratchPool.Put(s)
	}()
	push := func(at uint64, kind evKind, who int, task int32) {
		seq++
		heap.Push(&events, event{at: at, seq: seq, kind: kind, who: who, task: task})
	}

	// acquireLock serializes an in-lock section of base duration `hold`
	// (already contention-inflated by the caller) starting no earlier
	// than `at`; returns the section's end time.
	acquireLock := func(at, hold uint64) uint64 {
		if lockFree > at {
			at = lockFree
		}
		lockFree = at + hold
		res.LockBusy += hold
		return lockFree
	}

	// The master starts creating the first task at cycle 0; workers park
	// idle.
	createCost := func(i int) uint64 {
		c := tr.Tasks[i].CreateCost
		if c == 0 {
			c = tm.Create
		}
		return c
	}
	push(createCost(0), evMasterCreate, -1, 0)
	for w := 0; w < cfg.Workers; w++ {
		pool.Park(w)
	}

	// markReady queues a runnable task and wakes an idle worker eligible
	// for its kind, if any is parked.
	markReady := func(t int32, at uint64) {
		kind := tr.Tasks[t].Kind
		pool.Enqueue(uint32(t), kind, struct{}{})
		if w, ok := pool.WakeEligible(kind); ok {
			push(at, evWorkerIdle, w, -1)
		}
	}

	for {
		horizon, ok := events.nextEvent()
		if !ok {
			break
		}
		if horizon > cfg.Watchdog {
			return nil, fmt.Errorf("nanos: watchdog at cycle %d (%d/%d finished)", horizon, finished, n)
		}
		ev := heap.Pop(&events).(event)
		switch ev.kind {
		case evMasterCreate:
			t := int32(ev.task)
			hold := tm.inflate(tm.SubmitBase+uint64(len(tr.Tasks[t].Deps))*tm.SubmitPerDep, threads)
			end := acquireLock(ev.at, hold)
			submitted[t] = true
			created++
			if remaining[t] == 0 {
				markReady(t, end)
			}
			if created < n {
				push(end+createCost(created), evMasterCreate, -1, int32(created))
			}
		case evWorkerIdle:
			if !pool.CanTake(ev.who) {
				// Spurious wake-up (or nothing this worker may run): park
				// again.
				pool.Park(ev.who)
				continue
			}
			hold := tm.inflate(tm.PopHold, threads)
			end := acquireLock(ev.at, hold)
			it, _ := pool.TakeFor(ev.who)
			t := int32(it.ID)
			res.Start[t] = end
			res.Finish[t] = end + pool.Scale(ev.who, g.Durations[t])
			push(res.Finish[t], evWorkerDone, ev.who, t)
			// If more work remains visible, wake another idle worker that
			// can take it.
			if pool.Len() > 0 {
				if w, ok := pool.WakeAny(); ok {
					push(end, evWorkerIdle, w, -1)
				}
			}
		case evWorkerDone:
			t := ev.task
			hold := tm.inflate(tm.ReleaseBase+uint64(len(tr.Tasks[t].Deps))*tm.ReleasePerDep, threads)
			end := acquireLock(ev.at, hold)
			finished++
			for _, s := range g.Succ[t] {
				remaining[s]--
				if remaining[s] == 0 && submitted[s] {
					markReady(s, end)
				}
			}
			// This worker looks for more work immediately.
			push(end, evWorkerIdle, ev.who, -1)
		}
	}

	if finished != n {
		return nil, fmt.Errorf("nanos: only %d/%d tasks finished (scheduler wedge)", finished, n)
	}
	for _, f := range res.Finish {
		if f > res.Makespan {
			res.Makespan = f
		}
	}
	if res.Makespan > 0 {
		res.Speedup = float64(res.Baseline) / float64(res.Makespan)
	}
	return res, nil
}
