// Package patterns generates parameterized dependence-pattern workload
// families in the style of task-bench (Slaughter et al., "Task Bench: A
// Parameterized Benchmark for Evaluating Parallel Runtime Performance"),
// whose OmpSs port drives exactly the runtime this repository models. A
// pattern is a width x steps grid of tasks: at timestep t, point i runs
// one task that owns the point's buffer (an inout dependence, which
// chains the point's versions across steps the way the OmpSs port's
// tile_out works) and reads the previous step's buffers of the points
// the family's dependence function names (in dependences). Sweeping the
// families against the three Dependence Memory designs probes the Picos
// dependence manager across the whole dependence-pattern space — far
// beyond the six fixed applications and seven capacity cases the paper
// measures.
//
// Families are parameterized through a flat key=value grammar that the
// sim workload registry exposes under the "pattern:" prefix:
//
//	pattern:stencil_1d?width=64&steps=100&len=1000
//	pattern:random_nearest?width=32&steps=50&k=5&seed=7
//	pattern:all_to_all?width=8&steps=20&layout=aligned
//
// so every engine, sweep grid, CLI and experiment picks the families up
// with no further wiring.
package patterns

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"repro/internal/detrand"
	"repro/internal/picos"
	"repro/internal/trace"
)

// Defaults for unspecified parameters: small enough that a default
// pattern runs in milliseconds on every engine, including the
// cycle-stepped reference loop.
const (
	DefaultWidth  = 16
	DefaultSteps  = 10
	DefaultLen    = 1000
	DefaultK      = 3
	DefaultSeed   = 1
	DefaultLayout = "malloc"
	// DefaultHeight is the y-extent of the 2-D families (stencil_2d,
	// wavefront): a width x height grid of points per timestep. 1-D
	// families always have height 1.
	DefaultHeight = 8
	// DefaultShards is the fabric shard count the shard layout aligns
	// for when no shards= parameter is given — the smallest partitioned
	// fabric (NumDCT=2).
	DefaultShards = 2
	// DefaultFields is the buffer multiplicity per point: 2 is
	// task-bench's num_fields default (Jacobi-style double buffering, so
	// a step's reads bind to the previous step's writes). fields=1 is
	// the in-place Gauss-Seidel variant: reads of lower-indexed points
	// bind within the step, and every point's buffer accumulates one VM
	// version per step — the heavier stress on the DCT's version chains.
	DefaultFields = 2
)

// Families whose dependence sets grow with the width (dom, all_to_all)
// are truncated deterministically so no task exceeds the hardware's
// 15-dependence limit (trace.MaxDeps): their inputs functions emit at
// most MaxDeps candidates and Build's per-task cap keeps the owner
// dependence plus the first 14 distinct reads.

// Params is a fully-resolved pattern specification.
type Params struct {
	// Family is the dependence-pattern family name; see Families().
	Family string
	// Width is the number of grid points per timestep.
	Width int
	// Steps is the number of timesteps.
	Steps int
	// Len is the base task duration in cycles.
	Len uint64
	// Jitter perturbs task durations by up to ±Jitter percent,
	// deterministically (0: constant durations).
	Jitter int
	// K is the dependence-count knob of the nearest, spread and
	// random_nearest families.
	K int
	// Seed drives the random_nearest family and the duration jitter.
	Seed uint64
	// Fields is the number of buffers each point cycles through across
	// steps (task-bench's num_fields); see DefaultFields.
	Fields int
	// Height is the y-extent of the 2-D families: each timestep holds
	// Width*Height points, point i sitting at (i%Width, i/Width). 1 for
	// the 1-D families (which reject the parameter).
	Height int
	// Gaps carves deterministic holes into the grid: every Gaps-th point
	// (i%Gaps == Gaps-1) is inactive — it runs no tasks, and reads that
	// would name it are skipped — the task-bench "gaps" variant that
	// thins the dependence structure the way SparseLu's empty blocks do.
	// 0 or 1 means no holes.
	Gaps int
	// Regions gives every task Regions address regions: each point owns
	// one buffer per region, far apart in the address space (different
	// DM regions), and a task carries an inout dependence on every
	// region of its point plus in dependences on every region of its
	// input points — the h264dec-deblock shape where one task touches
	// the Y/U/V planes of its own and its neighbors' macroblocks.
	// Default 1.
	Regions int
	// Path is the graph file of the dagfile family, which replays an
	// arbitrary DAG (DOT or JSON, see ParseDAG) instead of generating a
	// grid. Only dagfile accepts (and requires) it.
	Path string
	// Layout selects the address layout of the point buffers:
	//
	//	malloc  - glibc-style 32KB heap blocks (stride 0x8010): buffers
	//	          cover 16 of the 64 direct-hash DM sets, like SparseLu's
	//	          individually allocated blocks (the default)
	//	aligned - power-of-two aligned blocks (stride 0x8000): every
	//	          buffer lands in ONE direct-hash set, the worst-case
	//	          clustering of Heat's contiguous allocation
	//	spread  - word-stride 65 (stride 260): buffers cover all 64 sets
	//	          under the direct hash, isolating pure capacity effects
	//	shard   - malloc-stride slots probed against the xor-fold fabric
	//	          hash so every buffer of point i lands on DCT shard
	//	          i*Shards/points: points fall into contiguous per-shard
	//	          blocks, so a local family's dependences stay on one
	//	          shard (only boundary tasks cross) — the best case for
	//	          a partitioned dependence fabric, where malloc/aligned/
	//	          spread scatter every task's chain across shards
	Layout string
	// Shards is the fabric shard count the shard layout aligns for
	// (matches the engine's NumDCT under the default xor-fold hash).
	// Only the shard layout accepts it; DefaultShards when unset.
	Shards int
}

// layoutStrides maps each layout to the byte distance between
// consecutive point buffers (for shard, between consecutive probe
// slots — the layout skips slots whose xor-fold shard is wrong).
var layoutStrides = map[string]uint64{
	"malloc":  0x8010,
	"aligned": 0x8000,
	"spread":  260,
	"shard":   0x8010,
}

// patternBase is the base address of pattern buffers, chosen away from
// the real benchmarks' arenas.
const patternBase = 0x70000000

// regionStride separates a point's address regions (Params.Regions):
// far enough apart that no layout's point footprint can reach the next
// region (the widest grid spans well under 2^40 bytes), with a low-bit
// offset so the direct-hash designs see region r of a point in a
// different DM set than region 0 (set delta 17 per region, coprime to
// the 64 sets).
const regionStride = uint64(1<<40) | 0x44

// family is one dependence-pattern family: inputs returns the previous-
// step points that (t,i) reads, for t >= 1. Implementations may return
// i itself or duplicates; Build filters both.
type family struct {
	desc     string
	needPow2 bool
	// is2D marks the families whose per-step grid is Width x Height.
	is2D bool
	// freshAddr gives every task its own buffer (no cross-step
	// chaining): the fully-independent control family.
	freshAddr bool
	inputs    func(p Params, t, i int) []int
}

var families = map[string]family{
	"trivial": {
		desc:      "independent tasks, a fresh buffer per task (no dependences at all)",
		freshAddr: true,
		inputs:    func(Params, int, int) []int { return nil },
	},
	"no_comm": {
		desc:   "width independent chains: each point reads only its own previous-step value",
		inputs: func(p Params, t, i int) []int { return []int{i} },
	},
	"stencil_1d": {
		desc:   "each point reads itself and its left and right neighbors of the previous step",
		inputs: func(p Params, t, i int) []int { return []int{i - 1, i, i + 1} },
	},
	"stencil_1d_periodic": {
		desc: "stencil_1d with wrap-around at the row ends",
		inputs: func(p Params, t, i int) []int {
			w := p.Width
			return []int{(i - 1 + w) % w, i, (i + 1) % w}
		},
	},
	"nearest": {
		desc: "each point reads the k-wide window of previous-step points centered on it",
		inputs: func(p Params, t, i int) []int {
			lo := max(0, i-p.K/2)
			hi := min(p.Width-1, i+(p.K-1)/2)
			out := make([]int, 0, hi-lo+1)
			for j := lo; j <= hi; j++ {
				out = append(out, j)
			}
			return out
		},
	},
	"spread": {
		desc: "each point reads itself plus k-1 points strided uniformly across the previous step's row",
		inputs: func(p Params, t, i int) []int {
			w := p.Width
			stride := w / p.K
			if stride < 1 {
				stride = 1
			}
			n := min(p.K, w) // beyond w the rotation only repeats
			out := make([]int, 0, n)
			for j := 0; j < n; j++ {
				out = append(out, (i+j*stride)%w)
			}
			return out
		},
	},
	"random_nearest": {
		desc: "each point reads a seeded random subset of the 2k+1-wide window around it",
		inputs: func(p Params, t, i int) []int {
			lo, hi := max(0, i-p.K), min(p.Width-1, i+p.K)
			out := make([]int, 0, hi-lo+1)
			for j := lo; j <= hi; j++ {
				h := detrand.SplitMix64(p.Seed ^ uint64(t)<<40 ^ uint64(i)<<20 ^ uint64(j+p.K))
				if h&1 == 0 {
					out = append(out, j)
				}
			}
			return out
		},
	},
	"fft": {
		desc:     "butterfly exchanges: at step t each point reads itself and its partner i xor 2^((t-1) mod log2(width))",
		needPow2: true,
		inputs: func(p Params, t, i int) []int {
			if p.Width < 2 {
				return []int{i}
			}
			return []int{i, i ^ (1 << uint((t-1)%log2(p.Width)))}
		},
	},
	"tree": {
		desc: "binary fan-out from point 0: the active frontier doubles each step, each new point reading its parent",
		inputs: func(p Params, t, i int) []int {
			active := p.Width
			if t < 31 && 1<<uint(t) < p.Width {
				active = 1 << uint(t)
			}
			if i == 0 || i >= active {
				return nil
			}
			return []int{i / 2}
		},
	},
	"dom": {
		desc: "lower-triangular dominance: each point reads every lower-indexed previous-step point (truncated to the nearest 15)",
		inputs: func(p Params, t, i int) []int {
			lo := i + 1 - trace.MaxDeps
			if lo < 0 {
				lo = 0
			}
			out := make([]int, 0, i-lo+1)
			for j := lo; j <= i; j++ {
				out = append(out, j)
			}
			return out
		},
	},
	"all_to_all": {
		desc: "each point reads every point of the previous step (a step barrier; truncated to a 15-point rotation at large widths)",
		inputs: func(p Params, t, i int) []int {
			w := p.Width
			n := w
			if n > trace.MaxDeps {
				n = trace.MaxDeps
			}
			out := make([]int, 0, n)
			for m := 0; m < n; m++ {
				out = append(out, (i+m)%w)
			}
			return out
		},
	},
	"stencil_2d": {
		desc: "5-point stencil on a width x height grid: each point reads itself and its four edge neighbors of the previous step",
		is2D: true,
		inputs: func(p Params, t, i int) []int {
			x, y := i%p.Width, i/p.Width
			out := make([]int, 0, 5)
			out = append(out, i)
			if x > 0 {
				out = append(out, i-1)
			}
			if x < p.Width-1 {
				out = append(out, i+1)
			}
			if y > 0 {
				out = append(out, i-p.Width)
			}
			if y < p.Height-1 {
				out = append(out, i+p.Width)
			}
			return out
		},
	},
	"wavefront": {
		desc: "2-D wavefront (dom_2d): each point reads itself and its west and north neighbors of the previous step, the Smith-Waterman sweep",
		is2D: true,
		inputs: func(p Params, t, i int) []int {
			x, y := i%p.Width, i/p.Width
			out := make([]int, 0, 3)
			out = append(out, i)
			if x > 0 {
				out = append(out, i-1)
			}
			if y > 0 {
				out = append(out, i-p.Width)
			}
			return out
		},
	},
	"dagfile": {
		desc: "replays an arbitrary task graph from a DOT or JSON file (path=<file>); see ParseDAG for the format",
	},
}

// points returns the number of grid points per timestep.
func (p Params) points() int { return p.Width * p.Height }

// hole reports whether grid point i is inactive under the Gaps knob.
func (p Params) hole(i int) bool { return p.Gaps > 1 && i%p.Gaps == p.Gaps-1 }

// Families lists the pattern family names, sorted.
func Families() []string {
	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the one-line description of a family ("" if unknown).
func Describe(name string) string { return families[name].desc }

// Parse resolves a pattern spec of the form
// "<family>?width=64&steps=100&len=1000&k=3&seed=1&jitter=0&layout=malloc"
// (everything after the family name optional) into fully-defaulted
// Params. The empty query separator is accepted: "stencil_1d" alone
// builds the default grid.
func Parse(s string) (Params, error) {
	name, query, _ := strings.Cut(s, "?")
	p := Params{
		Family:  name,
		Width:   DefaultWidth,
		Steps:   DefaultSteps,
		Len:     DefaultLen,
		K:       DefaultK,
		Seed:    DefaultSeed,
		Layout:  DefaultLayout,
		Fields:  DefaultFields,
		Height:  1,
		Regions: 1,
	}
	fam, ok := families[name]
	if !ok {
		return p, fmt.Errorf("patterns: unknown family %q (have %s)", name, strings.Join(Families(), ", "))
	}
	if fam.is2D {
		p.Height = DefaultHeight
	}
	vals, err := url.ParseQuery(query)
	if err != nil {
		return p, fmt.Errorf("patterns: %s: bad parameter string %q: %w", name, query, err)
	}
	for key, vs := range vals {
		if len(vs) != 1 {
			return p, fmt.Errorf("patterns: %s: parameter %q given %d times", name, key, len(vs))
		}
		if name == "dagfile" && key != "path" {
			// The replayed graph IS the workload: grid parameters would
			// be silently inert, so they are rejected instead.
			return p, fmt.Errorf("patterns: dagfile: parameter %s=%q: the dagfile family only takes path", key, vs[0])
		}
		v := vs[0]
		var perr error
		switch key {
		case "width":
			p.Width, perr = parseInt(v, 1, 1<<20)
		case "steps":
			p.Steps, perr = parseInt(v, 1, 1<<20)
		case "len":
			p.Len, perr = parseUint(v, 1, 1<<40)
		case "jitter":
			p.Jitter, perr = parseInt(v, 0, 90)
		case "k":
			p.K, perr = parseInt(v, 1, 1<<16)
		case "seed":
			p.Seed, perr = parseUint(v, 0, 1<<40)
		case "fields":
			p.Fields, perr = parseInt(v, 1, 8)
		case "layout":
			if _, ok := layoutStrides[v]; !ok {
				perr = fmt.Errorf("unknown layout %q (have malloc, aligned, spread, shard)", v)
			}
			p.Layout = v
		case "shards":
			p.Shards, perr = parseInt(v, 2, 64)
		case "height":
			if !fam.is2D {
				perr = fmt.Errorf("only the 2-D families take a height")
				break
			}
			p.Height, perr = parseInt(v, 1, 1<<12)
		case "gaps":
			p.Gaps, perr = parseInt(v, 2, 1<<16)
		case "regions":
			p.Regions, perr = parseInt(v, 1, 8)
		case "path":
			if name != "dagfile" {
				perr = fmt.Errorf("only the dagfile family takes a path")
				break
			}
			if v == "" {
				perr = fmt.Errorf("empty path")
				break
			}
			p.Path = v
		default:
			perr = fmt.Errorf("unknown parameter (have width, steps, len, jitter, k, seed, fields, layout, shards, height, gaps, regions, path)")
		}
		if perr != nil {
			return p, fmt.Errorf("patterns: %s: parameter %s=%q: %w", name, key, v, perr)
		}
	}
	if fam.needPow2 && p.Width&(p.Width-1) != 0 {
		return p, fmt.Errorf("patterns: %s: width must be a power of two, got %d", name, p.Width)
	}
	// The shards knob is the shard layout's alignment target; anywhere
	// else it would be silently inert.
	if p.Shards != 0 && p.Layout != "shard" {
		return p, fmt.Errorf("patterns: %s: shards=%d requires layout=shard", name, p.Shards)
	}
	if p.Layout == "shard" {
		if p.Shards == 0 {
			p.Shards = DefaultShards
		}
		if p.Regions > 1 {
			// Region replicas sit regionStride apart and hash to arbitrary
			// shards, defeating the alignment the layout promises.
			return p, fmt.Errorf("patterns: %s: layout=shard requires regions=1, got %d", name, p.Regions)
		}
	}
	if name == "dagfile" {
		if p.Path == "" {
			return p, fmt.Errorf("patterns: dagfile: a path=<file> parameter is required")
		}
		return p, nil
	}
	if p.points()*p.Steps > 1<<22 {
		return p, fmt.Errorf("patterns: %s: width*height*steps = %d exceeds the 4M-task cap", name, p.points()*p.Steps)
	}
	return p, nil
}

func parseInt(v string, lo, hi int) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("out of range [%d, %d]", lo, hi)
	}
	return n, nil
}

// parseUint parses the wide-range parameters (len, seed), whose bounds
// exceed a 32-bit int.
func parseUint(v string, lo, hi uint64) (uint64, error) {
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("out of range [%d, %d]", lo, hi)
	}
	return n, nil
}

// Name is the canonical compact name of the parameterized pattern, used
// as the trace name: family-w<width>-s<steps> plus any non-default
// parameters.
func (p Params) Name() string {
	if p.Family == "dagfile" {
		return "dagfile-" + strings.Map(func(r rune) rune {
			if r == '/' || r == '\\' {
				return '_'
			}
			return r
		}, p.Path)
	}
	var b strings.Builder
	if p.Height > 1 {
		fmt.Fprintf(&b, "%s-w%dx%d-s%d", p.Family, p.Width, p.Height, p.Steps)
	} else {
		fmt.Fprintf(&b, "%s-w%d-s%d", p.Family, p.Width, p.Steps)
	}
	if p.Len != DefaultLen {
		fmt.Fprintf(&b, "-len%d", p.Len)
	}
	if p.K != DefaultK {
		fmt.Fprintf(&b, "-k%d", p.K)
	}
	if p.Seed != DefaultSeed {
		fmt.Fprintf(&b, "-seed%d", p.Seed)
	}
	if p.Jitter != 0 {
		fmt.Fprintf(&b, "-j%d", p.Jitter)
	}
	if p.Fields != DefaultFields {
		fmt.Fprintf(&b, "-f%d", p.Fields)
	}
	if p.Gaps > 1 {
		fmt.Fprintf(&b, "-g%d", p.Gaps)
	}
	if p.Regions > 1 {
		fmt.Fprintf(&b, "-r%d", p.Regions)
	}
	if p.Layout != DefaultLayout {
		fmt.Fprintf(&b, "-%s", p.Layout)
		if p.Layout == "shard" && p.Shards != DefaultShards {
			fmt.Fprintf(&b, "%d", p.Shards)
		}
	}
	return b.String()
}

// Spec renders the Params back into the registry grammar (the inverse of
// Parse, modulo parameter ordering): "family?width=16&steps=10&...".
func (p Params) Spec() string {
	q := url.Values{}
	if p.Family == "dagfile" {
		q.Set("path", p.Path)
		return p.Family + "?" + q.Encode()
	}
	q.Set("width", strconv.Itoa(p.Width))
	q.Set("steps", strconv.Itoa(p.Steps))
	if fam := families[p.Family]; fam.is2D && p.Height != DefaultHeight {
		q.Set("height", strconv.Itoa(p.Height))
	}
	if p.Len != DefaultLen {
		q.Set("len", strconv.FormatUint(p.Len, 10))
	}
	if p.K != DefaultK {
		q.Set("k", strconv.Itoa(p.K))
	}
	if p.Seed != DefaultSeed {
		q.Set("seed", strconv.FormatUint(p.Seed, 10))
	}
	if p.Jitter != 0 {
		q.Set("jitter", strconv.Itoa(p.Jitter))
	}
	if p.Fields != DefaultFields {
		q.Set("fields", strconv.Itoa(p.Fields))
	}
	if p.Gaps > 1 {
		q.Set("gaps", strconv.Itoa(p.Gaps))
	}
	if p.Regions > 1 {
		q.Set("regions", strconv.Itoa(p.Regions))
	}
	if p.Layout != DefaultLayout {
		q.Set("layout", p.Layout)
		if p.Layout == "shard" && p.Shards != DefaultShards {
			q.Set("shards", strconv.Itoa(p.Shards))
		}
	}
	return p.Family + "?" + q.Encode()
}

// Build generates the pattern's task trace: width*steps tasks in
// creation order (step-major, the order the task-bench OmpSs port issues
// them). The task at (t, i) carries an inout dependence on point i's
// step-t field buffer plus in dependences on the step-(t-1) field
// buffers of the points its family names — so with the default two
// fields, reads bind to the previous step's writes exactly as in
// task-bench's double-buffered execution, and with fields=1 they bind
// in-place, Gauss-Seidel style. Inputs that alias the task's own buffer
// or each other are deduplicated, and the per-task dependence list is
// truncated at the hardware's trace.MaxDeps. The returned trace always
// passes trace.Validate.
func Build(p Params) (*trace.Trace, error) {
	fam, ok := families[p.Family]
	if !ok {
		return nil, fmt.Errorf("patterns: unknown family %q (have %s)", p.Family, strings.Join(Families(), ", "))
	}
	if p.Family == "dagfile" {
		return buildDAGFile(p)
	}
	stride := layoutStrides[p.Layout]
	if stride == 0 {
		return nil, fmt.Errorf("patterns: unknown layout %q (have malloc, aligned, spread)", p.Layout)
	}
	if p.Fields < 1 {
		p.Fields = DefaultFields
	}
	if p.Height < 1 {
		p.Height = 1
	}
	if p.Regions < 1 {
		p.Regions = 1
	}
	points := p.points()
	buf := func(i, t int) uint64 {
		return patternBase + uint64(i*p.Fields+t%p.Fields)*stride
	}
	if p.Layout == "shard" {
		// Probe the slot grid so every buffer of point i hashes to shard
		// i*Shards/points under the fabric's xor-fold — contiguous point
		// blocks per shard, one extra slot skipped per miss on average.
		nbuf := points * p.Fields
		pointOf := func(slot int) int { return slot / p.Fields }
		if fam.freshAddr {
			nbuf = points * p.Steps
			pointOf = func(slot int) int { return slot % points }
		}
		addrs := make([]uint64, nbuf)
		next := uint64(patternBase)
		for s := 0; s < nbuf; s++ {
			target := pointOf(s) * p.Shards / points
			for picos.Shard(picos.ShardXorFold, next, p.Shards) != target {
				next += stride
			}
			addrs[s] = next
			next += stride
		}
		buf = func(i, t int) uint64 { return addrs[i*p.Fields+t%p.Fields] }
		if fam.freshAddr {
			buf = func(i, t int) uint64 { return addrs[t*points+i] }
		}
	}

	tr := &trace.Trace{Name: "pattern-" + p.Name()}
	tr.Tasks = make([]trace.Task, 0, points*p.Steps)
	// Every task of a pattern runs the family's one kernel, so the trace
	// carries the family name as its task kind — the hook worker-class
	// affinities (sched.Classes) attach to.
	kind := tr.KindID(p.Family)
	seen := make(map[uint64]bool, trace.MaxDeps)
	// addRegions appends one dependence per address region of a point
	// buffer, deduplicated and capped at the hardware's per-task limit.
	addRegions := func(deps []trace.Dep, base uint64, dir trace.Direction) []trace.Dep {
		for r := 0; r < p.Regions; r++ {
			a := base + uint64(r)*regionStride
			if seen[a] || len(deps) == trace.MaxDeps {
				continue
			}
			seen[a] = true
			deps = append(deps, trace.Dep{Addr: a, Dir: dir})
		}
		return deps
	}
	for t := 0; t < p.Steps; t++ {
		for i := 0; i < points; i++ {
			if p.hole(i) {
				continue // inactive point: no task this (or any) step
			}
			id := uint32(len(tr.Tasks))
			own := buf(i, t)
			if fam.freshAddr && p.Layout != "shard" {
				own = patternBase + uint64(t*points+i)*stride
			}
			deps := make([]trace.Dep, 0, trace.MaxDeps)
			deps = addRegions(deps, own, trace.InOut)
			if t > 0 {
				for _, j := range fam.inputs(p, t, i) {
					if j < 0 || j >= points || p.hole(j) {
						continue
					}
					deps = addRegions(deps, buf(j, t-1), trace.In)
				}
			}
			for _, d := range deps {
				delete(seen, d.Addr)
			}
			dur := p.Len
			if p.Jitter > 0 {
				dur = detrand.Jitter(p.Len, p.Seed^uint64(id)<<1, p.Jitter)
			}
			tr.Tasks = append(tr.Tasks, trace.Task{ID: id, Deps: deps, Duration: dur, Kind: kind})
		}
	}
	if len(tr.Tasks) == 0 {
		return nil, fmt.Errorf("patterns: %s: every grid point is a gap, no tasks to run", p.Name())
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("patterns: %s built an invalid trace: %w", p.Name(), err)
	}
	return tr, nil
}

// MustBuild is Build for known-good literal params in examples and
// tests; it panics on error.
func MustBuild(p Params) *trace.Trace {
	tr, err := Build(p)
	if err != nil {
		panic(err)
	}
	return tr
}

func log2(w int) int {
	n := 0
	for 1<<uint(n+1) <= w {
		n++
	}
	return n
}
