package main

import (
	"repro/internal/synth"
	"repro/internal/trace"
)

func synthCase(n int) (*trace.Trace, error) { return synth.Case(n) }
