package picos

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// TestWakeFirstFirstOrder mirrors TestFigure5ChainSemantics under the
// ablation wake order: consumers must execute in registration order.
func TestWakeFirstFirstOrder(t *testing.T) {
	a := uint64(0x7000)
	tr := simpleTrace([][]trace.Dep{
		{{Addr: a, Dir: trace.Out}},
		{{Addr: a, Dir: trace.In}},
		{{Addr: a, Dir: trace.In}},
		{{Addr: a, Dir: trace.In}},
		{{Addr: a, Dir: trace.InOut}},
		{{Addr: a, Dir: trace.InOut}},
	}, 1)
	tr.Tasks[0].Duration = 10_000

	cfg := DefaultConfig()
	cfg.Wake = WakeFirstFirst
	r := runTrace(t, tr, cfg, 1)
	r.verify(t, tr)
	want := []uint32{0, 1, 2, 3, 4, 5}
	for i, id := range want {
		if r.order[i] != id {
			t.Fatalf("execution order %v, want %v (wake-from-first-consumer)", r.order, want)
		}
	}
}

// TestWakeOrderBothLegal runs random traces under both wake orders and
// checks legality plus identical task sets.
func TestWakeOrderBothLegal(t *testing.T) {
	for _, seed := range []int64{3, 9} {
		rng := rand.New(rand.NewSource(seed))
		tr := randomDepTrace(rng, 200, 10)
		for _, wake := range []WakeOrder{WakeLastFirst, WakeFirstFirst} {
			cfg := DefaultConfig()
			cfg.Wake = wake
			r := runTrace(t, tr, cfg, 6)
			r.verify(t, tr)
		}
	}
}

// TestAdmitSlotsOnlyLegal: the prototype-style admission must stay legal
// and drain even under VM pressure (head-of-line stalls, no deadlock).
func TestAdmitSlotsOnlyLegal(t *testing.T) {
	const n = 150
	deps := make([][]trace.Dep, n)
	for i := range deps {
		for d := 0; d < trace.MaxDeps; d++ {
			deps[i] = append(deps[i], trace.Dep{Addr: uint64(i*64+d)*4096 + 0x100000, Dir: trace.InOut})
		}
	}
	tr := simpleTrace(deps, 5_000)
	cfg := DefaultConfig()
	cfg.Admission = AdmitSlotsOnly
	r := runTrace(t, tr, cfg, 8)
	r.verify(t, tr)
	// Under slots-only admission the dependence store must have been
	// driven to capacity at least once with 150x15 inout deps in flight:
	// either the VM fills or, with distinct addresses, a DM set does.
	st := r.p.Stats()
	if st.VMStallEvents+st.DMConflicts == 0 {
		t.Fatal("expected storage-capacity stalls under slots-only admission")
	}
}

// TestWakeOrderString covers the names.
func TestWakeOrderString(t *testing.T) {
	if WakeLastFirst.String() != "last-first" || WakeFirstFirst.String() != "first-first" {
		t.Fatal("wake order names changed")
	}
	if SchedFIFO.String() != "FIFO" || SchedLIFO.String() != "LIFO" {
		t.Fatal("sched policy names changed")
	}
	if DM8Way.String() != "DM 8way" || DM16Way.String() != "DM 16way" || DMP8Way.String() != "DM P+8way" {
		t.Fatal("DM design names changed")
	}
}
