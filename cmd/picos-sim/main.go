// Command picos-sim runs one workload through one execution engine and
// reports makespan, speedup and accelerator statistics.
//
// Usage:
//
//	picos-sim -app cholesky -block 128 -workers 12
//	picos-sim -app heat -block 64 -engine nanos -workers 8
//	picos-sim -case 4 -mode full -dm p8way
//	picos-sim -trace trace.bin -engine perfect -workers 24
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/hil"
	"repro/internal/nanos"
	"repro/internal/perfect"
	"repro/internal/picos"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func main() {
	var (
		app      = flag.String("app", "", "benchmark: heat, lu, mlu, sparselu, cholesky, h264dec")
		problem  = flag.Int("problem", apps.DefaultProblem, "problem size (matrix dim; frames for h264dec)")
		block    = flag.Int("block", 128, "block size")
		caseNo   = flag.Int("case", 0, "synthetic case 1..7 (instead of -app)")
		traceIn  = flag.String("trace", "", "read a serialized trace instead of generating one")
		engine   = flag.String("engine", "picos", "engine: picos, nanos, perfect")
		mode     = flag.String("mode", "hw", "picos HIL mode: hw, comm, full")
		dm       = flag.String("dm", "p8way", "DM design: 8way, 16way, p8way")
		policy   = flag.String("ts", "fifo", "task scheduler policy: fifo, lifo")
		workers  = flag.Int("workers", 12, "worker count")
		nTRS     = flag.Int("trs", 1, "TRS instances")
		nDCT     = flag.Int("dct", 1, "DCT instances")
		verify   = flag.Bool("verify", true, "check the schedule against the dependence oracle")
		showStat = flag.Bool("stats", false, "print accelerator statistics")
	)
	flag.Parse()

	tr, err := loadTrace(*traceIn, *app, *problem, *block, *caseNo)
	if err != nil {
		fail(err)
	}
	s := tr.Summarize()
	fmt.Printf("workload %s: %d tasks, %d-%d deps/task, avg size %.3g cycles, baseline %.3g cycles\n",
		tr.Name, s.NumTasks, s.MinDeps, s.MaxDeps, s.AvgTaskSize, float64(tr.Baseline()))

	var start, finish []uint64
	switch *engine {
	case "picos":
		cfg := hil.DefaultConfig()
		cfg.Workers = *workers
		switch *mode {
		case "hw":
			cfg.Mode = hil.HWOnly
		case "comm":
			cfg.Mode = hil.HWComm
		case "full":
			cfg.Mode = hil.FullSystem
		default:
			fail(fmt.Errorf("unknown mode %q", *mode))
		}
		switch *dm {
		case "8way":
			cfg.Picos.Design = picos.DM8Way
		case "16way":
			cfg.Picos.Design = picos.DM16Way
		case "p8way":
			cfg.Picos.Design = picos.DMP8Way
		default:
			fail(fmt.Errorf("unknown DM design %q", *dm))
		}
		if *policy == "lifo" {
			cfg.Picos.Policy = picos.SchedLIFO
		}
		cfg.Picos.NumTRS = *nTRS
		cfg.Picos.NumDCT = *nDCT
		res, err := hil.Run(tr, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("engine picos/%s (%s, %s TS, %dx TRS, %dx DCT), %d workers\n",
			res.Mode, cfg.Picos.Design, cfg.Picos.Policy, *nTRS, *nDCT, *workers)
		fmt.Printf("makespan %d cycles, speedup %.2fx, L1st %d, thrTask %.0f cycles\n",
			res.Makespan, res.Speedup, res.FirstStart, res.ThrTask)
		if *showStat {
			st := res.Stats
			fmt.Printf("stats: admitted %d, deps %d, DM conflicts %d, conflict stall %d cy, "+
				"VM stalls %d, GW blocked %d cy, wakes %d, max in-flight %d, max VM %d\n",
				st.TasksAdmitted, st.DepsProcessed, st.DMConflicts, st.DMConflictStallCycles,
				st.VMStallEvents, st.GWBlockedCycles, st.WakesRouted, st.MaxInFlightTasks, st.MaxVMLive)
		}
		start, finish = res.Start, res.Finish
	case "nanos":
		res, err := nanos.Run(tr, nanos.Config{Workers: *workers})
		if err != nil {
			fail(err)
		}
		fmt.Printf("engine nanos (software-only), %d workers\n", *workers)
		fmt.Printf("makespan %d cycles, speedup %.2fx, lock busy %d cycles\n",
			res.Makespan, res.Speedup, res.LockBusy)
		start, finish = res.Start, res.Finish
	case "perfect":
		res, err := perfect.Run(tr, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Printf("engine perfect (roofline), %d workers\n", *workers)
		fmt.Printf("makespan %d cycles, speedup %.2fx\n", res.Makespan, res.Speedup)
		start, finish = res.Start, res.Finish
	default:
		fail(fmt.Errorf("unknown engine %q", *engine))
	}

	if *verify {
		if err := taskgraph.Build(tr).CheckSchedule(start, finish); err != nil {
			fail(fmt.Errorf("schedule verification FAILED: %w", err))
		}
		fmt.Println("schedule verified against the dependence oracle")
	}
}

func loadTrace(path, app string, problem, block, caseNo int) (*trace.Trace, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	case caseNo != 0:
		return synthCase(caseNo)
	case app != "":
		res, err := apps.Generate(apps.App(app), problem, block)
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	default:
		return nil, fmt.Errorf("one of -app, -case or -trace is required")
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "picos-sim: %v\n", err)
	os.Exit(1)
}
