package experiments

import (
	"fmt"

	"repro/internal/patterns"
	"repro/internal/sim"
)

func init() {
	Register("resilience", Resilience)
}

// resilienceRates are the AXI drop probabilities of the sweep; 0 is the
// fault-free baseline lane.
var resilienceRates = []float64{0, 0.005, 0.01}

// resilienceRecoveries are the recovery-policy lanes: none (drops are
// permanently lost) and bounded retransmission with deterministic
// backoff.
var resilienceRecoveries = []string{"", "retry=3:backoff200"}

// resilienceFamilies are the pattern families of the sweep: a local
// 1-D stencil (long dependence chains, where one lost message strands a
// whole column) and the reduction tree (a lost task near the root loses
// the run).
var resilienceFamilies = []string{"stencil_1d", "tree"}

// resilienceFaultPlan renders the drop-rate clause; rate 0 is the
// fault-free lane (no plan at all, so the run takes the nil-gated hot
// path the equivalence suite proves byte-identical).
func resilienceFaultPlan(rate float64) string {
	if rate == 0 {
		return ""
	}
	return fmt.Sprintf("axi:drop=%g@seed7", rate)
}

// ResilienceData executes the resilience sweep: fault rate x recovery
// policy x {picos-full, nanos} over the pattern families. picos-full is
// the system under test — its AXI link is where the drops land — and
// nanos is the control arm: the software runtime has no link and no
// fault layer (the spec's fault knobs are disclaimed), so its lanes pin
// completion fraction 1.0 at every rate, isolating the fault effect
// from the workload.
func ResilienceData(opt Options) ([]CapacityCell, error) {
	rates := resilienceRates
	fams := resilienceFamilies
	engines := []string{"picos-full", "nanos"}
	if opt.Quick {
		rates = []float64{0, 0.01}
		fams = fams[:1]
	}

	type point struct {
		family, engine, plan, rec string
	}
	var pts []point
	var specs []sim.Spec
	for _, f := range fams {
		for _, e := range engines {
			for _, rate := range rates {
				for _, rec := range resilienceRecoveries {
					plan := resilienceFaultPlan(rate)
					pts = append(pts, point{f, e, plan, rec})
					specs = append(specs, sim.Spec{
						Engine:   e,
						Workload: capacityPattern(f, patterns.DefaultLayout, opt),
						Faults:   plan,
						Recovery: rec,
					})
				}
			}
		}
	}

	results, err := sweep(opt, specs)
	if err != nil {
		return nil, err
	}

	cells := make([]CapacityCell, 0, len(pts))
	for i, pt := range pts {
		res := results[i]
		done := 0
		for _, f := range res.Finish {
			if f > 0 {
				done++
			}
		}
		cell := CapacityCell{
			Family:             pt.family,
			Workload:           specs[i].Workload,
			Engine:             pt.engine,
			Design:             "p8way",
			Layout:             patterns.DefaultLayout,
			FaultPlan:          pt.plan,
			Recovery:           pt.rec,
			Faulted:            res.Faulted,
			TimedOut:           res.TimedOut,
			LostTasks:          res.LostTasks,
			RecoveredTasks:     res.RecoveredTasks,
			RefusedTasks:       res.RefusedTasks,
			Wedged:             res.Wedged,
			WedgedAt:           res.WedgedAt,
			Makespan:           res.Makespan,
			Speedup:            res.Speedup,
			CompletionFraction: float64(done) / float64(len(res.Finish)),
		}
		if st := res.Stats; st != nil {
			cell.DMConflicts = st.DMConflicts
			cell.VMStallEvents = st.VMStallEvents
			cell.DMConflictStallCycles = st.DMConflictStallCycles
			cell.VMStallCycles = st.VMStallCycles
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// resilienceLane renders one rate x recovery combination as a column
// label.
func resilienceLane(plan, rec string) string {
	rate := plan
	if rate == "" {
		rate = "fault-free"
	}
	if rec == "" {
		return rate
	}
	return rate + " +" + rec
}

// ResilienceTables renders already-computed resilience cells as one
// table per engine: rows = families, columns = rate x recovery lanes,
// cell = completion fraction with the loss accounting.
func ResilienceTables(cells []CapacityCell) []*Table {
	engines := distinct(cells, nil, func(c CapacityCell) string { return c.Engine })
	fams := distinct(cells, nil, func(c CapacityCell) string { return c.Family })
	plans := distinct(cells, nil, func(c CapacityCell) string { return c.FaultPlan })
	recs := distinct(cells, nil, func(c CapacityCell) string { return c.Recovery })

	find := func(e, f, plan, rec string) *CapacityCell {
		for i := range cells {
			c := &cells[i]
			if c.Engine == e && c.Family == f && c.FaultPlan == plan && c.Recovery == rec {
				return c
			}
		}
		return nil
	}

	var tables []*Table
	for _, e := range engines {
		t := &Table{
			Title: fmt.Sprintf("Resilience (%s): completion fraction per fault rate x recovery policy", e),
		}
		t.Header = []string{"Family"}
		for _, plan := range plans {
			for _, rec := range recs {
				t.Header = append(t.Header, resilienceLane(plan, rec))
			}
		}
		for _, f := range fams {
			row := []string{f}
			for _, plan := range plans {
				for _, rec := range recs {
					c := find(e, f, plan, rec)
					switch {
					case c == nil:
						row = append(row, "-")
					default:
						s := fmt.Sprintf("%.3f", c.CompletionFraction)
						if c.LostTasks > 0 || c.RecoveredTasks > 0 {
							s += fmt.Sprintf(" (lost %d, rec %d)", c.LostTasks, c.RecoveredTasks)
						}
						if c.Wedged {
							s += " WEDGE"
						}
						row = append(row, s)
					}
				}
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"completion fraction = tasks finished / tasks total; a fraction below 1.0 without a wedge means the run drained around the losses",
			"nanos is the control arm: no link, no fault layer, completion 1.0 by construction at every rate")
		tables = append(tables, t)
	}
	return tables
}

// Resilience is the registry entry: the fault-rate x recovery sweep as
// one table per engine.
func Resilience(opt Options) ([]*Table, error) {
	cells, err := ResilienceData(opt)
	if err != nil {
		return nil, err
	}
	return ResilienceTables(cells), nil
}
