package model

import "os"

// Hostname carries a justified suppression: the finding exists but the
// ignore silences it, so the harness must see nothing on that line.
func Hostname() string {
	//lint:ignore determinism diagnostic label only; never feeds a simulated result
	h, _ := os.Hostname()
	return h
}

// Stale exercises the suppression hygiene checks. The want expectations
// ride inside the ignore reasons (a line comment runs to end of line),
// which is harmless: the reason text is never interpreted.
func Stale() int {
	//lint:ignore determinism covers nothing // want `no longer matches any finding`
	x := 1
	//lint:ignore nosuchanalyzer whatever the reason // want `names unknown analyzer`
	x++
	return x
}
