package taskgraph

import (
	"fmt"
	"io"
)

// WriteDOT renders the dependence DAG in Graphviz DOT format, one node
// per task labelled with its ID, mirroring the dependence-graph figures
// of the paper (Figure 2, Figure 7).
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	for i := 0; i < g.N; i++ {
		if _, err := fmt.Fprintf(w, "  t%d [label=\"%d\"];\n", i, i); err != nil {
			return err
		}
	}
	for i := 0; i < g.N; i++ {
		for _, s := range g.Succ[i] {
			if _, err := fmt.Fprintf(w, "  t%d -> t%d;\n", i, s); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteDOTRanked renders the DAG like WriteDOT but constrains every
// dependence level onto one Graphviz rank, so layered workloads — the
// width x steps pattern grids above all — draw as the grids they are:
// level 0 across the top, each later wave of tasks on its own row.
func (g *Graph) WriteDOTRanked(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	lv := g.Levels()
	depth := 0
	for _, l := range lv {
		if l+1 > depth {
			depth = l + 1
		}
	}
	byLevel := make([][]int, depth)
	for i, l := range lv {
		byLevel[l] = append(byLevel[l], i)
	}
	for l, tasks := range byLevel {
		if _, err := fmt.Fprintf(w, "  { rank=same; // level %d\n   ", l); err != nil {
			return err
		}
		for _, t := range tasks {
			if _, err := fmt.Fprintf(w, " t%d [label=\"%d\"];", t, t); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "\n  }"); err != nil {
			return err
		}
	}
	for i := 0; i < g.N; i++ {
		for _, s := range g.Succ[i] {
			if _, err := fmt.Fprintf(w, "  t%d -> t%d;\n", i, s); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// ASCIILevels renders a compact textual view of the DAG: one line per
// level listing task IDs. This is the console-friendly stand-in for the
// paper's dependence-graph drawings.
func (g *Graph) ASCIILevels(w io.Writer) error {
	lv := g.Levels()
	depth := 0
	for _, l := range lv {
		if l+1 > depth {
			depth = l + 1
		}
	}
	byLevel := make([][]int, depth)
	for i, l := range lv {
		byLevel[l] = append(byLevel[l], i)
	}
	for l, tasks := range byLevel {
		if _, err := fmt.Fprintf(w, "L%-3d:", l); err != nil {
			return err
		}
		const maxShown = 16
		for i, t := range tasks {
			if i == maxShown {
				if _, err := fmt.Fprintf(w, " ... (+%d)", len(tasks)-maxShown); err != nil {
					return err
				}
				break
			}
			if _, err := fmt.Fprintf(w, " %d", t); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
